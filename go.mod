module pmjoin

go 1.22
