package pmjoin_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§9), plus the ablation benchmarks called out in DESIGN.md. Each benchmark
// regenerates its experiment through internal/experiments and reports the
// key simulated costs as custom metrics (sim-seconds), so `go test -bench=.`
// reproduces the paper's numbers alongside wall-clock timings.
//
// Scale: benchmarks default to 0.25 of the paper's dataset/buffer sizes
// (ratios preserved); set PMJOIN_SCALE=1.0 to run the paper's exact
// cardinalities (several minutes).

import (
	"os"
	"strconv"
	"testing"

	"pmjoin/internal/experiments"
)

func benchConfig() *experiments.Config {
	scale := 0.25
	if v := os.Getenv("PMJOIN_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			scale = f
		}
	}
	return &experiments.Config{Scale: scale, Seed: 1}
}

// reportRows exposes each method's simulated total as a benchmark metric.
func reportRows(b *testing.B, rows []experiments.CostRow) {
	for _, r := range rows {
		b.ReportMetric(r.Total(), r.Method+"-sim-s")
	}
}

func reportSweep(b *testing.B, points []experiments.SweepPoint, method string) {
	if len(points) == 0 {
		return
	}
	first := points[0].Totals[method]
	last := points[len(points)-1].Totals[method]
	b.ReportMetric(first, method+"-smallB-sim-s")
	b.ReportMetric(last, method+"-largeB-sim-s")
}

// BenchmarkFig10 regenerates Figure 10: the preprocess / CPU-join / I/O
// breakdown of NLJ, pm-NLJ, random-SC and SC on the LBeach×MCounty join.
func BenchmarkFig10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: the same breakdown for the HChr18
// self subsequence join.
func BenchmarkFig11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: HChr18 self join total cost vs
// buffer size for NLJ, pm-NLJ, random-SC and SC.
func BenchmarkFig12(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweep(b, points, "SC")
			reportSweep(b, points, "NLJ")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: I/O cost of SC vs the CC lower bound
// over four dataset pairs and five buffer sizes each.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		blocks, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(blocks) > 0 {
			b.ReportMetric(blocks[0].SCIO[0], "SC-io-sim-s")
			b.ReportMetric(blocks[0].CCIO[0], "CC-io-sim-s")
		}
	}
}

// BenchmarkFig13a regenerates Figure 13(a): LBeach×MCounty total cost vs
// buffer for NLJ, BFRJ, EGO and SC.
func BenchmarkFig13a(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweep(b, points, "SC")
			reportSweep(b, points, "EGO")
		}
	}
}

// BenchmarkFig13b regenerates Figure 13(b): Landsat1×Landsat2 total cost vs
// buffer.
func BenchmarkFig13b(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweep(b, points, "SC")
			reportSweep(b, points, "NLJ")
		}
	}
}

// BenchmarkFig13c regenerates Figure 13(c): HChr18 self join total cost vs
// buffer for NLJ, BFRJ, EGO and SC.
func BenchmarkFig13c(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig13c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweep(b, points, "SC")
			reportSweep(b, points, "BFRJ")
		}
	}
}

// BenchmarkFig14 regenerates Figure 14: total cost vs dataset size on the
// Landsat scalability workload at a fixed large buffer.
func BenchmarkFig14(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && len(points) > 0 {
			last := points[len(points)-1]
			b.ReportMetric(last.Totals["SC"], "SC-largest-sim-s")
			b.ReportMetric(last.Totals["NLJ"], "NLJ-largest-sim-s")
		}
	}
}

// BenchmarkAblationFilterDepth sweeps the Figure 2 filter depth (DESIGN.md
// ablation 1).
func BenchmarkAblationFilterDepth(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationFilterDepth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Matrix, r.Variant+"-matrix-sim-s")
			}
		}
	}
}

// BenchmarkAblationClusterShape sweeps the SC row/column split (ablation 2).
func BenchmarkAblationClusterShape(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationClusterShape(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.IO, r.Variant+"-io-sim-s")
			}
		}
	}
}

// BenchmarkAblationSchedule compares cluster orders (ablation 3).
func BenchmarkAblationSchedule(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSchedule(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.IO, r.Variant+"-io-sim-s")
			}
		}
	}
}

// BenchmarkAblationHistogram sweeps CC's histogram resolution (ablation 4).
func BenchmarkAblationHistogram(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHistogram(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplacement compares LRU vs FIFO under pm-NLJ
// (ablation 5).
func BenchmarkAblationReplacement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationReplacement(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.IO, r.Variant+"-io-sim-s")
			}
		}
	}
}

// BenchmarkAblationReadahead sweeps the disk readahead window.
func BenchmarkAblationReadahead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationReadahead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.IO, r.Variant+"-io-sim-s")
			}
		}
	}
}

// BenchmarkAblationSeekRatio sweeps the seek/transfer cost ratio.
func BenchmarkAblationSeekRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSeekRatio(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Total, r.Variant+"-speedup")
			}
		}
	}
}
