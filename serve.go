package pmjoin

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
	"pmjoin/internal/metrics"
	"pmjoin/internal/sflight"
)

// ErrOverloaded reports that the server refused a join at admission: either
// the waiter queue was full or the request waited past the queue deadline.
// Callers should surface it as backpressure (HTTP 429) and retry later;
// errors.Is(err, ErrOverloaded) matches both flavors.
var ErrOverloaded = errors.New("pmjoin: server overloaded")

// ServeOptions configures a long-lived Server. The zero value of every field
// selects its documented default; NewServer normalizes a copy.
type ServeOptions struct {
	// SharedFrames is the capacity (in pages) of the server-wide shared frame
	// cache that concurrent joins populate and reuse (default 4096; see
	// buffer.SharedPool). 0 picks the default; negative disables the shared
	// cache entirely — runs then keep only their private pools.
	SharedFrames int
	// PoolShards is the shared cache's lock-shard count (default 16, rounded
	// up to a power of two).
	PoolShards int
	// AdmitFrames is the admission budget: the total private buffer frames
	// (Options.BufferPages, times concurrent shard workers when sharded) that
	// admitted joins may hold at once (default 4 * SharedFrames). A single
	// request costing more than the whole budget is admitted alone rather
	// than rejected, so one big join cannot be starved by its own size.
	AdmitFrames int
	// QueueDepth bounds how many requests may wait for admission; arrivals
	// beyond it are rejected immediately with ErrOverloaded (default 64).
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits before giving up
	// with ErrOverloaded (default 5s).
	QueueTimeout time.Duration
	// PlanCacheEntries bounds the Explain-plan cache (default 128 entries,
	// evicted oldest-first).
	PlanCacheEntries int
	// RecentJoins bounds the completed-request ring kept for introspection
	// (default 64).
	RecentJoins int
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.SharedFrames == 0 {
		o.SharedFrames = 4096
	}
	if o.PoolShards <= 0 {
		o.PoolShards = 16
	}
	if o.AdmitFrames <= 0 {
		frames := o.SharedFrames
		if frames < 0 {
			frames = 4096
		}
		o.AdmitFrames = 4 * frames
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 5 * time.Second
	}
	if o.PlanCacheEntries <= 0 {
		o.PlanCacheEntries = 128
	}
	if o.RecentJoins <= 0 {
		o.RecentJoins = 64
	}
	return o
}

// JoinState is the lifecycle of one served join request.
type JoinState string

const (
	// StateQueued: waiting for admission.
	StateQueued JoinState = "queued"
	// StateRunning: admitted and executing.
	StateRunning JoinState = "running"
	// StateDone: completed successfully.
	StateDone JoinState = "done"
	// StateFailed: returned an error (including cancellation).
	StateFailed JoinState = "failed"
	// StateRejected: refused at admission (queue full or deadline).
	StateRejected JoinState = "rejected"
)

// JoinStatus is a snapshot of one served request, live or recent. Values are
// copies: mutating a returned JoinStatus affects nothing.
type JoinStatus struct {
	ID       int64
	Left     string // dataset names
	Right    string
	Method   string
	Epsilon  float64
	State    JoinState
	Frames   int // admission cost in buffer frames
	Start    time.Time
	Wall     time.Duration // zero until terminal
	Results  int64         // Report.Results when done
	Err      string        // terminal error text, "" on success
	Canceled bool          // the context was cancelled (State is failed)
}

// ServeStats is a point-in-time counter snapshot of a Server.
type ServeStats struct {
	// Admission outcomes.
	Admitted        int64 // requests that acquired budget (includes running)
	Rejected        int64 // refused: queue full
	DeadlineExpired int64 // refused: waited past QueueTimeout
	Completed       int64 // terminal successes
	Failed          int64 // terminal errors (cancellations included)
	// Instantaneous admission state.
	InUseFrames     int // budget currently held
	FramesHighWater int
	Queued          int // requests currently waiting
	QueueHighWater  int
	// Plan cache.
	PlanHits   int64
	PlanMisses int64
	// Shared frame cache (zero value when SharedFrames < 0).
	Shared buffer.SharedStats
	// FoldedRuns is the number of per-request metrics snapshots folded into
	// the cumulative service metrics (see Server.Metrics).
	FoldedRuns int64
}

// Server wraps a System for long-lived concurrent serving: it owns the
// shared frame cache every admitted join participates in, an admission
// controller that bounds the total private buffer frames in flight, an
// Explain-plan cache with single-flight population, and a request registry
// for introspection. cmd/pmjoind exposes it over HTTP via internal/joinsvc;
// it is equally usable in-process.
//
// The serving layer never touches the determinism contract: every admitted
// join's Report and Pairs are bit-identical to a solo System.Join with the
// same Options (the shared cache is observational; see buffer.SharedPool).
type Server struct {
	sys    *System
	opt    ServeOptions
	shared *buffer.SharedPool

	admit *admitter

	planMu     sync.Mutex
	plans      map[planKey]*Plan
	planOrder  []planKey // FIFO eviction order
	planHits   int64
	planMisses int64
	planFlight sflight.Group[planKey, *Plan]

	reqMu     sync.Mutex
	nextID    int64
	active    map[int64]*JoinStatus
	recent    []JoinStatus // ring, newest at append side
	completed int64
	failed    int64
	folded    metrics.Metrics
}

// planKey identifies a cached Plan: the dataset identities and epochs plus
// every option Explain reads. Epochs make stale plans unreachable if a future
// backend ever recycles file IDs.
type planKey struct {
	epochA, epochB int64
	fileA, fileB   disk.FileID
	eps            float64
	method         Method
	kernels        KernelMode
	bufferPages    int
	filterDepth    int
	rowFraction    float64
	shards         int
}

// NewServer wraps sys for serving under opt (zero value = defaults). The
// Server holds no goroutines; Close is not needed.
func NewServer(sys *System, opt ServeOptions) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("pmjoin: NewServer requires a System")
	}
	opt = opt.withDefaults()
	sv := &Server{
		sys:    sys,
		opt:    opt,
		plans:  make(map[planKey]*Plan),
		active: make(map[int64]*JoinStatus),
		admit: &admitter{
			budget:   opt.AdmitFrames,
			queueCap: opt.QueueDepth,
			timeout:  opt.QueueTimeout,
		},
	}
	if opt.SharedFrames > 0 {
		sp, err := buffer.NewShared(opt.SharedFrames, opt.PoolShards)
		if err != nil {
			return nil, err
		}
		sv.shared = sp
	}
	return sv, nil
}

// Options returns the normalized serving options.
func (sv *Server) Options() ServeOptions { return sv.opt }

// System returns the wrapped System.
func (sv *Server) System() *System { return sv.sys }

// admissionCost is the budget a request holds while running: its private
// pool frames, times the concurrent shard pools when sharded. opt must be
// validated (BufferPages and Sharding.Workers normalized).
func admissionCost(opt Options) int {
	cost := opt.BufferPages
	if opt.Sharding.Shards > 0 {
		workers := opt.Sharding.Workers
		if workers > opt.Sharding.Shards {
			workers = opt.Sharding.Shards
		}
		if workers < 1 {
			workers = 1
		}
		cost *= workers
	}
	return cost
}

// Join runs one admitted join. It validates opt, waits for admission budget
// (up to QueueTimeout behind at most QueueDepth waiters), then executes
// System.JoinContext with the server's shared frame cache attached. On
// overload it returns an error matching ErrOverloaded without running.
// Metrics collection is forced on so the run's snapshot can fold into the
// cumulative service metrics; like everywhere else, collection never changes
// Report or Pairs.
func (sv *Server) Join(ctx context.Context, a, b *Dataset, opt Options) (*Result, error) {
	if err := sv.sys.checkJoinable(a, b); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt.Metrics = true
	if ctx == nil {
		ctx = context.Background()
	}

	cost := admissionCost(opt)
	st := sv.register(a, b, opt, cost)

	if err := sv.admit.acquire(ctx, cost); err != nil {
		sv.finish(st.ID, func(s *JoinStatus) {
			s.State = StateRejected
			s.Err = err.Error()
		})
		return nil, err
	}
	defer sv.admit.release(cost)
	sv.update(st.ID, func(s *JoinStatus) { s.State = StateRunning })

	res, err := sv.sys.joinContext(ctx, a, b, opt, sv.shared)
	sv.finish(st.ID, func(s *JoinStatus) {
		if err != nil {
			s.State = StateFailed
			s.Err = err.Error()
			if res != nil {
				s.Canceled = res.Exec.Cancelled
			}
			return
		}
		s.State = StateDone
		s.Results = res.Report.Results
	})
	if res != nil && res.Metrics != nil {
		sv.reqMu.Lock()
		sv.folded.Fold(res.Metrics)
		sv.reqMu.Unlock()
	}
	return res, err
}

// ExplainCached is System.Explain through the server's plan cache: repeated
// plans for the same (datasets, options) are served from memory, and
// concurrent cold-start requests for one key collapse to a single build.
// The returned Plan is shared — callers must not mutate it.
func (sv *Server) ExplainCached(ctx context.Context, a, b *Dataset, opt Options) (*Plan, error) {
	if err := sv.sys.checkJoinable(a, b); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	// Cached plans never carry a metrics snapshot: the snapshot describes one
	// planning run, not every future cache hit.
	opt.Metrics = false
	opt.Trace = false
	key := planKey{
		epochA: a.Epoch(), epochB: b.Epoch(),
		fileA: a.ds.File, fileB: b.ds.File,
		eps: opt.Epsilon, method: opt.Method, kernels: opt.Kernels,
		bufferPages: opt.BufferPages, filterDepth: opt.FilterDepth,
		rowFraction: opt.ClusterRowFraction, shards: opt.Sharding.Shards,
	}
	sv.planMu.Lock()
	p, ok := sv.plans[key]
	if ok {
		sv.planHits++
	} else {
		sv.planMisses++
	}
	sv.planMu.Unlock()
	if ok {
		return p, nil
	}
	p, err, _ := sv.planFlight.Do(key, func() (*Plan, error) {
		sv.planMu.Lock()
		w, hit := sv.plans[key]
		sv.planMu.Unlock()
		if hit {
			return w, nil
		}
		built, err := sv.sys.ExplainContext(ctx, a, b, opt)
		if err != nil {
			return nil, err
		}
		sv.planMu.Lock()
		defer sv.planMu.Unlock()
		if len(sv.plans) >= sv.opt.PlanCacheEntries {
			old := sv.planOrder[0]
			sv.planOrder = sv.planOrder[1:]
			delete(sv.plans, old)
		}
		sv.plans[key] = built
		sv.planOrder = append(sv.planOrder, key)
		return built, nil
	})
	return p, err
}

// Stats returns a point-in-time snapshot of the server's counters.
func (sv *Server) Stats() ServeStats {
	var out ServeStats
	out.Admitted, out.Rejected, out.DeadlineExpired,
		out.InUseFrames, out.FramesHighWater, out.Queued, out.QueueHighWater = sv.admit.snapshot()
	sv.planMu.Lock()
	out.PlanHits, out.PlanMisses = sv.planHits, sv.planMisses
	sv.planMu.Unlock()
	sv.reqMu.Lock()
	out.Completed, out.Failed = sv.completed, sv.failed
	out.FoldedRuns = sv.folded.FoldedRuns
	sv.reqMu.Unlock()
	if sv.shared != nil {
		out.Shared = sv.shared.Stats()
	}
	return out
}

// Metrics returns a copy of the cumulative service metrics: every completed
// request's snapshot folded together (see metrics.Metrics.Fold — phase sums
// still equal totals; per-cluster and trace detail is per-request only).
func (sv *Server) Metrics() metrics.Metrics {
	sv.reqMu.Lock()
	defer sv.reqMu.Unlock()
	return sv.folded
}

// Joins returns the in-flight requests followed by the recent terminal ones,
// each ascending by ID. Snapshots are copies.
func (sv *Server) Joins() (activeJoins, recentJoins []JoinStatus) {
	sv.reqMu.Lock()
	defer sv.reqMu.Unlock()
	ids := make([]int64, 0, len(sv.active))
	for id := range sv.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		activeJoins = append(activeJoins, *sv.active[id])
	}
	recentJoins = append(recentJoins, sv.recent...)
	return activeJoins, recentJoins
}

func (sv *Server) register(a, b *Dataset, opt Options, cost int) *JoinStatus {
	sv.reqMu.Lock()
	defer sv.reqMu.Unlock()
	sv.nextID++
	st := &JoinStatus{
		ID:      sv.nextID,
		Left:    a.Name(),
		Right:   b.Name(),
		Method:  opt.Method.String(),
		Epsilon: opt.Epsilon,
		State:   StateQueued,
		Frames:  cost,
		Start:   time.Now(),
	}
	sv.active[st.ID] = st
	return st
}

func (sv *Server) update(id int64, f func(*JoinStatus)) {
	sv.reqMu.Lock()
	defer sv.reqMu.Unlock()
	if st, ok := sv.active[id]; ok {
		f(st)
	}
}

// finish applies f, stamps the wall clock, and moves the request from the
// active set to the recent ring.
func (sv *Server) finish(id int64, f func(*JoinStatus)) {
	sv.reqMu.Lock()
	defer sv.reqMu.Unlock()
	st, ok := sv.active[id]
	if !ok {
		return
	}
	f(st)
	st.Wall = time.Since(st.Start)
	delete(sv.active, id)
	if st.State == StateDone {
		sv.completed++
	} else {
		sv.failed++
	}
	sv.recent = append(sv.recent, *st)
	if over := len(sv.recent) - sv.opt.RecentJoins; over > 0 {
		sv.recent = append(sv.recent[:0], sv.recent[over:]...)
	}
}

// admitter is the frame-budget admission controller: a FIFO waiter queue in
// front of a counted budget. Fairness is strict arrival order — a small
// request never jumps a large one, so large joins cannot starve.
type admitter struct {
	budget   int
	queueCap int
	timeout  time.Duration

	mu      sync.Mutex
	inUse   int
	waiters []*waiter // FIFO; nil entries are abandoned slots, skipped
	// Counters.
	admitted        int64
	rejected        int64
	deadlineExpired int64
	framesHighWater int
	queueHighWater  int
}

type waiter struct {
	cost  int
	ready chan struct{} // closed by release when granted
	done  bool          // granted or abandoned (under admitter.mu)
}

// acquire blocks until cost frames are granted, ctx is done, or the queue
// deadline passes. Queue-full and deadline failures wrap ErrOverloaded.
func (ad *admitter) acquire(ctx context.Context, cost int) error {
	if cost > ad.budget {
		// Clamp: an oversized request runs alone (when the pool drains to
		// empty) instead of deadlocking behind an unreachable budget.
		cost = ad.budget
	}
	ad.mu.Lock()
	if len(ad.waiters) == 0 && ad.inUse+cost <= ad.budget {
		ad.grantLocked(cost)
		ad.mu.Unlock()
		return nil
	}
	if len(ad.waiters) >= ad.queueCap {
		ad.rejected++
		ad.mu.Unlock()
		return fmt.Errorf("%w: admission queue full (%d waiting)", ErrOverloaded, ad.queueCap)
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	ad.waiters = append(ad.waiters, w)
	if len(ad.waiters) > ad.queueHighWater {
		ad.queueHighWater = len(ad.waiters)
	}
	ad.mu.Unlock()

	timer := time.NewTimer(ad.timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		if ad.abandon(w) {
			return ctx.Err()
		}
		<-w.ready // grant raced the cancel; accept it so release stays balanced
		return nil
	case <-timer.C:
		if ad.abandon(w) {
			ad.mu.Lock()
			ad.deadlineExpired++
			ad.mu.Unlock()
			return fmt.Errorf("%w: queued past deadline (%s)", ErrOverloaded, ad.timeout)
		}
		<-w.ready
		return nil
	}
}

// abandon removes a waiter that gave up; it reports false when the grant
// already happened (the caller then owns the budget and must proceed).
func (ad *admitter) abandon(w *waiter) bool {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if w.done {
		return false
	}
	w.done = true
	for i, q := range ad.waiters {
		if q == w {
			ad.waiters = append(ad.waiters[:i], ad.waiters[i+1:]...)
			break
		}
	}
	return true
}

// release returns cost frames and grants queued waiters in FIFO order while
// the budget allows.
func (ad *admitter) release(cost int) {
	if cost > ad.budget {
		cost = ad.budget // mirror acquire's clamp
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	ad.inUse -= cost
	if ad.inUse < 0 {
		ad.inUse = 0
	}
	for len(ad.waiters) > 0 {
		w := ad.waiters[0]
		if ad.inUse+w.cost > ad.budget {
			return // strict FIFO: nobody jumps the head
		}
		ad.waiters = ad.waiters[1:]
		w.done = true
		ad.grantLocked(w.cost)
		close(w.ready)
	}
}

func (ad *admitter) grantLocked(cost int) {
	ad.inUse += cost
	ad.admitted++
	if ad.inUse > ad.framesHighWater {
		ad.framesHighWater = ad.inUse
	}
}

func (ad *admitter) snapshot() (admitted, rejected, deadlineExpired int64, inUse, framesHW, queued, queueHW int) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	return ad.admitted, ad.rejected, ad.deadlineExpired,
		ad.inUse, ad.framesHighWater, len(ad.waiters), ad.queueHighWater
}
