package pmjoin

import (
	"context"
	"fmt"

	"pmjoin/internal/cluster"
	"pmjoin/internal/metrics"
	"pmjoin/internal/predmat"
	"pmjoin/internal/sched"
	"pmjoin/internal/shard"
)

// ClusterIOPlan is the analytic per-cluster read prediction for one scheduled
// cluster: of its Pages pinned pages, Reads = Pages - the overlap with the
// schedule predecessor (Lemma 4's per-step reuse term, which assumes shared
// pages stay resident between consecutive clusters). A run's actually-measured
// fetches (Metrics.Clusters[i].Fetched) can land on either side: lower when
// pages from older clusters also survive in the buffer, higher when the
// replacement policy evicts a shared page before the pin loop reaches it.
type ClusterIOPlan struct {
	// Cluster is the cluster's creation index (matches
	// metrics.ClusterStats.Cluster for the same run).
	Cluster int
	// Pages is the cluster's pinned-set size: rows + cols, with row/col
	// pages that are the same frame counted once (self joins).
	Pages int
	// Reads is the predicted page reads: Pages minus predecessor overlap.
	Reads int
	// Prefetchable is how many of those reads the pipelined executor can
	// issue ahead of the cluster boundary, overlapped with the predecessor's
	// CPU phase (the sched.PrefetchPlan step size). It equals Reads at every
	// position except the first, which has no predecessor to overlap with.
	Prefetchable int
}

// ShardIOPlan is the predicted I/O of one planned shard: Clusters clusters
// holding Pages pinned pages, of which PredictedReads must actually be read
// under the shard's own greedy schedule (the rest is Lemma 4 sharing reuse
// within the shard). CostSeconds is the modeled solo cost the planner
// balanced shards over.
type ShardIOPlan struct {
	Shard          int
	Clusters       int
	Pages          int64
	PredictedReads int64
	CostSeconds    float64
}

// Plan describes what a prediction-matrix join would do, without executing
// it: the matrix statistics, the clustering, the schedule, and the paper's
// analytic page-read bounds. Obtain one with System.Explain.
type Plan struct {
	// Matrix statistics.
	RowPages, ColPages int
	MarkedEntries      int
	MatrixDensity      float64
	MarkedRows         int
	MarkedCols         int

	// Analytic page-read counts (not seconds):
	// NLJPageReads is block nested loop join's read count,
	// ceil(outer/(B-1)) * inner + outer.
	NLJPageReads int64
	// PMNLJLowerBound is Lemma 1's bound for pm-NLJ over the whole matrix:
	// m + min(marked rows, marked cols).
	PMNLJLowerBound int64
	// ClusteredPageReads is the clustered executor's read count before
	// buffer reuse: the sum of rows+cols over clusters (Lemma 2 grants
	// each cluster joins in memory after those reads).
	ClusteredPageReads int64
	// ScheduleSavings is the page reads recovered by the greedy schedule:
	// the summed page overlap of consecutive clusters (Lemma 4).
	ScheduleSavings int64
	// PrefetchablePages is the total reads the pipelined executor can issue
	// ahead of cluster boundaries (the sum of ClusterIO Prefetchable): every
	// predicted read except the first cluster's. Independent of
	// Options.Prefetch — it describes the schedule, not the run mode.
	PrefetchablePages int64
	// PredictedOverlapSeconds is the modeled I/O time those prefetchable
	// reads can hide behind CPU phases under the linear disk model: one seek
	// per step with prefetchable pages plus one transfer per page (each
	// step's staged run is issued in ascending page order). The realized
	// overlap is bounded above by this and by the clusters' CPU time; compare
	// ExecStats.OverlapIOSeconds from a run.
	PredictedOverlapSeconds float64

	// Clustering summary.
	Clusters             int
	MaxClusterPages      int
	AvgEntriesPerCluster float64

	// ClusterIO is the per-cluster read prediction in schedule order: the
	// exact clusters a greedy-scheduled (SC) run visits, each with its
	// Lemma 4 predicted read count. Compare against a Result.Metrics
	// snapshot's Clusters to see predicted vs. actually-measured I/O.
	ClusterIO []ClusterIOPlan

	// Shards is the sharding plan in shard-index order (nil unless
	// Options.Sharding.Shards > 0): the planner cuts the greedy schedule at
	// its weakest sharing edges, balanced over modeled per-cluster cost, and
	// each entry carries that shard's own Lemma 4 read prediction.
	Shards []ShardIOPlan
	// CutLostPages is the buffer reuse the cut severed: the shards' summed
	// predicted reads minus the uncut schedule's. CutPenaltySeconds is its
	// modeled I/O price (a transfer per lost page plus a cold first seek per
	// extra shard) — what N-way sharding pays in total I/O for its
	// wall-clock concurrency. Zero when unsharded.
	CutLostPages      int64
	CutPenaltySeconds float64

	// Metrics is the planning-time metrics snapshot (nil unless
	// Options.Metrics or Options.Trace was set). Like Result.Metrics it is
	// outside the determinism contract; every other Plan field is
	// bit-for-bit independent of it.
	Metrics *metrics.Metrics
}

// String renders the plan as a compact report.
func (p *Plan) String() string {
	out := fmt.Sprintf(
		"matrix %dx%d pages, %d marked (%.2f%%), %d marked rows, %d marked cols\n"+
			"page reads: NLJ=%d, pm-NLJ>=%d (Lemma 1), clustered=%d - %d reused (schedule) = %d\n"+
			"clusters: %d (max %d pages, avg %.1f entries)\n"+
			"pipeline: %d prefetchable pages, predicted overlap %.3fs",
		p.RowPages, p.ColPages, p.MarkedEntries, 100*p.MatrixDensity, p.MarkedRows, p.MarkedCols,
		p.NLJPageReads, p.PMNLJLowerBound, p.ClusteredPageReads, p.ScheduleSavings,
		p.ClusteredPageReads-p.ScheduleSavings,
		p.Clusters, p.MaxClusterPages, p.AvgEntriesPerCluster,
		p.PrefetchablePages, p.PredictedOverlapSeconds)
	if len(p.Shards) > 0 {
		var reads int64
		for _, sh := range p.Shards {
			reads += sh.PredictedReads
		}
		out += fmt.Sprintf("\nsharding: %d shards, %d predicted reads (cut lost %d pages, penalty %.3fs)",
			len(p.Shards), reads, p.CutLostPages, p.CutPenaltySeconds)
	}
	return out
}

// Explain builds the prediction matrix and SC clustering for joining a and b
// under opt and returns the plan with the paper's analytic page-read bounds
// (Lemmas 1-4), without reading any data pages. Only Epsilon, BufferPages,
// FilterDepth and ClusterRowFraction of opt are used. Explain shares Join's
// option validation: an Options value Join accepts, Explain accepts too.
func (s *System) Explain(a, b *Dataset, opt Options) (*Plan, error) {
	return s.ExplainContext(context.Background(), a, b, opt)
}

// ExplainContext is Explain with cancellation: an already-cancelled ctx
// returns ctx's error before any work is done.
func (s *System) ExplainContext(ctx context.Context, a, b *Dataset, opt Options) (*Plan, error) {
	if err := s.checkJoinable(a, b); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var mc *metrics.Collector // nil when disabled: every hook no-ops
	if opt.Metrics {
		mc = metrics.New(metrics.Config{Trace: opt.Trace, TraceCapacity: opt.TraceCapacity})
	}
	res := &Result{}
	m, err := s.buildMatrix(a, b, opt, res, nil, mc)
	if err != nil {
		return nil, err
	}
	mc.PhaseStart(metrics.PhaseCluster)
	clusters, err := cluster.SquareOpts(m, opt.BufferPages, cluster.SquareOptions{
		RowFraction: opt.ClusterRowFraction,
	})
	if err != nil {
		mc.PhaseEnd()
		return nil, err
	}

	p := &Plan{
		RowPages:      a.ds.Pages,
		ColPages:      b.ds.Pages,
		MarkedEntries: m.Marked(),
		MatrixDensity: m.Density(),
		MarkedRows:    len(m.MarkedRows()),
		MarkedCols:    len(m.MarkedCols()),
		Clusters:      len(clusters),
	}
	p.NLJPageReads = nljReads(a.ds.Pages, b.ds.Pages, opt.BufferPages)
	p.PMNLJLowerBound = lemma1Bound(m)

	// Page-set keys are the executor's disk.PageAddr sets (shard.PageSets):
	// for a self join both sides read the same file, so a cluster's row page
	// and equal col page are one frame, not two. Without the dedup the
	// sharing graph (and so the schedule and its savings) would diverge from
	// the one the run actually builds.
	pageSets := shard.PageSets(clusters, a.ds.File, b.ds.File)
	var entries int
	for _, c := range clusters {
		p.ClusteredPageReads += int64(c.Pages())
		if c.Pages() > p.MaxClusterPages {
			p.MaxClusterPages = c.Pages()
		}
		entries += len(c.Entries)
	}
	if len(clusters) > 0 {
		p.AvgEntriesPerCluster = float64(entries) / float64(len(clusters))
		edges := sched.SharingGraph(pageSets)
		order := sched.GreedyOrder(len(clusters), edges)
		steps := sched.StepSavings(pageSets, order)
		p.ClusterIO = make([]ClusterIOPlan, len(order))
		for pos, ci := range order {
			// len(pageSets[ci]), not Pages(): the pinned set, post self-join
			// dedup, is what the executor fetches and pins.
			pages := len(pageSets[ci])
			// The prefetch-plan step size (len of sched.PrefetchPlan's step)
			// is the same complement Reads measures — except at position 0,
			// which has no predecessor to overlap with.
			prefetchable := 0
			if pos > 0 {
				prefetchable = pages - steps[pos]
			}
			p.ClusterIO[pos] = ClusterIOPlan{
				Cluster:      ci,
				Pages:        pages,
				Reads:        pages - steps[pos],
				Prefetchable: prefetchable,
			}
			p.ScheduleSavings += int64(steps[pos])
			p.PrefetchablePages += int64(prefetchable)
			if prefetchable > 0 {
				p.PredictedOverlapSeconds += s.model.SeekSeconds +
					float64(prefetchable)*s.model.TransferSeconds
			}
		}
	}
	if opt.Sharding.Shards > 0 {
		// The same planner call the sharded run makes, so the predicted
		// per-shard I/O here is the plan the coordinator will execute.
		sp, err := shard.Cut(pageSets, shard.Entries(clusters), opt.Sharding.Shards, s.shardCost())
		if err != nil {
			mc.PhaseEnd()
			return nil, err
		}
		p.Shards = make([]ShardIOPlan, len(sp.Shards))
		for i, sh := range sp.Shards {
			p.Shards[i] = ShardIOPlan{
				Shard:          i,
				Clusters:       len(sh.Clusters),
				Pages:          sh.Pages,
				PredictedReads: sh.PredictedReads,
				CostSeconds:    sh.CostSeconds,
			}
		}
		p.CutLostPages = sp.CutLostPages
		p.CutPenaltySeconds = sp.CutPenaltySeconds
	}
	mc.PhaseEnd()
	p.Metrics = mc.Finish()
	return p, nil
}

// nljReads is block NLJ's page-read count: the smaller dataset streams
// through the buffer in blocks of B-1 pages while the other is re-scanned
// per block.
func nljReads(aPages, bPages, buffer int) int64 {
	outer, inner := aPages, bPages
	if outer > inner {
		outer, inner = inner, outer
	}
	block := buffer - 1
	blocks := (outer + block - 1) / block
	return int64(outer) + int64(blocks)*int64(inner)
}

// lemma1Bound is the paper's Lemma 1 applied to the whole matrix: pm-NLJ
// performs at least m + min(marked rows, marked cols) page reads.
func lemma1Bound(m *predmat.Matrix) int64 {
	r := len(m.MarkedRows())
	c := len(m.MarkedCols())
	if c < r {
		r = c
	}
	return int64(m.Marked()) + int64(r)
}
