// Command pmlint runs the project's static-analysis suite (internal/lint)
// over the module and reports violations of the buffer/I-O/determinism
// invariants the paper's measurements depend on.
//
// Usage:
//
//	pmlint [-rules pinleak,floateq] [-json] [-github] [-stats] [packages]
//
// Package patterns are directory-based, relative to the working directory:
// "./..." (default) analyzes the whole module, "./internal/..." a subtree,
// "./internal/join" a single package. The whole module is always loaded and
// type-checked (analyzers need cross-package types); patterns select which
// packages' findings are reported.
//
// -json replaces the line-oriented output with a single JSON document
// (findings plus run stats) for machine consumers; CI uploads it as an
// artifact. -github additionally emits GitHub Actions "::error
// file=...,line=..." workflow commands so findings surface as inline PR
// annotations. -stats prints a one-line rules/findings/wall-time summary to
// stderr, which verify.sh surfaces in its output.
//
// Exit codes: 0 no findings, 1 findings reported, 2 load or usage error.
// That contract makes `go run ./cmd/pmlint ./...` a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pmjoin/internal/lint"
)

// jsonFinding is one diagnostic in -json output, with a cwd-relative file
// path so the document is stable across checkouts.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the -json document: the findings plus enough run stats for
// CI to chart the gate's cost over time.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Stats    struct {
		Packages  int            `json:"packages"`
		Rules     int            `json:"rules"`
		Findings  int            `json:"findings"`
		PerRule   map[string]int `json:"perRule"`
		LoadMs    int64          `json:"loadMs"`
		AnalyzeMs int64          `json:"analyzeMs"`
	} `json:"stats"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule ids to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings and run stats as a JSON document on stdout")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error annotations for each finding")
	stats := fs.Bool("stats", false, "print a rules/findings/wall-time summary to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for r := range want {
				unknown = append(unknown, r)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "pmlint: unknown rule(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}
	loadStart := time.Now()
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}
	loadDur := time.Since(loadStart)

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}

	analyzeStart := time.Now()
	diags := lint.Run(selected, analyzers)
	analyzeDur := time.Since(analyzeStart)

	// Findings with cwd-relative paths, shared by every output mode.
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		findings = append(findings, jsonFinding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}

	if *jsonOut {
		var report jsonReport
		report.Findings = findings
		report.Stats.Packages = len(selected)
		report.Stats.Rules = len(analyzers)
		report.Stats.Findings = len(findings)
		report.Stats.PerRule = make(map[string]int, len(analyzers))
		for _, a := range analyzers {
			report.Stats.PerRule[a.Name] = 0
		}
		for _, f := range findings {
			report.Stats.PerRule[f.Rule]++
		}
		report.Stats.LoadMs = loadDur.Milliseconds()
		report.Stats.AnalyzeMs = analyzeDur.Milliseconds()
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "pmlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if *github {
		// Workflow commands surface findings as inline annotations on the
		// PR diff. The message part follows the double colon; properties
		// must not contain commas or newlines, and the messages here are
		// single-line by construction.
		for _, f := range findings {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::pmlint %s: %s\n",
				f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if *stats {
		fmt.Fprintf(stderr, "pmlint: %d rules over %d packages, %d finding(s), load %.2fs + analyze %.2fs\n",
			len(analyzers), len(selected), len(findings), loadDur.Seconds(), analyzeDur.Seconds())
	}
	if len(diags) > 0 {
		if !*stats {
			fmt.Fprintf(stderr, "pmlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// filterPackages keeps the packages whose directory matches one of the
// go-style directory patterns, resolved relative to cwd.
func filterPackages(pkgs []*lint.Package, cwd string, patterns []string) ([]*lint.Package, error) {
	type match struct {
		dir       string
		recursive bool
	}
	var matches []match
	for _, pat := range patterns {
		rec := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(pat) {
			abs = filepath.Join(cwd, pat)
		}
		matches = append(matches, match{dir: filepath.Clean(abs), recursive: rec})
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, m := range matches {
			if p.Dir == m.dir || (m.recursive && strings.HasPrefix(p.Dir, m.dir+string(filepath.Separator))) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
