// Command pmlint runs the project's static-analysis suite (internal/lint)
// over the module and reports violations of the buffer/I-O/determinism
// invariants the paper's measurements depend on.
//
// Usage:
//
//	pmlint [-rules pinleak,floateq] [packages]
//
// Package patterns are directory-based, relative to the working directory:
// "./..." (default) analyzes the whole module, "./internal/..." a subtree,
// "./internal/join" a single package. The whole module is always loaded and
// type-checked (analyzers need cross-package types); patterns select which
// packages' findings are reported.
//
// Exit codes: 0 no findings, 1 findings reported, 2 load or usage error.
// That contract makes `go run ./cmd/pmlint ./...` a CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmjoin/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule ids to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "pmlint: unknown rule %q\n", r)
			return 2
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "pmlint: %v\n", err)
		return 2
	}

	diags := lint.Run(selected, analyzers)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pmlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterPackages keeps the packages whose directory matches one of the
// go-style directory patterns, resolved relative to cwd.
func filterPackages(pkgs []*lint.Package, cwd string, patterns []string) ([]*lint.Package, error) {
	type match struct {
		dir       string
		recursive bool
	}
	var matches []match
	for _, pat := range patterns {
		rec := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(pat) {
			abs = filepath.Join(cwd, pat)
		}
		matches = append(matches, match{dir: filepath.Clean(abs), recursive: rec})
	}
	var out []*lint.Package
	for _, p := range pkgs {
		for _, m := range matches {
			if p.Dir == m.dir || (m.recursive && strings.HasPrefix(p.Dir, m.dir+string(filepath.Separator))) {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
