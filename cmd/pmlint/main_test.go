package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// capture runs run() with stdout/stderr redirected to temp files and
// returns the exit code and both outputs.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outF, errF)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, read(outF), read(errF)
}

// Regression: with several unknown rules the error used to report exactly
// one of them, picked by map iteration order — a different one per run.
// All unknown rules must be listed, sorted.
func TestUnknownRulesReportedSorted(t *testing.T) {
	for i := 0; i < 5; i++ {
		code, _, stderr := capture(t, []string{"-rules", "zzz,aaa,mmm"})
		if code != 2 {
			t.Fatalf("exit code %d, want 2", code)
		}
		if !strings.Contains(stderr, "unknown rule(s): aaa, mmm, zzz") {
			t.Fatalf("stderr %q does not list the unknown rules sorted", stderr)
		}
	}
}

func TestListIncludesCFGRules(t *testing.T) {
	code, stdout, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
	for _, rule := range []string{"maporder", "lockbalance", "atomicmix", "ctxdropped", "lintunused", "pinleak"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output missing rule %s", rule)
		}
	}
}

func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	code, stdout, stderr := capture(t, []string{"-json", "-stats", "./..."})
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (stderr: %s)", code, stderr)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("stdout is not the JSON document: %v", err)
	}
	if len(report.Findings) != 0 {
		t.Errorf("module should be clean, got findings: %v", report.Findings)
	}
	if report.Stats.Rules == 0 || report.Stats.Packages == 0 {
		t.Errorf("stats not populated: %+v", report.Stats)
	}
	if _, ok := report.Stats.PerRule["lockbalance"]; !ok {
		t.Errorf("perRule missing lockbalance: %v", report.Stats.PerRule)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("-stats summary missing from stderr: %q", stderr)
	}
}
