package main

import (
	"fmt"
	"time"

	"pmjoin"
	"pmjoin/internal/metrics"
)

// timeUnit picks a rounding unit so wall columns stay short: microseconds
// under a millisecond, otherwise tens of microseconds.
func timeUnit(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return time.Microsecond
	}
	return 10 * time.Microsecond
}

// printMetrics renders the phase-scoped snapshot as a human table: one row
// per phase with its wall clock and I/O deltas, then totals, queue pressure
// and the trace (if recorded).
func printMetrics(m *metrics.Metrics) {
	fmt.Printf("\nmetrics (wall %v):\n", m.Wall)
	fmt.Printf("  %-8s %12s %8s %8s %8s %8s %8s\n",
		"phase", "wall", "reads", "seeks", "writes", "hits", "misses")
	for p := metrics.Phase(0); p < metrics.NumPhases; p++ {
		ps := m.Phases[p]
		if ps == (metrics.PhaseStats{}) {
			continue
		}
		fmt.Printf("  %-8s %12v %8d %8d %8d %8d %8d\n",
			p, ps.Wall.Round(timeUnit(ps.Wall)),
			ps.Disk.Reads, ps.Disk.Seeks+ps.Disk.WriteSeeks, ps.Disk.Writes,
			ps.Buffer.Hits, ps.Buffer.Misses)
	}
	fmt.Printf("  %-8s %12v %8d %8d %8d %8d %8d\n",
		"total", m.Wall.Round(timeUnit(m.Wall)),
		m.Disk.Reads, m.Disk.Seeks+m.Disk.WriteSeeks, m.Disk.Writes,
		m.Buffer.Hits, m.Buffer.Misses)
	if m.QueueHighWater > 0 {
		fmt.Printf("  worker queue high water: %d tasks\n", m.QueueHighWater)
	}
	if m.Buffer.Prefetched > 0 || m.Timeline.Stages > 0 {
		fmt.Printf("  pipeline: %d pages staged (%d overlapped reads), modeled wall %.3fs vs serial %.3fs\n",
			m.Buffer.Prefetched, m.Timeline.OverlapReads,
			m.Timeline.WallSeconds, m.Timeline.SerialSeconds)
	}
	if len(m.Events) > 0 {
		fmt.Printf("  trace (%d events, %d dropped):\n", len(m.Events), m.EventsDropped)
		for _, ev := range m.Events {
			fmt.Printf("    %v\n", ev)
		}
	}
}

// printPredictedVsMeasured renders Explain's Lemma 4 per-cluster read
// prediction next to the run's measured pinned-set turnover, in schedule
// order.
func printPredictedVsMeasured(plan *pmjoin.Plan, m *metrics.Metrics) {
	if len(plan.ClusterIO) == 0 || len(plan.ClusterIO) != len(m.Clusters) {
		return
	}
	fmt.Printf("  per-cluster I/O, predicted (Lemma 4) vs measured:\n")
	fmt.Printf("    %-8s %8s %10s %10s %8s %10s\n", "cluster", "pages", "predicted", "fetched", "reused", "prefetched")
	for i, pc := range plan.ClusterIO {
		mc := m.Clusters[i]
		fmt.Printf("    %-8d %8d %10d %10d %8d %10d\n",
			pc.Cluster, pc.Pages, pc.Reads, mc.Fetched, mc.Reused, mc.Prefetched)
	}
}
