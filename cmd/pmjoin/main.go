// Command pmjoin runs ad-hoc similarity joins on synthetic workloads over
// the simulated disk and prints the cost report.
//
// Examples:
//
//	pmjoin -kind vector -n 20000 -n2 15000 -dim 2 -method SC -eps 0.02 -buffer 50
//	pmjoin -kind vector -n 10000 -dim 60 -data landsat -method EGO -calibrate 0.01 -buffer 200
//	pmjoin -kind string -n 500000 -window 500 -stride 32 -eps 5 -method SC -buffer 100
//	pmjoin -kind series -n 100000 -window 32 -stride 4 -eps 2.5 -method CC -buffer 64
//	pmjoin -kind vector -n 20000 -dim 2 -save roads.pmj -eps 0.02 -buffer 50
//	pmjoin -load roads.pmj -eps 0.02 -buffer 50 -storage file -storedir /tmp/pmstore
//
// Omitting -n2 makes the join a self join. -save writes the first dataset's
// raw data to a container file and -load reads one back (the kind is
// inferred); -storage file serves page payloads from real encoded files and
// reports measured read latencies, with results identical to the simulator.
//
// All methods: NLJ, pm-NLJ (PMNLJ), random-SC, SC, CC, EGO, BFRJ.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmjoin"
	"pmjoin/internal/dataset"
	"pmjoin/internal/store"
)

func main() {
	var (
		kind        = pmjoin.KindVector
		m           = pmjoin.SC
		policy      = pmjoin.LRU
		prefetch    = pmjoin.PrefetchDefault
		kernelBatch = pmjoin.KernelBatchDefault
		storage     = pmjoin.StorageDefault
	)
	flag.TextVar(&kind, "kind", kind, "data kind: vector, series, string")
	flag.TextVar(&m, "method", m, "join method: NLJ, pm-NLJ, random-SC, SC, CC, EGO, BFRJ, PBSM")
	flag.TextVar(&policy, "policy", policy, "buffer replacement policy: LRU, FIFO")
	flag.TextVar(&prefetch, "prefetch", prefetch, "pipelined cluster prefetch: on, off, default (on; identical results either way)")
	flag.TextVar(&kernelBatch, "kernel-batch", kernelBatch, "whole-cluster block kernel dispatch: on, off, default (on; identical results either way)")
	flag.TextVar(&storage, "storage", storage, "physical page source: sim, file (identical results; file serves real encoded files and measures read latencies)")
	var (
		data      = flag.String("data", "", "vector generator: roads (default for dim 2) or landsat (default otherwise)")
		n         = flag.Int("n", 10000, "size of the first dataset (vectors / samples / bases)")
		n2        = flag.Int("n2", 0, "size of the second dataset (0: self join)")
		dim       = flag.Int("dim", 2, "vector dimensionality")
		window    = flag.Int("window", 32, "subsequence length for sequence kinds")
		stride    = flag.Int("stride", 4, "window stride for sequence kinds")
		eps       = flag.Float64("eps", 0, "distance threshold (edit distance for strings)")
		calibrate = flag.Float64("calibrate", 0, "calibrate eps to this prediction-matrix density instead of -eps")
		buffer    = flag.Int("buffer", 100, "buffer size in pages")
		pageBytes = flag.Int("page", 4096, "page size in bytes")
		seed      = flag.Int64("seed", 1, "workload seed")
		pairs     = flag.Int("pairs", 0, "print up to this many result pairs")
		parallel  = flag.Int("parallel", 0, "comparison workers (0: GOMAXPROCS, 1: serial)")
		depth     = flag.Int("prefetch-depth", 0, "max pages staged ahead per cluster boundary (0: unbounded)")
		shards    = flag.Int("shards", 0, "cut the clustered join into this many shards (0: unsharded)")
		shardWork = flag.Int("shard-workers", 0, "parallel shard workers (0: min(shards, GOMAXPROCS))")
		metrics   = flag.Bool("metrics", false, "print the phase-scoped metrics snapshot")
		trace     = flag.Int("trace", 0, "record and print up to this many trace events (implies -metrics)")
		loadPath  = flag.String("load", "", "load the first dataset from a container file written by -save (kind inferred; overrides -kind/-n)")
		savePath  = flag.String("save", "", "save the first dataset's raw data to this container file (the join still runs)")
		storeDir  = flag.String("storedir", "", "directory for the file-backed page store with -storage file (default: a temp dir, removed on exit)")
	)
	flag.Parse()

	// Raw data of the first dataset: loaded from a container file or
	// generated, optionally saved back out, then indexed.
	var rawA any
	var err error
	if *loadPath != "" {
		rawA, err = store.LoadData(*loadPath)
		if err != nil {
			fatal(err)
		}
		switch rawA.(type) {
		case store.RawVectors:
			kind = pmjoin.KindVector
		case store.RawSeries:
			kind = pmjoin.KindSeries
		case store.RawString:
			kind = pmjoin.KindString
		}
	}

	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: *pageBytes})
	var da, db *pmjoin.Dataset
	switch kind {
	case pmjoin.KindVector:
		var raw store.RawVectors
		if rawA != nil {
			raw = rawA.(store.RawVectors)
		}
		da, db, rawA, err = buildVectors(sys, *data, raw, *n, *n2, *dim, *seed)
	case pmjoin.KindSeries:
		var raw store.RawSeries
		if rawA != nil {
			raw = rawA.(store.RawSeries)
		}
		da, db, rawA, err = buildSeries(sys, raw, *n, *n2, *window, *stride, *seed)
	case pmjoin.KindString:
		var raw store.RawString
		if rawA != nil {
			raw = rawA.(store.RawString)
		}
		da, db, rawA, err = buildStrings(sys, raw, *n, *n2, *window, *stride, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		if err := store.SaveData(*savePath, rawA); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s to %s\n", da.Name(), *savePath)
	}

	if storage == pmjoin.StorageFile {
		dir := *storeDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "pmjoin-store-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
		}
		if err := sys.UseFileStore(dir); err != nil {
			fatal(err)
		}
		defer sys.CloseStore()
		fmt.Printf("file store: %s\n", dir)
	}
	fmt.Printf("datasets: %s (%d objects, %d pages) x %s (%d objects, %d pages)\n",
		da.Name(), da.Objects(), da.Pages(), db.Name(), db.Objects(), db.Pages())

	epsilon := *eps
	if *calibrate > 0 {
		epsilon, err = sys.CalibrateEpsilon(da, db, *calibrate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated eps = %g (target density %g)\n", epsilon, *calibrate)
	}
	if epsilon <= 0 {
		fatal(fmt.Errorf("provide -eps or -calibrate"))
	}

	opt := pmjoin.Options{
		Method:        m,
		Epsilon:       epsilon,
		BufferPages:   *buffer,
		Policy:        policy,
		Parallelism:   *parallel,
		Seed:          *seed,
		CollectPairs:  *pairs > 0,
		MaxPairs:      *pairs,
		Metrics:       *metrics,
		Trace:         *trace > 0,
		TraceCapacity: *trace,
		KernelBatch:   kernelBatch,
		Storage:       storage,
		Pipeline:      pmjoin.PipelineOptions{Prefetch: prefetch, PrefetchDepth: *depth},
		Sharding:      pmjoin.ShardingOptions{Shards: *shards, Workers: *shardWork},
	}
	res, err := sys.Join(da, db, opt)
	if err != nil {
		fatal(err)
	}
	r := res.Report
	fmt.Printf("\n%s join, eps=%g, buffer=%d pages\n", m, epsilon, *buffer)
	fmt.Printf("  results:        %d pairs\n", res.Count())
	fmt.Printf("  total cost:     %.3f sim-s\n", res.TotalSeconds())
	fmt.Printf("    I/O:          %.3f sim-s (%d reads, %d seeks)\n", r.IOSeconds, r.PageReads, r.Seeks)
	fmt.Printf("    CPU-join:     %.3f sim-s (%d comparisons)\n", r.CPUJoinSeconds, r.Comparisons)
	fmt.Printf("    preprocess:   %.3f sim-s (%d clusters)\n", r.PreprocessSeconds, r.Clusters)
	if res.MarkedEntries > 0 {
		fmt.Printf("  matrix:         %d marked entries (density %.4f), built in %.4f sim-s\n",
			res.MarkedEntries, res.MatrixDensity, res.MatrixSeconds)
	}
	fmt.Printf("  buffer:         %d hits / %d misses\n", r.Hits, r.Misses)
	if res.Exec.ModeledWallSeconds > 0 {
		fmt.Printf("  pipeline:       %d pages prefetched, modeled wall %.3f sim-s (serial %.3f, overlap %.3f hidden-capable)\n",
			res.Exec.PrefetchedPages, res.Exec.ModeledWallSeconds,
			res.Exec.ModeledSerialSeconds, res.Exec.OverlapIOSeconds)
	}
	if res.Exec.Shards > 0 {
		fmt.Printf("  sharding:       %d shards on %d workers\n", res.Exec.Shards, res.Exec.ShardWorkers)
	}
	if res.Exec.MeasuredReads > 0 {
		fmt.Printf("  measured I/O:   %d file reads, %.3f s summed wall\n",
			res.Exec.MeasuredReads, res.Exec.MeasuredIOWall)
	}
	for i, p := range res.Pairs {
		fmt.Printf("  pair %d: (%d, %d)\n", i, p[0], p[1])
	}
	if res.Truncated {
		fmt.Printf("  ... more pairs not shown\n")
	}
	if res.Metrics != nil {
		printMetrics(res.Metrics)
		if m == pmjoin.SC {
			// Explain's greedy schedule is the one an SC run executes, so its
			// per-cluster prediction lines up with the measured turnover.
			plan, err := sys.Explain(da, db, opt)
			if err != nil {
				fatal(err)
			}
			printPredictedVsMeasured(plan, res.Metrics)
		}
	}
}

// The builders take the first dataset's raw data when it was loaded from a
// container file (nil = generate it) and return the raw actually indexed, so
// -save can write exactly what joined.

func buildVectors(sys *pmjoin.System, data string, raw store.RawVectors, n, n2, dim int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, any, error) {
	gen := func(n int, seed int64) [][]float64 {
		if data == "roads" || (data == "" && dim == 2) {
			return dataset.ToFloats(dataset.RoadIntersections(n, seed))
		}
		return dataset.ToFloats(dataset.Landsat(n, dim, seed))
	}
	if raw == nil {
		raw = gen(n, seed)
	} else if len(raw) > 0 {
		dim = len(raw[0])
	}
	da, err := sys.AddVectors("A", raw, pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	if n2 == 0 {
		return da, da, raw, nil
	}
	db, err := sys.AddVectors("B", gen(n2, seed+1), pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return da, db, raw, nil
}

func buildSeries(sys *pmjoin.System, raw store.RawSeries, n, n2, window, stride int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, any, error) {
	if raw == nil {
		raw = dataset.RandomWalk(n, seed)
	}
	da, err := sys.AddSeries("A", raw, pmjoin.SeriesOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, nil, err
	}
	if n2 == 0 {
		return da, da, raw, nil
	}
	db, err := sys.AddSeries("B", dataset.RandomWalk(n2, seed+1), pmjoin.SeriesOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, nil, err
	}
	return da, db, raw, nil
}

func buildStrings(sys *pmjoin.System, raw store.RawString, n, n2, window, stride int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, any, error) {
	a := []byte(raw)
	if a == nil {
		a = dataset.DNA(n, seed)
		if n2 == 0 {
			// Loaded data keeps whatever homologies it was saved with;
			// generated data gets them planted fresh.
			dataset.PlantHomologiesAligned(a, a, n/20000+4, 4*window, 0.004, stride, seed+2)
		}
	}
	if n2 == 0 {
		da, err := sys.AddString("A", a, pmjoin.StringOptions{Window: window, Stride: stride})
		if err != nil {
			return nil, nil, nil, err
		}
		return da, da, store.RawString(a), nil
	}
	b := dataset.DNA(n2, seed+1)
	dataset.PlantHomologiesAligned(b, a, n/20000+4, 4*window, 0.004, stride, seed+2)
	da, err := sys.AddString("A", a, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := sys.AddString("B", b, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, nil, err
	}
	return da, db, store.RawString(a), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmjoin:", err)
	os.Exit(1)
}
