// Command pmjoin runs ad-hoc similarity joins on synthetic workloads over
// the simulated disk and prints the cost report.
//
// Examples:
//
//	pmjoin -kind vector -n 20000 -n2 15000 -dim 2 -method SC -eps 0.02 -buffer 50
//	pmjoin -kind vector -n 10000 -dim 60 -data landsat -method EGO -calibrate 0.01 -buffer 200
//	pmjoin -kind string -n 500000 -window 500 -stride 32 -eps 5 -method SC -buffer 100
//	pmjoin -kind series -n 100000 -window 32 -stride 4 -eps 2.5 -method CC -buffer 64
//
// Omitting -n2 makes the join a self join.
//
// All methods: NLJ, pm-NLJ (PMNLJ), random-SC, SC, CC, EGO, BFRJ.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmjoin"
	"pmjoin/internal/dataset"
)

func main() {
	var (
		kind        = pmjoin.KindVector
		m           = pmjoin.SC
		policy      = pmjoin.LRU
		prefetch    = pmjoin.PrefetchDefault
		kernelBatch = pmjoin.KernelBatchDefault
	)
	flag.TextVar(&kind, "kind", kind, "data kind: vector, series, string")
	flag.TextVar(&m, "method", m, "join method: NLJ, pm-NLJ, random-SC, SC, CC, EGO, BFRJ, PBSM")
	flag.TextVar(&policy, "policy", policy, "buffer replacement policy: LRU, FIFO")
	flag.TextVar(&prefetch, "prefetch", prefetch, "pipelined cluster prefetch: on, off, default (on; identical results either way)")
	flag.TextVar(&kernelBatch, "kernel-batch", kernelBatch, "whole-cluster block kernel dispatch: on, off, default (on; identical results either way)")
	var (
		data      = flag.String("data", "", "vector generator: roads (default for dim 2) or landsat (default otherwise)")
		n         = flag.Int("n", 10000, "size of the first dataset (vectors / samples / bases)")
		n2        = flag.Int("n2", 0, "size of the second dataset (0: self join)")
		dim       = flag.Int("dim", 2, "vector dimensionality")
		window    = flag.Int("window", 32, "subsequence length for sequence kinds")
		stride    = flag.Int("stride", 4, "window stride for sequence kinds")
		eps       = flag.Float64("eps", 0, "distance threshold (edit distance for strings)")
		calibrate = flag.Float64("calibrate", 0, "calibrate eps to this prediction-matrix density instead of -eps")
		buffer    = flag.Int("buffer", 100, "buffer size in pages")
		pageBytes = flag.Int("page", 4096, "page size in bytes")
		seed      = flag.Int64("seed", 1, "workload seed")
		pairs     = flag.Int("pairs", 0, "print up to this many result pairs")
		parallel  = flag.Int("parallel", 0, "comparison workers (0: GOMAXPROCS, 1: serial)")
		depth     = flag.Int("prefetch-depth", 0, "max pages staged ahead per cluster boundary (0: unbounded)")
		shards    = flag.Int("shards", 0, "cut the clustered join into this many shards (0: unsharded)")
		shardWork = flag.Int("shard-workers", 0, "parallel shard workers (0: min(shards, GOMAXPROCS))")
		metrics   = flag.Bool("metrics", false, "print the phase-scoped metrics snapshot")
		trace     = flag.Int("trace", 0, "record and print up to this many trace events (implies -metrics)")
	)
	flag.Parse()

	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: *pageBytes})
	var da, db *pmjoin.Dataset
	var err error
	switch kind {
	case pmjoin.KindVector:
		da, db, err = buildVectors(sys, *data, *n, *n2, *dim, *seed)
	case pmjoin.KindSeries:
		da, db, err = buildSeries(sys, *n, *n2, *window, *stride, *seed)
	case pmjoin.KindString:
		da, db, err = buildStrings(sys, *n, *n2, *window, *stride, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("datasets: %s (%d objects, %d pages) x %s (%d objects, %d pages)\n",
		da.Name(), da.Objects(), da.Pages(), db.Name(), db.Objects(), db.Pages())

	epsilon := *eps
	if *calibrate > 0 {
		epsilon, err = sys.CalibrateEpsilon(da, db, *calibrate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated eps = %g (target density %g)\n", epsilon, *calibrate)
	}
	if epsilon <= 0 {
		fatal(fmt.Errorf("provide -eps or -calibrate"))
	}

	opt := pmjoin.Options{
		Method:        m,
		Epsilon:       epsilon,
		BufferPages:   *buffer,
		Policy:        policy,
		Parallelism:   *parallel,
		Seed:          *seed,
		CollectPairs:  *pairs > 0,
		MaxPairs:      *pairs,
		Metrics:       *metrics,
		Trace:         *trace > 0,
		TraceCapacity: *trace,
		KernelBatch:   kernelBatch,
		Pipeline:      pmjoin.PipelineOptions{Prefetch: prefetch, PrefetchDepth: *depth},
		Sharding:      pmjoin.ShardingOptions{Shards: *shards, Workers: *shardWork},
	}
	res, err := sys.Join(da, db, opt)
	if err != nil {
		fatal(err)
	}
	r := res.Report
	fmt.Printf("\n%s join, eps=%g, buffer=%d pages\n", m, epsilon, *buffer)
	fmt.Printf("  results:        %d pairs\n", res.Count())
	fmt.Printf("  total cost:     %.3f sim-s\n", res.TotalSeconds())
	fmt.Printf("    I/O:          %.3f sim-s (%d reads, %d seeks)\n", r.IOSeconds, r.PageReads, r.Seeks)
	fmt.Printf("    CPU-join:     %.3f sim-s (%d comparisons)\n", r.CPUJoinSeconds, r.Comparisons)
	fmt.Printf("    preprocess:   %.3f sim-s (%d clusters)\n", r.PreprocessSeconds, r.Clusters)
	if res.MarkedEntries > 0 {
		fmt.Printf("  matrix:         %d marked entries (density %.4f), built in %.4f sim-s\n",
			res.MarkedEntries, res.MatrixDensity, res.MatrixSeconds)
	}
	fmt.Printf("  buffer:         %d hits / %d misses\n", r.Hits, r.Misses)
	if res.Exec.ModeledWallSeconds > 0 {
		fmt.Printf("  pipeline:       %d pages prefetched, modeled wall %.3f sim-s (serial %.3f, overlap %.3f hidden-capable)\n",
			res.Exec.PrefetchedPages, res.Exec.ModeledWallSeconds,
			res.Exec.ModeledSerialSeconds, res.Exec.OverlapIOSeconds)
	}
	if res.Exec.Shards > 0 {
		fmt.Printf("  sharding:       %d shards on %d workers\n", res.Exec.Shards, res.Exec.ShardWorkers)
	}
	for i, p := range res.Pairs {
		fmt.Printf("  pair %d: (%d, %d)\n", i, p[0], p[1])
	}
	if res.Truncated {
		fmt.Printf("  ... more pairs not shown\n")
	}
	if res.Metrics != nil {
		printMetrics(res.Metrics)
		if m == pmjoin.SC {
			// Explain's greedy schedule is the one an SC run executes, so its
			// per-cluster prediction lines up with the measured turnover.
			plan, err := sys.Explain(da, db, opt)
			if err != nil {
				fatal(err)
			}
			printPredictedVsMeasured(plan, res.Metrics)
		}
	}
}

func buildVectors(sys *pmjoin.System, data string, n, n2, dim int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, error) {
	gen := func(n int, seed int64) [][]float64 {
		if data == "roads" || (data == "" && dim == 2) {
			return dataset.ToFloats(dataset.RoadIntersections(n, seed))
		}
		return dataset.ToFloats(dataset.Landsat(n, dim, seed))
	}
	da, err := sys.AddVectors("A", gen(n, seed), pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, err
	}
	if n2 == 0 {
		return da, da, nil
	}
	db, err := sys.AddVectors("B", gen(n2, seed+1), pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, err
	}
	return da, db, nil
}

func buildSeries(sys *pmjoin.System, n, n2, window, stride int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, error) {
	da, err := sys.AddSeries("A", dataset.RandomWalk(n, seed), pmjoin.SeriesOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, err
	}
	if n2 == 0 {
		return da, da, nil
	}
	db, err := sys.AddSeries("B", dataset.RandomWalk(n2, seed+1), pmjoin.SeriesOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, err
	}
	return da, db, nil
}

func buildStrings(sys *pmjoin.System, n, n2, window, stride int, seed int64) (*pmjoin.Dataset, *pmjoin.Dataset, error) {
	a := dataset.DNA(n, seed)
	if n2 == 0 {
		dataset.PlantHomologiesAligned(a, a, n/20000+4, 4*window, 0.004, stride, seed+2)
		da, err := sys.AddString("A", a, pmjoin.StringOptions{Window: window, Stride: stride})
		if err != nil {
			return nil, nil, err
		}
		return da, da, nil
	}
	b := dataset.DNA(n2, seed+1)
	dataset.PlantHomologiesAligned(b, a, n/20000+4, 4*window, 0.004, stride, seed+2)
	da, err := sys.AddString("A", a, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, err
	}
	db, err := sys.AddString("B", b, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		return nil, nil, err
	}
	return da, db, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmjoin:", err)
	os.Exit(1)
}
