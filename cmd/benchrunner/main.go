// Command benchrunner regenerates the paper's tables and figures
// ("Joining Massive High-Dimensional Datasets", ICDE 2003) on the simulated
// disk and prints the same rows/series the paper reports.
//
// Usage:
//
//	benchrunner [-exp all|fig10|...|table2|ablations|load] [-scale 0.25] [-seed 1]
//
// Scale 1.0 uses the paper's exact dataset cardinalities and buffer sizes
// (several minutes of wall time); the default 0.25 scales cardinalities and
// buffers together, preserving every page/buffer ratio and therefore the
// paper's crossovers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmjoin"
	"pmjoin/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig10, fig11, fig12, fig13a, fig13b, fig13c, fig14, table2, ablations, parallel, kernels, pipeline, shards, storage, load")
	scale := flag.Float64("scale", 0.25, "dataset/buffer scale factor (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files (optional)")
	method := pmjoin.SC
	flag.TextVar(&method, "method", method, "join method for -exp parallel")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
			os.Exit(1)
		}
	}

	cfg := &experiments.Config{Scale: *scale, Seed: *seed, Out: os.Stdout}

	type runner struct {
		name string
		run  func(*experiments.Config) error
	}
	wrap := func(f func(*experiments.Config) error) func(*experiments.Config) error { return f }
	runners := []runner{
		{"fig10", wrap(func(c *experiments.Config) error {
			rows, err := experiments.Fig10(c)
			if err != nil {
				return err
			}
			return writeCostCSV(*csvDir, "fig10", rows)
		})},
		{"fig11", wrap(func(c *experiments.Config) error {
			rows, err := experiments.Fig11(c)
			if err != nil {
				return err
			}
			return writeCostCSV(*csvDir, "fig11", rows)
		})},
		{"fig12", wrap(func(c *experiments.Config) error {
			points, err := experiments.Fig12(c)
			if err != nil {
				return err
			}
			return writeSweepCSV(*csvDir, "fig12", "buffer", points)
		})},
		{"table2", wrap(func(c *experiments.Config) error {
			blocks, err := experiments.Table2(c)
			if err != nil {
				return err
			}
			return writeTable2CSV(*csvDir, blocks)
		})},
		{"fig13a", wrap(func(c *experiments.Config) error {
			points, err := experiments.Fig13a(c)
			if err != nil {
				return err
			}
			return writeSweepCSV(*csvDir, "fig13a", "buffer", points)
		})},
		{"fig13b", wrap(func(c *experiments.Config) error {
			points, err := experiments.Fig13b(c)
			if err != nil {
				return err
			}
			return writeSweepCSV(*csvDir, "fig13b", "buffer", points)
		})},
		{"fig13c", wrap(func(c *experiments.Config) error {
			points, err := experiments.Fig13c(c)
			if err != nil {
				return err
			}
			return writeSweepCSV(*csvDir, "fig13c", "buffer", points)
		})},
		{"fig14", wrap(func(c *experiments.Config) error {
			points, err := experiments.Fig14(c)
			if err != nil {
				return err
			}
			return writeSweepCSV(*csvDir, "fig14", "tuples", points)
		})},
		{"metrics", wrap(func(c *experiments.Config) error {
			records, err := experiments.MetricsProfile(c)
			if err != nil {
				return err
			}
			return writeMetricsJSON(*csvDir, records)
		})},
		{"ablations", wrap(func(c *experiments.Config) error {
			if _, err := experiments.AblationFilterDepth(c); err != nil {
				return err
			}
			if _, err := experiments.AblationClusterShape(c); err != nil {
				return err
			}
			if _, err := experiments.AblationSchedule(c); err != nil {
				return err
			}
			if _, err := experiments.AblationHistogram(c); err != nil {
				return err
			}
			if _, err := experiments.AblationReplacement(c); err != nil {
				return err
			}
			if _, err := experiments.AblationReadahead(c); err != nil {
				return err
			}
			_, err := experiments.AblationSeekRatio(c)
			return err
		})},
	}

	// Wall-clock experiments run only when named: their timings depend on
	// the host, so they are excluded from -exp all (whose outputs are
	// deterministic).
	if *exp == "kernels" {
		start := time.Now()
		fmt.Printf("== kernels (seed %d) ==\n", *seed)
		records, err := experiments.KernelsBench(cfg)
		if err == nil {
			err = writeKernelsJSON(*csvDir, records)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernels: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- kernels done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "pipeline" {
		start := time.Now()
		fmt.Printf("== pipeline (scale %g, seed %d) ==\n", *scale, *seed)
		records, err := experiments.PipelineBench(cfg)
		if err == nil {
			err = writePipelineJSON(*csvDir, records)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- pipeline done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "storage" {
		start := time.Now()
		fmt.Printf("== storage (scale %g, seed %d) ==\n", *scale, *seed)
		records, err := experiments.StorageBench(cfg)
		if err == nil {
			err = writeStorageJSON(*csvDir, records)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "storage: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- storage done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "shards" {
		start := time.Now()
		fmt.Printf("== shards (scale %g, seed %d) ==\n", *scale, *seed)
		records, err := experiments.ShardsBench(cfg)
		if err == nil {
			err = writeShardsJSON(*csvDir, records)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "shards: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- shards done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "load" {
		start := time.Now()
		fmt.Printf("== load (scale %g, seed %d) ==\n", *scale, *seed)
		point, err := experiments.LoadBench(cfg, experiments.LoadSpec{})
		if werr := writeLoadJSON(*csvDir, point); err == nil {
			err = werr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- load done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "parallel" {
		start := time.Now()
		fmt.Printf("== parallel (scale %g) ==\n", *scale)
		if _, err := experiments.ParallelSpeedup(cfg, method, nil); err != nil {
			fmt.Fprintf(os.Stderr, "parallel: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- parallel done in %v --\n\n", time.Since(start).Round(time.Millisecond))
		return
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Printf("== %s (scale %g) ==\n", r.name, *scale)
		if err := r.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
