package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"pmjoin/internal/experiments"
)

// writeCostCSV writes a Figure 10/11-style breakdown as CSV.
func writeCostCSV(dir, name string, rows []experiments.CostRow) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"method", "preprocess_s", "cpu_join_s", "io_s", "total_s", "results"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Method,
			fmt.Sprintf("%.6f", r.Preprocess),
			fmt.Sprintf("%.6f", r.CPUJoin),
			fmt.Sprintf("%.6f", r.IO),
			fmt.Sprintf("%.6f", r.Total()),
			strconv.FormatInt(r.Results, 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeSweepCSV writes a Figure 12/13/14-style sweep as CSV with one column
// per method.
func writeSweepCSV(dir, name, xLabel string, points []experiments.SweepPoint) error {
	if dir == "" || len(points) == 0 {
		return nil
	}
	methods := map[string]bool{}
	for _, p := range points {
		for m := range p.Totals {
			methods[m] = true
		}
	}
	cols := make([]string, 0, len(methods))
	for m := range methods {
		cols = append(cols, m)
	}
	sort.Strings(cols)

	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(append([]string{xLabel}, cols...)); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{strconv.Itoa(p.X)}
		for _, m := range cols {
			if v, ok := p.Totals[m]; ok {
				rec = append(rec, fmt.Sprintf("%.6f", v))
			} else {
				rec = append(rec, "")
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeTable2CSV writes the Table 2 blocks as CSV.
func writeTable2CSV(dir string, blocks []experiments.Table2Block) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, "table2.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"pair", "buffer", "sc_io_s", "cc_io_s"}); err != nil {
		return err
	}
	for _, blk := range blocks {
		for i, b := range blk.Buffers {
			rec := []string{
				blk.Pair,
				strconv.Itoa(b),
				fmt.Sprintf("%.6f", blk.SCIO[i]),
				fmt.Sprintf("%.6f", blk.CCIO[i]),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
