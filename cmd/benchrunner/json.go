package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"

	"pmjoin/internal/experiments"
)

// writeMetricsJSON writes the metrics-profile snapshots as a JSON sidecar
// (metrics.json) next to the CSV outputs. Unlike the CSVs, the sidecar keeps
// the wall-clock fields: it is a per-run profiling artifact, not a
// deterministic table.
func writeMetricsJSON(dir string, records []experiments.MetricsRecord) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// kernelsReport is the BENCH_kernels.json document: the kernel-vs-reference
// records plus enough host context to read the wall-clock numbers in
// perspective.
type kernelsReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	Records    []experiments.KernelsRecord
}

// pipelineReport is the BENCH_pipeline.json document: the prefetch on/off
// comparison records plus enough host context to read the wall-clock columns
// in perspective (the modeled columns are host-independent).
type pipelineReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	// Note flags host conditions under which the wall columns carry no
	// signal (single-core hosts cannot overlap coordinator and workers).
	Note    string `json:",omitempty"`
	Records []experiments.PipelinePoint
}

// writePipelineJSON writes the pipelined-execution records as
// BENCH_pipeline.json — into dir when -csv is set, else into the working
// directory (the repo root in the committed-evidence workflow).
func writePipelineJSON(dir string, records []experiments.PipelinePoint) error {
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_pipeline.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	rep := pipelineReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: the pipeline cannot overlap coordinator I/O with worker CPU in host time, so the JoinWall columns are expected to sit at ~1.0x; the modeled columns are the host-independent signal"
	}
	return enc.Encode(rep)
}

// shardsReport is the BENCH_shards.json document: the N-shard vs 1-shard
// comparison records plus enough host context to read the wall-clock columns
// in perspective (the modeled columns are host-independent, and every row's
// report equality against the baseline was asserted before it was recorded).
type shardsReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	// Note flags host conditions under which the wall columns carry no
	// signal (single-core hosts cannot run shard workers concurrently).
	Note    string `json:",omitempty"`
	Records []experiments.ShardsPoint
}

// writeShardsJSON writes the sharded-execution records as BENCH_shards.json
// — into dir when -csv is set, else into the working directory (the repo
// root in the committed-evidence workflow).
func writeShardsJSON(dir string, records []experiments.ShardsPoint) error {
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_shards.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	rep := shardsReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: shard workers cannot run concurrently in host time, so the JoinWall columns are expected to sit at ~1.0x; the modeled columns are the host-independent signal"
	}
	return enc.Encode(rep)
}

// storageReport is the BENCH_storage.json document: the sim vs file-store
// comparison records plus enough host context to read the wall-clock columns
// in perspective (every row's report equality against the simulator baseline
// and the invariance of the physical read count were asserted before the row
// was recorded).
type storageReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	// Note flags host conditions under which the wall columns carry no
	// signal (single-core hosts run the background readers' decode work on
	// the join's only core).
	Note    string `json:",omitempty"`
	Records []experiments.StoragePoint
}

// writeStorageJSON writes the storage-backend records as BENCH_storage.json —
// into dir when -csv is set, else into the working directory (the repo root
// in the committed-evidence workflow).
func writeStorageJSON(dir string, records []experiments.StoragePoint) error {
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_storage.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	rep := storageReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core host: the background readers' blocked preads overlap, but their decode work shares the join's only core, so the speedup columns are expected to sit near 1.0x; the measured I/O columns and the asserted report equality are the host-independent signal"
	}
	return enc.Encode(rep)
}

// writeKernelsJSON writes the kernel micro-benchmark records as
// BENCH_kernels.json — into dir when -csv is set, else into the working
// directory (the repo root in the committed-evidence workflow).
func writeKernelsJSON(dir string, records []experiments.KernelsRecord) error {
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_kernels.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(kernelsReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	})
}

// loadReport is the BENCH_load.json document: the pmjoind load-mix outcome
// (request accounting, latency percentiles, the server's own ledger) plus
// enough host context to read the wall-clock columns in perspective. The
// correctness columns (zero failed, zero mismatched) are host-independent —
// the run itself fails if either is violated.
type loadReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	Point      *experiments.LoadPoint
}

// writeLoadJSON writes the load-mix outcome as BENCH_load.json — into dir
// when -csv is set, else into the working directory (the repo root in the
// committed-evidence workflow).
func writeLoadJSON(dir string, point *experiments.LoadPoint) error {
	if point == nil {
		return nil
	}
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_load.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(loadReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Point:      point,
	})
}
