package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"

	"pmjoin/internal/experiments"
)

// writeMetricsJSON writes the metrics-profile snapshots as a JSON sidecar
// (metrics.json) next to the CSV outputs. Unlike the CSVs, the sidecar keeps
// the wall-clock fields: it is a per-run profiling artifact, not a
// deterministic table.
func writeMetricsJSON(dir string, records []experiments.MetricsRecord) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// kernelsReport is the BENCH_kernels.json document: the kernel-vs-reference
// records plus enough host context to read the wall-clock numbers in
// perspective.
type kernelsReport struct {
	GoVersion  string
	GOARCH     string
	GOMAXPROCS int
	Records    []experiments.KernelsRecord
}

// writeKernelsJSON writes the kernel micro-benchmark records as
// BENCH_kernels.json — into dir when -csv is set, else into the working
// directory (the repo root in the committed-evidence workflow).
func writeKernelsJSON(dir string, records []experiments.KernelsRecord) error {
	if dir == "" {
		dir = "."
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_kernels.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(kernelsReport{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
	})
}
