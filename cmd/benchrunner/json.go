package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"pmjoin/internal/experiments"
)

// writeMetricsJSON writes the metrics-profile snapshots as a JSON sidecar
// (metrics.json) next to the CSV outputs. Unlike the CSVs, the sidecar keeps
// the wall-clock fields: it is a per-run profiling artifact, not a
// deterministic table.
func writeMetricsJSON(dir string, records []experiments.MetricsRecord) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, "metrics.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
