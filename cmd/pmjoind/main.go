// Command pmjoind serves pmjoin as a long-lived HTTP/JSON join service: one
// shared System and simulated disk, a server-wide shared frame cache, an
// admission controller bounding concurrent joins by buffer-frame budget, and
// a plan cache for repeated Explain requests.
//
// Usage:
//
//	pmjoind [-addr :7744] [-shared-frames 4096] [-admit-frames 16384]
//	        [-queue-depth 64] [-queue-timeout 5s] [-page-bytes 4096]
//
// Endpoints (see internal/joinsvc):
//
//	POST /open        create a synthetic dataset
//	POST /join        run a join (429 + Retry-After under overload)
//	POST /explain     plan a join through the plan cache
//	GET  /metrics     service counters + folded per-request metrics
//	GET  /debug/joins in-flight and recent requests
//	GET  /healthz     liveness
//
// Quickstart:
//
//	pmjoind -addr :7744 &
//	curl -s localhost:7744/open -d '{"name":"a","kind":"vector","n":20000,"seed":1}'
//	curl -s localhost:7744/open -d '{"name":"b","kind":"vector","n":15000,"seed":2}'
//	curl -s localhost:7744/join -d '{"left":"a","right":"b","options":{"method":"SC","epsilon":0.02,"bufferPages":400}}'
//	curl -s localhost:7744/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmjoin"
	"pmjoin/internal/join"
	"pmjoin/internal/joinsvc"
)

func main() {
	addr := flag.String("addr", ":7744", "listen address")
	pageBytes := flag.Int("page-bytes", 0, "simulated disk page size (0 = default 4096)")
	sharedFrames := flag.Int("shared-frames", 0, "shared frame cache capacity in pages (0 = default 4096, negative disables)")
	poolShards := flag.Int("pool-shards", 0, "lock shards in the shared frame cache (0 = default 16)")
	admitFrames := flag.Int("admit-frames", 0, "admission budget: total buffer frames joinable at once (0 = 4x shared-frames)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue length before 429 (0 = default 64)")
	queueTimeout := flag.Duration("queue-timeout", 0, "longest a join waits for admission (0 = default 5s)")
	planCache := flag.Int("plan-cache", 0, "cached Explain plans (0 = default 128)")
	recent := flag.Int("recent", 0, "terminal requests kept for /debug/joins (0 = default 64)")
	flag.Parse()

	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: *pageBytes})
	srv, err := pmjoin.NewServer(sys, pmjoin.ServeOptions{
		SharedFrames:     *sharedFrames,
		PoolShards:       *poolShards,
		AdmitFrames:      *admitFrames,
		QueueDepth:       *queueDepth,
		QueueTimeout:     *queueTimeout,
		PlanCacheEntries: *planCache,
		RecentJoins:      *recent,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmjoind: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           joinsvc.New(srv).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The shutdown watcher runs on a WorkerPool (the repo's one sanctioned
	// concurrency primitive — see the rawgo rule in LINTING.md): it waits
	// for SIGINT/SIGTERM, then drains the listener. stop() below also
	// cancels ctx, so the watcher always terminates and Close never hangs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	pool := join.NewWorkerPool(1)
	pool.Run(func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pmjoind: shutdown: %v\n", err)
		}
	})

	so := srv.Options()
	fmt.Printf("pmjoind: serving on %s (shared frames %d, admit budget %d frames)\n",
		*addr, so.SharedFrames, so.AdmitFrames)
	err = hs.ListenAndServe()
	stop()
	pool.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pmjoind: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Printf("pmjoind: drained — %d admitted, %d completed, %d rejected\n",
		st.Admitted, st.Completed, st.Rejected)
}
