package pmjoin

import (
	"fmt"

	"pmjoin/internal/predmat"
)

// CalibrateEpsilon returns an epsilon whose prediction matrix for joining a
// and b has approximately the target density (fraction of marked page
// pairs). It binary-searches epsilon over matrix builds; no simulated I/O is
// charged. Synthetic workloads use it to land in the same page-selectivity
// regime the paper reports (e.g. §9.1 quotes ~10% and ~2% selectivities)
// without depending on the generators' absolute coordinate scales.
//
// For string datasets the returned epsilon is an integer edit-distance
// bound, so only coarse targets are reachable.
func (s *System) CalibrateEpsilon(a, b *Dataset, target float64) (float64, error) {
	if a.kind != b.kind {
		return 0, fmt.Errorf("pmjoin: cannot calibrate across kinds %v and %v", a.kind, b.kind)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("pmjoin: target density %g outside (0,1)", target)
	}
	density := func(eps float64) (float64, error) {
		m, err := predmat.Build(a.ds.Root, b.ds.Root, a.ds.Pages, b.ds.Pages,
			s.matrixEpsilon(a, eps), s.predictor(a),
			predmat.BuildOptions{FilterDepth: predmat.DefaultFilterDepth})
		if err != nil {
			return 0, err
		}
		return m.Density(), nil
	}

	// Find an upper bound by doubling.
	hi := 1e-6
	if a.kind == KindString {
		hi = 1
	}
	var dHi float64
	for i := 0; i < 64; i++ {
		var err error
		dHi, err = density(hi)
		if err != nil {
			return 0, err
		}
		if dHi >= target {
			break
		}
		hi *= 2
	}
	if dHi < target {
		return hi, fmt.Errorf("pmjoin: target density %g unreachable (max %g)", target, dHi)
	}
	lo := 0.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if a.kind == KindString {
			mid = float64(int(mid))
			if mid <= lo {
				break
			}
		}
		d, err := density(mid)
		if err != nil {
			return 0, err
		}
		if d >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
