package pmjoin

import (
	"reflect"
	"testing"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
	"pmjoin/internal/metrics"
)

// planFields strips the metrics snapshot from a plan, leaving exactly the
// fields the determinism contract covers.
func planFields(p *Plan) Plan {
	c := *p
	c.Metrics = nil
	return c
}

// metricsWorkload is a vector SC workload big enough to produce several
// clusters and nontrivial buffer traffic.
func metricsWorkload(t *testing.T) (*System, *Dataset, *Dataset, Options) {
	t.Helper()
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(400, 2, 1), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(300, 2, 2), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, da, db, Options{
		Method: SC, Epsilon: 0.05, BufferPages: 16,
		CollectPairs: true, Parallelism: 1,
	}
}

// TestMetricsDeterminism is the acceptance contract of the metrics layer:
// Report, Pairs and Plan are bit-for-bit identical with metrics and tracing
// enabled vs. disabled, and at Parallelism 1 vs. >1.
func TestMetricsDeterminism(t *testing.T) {
	sys, da, db, opt := metricsWorkload(t)

	base, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Count() == 0 {
		t.Fatal("workload has no results")
	}
	if base.Metrics != nil {
		t.Fatal("Metrics collected without Options.Metrics")
	}
	basePlan, err := sys.Explain(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if basePlan.Metrics != nil {
		t.Fatal("Plan.Metrics collected without Options.Metrics")
	}

	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"metrics", func(o *Options) { o.Metrics = true }},
		{"trace", func(o *Options) { o.Trace = true }},
		{"metrics-parallel", func(o *Options) { o.Metrics = true; o.Parallelism = 4 }},
		{"trace-parallel", func(o *Options) { o.Trace = true; o.Parallelism = 4 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := opt
			tc.mod(&o)
			res, err := sys.Join(da, db, o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics == nil {
				t.Fatal("Options.Metrics set but Result.Metrics is nil")
			}
			if got, want := deterministicFields(res), deterministicFields(base); !reflect.DeepEqual(got, want) {
				t.Errorf("%s result differs from baseline:\n base: %+v\n got:  %+v", tc.name, want, got)
			}
			plan, err := sys.Explain(da, db, o)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Metrics == nil {
				t.Fatal("Options.Metrics set but Plan.Metrics is nil")
			}
			if got, want := planFields(plan), planFields(basePlan); !reflect.DeepEqual(got, want) {
				t.Errorf("%s plan differs from baseline:\n base: %+v\n got:  %+v", tc.name, want, got)
			}
		})
	}
}

// TestMetricsPhaseSumsMatchReport asserts the snapshot's accounting identity
// against the run's own Report: the per-phase disk deltas sum to the run's
// total disk.Stats, and the totals agree with the Report's counters.
func TestMetricsPhaseSumsMatchReport(t *testing.T) {
	sys, da, db, opt := metricsWorkload(t)
	opt.Metrics = true
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics

	var disks disk.Stats
	var bufs buffer.Stats
	for _, ps := range m.Phases {
		disks = disks.Add(ps.Disk)
		bufs = bufs.Add(ps.Buffer)
	}
	if disks != m.Disk {
		t.Errorf("phase disk deltas sum to %+v, total is %+v", disks, m.Disk)
	}
	if bufs != m.Buffer {
		t.Errorf("phase buffer deltas sum to %+v, total is %+v", bufs, m.Buffer)
	}
	if m.Disk.Reads != res.Report.PageReads {
		t.Errorf("Metrics.Disk.Reads = %d, Report.PageReads = %d", m.Disk.Reads, res.Report.PageReads)
	}
	if got := m.Disk.Seeks + m.Disk.WriteSeeks; got != res.Report.Seeks {
		t.Errorf("Metrics seeks = %d, Report.Seeks = %d", got, res.Report.Seeks)
	}
	if m.Buffer.Hits != res.Report.Hits || m.Buffer.Misses != res.Report.Misses {
		t.Errorf("Metrics.Buffer = %+v, Report hits/misses = %d/%d",
			m.Buffer, res.Report.Hits, res.Report.Misses)
	}
	// SC issues its reads inside the executor: the join phase must own every
	// read and the idle phases none.
	if m.Phases[metrics.PhaseJoin].Disk.Reads != m.Disk.Reads {
		t.Errorf("join phase owns %d of %d reads",
			m.Phases[metrics.PhaseJoin].Disk.Reads, m.Disk.Reads)
	}
	if w := m.Phases[metrics.PhaseMatrix].Wall + m.Phases[metrics.PhaseCluster].Wall; w <= 0 {
		t.Errorf("matrix+cluster phases recorded no wall time")
	}
}

// TestMetricsPredictedVsMeasured compares Explain's per-cluster read
// prediction (Lemma 4: pages minus predecessor overlap) with the join's
// actually-measured per-cluster turnover: the run visits the same clusters in
// the same schedule order, pins exactly the predicted pages, realizes some of
// the predicted sharing, and every buffer miss of the run is attributed to
// exactly one cluster.
func TestMetricsPredictedVsMeasured(t *testing.T) {
	sys, da, db, opt := metricsWorkload(t)
	opt.Metrics = true
	t.Run("cross", func(t *testing.T) { testPredictedVsMeasured(t, sys, da, db, opt) })
	// Self joins exercise the page-set dedup: a cluster's row and col pages
	// come from one file, so the plan must count shared frames once to line
	// up with the executor's pinned sets.
	t.Run("self", func(t *testing.T) { testPredictedVsMeasured(t, sys, da, da, opt) })
}

func testPredictedVsMeasured(t *testing.T, sys *System, da, db *Dataset, opt Options) {
	plan, err := sys.Explain(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics

	if len(plan.ClusterIO) == 0 {
		t.Fatal("plan has no ClusterIO entries")
	}
	if len(plan.ClusterIO) != len(m.Clusters) {
		t.Fatalf("plan schedules %d clusters, run measured %d", len(plan.ClusterIO), len(m.Clusters))
	}
	var predictedSavings int64
	var fetched, reused int64
	for i, pc := range plan.ClusterIO {
		mc := m.Clusters[i]
		if pc.Cluster != mc.Cluster {
			t.Fatalf("schedule position %d: plan visits cluster %d, run visited %d", i, pc.Cluster, mc.Cluster)
		}
		if pc.Pages != mc.Pinned {
			t.Errorf("cluster %d: plan pins %d pages, run pinned %d", pc.Cluster, pc.Pages, mc.Pinned)
		}
		if mc.Fetched+mc.Reused != int64(mc.Pinned) {
			t.Errorf("cluster %d: fetched %d + reused %d != pinned %d",
				mc.Cluster, mc.Fetched, mc.Reused, mc.Pinned)
		}
		if mc.Fetched > int64(mc.Pinned) {
			t.Errorf("cluster %d: fetched %d of %d pinned pages", mc.Cluster, mc.Fetched, mc.Pinned)
		}
		predictedSavings += int64(pc.Pages - pc.Reads)
		fetched += mc.Fetched
		reused += mc.Reused
	}
	if predictedSavings != plan.ScheduleSavings {
		t.Errorf("ClusterIO savings sum to %d, ScheduleSavings is %d", predictedSavings, plan.ScheduleSavings)
	}
	// The prediction assumes predecessor-shared pages stay resident; the run
	// realizes a nonzero fraction of that sharing (it may fall short where the
	// replacement policy evicted a shared page before its pin, and overshoot
	// where older clusters' pages survived).
	if plan.ScheduleSavings > 0 && reused == 0 {
		t.Errorf("schedule predicts %d reused pages, run reused none", plan.ScheduleSavings)
	}
	// SC reads pages only through cluster pin loops, so the per-cluster
	// fetches partition the run's misses.
	if fetched != m.Buffer.Misses {
		t.Errorf("per-cluster fetches sum to %d, run missed %d", fetched, m.Buffer.Misses)
	}
}

// TestMetricsTraceThroughAPI exercises the trace ring end to end: events
// arrive typed and ordered, and a small TraceCapacity bounds the ring while
// Seq still exposes the run's full event count.
func TestMetricsTraceThroughAPI(t *testing.T) {
	sys, da, db, opt := metricsWorkload(t)
	opt.Trace = true
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if len(m.Events) == 0 {
		t.Fatal("trace enabled but no events recorded")
	}
	if m.EventsDropped != 0 {
		t.Fatalf("default capacity dropped %d events", m.EventsDropped)
	}
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Seq != m.Events[i-1].Seq+1 {
			t.Fatalf("event %d: Seq %d follows %d", i, m.Events[i].Seq, m.Events[i-1].Seq)
		}
	}
	var starts, ends, seeks int
	for _, ev := range m.Events {
		switch ev.Kind {
		case metrics.EvClusterStart:
			starts++
		case metrics.EvClusterEnd:
			ends++
		case metrics.EvSeek:
			seeks++
		}
	}
	if starts != len(m.Clusters) || ends != len(m.Clusters) {
		t.Errorf("trace has %d cluster starts / %d ends for %d clusters", starts, ends, len(m.Clusters))
	}
	if int64(seeks) != m.Disk.Seeks+m.Disk.WriteSeeks {
		t.Errorf("trace has %d seek events, disk counted %d", seeks, m.Disk.Seeks+m.Disk.WriteSeeks)
	}
	// Re-run at full capacity for the steady-state event count: the first run
	// built the prediction matrix (two phase events the cached runs lack).
	res, err = sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(res.Metrics.Events))
	if res.Metrics.EventsDropped != 0 {
		t.Fatalf("default capacity dropped %d events", res.Metrics.EventsDropped)
	}

	// A tiny ring keeps only the newest events and reports the overwrites.
	opt.TraceCapacity = 8
	res, err = sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	m = res.Metrics
	if len(m.Events) != 8 {
		t.Fatalf("ring of 8 returned %d events", len(m.Events))
	}
	if m.EventsDropped != full-8 {
		t.Errorf("ring dropped %d events, want %d", m.EventsDropped, full-8)
	}
	if last := m.Events[7]; last.Seq != full-1 {
		t.Errorf("newest event Seq = %d, want %d", last.Seq, full-1)
	}
}
