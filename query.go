package pmjoin

import (
	"container/heap"
	"fmt"
	"sort"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
)

// QueryResult reports the outcome and simulated I/O of a single-dataset
// query (range or k-nearest-neighbor).
type QueryResult struct {
	// IDs of the matching objects. Range queries return them in ascending
	// ID order; k-NN in ascending distance order.
	IDs []int
	// Distances parallel IDs for k-NN queries (nil for range queries).
	Distances []float64
	// IOSeconds and PageReads charge the data pages the query touched
	// (index nodes are memory resident, as in the paper's setting).
	IOSeconds float64
	PageReads int64
}

// RangeQuery returns all objects of the vector dataset d within eps of
// center under the dataset's norm, reading candidate data pages through a
// buffer of bufferPages frames.
func (s *System) RangeQuery(d *Dataset, center []float64, eps float64, bufferPages int) (*QueryResult, error) {
	if err := s.checkQuery(d, center, bufferPages); err != nil {
		return nil, err
	}
	if eps < 0 {
		return nil, fmt.Errorf("pmjoin: negative epsilon %g", eps)
	}
	pool, err := buffer.NewPool(s.d, bufferPages, buffer.LRU)
	if err != nil {
		return nil, err
	}
	before := s.d.Stats()
	q := geom.Vector(center)
	res := &QueryResult{}

	var walk func(n *index.Node) error
	walk = func(n *index.Node) error {
		if d.norm.MinDistPoint(q, n.MBR) > eps {
			return nil
		}
		if n.IsLeaf() {
			pg, err := pool.Get(disk.PageAddr{File: d.ds.File, Page: n.Page})
			if err != nil {
				return err
			}
			vp := pg.Payload.(*join.VectorPage)
			for i, v := range vp.Vecs {
				if d.norm.Dist(q, v) <= eps {
					res.IDs = append(res.IDs, vp.IDs[i])
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.ds.Root); err != nil {
		return nil, err
	}
	sort.Ints(res.IDs)
	s.chargeQuery(res, before)
	return res, nil
}

// nnPQ is the best-first queue of the k-NN search over the MBR hierarchy.
type nnPQ []nnItem

type nnItem struct {
	dist float64
	node *index.Node // nil for object entries
	id   int
}

func (q nnPQ) Len() int           { return len(q) }
func (q nnPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnPQ) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnPQ) Pop() any          { o := *q; n := len(o); e := o[n-1]; *q = o[:n-1]; return e }

// NearestNeighbors returns the k objects of the vector dataset d closest to
// center, best-first over the index hierarchy (Hjaltason & Samet, cited in
// §2.2); data pages are fetched through a buffer only when a leaf reaches
// the head of the queue.
func (s *System) NearestNeighbors(d *Dataset, center []float64, k, bufferPages int) (*QueryResult, error) {
	if err := s.checkQuery(d, center, bufferPages); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("pmjoin: k = %d", k)
	}
	pool, err := buffer.NewPool(s.d, bufferPages, buffer.LRU)
	if err != nil {
		return nil, err
	}
	before := s.d.Stats()
	q := geom.Vector(center)
	pq := &nnPQ{}
	heap.Init(pq)
	heap.Push(pq, nnItem{dist: d.norm.MinDistPoint(q, d.ds.Root.MBR), node: d.ds.Root})

	res := &QueryResult{}
	for pq.Len() > 0 && len(res.IDs) < k {
		e := heap.Pop(pq).(nnItem)
		if e.node == nil {
			res.IDs = append(res.IDs, e.id)
			res.Distances = append(res.Distances, e.dist)
			continue
		}
		if e.node.IsLeaf() {
			pg, err := pool.Get(disk.PageAddr{File: d.ds.File, Page: e.node.Page})
			if err != nil {
				return nil, err
			}
			vp := pg.Payload.(*join.VectorPage)
			for i, v := range vp.Vecs {
				heap.Push(pq, nnItem{dist: d.norm.Dist(q, v), id: vp.IDs[i]})
			}
			continue
		}
		for _, c := range e.node.Children {
			heap.Push(pq, nnItem{dist: d.norm.MinDistPoint(q, c.MBR), node: c})
		}
	}
	s.chargeQuery(res, before)
	return res, nil
}

func (s *System) checkQuery(d *Dataset, center []float64, bufferPages int) error {
	if d.sys != s {
		return fmt.Errorf("pmjoin: dataset belongs to a different system")
	}
	if d.kind != KindVector {
		return fmt.Errorf("pmjoin: %v datasets do not support point queries", d.kind)
	}
	if len(center) != d.dim {
		return fmt.Errorf("pmjoin: query dimension %d, dataset dimension %d", len(center), d.dim)
	}
	if bufferPages < 1 {
		return fmt.Errorf("pmjoin: buffer of %d pages", bufferPages)
	}
	return nil
}

func (s *System) chargeQuery(res *QueryResult, before disk.Stats) {
	after := s.d.Stats()
	delta := disk.Stats{
		Reads:      after.Reads - before.Reads,
		Seeks:      after.Seeks - before.Seeks,
		GapPages:   after.GapPages - before.GapPages,
		Writes:     after.Writes - before.Writes,
		WriteSeeks: after.WriteSeeks - before.WriteSeeks,
	}
	res.PageReads = delta.Reads
	res.IOSeconds = s.d.Model().Cost(delta)
}
