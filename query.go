package pmjoin

import (
	"container/heap"
	"fmt"
	"sort"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
)

// QueryOptions configures a single-dataset query. The zero value selects
// every default.
type QueryOptions struct {
	// BufferPages is the buffer size the query reads candidate data pages
	// through (minimum 1; 0 means the default, 4).
	BufferPages int
	// MaxResults caps the number of returned objects (0 means unlimited).
	// A range query keeps the MaxResults smallest IDs; k-NN effectively
	// lowers k to MaxResults. QueryResult.Truncated reports that the cap
	// cut matches off.
	MaxResults int
}

func (o *QueryOptions) validate() error {
	if o.BufferPages == 0 {
		o.BufferPages = 4
	}
	if o.BufferPages < 1 {
		return fmt.Errorf("pmjoin: buffer of %d pages", o.BufferPages)
	}
	if o.MaxResults < 0 {
		return fmt.Errorf("pmjoin: negative MaxResults %d", o.MaxResults)
	}
	return nil
}

// legacyQueryOptions maps the deprecated positional bufferPages argument to
// QueryOptions, preserving the old contract that bufferPages < 1 is an error
// (QueryOptions itself treats 0 as "use the default").
func legacyQueryOptions(bufferPages int) (QueryOptions, error) {
	if bufferPages < 1 {
		return QueryOptions{}, fmt.Errorf("pmjoin: buffer of %d pages", bufferPages)
	}
	return QueryOptions{BufferPages: bufferPages}, nil
}

// queryScope validates the preconditions shared by every query and opens the
// private disk session and buffer pool the query reads candidate data pages
// through. The session starts with cold heads, so concurrent queries do not
// perturb each other's costs.
func (s *System) queryScope(d *Dataset, center []float64, opts *QueryOptions) (*disk.Session, *buffer.Pool, error) {
	if err := s.checkQuery(d, center); err != nil {
		return nil, nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	io := s.d.NewSession()
	pool, err := buffer.NewPool(io, opts.BufferPages, buffer.LRU)
	if err != nil {
		return nil, nil, err
	}
	return io, pool, nil
}

// QueryResult reports the outcome and simulated I/O of a single-dataset
// query (range or k-nearest-neighbor).
type QueryResult struct {
	// IDs of the matching objects. Range queries return them in ascending
	// ID order; k-NN in ascending distance order.
	IDs []int
	// Distances parallel IDs for k-NN queries (nil for range queries).
	Distances []float64
	// Truncated reports that QueryOptions.MaxResults cut matches off.
	Truncated bool
	// IOSeconds and PageReads charge the data pages the query touched
	// (index nodes are memory resident, as in the paper's setting).
	IOSeconds float64
	PageReads int64
}

// RangeQuery returns all objects of the vector dataset d within eps of
// center under the dataset's norm, reading candidate data pages through a
// buffer of bufferPages frames.
//
// Deprecated: use RangeQueryOpts, which takes QueryOptions and supports
// result capping. RangeQuery(d, c, eps, b) is RangeQueryOpts(d, c, eps,
// QueryOptions{BufferPages: b}).
func (s *System) RangeQuery(d *Dataset, center []float64, eps float64, bufferPages int) (*QueryResult, error) {
	opts, err := legacyQueryOptions(bufferPages)
	if err != nil {
		return nil, err
	}
	return s.RangeQueryOpts(d, center, eps, opts)
}

// RangeQueryOpts returns the objects of the vector dataset d within eps of
// center under the dataset's norm, in ascending ID order. Like every
// read-only call, the query charges its I/O to a private disk session, so
// concurrent queries do not perturb each other's costs.
func (s *System) RangeQueryOpts(d *Dataset, center []float64, eps float64, opts QueryOptions) (*QueryResult, error) {
	if eps < 0 {
		return nil, fmt.Errorf("pmjoin: negative epsilon %g", eps)
	}
	io, pool, err := s.queryScope(d, center, &opts)
	if err != nil {
		return nil, err
	}
	q := geom.Vector(center)
	res := &QueryResult{}

	var walk func(n *index.Node) error
	walk = func(n *index.Node) error {
		if d.norm.MinDistPoint(q, n.MBR) > eps {
			return nil
		}
		if n.IsLeaf() {
			pg, err := pool.Get(disk.PageAddr{File: d.ds.File, Page: n.Page})
			if err != nil {
				return err
			}
			vp := pg.Payload.(*join.VectorPage)
			for i, v := range vp.Vecs {
				if d.norm.Dist(q, v) <= eps {
					res.IDs = append(res.IDs, vp.IDs[i])
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(d.ds.Root); err != nil {
		return nil, err
	}
	sort.Ints(res.IDs)
	if opts.MaxResults > 0 && len(res.IDs) > opts.MaxResults {
		res.IDs = res.IDs[:opts.MaxResults]
		res.Truncated = true
	}
	chargeQuery(res, io)
	return res, nil
}

// nnPQ is the best-first queue of the k-NN search over the MBR hierarchy.
type nnPQ []nnItem

type nnItem struct {
	dist float64
	node *index.Node // nil for object entries
	id   int
}

func (q nnPQ) Len() int           { return len(q) }
func (q nnPQ) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnPQ) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnPQ) Pop() any          { o := *q; n := len(o); e := o[n-1]; *q = o[:n-1]; return e }

// NearestNeighbors returns the k objects of the vector dataset d closest to
// center.
//
// Deprecated: use NearestNeighborsOpts, which takes QueryOptions and
// supports result capping. NearestNeighbors(d, c, k, b) is
// NearestNeighborsOpts(d, c, k, QueryOptions{BufferPages: b}).
func (s *System) NearestNeighbors(d *Dataset, center []float64, k, bufferPages int) (*QueryResult, error) {
	opts, err := legacyQueryOptions(bufferPages)
	if err != nil {
		return nil, err
	}
	return s.NearestNeighborsOpts(d, center, k, opts)
}

// NearestNeighborsOpts returns the k objects of the vector dataset d closest
// to center, best-first over the index hierarchy (Hjaltason & Samet, cited
// in §2.2); data pages are fetched through a buffer only when a leaf reaches
// the head of the queue. A MaxResults below k lowers k and marks the result
// truncated.
func (s *System) NearestNeighborsOpts(d *Dataset, center []float64, k int, opts QueryOptions) (*QueryResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pmjoin: k = %d", k)
	}
	io, pool, err := s.queryScope(d, center, &opts)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	if opts.MaxResults > 0 && k > opts.MaxResults {
		k = opts.MaxResults
		res.Truncated = true
	}
	q := geom.Vector(center)
	pq := &nnPQ{}
	heap.Init(pq)
	heap.Push(pq, nnItem{dist: d.norm.MinDistPoint(q, d.ds.Root.MBR), node: d.ds.Root})

	for pq.Len() > 0 && len(res.IDs) < k {
		e := heap.Pop(pq).(nnItem)
		if e.node == nil {
			res.IDs = append(res.IDs, e.id)
			res.Distances = append(res.Distances, e.dist)
			continue
		}
		if e.node.IsLeaf() {
			pg, err := pool.Get(disk.PageAddr{File: d.ds.File, Page: e.node.Page})
			if err != nil {
				return nil, err
			}
			vp := pg.Payload.(*join.VectorPage)
			for i, v := range vp.Vecs {
				heap.Push(pq, nnItem{dist: d.norm.Dist(q, v), id: vp.IDs[i]})
			}
			continue
		}
		for _, c := range e.node.Children {
			heap.Push(pq, nnItem{dist: d.norm.MinDistPoint(q, c.MBR), node: c})
		}
	}
	chargeQuery(res, io)
	return res, nil
}

func (s *System) checkQuery(d *Dataset, center []float64) error {
	if d.sys != s {
		return fmt.Errorf("pmjoin: dataset belongs to a different system")
	}
	if d.kind != KindVector {
		return fmt.Errorf("pmjoin: %v datasets do not support point queries", d.kind)
	}
	if len(center) != d.dim {
		return fmt.Errorf("pmjoin: query dimension %d, dataset dimension %d", len(center), d.dim)
	}
	return nil
}

// chargeQuery converts the query session's charges to simulated seconds.
// The session started with cold heads, so the cost is a pure function of
// the query's own access sequence, independent of whatever ran before.
func chargeQuery(res *QueryResult, io *disk.Session) {
	st := io.Stats()
	res.PageReads = st.Reads
	res.IOSeconds = io.Cost()
}
