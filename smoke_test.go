package pmjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pmjoin/internal/dataset"
)

// allMethods lists every join method applicable to all data kinds;
// vectorMethods adds the vector-only PBSM. The cross-method agreement tests
// rely on all of them producing identical result sets.
var allMethods = []Method{NLJ, PMNLJ, RandomSC, SC, CC, EGO, BFRJ}

// vectorMethods is allMethods plus the vector-only comparators.
var vectorMethods = append(append([]Method(nil), allMethods...), PBSM)

func randomVecs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// bruteVecCount counts pairs within eps under L2, with self semantics when
// self is true.
func bruteVecCount(a, b [][]float64, eps float64, self bool) int64 {
	var count int64
	for i, va := range a {
		for j, vb := range b {
			if self && i >= j {
				continue
			}
			var s float64
			for d := range va {
				x := va[d] - vb[d]
				s += x * x
			}
			if s <= eps*eps {
				count++
			}
		}
	}
	return count
}

func sortPairs(ps [][2]int) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestVectorJoinAllMethodsAgree(t *testing.T) {
	va := randomVecs(400, 2, 1)
	vb := randomVecs(300, 2, 2)
	const eps = 0.05

	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", va, VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", vb, VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}

	want := bruteVecCount(va, vb, eps, false)
	if want == 0 {
		t.Fatal("test workload has no result pairs")
	}

	var reference [][2]int
	for _, m := range vectorMethods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			res, err := sys.Join(da, db, Options{
				Method: m, Epsilon: eps, BufferPages: 16, CollectPairs: true, MaxPairs: 1 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count() != want {
				t.Fatalf("%v found %d pairs, brute force %d", m, res.Count(), want)
			}
			sortPairs(res.Pairs)
			if reference == nil {
				reference = res.Pairs
				return
			}
			if fmt.Sprint(res.Pairs) != fmt.Sprint(reference) {
				t.Fatalf("%v produced a different pair set", m)
			}
		})
	}
}

func TestVectorSelfJoinAllMethodsAgree(t *testing.T) {
	va := randomVecs(350, 2, 3)
	const eps = 0.04

	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", va, VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteVecCount(va, va, eps, true)
	if want == 0 {
		t.Fatal("test workload has no result pairs")
	}
	for _, m := range vectorMethods {
		res, err := sys.Join(da, da, Options{Method: m, Epsilon: eps, BufferPages: 16})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Count() != want {
			t.Errorf("%v self join found %d pairs, brute force %d", m, res.Count(), want)
		}
	}
}

func TestStringJoinAllMethodsAgree(t *testing.T) {
	a := dataset.DNA(3000, 10)
	b := dataset.DNA(2500, 11)
	dataset.PlantHomologies(b, a, 6, 80, 0.02, 12)

	sys := NewSystem(DiskModel{PageBytes: 512})
	da, err := sys.AddString("a", a, StringOptions{Window: 64, Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddString("b", b, StringOptions{Window: 64, Stride: 8})
	if err != nil {
		t.Fatal(err)
	}
	var want int64 = -1
	for _, m := range allMethods {
		res, err := sys.Join(da, db, Options{Method: m, Epsilon: 4, BufferPages: 16})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if want < 0 {
			want = res.Count()
			if want == 0 {
				t.Fatal("string workload has no result pairs; planting failed")
			}
			continue
		}
		if res.Count() != want {
			t.Errorf("%v found %d pairs, NLJ found %d", m, res.Count(), want)
		}
	}
}

func TestSeriesSelfJoinAllMethodsAgree(t *testing.T) {
	s := dataset.RandomWalk(4000, 20)
	sys := NewSystem(DiskModel{PageBytes: 1024})
	ds, err := sys.AddSeries("walk", s, SeriesOptions{Window: 32, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want int64 = -1
	for _, m := range allMethods {
		res, err := sys.Join(ds, ds, Options{Method: m, Epsilon: 3.0, BufferPages: 16})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if want < 0 {
			want = res.Count()
			continue
		}
		if res.Count() != want {
			t.Errorf("%v found %d pairs, NLJ found %d", m, res.Count(), want)
		}
	}
	if want == 0 {
		t.Log("series workload produced no pairs (acceptable but weak)")
	}
}
