package pmjoin

import (
	"reflect"
	"testing"

	"pmjoin/internal/dataset"
)

// TestKernelsDeterminism is the kernel half of the determinism contract: for
// every data kind and method, a join with Kernels on produces a Result
// (Report, Pairs, matrix stats) and a Plan bit-for-bit identical to the run
// with Kernels off, at Parallelism 1 and at GOMAXPROCS. Each mode runs on a
// fresh System over identical generated data, so the prediction-matrix cache
// of one mode can never mask a divergence in the other.
func TestKernelsDeterminism(t *testing.T) {
	type workload struct {
		name    string
		methods []Method
		build   func(t *testing.T) (*System, *Dataset, *Dataset)
		opt     Options
	}
	loads := []workload{
		{
			name:    "vector-L2",
			methods: vectorMethods,
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(300, 2, 1), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(200, 2, 2), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 0.05, BufferPages: 16, CollectPairs: true},
		},
		{
			// The remaining norms exercise the L1, L∞ and PowInt-band kernel
			// paths; the cheaper method subset keeps the matrix, index and
			// grid pipelines covered without rejoining everything.
			name:    "vector-L1",
			methods: []Method{PMNLJ, EGO, BFRJ},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(250, 3, 3), VectorOptions{NormP: 1})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, da
			},
			opt: Options{Epsilon: 0.08, BufferPages: 16, CollectPairs: true},
		},
		{
			name:    "vector-Linf",
			methods: []Method{PMNLJ, EGO, BFRJ},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(250, 3, 4), VectorOptions{NormP: -1})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, da
			},
			opt: Options{Epsilon: 0.05, BufferPages: 16, CollectPairs: true},
		},
		{
			name:    "vector-L3",
			methods: []Method{PMNLJ, EGO, BFRJ},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(250, 3, 5), VectorOptions{NormP: 3})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, da
			},
			opt: Options{Epsilon: 0.06, BufferPages: 16, CollectPairs: true},
		},
		{
			name:    "series",
			methods: allMethods,
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 1024})
				ds, err := sys.AddSeries("walk", dataset.RandomWalk(2500, 20), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				return sys, ds, ds
			},
			opt: Options{Epsilon: 8.0, BufferPages: 16, CollectPairs: true},
		},
		{
			// Strings have no float kernel, but the mode must still be a
			// no-op end to end (engine hook, matrix build, BFRJ predicate).
			name:    "string",
			methods: []Method{PMNLJ, SC, BFRJ},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 512})
				sa := dataset.DNA(2000, 10)
				sb := dataset.DNA(1500, 11)
				dataset.PlantHomologies(sb, sa, 5, 80, 0.02, 12)
				da, err := sys.AddString("a", sa, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddString("b", sb, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 4, BufferPages: 16, CollectPairs: true},
		},
	}

	for _, w := range loads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, m := range w.methods {
				m := m
				t.Run(m.String(), func(t *testing.T) {
					run := func(mode KernelMode, par int) (*Result, *Plan) {
						sys, a, b := w.build(t)
						opt := w.opt
						opt.Method = m
						opt.Kernels = mode
						opt.Parallelism = par
						res, err := sys.Join(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						plan, err := sys.Explain(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						return res, plan
					}
					for _, par := range []int{1, 0} { // 0 = GOMAXPROCS
						off, offPlan := run(KernelsOff, par)
						on, onPlan := run(KernelsOn, par)
						if got, want := deterministicFields(on), deterministicFields(off); !reflect.DeepEqual(got, want) {
							t.Errorf("parallelism %d: kernels-on result differs:\n off: %+v\n on:  %+v", par, want, got)
						}
						if !reflect.DeepEqual(onPlan, offPlan) {
							t.Errorf("parallelism %d: kernels-on plan differs:\n off: %+v\n on:  %+v", par, offPlan, onPlan)
						}
						if par == 1 && off.Count() == 0 {
							t.Error("workload has no results; the comparison is vacuous")
						}
					}
				})
			}
		})
	}
}

// TestKernelModeDefault pins the normalization: the zero value resolves to
// KernelsOn, and an explicit off stays off.
func TestKernelModeDefault(t *testing.T) {
	opt := Options{Method: NLJ, Epsilon: 1, BufferPages: 4}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Kernels != KernelsOn {
		t.Errorf("default kernels = %v, want on", opt.Kernels)
	}
	opt = Options{Method: NLJ, Epsilon: 1, BufferPages: 4, Kernels: KernelsOff}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Kernels != KernelsOff {
		t.Errorf("explicit off became %v", opt.Kernels)
	}
	bad := Options{Method: NLJ, Epsilon: 1, BufferPages: 4, Kernels: KernelMode(99)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted kernel mode 99")
	}
}

// TestKernelModeText pins the text round-trip alongside the other enums.
func TestKernelModeText(t *testing.T) {
	for _, k := range []KernelMode{KernelsDefault, KernelsOn, KernelsOff} {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back KernelMode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("round trip %v -> %q -> %v", k, text, back)
		}
	}
	if _, err := ParseKernelMode("sometimes"); err == nil {
		t.Error("ParseKernelMode accepted garbage")
	}
	if k, err := ParseKernelMode("ON"); err != nil || k != KernelsOn {
		t.Errorf("ParseKernelMode(ON) = %v, %v", k, err)
	}
	if _, err := KernelMode(42).MarshalText(); err == nil {
		t.Error("MarshalText accepted out-of-range mode")
	}
}
