package pmjoin

import (
	"reflect"
	"testing"

	"pmjoin/internal/dataset"
)

// TestBackendParity is the storage half of the determinism contract: with a
// file store attached, a join run with Options.Storage = StorageFile — real
// encoded page files, mmap/pread reads, background prefetch fetches — must
// produce a Report, Pairs and Plan bit-identical to the simulator run, for
// every combination of prefetch mode and shard count. Only the measured
// ExecStats fields (MeasuredIOWall, MeasuredReads) may differ: they are
// wall-clock observations of the physical reads and are excluded from the
// comparison by construction (the test compares Report/Pairs/Plan, never
// ExecStats). Run under -race this also exercises the concurrent background
// reader pool against the coordinator.
func TestBackendParity(t *testing.T) {
	type workload struct {
		name  string
		build func(t *testing.T) (*System, *Dataset, *Dataset)
		opt   Options
	}
	loads := []workload{
		{
			// Tight buffer so the schedule has many clusters and the prefetch
			// pipeline stages real reads.
			name: "vector",
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(400, 2, 51), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(300, 2, 52), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Method: SC, Epsilon: 0.05, BufferPages: 12, CollectPairs: true},
		},
		{
			// Self join over series pages: exercises the SeriesPage codec and
			// the shared-file dedup through the store.
			name: "series-self",
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 1024})
				ds, err := sys.AddSeries("walk", dataset.RandomWalk(2000, 53), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				return sys, ds, ds
			},
			opt: Options{Method: CC, Epsilon: 8.0, BufferPages: 16, CollectPairs: true},
		},
		{
			// String pages through the store (frequency vectors + window bytes).
			name: "string-self",
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 512})
				ds, err := sys.AddString("dna", dataset.DNA(3000, 54), StringOptions{Window: 24, Stride: 6})
				if err != nil {
					t.Fatal(err)
				}
				return sys, ds, ds
			},
			opt: Options{Method: SC, Epsilon: 2, BufferPages: 12, CollectPairs: true},
		},
	}

	for _, wl := range loads {
		t.Run(wl.name, func(t *testing.T) {
			sys, da, db := wl.build(t)
			if err := sys.UseFileStore(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			defer sys.CloseStore()

			for _, shards := range []int{0, 3} {
				var ref *Result
				var refName string
				for _, prefetch := range []PrefetchMode{PrefetchOn, PrefetchOff} {
					for _, storage := range []StorageMode{StorageSim, StorageFile} {
						o := wl.opt
						o.Pipeline.Prefetch = prefetch
						o.Storage = storage
						if shards > 0 {
							o.Sharding = ShardingOptions{Shards: shards}
						}
						name := storage.String() + "/" + prefetch.String()
						res, err := sys.Join(da, db, o)
						if err != nil {
							t.Fatalf("shards=%d %s: %v", shards, name, err)
						}
						if storage == StorageFile {
							if res.Exec.MeasuredReads == 0 || res.Exec.MeasuredIOWall <= 0 {
								t.Errorf("shards=%d %s: no measured physical reads (reads=%d wall=%g)",
									shards, name, res.Exec.MeasuredReads, res.Exec.MeasuredIOWall)
							}
						} else if res.Exec.MeasuredReads != 0 || res.Exec.MeasuredIOWall != 0 {
							t.Errorf("shards=%d %s: simulator reported measured reads (reads=%d wall=%g)",
								shards, name, res.Exec.MeasuredReads, res.Exec.MeasuredIOWall)
						}
						if ref == nil {
							ref, refName = res, name
							continue
						}
						if !reflect.DeepEqual(res.Report, ref.Report) {
							t.Errorf("shards=%d: Report differs between %s and %s:\n%+v\n%+v",
								shards, refName, name, ref.Report, res.Report)
						}
						if !reflect.DeepEqual(res.Pairs, ref.Pairs) || res.Truncated != ref.Truncated {
							t.Errorf("shards=%d: Pairs differ between %s and %s", shards, refName, name)
						}
					}
				}
			}

			// Plan parity: Explain is storage-blind by construction.
			po := wl.opt
			po.Storage = StorageSim
			p1, err := sys.Explain(da, db, po)
			if err != nil {
				t.Fatal(err)
			}
			po.Storage = StorageFile
			p2, err := sys.Explain(da, db, po)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Errorf("Plan differs between storage modes:\n%+v\n%+v", p1, p2)
			}
		})
	}
}

// TestFileStoreLifecycle pins the attachment errors: StorageFile without a
// store fails with a clear message, double attachment fails, and a dataset
// added AFTER attachment is served from the store via the write mirror.
func TestFileStoreLifecycle(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(120, 2, 55), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Method: SC, Epsilon: 0.05, BufferPages: 8, Storage: StorageFile}
	if _, err := sys.Join(da, da, opt); err == nil {
		t.Fatal("StorageFile without an attached store did not fail")
	}
	if err := sys.UseFileStore(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := sys.UseFileStore(t.TempDir()); err == nil {
		t.Fatal("double UseFileStore did not fail")
	}
	// Mirrored post-attachment dataset: pages reach the store as they are
	// appended, so a file-backed join over it measures real reads.
	db, err := sys.AddVectors("b", randomVecs(100, 2, 56), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.MeasuredReads == 0 {
		t.Error("mirrored dataset produced no measured reads")
	}
	if err := sys.CloseStore(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(da, db, opt); err == nil {
		t.Fatal("StorageFile after CloseStore did not fail")
	}
	if err := sys.CloseStore(); err != nil {
		t.Fatal("second CloseStore must be a no-op")
	}
}
