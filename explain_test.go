package pmjoin

import (
	"strings"
	"testing"
)

func TestExplainBounds(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	const eps = 0.1
	plan, err := sys.Explain(da, db, Options{Epsilon: eps, BufferPages: 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MarkedEntries == 0 || plan.Clusters == 0 {
		t.Fatalf("empty plan: %+v", plan)
	}
	if plan.MaxClusterPages > 12 {
		t.Fatalf("cluster pages %d exceed buffer", plan.MaxClusterPages)
	}
	if plan.RowPages != da.Pages() || plan.ColPages != db.Pages() {
		t.Fatal("page counts")
	}
	if !strings.Contains(plan.String(), "Lemma 1") {
		t.Fatal("String output")
	}

	// The analytic counts must bracket the executed runs.
	nlj, err := sys.Join(da, db, Options{Method: NLJ, Epsilon: eps, BufferPages: 12})
	if err != nil {
		t.Fatal(err)
	}
	if nlj.Report.PageReads != plan.NLJPageReads {
		t.Fatalf("NLJ reads %d != plan %d", nlj.Report.PageReads, plan.NLJPageReads)
	}
	sc, err := sys.Join(da, db, Options{Method: SC, Epsilon: eps, BufferPages: 12})
	if err != nil {
		t.Fatal(err)
	}
	// The executed clustered join benefits from buffer reuse on top of the
	// schedule, so its reads are at most the plan's un-reused count.
	if sc.Report.PageReads > plan.ClusteredPageReads {
		t.Fatalf("SC reads %d > plan %d", sc.Report.PageReads, plan.ClusteredPageReads)
	}
	// And the schedule savings must not exceed what reuse can deliver.
	if plan.ScheduleSavings < 0 || plan.ScheduleSavings > plan.ClusteredPageReads {
		t.Fatalf("savings %d out of range", plan.ScheduleSavings)
	}
}

func TestExplainLemma1HoldsForPMNLJ(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	const eps = 0.1
	for _, b := range []int{8, 16, 64} {
		plan, err := sys.Explain(da, db, Options{Epsilon: eps, BufferPages: b})
		if err != nil {
			t.Fatal(err)
		}
		pm, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: eps, BufferPages: b})
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 1 bounds a pm-NLJ without buffer reuse; the LRU buffer can
		// only reduce reads, so the executed count is at most the bound
		// plus the marked-row fetches.
		if pm.Report.PageReads > plan.PMNLJLowerBound+int64(plan.MarkedRows) {
			t.Fatalf("B=%d: pm-NLJ reads %d above Lemma 1 envelope %d",
				b, pm.Report.PageReads, plan.PMNLJLowerBound+int64(plan.MarkedRows))
		}
	}
}

func TestExplainValidation(t *testing.T) {
	sys, da, _ := smallVecSystem(t)
	other := New()
	dc, err := other.AddVectors("c", randomVecs(64, 2, 30), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Explain(da, dc, Options{Epsilon: 0.1, BufferPages: 8}); err == nil {
		t.Fatal("cross-system explain accepted")
	}
	if _, err := sys.Explain(da, da, Options{Epsilon: 0.1, BufferPages: 2}); err == nil {
		t.Fatal("tiny buffer accepted")
	}
}
