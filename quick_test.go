package pmjoin

import (
	"math/rand"
	"testing"

	"pmjoin/internal/dataset"
)

// TestRandomizedVectorAgreement fuzzes workload shape, dimensionality,
// epsilon, buffer size and page size, asserting that every method finds the
// same number of pairs as NLJ.
func TestRandomizedVectorAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized agreement sweep")
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 8; iter++ {
		dim := []int{1, 2, 3, 5, 8}[rng.Intn(5)]
		nA := 100 + rng.Intn(300)
		nB := 100 + rng.Intn(300)
		pageBytes := []int{128, 256, 1024}[rng.Intn(3)]
		buffer := 6 + rng.Intn(30)
		self := rng.Intn(3) == 0

		sys := NewSystem(DiskModel{PageBytes: pageBytes})
		da, err := sys.AddVectors("a", randomVecs(nA, dim, int64(iter)), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db := da
		if !self {
			db, err = sys.AddVectors("b", randomVecs(nB, dim, int64(iter)+1000), VectorOptions{})
			if err != nil {
				t.Fatal(err)
			}
		}
		eps, err := sys.CalibrateEpsilon(da, db, 0.02+rng.Float64()*0.1)
		if err != nil {
			t.Fatal(err)
		}
		var want int64 = -1
		for _, m := range vectorMethods {
			res, err := sys.Join(da, db, Options{Method: m, Epsilon: eps, BufferPages: buffer, Seed: int64(iter)})
			if err != nil {
				t.Fatalf("iter %d (%v, dim=%d, B=%d, self=%v): %v", iter, m, dim, buffer, self, err)
			}
			if want < 0 {
				want = res.Count()
				continue
			}
			if res.Count() != want {
				t.Fatalf("iter %d (dim=%d eps=%g B=%d self=%v): %v found %d, NLJ found %d",
					iter, dim, eps, buffer, self, m, res.Count(), want)
			}
		}
	}
}

// TestRandomizedSequenceAgreement fuzzes string workloads.
func TestRandomizedSequenceAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized agreement sweep")
	}
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 4; iter++ {
		n := 4000 + rng.Intn(6000)
		window := 32 + 8*rng.Intn(4)
		stride := []int{4, 8, 16}[rng.Intn(3)]
		maxEdit := 2 + rng.Intn(4)
		buffer := 8 + rng.Intn(16)

		seq := dataset.DNA(n, int64(iter))
		dataset.PlantHomologiesAligned(seq, seq, 4, 3*window, 0.01, stride, int64(iter)+5)
		sys := NewSystem(DiskModel{PageBytes: 512})
		ds, err := sys.AddString("dna", seq, StringOptions{Window: window, Stride: stride})
		if err != nil {
			t.Fatal(err)
		}
		var want int64 = -1
		for _, m := range allMethods {
			res, err := sys.Join(ds, ds, Options{Method: m, Epsilon: float64(maxEdit), BufferPages: buffer, Seed: int64(iter)})
			if err != nil {
				t.Fatalf("iter %d %v: %v", iter, m, err)
			}
			if want < 0 {
				want = res.Count()
				continue
			}
			if res.Count() != want {
				t.Fatalf("iter %d (w=%d s=%d e=%d B=%d): %v found %d, NLJ found %d",
					iter, window, stride, maxEdit, buffer, m, res.Count(), want)
			}
		}
	}
}

// TestBufferSizeInvariance: results must not depend on the buffer size,
// only costs may.
func TestBufferSizeInvariance(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	const eps = 0.08
	var want int64 = -1
	var prevIO float64
	for _, b := range []int{6, 12, 48, 192} {
		res, err := sys.Join(da, db, Options{Method: SC, Epsilon: eps, BufferPages: b})
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = res.Count()
		} else if res.Count() != want {
			t.Fatalf("B=%d changed results: %d vs %d", b, res.Count(), want)
		}
		if prevIO > 0 && res.Report.IOSeconds > prevIO*1.3 {
			t.Fatalf("B=%d increased SC I/O markedly: %g after %g", b, res.Report.IOSeconds, prevIO)
		}
		prevIO = res.Report.IOSeconds
	}
}

// TestEpsilonMonotonicity: growing epsilon can only add result pairs.
func TestEpsilonMonotonicity(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	var prev int64 = -1
	var prevMarked int
	for _, eps := range []float64{0.01, 0.03, 0.06, 0.12} {
		res, err := sys.Join(da, db, Options{Method: SC, Epsilon: eps, BufferPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() < prev {
			t.Fatalf("eps=%g lost results: %d after %d", eps, res.Count(), prev)
		}
		if res.MarkedEntries < prevMarked {
			t.Fatalf("eps=%g lost marks: %d after %d", eps, res.MarkedEntries, prevMarked)
		}
		prev = res.Count()
		prevMarked = res.MarkedEntries
	}
}

// TestDeterminism: identical inputs and seeds give identical reports.
func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		sys := NewSystem(DiskModel{PageBytes: 256})
		da, err := sys.AddVectors("a", randomVecs(300, 2, 77), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Join(da, da, Options{Method: CC, Epsilon: 0.05, BufferPages: 12, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Count(), res.TotalSeconds()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d, %g) vs (%d, %g)", c1, t1, c2, t2)
	}
}
