package pmjoin_test

import (
	"context"
	"fmt"
	"log"

	"pmjoin"
)

// grid builds a deterministic point set: a g×g lattice with spacing d.
func grid(g int, d float64) [][]float64 {
	out := make([][]float64, 0, g*g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			out = append(out, []float64{float64(i) * d, float64(j) * d})
		}
	}
	return out
}

// ExampleSystem_Join joins two lattices under L2 with the paper's SC method.
func ExampleSystem_Join() {
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	a, err := sys.AddVectors("a", grid(10, 1.0), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// The second lattice is offset by 0.4 in x: each of its points is
	// within 0.5 of exactly one point of the first lattice.
	pts := grid(10, 1.0)
	for _, p := range pts {
		p[0] += 0.4
	}
	b, err := sys.AddVectors("b", pts, pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Join(a, b, pmjoin.Options{
		Method:      pmjoin.SC,
		Epsilon:     0.5,
		BufferPages: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs:", res.Count())
	// Output:
	// pairs: 100
}

// ExampleSystem_Join_selfJoin counts close pairs within one dataset; each
// unordered pair is reported once.
func ExampleSystem_Join_selfJoin() {
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	pts := [][]float64{{0, 0}, {0.1, 0}, {0.2, 0}, {5, 5}}
	for len(pts) < 64 { // pad far away so pages are realistic
		pts = append(pts, []float64{float64(len(pts)) * 10, 0})
	}
	ds, err := sys.AddVectors("pts", pts, pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Join(ds, ds, pmjoin.Options{
		Method:      pmjoin.PMNLJ,
		Epsilon:     0.15,
		BufferPages: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// (0,0)-(0.1,0) and (0.1,0)-(0.2,0) are within 0.15; (0,0)-(0.2,0) is not.
	fmt.Println("close pairs:", res.Count())
	// Output:
	// close pairs: 2
}

// ExampleSystem_JoinContext runs the join on a worker pool with
// cancellation support. The Result is bit-for-bit identical to a serial
// run — Parallelism only changes wall-clock time, never counts or costs.
func ExampleSystem_JoinContext() {
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	a, err := sys.AddVectors("a", grid(10, 1.0), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.AddVectors("b", grid(10, 1.0), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.JoinContext(context.Background(), a, b, pmjoin.Options{
		Method:      pmjoin.SC,
		Epsilon:     0.5,
		BufferPages: 8,
		Parallelism: 4, // 0 means GOMAXPROCS; 1 forces serial execution
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs:", res.Count())
	fmt.Println("workers:", res.Exec.Workers)
	// Output:
	// pairs: 100
	// workers: 4
}

// ExampleSystem_RangeQueryOpts caps a range query's result set; Truncated
// reports that more objects matched than were returned.
func ExampleSystem_RangeQueryOpts() {
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	ds, err := sys.AddVectors("pts", grid(8, 1.0), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RangeQueryOpts(ds, []float64{3.5, 3.5}, 1.0, pmjoin.QueryOptions{
		BufferPages: 8,
		MaxResults:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("returned:", len(res.IDs), "truncated:", res.Truncated)
	// Output:
	// returned: 2 truncated: true
}

// ExampleSystem_Explain inspects the join plan without executing it.
func ExampleSystem_Explain() {
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	a, err := sys.AddVectors("a", grid(12, 1.0), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Explain(a, a, pmjoin.Options{Epsilon: 1.0, BufferPages: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters fit the buffer:", plan.MaxClusterPages <= 8)
	fmt.Println("matrix has marks:", plan.MarkedEntries > 0)
	// Output:
	// clusters fit the buffer: true
	// matrix has marks: true
}
