// Genome subsequence join: the paper's second motivating query (§3) —
// "find all similar genome substring pairs of length 500, one from the
// Human Genome and the other from the Mouse Genome".
//
// Two synthetic chromosomes with planted homologous segments are joined
// under edit distance with the MRS-index frequency-distance predictor.
//
//	go run ./examples/genomejoin
package main

import (
	"fmt"
	"log"

	"pmjoin"
	"pmjoin/internal/dataset"
)

const (
	humanLen = 400000
	mouseLen = 250000
	window   = 500
	stride   = 32
	maxEdit  = 5 // eps/len = 0.01, as in the paper's Figure 11
)

func main() {
	sys := pmjoin.New()

	human := dataset.DNA(humanLen, 1)
	mouse := dataset.DNA(mouseLen, 2)
	// Plant conserved segments (the homologies a real cross-species join
	// would find). Offsets are stride-aligned so the sampled windows can
	// see them — see DESIGN.md on the stride substitution.
	dataset.PlantHomologiesAligned(mouse, human, 25, 4*window, 0.004, stride, 3)

	dh, err := sys.AddString("HChr18", human, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		log.Fatal(err)
	}
	dm, err := sys.AddString("MChr18", mouse, pmjoin.StringOptions{Window: window, Stride: stride})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("human: %d windows on %d pages; mouse: %d windows on %d pages\n",
		dh.Objects(), dh.Pages(), dm.Objects(), dm.Pages())

	for _, m := range []pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC} {
		res, err := sys.Join(dh, dm, pmjoin.Options{
			Method:      m,
			Epsilon:     maxEdit,
			BufferPages: 50,
		})
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.MarkedEntries > 0 {
			extra = fmt.Sprintf("  (matrix density %.2f%%)", 100*res.MatrixDensity)
		}
		fmt.Printf("%-10s %6d homologous window pairs, %8.2f sim-s (io %7.2f, cpu %6.2f)%s\n",
			m, res.Count(), res.TotalSeconds(), res.Report.IOSeconds,
			res.Report.CPUJoinSeconds, extra)
	}

	// List a few alignments.
	res, err := sys.Join(dh, dm, pmjoin.Options{
		Method: pmjoin.SC, Epsilon: maxEdit, BufferPages: 50,
		CollectPairs: true, MaxPairs: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample alignments (window id -> base offset):")
	for _, p := range res.Pairs {
		fmt.Printf("  human[%d..%d] ~ mouse[%d..%d] within %d edits\n",
			p[0]*stride, p[0]*stride+window, p[1]*stride, p[1]*stride+window, maxEdit)
	}
}
