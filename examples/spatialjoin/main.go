// Spatial join: the paper's road-intersection workload (§9, LBeach and
// MCounty) joined under every method at several buffer sizes — a miniature
// version of Figures 10 and 13(a).
//
//	go run ./examples/spatialjoin
package main

import (
	"fmt"
	"log"

	"pmjoin"
	"pmjoin/internal/dataset"
)

func main() {
	// 1 KB pages, as the paper uses for the 2-d road data.
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 1024})

	lbeach := dataset.ToFloats(dataset.RoadIntersections(13000, 1))
	mcounty := dataset.ToFloats(dataset.RoadIntersections(10000, 2))
	da, err := sys.AddVectors("LBeach", lbeach, pmjoin.VectorOptions{PageBytes: 1024})
	if err != nil {
		log.Fatal(err)
	}
	db, err := sys.AddVectors("MCounty", mcounty, pmjoin.VectorOptions{PageBytes: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d points on %d pages; %s: %d points on %d pages\n",
		da.Name(), da.Objects(), da.Pages(), db.Name(), db.Objects(), db.Pages())

	// Pick epsilon so the prediction matrix lands at the paper's regime.
	eps, err := sys.CalibrateEpsilon(da, db, 0.015)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated eps = %.4f (1.5%% of page pairs marked)\n\n", eps)

	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC, pmjoin.EGO, pmjoin.BFRJ}
	for _, buffer := range []int{16, 64, 256} {
		fmt.Printf("buffer = %d pages\n", buffer)
		for _, m := range methods {
			res, err := sys.Join(da, db, pmjoin.Options{Method: m, Epsilon: eps, BufferPages: buffer})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s total %8.2f sim-s (io %8.2f, cpu %6.2f)  results %d\n",
				m, res.TotalSeconds(), res.Report.IOSeconds, res.Report.CPUJoinSeconds, res.Count())
		}
		fmt.Println()
	}
}
