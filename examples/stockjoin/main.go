// Stock subsequence join: the paper's motivating sequence query (§1, §3) —
// "find all pairs of companies from the New York Exchange and the Tokyo
// Exchange that have similar closing prices for one month".
//
// Each exchange is a set of price series; the subsequence join finds all
// pairs of one-month (21 trading days) windows within an L2 threshold.
//
//	go run ./examples/stockjoin
package main

import (
	"fmt"
	"log"

	"pmjoin"
	"pmjoin/internal/dataset"
)

const (
	companiesPerExchange = 40
	tradingDays          = 1250 // ~5 years
	month                = 21   // trading days in one month
)

func main() {
	sys := pmjoin.New()

	// Concatenate each exchange's normalized series into one long sequence
	// (windows never span company boundaries because the join excludes
	// nothing across them — for the demo the few boundary windows are
	// harmless noise; a production ingest would pad between series).
	build := func(name string, seed int64) *pmjoin.Dataset {
		var all []float64
		for c := 0; c < companiesPerExchange; c++ {
			s := dataset.RandomWalk(tradingDays, seed+int64(c))
			all = append(all, dataset.NormalizeWindowInvariant(s)...)
		}
		ds, err := sys.AddSeries(name, all, pmjoin.SeriesOptions{
			Window: month,
			Stride: 5, // sample window starts weekly
		})
		if err != nil {
			log.Fatal(err)
		}
		return ds
	}
	nyse := build("NYSE", 100)
	tokyo := build("Tokyo", 200)
	fmt.Printf("%s: %d windows on %d pages; %s: %d windows on %d pages\n",
		nyse.Name(), nyse.Objects(), nyse.Pages(),
		tokyo.Name(), tokyo.Objects(), tokyo.Pages())

	// Calibrate the similarity threshold so ~2%% of page pairs are
	// candidates (normalized random walks are all alike; an absolute
	// threshold is meaningless across workloads).
	eps, err := sys.CalibrateEpsilon(nyse, tokyo, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated eps = %.3f\n", eps)
	for _, m := range []pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.SC} {
		res, err := sys.Join(nyse, tokyo, pmjoin.Options{
			Method:      m,
			Epsilon:     eps,
			BufferPages: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8d similar month pairs, %8.2f sim-s (io %.2f, cpu %.2f)\n",
			m, res.Count(), res.TotalSeconds(), res.Report.IOSeconds, res.Report.CPUJoinSeconds)
	}

	// Show a few concrete matches.
	res, err := sys.Join(nyse, tokyo, pmjoin.Options{
		Method: pmjoin.SC, Epsilon: eps, BufferPages: 64,
		CollectPairs: true, MaxPairs: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Pairs {
		nw, tw := p[0], p[1]
		fmt.Printf("NYSE window %d (company %d, day %d) ~ Tokyo window %d (company %d, day %d)\n",
			nw, nw*5/tradingDays, nw*5%tradingDays,
			tw, tw*5/tradingDays, tw*5%tradingDays)
	}
}
