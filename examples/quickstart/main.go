// Quickstart: build two small vector datasets, join them with the paper's
// SC method, and inspect the cost report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pmjoin"
)

func main() {
	// A system owns a simulated disk (10 ms seek, 1 ms page transfer).
	sys := pmjoin.New()

	// Two random 2-d point sets. In a real application these are your
	// feature vectors; IDs are the slice indices.
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = []float64{rng.Float64(), rng.Float64()}
		}
		return out
	}
	hotels, err := sys.AddVectors("hotels", mk(20000), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	parks, err := sys.AddVectors("parks", mk(15000), pmjoin.VectorOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// "Find all hotels within 0.005 of a recreation area" — the paper's
	// example spatial join query, §1.
	res, err := sys.Join(hotels, parks, pmjoin.Options{
		Method:       pmjoin.SC, // prediction matrix + square clustering + scheduling
		Epsilon:      0.005,
		BufferPages:  64,
		CollectPairs: true,
		MaxPairs:     5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d (hotel, park) pairs within eps\n", res.Count())
	fmt.Printf("simulated cost: %.3f s (I/O %.3f, CPU %.3f, preprocess %.3f)\n",
		res.TotalSeconds(), res.Report.IOSeconds, res.Report.CPUJoinSeconds,
		res.Report.PreprocessSeconds)
	fmt.Printf("prediction matrix: %d marked page pairs (density %.2f%%)\n",
		res.MarkedEntries, 100*res.MatrixDensity)
	for _, p := range res.Pairs {
		fmt.Printf("  hotel %d near park %d\n", p[0], p[1])
	}

	// Compare against plain block nested loop join on the same workload.
	nlj, err := sys.Join(hotels, parks, pmjoin.Options{
		Method: pmjoin.NLJ, Epsilon: 0.005, BufferPages: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNLJ on the same workload: %.3f s — SC is %.1fx faster\n",
		nlj.TotalSeconds(), nlj.TotalSeconds()/res.TotalSeconds())
}
