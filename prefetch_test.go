package pmjoin

import (
	"reflect"
	"testing"

	"pmjoin/internal/dataset"
)

// TestPrefetchDeterminism is the pipeline half of the determinism contract:
// for every clustered method, a join with Prefetch on produces a Result
// (Report, Pairs, matrix stats) and a Plan bit-for-bit identical to the run
// with Prefetch off, at Parallelism 1 and at GOMAXPROCS. Beyond the Result,
// the disk counters themselves must not move: prefetched reads are the same
// reads the pin loop would have issued, in the same order, so Seeks,
// Sequential and GapPages agree exactly, and the buffer counters agree
// except for the Prefetched tally. Each mode runs on a fresh System over
// identical generated data.
func TestPrefetchDeterminism(t *testing.T) {
	type workload struct {
		name    string
		methods []Method
		build   func(t *testing.T) (*System, *Dataset, *Dataset)
		opt     Options
	}
	loads := []workload{
		{
			// Small buffer relative to the matrix so clustering yields many
			// clusters with real turnover at every boundary: the workload that
			// actually exercises staged admissions and degradation.
			name:    "vector-tight-buffer",
			methods: []Method{SC, RandomSC, CC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(400, 2, 21), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(300, 2, 22), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 0.05, BufferPages: 12, CollectPairs: true},
		},
		{
			name:    "series-self",
			methods: []Method{SC, RandomSC, CC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 1024})
				ds, err := sys.AddSeries("walk", dataset.RandomWalk(2500, 23), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				return sys, ds, ds
			},
			opt: Options{Epsilon: 8.0, BufferPages: 16, CollectPairs: true},
		},
		{
			name:    "string",
			methods: []Method{SC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 512})
				sa := dataset.DNA(2000, 24)
				sb := dataset.DNA(1500, 25)
				dataset.PlantHomologies(sb, sa, 5, 80, 0.02, 26)
				da, err := sys.AddString("a", sa, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddString("b", sb, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 4, BufferPages: 16, CollectPairs: true},
		},
	}

	var stagedTotal int64
	for _, w := range loads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, m := range w.methods {
				m := m
				t.Run(m.String(), func(t *testing.T) {
					run := func(mode PrefetchMode, par int) (*Result, *Plan) {
						sys, a, b := w.build(t)
						opt := w.opt
						opt.Method = m
						opt.Prefetch = mode
						opt.Parallelism = par
						opt.Metrics = true // outside the contract, used for counter checks
						res, err := sys.Join(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						// Explain without metrics so the Plan comparison is
						// over the deterministic fields only.
						opt.Metrics = false
						plan, err := sys.Explain(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						return res, plan
					}
					for _, par := range []int{1, 0} { // 0 = GOMAXPROCS
						off, offPlan := run(PrefetchOff, par)
						on, onPlan := run(PrefetchOn, par)
						if got, want := deterministicFields(on), deterministicFields(off); !reflect.DeepEqual(got, want) {
							t.Errorf("parallelism %d: prefetch-on result differs:\n off: %+v\n on:  %+v", par, want, got)
						}
						if !reflect.DeepEqual(onPlan, offPlan) {
							t.Errorf("parallelism %d: prefetch-on plan differs:\n off: %+v\n on:  %+v", par, offPlan, onPlan)
						}
						// The stronger claim: the disk saw the identical access
						// sequence, so every counter matches — not just costs.
						if got, want := on.Metrics.Disk, off.Metrics.Disk; got != want {
							t.Errorf("parallelism %d: disk counters differ:\n off: %+v\n on:  %+v", par, want, got)
						}
						onBuf := on.Metrics.Buffer
						onBuf.Prefetched = 0 // the one counter allowed to differ
						if got, want := onBuf, off.Metrics.Buffer; got != want {
							t.Errorf("parallelism %d: buffer counters differ (beyond Prefetched):\n off: %+v\n on:  %+v", par, want, got)
						}
						if par == 1 && off.Count() == 0 {
							t.Error("workload has no results; the comparison is vacuous")
						}
						stagedTotal += on.Exec.PrefetchedPages
					}
				})
			}
		})
	}
	// Vacuity check for the pipeline itself: at least one on-mode run must
	// actually have staged pages, or the whole test compared a no-op.
	if stagedTotal == 0 {
		t.Error("no run prefetched any pages; the on/off comparison is vacuous")
	}
}

// TestPrefetchDepthDeterminism pins the parity argument for the depth cap:
// bounding the staged run at any depth only moves the prefetch/pin boundary,
// so the Result and the disk counters stay identical to the unbounded run.
func TestPrefetchDepthDeterminism(t *testing.T) {
	build := func() (*System, *Dataset, *Dataset) {
		sys := NewSystem(DiskModel{PageBytes: 256})
		da, err := sys.AddVectors("a", randomVecs(400, 2, 21), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := sys.AddVectors("b", randomVecs(300, 2, 22), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return sys, da, db
	}
	run := func(depth int) *Result {
		sys, a, b := build()
		res, err := sys.Join(a, b, Options{
			Method: SC, Epsilon: 0.05, BufferPages: 12, CollectPairs: true,
			Prefetch: PrefetchOn, PrefetchDepth: depth, Metrics: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unbounded := run(0)
	for _, depth := range []int{1, 3} {
		capped := run(depth)
		if got, want := deterministicFields(capped), deterministicFields(unbounded); !reflect.DeepEqual(got, want) {
			t.Errorf("depth %d: result differs from unbounded:\n unbounded: %+v\n capped:    %+v", depth, want, got)
		}
		if got, want := capped.Metrics.Disk, unbounded.Metrics.Disk; got != want {
			t.Errorf("depth %d: disk counters differ:\n unbounded: %+v\n capped:    %+v", depth, want, got)
		}
		if capped.Exec.PrefetchedPages > unbounded.Exec.PrefetchedPages {
			t.Errorf("depth %d staged %d pages, more than unbounded's %d",
				depth, capped.Exec.PrefetchedPages, unbounded.Exec.PrefetchedPages)
		}
	}
}

// TestPrefetchFIFOGates pins the policy gate: under FIFO the staged-frame
// parity argument does not hold, so the engine silently runs the demand path
// — identical results, zero pages prefetched.
func TestPrefetchFIFOGates(t *testing.T) {
	build := func() (*System, *Dataset, *Dataset) {
		sys := NewSystem(DiskModel{PageBytes: 256})
		da, err := sys.AddVectors("a", randomVecs(400, 2, 21), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := sys.AddVectors("b", randomVecs(300, 2, 22), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return sys, da, db
	}
	run := func(mode PrefetchMode) *Result {
		sys, a, b := build()
		res, err := sys.Join(a, b, Options{
			Method: SC, Epsilon: 0.05, BufferPages: 12, CollectPairs: true,
			Policy: FIFO, Prefetch: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(PrefetchOff)
	on := run(PrefetchOn)
	if got, want := deterministicFields(on), deterministicFields(off); !reflect.DeepEqual(got, want) {
		t.Errorf("FIFO prefetch-on result differs:\n off: %+v\n on:  %+v", want, got)
	}
	if on.Exec.PrefetchedPages != 0 {
		t.Errorf("FIFO run staged %d pages; the gate should disable prefetch", on.Exec.PrefetchedPages)
	}
}

// TestPrefetchModeDefault pins the normalization: the zero value resolves to
// PrefetchOn, an explicit off stays off, and negative depths are rejected.
func TestPrefetchModeDefault(t *testing.T) {
	opt := Options{Method: NLJ, Epsilon: 1, BufferPages: 4}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Prefetch != PrefetchOn {
		t.Errorf("default prefetch = %v, want on", opt.Prefetch)
	}
	opt = Options{Method: NLJ, Epsilon: 1, BufferPages: 4, Prefetch: PrefetchOff}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.Prefetch != PrefetchOff {
		t.Errorf("explicit off became %v", opt.Prefetch)
	}
	bad := Options{Method: NLJ, Epsilon: 1, BufferPages: 4, Prefetch: PrefetchMode(99)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted prefetch mode 99")
	}
	bad = Options{Method: NLJ, Epsilon: 1, BufferPages: 4, PrefetchDepth: -1}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative PrefetchDepth")
	}
}

// TestPrefetchModeText pins the text round-trip alongside the other enums.
func TestPrefetchModeText(t *testing.T) {
	for _, m := range []PrefetchMode{PrefetchDefault, PrefetchOn, PrefetchOff} {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back PrefetchMode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("round trip %v -> %q -> %v", m, text, back)
		}
	}
	if _, err := ParsePrefetchMode("sometimes"); err == nil {
		t.Error("ParsePrefetchMode accepted garbage")
	}
	if m, err := ParsePrefetchMode("ON"); err != nil || m != PrefetchOn {
		t.Errorf("ParsePrefetchMode(ON) = %v, %v", m, err)
	}
	if _, err := PrefetchMode(42).MarshalText(); err == nil {
		t.Error("MarshalText accepted out-of-range mode")
	}
}

// TestExplainPrefetchPrediction pins the analytic side: Prefetchable is
// Reads at every schedule position except the first, PrefetchablePages sums
// them, and PredictedOverlapSeconds is positive exactly when something is
// prefetchable.
func TestExplainPrefetchPrediction(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(400, 2, 21), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(300, 2, 22), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Explain(da, db, Options{Method: SC, Epsilon: 0.05, BufferPages: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ClusterIO) < 2 {
		t.Fatalf("workload produced %d clusters; need >= 2 to exercise prefetch prediction", len(plan.ClusterIO))
	}
	var sum int64
	for pos, c := range plan.ClusterIO {
		want := c.Reads
		if pos == 0 {
			want = 0
		}
		if c.Prefetchable != want {
			t.Errorf("position %d: Prefetchable = %d, want %d", pos, c.Prefetchable, want)
		}
		sum += int64(c.Prefetchable)
	}
	if plan.PrefetchablePages != sum {
		t.Errorf("PrefetchablePages = %d, want sum %d", plan.PrefetchablePages, sum)
	}
	if sum > 0 && plan.PredictedOverlapSeconds <= 0 {
		t.Errorf("PredictedOverlapSeconds = %g with %d prefetchable pages", plan.PredictedOverlapSeconds, sum)
	}
}
