// Package ego implements the Epsilon Grid Ordering join of Böhm,
// Braunmüller, Krebs and Kriegel (SIGMOD 2001), one of the paper's two
// strong baselines (§9).
//
// Points are ordered lexicographically by their ε-width grid cell. For
// reorderable data (point/spatial/vector), both datasets are rewritten to
// disk in grid order with an external merge sort, then joined with a sweep
// over the ε interval of the ordering. Sequence data cannot be reordered on
// disk (§2.1, §9.2): the references are sorted but every object access goes
// to its home page, which produces the random-seek-heavy access pattern the
// paper reports.
package ego

import (
	"sort"

	"pmjoin/internal/disk"
	"pmjoin/internal/join"
)

// Adapter gives the EGO join access to the objects inside page payloads.
type Adapter interface {
	// NumObjects returns the number of objects in the payload.
	NumObjects(payload any) int
	// ObjectID returns the global id of object i of the payload.
	ObjectID(payload any, i int) int
	// GridKey returns the ε-grid cell coordinates of object i.
	GridKey(payload any, i int) []int
	// Compare exactly verifies the join predicate between object i of pa
	// and object k of pb, returning whether they match and the modeled CPU
	// seconds of the check.
	Compare(pa any, i int, pb any, k int) (match bool, cpuSeconds float64)
	// SelfSkip reports whether the pair must be skipped in a self join.
	SelfSkip(pa any, i int, pb any, k int) bool
	// Repage rebuilds a page payload holding the given objects (identified
	// by their source payload and slot), for writing reordered data. It is
	// only called when Reorderable returns true.
	Repage(objs []ObjectRef, fetch func(page int) (any, error)) (any, error)
	// Reorderable reports whether the dataset may be rewritten in grid
	// order (false for sequence data).
	Reorderable() bool
}

// ObjectRef identifies one object by home page and slot.
type ObjectRef struct {
	Page, Slot int
	Key        []int
}

// Options configures an EGO run.
type Options struct {
	SelfJoin bool
}

// Run executes the EGO join of r and s. The executor itself is serial
// (Engine.Workers is not consulted); it runs inside an Engine.Run scope so
// its I/O is charged to a per-run session like every other method.
func Run(e *join.Engine, r, s *join.Dataset, ad Adapter, opts Options) (*join.Report, error) {
	return e.Run("EGO", func(x *join.Exec) error {
		rRefs, rData, err := prepare(e, x, r, ad)
		if err != nil {
			return err
		}
		var sRefs []ObjectRef
		var sData *join.Dataset
		if opts.SelfJoin && s.File == r.File {
			sRefs, sData = rRefs, rData
		} else {
			sRefs, sData, err = prepare(e, x, s, ad)
			if err != nil {
				return err
			}
		}
		// Pin as large an R block as the buffer allows: the S range is
		// walked in one ascending pass, so it needs only the remaining
		// frames, and the total S pages touched shrink as blocks grow.
		return sweep(x, rData, sData, rRefs, sRefs, ad, opts, e.BufferSize-2)
	})
}

// prepare scans the dataset once (sequential), builds grid-ordered object
// references, and — when the data is reorderable — materializes a reordered
// copy on disk, charging the I/O of an external merge sort.
func prepare(e *join.Engine, x *join.Exec, d *join.Dataset, ad Adapter) ([]ObjectRef, *join.Dataset, error) {
	var refs []ObjectRef
	perPage := 1
	for p := 0; p < d.Pages; p++ {
		// The reference scan streams the file once in page order; it is
		// charged directly (all sequential transfers) and must not populate
		// the pool, whose frames belong to the sweep phase.
		//lint:ignore bufferbypass sequential reference scan charged directly, pool reserved for the sweep
		pg, err := x.IO.Read(disk.PageAddr{File: d.File, Page: p})
		if err != nil {
			return nil, nil, err
		}
		n := ad.NumObjects(pg.Payload)
		if n > perPage {
			// The reordered copy packs pages to the source capacity; using
			// the fullest page avoids inflating the temp file when the
			// first source page happens to be an underfull boundary node.
			perPage = n
		}
		for i := 0; i < n; i++ {
			refs = append(refs, ObjectRef{Page: p, Slot: i, Key: ad.GridKey(pg.Payload, i)})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool { return lessKey(refs[i].Key, refs[j].Key) })

	if !ad.Reorderable() {
		// Sequence data stays in place: objects will be fetched from their
		// home pages in grid order during the sweep.
		return refs, d, nil
	}

	// Write the reordered copy, page by page (sequential writes).
	// The input was already read sequentially by the reference scan above;
	// run formation consumes those buffered chunks, so gathering payloads
	// here is not billed again (Peek). The billed sort I/O is the run
	// writes below plus the merge passes.
	tmp := x.IO.CreateFile()
	fetch := func(page int) (any, error) {
		//lint:ignore bufferbypass free re-inspection of pages the scan above already paid for
		pg, err := x.IO.Peek(disk.PageAddr{File: d.File, Page: page})
		if err != nil {
			return nil, err
		}
		return pg.Payload, nil
	}
	newRefs := make([]ObjectRef, 0, len(refs))
	for lo := 0; lo < len(refs); lo += perPage {
		hi := lo + perPage
		if hi > len(refs) {
			hi = len(refs)
		}
		payload, err := ad.Repage(refs[lo:hi], fetch)
		if err != nil {
			return nil, nil, err
		}
		addr, err := x.IO.AppendPage(tmp, payload)
		if err != nil {
			return nil, nil, err
		}
		//lint:ignore bufferbypass run-formation writes are charged directly; the pool has no write path
		if err := x.IO.Write(addr, payload); err != nil { // charge the write
			return nil, nil, err
		}
		for i := lo; i < hi; i++ {
			newRefs = append(newRefs, ObjectRef{Page: addr.Page, Slot: i - lo, Key: refs[i].Key})
		}
	}
	if err := chargeMergePasses(e, x, tmp); err != nil {
		return nil, nil, err
	}
	out := &join.Dataset{Name: d.Name + "-ego", File: tmp, Pages: x.IO.NumPages(tmp)}
	return newRefs, out, nil
}

// chargeMergePasses charges the I/O of the merge passes of an external sort
// of the temp file: initial runs of B pages, (B-1)-way merges until sorted.
// Each pass reads the file with run-interleaved accesses (seek-heavy) and
// rewrites it sequentially. The sort owns the whole buffer while it runs, so
// its traffic is charged directly on the disk rather than through the pool.
func chargeMergePasses(e *join.Engine, x *join.Exec, f disk.FileID) error {
	n := x.IO.NumPages(f)
	if n == 0 {
		return nil
	}
	runs := (n + e.BufferSize - 1) / e.BufferSize
	fan := e.BufferSize - 1
	if fan < 2 {
		fan = 2
	}
	runLen := e.BufferSize
	for runs > 1 {
		// Each run is one sequential stream; switching between the merged
		// streams costs one seek per run (buffered k-way merge reads each
		// run in large sequential chunks). Charge the seeks by touching the
		// run starts in descending order, then stream the file.
		for start := ((runs - 1) * runLen); start >= 0; start -= runLen {
			if start < n {
				//lint:ignore bufferbypass external-sort cost model charges merge-pass seeks directly
				if _, err := x.IO.Read(disk.PageAddr{File: f, Page: start}); err != nil {
					return err
				}
			}
		}
		for p := 0; p < n; p++ {
			//lint:ignore bufferbypass external-sort cost model charges merge-pass transfers directly
			if _, err := x.IO.Read(disk.PageAddr{File: f, Page: p}); err != nil {
				return err
			}
		}
		// Sequential rewrite.
		for p := 0; p < n; p++ {
			//lint:ignore bufferbypass free fetch of the payload being rewritten; the Write below carries the charge
			pg, err := x.IO.Peek(disk.PageAddr{File: f, Page: p})
			if err != nil {
				return err
			}
			//lint:ignore bufferbypass external-sort rewrite is charged directly; the pool has no write path
			if err := x.IO.Write(disk.PageAddr{File: f, Page: p}, pg.Payload); err != nil {
				return err
			}
		}
		runs = (runs + fan - 1) / fan
		runLen *= fan
	}
	return nil
}

// sweep runs the blocked EGO-join over the grid-ordered references.
//
// The epsilon-grid-order interval theorem (Böhm et al., SIGMOD 2001): every
// candidate partner of x lies, in the lexicographic grid order, between
// x.key − (1,...,1) and x.key + (1,...,1). The candidates of a contiguous
// block of R therefore form one contiguous range of the sorted S sequence.
// The sweep pins one R block at a time (up to half the buffer), walks its S
// range in order — monotonically advancing, so consecutive blocks reuse the
// overlap through the buffer — and verifies cell-adjacent pairs exactly.
//
// For reorderable data the sorted references are page-contiguous in the
// reordered file, making the range walk sequential. For in-place sequence
// data every touched object faults its home page, which is where the
// paper's reported degradation on sequence data comes from.
func sweep(x *join.Exec, rData, sData *join.Dataset, rRefs, sRefs []ObjectRef, ad Adapter, opts Options, blockPages int) error {
	if len(rRefs) == 0 || len(sRefs) == 0 {
		return nil
	}
	if blockPages < 1 {
		blockPages = 1
	}
	for start := 0; start < len(rRefs); {
		// A block is one unit of work: cancellation is honored at its
		// boundary, like a cluster in the clustered executor.
		if err := x.Err(); err != nil {
			return err
		}
		// Grow the block until it spans blockPages distinct home pages.
		end := start + 1
		pages := 1
		last := rRefs[start].Page
		for end < len(rRefs) {
			if rRefs[end].Page != last {
				if pages == blockPages {
					break
				}
				pages++
				last = rRefs[end].Page
			}
			end++
		}
		block := rRefs[start:end]
		touched := make(map[int]struct{}, pages)
		for i := range block {
			touched[block[i].Page] = struct{}{}
		}
		if err := prefetch(x, rData.File, touched); err != nil {
			return err
		}

		// The block's candidate range of S in grid order.
		loKey := addAll(block[0].Key, -1)
		hiKey := addAll(block[len(block)-1].Key, +1)
		lo := sort.Search(len(sRefs), func(i int) bool { return !lessKey(sRefs[i].Key, loKey) })
		hi := sort.Search(len(sRefs), func(i int) bool { return lessKey(hiKey, sRefs[i].Key) })

		for k := lo; k < hi; k++ {
			sb := sRefs[k]
			var pb *disk.Page // fetched lazily on the first adjacent pair
			for i := range block {
				if !cellsAdjacent(block[i].Key, sb.Key) {
					continue
				}
				if pb == nil {
					var err error
					pb, err = x.Pool.Get(disk.PageAddr{File: sData.File, Page: sb.Page})
					if err != nil {
						return err
					}
				}
				pa, err := x.Pool.Get(disk.PageAddr{File: rData.File, Page: block[i].Page})
				if err != nil {
					return err
				}
				if opts.SelfJoin && ad.SelfSkip(pa.Payload, block[i].Slot, pb.Payload, sb.Slot) {
					continue
				}
				x.Rep.Comparisons++
				match, cpu := ad.Compare(pa.Payload, block[i].Slot, pb.Payload, sb.Slot)
				x.Rep.CPUJoinSeconds += cpu
				if match {
					x.Emit(ad.ObjectID(pa.Payload, block[i].Slot), ad.ObjectID(pb.Payload, sb.Slot))
				}
			}
		}
		x.Pool.UnpinAll()
		start = end
	}
	return nil
}

// prefetch pins a set of pages, fetching missing ones in ascending page
// order (sequential runs on disk). The pins are taken on behalf of the
// caller: sweep joins against the pinned block and drops every pin with
// UnpinAll once the block is exhausted.
//
//lint:ignore pinleak pins are owned by the caller, released via UnpinAll per block in sweep
func prefetch(x *join.Exec, f disk.FileID, touched map[int]struct{}) error {
	pages := make([]int, 0, len(touched))
	for p := range touched {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	for _, p := range pages {
		if _, err := x.Pool.GetPinned(disk.PageAddr{File: f, Page: p}); err != nil {
			return err
		}
	}
	return nil
}

// addAll returns key with delta added to every coordinate.
func addAll(key []int, delta int) []int {
	out := make([]int, len(key))
	for i, k := range key {
		out[i] = k + delta
	}
	return out
}

func cellsAdjacent(a, b []int) bool {
	for i := range a {
		d := a[i] - b[i]
		if d > 1 || d < -1 {
			return false
		}
	}
	return true
}

func lessKey(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
