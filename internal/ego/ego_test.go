package ego

import (
	"math"
	"math/rand"
	"testing"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
)

// testAdapter adapts VectorPage payloads for EGO with L2 and width eps.
type testAdapter struct {
	eps  float64
	self bool
}

func (a *testAdapter) NumObjects(p any) int      { return len(p.(*join.VectorPage).IDs) }
func (a *testAdapter) ObjectID(p any, i int) int { return p.(*join.VectorPage).IDs[i] }

func (a *testAdapter) GridKey(p any, i int) []int {
	v := p.(*join.VectorPage).Vecs[i]
	key := make([]int, len(v))
	for d, x := range v {
		key[d] = int(math.Floor(x / a.eps))
	}
	return key
}

func (a *testAdapter) Compare(pa any, i int, pb any, k int) (bool, float64) {
	va := pa.(*join.VectorPage).Vecs[i]
	vb := pb.(*join.VectorPage).Vecs[k]
	return geom.L2.Dist(va, vb) <= a.eps, 1e-9
}

func (a *testAdapter) SelfSkip(pa any, i int, pb any, k int) bool {
	return a.self && pa.(*join.VectorPage).IDs[i] >= pb.(*join.VectorPage).IDs[k]
}

func (a *testAdapter) Repage(objs []ObjectRef, fetch func(int) (any, error)) (any, error) {
	out := &join.VectorPage{}
	for _, o := range objs {
		p, err := fetch(o.Page)
		if err != nil {
			return nil, err
		}
		vp := p.(*join.VectorPage)
		out.IDs = append(out.IDs, vp.IDs[o.Slot])
		out.Vecs = append(out.Vecs, vp.Vecs[o.Slot])
	}
	return out, nil
}

func (a *testAdapter) Reorderable() bool { return true }

// inPlaceAdapter is the non-reorderable variant (sequence-data behaviour).
type inPlaceAdapter struct{ testAdapter }

func (a *inPlaceAdapter) Reorderable() bool { return false }
func (a *inPlaceAdapter) Repage([]ObjectRef, func(int) (any, error)) (any, error) {
	panic("not reorderable")
}

// buildFlat materializes n random 2-d points into sequential pages with a
// flat one-level index.
func buildFlat(t *testing.T, d *disk.Disk, rng *rand.Rand, n, perPage int) (*join.Dataset, []geom.Vector) {
	t.Helper()
	f := d.CreateFile()
	var vecs []geom.Vector
	var leaves []*index.Node
	for i := 0; i < n; i += perPage {
		payload := &join.VectorPage{}
		mbr := geom.EmptyMBR(2)
		for k := i; k < i+perPage && k < n; k++ {
			v := geom.Vector{rng.Float64(), rng.Float64()}
			vecs = append(vecs, v)
			payload.IDs = append(payload.IDs, k)
			payload.Vecs = append(payload.Vecs, v)
			mbr.ExtendPoint(v)
		}
		addr, err := d.AppendPage(f, payload)
		if err != nil {
			t.Fatal(err)
		}
		leaves = append(leaves, &index.Node{MBR: mbr, Page: addr.Page})
	}
	rootMBR := geom.EmptyMBR(2)
	for _, l := range leaves {
		rootMBR.ExtendMBR(l.MBR)
	}
	root := &index.Node{MBR: rootMBR, Page: -1, Children: leaves}
	return &join.Dataset{Name: "flat", File: f, Root: root, Pages: len(leaves)}, vecs
}

func brute(a, b []geom.Vector, eps float64, self bool) int64 {
	var n int64
	for i, va := range a {
		for k, vb := range b {
			if self && i >= k {
				continue
			}
			if geom.L2.Dist(va, vb) <= eps {
				n++
			}
		}
	}
	return n
}

func TestEGOMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := disk.New(disk.DefaultModel())
	da, va := buildFlat(t, d, rng, 400, 8)
	db, vb := buildFlat(t, d, rng, 300, 8)
	const eps = 0.06
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, db, &testAdapter{eps: eps}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := brute(va, vb, eps, false)
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.PageReads == 0 || rep.IOSeconds <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
}

func TestEGOSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := disk.New(disk.DefaultModel())
	da, va := buildFlat(t, d, rng, 350, 8)
	const eps = 0.05
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, da, &testAdapter{eps: eps, self: true}, Options{SelfJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	want := brute(va, va, eps, true)
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
}

func TestEGONonReorderableMatchesAndSeeksMore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := disk.New(disk.DefaultModel())
	da, va := buildFlat(t, d, rng, 400, 8)
	db, vb := buildFlat(t, d, rng, 400, 8)
	const eps = 0.06
	want := brute(va, vb, eps, false)

	e := &join.Engine{Disk: d, BufferSize: 16}
	re, err := Run(e, da, db, &testAdapter{eps: eps}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ad := &inPlaceAdapter{}
	ad.eps = eps
	ri, err := Run(e, da, db, ad, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Results != want || ri.Results != want {
		t.Fatalf("results %d / %d, want %d", re.Results, ri.Results, want)
	}
	// The paper's point: in-place (sequence) data cannot be reordered and
	// pays many more random seeks during the sweep.
	if ri.Seeks <= re.Seeks {
		t.Fatalf("in-place seeks %d <= reordered seeks %d", ri.Seeks, re.Seeks)
	}
}

func TestEGOEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := disk.New(disk.DefaultModel())
	da, _ := buildFlat(t, d, rng, 10, 4)
	e := &join.Engine{Disk: d, BufferSize: 8}
	// Epsilon so small every point is isolated: still must terminate with 0
	// or more results and no error.
	if _, err := Run(e, da, da, &testAdapter{eps: 1e-9, self: true}, Options{SelfJoin: true}); err != nil {
		t.Fatal(err)
	}
}

func TestLessKeyAndCellsAdjacent(t *testing.T) {
	if !lessKey([]int{1, 2}, []int{1, 3}) || lessKey([]int{1, 3}, []int{1, 2}) {
		t.Fatal("lessKey")
	}
	if lessKey([]int{2, 2}, []int{2, 2}) {
		t.Fatal("lessKey equal")
	}
	if !cellsAdjacent([]int{0, 0}, []int{1, -1}) {
		t.Fatal("adjacent cells rejected")
	}
	if cellsAdjacent([]int{0, 0}, []int{2, 0}) {
		t.Fatal("distant cells accepted")
	}
}

func TestAddAll(t *testing.T) {
	got := addAll([]int{1, 2, 3}, -1)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("addAll = %v", got)
	}
}

func TestMergePassChargesGrowWithSmallBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(buffer int) int64 {
		d := disk.New(disk.DefaultModel())
		da, _ := buildFlat(t, d, rng, 600, 4)
		db, _ := buildFlat(t, d, rng, 600, 4)
		e := &join.Engine{Disk: d, BufferSize: buffer}
		rep, err := Run(e, da, db, &testAdapter{eps: 0.02}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.PageReads
	}
	small := mk(8)
	large := mk(128)
	if small <= large {
		t.Fatalf("external sort with tiny buffer should read more: %d <= %d", small, large)
	}
}
