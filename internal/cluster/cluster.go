// Package cluster partitions the marked entries of a prediction matrix into
// buffer-sized clusters: Square Clustering (SC, §7.1 / Figure 6) and
// Cost-based Clustering (CC, §7.2 / Figure 8).
//
// A cluster's pages are its marked rows plus its marked columns; Lemma 2:
// when rows+cols ≤ B, reading those pages suffices to join every marked
// entry of the cluster with no further I/O.
package cluster

import (
	"fmt"
	"sort"

	"pmjoin/internal/predmat"
)

// Cluster is one buffer-sized group of marked prediction-matrix entries.
type Cluster struct {
	Entries []predmat.Entry
	rows    []int // ascending distinct marked rows
	cols    []int // ascending distinct marked cols
}

// Rows returns the ascending distinct marked rows of the cluster.
func (c *Cluster) Rows() []int { return c.rows }

// Cols returns the ascending distinct marked columns of the cluster.
func (c *Cluster) Cols() []int { return c.cols }

// Pages returns rows+cols, the number of pages the cluster needs resident.
func (c *Cluster) Pages() int { return len(c.rows) + len(c.cols) }

// finalize derives rows/cols from entries.
func (c *Cluster) finalize() {
	rset := make(map[int]struct{})
	cset := make(map[int]struct{})
	for _, e := range c.Entries {
		rset[e.R] = struct{}{}
		cset[e.C] = struct{}{}
	}
	c.rows = sortedKeys(rset)
	c.cols = sortedKeys(cset)
}

func sortedKeys(s map[int]struct{}) []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Validate checks that every cluster fits into a buffer of size b, that
// clusters are disjoint, and that together they cover exactly the marked
// entries of m.
func Validate(clusters []*Cluster, m *predmat.Matrix, b int) error {
	seen := make(map[predmat.Entry]struct{}, m.Marked())
	for i, c := range clusters {
		if c.Pages() > b {
			return fmt.Errorf("cluster %d needs %d pages > buffer %d", i, c.Pages(), b)
		}
		if len(c.Entries) == 0 {
			return fmt.Errorf("cluster %d is empty", i)
		}
		for _, e := range c.Entries {
			if !m.IsMarked(e.R, e.C) {
				return fmt.Errorf("cluster %d contains unmarked entry %v", i, e)
			}
			if _, dup := seen[e]; dup {
				return fmt.Errorf("entry %v assigned to multiple clusters", e)
			}
			seen[e] = struct{}{}
		}
	}
	if len(seen) != m.Marked() {
		return fmt.Errorf("clusters cover %d of %d marked entries", len(seen), m.Marked())
	}
	return nil
}

// SquareOptions tunes SC. The zero value follows the paper: clusters with an
// equal number of marked rows and columns (r = c = B/2).
type SquareOptions struct {
	// RowFraction is the fraction of the buffer devoted to rows; 0 means
	// 0.5 (the paper's square shape). The ablation benchmark sweeps it.
	RowFraction float64
}

// Square runs the SC algorithm: iteratively form clusters that take marked
// columns in ascending order (minimal width) and at most rowCap marked rows,
// with rowCap+colCap = b (Figure 6, observations 1-2 of Theorem 2).
func Square(m *predmat.Matrix, b int) ([]*Cluster, error) {
	return SquareOpts(m, b, SquareOptions{})
}

// SquareOpts is Square with explicit options.
func SquareOpts(m *predmat.Matrix, b int, opts SquareOptions) ([]*Cluster, error) {
	if b < 2 {
		return nil, fmt.Errorf("cluster: buffer %d < 2", b)
	}
	frac := opts.RowFraction
	if frac == 0 {
		frac = 0.5
	}
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("cluster: row fraction %g outside (0,1)", frac)
	}
	rowCap := int(float64(b) * frac)
	if rowCap < 1 {
		rowCap = 1
	}
	colCap := b - rowCap
	if colCap < 1 {
		colCap = 1
		rowCap = b - 1
	}

	// unassigned[c] holds the not-yet-clustered marked rows of column c.
	unassigned := make(map[int][]int, len(m.MarkedCols()))
	colOrder := m.MarkedCols()
	remaining := 0
	for _, c := range colOrder {
		rows := append([]int(nil), m.ColRows(c)...)
		unassigned[c] = rows
		remaining += len(rows)
	}

	var clusters []*Cluster
	for remaining > 0 {
		cl := &Cluster{}
		rows := make(map[int]struct{}, rowCap)
		cols := make(map[int]struct{}, colCap)
		for _, c := range colOrder {
			pending := unassigned[c]
			if len(pending) == 0 {
				continue
			}
			if len(cols) >= colCap {
				break
			}
			var leftover []int
			took := false
			for _, r := range pending {
				_, have := rows[r]
				if !have && len(rows) >= rowCap {
					leftover = append(leftover, r)
					continue
				}
				rows[r] = struct{}{}
				cl.Entries = append(cl.Entries, predmat.Entry{R: r, C: c})
				took = true
				remaining--
			}
			unassigned[c] = leftover
			if took {
				cols[c] = struct{}{}
			}
		}
		if len(cl.Entries) == 0 {
			return nil, fmt.Errorf("cluster: SC made no progress with %d entries remaining", remaining)
		}
		cl.finalize()
		clusters = append(clusters, cl)
	}
	return clusters, nil
}
