package cluster

import (
	"math/rand"
	"testing"

	"pmjoin/internal/predmat"
)

// randomMatrix marks roughly density*rows*cols entries.
func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *predmat.Matrix {
	m := predmat.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				m.Mark(r, c)
			}
		}
	}
	return m
}

// bandedMatrix marks entries near the diagonal (the structure spatial joins
// produce).
func bandedMatrix(rng *rand.Rand, n, band int, density float64) *predmat.Matrix {
	m := predmat.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for dc := -band; dc <= band; dc++ {
			c := r + dc
			if c >= 0 && c < n && rng.Float64() < density {
				m.Mark(r, c)
			}
		}
	}
	return m
}

func TestSquareRejectsTinyBuffer(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(1)), 4, 4, 0.5)
	if _, err := Square(m, 1); err == nil {
		t.Fatal("buffer 1 accepted")
	}
}

func TestSquareOptsRejectsBadFraction(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(1)), 4, 4, 0.5)
	for _, f := range []float64{-0.1, 1.0, 1.5} {
		if _, err := SquareOpts(m, 8, SquareOptions{RowFraction: f}); err == nil {
			t.Fatalf("fraction %g accepted", f)
		}
	}
}

// TestSquareValidOverRandomMatrices is the Lemma 2 property: clusters are
// disjoint, cover every marked entry, and fit into the buffer.
func TestSquareValidOverRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		rows := 5 + rng.Intn(60)
		cols := 5 + rng.Intn(60)
		density := 0.01 + rng.Float64()*0.4
		b := 4 + rng.Intn(20)
		m := randomMatrix(rng, rows, cols, density)
		if m.Marked() == 0 {
			continue
		}
		clusters, err := Square(m, b)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := Validate(clusters, m, b); err != nil {
			t.Fatalf("iter %d (rows=%d cols=%d b=%d): %v", iter, rows, cols, b, err)
		}
	}
}

func TestSquareShapeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 50, 50, 0.3)
	const b = 10
	clusters, err := Square(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clusters {
		if len(c.Rows()) > b/2 {
			t.Fatalf("cluster %d has %d rows > %d", i, len(c.Rows()), b/2)
		}
		if len(c.Cols()) > b/2 {
			t.Fatalf("cluster %d has %d cols > %d", i, len(c.Cols()), b/2)
		}
	}
}

func TestSquareRowFractionShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 60, 60, 0.3)
	clusters, err := SquareOpts(m, 12, SquareOptions{RowFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(clusters, m, 12); err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		if len(c.Rows()) > 3 { // 12 * 0.25
			t.Fatalf("rows = %d with fraction 0.25", len(c.Rows()))
		}
	}
}

func TestSquareEmptyMatrix(t *testing.T) {
	m := predmat.NewMatrix(10, 10)
	clusters, err := Square(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Fatalf("clusters = %d for empty matrix", len(clusters))
	}
}

func TestSquareSingleEntry(t *testing.T) {
	m := predmat.NewMatrix(10, 10)
	m.Mark(7, 3)
	clusters, err := Square(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Pages() != 2 {
		t.Fatalf("clusters = %+v", clusters)
	}
	if err := Validate(clusters, m, 4); err != nil {
		t.Fatal(err)
	}
}

func TestSquareDenseColumn(t *testing.T) {
	// One column with more marks than a cluster can hold rows: entries must
	// spill into later clusters, never be lost.
	m := predmat.NewMatrix(40, 3)
	for r := 0; r < 40; r++ {
		m.Mark(r, 1)
	}
	clusters, err := Square(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(clusters, m, 8); err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 40/4 {
		t.Fatalf("expected at least 10 clusters, got %d", len(clusters))
	}
}

func TestSquareMinimalWidthPreference(t *testing.T) {
	// Marks in columns 0,1 and a distant column 50: the first cluster must
	// take the near columns, not jump to 50.
	m := predmat.NewMatrix(10, 60)
	m.Mark(0, 0)
	m.Mark(1, 1)
	m.Mark(2, 50)
	clusters, err := Square(m, 6)
	if err != nil {
		t.Fatal(err)
	}
	first := clusters[0]
	for _, c := range first.Cols() {
		if c == 50 && len(clusters) > 1 {
			t.Fatal("first cluster jumped to the distant column")
		}
	}
	if err := Validate(clusters, m, 6); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadClusters(t *testing.T) {
	m := predmat.NewMatrix(5, 5)
	m.Mark(0, 0)
	m.Mark(1, 1)
	// Missing coverage.
	c1 := &Cluster{Entries: []predmat.Entry{{R: 0, C: 0}}}
	c1Fix := *c1
	c1Fix.finalize()
	if err := Validate([]*Cluster{&c1Fix}, m, 8); err == nil {
		t.Fatal("missing coverage not detected")
	}
	// Duplicate assignment.
	c2 := &Cluster{Entries: []predmat.Entry{{R: 0, C: 0}, {R: 1, C: 1}}}
	c2.finalize()
	c3 := &Cluster{Entries: []predmat.Entry{{R: 0, C: 0}}}
	c3.finalize()
	if err := Validate([]*Cluster{c2, c3}, m, 8); err == nil {
		t.Fatal("duplicate not detected")
	}
	// Unmarked entry.
	c4 := &Cluster{Entries: []predmat.Entry{{R: 4, C: 4}}}
	c4.finalize()
	if err := Validate([]*Cluster{c4}, m, 8); err == nil {
		t.Fatal("unmarked entry not detected")
	}
	// Oversized cluster.
	big := &Cluster{Entries: []predmat.Entry{{R: 0, C: 0}, {R: 1, C: 1}}}
	big.finalize()
	if err := Validate([]*Cluster{big}, m, 3); err == nil {
		t.Fatal("oversized cluster not detected")
	}
}

func TestCostRejectsTinyBuffer(t *testing.T) {
	m := randomMatrix(rand.New(rand.NewSource(5)), 4, 4, 0.5)
	if _, err := Cost(m, 1, CostOptions{}); err == nil {
		t.Fatal("buffer 1 accepted")
	}
}

// TestCostValidOverRandomMatrices: CC clusters also satisfy Lemma 2.
func TestCostValidOverRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 15; iter++ {
		rows := 5 + rng.Intn(40)
		cols := 5 + rng.Intn(40)
		b := 4 + rng.Intn(16)
		m := randomMatrix(rng, rows, cols, 0.05+rng.Float64()*0.3)
		if m.Marked() == 0 {
			continue
		}
		clusters, err := Cost(m, b, CostOptions{Seed: int64(iter)})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := Validate(clusters, m, b); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestCostDeterministicInSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := bandedMatrix(rng, 60, 5, 0.6)
	a, err := Cost(m, 10, CostOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cost(m, 10, CostOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Entries) != len(b[i].Entries) {
			t.Fatalf("cluster %d sizes differ", i)
		}
	}
}

func TestCostHistogramBins(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := bandedMatrix(rng, 50, 4, 0.7)
	for _, bins := range []int{1, 10, 1000} {
		clusters, err := Cost(m, 12, CostOptions{HistogramBins: bins})
		if err != nil {
			t.Fatalf("bins=%d: %v", bins, err)
		}
		if err := Validate(clusters, m, 12); err != nil {
			t.Fatalf("bins=%d: %v", bins, err)
		}
	}
}

func TestCostSingleEntry(t *testing.T) {
	m := predmat.NewMatrix(6, 6)
	m.Mark(2, 4)
	clusters, err := Cost(m, 4, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Pages() != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
}

// TestCostPrefersDenseClusters: on a banded matrix CC should produce fewer
// pages read (sum over clusters) than naive one-entry-per-cluster.
func TestCostClusterEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := bandedMatrix(rng, 80, 6, 0.8)
	clusters, err := Cost(m, 16, CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(clusters, m, 16); err != nil {
		t.Fatal(err)
	}
	totalPages := 0
	for _, c := range clusters {
		totalPages += c.Pages()
	}
	if totalPages >= 2*m.Marked() {
		t.Fatalf("CC degenerated to singletons: %d pages for %d entries", totalPages, m.Marked())
	}
}

func TestClusterAccessors(t *testing.T) {
	c := &Cluster{Entries: []predmat.Entry{{R: 3, C: 1}, {R: 3, C: 2}, {R: 5, C: 1}}}
	c.finalize()
	if got := c.Rows(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("rows = %v", got)
	}
	if got := c.Cols(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("cols = %v", got)
	}
	if c.Pages() != 4 {
		t.Fatalf("pages = %d", c.Pages())
	}
}
