package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"pmjoin/internal/predmat"
)

// IOModel supplies the cost terms the CC algorithm minimizes: a random seek
// and a sequential page transfer, in seconds (matching the disk simulator).
type IOModel struct {
	SeekTime     float64
	TransferTime float64
}

// CostOptions tunes the CC algorithm.
type CostOptions struct {
	// HistogramBins is the resolution per axis of the density histogram used
	// for seeding; 0 means 100 (the paper builds a 100×100 histogram).
	HistogramBins int
	// Seed makes the seed-entry choice deterministic.
	Seed int64
	// IO is the I/O cost model; the zero value uses 10ms seek / 1ms transfer.
	IO IOModel
}

func (o *CostOptions) defaults() {
	if o.HistogramBins == 0 {
		o.HistogramBins = 100
	}
	if o.IO.SeekTime == 0 && o.IO.TransferTime == 0 {
		o.IO = IOModel{SeekTime: 10e-3, TransferTime: 1e-3}
	}
}

// Cost runs the CC algorithm (Figure 8): seed each cluster from the densest
// histogram bucket, then grow the covering rectangle entry by entry, always
// absorbing the unassigned marked entry whose absorption increases the
// cluster's I/O read cost the least (found TA-style over the two growth
// directions), until the cluster's pages fill the buffer.
//
// CC minimizes the seek-aware I/O cost directly; the paper uses it as an
// approximate lower bound for the I/O cost of SC (§9.2, Table 2).
func Cost(m *predmat.Matrix, b int, opts CostOptions) ([]*Cluster, error) {
	if b < 2 {
		return nil, fmt.Errorf("cluster: buffer %d < 2", b)
	}
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	cc := &ccState{m: m, b: b, opts: opts}
	cc.init()

	var clusters []*Cluster
	for cc.remaining > 0 {
		seed, ok := cc.pickSeed(rng)
		if !ok {
			return nil, fmt.Errorf("cluster: CC histogram exhausted with %d entries remaining", cc.remaining)
		}
		cl := cc.grow(seed)
		cl.finalize()
		clusters = append(clusters, cl)
	}
	return clusters, nil
}

type ccState struct {
	m    *predmat.Matrix
	b    int
	opts CostOptions

	// liveByRow / liveByCol track unassigned entries for fast rectangle
	// absorption and directional scans.
	liveByRow map[int][]int
	liveByCol map[int][]int
	// rowIndex / colIndex are the ascending marked rows / columns of the
	// matrix (static), used by the outward cost walks.
	rowIndex  []int
	colIndex  []int
	remaining int

	hist     []int // histogram bucket counts
	bins     int
	rowScale float64
	colScale float64
}

func (cc *ccState) init() {
	cc.liveByRow = make(map[int][]int)
	cc.liveByCol = make(map[int][]int)
	for _, r := range cc.m.MarkedRows() {
		cc.liveByRow[r] = append([]int(nil), cc.m.RowCols(r)...)
	}
	for _, c := range cc.m.MarkedCols() {
		cc.liveByCol[c] = append([]int(nil), cc.m.ColRows(c)...)
	}
	cc.rowIndex = cc.m.MarkedRows()
	cc.colIndex = cc.m.MarkedCols()
	cc.remaining = cc.m.Marked()

	cc.bins = cc.opts.HistogramBins
	if cc.bins > cc.m.Rows() {
		cc.bins = max(1, cc.m.Rows())
	}
	if cc.bins > cc.m.Cols() {
		cc.bins = max(1, cc.m.Cols())
	}
	cc.rowScale = float64(cc.bins) / float64(max(1, cc.m.Rows()))
	cc.colScale = float64(cc.bins) / float64(max(1, cc.m.Cols()))
	cc.hist = make([]int, cc.bins*cc.bins)
	for _, r := range cc.m.MarkedRows() {
		for _, c := range cc.m.RowCols(r) {
			cc.hist[cc.bucket(r, c)]++
		}
	}
}

func (cc *ccState) bucket(r, c int) int {
	br := int(float64(r) * cc.rowScale)
	if br >= cc.bins {
		br = cc.bins - 1
	}
	bc := int(float64(c) * cc.colScale)
	if bc >= cc.bins {
		bc = cc.bins - 1
	}
	return br*cc.bins + bc
}

// pickSeed chooses a random unassigned entry in the bucket with the most
// unassigned entries.
func (cc *ccState) pickSeed(rng *rand.Rand) (predmat.Entry, bool) {
	best, bestCount := -1, 0
	for i, n := range cc.hist {
		if n > bestCount {
			best, bestCount = i, n
		}
	}
	if best < 0 {
		return predmat.Entry{}, false
	}
	br := best / cc.bins
	bc := best % cc.bins
	rLo := int(float64(br) / cc.rowScale)
	rHi := int(float64(br+1) / cc.rowScale)
	var candidates []predmat.Entry
	for r := rLo; r <= rHi && r < cc.m.Rows(); r++ {
		for _, c := range cc.liveByRow[r] {
			bcGot := cc.bucket(r, c) % cc.bins
			if bcGot == bc {
				candidates = append(candidates, predmat.Entry{R: r, C: c})
			}
		}
	}
	if len(candidates) == 0 {
		// Histogram count drifted (should not happen); fall back to any
		// live entry.
		for r, cols := range cc.liveByRow {
			if len(cols) > 0 {
				return predmat.Entry{R: r, C: cols[0]}, true
			}
		}
		return predmat.Entry{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// rect is the growing cluster rectangle.
type rect struct {
	rLo, rHi, cLo, cHi int
}

// grow builds one cluster starting from seed (Figure 8 steps 3.b-3.e).
func (cc *ccState) grow(seed predmat.Entry) *Cluster {
	cl := &Cluster{}
	rc := rect{rLo: seed.R, rHi: seed.R, cLo: seed.C, cHi: seed.C}
	rows := map[int]struct{}{}
	cols := map[int]struct{}{}
	cc.absorb(cl, rc, rows, cols)

	for cc.remaining > 0 {
		next, ok := cc.cheapestExpansion(rc)
		if !ok {
			break
		}
		newRect := rc
		if next.R < newRect.rLo {
			newRect.rLo = next.R
		}
		if next.R > newRect.rHi {
			newRect.rHi = next.R
		}
		if next.C < newRect.cLo {
			newRect.cLo = next.C
		}
		if next.C > newRect.cHi {
			newRect.cHi = next.C
		}
		// Check buffer fit after absorbing everything the expansion covers.
		newRows, newCols := cc.pagesAfter(newRect, rows, cols)
		if newRows+newCols > cc.b {
			break
		}
		rc = newRect
		cc.absorb(cl, rc, rows, cols)
	}
	return cl
}

// pagesAfter counts distinct marked rows/cols the cluster would have after
// expanding to nr, without mutating state.
func (cc *ccState) pagesAfter(nr rect, rows, cols map[int]struct{}) (int, int) {
	nRows := len(rows)
	nCols := len(cols)
	for r := nr.rLo; r <= nr.rHi; r++ {
		if _, have := rows[r]; have {
			continue
		}
		for _, c := range cc.liveByRow[r] {
			if c >= nr.cLo && c <= nr.cHi {
				nRows++
				break
			}
		}
	}
	seenCols := make(map[int]struct{})
	for r := nr.rLo; r <= nr.rHi; r++ {
		for _, c := range cc.liveByRow[r] {
			if c < nr.cLo || c > nr.cHi {
				continue
			}
			if _, have := cols[c]; have {
				continue
			}
			if _, dup := seenCols[c]; dup {
				continue
			}
			seenCols[c] = struct{}{}
			nCols++
		}
	}
	return nRows, nCols
}

// absorb assigns every unassigned marked entry inside rc to cl.
func (cc *ccState) absorb(cl *Cluster, rc rect, rows, cols map[int]struct{}) {
	for r := rc.rLo; r <= rc.rHi; r++ {
		live := cc.liveByRow[r]
		if len(live) == 0 {
			continue
		}
		var keep []int
		for _, c := range live {
			if c < rc.cLo || c > rc.cHi {
				keep = append(keep, c)
				continue
			}
			cl.Entries = append(cl.Entries, predmat.Entry{R: r, C: c})
			rows[r] = struct{}{}
			cols[c] = struct{}{}
			cc.remaining--
			cc.hist[cc.bucket(r, c)]--
			cc.removeFromCol(c, r)
		}
		cc.liveByRow[r] = keep
	}
}

func (cc *ccState) removeFromCol(c, r int) {
	live := cc.liveByCol[c]
	pos := sort.SearchInts(live, r)
	if pos < len(live) && live[pos] == r {
		cc.liveByCol[c] = append(live[:pos], live[pos+1:]...)
	}
}

// cheapestExpansion finds the unassigned entry outside rc whose absorption
// minimizes the increase in I/O cost of reading the cluster's pages. The
// cost increase of an entry (r,c) separates into a row term depending only
// on r and a column term depending only on c, so the two growth directions
// form lists sorted by increasing cost — the extension cost is V-shaped
// around the cluster interval, so walking outward from the interval visits
// rows (and columns) in cost order without sorting. Fagin's threshold
// algorithm over the two directions stops the walk once the best combined
// cost found is at or below the frontier sum (Figure 8 step 3.c.i).
func (cc *ccState) cheapestExpansion(rc rect) (predmat.Entry, bool) {
	rowWalk := cc.newWalk(rc.rLo, rc.rHi, cc.rowIndex, cc.liveByRow)
	colWalk := cc.newWalk(rc.cLo, rc.cHi, cc.colIndex, cc.liveByCol)

	best := predmat.Entry{}
	bestCost := -1.0
	consider := func(r, c int) {
		cost := cc.extendCost(r, rc.rLo, rc.rHi) + cc.extendCost(c, rc.cLo, rc.cHi)
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = predmat.Entry{R: r, C: c}
		}
	}

	for {
		r, _, rOK := rowWalk.next()
		if rOK {
			// Best live partner column of this row: the extension cost is
			// V-shaped in the column index, so the candidates nearest the
			// column interval win; liveByRow[r] is sorted.
			if c, ok := nearestLive(cc.liveByRow[r], rc.cLo, rc.cHi, cc.extendCostFn(rc.cLo, rc.cHi)); ok {
				consider(r, c)
			}
		}
		c, _, cOK := colWalk.next()
		if cOK {
			if r2, ok := nearestLive(cc.liveByCol[c], rc.rLo, rc.rHi, cc.extendCostFn(rc.rLo, rc.rHi)); ok {
				consider(r2, c)
			}
		}
		if !rOK && !cOK {
			break
		}
		// TA threshold: no unseen entry can beat the sum of the frontier
		// costs of the two directions.
		threshold := 0.0
		if nr, ok := rowWalk.peekCost(); ok {
			threshold += nr
		} else if !cOK {
			break
		}
		if nc, ok := colWalk.peekCost(); ok {
			threshold += nc
		} else if !rOK {
			break
		}
		if bestCost >= 0 && bestCost <= threshold {
			break
		}
	}
	if bestCost < 0 {
		return predmat.Entry{}, false
	}
	return best, true
}

// walk enumerates the live indices of one direction in increasing extension
// cost: first the indices inside [lo,hi] (cost 0), then outward from the
// interval boundaries, cheapest side first.
type walk struct {
	cc       *ccState
	sorted   []int // all marked indices of the direction, ascending
	live     map[int][]int
	lo, hi   int
	inside   int // next position within [lo,hi]
	insideHi int // first position past hi
	left     int // next position below lo (descending)
	right    int // next position above hi (ascending)
}

func (cc *ccState) newWalk(lo, hi int, sorted []int, live map[int][]int) *walk {
	w := &walk{cc: cc, sorted: sorted, live: live, lo: lo, hi: hi}
	w.inside = sort.SearchInts(sorted, lo)
	w.insideHi = sort.SearchInts(sorted, hi+1)
	w.left = w.inside - 1
	w.right = w.insideHi
	return w
}

// next returns the next-cheapest live index and its cost.
func (w *walk) next() (int, float64, bool) {
	for w.inside < w.insideHi {
		idx := w.sorted[w.inside]
		w.inside++
		if len(w.live[idx]) > 0 {
			return idx, 0, true
		}
	}
	for {
		lCost, lOK := w.sideCost(w.left)
		rCost, rOK := w.sideCost(w.right)
		switch {
		case !lOK && !rOK:
			return 0, 0, false
		case lOK && (!rOK || lCost <= rCost):
			idx := w.sorted[w.left]
			w.left--
			if len(w.live[idx]) > 0 {
				return idx, lCost, true
			}
		default:
			idx := w.sorted[w.right]
			w.right++
			if len(w.live[idx]) > 0 {
				return idx, rCost, true
			}
		}
	}
}

// peekCost returns the cost of the cheapest unvisited index (live or not —
// a lower bound, which is what the TA threshold needs).
func (w *walk) peekCost() (float64, bool) {
	if w.inside < w.insideHi {
		return 0, true
	}
	lCost, lOK := w.sideCost(w.left)
	rCost, rOK := w.sideCost(w.right)
	switch {
	case !lOK && !rOK:
		return 0, false
	case lOK && (!rOK || lCost <= rCost):
		return lCost, true
	default:
		return rCost, true
	}
}

func (w *walk) sideCost(pos int) (float64, bool) {
	if pos < 0 || pos >= len(w.sorted) {
		return 0, false
	}
	return w.cc.extendCost(w.sorted[pos], w.lo, w.hi), true
}

// extendCostFn returns the single-direction extension cost function for the
// interval [lo,hi].
func (cc *ccState) extendCostFn(lo, hi int) func(int) float64 {
	return func(p int) float64 { return cc.extendCost(p, lo, hi) }
}

// nearestLive returns the index in the sorted live list with minimum
// extension cost relative to [lo,hi]: an index inside the interval if any,
// otherwise the nearest neighbour of either boundary.
func nearestLive(sorted []int, lo, hi int, costOf func(int) float64) (int, bool) {
	if len(sorted) == 0 {
		return 0, false
	}
	pos := sort.SearchInts(sorted, lo)
	if pos < len(sorted) && sorted[pos] <= hi {
		return sorted[pos], true // inside the interval: cost 0
	}
	best, bestCost := 0, -1.0
	if pos-1 >= 0 {
		best, bestCost = sorted[pos-1], costOf(sorted[pos-1])
	}
	if pos < len(sorted) {
		if c := costOf(sorted[pos]); bestCost < 0 || c < bestCost {
			best, bestCost = sorted[pos], c
		}
	}
	return best, bestCost >= 0
}

// extendCost models the I/O cost increase of extending the page interval
// [lo,hi] to include page p: pages in the gap must be transferred (they are
// read sequentially once the cluster is fetched with optimal disk
// scheduling) and a new seek is charged when the extension is discontiguous.
func (cc *ccState) extendCost(p, lo, hi int) float64 {
	io := cc.opts.IO
	switch {
	case p >= lo && p <= hi:
		return 0
	case p < lo:
		gap := lo - p
		cost := io.TransferTime * float64(gap)
		if gap > 1 {
			cost += io.SeekTime
		}
		return cost
	default:
		gap := p - hi
		cost := io.TransferTime * float64(gap)
		if gap > 1 {
			cost += io.SeekTime
		}
		return cost
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
