package cluster

import (
	"math/rand"
	"testing"

	"pmjoin/internal/predmat"
)

func benchMatrix(b *testing.B, n, band int) *predmat.Matrix {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	m := predmat.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for dc := -band; dc <= band; dc++ {
			c := r + dc
			if c >= 0 && c < n && rng.Float64() < 0.5 {
				m.Mark(r, c)
			}
		}
	}
	return m
}

func BenchmarkSquareCluster(b *testing.B) {
	m := benchMatrix(b, 1000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Square(m, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostCluster(b *testing.B) {
	m := benchMatrix(b, 400, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cost(m, 50, CostOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
