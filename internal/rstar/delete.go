package rstar

import (
	"fmt"

	"pmjoin/internal/geom"
)

// Delete removes the item with the given ID whose MBR matches m, using the
// classic R-tree deletion with tree condensation: underfull nodes along the
// deletion path are dissolved and their entries reinserted. It reports
// whether the item was found.
func (t *Tree) Delete(id int, m geom.MBR) (bool, error) {
	if t.packed != nil {
		return false, fmt.Errorf("rstar: delete after Pack")
	}
	leaf, path := t.findLeaf(t.root, nil, id, m)
	if leaf == nil {
		return false, nil
	}
	// Remove the entry from the leaf.
	for i, e := range leaf.entries {
		if e.child == nil && e.item.ID == id {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf, path)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	return true, nil
}

// findLeaf locates the leaf containing the item, returning it and the root
// path.
func (t *Tree) findLeaf(n *node, path []*node, id int, m geom.MBR) (*node, []*node) {
	if n.leaf {
		for _, e := range n.entries {
			if e.item.ID == id && mbrEq(e.mbr, m) {
				return n, path
			}
		}
		return nil, nil
	}
	for _, e := range n.entries {
		if !e.mbr.Intersects(m) {
			continue
		}
		if leaf, p := t.findLeaf(e.child, append(path, n), id, m); leaf != nil {
			return leaf, p
		}
	}
	return nil, nil
}

func mbrEq(a, b geom.MBR) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}

// condense walks the deletion path bottom-up: underfull non-root nodes are
// removed and their orphaned entries reinserted at their original level.
func (t *Tree) condense(n *node, path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan

	cur := n
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		if len(cur.entries) < t.minEntries(cur) {
			// Dissolve cur: detach from parent, orphan its entries.
			for j, e := range parent.entries {
				if e.child == cur {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range cur.entries {
				orphans = append(orphans, orphan{e: e, level: cur.level})
			}
		}
		recomputeEntryMBRs(parent)
		cur = parent
	}

	reinserted := make(map[int]bool)
	for _, o := range orphans {
		if o.e.child != nil {
			// Reinsert an entire subtree at its level.
			t.insertEntry(o.e, o.level, reinserted)
		} else {
			t.insertEntry(o.e, 0, reinserted)
		}
	}
}
