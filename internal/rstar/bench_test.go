package rstar

import (
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
)

func benchItems(n, dim int) []Item {
	return randItemsBench(rand.New(rand.NewSource(1)), n, dim)
}

func randItemsBench(rng *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		items[i] = PointItem(i, v)
	}
	return items
}

func BenchmarkInsert2D(b *testing.B) {
	items := benchItems(b.N, 2)
	tr, _ := New(2, DefaultConfig(32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i])
	}
}

func BenchmarkBulkLoadSTR10k(b *testing.B) {
	items := benchItems(10000, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoadSTR(2, DefaultConfig(32), items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	items := benchItems(20000, 2)
	tr, _ := BulkLoadSTR(2, DefaultConfig(32), items)
	q := geom.MBR{Min: geom.Vector{0.4, 0.4}, Max: geom.Vector{0.42, 0.42}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RangeSearch(q)
	}
}

func BenchmarkNearestNeighbors10(b *testing.B) {
	items := benchItems(20000, 2)
	tr, _ := BulkLoadSTR(2, DefaultConfig(32), items)
	q := geom.Vector{0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestNeighbors(q, 10, geom.L2)
	}
}
