// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990): ChooseSubtree with minimum overlap enlargement,
// margin-driven split-axis selection, and forced reinsertion. It also
// provides an STR (sort-tile-recursive) bulk loader.
//
// Per the paper's setup (§5.1), the capacity of each leaf is one data page;
// after construction the indexed objects are laid out so that the contents
// of each leaf MBR appear contiguously on disk.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"pmjoin/internal/geom"
	"pmjoin/internal/index"
)

// Item is one indexed object: a point or a spatial object with an MBR.
type Item struct {
	ID  int
	MBR geom.MBR
}

// PointItem builds an Item whose MBR degenerates to the point v.
func PointItem(id int, v geom.Vector) Item {
	return Item{ID: id, MBR: geom.NewMBR(v)}
}

type entry struct {
	mbr   geom.MBR
	child *node // nil for leaf entries
	item  Item  // valid for leaf entries
}

type node struct {
	leaf    bool
	level   int // leaves are level 0
	entries []entry
	page    int // assigned by Pack for leaves; -1 otherwise
}

// Config controls node capacities.
type Config struct {
	// MaxLeafEntries is the number of objects per leaf (= per data page).
	MaxLeafEntries int
	// MaxBranchEntries is the fanout of internal nodes.
	MaxBranchEntries int
	// MinFill is the minimum fill factor in [0.1, 0.5]; R* default 0.4.
	MinFill float64
	// ReinsertFraction is the fraction of entries force-reinserted on
	// overflow; R* default 0.3.
	ReinsertFraction float64
}

// DefaultConfig returns the R* defaults for the given leaf capacity.
func DefaultConfig(leafCap int) Config {
	return Config{
		MaxLeafEntries:   leafCap,
		MaxBranchEntries: 32,
		MinFill:          0.4,
		ReinsertFraction: 0.3,
	}
}

func (c *Config) validate() error {
	if c.MaxLeafEntries < 2 {
		return fmt.Errorf("rstar: MaxLeafEntries %d < 2", c.MaxLeafEntries)
	}
	if c.MaxBranchEntries < 2 {
		return fmt.Errorf("rstar: MaxBranchEntries %d < 2", c.MaxBranchEntries)
	}
	if c.MinFill <= 0 || c.MinFill > 0.5 {
		return fmt.Errorf("rstar: MinFill %g out of (0, 0.5]", c.MinFill)
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		return fmt.Errorf("rstar: ReinsertFraction %g out of [0, 0.5]", c.ReinsertFraction)
	}
	return nil
}

// Tree is an R*-tree over Items.
type Tree struct {
	cfg    Config
	dim    int
	root   *node
	size   int
	packed [][]Item // data pages after Pack; nil before
}

// New creates an empty R*-tree for dim-dimensional data.
func New(dim int, cfg Config) (*Tree, error) {
	if dim < 1 {
		return nil, fmt.Errorf("rstar: dimension %d < 1", dim)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:  cfg,
		dim:  dim,
		root: &node{leaf: true, page: -1},
	}, nil
}

// Size returns the number of indexed items.
func (t *Tree) Size() int { return t.size }

// Height returns the height of the tree (empty tree has height 1).
func (t *Tree) Height() int { return t.root.level + 1 }

func (t *Tree) maxEntries(n *node) int {
	if n.leaf {
		return t.cfg.MaxLeafEntries
	}
	return t.cfg.MaxBranchEntries
}

func (t *Tree) minEntries(n *node) int {
	m := int(t.cfg.MinFill * float64(t.maxEntries(n)))
	if m < 1 {
		m = 1
	}
	return m
}

// Insert adds an item using the R* insertion algorithm.
func (t *Tree) Insert(it Item) error {
	if it.MBR.Dim() != t.dim {
		return fmt.Errorf("rstar: item dimension %d, tree dimension %d", it.MBR.Dim(), t.dim)
	}
	if t.packed != nil {
		return fmt.Errorf("rstar: insert after Pack")
	}
	reinserted := make(map[int]bool) // levels that already reinserted this insertion
	t.insertEntry(entry{mbr: it.MBR.Clone(), item: it}, 0, reinserted)
	t.size++
	return nil
}

func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	n, path := t.chooseSubtree(e.mbr, level)
	n.entries = append(n.entries, e)
	t.adjustPath(path, e.mbr)
	if len(n.entries) > t.maxEntries(n) {
		t.overflowTreatment(n, path, reinserted)
	}
}

// chooseSubtree descends to the node at the given level following R*:
// minimum overlap enlargement when children are leaves, minimum area
// enlargement otherwise. It returns the target node and the path from root.
func (t *Tree) chooseSubtree(m geom.MBR, level int) (*node, []*node) {
	var path []*node
	n := t.root
	for n.level > level {
		path = append(path, n)
		childrenAreLeaves := n.level == level+1 && n.entries[0].child.leaf
		best := 0
		if childrenAreLeaves {
			best = t.pickMinOverlap(n, m)
		} else {
			best = t.pickMinAreaEnlargement(n, m)
		}
		n = n.entries[best].child
	}
	return n, path
}

func (t *Tree) pickMinAreaEnlargement(n *node, m geom.MBR) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		u := geom.Union(e.mbr, m)
		area := e.mbr.Area()
		enl := u.Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

func (t *Tree) pickMinOverlap(n *node, m geom.MBR) int {
	best := 0
	bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		u := geom.Union(e.mbr, m)
		var overlap float64
		for j, o := range n.entries {
			if j == i {
				continue
			}
			overlap += geom.Intersect(u, o.mbr).Area()
		}
		enl := u.Area() - e.mbr.Area()
		area := e.mbr.Area()
		if overlap < bestOverlap ||
			(overlap == bestOverlap && enl < bestEnl) ||
			(overlap == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, overlap, enl, area
		}
	}
	return best
}

// adjustPath refreshes the entry MBRs along the path bottom-up so every
// ancestor covers the newly inserted MBR.
func (t *Tree) adjustPath(path []*node, m geom.MBR) {
	for i := len(path) - 1; i >= 0; i-- {
		recomputeEntryMBRs(path[i])
	}
}

func recomputeEntryMBRs(n *node) {
	for j := range n.entries {
		if c := n.entries[j].child; c != nil {
			n.entries[j].mbr = nodeMBR(c)
		}
	}
}

func nodeMBR(n *node) geom.MBR {
	if len(n.entries) == 0 {
		return geom.MBR{}
	}
	m := n.entries[0].mbr.Clone()
	for _, e := range n.entries[1:] {
		m.ExtendMBR(e.mbr)
	}
	return m
}

func (t *Tree) overflowTreatment(n *node, path []*node, reinserted map[int]bool) {
	if n != t.root && !reinserted[n.level] && t.cfg.ReinsertFraction > 0 {
		reinserted[n.level] = true
		t.reinsert(n, path, reinserted)
		return
	}
	t.split(n, path, reinserted)
}

// reinsert removes the p entries farthest from the node center and
// re-inserts them (far reinsert), per the R* paper.
func (t *Tree) reinsert(n *node, path []*node, reinserted map[int]bool) {
	p := int(t.cfg.ReinsertFraction * float64(len(n.entries)))
	if p < 1 {
		p = 1
	}
	center := nodeMBR(n).Center()
	type distEntry struct {
		d float64
		e entry
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		des[i] = distEntry{d: geom.L2.Dist(e.mbr.Center(), center), e: e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d > des[j].d })
	removed := make([]entry, p)
	for i := 0; i < p; i++ {
		removed[i] = des[i].e
	}
	n.entries = n.entries[:0]
	for _, de := range des[p:] {
		n.entries = append(n.entries, de.e)
	}
	for i := range path {
		recomputeEntryMBRs(path[i])
	}
	// Reinsert closest-first (reverse of removal order).
	for i := p - 1; i >= 0; i-- {
		t.insertEntry(removed[i], n.level, reinserted)
	}
}

// split performs the R* topological split: choose the axis with minimum
// margin sum, then the distribution with minimum overlap (ties: minimum
// area).
func (t *Tree) split(n *node, path []*node, reinserted map[int]bool) {
	minFill := t.minEntries(n)
	left, right := rstarSplit(n.entries, t.dim, minFill)

	n.entries = left
	sibling := &node{leaf: n.leaf, level: n.level, page: -1, entries: right}

	if n == t.root {
		newRoot := &node{
			leaf:  false,
			level: n.level + 1,
			page:  -1,
			entries: []entry{
				{mbr: nodeMBR(n), child: n},
				{mbr: nodeMBR(sibling), child: sibling},
			},
		}
		t.root = newRoot
		return
	}
	parent := path[len(path)-1]
	recomputeEntryMBRs(parent)
	parent.entries = append(parent.entries, entry{mbr: nodeMBR(sibling), child: sibling})
	for i := range path {
		recomputeEntryMBRs(path[i])
	}
	if len(parent.entries) > t.maxEntries(parent) {
		t.overflowTreatment(parent, path[:len(path)-1], reinserted)
	}
}

// rstarSplit partitions entries into two groups using R* axis and
// distribution selection.
func rstarSplit(entries []entry, dim, minFill int) (left, right []entry) {
	n := len(entries)
	bestAxis, bestByLow := 0, false
	bestMargin := math.Inf(1)
	for axis := 0; axis < dim; axis++ {
		for _, byLow := range []bool{true, false} {
			sorted := sortedCopy(entries, axis, byLow)
			var marginSum float64
			for k := minFill; k <= n-minFill; k++ {
				g1 := entriesMBR(sorted[:k])
				g2 := entriesMBR(sorted[k:])
				marginSum += g1.Margin() + g2.Margin()
			}
			if marginSum < bestMargin {
				bestMargin, bestAxis, bestByLow = marginSum, axis, byLow
			}
		}
	}
	sorted := sortedCopy(entries, bestAxis, bestByLow)
	bestK := minFill
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := minFill; k <= n-minFill; k++ {
		g1 := entriesMBR(sorted[:k])
		g2 := entriesMBR(sorted[k:])
		overlap := geom.Intersect(g1, g2).Area()
		area := g1.Area() + g2.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}
	left = append([]entry(nil), sorted[:bestK]...)
	right = append([]entry(nil), sorted[bestK:]...)
	return left, right
}

func sortedCopy(entries []entry, axis int, byLow bool) []entry {
	out := append([]entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if byLow {
			if out[i].mbr.Min[axis] != out[j].mbr.Min[axis] {
				return out[i].mbr.Min[axis] < out[j].mbr.Min[axis]
			}
			return out[i].mbr.Max[axis] < out[j].mbr.Max[axis]
		}
		if out[i].mbr.Max[axis] != out[j].mbr.Max[axis] {
			return out[i].mbr.Max[axis] < out[j].mbr.Max[axis]
		}
		return out[i].mbr.Min[axis] < out[j].mbr.Min[axis]
	})
	return out
}

func entriesMBR(es []entry) geom.MBR {
	if len(es) == 0 {
		return geom.MBR{}
	}
	m := es[0].mbr.Clone()
	for _, e := range es[1:] {
		m.ExtendMBR(e.mbr)
	}
	return m
}

// BulkLoadSTR builds a tree over items using sort-tile-recursive packing.
// It is deterministic and produces near-full leaves, which the paper's
// contiguous page layout benefits from.
func BulkLoadSTR(dim int, cfg Config, items []Item) (*Tree, error) {
	t, err := New(dim, cfg)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	for _, it := range items {
		if it.MBR.Dim() != dim {
			return nil, fmt.Errorf("rstar: item dimension %d, tree dimension %d", it.MBR.Dim(), dim)
		}
	}
	leafEntries := make([]entry, len(items))
	for i, it := range items {
		leafEntries[i] = entry{mbr: it.MBR.Clone(), item: it}
	}
	leaves := strPack(leafEntries, dim, t.cfg.MaxLeafEntries, true, 0)
	level := 0
	nodes := leaves
	for len(nodes) > 1 {
		level++
		parentEntries := make([]entry, len(nodes))
		for i, c := range nodes {
			parentEntries[i] = entry{mbr: nodeMBR(c), child: c}
		}
		nodes = strPack(parentEntries, dim, t.cfg.MaxBranchEntries, false, level)
	}
	t.root = nodes[0]
	t.size = len(items)
	return t, nil
}

// strPack tiles entries into nodes of capacity cap using STR: sort by the
// first dimension, cut into slabs, sort each slab by the next dimension, and
// so on, finally chunking into nodes.
func strPack(entries []entry, dim, capacity int, leaf bool, level int) []*node {
	numNodes := (len(entries) + capacity - 1) / capacity
	groups := [][]entry{entries}
	for axis := 0; axis < dim-1 && numNodes > 1; axis++ {
		slabsPerGroup := int(math.Ceil(math.Pow(float64(numNodes), 1/float64(dim-axis))))
		var next [][]entry
		for _, g := range groups {
			sortByCenter(g, axis)
			slabSize := (len(g) + slabsPerGroup - 1) / slabsPerGroup
			if slabSize < capacity {
				slabSize = capacity
			}
			for i := 0; i < len(g); i += slabSize {
				end := i + slabSize
				if end > len(g) {
					end = len(g)
				}
				next = append(next, g[i:end])
			}
		}
		groups = next
	}
	var out []*node
	for _, g := range groups {
		sortByCenter(g, dim-1)
		for i := 0; i < len(g); i += capacity {
			end := i + capacity
			if end > len(g) {
				end = len(g)
			}
			out = append(out, &node{
				leaf:    leaf,
				level:   level,
				page:    -1,
				entries: append([]entry(nil), g[i:end]...),
			})
		}
	}
	return out
}

func sortByCenter(es []entry, axis int) {
	sort.SliceStable(es, func(i, j int) bool {
		ci := (es[i].mbr.Min[axis] + es[i].mbr.Max[axis]) / 2
		cj := (es[j].mbr.Min[axis] + es[j].mbr.Max[axis]) / 2
		return ci < cj
	})
}

// Pack finalizes the tree for joining: leaves are numbered left to right and
// each leaf's items become one data page, so leaf contents are contiguous on
// disk (§5.1). It returns the page contents in page order.
func (t *Tree) Pack() [][]Item {
	if t.packed != nil {
		return t.packed
	}
	pages := [][]Item{}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.entries) == 0 {
				return // empty tree: the root leaf holds no page
			}
			n.page = len(pages)
			items := make([]Item, len(n.entries))
			for i, e := range n.entries {
				items[i] = e.item
			}
			pages = append(pages, items)
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	t.packed = pages
	return pages
}

// NumPages returns the number of data pages (after Pack).
func (t *Tree) NumPages() int { return len(t.packed) }

// Root exposes the MBR hierarchy for prediction-matrix construction. Pack
// must have been called; leaves carry their page numbers.
func (t *Tree) Root() *index.Node {
	if t.packed == nil {
		t.Pack()
	}
	var conv func(n *node) *index.Node
	conv = func(n *node) *index.Node {
		out := &index.Node{MBR: nodeMBR(n), Page: -1}
		if n.leaf {
			out.Page = n.page
			return out
		}
		out.Children = make([]*index.Node, len(n.entries))
		for i, e := range n.entries {
			out.Children[i] = conv(e.child)
		}
		return out
	}
	return conv(t.root)
}

// RangeSearch returns the IDs of all items whose MBR intersects q.
// It is used by tests as ground truth for the structural invariants.
func (t *Tree) RangeSearch(q geom.MBR) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.mbr.Intersects(q) {
				continue
			}
			if n.leaf {
				out = append(out, e.item.ID)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// Validate checks the R*-tree structural invariants: MBR containment,
// uniform leaf level, and entry counts within capacity.
func (t *Tree) Validate() error {
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		if len(n.entries) > t.maxEntries(n) {
			return fmt.Errorf("rstar: node with %d entries exceeds capacity %d", len(n.entries), t.maxEntries(n))
		}
		if !isRoot && len(n.entries) < 1 {
			return fmt.Errorf("rstar: empty non-root node")
		}
		for _, e := range n.entries {
			if n.leaf {
				if e.child != nil {
					return fmt.Errorf("rstar: leaf entry with child")
				}
				continue
			}
			if e.child == nil {
				return fmt.Errorf("rstar: internal entry without child")
			}
			if e.child.level != n.level-1 {
				return fmt.Errorf("rstar: child level %d under node level %d", e.child.level, n.level)
			}
			got := nodeMBR(e.child)
			if !e.mbr.ContainsMBR(got) {
				return fmt.Errorf("rstar: entry MBR %v does not contain child MBR %v", e.mbr, got)
			}
			if err := walk(e.child, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, true)
}
