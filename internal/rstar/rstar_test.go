package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"pmjoin/internal/geom"
)

func randItems(rng *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		items[i] = PointItem(i, v)
	}
	return items
}

func insertAll(t *testing.T, tr *Tree, items []Item) {
	t.Helper()
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, DefaultConfig(8)); err == nil {
		t.Fatal("dim 0 accepted")
	}
	bad := DefaultConfig(8)
	bad.MaxLeafEntries = 1
	if _, err := New(2, bad); err == nil {
		t.Fatal("leaf capacity 1 accepted")
	}
	bad = DefaultConfig(8)
	bad.MinFill = 0.9
	if _, err := New(2, bad); err == nil {
		t.Fatal("min fill 0.9 accepted")
	}
	bad = DefaultConfig(8)
	bad.ReinsertFraction = 0.9
	if _, err := New(2, bad); err == nil {
		t.Fatal("reinsert fraction 0.9 accepted")
	}
	bad = DefaultConfig(8)
	bad.MaxBranchEntries = 1
	if _, err := New(2, bad); err == nil {
		t.Fatal("branch capacity 1 accepted")
	}
}

func TestInsertRejectsWrongDimension(t *testing.T) {
	tr, _ := New(2, DefaultConfig(8))
	if err := tr.Insert(PointItem(0, geom.Vector{1})); err == nil {
		t.Fatal("wrong dimension accepted")
	}
}

func TestInsertMaintainsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, _ := New(2, DefaultConfig(8))
	items := randItems(rng, 500, 2)
	insertAll(t, tr, items)
	if tr.Size() != 500 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected >= 3 for 500 items at fanout 8", tr.Height())
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, 400, 3)
	tr, _ := New(3, DefaultConfig(10))
	insertAll(t, tr, items)
	for iter := 0; iter < 50; iter++ {
		lo := make(geom.Vector, 3)
		hi := make(geom.Vector, 3)
		for d := 0; d < 3; d++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		q := geom.MBR{Min: lo, Max: hi}
		got := tr.RangeSearch(q)
		sort.Ints(got)
		var want []int
		for _, it := range items {
			if q.Contains(it.MBR.Min) {
				want = append(want, it.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: result mismatch at %d", iter, i)
			}
		}
	}
}

func TestBulkLoadSTRInvariantsAndSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 1000, 2)
	tr, err := BulkLoadSTR(2, DefaultConfig(16), items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1000 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	q := geom.MBR{Min: geom.Vector{0.2, 0.2}, Max: geom.Vector{0.4, 0.4}}
	got := tr.RangeSearch(q)
	var want int
	for _, it := range items {
		if q.Contains(it.MBR.Min) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("STR search: got %d, want %d", len(got), want)
	}
}

func TestBulkLoadSTRRejectsWrongDim(t *testing.T) {
	items := []Item{PointItem(0, geom.Vector{1})}
	if _, err := BulkLoadSTR(2, DefaultConfig(4), items); err == nil {
		t.Fatal("wrong dim accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoadSTR(2, DefaultConfig(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Fatal("empty size")
	}
	if pages := tr.Pack(); len(pages) != 0 {
		t.Fatalf("pages = %d", len(pages))
	}
}

func TestPackCoversAllItemsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 300, 2)
	tr, _ := BulkLoadSTR(2, DefaultConfig(8), items)
	pages := tr.Pack()
	seen := make(map[int]bool)
	for _, pg := range pages {
		if len(pg) == 0 {
			t.Fatal("empty page")
		}
		if len(pg) > 8 {
			t.Fatalf("page with %d items exceeds capacity", len(pg))
		}
		for _, it := range pg {
			if seen[it.ID] {
				t.Fatalf("item %d packed twice", it.ID)
			}
			seen[it.ID] = true
		}
	}
	if len(seen) != 300 {
		t.Fatalf("packed %d of 300 items", len(seen))
	}
	if tr.NumPages() != len(pages) {
		t.Fatal("NumPages mismatch")
	}
	// Pack must be idempotent.
	again := tr.Pack()
	if len(again) != len(pages) {
		t.Fatal("second Pack differs")
	}
}

func TestInsertAfterPackFails(t *testing.T) {
	tr, _ := New(2, DefaultConfig(4))
	insertAll(t, tr, randItems(rand.New(rand.NewSource(5)), 10, 2))
	tr.Pack()
	if err := tr.Insert(PointItem(99, geom.Vector{0, 0})); err == nil {
		t.Fatal("insert after Pack accepted")
	}
}

func TestRootHierarchyMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, build := range []string{"insert", "str"} {
		items := randItems(rng, 250, 2)
		var tr *Tree
		var err error
		if build == "insert" {
			tr, err = New(2, DefaultConfig(8))
			if err == nil {
				for _, it := range items {
					if err = tr.Insert(it); err != nil {
						break
					}
				}
			}
		} else {
			tr, err = BulkLoadSTR(2, DefaultConfig(8), items)
		}
		if err != nil {
			t.Fatal(err)
		}
		pages := tr.Pack()
		root := tr.Root()
		if err := root.Validate(); err != nil {
			t.Fatalf("%s: %v", build, err)
		}
		leaves := root.Leaves(nil)
		if len(leaves) != len(pages) {
			t.Fatalf("%s: %d leaves for %d pages", build, len(leaves), len(pages))
		}
		for i, l := range leaves {
			if l.Page != i {
				t.Fatalf("%s: leaf %d has page %d (must be left-to-right order)", build, i, l.Page)
			}
			// The leaf MBR must cover every item of its page.
			for _, it := range pages[l.Page] {
				if !l.MBR.ContainsMBR(it.MBR) {
					t.Fatalf("%s: leaf %d does not cover item %d", build, i, it.ID)
				}
			}
		}
	}
}

func TestSpatialObjectsWithExtent(t *testing.T) {
	// Rectangles, not just points.
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, 200)
	for i := range items {
		lo := geom.Vector{rng.Float64(), rng.Float64()}
		m := geom.NewMBR(lo)
		m.ExtendPoint(geom.Vector{lo[0] + rng.Float64()*0.1, lo[1] + rng.Float64()*0.1})
		items[i] = Item{ID: i, MBR: m}
	}
	tr, _ := New(2, DefaultConfig(8))
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	q := geom.MBR{Min: geom.Vector{0.4, 0.4}, Max: geom.Vector{0.6, 0.6}}
	got := tr.RangeSearch(q)
	var want int
	for _, it := range items {
		if q.Intersects(it.MBR) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("rect search: got %d, want %d", len(got), want)
	}
}

func TestDuplicatePointsSurvive(t *testing.T) {
	tr, _ := New(2, DefaultConfig(4))
	for i := 0; i < 50; i++ {
		if err := tr.Insert(PointItem(i, geom.Vector{0.5, 0.5})); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	q := geom.NewMBR(geom.Vector{0.5, 0.5})
	if got := tr.RangeSearch(q); len(got) != 50 {
		t.Fatalf("got %d of 50 duplicates", len(got))
	}
}

func TestClusteredInsertInvariants(t *testing.T) {
	// Highly clustered data exercises forced reinsertion and splits.
	rng := rand.New(rand.NewSource(8))
	tr, _ := New(2, DefaultConfig(6))
	id := 0
	for c := 0; c < 10; c++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 60; i++ {
			v := geom.Vector{cx + rng.NormFloat64()*0.001, cy + rng.NormFloat64()*0.001}
			if err := tr.Insert(PointItem(id, v)); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 600 {
		t.Fatalf("size = %d", tr.Size())
	}
	all := tr.RangeSearch(geom.MBR{Min: geom.Vector{-1, -1}, Max: geom.Vector{2, 2}})
	if len(all) != 600 {
		t.Fatalf("full-range search found %d of 600", len(all))
	}
}

func TestHighDimensionalBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := randItems(rng, 300, 60)
	tr, err := BulkLoadSTR(60, DefaultConfig(8), items)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Root().Leaves(nil)); got != tr.NumPages() {
		t.Fatalf("leaves %d != pages %d", got, tr.NumPages())
	}
}
