package rstar

import (
	"container/heap"
	"math"

	"pmjoin/internal/geom"
)

// Neighbor is one k-NN result: an item and its distance to the query.
type Neighbor struct {
	Item Item
	Dist float64
}

// nnEntry is a priority-queue element of the branch-and-bound search: either
// an internal node (child != nil) or a leaf item, keyed by its MinDist to
// the query.
type nnEntry struct {
	dist  float64
	child *node
	item  Item
	leaf  bool
}

type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// NearestNeighbors returns the k items closest to q under the norm, in
// ascending distance order, using the best-first branch-and-bound traversal
// of Hjaltason & Samet (the incremental NN algorithm cited in §2.2).
func (t *Tree) NearestNeighbors(q geom.Vector, k int, norm geom.Norm) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &nnQueue{}
	heap.Init(pq)
	push := func(n *node) {
		for _, e := range n.entries {
			if n.leaf {
				heap.Push(pq, nnEntry{dist: norm.MinDistPoint(q, e.mbr), item: e.item, leaf: true})
			} else {
				heap.Push(pq, nnEntry{dist: norm.MinDistPoint(q, e.mbr), child: e.child})
			}
		}
	}
	push(t.root)
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(nnEntry)
		if e.leaf {
			out = append(out, Neighbor{Item: e.item, Dist: e.dist})
			continue
		}
		push(e.child)
	}
	return out
}

// DistanceRange returns the IDs of all items whose MBR is within eps of q
// under the norm (a distance range query; for point items this is the
// within-eps neighborhood).
func (t *Tree) DistanceRange(q geom.Vector, eps float64, norm geom.Norm) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if norm.MinDistPoint(q, e.mbr) > eps {
				continue
			}
			if n.leaf {
				out = append(out, e.item.ID)
			} else {
				walk(e.child)
			}
		}
	}
	if t.size > 0 {
		walk(t.root)
	}
	return out
}

// MaxDepthSpread reports the minimum and maximum leaf depths (equal in a
// valid R-tree); exported for balance checks in tests.
func (t *Tree) MaxDepthSpread() (minDepth, maxDepth int) {
	minDepth, maxDepth = math.MaxInt, 0
	var walk func(n *node, d int)
	walk = func(n *node, d int) {
		if n.leaf {
			if d < minDepth {
				minDepth = d
			}
			if d > maxDepth {
				maxDepth = d
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child, d+1)
		}
	}
	walk(t.root, 1)
	if minDepth == math.MaxInt {
		minDepth = 1
	}
	return minDepth, maxDepth
}
