package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"pmjoin/internal/geom"
)

func TestDeleteRemovesAndPreservesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randItems(rng, 400, 2)
	tr, _ := New(2, DefaultConfig(8))
	insertAll(t, tr, items)

	// Delete half the items in random order.
	perm := rng.Perm(len(items))
	for _, idx := range perm[:200] {
		found, err := tr.Delete(items[idx].ID, items[idx].MBR)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("item %d not found", items[idx].ID)
		}
	}
	if tr.Size() != 200 {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Balance must hold after condensation.
	lo, hi := tr.MaxDepthSpread()
	if lo != hi {
		t.Fatalf("unbalanced: depths %d..%d", lo, hi)
	}
	// Remaining items are exactly the undeleted ones.
	all := geom.MBR{Min: geom.Vector{-1, -1}, Max: geom.Vector{2, 2}}
	got := tr.RangeSearch(all)
	sort.Ints(got)
	var want []int
	for _, idx := range perm[200:] {
		want = append(want, items[idx].ID)
	}
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivor mismatch at %d", i)
		}
	}
}

func TestDeleteMissingItem(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, _ := New(2, DefaultConfig(4))
	insertAll(t, tr, randItems(rng, 20, 2))
	found, err := tr.Delete(999, geom.NewMBR(geom.Vector{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("phantom delete")
	}
	if tr.Size() != 20 {
		t.Fatal("size changed")
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 100, 2)
	tr, _ := New(2, DefaultConfig(4))
	insertAll(t, tr, items)
	for _, it := range items {
		if ok, err := tr.Delete(it.ID, it.MBR); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", it.ID, ok, err)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
	insertAll(t, tr, items)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeSearch(geom.MBR{Min: geom.Vector{0, 0}, Max: geom.Vector{1, 1}}); len(got) != 100 {
		t.Fatalf("after reinsert: %d items", len(got))
	}
}

func TestDeleteAfterPackFails(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, 20, 2)
	tr, _ := New(2, DefaultConfig(4))
	insertAll(t, tr, items)
	tr.Pack()
	if _, err := tr.Delete(items[0].ID, items[0].MBR); err == nil {
		t.Fatal("delete after pack accepted")
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, _ := New(3, DefaultConfig(6))
	live := map[int]Item{}
	nextID := 0
	for step := 0; step < 2000; step++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			v := make(geom.Vector, 3)
			for d := range v {
				v[d] = rng.Float64()
			}
			it := PointItem(nextID, v)
			nextID++
			if err := tr.Insert(it); err != nil {
				t.Fatal(err)
			}
			live[it.ID] = it
		} else {
			var victim Item
			for _, it := range live {
				victim = it
				break
			}
			ok, err := tr.Delete(victim.ID, victim.MBR)
			if err != nil || !ok {
				t.Fatalf("delete %d: %v %v", victim.ID, ok, err)
			}
			delete(live, victim.ID)
		}
		if step%250 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Size() != len(live) {
		t.Fatalf("size %d, live %d", tr.Size(), len(live))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 500, 2)
	tr, _ := BulkLoadSTR(2, DefaultConfig(8), items)
	for iter := 0; iter < 40; iter++ {
		q := geom.Vector{rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(10)
		got := tr.NearestNeighbors(q, k, geom.L2)
		if len(got) != k {
			t.Fatalf("got %d of %d neighbors", len(got), k)
		}
		// Brute force.
		type dn struct {
			id int
			d  float64
		}
		var all []dn
		for _, it := range items {
			all = append(all, dn{id: it.ID, d: geom.L2.Dist(q, it.MBR.Min)})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			if diff := got[i].Dist - all[i].d; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("iter %d: neighbor %d dist %g, want %g", iter, i, got[i].Dist, all[i].d)
			}
		}
		// Ascending order.
		for i := 1; i < k; i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbors not sorted")
			}
		}
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr, _ := New(2, DefaultConfig(4))
	if got := tr.NearestNeighbors(geom.Vector{0, 0}, 3, geom.L2); got != nil {
		t.Fatal("empty tree")
	}
	tr.Insert(PointItem(0, geom.Vector{1, 1}))
	if got := tr.NearestNeighbors(geom.Vector{0, 0}, 0, geom.L2); got != nil {
		t.Fatal("k=0")
	}
	got := tr.NearestNeighbors(geom.Vector{0, 0}, 5, geom.L2)
	if len(got) != 1 || got[0].Item.ID != 0 {
		t.Fatalf("k>size: %v", got)
	}
}

func TestDistanceRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 400, 2)
	tr, _ := BulkLoadSTR(2, DefaultConfig(8), items)
	for iter := 0; iter < 30; iter++ {
		q := geom.Vector{rng.Float64(), rng.Float64()}
		eps := 0.02 + rng.Float64()*0.1
		got := tr.DistanceRange(q, eps, geom.L2)
		sort.Ints(got)
		var want []int
		for _, it := range items {
			if geom.L2.Dist(q, it.MBR.Min) <= eps {
				want = append(want, it.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d results, want %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("range result mismatch")
			}
		}
	}
}
