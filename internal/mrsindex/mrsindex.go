// Package mrsindex implements the MRS-index of Kahveci & Singh (VLDB 2001)
// in the form the paper's join needs: a hierarchy of MBRs over the frequency
// vectors of a string's sliding windows, with leaf MBRs covering the windows
// of one disk page (contiguous on disk), and the frequency distance as the
// lower-bounding predictor for edit distance (Table 1).
package mrsindex

import (
	"fmt"
	"math"

	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/seqdist"
)

// Config controls the layout of an MRS-index.
type Config struct {
	// Window is the subsequence length w of the subsequence join.
	Window int
	// Stride is the distance between consecutive window starts.
	Stride int
	// PageBytes is the number of sequence bytes one disk page holds.
	PageBytes int
	// Fanout is the number of children per internal node (default 16).
	Fanout int
	// BoxWindows is the number of consecutive windows covered by one leaf
	// MBR (default 1). The MRS-index is multi-resolution: leaf boxes can be
	// finer than a page — several leaves then share one data page — which
	// keeps the frequency boxes tight enough to prune when windows are
	// sampled with a large stride.
	BoxWindows int
}

func (c *Config) defaults() error {
	if c.Window < 1 {
		return fmt.Errorf("mrsindex: window %d < 1", c.Window)
	}
	if c.Stride < 1 {
		return fmt.Errorf("mrsindex: stride %d < 1", c.Stride)
	}
	if c.PageBytes < c.Window {
		return fmt.Errorf("mrsindex: page of %d bytes cannot hold a window of %d", c.PageBytes, c.Window)
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.Fanout < 2 {
		return fmt.Errorf("mrsindex: fanout %d < 2", c.Fanout)
	}
	if c.BoxWindows == 0 {
		c.BoxWindows = 1
	}
	if c.BoxWindows < 1 {
		return fmt.Errorf("mrsindex: box windows %d < 1", c.BoxWindows)
	}
	return nil
}

// WindowsPerPage returns how many windows one page covers.
func (c Config) WindowsPerPage() int {
	n := (c.PageBytes-c.Window)/c.Stride + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Index is the built MRS-index over one sequence.
type Index struct {
	cfg      Config
	alphabet *seqdist.Alphabet
	seq      []byte
	starts   []int
	freqs    [][]int
	root     *index.Node
	pages    int
}

// Build constructs the MRS-index over seq using the given alphabet.
func Build(seq []byte, alphabet *seqdist.Alphabet, cfg Config) (*Index, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(seq) < cfg.Window {
		return nil, fmt.Errorf("mrsindex: sequence of %d bytes shorter than window %d", len(seq), cfg.Window)
	}
	ix := &Index{cfg: cfg, alphabet: alphabet, seq: seq}
	for st := 0; st+cfg.Window <= len(seq); st += cfg.Stride {
		ix.starts = append(ix.starts, st)
	}
	// Frequency vectors by sliding where stride allows, else fresh counts.
	ix.freqs = make([][]int, len(ix.starts))
	for i, st := range ix.starts {
		if i > 0 && cfg.Stride == 1 {
			f := append([]int(nil), ix.freqs[i-1]...)
			alphabet.SlideFreq(f, seq[st-1], seq[st+cfg.Window-1])
			ix.freqs[i] = f
		} else {
			ix.freqs[i] = alphabet.FreqVector(seq[st : st+cfg.Window])
		}
	}

	perPage := cfg.WindowsPerPage()
	ix.pages = (len(ix.starts) + perPage - 1) / perPage
	dim := alphabet.Size()
	// Leaf boxes cover BoxWindows consecutive windows each, never crossing a
	// page boundary, and carry the page that stores their windows.
	var leaves []*index.Node
	for pageLo := 0; pageLo < len(ix.starts); pageLo += perPage {
		pageHi := pageLo + perPage
		if pageHi > len(ix.starts) {
			pageHi = len(ix.starts)
		}
		page := pageLo / perPage
		for lo := pageLo; lo < pageHi; lo += cfg.BoxWindows {
			hi := lo + cfg.BoxWindows
			if hi > pageHi {
				hi = pageHi
			}
			mbr := geom.EmptyMBR(dim)
			for i := lo; i < hi; i++ {
				mbr.ExtendPoint(freqToVec(ix.freqs[i]))
			}
			leaves = append(leaves, &index.Node{MBR: mbr, Page: page})
		}
	}
	ix.root = buildHierarchy(leaves, cfg.Fanout)
	return ix, nil
}

func freqToVec(f []int) geom.Vector {
	v := make(geom.Vector, len(f))
	for i, x := range f {
		v[i] = float64(x)
	}
	return v
}

func buildHierarchy(nodes []*index.Node, fanout int) *index.Node {
	for len(nodes) > 1 {
		var parents []*index.Node
		for lo := 0; lo < len(nodes); lo += fanout {
			hi := lo + fanout
			if hi > len(nodes) {
				hi = len(nodes)
			}
			mbr := nodes[lo].MBR.Clone()
			for i := lo + 1; i < hi; i++ {
				mbr.ExtendMBR(nodes[i].MBR)
			}
			parents = append(parents, &index.Node{
				MBR:      mbr,
				Page:     -1,
				Children: append([]*index.Node(nil), nodes[lo:hi]...),
			})
		}
		nodes = parents
	}
	if len(nodes) == 0 {
		return &index.Node{Page: -1}
	}
	return nodes[0]
}

// Root implements index.Tree.
func (ix *Index) Root() *index.Node { return ix.root }

// NumPages implements index.Tree.
func (ix *Index) NumPages() int { return ix.pages }

// NumWindows returns the number of indexed windows.
func (ix *Index) NumWindows() int { return len(ix.starts) }

// Config returns the layout parameters.
func (ix *Index) Config() Config { return ix.cfg }

// PageWindows returns, for page p, the window ids, start offsets, raw
// windows (aliasing the sequence), and frequency vectors.
func (ix *Index) PageWindows(p int) (ids []int, starts []int, windows [][]byte, freqs [][]int) {
	perPage := ix.cfg.WindowsPerPage()
	lo := p * perPage
	hi := lo + perPage
	if hi > len(ix.starts) {
		hi = len(ix.starts)
	}
	for i := lo; i < hi; i++ {
		ids = append(ids, i)
		starts = append(starts, ix.starts[i])
		windows = append(windows, ix.seq[ix.starts[i]:ix.starts[i]+ix.cfg.Window])
		freqs = append(freqs, ix.freqs[i])
	}
	return ids, starts, windows, freqs
}

// Freq returns the frequency vector of window i (for tests).
func (ix *Index) Freq(i int) []int { return ix.freqs[i] }

// Predictor is the frequency-distance lower-bounding predictor between MBRs
// in frequency space. It satisfies predmat.Predictor and dominates the
// L∞ box gap, which the plane sweep's ε/2 extension requires.
type Predictor struct{}

// LowerBound returns FreqDistanceMBR over the integer hulls of a and b.
func (Predictor) LowerBound(a, b geom.MBR) float64 {
	if a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	dim := a.Dim()
	uMin := make([]int, dim)
	uMax := make([]int, dim)
	vMin := make([]int, dim)
	vMax := make([]int, dim)
	for i := 0; i < dim; i++ {
		uMin[i] = int(math.Ceil(a.Min[i]))
		uMax[i] = int(math.Floor(a.Max[i]))
		vMin[i] = int(math.Ceil(b.Min[i]))
		vMax[i] = int(math.Floor(b.Max[i]))
	}
	return float64(seqdist.FreqDistanceMBR(uMin, uMax, vMin, vMax))
}
