package mrsindex

import (
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
	"pmjoin/internal/seqdist"
)

func randDNA(rng *rand.Rand, n int) []byte {
	bases := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	s := randDNA(rand.New(rand.NewSource(1)), 200)
	cases := []Config{
		{Window: 0, Stride: 1, PageBytes: 64},
		{Window: 8, Stride: 0, PageBytes: 64},
		{Window: 80, Stride: 1, PageBytes: 64},
		{Window: 8, Stride: 1, PageBytes: 64, Fanout: 1},
		{Window: 8, Stride: 1, PageBytes: 64, BoxWindows: -2},
	}
	for i, cfg := range cases {
		if _, err := Build(s, seqdist.DNA, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Build(s[:4], seqdist.DNA, Config{Window: 8, Stride: 1, PageBytes: 64}); err == nil {
		t.Error("short sequence accepted")
	}
}

func TestFrequencyVectorsMatchRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randDNA(rng, 500)
	for _, stride := range []int{1, 3, 16} {
		ix, err := Build(s, seqdist.DNA, Config{Window: 24, Stride: stride, PageBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ix.NumWindows(); i++ {
			st := i * stride
			want := seqdist.DNA.FreqVector(s[st : st+24])
			got := ix.Freq(i)
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("stride %d window %d: freq %v != %v", stride, i, got, want)
				}
			}
		}
	}
}

func TestPageWindowsCoverAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randDNA(rng, 2000)
	cfg := Config{Window: 32, Stride: 8, PageBytes: 256}
	ix, err := Build(s, seqdist.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for p := 0; p < ix.NumPages(); p++ {
		ids, starts, windows, freqs := ix.PageWindows(p)
		if len(ids) != len(starts) || len(ids) != len(windows) || len(ids) != len(freqs) {
			t.Fatal("parallel slice length mismatch")
		}
		for k, id := range ids {
			if id != next {
				t.Fatalf("id %d, want %d", id, next)
			}
			if string(windows[k]) != string(s[starts[k]:starts[k]+32]) {
				t.Fatal("window content mismatch")
			}
			next++
		}
	}
	if next != ix.NumWindows() {
		t.Fatalf("covered %d of %d", next, ix.NumWindows())
	}
}

func TestHierarchyCoversFreqVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randDNA(rng, 3000)
	ix, err := Build(s, seqdist.DNA, Config{Window: 50, Stride: 10, PageBytes: 512, Fanout: 4, BoxWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := ix.Root()
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := root.Leaves(nil)
	byPage := map[int][]geom.MBR{}
	for _, l := range leaves {
		if l.Page < 0 || l.Page >= ix.NumPages() {
			t.Fatalf("leaf page %d out of range", l.Page)
		}
		byPage[l.Page] = append(byPage[l.Page], l.MBR)
	}
	if len(byPage) != ix.NumPages() {
		t.Fatalf("leaves cover %d of %d pages", len(byPage), ix.NumPages())
	}
	for p := 0; p < ix.NumPages(); p++ {
		ids, _, _, freqs := ix.PageWindows(p)
		for k := range ids {
			v := make(geom.Vector, len(freqs[k]))
			for d, x := range freqs[k] {
				v[d] = float64(x)
			}
			ok := false
			for _, m := range byPage[p] {
				if m.Contains(v) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("window %d freq not covered by page %d boxes", ids[k], p)
			}
		}
	}
}

// TestPredictorLowerBoundsEditDistance: the full chain — box FD lower-bounds
// window FD which lower-bounds edit distance — for windows drawn from the
// built index.
func TestPredictorLowerBoundsEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randDNA(rng, 2000)
	ix, err := Build(s, seqdist.DNA, Config{Window: 40, Stride: 8, PageBytes: 256, BoxWindows: 3})
	if err != nil {
		t.Fatal(err)
	}
	leaves := ix.Root().Leaves(nil)
	pred := Predictor{}
	for iter := 0; iter < 300; iter++ {
		la := leaves[rng.Intn(len(leaves))]
		lb := leaves[rng.Intn(len(leaves))]
		bound := pred.LowerBound(la.MBR, lb.MBR)
		// Pick one window from each leaf's page and check the chain.
		idsA, _, winsA, _ := ix.PageWindows(la.Page)
		idsB, _, winsB, _ := ix.PageWindows(lb.Page)
		// Only windows actually covered by the leaf box qualify.
		for k := range idsA {
			va := toVec(ix.Freq(idsA[k]))
			if !la.MBR.Contains(va) {
				continue
			}
			for m := range idsB {
				vb := toVec(ix.Freq(idsB[m]))
				if !lb.MBR.Contains(vb) {
					continue
				}
				ed := seqdist.EditDistance(winsA[k], winsB[m])
				if bound > float64(ed) {
					t.Fatalf("box bound %g > edit distance %d", bound, ed)
				}
			}
			break // one pair per iteration keeps the test fast
		}
	}
}

func toVec(f []int) geom.Vector {
	v := make(geom.Vector, len(f))
	for i, x := range f {
		v[i] = float64(x)
	}
	return v
}

func TestPredictorEmptyBoxes(t *testing.T) {
	p := Predictor{}
	if got := p.LowerBound(geom.EmptyMBR(4), geom.NewMBR(geom.Vector{1, 2, 3, 4})); got < 1e300 {
		t.Fatalf("empty box bound = %g, want +Inf", got)
	}
}

func TestCustomAlphabet(t *testing.T) {
	alpha, err := seqdist.NewAlphabet("01")
	if err != nil {
		t.Fatal(err)
	}
	s := []byte("0101010101110000101010101111000010101010")
	ix, err := Build(s, alpha, Config{Window: 8, Stride: 2, PageBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumWindows() == 0 || ix.NumPages() == 0 {
		t.Fatal("empty index")
	}
	if got := len(ix.Freq(0)); got != 2 {
		t.Fatalf("freq dims = %d", got)
	}
}

func TestWindowsPerPage(t *testing.T) {
	cfg := Config{Window: 100, Stride: 25, PageBytes: 500}
	// (n-1)*25 + 100 <= 500 -> n = 17.
	if got := cfg.WindowsPerPage(); got != 17 {
		t.Fatalf("windows per page = %d", got)
	}
}
