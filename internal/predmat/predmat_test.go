package predmat

import (
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/rstar"
)

func TestMatrixMarkAndQuery(t *testing.T) {
	m := NewMatrix(4, 5)
	if m.Rows() != 4 || m.Cols() != 5 || m.Marked() != 0 {
		t.Fatal("dimensions")
	}
	m.Mark(1, 3)
	m.Mark(1, 0)
	m.Mark(2, 3)
	m.Mark(1, 3) // duplicate: no-op
	if m.Marked() != 3 {
		t.Fatalf("marked = %d", m.Marked())
	}
	if !m.IsMarked(1, 3) || m.IsMarked(0, 0) {
		t.Fatal("IsMarked")
	}
	if got := m.RowCols(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("RowCols = %v", got)
	}
	if got := m.ColRows(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ColRows = %v", got)
	}
	if got := m.MarkedRows(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("MarkedRows = %v", got)
	}
	if got := m.MarkedCols(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("MarkedCols = %v", got)
	}
	entries := m.Entries()
	if len(entries) != 3 || entries[0] != (Entry{R: 1, C: 0}) {
		t.Fatalf("Entries = %v", entries)
	}
	if d := m.Density(); d != 3.0/20 {
		t.Fatalf("density = %g", d)
	}
}

func TestMatrixMarkOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).Mark(2, 0)
}

func TestFullMatrix(t *testing.T) {
	m := Full(3, 4)
	if m.Marked() != 12 || m.Density() != 1 {
		t.Fatal("full matrix")
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if !m.IsMarked(r, c) {
				t.Fatalf("(%d,%d) unmarked", r, c)
			}
		}
	}
	if len(m.RowCols(2)) != 4 || len(m.ColRows(3)) != 3 {
		t.Fatal("full adjacency")
	}
}

func TestEmptyMatrixDensity(t *testing.T) {
	if NewMatrix(0, 0).Density() != 0 {
		t.Fatal("0x0 density")
	}
}

// buildTrees indexes two random point sets and returns the trees plus the
// raw points keyed by page.
func buildTrees(t *testing.T, rng *rand.Rand, nA, nB, dim, leafCap int) (ta, tb *rstar.Tree, pa, pb [][]geom.Vector) {
	t.Helper()
	mk := func(n int) (*rstar.Tree, [][]geom.Vector) {
		items := make([]rstar.Item, n)
		for i := range items {
			v := make(geom.Vector, dim)
			for d := range v {
				v[d] = rng.Float64()
			}
			items[i] = rstar.PointItem(i, v)
		}
		tr, err := rstar.BulkLoadSTR(dim, rstar.DefaultConfig(leafCap), items)
		if err != nil {
			t.Fatal(err)
		}
		pages := tr.Pack()
		out := make([][]geom.Vector, len(pages))
		for p, pg := range pages {
			for _, it := range pg {
				out[p] = append(out[p], it.MBR.Min)
			}
		}
		return tr, out
	}
	ta, pa = mk(nA)
	tb, pb = mk(nB)
	return ta, tb, pa, pb
}

// TestCompleteness is Theorem 1: every object pair within eps lives in a
// marked page pair, across epsilons, dimensions, and filter depths.
func TestCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 4} {
		for _, depth := range []int{0, 1, 5} {
			ta, tb, pa, pb := buildTrees(t, rng, 300, 250, dim, 8)
			eps := 0.1
			pred := NormPredictor{Norm: geom.L2}
			m, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), eps, pred,
				BuildOptions{FilterDepth: depth})
			if err != nil {
				t.Fatal(err)
			}
			for ra, pageA := range pa {
				for _, va := range pageA {
					for rb, pageB := range pb {
						for _, vb := range pageB {
							if geom.L2.Dist(va, vb) <= eps && !m.IsMarked(ra, rb) {
								t.Fatalf("dim=%d depth=%d: pair within eps in unmarked pages (%d,%d)",
									dim, depth, ra, rb)
							}
						}
					}
				}
			}
		}
	}
}

// TestFilterPreservesMatrix: the Figure 2 filter is a pure optimization —
// the matrix must be identical with and without it.
func TestFilterPreservesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 10; iter++ {
		ta, tb, _, _ := buildTrees(t, rng, 200, 200, 2, 6)
		eps := 0.02 + rng.Float64()*0.1
		pred := NormPredictor{Norm: geom.L2}
		m0, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), eps, pred, BuildOptions{FilterDepth: 0})
		if err != nil {
			t.Fatal(err)
		}
		m5, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), eps, pred, BuildOptions{FilterDepth: 5})
		if err != nil {
			t.Fatal(err)
		}
		if m0.Marked() != m5.Marked() {
			t.Fatalf("iter %d: filter changed marks %d -> %d", iter, m0.Marked(), m5.Marked())
		}
		for _, e := range m0.Entries() {
			if !m5.IsMarked(e.R, e.C) {
				t.Fatalf("iter %d: entry %v lost by filter", iter, e)
			}
		}
	}
}

// TestTightness: marked page pairs must be justified — the lower bound
// between the page MBRs is within eps (no spurious marks far apart).
func TestTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ta, tb, _, _ := buildTrees(t, rng, 300, 300, 2, 8)
	eps := 0.05
	pred := NormPredictor{Norm: geom.L2}
	m, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), eps, pred, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	leavesA := ta.Root().Leaves(nil)
	leavesB := tb.Root().Leaves(nil)
	byPageA := map[int]geom.MBR{}
	for _, l := range leavesA {
		byPageA[l.Page] = l.MBR
	}
	byPageB := map[int]geom.MBR{}
	for _, l := range leavesB {
		byPageB[l.Page] = l.MBR
	}
	for _, e := range m.Entries() {
		if got := pred.LowerBound(byPageA[e.R], byPageB[e.C]); got > eps {
			t.Fatalf("entry %v marked with bound %g > eps %g", e, got, eps)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ta, tb, _, _ := buildTrees(t, rng, 50, 50, 2, 4)
	pred := NormPredictor{Norm: geom.L2}
	if _, err := Build(nil, tb.Root(), 0, tb.NumPages(), 0.1, pred, BuildOptions{}); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), -1, pred, BuildOptions{}); err == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ta, tb, _, _ := buildTrees(t, rng, 300, 300, 2, 8)
	var st BuildStats
	_, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), 0.05,
		NormPredictor{Norm: geom.L2}, BuildOptions{FilterDepth: 5, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SweepEvents == 0 || st.PairTests == 0 || st.Recursions == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestFilterReducesWork: on well-separated data the filter must prune boxes.
func TestFilterReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Two distant clusters: only a small overlap region joins.
	mk := func(offset float64, n int) *rstar.Tree {
		items := make([]rstar.Item, n)
		for i := range items {
			items[i] = rstar.PointItem(i, geom.Vector{offset + rng.Float64(), rng.Float64()})
		}
		tr, err := rstar.BulkLoadSTR(2, rstar.DefaultConfig(8), items)
		if err != nil {
			t.Fatal(err)
		}
		tr.Pack()
		return tr
	}
	ta := mk(0, 400)
	tb := mk(0.95, 400)
	var st0, st5 BuildStats
	pred := NormPredictor{Norm: geom.L2}
	if _, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), 0.01, pred,
		BuildOptions{FilterDepth: 0, Stats: &st0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), 0.01, pred,
		BuildOptions{FilterDepth: 5, Stats: &st5}); err != nil {
		t.Fatal(err)
	}
	if st5.FilterDropped == 0 {
		t.Fatal("filter dropped nothing on separated clusters")
	}
	if st5.SweepEvents >= st0.SweepEvents {
		t.Fatalf("filter did not reduce sweep events: %d vs %d", st5.SweepEvents, st0.SweepEvents)
	}
}

// TestMixedHeights joins a deep hierarchy against a flat one.
func TestMixedHeights(t *testing.T) {
	leafA := &index.Node{MBR: geom.MBR{Min: geom.Vector{0, 0}, Max: geom.Vector{1, 1}}, Page: 0}
	rootA := leafA // height 1
	var leavesB []*index.Node
	for i := 0; i < 4; i++ {
		leavesB = append(leavesB, &index.Node{
			MBR:  geom.MBR{Min: geom.Vector{float64(i), 0}, Max: geom.Vector{float64(i) + 0.5, 1}},
			Page: i,
		})
	}
	mid1 := &index.Node{MBR: geom.Union(leavesB[0].MBR, leavesB[1].MBR), Page: -1, Children: leavesB[:2]}
	mid2 := &index.Node{MBR: geom.Union(leavesB[2].MBR, leavesB[3].MBR), Page: -1, Children: leavesB[2:]}
	rootB := &index.Node{MBR: geom.Union(mid1.MBR, mid2.MBR), Page: -1, Children: []*index.Node{mid1, mid2}}

	m, err := Build(rootA, rootB, 1, 4, 0.6, NormPredictor{Norm: geom.L2}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 of A spans x in [0,1]; within 0.6 of boxes starting at 0, 1
	// (and 2 starts at x=2, gap 1.0 > 0.6).
	if !m.IsMarked(0, 0) || !m.IsMarked(0, 1) {
		t.Fatalf("expected marks on close pages; entries %v", m.Entries())
	}
	if m.IsMarked(0, 3) {
		t.Fatal("distant page marked")
	}
}

func TestNormPredictorScale(t *testing.T) {
	a := geom.NewMBR(geom.Vector{0})
	b := geom.NewMBR(geom.Vector{2})
	p := NormPredictor{Norm: geom.L2, Scale: 3}
	if got := p.LowerBound(a, b); got != 6 {
		t.Fatalf("scaled bound = %g", got)
	}
	q := NormPredictor{Norm: geom.L2} // zero scale means 1
	if got := q.LowerBound(a, b); got != 2 {
		t.Fatalf("unit bound = %g", got)
	}
}

// TestSelfJoinMatrixSymmetric: building R against R yields a symmetric
// matrix with a fully marked diagonal.
func TestSelfJoinMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ta, _, _, _ := buildTrees(t, rng, 300, 10, 2, 8)
	m, err := Build(ta.Root(), ta.Root(), ta.NumPages(), ta.NumPages(), 0.05,
		NormPredictor{Norm: geom.L2}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < ta.NumPages(); p++ {
		if !m.IsMarked(p, p) {
			t.Fatalf("diagonal (%d,%d) unmarked", p, p)
		}
	}
	for _, e := range m.Entries() {
		if !m.IsMarked(e.C, e.R) {
			t.Fatalf("asymmetric entry %v", e)
		}
	}
}
