package predmat

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/kernel"
)

// Predictor lower-bounds the distance between any object stored under MBR a
// of the first dataset and any object stored under MBR b of the second.
// MinDist under a vector norm is the canonical instance (Table 1); the
// MRS-index frequency distance is another.
type Predictor interface {
	LowerBound(a, b geom.MBR) float64
}

// NormPredictor adapts a vector norm's MinDist as the lower-bounding
// predictor for point, spatial, and time-series data.
type NormPredictor struct {
	Norm geom.Norm
	// Scale multiplies MinDist; dimensionality-reducing indexes (e.g. the
	// MR-index PAA features) use it to restore the original-space bound.
	Scale float64
}

// LowerBound implements Predictor.
func (p NormPredictor) LowerBound(a, b geom.MBR) float64 {
	s := p.Scale
	if s == 0 {
		s = 1
	}
	return s * p.Norm.MinDist(a, b)
}

// KernelBound returns an allocation-free, early-abandoning test equivalent
// to LowerBound(a, b) <= eps — bit-identical for every input, which is what
// keeps matrices (and therefore Plan) independent of BuildOptions.Kernels.
// It returns nil when no exact kernel exists (non-positive or NaN Scale);
// callers then keep the reference comparison.
func (p NormPredictor) KernelBound(eps float64) func(a, b geom.MBR) bool {
	s := p.Scale
	if s == 0 {
		s = 1
	}
	b := kernel.NewBound(p.Norm, s, eps)
	if b == nil {
		return nil
	}
	return b.Within
}

// kernelBounder is the optional Predictor refinement Build probes for when
// BuildOptions.Kernels is set. mrsindex's integer frequency predictor does
// not implement it — its bound is already allocation-light — so only the
// norm-based predictors take the kernel path.
type kernelBounder interface {
	KernelBound(eps float64) func(a, b geom.MBR) bool
}

// DefaultFilterDepth is the paper's default bound k on the number of filter
// refinement iterations (§5.1).
const DefaultFilterDepth = 5

// Runner executes independent construction tasks, possibly concurrently.
// join.WorkerPool satisfies it; injecting the interface keeps goroutine
// spawning inside the join layer's bounded pool.
type Runner interface {
	Run(task func())
}

// BuildOptions tunes prediction-matrix construction.
type BuildOptions struct {
	// FilterDepth bounds the refinement iterations of the Figure 2 filter.
	// 0 disables filtering (useful for the ablation benchmark).
	FilterDepth int
	// Stats, when non-nil, receives construction counters.
	Stats *BuildStats
	// Runner, when non-nil, runs recursive sub-sweeps concurrently. The
	// resulting matrix and stats are independent of execution order: marks
	// are idempotent set insertions and every counter is an
	// order-independent integer sum.
	Runner Runner
	// Kernels routes leaf-pair predictor tests through internal/kernel's
	// exact MBR bound when the predictor offers one. The resulting matrix is
	// bit-identical either way; off keeps the reference path for
	// differential testing.
	Kernels bool
}

// BuildStats counts work done during construction.
type BuildStats struct {
	SweepEvents   int64 // endpoint events processed
	PairTests     int64 // box pair intersection tests in sweeps
	FilterDropped int64 // boxes removed by the Figure 2 filter
	Recursions    int64 // recursive PM invocations
}

// Build constructs the prediction matrix for joining datasets indexed by r
// and s with threshold eps, using pred as the lower-bounding predictor.
//
// It implements Figure 1: MBRs are extended by eps/2 in every dimension and
// a plane sweep over first-coordinate endpoints finds intersecting pairs;
// intersecting internal pairs recurse into their children; intersecting leaf
// pairs additionally pass the predictor bound before being marked.
//
// Deviation from the figure, for correctness: the filter runs on the
// *extended* MBRs (the figure filters before extending, which could drop
// pages within eps of each other but not intersecting). Filtering after
// extension preserves Theorem 1.
func Build(r, s *index.Node, rPages, sPages int, eps float64, pred Predictor, opts BuildOptions) (*Matrix, error) {
	if r == nil || s == nil {
		return nil, fmt.Errorf("predmat: nil index root")
	}
	if eps < 0 {
		return nil, fmt.Errorf("predmat: negative epsilon %g", eps)
	}
	m := NewMatrix(rPages, sPages)
	b := &builder{eps: eps, pred: pred, opts: opts, m: m}
	b.within = func(a, c geom.MBR) bool { return pred.LowerBound(a, c) <= eps }
	if opts.Kernels {
		if kb, ok := pred.(kernelBounder); ok {
			if f := kb.KernelBound(eps); f != nil {
				b.within = f
			}
		}
	}
	b.sweep([]*index.Node{r}, []*index.Node{s})
	b.wg.Wait()
	if opts.Stats != nil {
		opts.Stats.SweepEvents += b.sweepEvents.Load()
		opts.Stats.PairTests += b.pairTests.Load()
		opts.Stats.FilterDropped += b.filterDropped.Load()
		opts.Stats.Recursions += b.recursions.Load()
	}
	// Fold the buffered marks in before the matrix escapes: from here on it
	// is read-only and safe to share across goroutines (joinapi caches it).
	return m.Finalize(), nil
}

type builder struct {
	eps  float64
	pred Predictor
	opts BuildOptions
	m    *Matrix
	// within decides pred.LowerBound(a, b) <= eps — through the kernel
	// bound when enabled, which is exact, so the matrix never depends on
	// which path ran.
	within func(a, b geom.MBR) bool

	// markMu guards m: concurrent sub-sweeps may mark the same entry, and
	// Mark is an idempotent sorted insertion, so the resulting matrix is
	// identical regardless of interleaving.
	markMu sync.Mutex
	// wg tracks sub-sweeps handed to the runner.
	wg sync.WaitGroup
	// Counters accumulate per-sweep totals; each sweep batches its local
	// counts into one atomic add, so the hot event loop stays cheap.
	sweepEvents   atomic.Int64
	pairTests     atomic.Int64
	filterDropped atomic.Int64
	recursions    atomic.Int64
}

// flush folds one sweep's local counters into the builder totals.
func (b *builder) flush(st *BuildStats) {
	if b.opts.Stats == nil {
		return
	}
	b.sweepEvents.Add(st.SweepEvents)
	b.pairTests.Add(st.PairTests)
	b.filterDropped.Add(st.FilterDropped)
	b.recursions.Add(st.Recursions)
}

// spawn runs a recursive sub-sweep, through the runner when one is set.
func (b *builder) spawn(rNodes, sNodes []*index.Node) {
	if b.opts.Runner == nil {
		b.sweep(rNodes, sNodes)
		return
	}
	b.wg.Add(1)
	b.opts.Runner.Run(func() {
		defer b.wg.Done()
		b.sweep(rNodes, sNodes)
	})
}

// box is a sweep participant: an index node with its extended MBR.
type box struct {
	node *index.Node
	ext  geom.MBR
	from int // 0 = R side, 1 = S side
}

// endpoint is one sweep event on the first coordinate.
type endpoint struct {
	x    float64
	left bool
	b    *box
}

// sweep runs one level of the hierarchical plane sweep over the given node
// sets (Figure 1 steps 1-5). It only reads the (immutable) index nodes and
// writes through the mark mutex, so concurrent sweeps need no coordination
// beyond their local stats, flushed once on return.
func (b *builder) sweep(rNodes, sNodes []*index.Node) {
	var st BuildStats
	defer b.flush(&st)
	st.Recursions++
	if len(rNodes) == 0 || len(sNodes) == 0 {
		return
	}
	half := b.eps / 2
	rBoxes := make([]*box, 0, len(rNodes))
	for _, n := range rNodes {
		if n.MBR.IsEmpty() && !n.IsLeaf() {
			continue
		}
		rBoxes = append(rBoxes, &box{node: n, ext: n.MBR.Extended(half), from: 0})
	}
	sBoxes := make([]*box, 0, len(sNodes))
	for _, n := range sNodes {
		if n.MBR.IsEmpty() && !n.IsLeaf() {
			continue
		}
		sBoxes = append(sBoxes, &box{node: n, ext: n.MBR.Extended(half), from: 1})
	}

	rBoxes, sBoxes = b.filter(rBoxes, sBoxes, &st)
	if len(rBoxes) == 0 || len(sBoxes) == 0 {
		return
	}

	events := make([]endpoint, 0, 2*(len(rBoxes)+len(sBoxes)))
	for _, bx := range rBoxes {
		events = append(events,
			endpoint{x: bx.ext.Min[0], left: true, b: bx},
			endpoint{x: bx.ext.Max[0], left: false, b: bx})
	}
	for _, bx := range sBoxes {
		events = append(events,
			endpoint{x: bx.ext.Min[0], left: true, b: bx},
			endpoint{x: bx.ext.Max[0], left: false, b: bx})
	}
	// Process left endpoints before right endpoints at equal x so touching
	// boxes are seen as intersecting (closed rectangles).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].x != events[j].x {
			return events[i].x < events[j].x
		}
		return events[i].left && !events[j].left
	})

	activeR := make(map[*box]struct{})
	activeS := make(map[*box]struct{})
	for _, ev := range events {
		st.SweepEvents++
		if !ev.left {
			if ev.b.from == 0 {
				delete(activeR, ev.b)
			} else {
				delete(activeS, ev.b)
			}
			continue
		}
		var opposite map[*box]struct{}
		if ev.b.from == 0 {
			activeR[ev.b] = struct{}{}
			opposite = activeS
		} else {
			activeS[ev.b] = struct{}{}
			opposite = activeR
		}
		for other := range opposite {
			st.PairTests++
			if !ev.b.ext.Intersects(other.ext) {
				continue
			}
			rb, sb := ev.b, other
			if rb.from != 0 {
				rb, sb = sb, rb
			}
			b.handlePair(rb.node, sb.node)
		}
	}
}

// handlePair processes one intersecting extended pair: mark leaf pairs that
// pass the predictor, descend internal pairs (one side at a time when
// heights differ). Descents go through spawn, so with a Runner the
// recursive sub-sweeps fan out across the worker pool.
func (b *builder) handlePair(rn, sn *index.Node) {
	switch {
	case rn.IsLeaf() && sn.IsLeaf():
		if b.within(rn.MBR, sn.MBR) {
			b.markMu.Lock()
			b.m.Mark(rn.Page, sn.Page)
			b.markMu.Unlock()
		}
	case rn.IsLeaf():
		b.spawn([]*index.Node{rn}, sn.Children)
	case sn.IsLeaf():
		b.spawn(rn.Children, []*index.Node{sn})
	default:
		b.spawn(rn.Children, sn.Children)
	}
}

// filter implements the iterative refinement of Figure 2 on the extended
// boxes: shrink both sides to the region B_RS = B_R ∩ B_S that can contain
// intersecting pairs, and drop boxes that do not intersect it. It iterates
// until a fixpoint or FilterDepth rounds.
func (b *builder) filter(rBoxes, sBoxes []*box, st *BuildStats) ([]*box, []*box) {
	depth := b.opts.FilterDepth
	if depth <= 0 {
		return rBoxes, sBoxes
	}
	if len(rBoxes) == 0 || len(sBoxes) == 0 {
		return rBoxes, sBoxes
	}
	dim := rBoxes[0].ext.Dim()
	// Working copies of the (possibly shrunken) box regions used only for
	// filtering decisions; marking still uses the original MBRs.
	rCur := make([]geom.MBR, len(rBoxes))
	for i, bx := range rBoxes {
		rCur[i] = bx.ext
	}
	sCur := make([]geom.MBR, len(sBoxes))
	for i, bx := range sBoxes {
		sCur[i] = bx.ext
	}
	rAlive := rBoxes
	sAlive := sBoxes
	for iter := 0; iter < depth; iter++ {
		bigR := coverAll(rCur, dim)
		bigS := coverAll(sCur, dim)
		bb := geom.Intersect(bigR, bigS)
		if bb.IsEmpty() {
			st.FilterDropped += int64(len(rAlive) + len(sAlive))
			return nil, nil
		}
		// B_R covers B ∩ R_i for all i; B_S similarly.
		bR := geom.EmptyMBR(dim)
		for i := range rCur {
			bR.ExtendMBR(geom.Intersect(bb, rCur[i]))
		}
		bS := geom.EmptyMBR(dim)
		for i := range sCur {
			bS.ExtendMBR(geom.Intersect(bb, sCur[i]))
		}
		bRS := geom.Intersect(bR, bS)
		if bRS.IsEmpty() {
			st.FilterDropped += int64(len(rAlive) + len(sAlive))
			return nil, nil
		}
		changed := false
		rAlive, rCur, changed = shrinkFilter(rAlive, rCur, bRS, changed, st)
		sAlive, sCur, changed = shrinkFilter(sAlive, sCur, bRS, changed, st)
		if len(rAlive) == 0 || len(sAlive) == 0 {
			return rAlive, sAlive
		}
		if !changed {
			break
		}
	}
	return rAlive, sAlive
}

func shrinkFilter(alive []*box, cur []geom.MBR, bRS geom.MBR, changed bool, st *BuildStats) ([]*box, []geom.MBR, bool) {
	outBoxes := alive[:0]
	outCur := cur[:0]
	for i, bx := range alive {
		if !cur[i].Intersects(bRS) {
			changed = true
			st.FilterDropped++
			continue
		}
		next := geom.Intersect(cur[i], bRS)
		if !mbrEqual(next, cur[i]) {
			changed = true
		}
		outBoxes = append(outBoxes, bx)
		outCur = append(outCur, next)
	}
	return outBoxes, outCur, changed
}

func coverAll(boxes []geom.MBR, dim int) geom.MBR {
	out := geom.EmptyMBR(dim)
	for _, m := range boxes {
		out.ExtendMBR(m)
	}
	return out
}

func mbrEqual(a, b geom.MBR) bool {
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}
