package predmat

import "testing"

// TestDensityDegenerateShapes pins Density on 0×N and N×0 matrices: no cells
// means zero density, not NaN.
func TestDensityDegenerateShapes(t *testing.T) {
	for _, shape := range [][2]int{{0, 5}, {5, 0}, {0, 0}} {
		m := NewMatrix(shape[0], shape[1])
		if d := m.Density(); d != 0 {
			t.Errorf("Density of %dx%d = %g, want 0", shape[0], shape[1], d)
		}
		if got := m.Marked(); got != 0 {
			t.Errorf("Marked of %dx%d = %d, want 0", shape[0], shape[1], got)
		}
	}
}

// TestEntriesEmptyMatrix pins Entries and the marked-row/col accessors on a
// matrix with no marks.
func TestEntriesEmptyMatrix(t *testing.T) {
	m := NewMatrix(4, 4)
	if e := m.Entries(); len(e) != 0 {
		t.Errorf("Entries of empty matrix = %v, want empty", e)
	}
	if r := m.MarkedRows(); len(r) != 0 {
		t.Errorf("MarkedRows of empty matrix = %v, want empty", r)
	}
	if c := m.MarkedCols(); len(c) != 0 {
		t.Errorf("MarkedCols of empty matrix = %v, want empty", c)
	}
	if m.IsMarked(0, 0) {
		t.Error("IsMarked(0,0) on empty matrix")
	}
	if cols := m.RowCols(2); len(cols) != 0 {
		t.Errorf("RowCols(2) of empty matrix = %v, want empty", cols)
	}
}

// TestMarkAfterFinalize checks the re-open path: reads, then more marks, then
// reads again must observe the union, with duplicates still collapsed.
func TestMarkAfterFinalize(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Mark(0, 1)
	m.Mark(2, 2)
	if got := m.Marked(); got != 2 { // implicit Finalize
		t.Fatalf("Marked = %d, want 2", got)
	}
	m.Mark(1, 0)
	m.Mark(0, 1) // duplicate of a finalized entry
	m.Mark(1, 0) // duplicate of a pending entry
	if got := m.Marked(); got != 3 {
		t.Fatalf("Marked after re-open = %d, want 3", got)
	}
	want := []Entry{{R: 0, C: 1}, {R: 1, C: 0}, {R: 2, C: 2}}
	got := m.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Entries = %v, want %v", got, want)
		}
	}
	for _, e := range want {
		if !m.IsMarked(e.R, e.C) {
			t.Errorf("IsMarked(%d,%d) = false", e.R, e.C)
		}
	}
	if m.IsMarked(2, 0) {
		t.Error("IsMarked(2,0) = true for unmarked cell")
	}
}

// TestIsMarkedBeyondBitset exercises the binary-search fallback for matrices
// whose cell count exceeds the bitset cap.
func TestIsMarkedBeyondBitset(t *testing.T) {
	// 1<<14 × (1<<13) = 1<<27 cells > maxBitsetCells.
	rows, cols := 1<<14, 1<<13
	m := NewMatrix(rows, cols)
	m.Mark(0, 0)
	m.Mark(rows-1, cols-1)
	m.Mark(5000, 17)
	m.Finalize()
	if m.bits != nil {
		t.Fatal("bitset built above the cell cap")
	}
	for _, e := range []Entry{{0, 0}, {rows - 1, cols - 1}, {5000, 17}} {
		if !m.IsMarked(e.R, e.C) {
			t.Errorf("IsMarked(%d,%d) = false", e.R, e.C)
		}
	}
	if m.IsMarked(5000, 18) || m.IsMarked(1, 0) {
		t.Error("IsMarked true for unmarked cell in fallback path")
	}
	if m.IsMarked(-1, 0) || m.IsMarked(0, cols) {
		t.Error("IsMarked true out of range")
	}
}

// TestFullSharesMarkPath checks Full against hand-marked construction.
func TestFullSharesMarkPath(t *testing.T) {
	f := Full(3, 2)
	m := NewMatrix(3, 2)
	// Reverse order: the sort in Finalize must converge to the same CSR.
	for r := 2; r >= 0; r-- {
		for c := 1; c >= 0; c-- {
			m.Mark(r, c)
		}
	}
	if f.Marked() != m.Marked() || f.Marked() != 6 {
		t.Fatalf("Marked: Full = %d, manual = %d, want 6", f.Marked(), m.Marked())
	}
	fe, me := f.Entries(), m.Entries()
	for i := range fe {
		if fe[i] != me[i] {
			t.Fatalf("entry %d: Full %v, manual %v", i, fe[i], me[i])
		}
	}
	if f.Density() != 1 {
		t.Errorf("Full density = %g, want 1", f.Density())
	}
}
