// Package predmat builds and represents the prediction matrix of the paper
// (§5): a sparse boolean page×page matrix in which entry (i,j) is marked iff
// a lower-bounding distance predictor cannot rule out that page i of the
// first dataset and page j of the second dataset contribute to the join.
//
// Construction uses the hierarchical plane sweep of Figure 1 with the
// iterative intersection-refinement filter of Figure 2 (default depth k=5).
// Completeness (Theorem 1): if a result pair lives in page pair (i,j), then
// entry (i,j) is marked.
package predmat

import (
	"fmt"
	"sort"
)

// Entry is one marked cell of the prediction matrix: row r (page of the
// first dataset) and column c (page of the second dataset).
type Entry struct {
	R, C int
}

// Matrix is a sparse boolean matrix over page pairs.
type Matrix struct {
	rows, cols int
	byRow      map[int][]int // row -> ascending marked columns
	byCol      map[int][]int // col -> ascending marked rows
	marked     int
}

// NewMatrix creates an empty rows×cols prediction matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{
		rows:  rows,
		cols:  cols,
		byRow: make(map[int][]int),
		byCol: make(map[int][]int),
	}
}

// Rows returns the number of pages of the first dataset.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of pages of the second dataset.
func (m *Matrix) Cols() int { return m.cols }

// Marked returns the number of marked entries.
func (m *Matrix) Marked() int { return m.marked }

// Mark sets entry (r,c). Marking twice is a no-op. Out-of-range panics
// (programming error).
func (m *Matrix) Mark(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("predmat: mark (%d,%d) outside %dx%d", r, c, m.rows, m.cols))
	}
	cols := m.byRow[r]
	pos := sort.SearchInts(cols, c)
	if pos < len(cols) && cols[pos] == c {
		return
	}
	cols = append(cols, 0)
	copy(cols[pos+1:], cols[pos:])
	cols[pos] = c
	m.byRow[r] = cols

	rows := m.byCol[c]
	rpos := sort.SearchInts(rows, r)
	rows = append(rows, 0)
	copy(rows[rpos+1:], rows[rpos:])
	rows[rpos] = r
	m.byCol[c] = rows
	m.marked++
}

// IsMarked reports whether entry (r,c) is marked.
func (m *Matrix) IsMarked(r, c int) bool {
	cols := m.byRow[r]
	pos := sort.SearchInts(cols, c)
	return pos < len(cols) && cols[pos] == c
}

// RowCols returns the ascending marked columns of row r (shared slice; do
// not modify).
func (m *Matrix) RowCols(r int) []int { return m.byRow[r] }

// ColRows returns the ascending marked rows of column c (shared slice; do
// not modify).
func (m *Matrix) ColRows(c int) []int { return m.byCol[c] }

// MarkedRows returns the ascending list of rows with at least one mark.
func (m *Matrix) MarkedRows() []int {
	out := make([]int, 0, len(m.byRow))
	for r := range m.byRow {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// MarkedCols returns the ascending list of columns with at least one mark.
func (m *Matrix) MarkedCols() []int {
	out := make([]int, 0, len(m.byCol))
	for c := range m.byCol {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Entries returns all marked entries in (row, col) order.
func (m *Matrix) Entries() []Entry {
	out := make([]Entry, 0, m.marked)
	for _, r := range m.MarkedRows() {
		for _, c := range m.byRow[r] {
			out = append(out, Entry{R: r, C: c})
		}
	}
	return out
}

// Density returns marked / (rows*cols), the page-level selectivity.
func (m *Matrix) Density() float64 {
	total := float64(m.rows) * float64(m.cols)
	if total == 0 {
		return 0
	}
	return float64(m.marked) / total
}

// Full returns a fully marked rows×cols matrix. NLJ is pm-NLJ over a full
// matrix (§6), which tests exploit.
func Full(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		cols2 := make([]int, cols)
		for c := 0; c < cols; c++ {
			cols2[c] = c
		}
		m.byRow[r] = cols2
	}
	for c := 0; c < cols; c++ {
		rows2 := make([]int, rows)
		for r := 0; r < rows; r++ {
			rows2[r] = r
		}
		m.byCol[c] = rows2
	}
	m.marked = rows * cols
	return m
}
