// Package predmat builds and represents the prediction matrix of the paper
// (§5): a sparse boolean page×page matrix in which entry (i,j) is marked iff
// a lower-bounding distance predictor cannot rule out that page i of the
// first dataset and page j of the second dataset contribute to the join.
//
// Construction uses the hierarchical plane sweep of Figure 1 with the
// iterative intersection-refinement filter of Figure 2 (default depth k=5).
// Completeness (Theorem 1): if a result pair lives in page pair (i,j), then
// entry (i,j) is marked.
package predmat

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// Entry is one marked cell of the prediction matrix: row r (page of the
// first dataset) and column c (page of the second dataset).
type Entry struct {
	R, C int
}

// Matrix is a sparse boolean matrix over page pairs.
//
// Internally it is compressed sparse row (CSR) plus the transposed CSC, with
// buffered construction: Mark appends raw entries to a pending buffer in
// O(1), and the first read accessor folds them in — one sort plus dedup —
// via Finalize. That replaces the per-Mark sorted insertion (O(k) memmove
// per entry, quadratic per row) the construction hot path used to pay.
//
// A Matrix is not safe for concurrent use while marks are buffered. Finalize
// marks the boundary: Build returns finalized matrices, and a finalized
// matrix is read-only and safe to share until the next Mark.
type Matrix struct {
	rows, cols int

	// pending buffers marks (duplicates allowed) until the next Finalize;
	// dirty is set by NewMatrix and Mark and cleared by Finalize.
	pending []Entry
	dirty   bool

	marked     int
	rowPtr     []int // len rows+1; row r's columns are colIdx[rowPtr[r]:rowPtr[r+1]]
	colIdx     []int // ascending within each row
	colPtr     []int // len cols+1; column c's rows are rowIdx[colPtr[c]:colPtr[c+1]]
	rowIdx     []int // ascending within each column
	markedRows []int // ascending rows with at least one mark
	markedCols []int // ascending columns with at least one mark

	// bits is the row-major rows×cols bitset behind O(1) IsMarked — row r's
	// bits span [r*cols, (r+1)*cols). It is built only when the matrix is
	// small enough (maxBitsetCells); IsMarked falls back to binary search in
	// the row's CSR slice otherwise.
	bits []uint64
}

// maxBitsetCells caps the IsMarked bitset at 1<<26 cells (8 MiB of words):
// ample for every in-buffer clustering workload, skipped for genome-scale
// matrices whose refinement sweeps walk rows instead of probing cells.
const maxBitsetCells = 1 << 26

// NewMatrix creates an empty rows×cols prediction matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, dirty: true}
}

// Rows returns the number of pages of the first dataset.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of pages of the second dataset.
func (m *Matrix) Cols() int { return m.cols }

// Marked returns the number of marked entries.
func (m *Matrix) Marked() int { m.Finalize(); return m.marked }

// Mark sets entry (r,c). Marking twice is a no-op. Out-of-range panics
// (programming error). Marks are buffered: they cost O(1) here and are
// folded in — sorted and deduplicated — by the next read accessor (or an
// explicit Finalize).
func (m *Matrix) Mark(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("predmat: mark (%d,%d) outside %dx%d", r, c, m.rows, m.cols))
	}
	m.pending = append(m.pending, Entry{R: r, C: c})
	m.dirty = true
}

// Finalize folds buffered marks into the CSR/CSC representation. Every read
// accessor calls it implicitly; calling it explicitly marks the boundary
// between the construction phase (single goroutine, or externally
// synchronized as in Build) and concurrent read-only use. It returns m.
//
// Matrices small enough for the IsMarked bitset (maxBitsetCells) finalize
// through a bitset scan with no comparison sort; larger shapes fall back to
// the packed-key sort.
func (m *Matrix) Finalize() *Matrix {
	if !m.dirty {
		return m
	}
	if cells := uint64(m.rows) * uint64(m.cols); cells > 0 && cells <= maxBitsetCells {
		m.finalizeBits()
	} else {
		m.finalizeSort()
	}
	m.pending = nil
	m.dirty = false
	return m
}

// finalizeBits folds buffered marks through the row-major bitset: each
// pending mark is one O(1) bit-set (duplicates collapse for free), and one
// linear scan of the bitset rebuilds the CSR arrays — ascending bit index is
// ascending (row, col), so colIdx comes out sorted and deduplicated with no
// comparisons. The CSC transpose then follows in one counting pass. Total
// cost O(pending + cells/64 + marked), versus O((marked+pending) log) plus
// the entry-list churn of the sort path.
func (m *Matrix) finalizeBits() {
	cols := uint64(m.cols)
	cells := uint64(m.rows) * cols
	if m.bits == nil {
		m.bits = make([]uint64, (cells+63)/64)
		// Entries finalized before the bitset existed fold in here (this can
		// only happen if the shape limit changes between finalizes; build
		// always populates bits for shapes this small).
		for r := 0; r+1 < len(m.rowPtr); r++ {
			for _, c := range m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]] {
				idx := uint64(r)*cols + uint64(c)
				m.bits[idx>>6] |= 1 << (idx & 63)
			}
		}
	}
	for _, e := range m.pending {
		idx := uint64(e.R)*cols + uint64(e.C)
		m.bits[idx>>6] |= 1 << (idx & 63)
	}
	nnz := 0
	for _, w := range m.bits {
		nnz += bits.OnesCount64(w)
	}
	m.marked = nnz
	m.rowPtr = make([]int, m.rows+1)
	m.colIdx = make([]int, nnz)
	m.colPtr = make([]int, m.cols+1)
	m.rowIdx = make([]int, nnz)
	pos := 0
	for wi, w := range m.bits {
		base := uint64(wi) << 6
		for w != 0 {
			idx := base + uint64(bits.TrailingZeros64(w))
			w &= w - 1
			r := idx / cols
			c := int(idx - r*cols)
			m.rowPtr[r+1]++
			m.colPtr[c+1]++
			m.colIdx[pos] = c
			pos++
		}
	}
	for r := 0; r < m.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	for c := 0; c < m.cols; c++ {
		m.colPtr[c+1] += m.colPtr[c]
	}
	fill := make([]int, m.cols)
	copy(fill, m.colPtr[:m.cols])
	for r := 0; r < m.rows; r++ {
		for _, c := range m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]] {
			m.rowIdx[fill[c]] = r
			fill[c]++
		}
	}
	m.markedRows = m.markedRows[:0]
	for r := 0; r < m.rows; r++ {
		if m.rowPtr[r+1] > m.rowPtr[r] {
			m.markedRows = append(m.markedRows, r)
		}
	}
	m.markedCols = m.markedCols[:0]
	for c := 0; c < m.cols; c++ {
		if m.colPtr[c+1] > m.colPtr[c] {
			m.markedCols = append(m.markedCols, c)
		}
	}
}

// finalizeSort is the comparison-sort finalize for shapes too large for the
// bitset (and degenerate 0×N / N×0 shapes).
func (m *Matrix) finalizeSort() {
	ents := make([]Entry, 0, m.marked+len(m.pending))
	// Re-marking after a finalize re-opens the matrix: merge the already
	// finalized entries (sorted by construction) with the new batch.
	for r := 0; r+1 < len(m.rowPtr); r++ {
		for _, c := range m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]] {
			ents = append(ents, Entry{R: r, C: c})
		}
	}
	ents = append(ents, m.pending...)
	if !sortedRowMajor(ents) {
		m.sortRowMajor(ents)
	}
	// Dedup in place (sorted, so duplicates are adjacent).
	w := 0
	for i, e := range ents {
		if i > 0 && e == ents[w-1] {
			continue
		}
		ents[w] = e
		w++
	}
	ents = ents[:w]
	m.build(ents)
}

// pack32Limit bounds the coordinate range for the packed-key sort. Rows and
// columns count pages, so in practice they are always far below it.
const pack32Limit = 1 << 31

// sortRowMajor sorts ents into (row, col) order. Both coordinates fit in 32
// bits for any real matrix, so each entry packs into one uint64 and the sort
// runs on native integer comparisons instead of an indirect comparator; the
// comparator path remains as a fallback for hypothetical oversized shapes.
func (m *Matrix) sortRowMajor(ents []Entry) {
	if m.rows > pack32Limit || m.cols > pack32Limit {
		sort.Slice(ents, func(i, k int) bool {
			if ents[i].R != ents[k].R {
				return ents[i].R < ents[k].R
			}
			return ents[i].C < ents[k].C
		})
		return
	}
	keys := make([]uint64, len(ents))
	for i, e := range ents {
		keys[i] = uint64(e.R)<<32 | uint64(uint32(e.C))
	}
	slices.Sort(keys)
	for i, k := range keys {
		ents[i] = Entry{R: int(k >> 32), C: int(uint32(k))}
	}
}

// sortedRowMajor reports whether ents is already in (row, col) order
// (duplicates allowed), letting in-order construction — Full, in particular
// — skip the sort and finalize in one linear pass.
func sortedRowMajor(ents []Entry) bool {
	for i := 1; i < len(ents); i++ {
		a, b := ents[i-1], ents[i]
		if b.R < a.R || (b.R == a.R && b.C < a.C) {
			return false
		}
	}
	return true
}

// build populates the CSR/CSC arrays and the bitset from the sorted,
// deduplicated entry list.
func (m *Matrix) build(ents []Entry) {
	m.marked = len(ents)
	m.rowPtr = make([]int, m.rows+1)
	m.colIdx = make([]int, len(ents))
	m.colPtr = make([]int, m.cols+1)
	m.rowIdx = make([]int, len(ents))
	for _, e := range ents {
		m.rowPtr[e.R+1]++
		m.colPtr[e.C+1]++
	}
	for r := 0; r < m.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	for c := 0; c < m.cols; c++ {
		m.colPtr[c+1] += m.colPtr[c]
	}
	fill := make([]int, m.cols)
	copy(fill, m.colPtr[:m.cols])
	for i, e := range ents {
		m.colIdx[i] = e.C // ents are row-major: colIdx is exactly their C sequence
		m.rowIdx[fill[e.C]] = e.R
		fill[e.C]++
	}
	m.markedRows = m.markedRows[:0]
	for r := 0; r < m.rows; r++ {
		if m.rowPtr[r+1] > m.rowPtr[r] {
			m.markedRows = append(m.markedRows, r)
		}
	}
	m.markedCols = m.markedCols[:0]
	for c := 0; c < m.cols; c++ {
		if m.colPtr[c+1] > m.colPtr[c] {
			m.markedCols = append(m.markedCols, c)
		}
	}
	m.bits = nil
	if cells := uint64(m.rows) * uint64(m.cols); cells > 0 && cells <= maxBitsetCells {
		m.bits = make([]uint64, (cells+63)/64)
		for _, e := range ents {
			idx := uint64(e.R)*uint64(m.cols) + uint64(e.C)
			m.bits[idx>>6] |= 1 << (idx & 63)
		}
	}
}

// IsMarked reports whether entry (r,c) is marked: one bitset probe for
// matrices up to maxBitsetCells, a binary search in the row otherwise.
func (m *Matrix) IsMarked(r, c int) bool {
	m.Finalize()
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return false
	}
	if m.bits != nil {
		idx := uint64(r)*uint64(m.cols) + uint64(c)
		return m.bits[idx>>6]&(1<<(idx&63)) != 0
	}
	cols := m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]]
	pos := sort.SearchInts(cols, c)
	return pos < len(cols) && cols[pos] == c
}

// RowCols returns the ascending marked columns of row r (shared slice; do
// not modify).
func (m *Matrix) RowCols(r int) []int {
	m.Finalize()
	return m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]]
}

// ColRows returns the ascending marked rows of column c (shared slice; do
// not modify).
func (m *Matrix) ColRows(c int) []int {
	m.Finalize()
	return m.rowIdx[m.colPtr[c]:m.colPtr[c+1]]
}

// MarkedRows returns the ascending list of rows with at least one mark
// (shared slice; do not modify).
func (m *Matrix) MarkedRows() []int {
	m.Finalize()
	return m.markedRows
}

// MarkedCols returns the ascending list of columns with at least one mark
// (shared slice; do not modify).
func (m *Matrix) MarkedCols() []int {
	m.Finalize()
	return m.markedCols
}

// Entries returns all marked entries in (row, col) order (fresh slice).
func (m *Matrix) Entries() []Entry {
	m.Finalize()
	out := make([]Entry, 0, m.marked)
	for _, r := range m.markedRows {
		for _, c := range m.colIdx[m.rowPtr[r]:m.rowPtr[r+1]] {
			out = append(out, Entry{R: r, C: c})
		}
	}
	return out
}

// Density returns marked / (rows*cols), the page-level selectivity; it is 0
// for degenerate shapes (0×N, N×0).
func (m *Matrix) Density() float64 {
	m.Finalize()
	total := float64(m.rows) * float64(m.cols)
	if total == 0 {
		return 0
	}
	return float64(m.marked) / total
}

// Full returns a fully marked rows×cols matrix. NLJ is pm-NLJ over a full
// matrix (§6), which tests exploit. It goes through the same Mark/Finalize
// path as every other construction, so all NewMatrix invariants hold; the
// in-order marks make Finalize a single linear pass.
func Full(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	m.pending = make([]Entry, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Mark(r, c)
		}
	}
	return m.Finalize()
}
