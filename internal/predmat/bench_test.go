package predmat

import (
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
	"pmjoin/internal/rstar"
)

func benchTree(b *testing.B, n int) *rstar.Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	items := make([]rstar.Item, n)
	for i := range items {
		items[i] = rstar.PointItem(i, geom.Vector{rng.Float64(), rng.Float64()})
	}
	tr, err := rstar.BulkLoadSTR(2, rstar.DefaultConfig(32), items)
	if err != nil {
		b.Fatal(err)
	}
	tr.Pack()
	return tr
}

func BenchmarkBuildMatrix(b *testing.B) {
	ta := benchTree(b, 20000)
	tb := benchTree(b, 20000)
	pred := NormPredictor{Norm: geom.L2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), 0.01, pred,
			BuildOptions{FilterDepth: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMatrixNoFilter(b *testing.B) {
	ta := benchTree(b, 20000)
	tb := benchTree(b, 20000)
	pred := NormPredictor{Norm: geom.L2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ta.Root(), tb.Root(), ta.NumPages(), tb.NumPages(), 0.01, pred,
			BuildOptions{FilterDepth: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixMark(b *testing.B) {
	m := NewMatrix(1000, 1000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mark(rng.Intn(1000), rng.Intn(1000))
	}
}
