package predmat

import (
	"math"
	"testing"
	"testing/quick"

	"pmjoin/internal/geom"
)

// TestQuickMatrixMarkIdempotent: marking any in-range cell any number of
// times leaves exactly one entry, queryable from both axes.
func TestQuickMatrixMarkIdempotent(t *testing.T) {
	f := func(r, c uint8, repeats uint8) bool {
		m := NewMatrix(256, 256)
		n := int(repeats%5) + 1
		for i := 0; i < n; i++ {
			m.Mark(int(r), int(c))
		}
		if m.Marked() != 1 || !m.IsMarked(int(r), int(c)) {
			return false
		}
		rows := m.ColRows(int(c))
		cols := m.RowCols(int(r))
		return len(rows) == 1 && rows[0] == int(r) && len(cols) == 1 && cols[0] == int(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRowColConsistency: after arbitrary marks, the row-wise and
// column-wise views describe the same entry set.
func TestQuickRowColConsistency(t *testing.T) {
	f := func(cells []uint16) bool {
		m := NewMatrix(128, 128)
		for _, cell := range cells {
			m.Mark(int(cell>>8)%128, int(cell&0xff)%128)
		}
		count := 0
		for _, r := range m.MarkedRows() {
			for _, c := range m.RowCols(r) {
				if !m.IsMarked(r, c) {
					return false
				}
				found := false
				for _, rr := range m.ColRows(c) {
					if rr == r {
						found = true
						break
					}
				}
				if !found {
					return false
				}
				count++
			}
		}
		return count == m.Marked() && len(m.Entries()) == m.Marked()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormPredictorLowerBound: for arbitrary point pairs, the predictor
// bound between their degenerate MBRs equals the scaled distance, and the
// bound between any enclosing boxes never exceeds it.
func TestQuickNormPredictorLowerBound(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e3)
	}
	f := func(ax, ay, bx, by, gx, gy float64) bool {
		a := geom.Vector{clamp(ax), clamp(ay)}
		b := geom.Vector{clamp(bx), clamp(by)}
		boxA := geom.NewMBR(a)
		boxB := geom.NewMBR(b)
		grownA := boxA.Extended(math.Abs(clamp(gx)))
		grownB := boxB.Extended(math.Abs(clamp(gy)))
		p := NormPredictor{Norm: geom.L2}
		d := geom.L2.Dist(a, b)
		if math.Abs(p.LowerBound(boxA, boxB)-d) > 1e-9*(1+d) {
			return false
		}
		return p.LowerBound(grownA, grownB) <= d+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
