package disk

import (
	"errors"
	"sync"
	"testing"
)

func newTestDisk() *Disk {
	return New(DefaultModel())
}

func mustAppend(t *testing.T, d *Disk, f FileID, n int) []PageAddr {
	t.Helper()
	addrs := make([]PageAddr, n)
	for i := 0; i < n; i++ {
		a, err := d.AppendPage(f, i)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		addrs[i] = a
	}
	return addrs
}

func TestAppendAssignsSequentialAddresses(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	addrs := mustAppend(t, d, f, 5)
	for i, a := range addrs {
		if a.File != f || a.Page != i {
			t.Fatalf("addr %d = %v", i, a)
		}
	}
	if d.NumPages(f) != 5 {
		t.Fatalf("NumPages = %d", d.NumPages(f))
	}
}

func TestAppendUnknownFile(t *testing.T) {
	d := newTestDisk()
	if _, err := d.AppendPage(FileID(99), nil); err == nil {
		t.Fatal("expected error for unknown file")
	}
}

func TestSequentialReadsChargeNoSeeks(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 100)
	for i := 0; i < 100; i++ {
		if _, err := d.Read(PageAddr{File: f, Page: i}); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Reads != 100 {
		t.Fatalf("reads = %d", s.Reads)
	}
	if s.Seeks != 1 { // only the initial positioning
		t.Fatalf("seeks = %d, want 1", s.Seeks)
	}
	if s.Sequential != 99 {
		t.Fatalf("sequential = %d, want 99", s.Sequential)
	}
}

func TestBackwardReadChargesSeek(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 10)
	d.Read(PageAddr{File: f, Page: 5})
	d.Read(PageAddr{File: f, Page: 3})
	s := d.Stats()
	if s.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2 (initial + backward)", s.Seeks)
	}
}

func TestRereadSamePageChargesSeek(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 3)
	d.Read(PageAddr{File: f, Page: 1})
	d.Read(PageAddr{File: f, Page: 1})
	if s := d.Stats(); s.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2", s.Seeks)
	}
}

func TestSmallForwardGapStreams(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 20)
	d.Read(PageAddr{File: f, Page: 0})
	d.Read(PageAddr{File: f, Page: 4}) // gap of 3 pages
	s := d.Stats()
	if s.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1 (gap streamed)", s.Seeks)
	}
	if s.GapPages != 3 {
		t.Fatalf("gap pages = %d, want 3", s.GapPages)
	}
}

func TestLargeForwardGapSeeks(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 200)
	d.Read(PageAddr{File: f, Page: 0})
	d.Read(PageAddr{File: f, Page: 150})
	s := d.Stats()
	if s.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2", s.Seeks)
	}
	if s.GapPages != 0 {
		t.Fatalf("gap pages = %d, want 0", s.GapPages)
	}
}

func TestGapBreakEvenNeverStreamsPastSeekCost(t *testing.T) {
	// With seek 10ms and transfer 1ms, streaming a gap of more than 10
	// pages would cost more than seeking; the model must seek instead.
	m := Model{SeekTime: 10e-3, TransferTime: 1e-3, PageSize: 4096, Readahead: 64}
	d := New(m)
	f := d.CreateFile()
	mustAppend(t, d, f, 100)
	d.Read(PageAddr{File: f, Page: 0})
	d.Read(PageAddr{File: f, Page: 12}) // gap 11 > 10
	s := d.Stats()
	if s.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2 (gap 11 must not stream)", s.Seeks)
	}
	d.Read(PageAddr{File: f, Page: 22}) // gap 9 <= 10
	if s := d.Stats(); s.Seeks != 2 || s.GapPages != 9 {
		t.Fatalf("stats = %+v, want gap streamed", s)
	}
}

func TestPerFileHeadsAreIndependent(t *testing.T) {
	d := newTestDisk()
	f1 := d.CreateFile()
	f2 := d.CreateFile()
	mustAppend(t, d, f1, 10)
	mustAppend(t, d, f2, 10)
	// Alternate between the two files, each sequentially.
	for i := 0; i < 10; i++ {
		d.Read(PageAddr{File: f1, Page: i})
		d.Read(PageAddr{File: f2, Page: i})
	}
	s := d.Stats()
	if s.Seeks != 2 { // one initial positioning per file
		t.Fatalf("seeks = %d, want 2", s.Seeks)
	}
}

func TestReadErrors(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 2)
	cases := []PageAddr{
		{File: f, Page: -1},
		{File: f, Page: 2},
		{File: FileID(42), Page: 0},
	}
	for _, addr := range cases {
		if _, err := d.Read(addr); !errors.Is(err, ErrNoSuchPage) {
			t.Errorf("Read(%v) err = %v, want ErrNoSuchPage", addr, err)
		}
	}
}

func TestWriteStoresPayloadAndCharges(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	addrs := mustAppend(t, d, f, 3)
	if err := d.Write(addrs[1], "updated"); err != nil {
		t.Fatal(err)
	}
	pg, err := d.Peek(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if pg.Payload != "updated" {
		t.Fatalf("payload = %v", pg.Payload)
	}
	s := d.Stats()
	if s.Writes != 1 || s.WriteSeeks != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteErrors(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	if err := d.Write(PageAddr{File: f, Page: 0}, nil); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	addrs := mustAppend(t, d, f, 1)
	if _, err := d.Peek(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Reads != 0 || s.Seeks != 0 {
		t.Fatalf("peek charged: %+v", s)
	}
	if _, err := d.Peek(PageAddr{File: f, Page: 7}); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("err = %v", err)
	}
}

func TestResetStatsClearsCountersAndHeads(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 5)
	d.Read(PageAddr{File: f, Page: 0})
	d.Read(PageAddr{File: f, Page: 1})
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
	// After reset the next read must pay the initial positioning again.
	d.Read(PageAddr{File: f, Page: 2})
	if s := d.Stats(); s.Seeks != 1 {
		t.Fatalf("seeks = %d, want 1", s.Seeks)
	}
}

func TestModelCost(t *testing.T) {
	m := Model{SeekTime: 10e-3, TransferTime: 1e-3}
	s := Stats{Reads: 100, Seeks: 5, GapPages: 20, Writes: 10, WriteSeeks: 2}
	got := m.Cost(s)
	want := 7*10e-3 + 130*1e-3
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cost = %g, want %g", got, want)
	}
}

func TestDefaultModelFields(t *testing.T) {
	m := DefaultModel()
	if m.SeekTime != DefaultSeekTime || m.TransferTime != DefaultTransferTime ||
		m.PageSize != DefaultPageSize || m.Readahead != DefaultReadahead {
		t.Fatalf("unexpected defaults: %+v", m)
	}
}

func TestReadaheadNegativeDisables(t *testing.T) {
	m := Model{SeekTime: 10e-3, TransferTime: 1e-3, Readahead: -1}
	d := New(m)
	f := d.CreateFile()
	for i := 0; i < 10; i++ {
		d.AppendPage(f, nil)
	}
	d.Read(PageAddr{File: f, Page: 0})
	d.Read(PageAddr{File: f, Page: 2}) // gap 1: would stream with readahead
	if s := d.Stats(); s.Seeks != 2 {
		t.Fatalf("seeks = %d, want 2 with readahead disabled", s.Seeks)
	}
}

func TestDiskCostAccumulates(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 10)
	if d.Cost() != 0 {
		t.Fatal("cost before reads should be 0")
	}
	d.Read(PageAddr{File: f, Page: 0})
	want := DefaultSeekTime + DefaultTransferTime
	if got := d.Cost(); got != want {
		t.Fatalf("cost = %g, want %g", got, want)
	}
}

func TestConcurrentReads(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if _, err := d.Read(PageAddr{File: f, Page: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := d.Stats(); s.Reads != 8*64 {
		t.Fatalf("reads = %d, want %d", s.Reads, 8*64)
	}
}

// Regression: sequential writes must be categorized symmetrically with
// sequential reads. Before the fix, only WriteSeeks existed, so Writes -
// WriteSeeks was unexplainable in the metrics tables.
func TestWriteSequentialCategorized(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	addrs := mustAppend(t, d, f, 4)
	for _, a := range addrs {
		if err := d.Write(a, "w"); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	s := d.Stats()
	if s.Writes != 4 || s.WriteSeeks != 1 || s.WriteSequential != 3 {
		t.Fatalf("writes=%d seeks=%d sequential=%d, want 4/1/3", s.Writes, s.WriteSeeks, s.WriteSequential)
	}
	if s.Writes != s.WriteSeeks+s.WriteSequential {
		t.Fatalf("write partition broken: %+v", s)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Reads: 5, Seeks: 2, Sequential: 3, GapPages: 1, Writes: 4, WriteSeeks: 1, WriteSequential: 3}
	b := Stats{Reads: 2, Seeks: 1, Sequential: 1, Writes: 1, WriteSeeks: 1}
	sum := a.Add(b)
	if got := sum.Sub(b); got != a {
		t.Fatalf("Add/Sub not inverse: %+v", got)
	}
	if got := a.Sub(a); got != (Stats{}) {
		t.Fatalf("a-a = %+v", got)
	}
}
