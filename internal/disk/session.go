package disk

import (
	"errors"
	"sync"
)

// Session is a per-run I/O accounting scope over a shared Disk. It sees the
// same files and pages as the Disk, but charges reads and writes against its
// own head positions and counters, starting from cold heads: a session's
// I/O account is a pure function of its own access sequence, independent of
// whatever other sessions (or direct Disk accesses) do concurrently. Every
// charge is also folded into the Disk's global counters, so aggregate
// statistics remain the sum of all activity.
//
// Sessions are what make per-join reports deterministic under concurrent
// joins on one System: interleaving two joins cannot perturb either join's
// seek classification, because neither shares head state with the other.
//
// A session optionally serves page payloads through a physical Backend
// (NewSessionOn). Every read then splits into two halves:
//
//   - the logical charge — existence check, seek classification, counter
//     and timeline accounting — which always happens synchronously on the
//     calling goroutine, in access order, exactly as without a backend;
//   - the physical fetch — reading and decoding real bytes — whose wall
//     time is accumulated into Measured and which ReadAsync can push onto a
//     background runner.
//
// Only the logical half feeds Stats/Cost (and hence Reports), so the
// determinism contract is backend-independent by construction.
//
// A Session is safe for concurrent use, though join executors serialize
// their page traffic anyway to keep charge order deterministic.
type Session struct {
	d     *Disk
	mu    sync.Mutex
	heads map[FileID]int
	stats Stats
	// backend, when non-nil, serves page payloads physically; nil serves the
	// Disk's in-memory payloads (the simulator).
	backend Backend
	// measured accumulates the physical fetches' wall cost (zero without a
	// backend). Outside the determinism contract.
	measured Measured
	// onSeek, when non-nil, observes every access the session classifies as
	// a random seek (write reports the access direction). It is a tracing
	// hook (see internal/metrics); set it before issuing any I/O.
	onSeek func(addr PageAddr, write bool)
	// timeline, when non-nil, receives the modeled cost of every charge so an
	// overlapped pipeline clock can be derived without touching the counters.
	timeline *Timeline
}

// SetTimeline attaches a pipeline timeline: every subsequent charge's modeled
// cost is also folded into it, bucketed by the timeline's overlap state. A
// nil tl detaches. Set it before issuing any I/O.
func (s *Session) SetTimeline(tl *Timeline) {
	s.mu.Lock()
	s.timeline = tl
	s.mu.Unlock()
}

// SetOnSeek installs the seek observer. The callback runs on the goroutine
// issuing the I/O while the session lock is held, so it must be cheap and
// must not call back into the session. A nil fn removes the observer.
func (s *Session) SetOnSeek(fn func(addr PageAddr, write bool)) {
	s.mu.Lock()
	s.onSeek = fn
	s.mu.Unlock()
}

// NewSession creates a fresh accounting scope over the disk. The new
// session's heads are cold: its first access to any file is a seek.
func (d *Disk) NewSession() *Session {
	return &Session{d: d, heads: make(map[FileID]int)}
}

// NewSessionOn creates a session whose page payloads are served through the
// physical backend b (nil behaves exactly like NewSession). The logical
// charges are identical either way; only Measured differs.
func (d *Disk) NewSessionOn(b Backend) *Session {
	s := d.NewSession()
	s.backend = b
	return s
}

// chargeRead performs the logical half of a read: existence check (an
// unknown page is an error and charges nothing), seek classification against
// the session's heads, counter folding, and the timeline charge. It returns
// the in-memory page. Callers hold s.mu.
func (s *Session) chargeRead(addr PageAddr) (*Page, error) {
	pg, err := s.d.Peek(addr)
	if err != nil {
		return nil, err
	}
	delta := Stats{Reads: 1}
	if s.d.model.classify(s.heads, addr, &delta.GapPages) {
		delta.Seeks = 1
		if s.onSeek != nil {
			s.onSeek(addr, false)
		}
	} else {
		delta.Sequential = 1
	}
	s.stats.add(delta)
	s.d.addStats(delta)
	if s.timeline != nil {
		s.timeline.charge(s.d.model.Cost(delta), delta.Reads)
	}
	return pg, nil
}

// fetch performs the physical half of a read: with no backend the in-memory
// page is the result; with one, the payload is read and decoded from the
// backend's real files, its wall cost accumulated into Measured. A page the
// backend never received (ErrNotInBackend — runtime scratch pages with
// unencodable payloads) falls back to memory at zero measured cost. Called
// without holding s.mu, possibly from a background reader goroutine.
func (s *Session) fetch(addr PageAddr, memory *Page) (*Page, error) {
	if s.backend == nil {
		return memory, nil
	}
	payload, secs, err := s.backend.Fetch(addr)
	if errors.Is(err, ErrNotInBackend) {
		return memory, nil
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.measured.Reads++
	s.measured.Seconds += secs
	s.mu.Unlock()
	return &Page{Addr: addr, Payload: payload}, nil
}

// Read fetches one page, charging the session (and the global counters) a
// seek or a sequential transfer per the session's own head positions. With a
// backend attached, the payload comes from the backend's files (the demand
// path: charge and fetch both synchronous on the calling goroutine).
func (s *Session) Read(addr PageAddr) (*Page, error) {
	s.mu.Lock()
	pg, err := s.chargeRead(addr)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.fetch(addr, pg)
}

// PendingRead is the handle of a read whose physical half may still be in
// flight on a background runner. Wait blocks until the fetch completes; it is
// safe to call from any goroutine, any number of times.
type PendingRead struct {
	done chan struct{}
	pg   *Page
	err  error
}

// Wait blocks until the physical read completes and returns its result.
func (r *PendingRead) Wait() (*Page, error) {
	<-r.done
	return r.pg, r.err
}

// ReadAsync charges the read logically right now — same counters, same
// classification order, same timeline bucket as Read — and dispatches the
// physical fetch through run (a background reader pool's submit function).
// The returned error is the logical half's: an unknown page fails here,
// synchronously, charging nothing, exactly like Read. With no backend (or a
// nil run) the pending read is already complete when returned.
func (s *Session) ReadAsync(addr PageAddr, run func(func())) (*PendingRead, error) {
	s.mu.Lock()
	pg, err := s.chargeRead(addr)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	pr := &PendingRead{done: make(chan struct{})}
	if s.backend == nil || run == nil {
		pr.pg = pg
		close(pr.done)
		return pr, nil
	}
	run(func() {
		pr.pg, pr.err = s.fetch(addr, pg)
		close(pr.done)
	})
	return pr, nil
}

// Refetch repeats only the physical half of a read that was already charged:
// no counters, no head movement, no timeline — just the backend fetch (with
// the usual memory fallback), accumulating its measured cost. The buffer
// pool uses it as the demand-path fallback when a background prefetch read
// fails: the logical charge happened at stage time, so re-charging a demand
// read would double-count.
func (s *Session) Refetch(addr PageAddr) (*Page, error) {
	pg, err := s.d.Peek(addr)
	if err != nil {
		return nil, err
	}
	return s.fetch(addr, pg)
}

// Write stores a payload into an existing page, charging like a read.
func (s *Session) Write(addr PageAddr, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.d.store(addr, payload); err != nil {
		return err
	}
	delta := Stats{Writes: 1}
	if s.d.model.classify(s.heads, addr, &delta.GapPages) {
		delta.WriteSeeks = 1
		if s.onSeek != nil {
			s.onSeek(addr, true)
		}
	} else {
		delta.WriteSequential = 1
	}
	s.stats.add(delta)
	s.d.addStats(delta)
	if s.timeline != nil {
		s.timeline.charge(s.d.model.Cost(delta), 0)
	}
	return nil
}

// Peek returns a page payload without charging any I/O (see Disk.Peek). It
// always serves from memory, backend or not: peeks model coordinator-side
// inspection of pages the caller already owns.
func (s *Session) Peek(addr PageAddr) (*Page, error) { return s.d.Peek(addr) }

// CreateFile allocates a new empty file on the underlying disk.
func (s *Session) CreateFile() FileID { return s.d.CreateFile() }

// AppendPage appends a page to a file on the underlying disk (uncharged,
// like Disk.AppendPage; pair with Write to charge the materialization).
func (s *Session) AppendPage(f FileID, payload any) (PageAddr, error) {
	return s.d.AppendPage(f, payload)
}

// NumPages returns the number of pages in the file.
func (s *Session) NumPages(f FileID) int { return s.d.NumPages(f) }

// Model returns the underlying disk's cost model.
func (s *Session) Model() Model { return s.d.Model() }

// Stats returns a snapshot of the I/O charged through this session.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Measured returns a snapshot of the physical read activity served through
// the session's backend (zero without one). Callers that want the complete
// account must first ensure no background fetches are in flight (the engine
// closes its reader pool before reading this).
func (s *Session) Measured() Measured {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.measured
}

// Cost returns the session's simulated elapsed I/O time in seconds.
func (s *Session) Cost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.model.Cost(s.stats)
}
