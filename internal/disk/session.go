package disk

import "sync"

// Session is a per-run I/O accounting scope over a shared Disk. It sees the
// same files and pages as the Disk, but charges reads and writes against its
// own head positions and counters, starting from cold heads: a session's
// I/O account is a pure function of its own access sequence, independent of
// whatever other sessions (or direct Disk accesses) do concurrently. Every
// charge is also folded into the Disk's global counters, so aggregate
// statistics remain the sum of all activity.
//
// Sessions are what make per-join reports deterministic under concurrent
// joins on one System: interleaving two joins cannot perturb either join's
// seek classification, because neither shares head state with the other.
//
// A Session is safe for concurrent use, though join executors serialize
// their page traffic anyway to keep charge order deterministic.
type Session struct {
	d     *Disk
	mu    sync.Mutex
	heads map[FileID]int
	stats Stats
	// onSeek, when non-nil, observes every access the session classifies as
	// a random seek (write reports the access direction). It is a tracing
	// hook (see internal/metrics); set it before issuing any I/O.
	onSeek func(addr PageAddr, write bool)
	// timeline, when non-nil, receives the modeled cost of every charge so an
	// overlapped pipeline clock can be derived without touching the counters.
	timeline *Timeline
}

// SetTimeline attaches a pipeline timeline: every subsequent charge's modeled
// cost is also folded into it, bucketed by the timeline's overlap state. A
// nil tl detaches. Set it before issuing any I/O.
func (s *Session) SetTimeline(tl *Timeline) {
	s.mu.Lock()
	s.timeline = tl
	s.mu.Unlock()
}

// SetOnSeek installs the seek observer. The callback runs on the goroutine
// issuing the I/O while the session lock is held, so it must be cheap and
// must not call back into the session. A nil fn removes the observer.
func (s *Session) SetOnSeek(fn func(addr PageAddr, write bool)) {
	s.mu.Lock()
	s.onSeek = fn
	s.mu.Unlock()
}

// NewSession creates a fresh accounting scope over the disk. The new
// session's heads are cold: its first access to any file is a seek.
func (d *Disk) NewSession() *Session {
	return &Session{d: d, heads: make(map[FileID]int)}
}

// Read fetches one page, charging the session (and the global counters) a
// seek or a sequential transfer per the session's own head positions.
func (s *Session) Read(addr PageAddr) (*Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, err := s.d.Peek(addr)
	if err != nil {
		return nil, err
	}
	delta := Stats{Reads: 1}
	if s.d.model.classify(s.heads, addr, &delta.GapPages) {
		delta.Seeks = 1
		if s.onSeek != nil {
			s.onSeek(addr, false)
		}
	} else {
		delta.Sequential = 1
	}
	s.stats.add(delta)
	s.d.addStats(delta)
	if s.timeline != nil {
		s.timeline.charge(s.d.model.Cost(delta), delta.Reads)
	}
	return pg, nil
}

// Write stores a payload into an existing page, charging like a read.
func (s *Session) Write(addr PageAddr, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.d.store(addr, payload); err != nil {
		return err
	}
	delta := Stats{Writes: 1}
	if s.d.model.classify(s.heads, addr, &delta.GapPages) {
		delta.WriteSeeks = 1
		if s.onSeek != nil {
			s.onSeek(addr, true)
		}
	} else {
		delta.WriteSequential = 1
	}
	s.stats.add(delta)
	s.d.addStats(delta)
	if s.timeline != nil {
		s.timeline.charge(s.d.model.Cost(delta), 0)
	}
	return nil
}

// Peek returns a page payload without charging any I/O (see Disk.Peek).
func (s *Session) Peek(addr PageAddr) (*Page, error) { return s.d.Peek(addr) }

// CreateFile allocates a new empty file on the underlying disk.
func (s *Session) CreateFile() FileID { return s.d.CreateFile() }

// AppendPage appends a page to a file on the underlying disk (uncharged,
// like Disk.AppendPage; pair with Write to charge the materialization).
func (s *Session) AppendPage(f FileID, payload any) (PageAddr, error) {
	return s.d.AppendPage(f, payload)
}

// NumPages returns the number of pages in the file.
func (s *Session) NumPages(f FileID) int { return s.d.NumPages(f) }

// Model returns the underlying disk's cost model.
func (s *Session) Model() Model { return s.d.Model() }

// Stats returns a snapshot of the I/O charged through this session.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Cost returns the session's simulated elapsed I/O time in seconds.
func (s *Session) Cost() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.model.Cost(s.stats)
}
