package disk

import (
	"errors"
	"sort"
)

// Backend is the physical page source behind a Disk: where page payloads
// actually live and what it really costs to read them back. The Disk itself
// remains the logical catalog — files, page addresses, head positions, and
// every *modeled* charge — while a Backend serves the bytes. Two
// implementations exist:
//
//   - the Disk's own in-memory payloads (backend == nil everywhere): reads
//     are free in wall time and only the linear model is charged, the seed
//     behavior of this repository;
//   - internal/store.Store: payloads are encoded to real files and served
//     via mmap/pread with *measured* per-read latencies.
//
// The determinism contract is deliberately split across that line: logical
// accounting (Stats, seek classification, Timeline charges, and therefore
// every Report/Pairs/Plan field) is computed by the Session from the access
// sequence alone and is bit-identical regardless of the backend; only the
// Measured side (wall seconds per physical read) differs, and it is reported
// exclusively through Measured / ExecStats.MeasuredIOWall, never through a
// Report. TestBackendParity pins this.
type Backend interface {
	// Fetch returns the payload stored for addr and the measured wall
	// seconds the physical read took. A page the backend never received
	// (see ErrNotInBackend) is not an I/O error: the Session falls back to
	// the Disk's in-memory payload at zero measured cost.
	Fetch(addr PageAddr) (payload any, seconds float64, err error)
	// Put stores (or overwrites) the payload for addr. Implementations may
	// silently skip payloads they cannot encode — runtime scratch pages
	// with executor-internal payloads — leaving the page memory-only.
	Put(addr PageAddr, payload any) error
}

// ErrNotInBackend reports that a backend holds no bytes for the requested
// page. The Session treats it as "memory-only page", not as a read failure.
var ErrNotInBackend = errors.New("disk: page not in backend")

// Measured accumulates physical (wall-clock) read activity against a
// Backend. Unlike Stats it is NOT part of the determinism contract: it is
// zero under the simulator and host-dependent under a file backend.
type Measured struct {
	// Reads is the number of physical backend fetches served.
	Reads int64
	// Seconds is the summed wall time of those fetches (read + checksum +
	// decode). It is a sum of latencies, not an elapsed window: concurrent
	// background reads can make Seconds exceed the join's wall clock.
	Seconds float64
}

// Add returns the field-wise sum m + o.
func (m Measured) Add(o Measured) Measured {
	return Measured{Reads: m.Reads + o.Reads, Seconds: m.Seconds + o.Seconds}
}

// Sub returns the field-wise difference m - o, for computing deltas between
// two snapshots.
func (m Measured) Sub(o Measured) Measured {
	return Measured{Reads: m.Reads - o.Reads, Seconds: m.Seconds - o.Seconds}
}

// SetMirror installs a write mirror: every payload that enters the Disk from
// now on (AppendPage, Write) is also handed to b.Put, keeping the backend's
// files in sync with the catalog. Pages appended before the mirror was set
// are the caller's responsibility (see EachPage). A nil b detaches.
func (d *Disk) SetMirror(b Backend) {
	d.mu.Lock()
	d.mirror = b
	d.mu.Unlock()
}

// EachPage calls fn for every page of every file in ascending (file, page)
// order, stopping at the first error. It exists so a freshly attached
// Backend can be seeded with the payloads materialized before SetMirror.
func (d *Disk) EachPage(fn func(addr PageAddr, payload any) error) error {
	d.mu.Lock()
	ids := make([]FileID, 0, len(d.files))
	for id := range d.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type entry struct {
		addr    PageAddr
		payload any
	}
	var all []entry
	for _, id := range ids {
		for _, pg := range d.files[id] {
			all = append(all, entry{pg.Addr, pg.Payload})
		}
	}
	d.mu.Unlock()
	// fn runs outside the disk lock: a Backend.Put may be slow (real file
	// writes) and must not block concurrent readers of the catalog.
	for _, e := range all {
		if err := fn(e.addr, e.payload); err != nil {
			return err
		}
	}
	return nil
}
