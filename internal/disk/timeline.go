package disk

import "sync"

// TimelineStats is a snapshot of a Timeline's modeled pipeline clock. All
// fields are derived from Stats deltas and caller-supplied modeled CPU
// seconds, so for a fixed access sequence they are as deterministic as the
// counters themselves — they sit outside the on-vs-off determinism contract
// only because prefetching moves I/O between the Demand and Overlap buckets
// (that movement is the speedup being modeled).
type TimelineStats struct {
	// WallSeconds is the modeled pipeline wall clock: per stage,
	// demand + max(overlap, cpu) — overlapped I/O hides behind the stage's
	// CPU phase and only its excess extends the clock.
	WallSeconds float64
	// SerialSeconds is the same work with no overlap: per stage,
	// demand + overlap + cpu. With nothing charged as overlapped,
	// WallSeconds == SerialSeconds.
	SerialSeconds float64
	// DemandIOSeconds / OverlapIOSeconds split the modeled I/O time by how it
	// was charged; their sum plus CPUSeconds equals SerialSeconds.
	DemandIOSeconds  float64
	OverlapIOSeconds float64
	// CPUSeconds is the summed modeled CPU time passed to StageEnd.
	CPUSeconds float64
	// OverlapReads counts page reads charged to the overlap bucket.
	OverlapReads int64
	// Stages counts StageEnd calls.
	Stages int64
}

// Timeline models the wall clock of an overlapped I/O–CPU pipeline alongside
// a Session's counters. The counters (Seeks, Transfers, GapPages) are the
// determinism contract and never change; the Timeline only re-buckets their
// modeled cost in time. Between BeginOverlap and EndOverlap, I/O charged
// through the attached Session accrues to the current stage's overlap bucket
// (reads issued while the previous cluster's comparisons still run);
// everything else accrues to the demand bucket. StageEnd closes a stage with
// its modeled CPU seconds and folds demand + max(overlap, cpu) into the wall
// clock — the pipeline timing identity — and demand + overlap + cpu into the
// serial clock, so Wall/Serial is the modeled speedup of the overlap.
//
// A Timeline is safe for concurrent use, matching Session; executors
// serialize their I/O anyway, so stage boundaries are well defined.
type Timeline struct {
	mu           sync.Mutex
	overlapping  bool
	stageDemand  float64
	stageOverlap float64
	total        TimelineStats
}

// NewTimeline returns an empty timeline; attach it with Session.SetTimeline.
func NewTimeline() *Timeline { return &Timeline{} }

// BeginOverlap marks subsequent charges as overlapped with the current
// stage's CPU phase.
func (t *Timeline) BeginOverlap() {
	t.mu.Lock()
	t.overlapping = true
	t.mu.Unlock()
}

// EndOverlap reverts to demand charging.
func (t *Timeline) EndOverlap() {
	t.mu.Lock()
	t.overlapping = false
	t.mu.Unlock()
}

// charge records seconds of modeled I/O (reads pages) into the current
// stage's bucket per the overlap flag.
func (t *Timeline) charge(seconds float64, reads int64) {
	t.mu.Lock()
	if t.overlapping {
		t.stageOverlap += seconds
		t.total.OverlapIOSeconds += seconds
		t.total.OverlapReads += reads
	} else {
		t.stageDemand += seconds
		t.total.DemandIOSeconds += seconds
	}
	t.mu.Unlock()
}

// StageEnd closes the current stage with its modeled CPU seconds: the wall
// clock gains demand + max(overlap, cpu), the serial clock
// demand + overlap + cpu, and the stage buckets reset. Call it once per
// pipeline stage (the engine: once per cluster).
func (t *Timeline) StageEnd(cpuSeconds float64) {
	t.mu.Lock()
	hidden := t.stageOverlap
	if cpuSeconds > hidden {
		hidden = cpuSeconds
	}
	t.total.WallSeconds += t.stageDemand + hidden
	t.total.SerialSeconds += t.stageDemand + t.stageOverlap + cpuSeconds
	t.total.CPUSeconds += cpuSeconds
	t.total.Stages++
	t.stageDemand, t.stageOverlap = 0, 0
	t.mu.Unlock()
}

// Stats returns a snapshot of the accumulated timeline. I/O charged since the
// last StageEnd is included in the bucket totals but not yet in the wall and
// serial clocks.
func (t *Timeline) Stats() TimelineStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
