// Package disk implements a simulated linear-model disk with page files,
// random-seek and sequential-transfer cost accounting.
//
// The paper ("Joining Massive High-Dimensional Datasets", ICDE 2003) assumes
// a finite buffer and a linear disk model: reading a page that immediately
// follows the previously read page of the same file costs one sequential
// transfer; any other read costs a random seek plus a transfer. All join
// algorithms in this repository are charged through this model, so their
// relative I/O costs reproduce the counts (seeks, transfers) that drive the
// paper's measurements.
package disk

import (
	"errors"
	"fmt"
	"sync"
)

// Default cost parameters. They model a ca. 2003 commodity drive: a random
// seek (seek + rotational latency) near 10 ms and a sequential page transfer
// near 1 ms for a 4 KB page. Short forward gaps within a file stream through
// the readahead window instead of seeking, and each file tracks its own head
// position (files on separate spindles / OS readahead per open file), which
// is how the paper's measured NLJ behaves: alternating between the two
// dataset files does not pay a seek per page.
const (
	DefaultSeekTime     = 10e-3 // seconds per random seek
	DefaultTransferTime = 1e-3  // seconds per page transfer
	DefaultPageSize     = 4096  // bytes per page
	DefaultReadahead    = 16    // forward gap (pages) served without a seek
)

// FileID identifies a page file on the disk.
type FileID int

// PageAddr addresses one page: a file and a page index within it.
type PageAddr struct {
	File FileID
	Page int
}

func (a PageAddr) String() string { return fmt.Sprintf("f%d:p%d", a.File, a.Page) }

// Page is the unit of disk transfer. Payload is opaque to the disk; join
// executors store object slices in it.
type Page struct {
	Addr    PageAddr
	Payload any
}

// Stats accumulates the I/O activity charged against a Disk. Reads
// partition into Seeks + Sequential, and Writes partition into WriteSeeks +
// WriteSequential, so read/write mixes stay explainable side by side.
type Stats struct {
	Reads           int64 // total page reads
	Seeks           int64 // reads that required a random seek
	Sequential      int64 // reads served sequentially after the previous read
	GapPages        int64 // pages streamed over by readahead (charged as transfers)
	Writes          int64 // total page writes
	WriteSeeks      int64 // writes that required a random seek
	WriteSequential int64 // writes served sequentially after the previous access
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	s.add(o)
	return s
}

// Sub returns the field-wise difference s - o. It is how per-phase deltas
// are computed from two snapshots of one accumulating counter set.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:           s.Reads - o.Reads,
		Seeks:           s.Seeks - o.Seeks,
		Sequential:      s.Sequential - o.Sequential,
		GapPages:        s.GapPages - o.GapPages,
		Writes:          s.Writes - o.Writes,
		WriteSeeks:      s.WriteSeeks - o.WriteSeeks,
		WriteSequential: s.WriteSequential - o.WriteSequential,
	}
}

// Model holds the linear disk cost parameters.
type Model struct {
	SeekTime     float64 // seconds per random seek
	TransferTime float64 // seconds per page transfer
	PageSize     int     // bytes per page
	// Readahead is the largest forward gap (in pages, within one file)
	// served by streaming instead of seeking; the skipped pages are charged
	// as transfers. Negative disables readahead; 0 means the default.
	Readahead int
}

// DefaultModel returns the default linear disk cost model.
func DefaultModel() Model {
	return Model{
		SeekTime:     DefaultSeekTime,
		TransferTime: DefaultTransferTime,
		PageSize:     DefaultPageSize,
		Readahead:    DefaultReadahead,
	}
}

func (m Model) readahead() int {
	ra := m.Readahead
	switch {
	case ra < 0:
		return 0
	case ra == 0:
		ra = DefaultReadahead
	}
	// Streaming a gap of g pages costs g transfers; never stream when a
	// seek would be cheaper.
	if m.TransferTime > 0 {
		if brk := int(m.SeekTime / m.TransferTime); brk < ra {
			ra = brk
		}
	}
	return ra
}

// Cost converts stats into simulated seconds under the model: every access
// is one transfer (Reads + Writes + streamed GapPages) and the random ones
// (Seeks + WriteSeeks) additionally pay a seek. The sequential counters
// (Sequential, WriteSequential) are the complements of the seek counters
// within Reads and Writes respectively — they carry no extra cost, they
// exist so that metrics tables can explain a mixed workload's seek ratio on
// both the read and the write path.
func (m Model) Cost(s Stats) float64 {
	seeks := s.Seeks + s.WriteSeeks
	transfers := s.Reads + s.Writes + s.GapPages
	return float64(seeks)*m.SeekTime + float64(transfers)*m.TransferTime
}

// Disk is a simulated disk holding a set of page files. It is safe for
// concurrent use.
type Disk struct {
	mu     sync.Mutex
	model  Model
	files  map[FileID][]*Page
	nextID FileID
	heads  map[FileID]int // per-file head position (last page touched)
	stats  Stats
	// mirror, when non-nil, receives every payload entering the disk so a
	// physical Backend stays in sync with the in-memory catalog (SetMirror).
	mirror Backend
}

// ErrNoSuchPage is returned when a read addresses a page that does not exist.
var ErrNoSuchPage = errors.New("disk: no such page")

// New creates an empty disk with the given cost model.
func New(model Model) *Disk {
	return &Disk{model: model, files: make(map[FileID][]*Page), heads: make(map[FileID]int)}
}

// touch charges the positioning cost of accessing addr and moves the file
// head. It reports whether the access was a seek.
func (d *Disk) touch(addr PageAddr) bool {
	return d.model.classify(d.heads, addr, &d.stats.GapPages)
}

// classify decides whether accessing addr from the head positions in heads is
// a random seek, moving the head and adding any streamed-over pages to
// *gapPages. It is the one head-movement rule, shared by the Disk's global
// accounting and per-run Sessions.
func (m Model) classify(heads map[FileID]int, addr PageAddr, gapPages *int64) bool {
	head, ok := heads[addr.File]
	heads[addr.File] = addr.Page
	if !ok {
		return true // first access to the file
	}
	gap := addr.Page - head - 1
	switch {
	case gap < 0:
		return true // backward or repeated: reposition
	case gap == 0:
		return false // strictly sequential
	case gap <= m.readahead():
		*gapPages += int64(gap)
		return false // streamed through the readahead window
	default:
		return true
	}
}

// Model returns the disk's cost model.
func (d *Disk) Model() Model { return d.model }

// CreateFile allocates a new empty file and returns its id.
func (d *Disk) CreateFile() FileID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.files[id] = nil
	return id
}

// AppendPage appends a page with the given payload to the file and returns
// its address. Appends model the initial (pre-join) materialization of the
// dataset and are not charged: the paper's costs cover the join phase.
func (d *Disk) AppendPage(f FileID, payload any) (PageAddr, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[f]
	if !ok {
		return PageAddr{}, fmt.Errorf("disk: append to unknown file %d", f)
	}
	addr := PageAddr{File: f, Page: len(pages)}
	d.files[f] = append(pages, &Page{Addr: addr, Payload: payload})
	if d.mirror != nil {
		if err := d.mirror.Put(addr, payload); err != nil {
			return PageAddr{}, err
		}
	}
	return addr, nil
}

// NumPages returns the number of pages in the file.
func (d *Disk) NumPages(f FileID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files[f])
}

// Read fetches one page, charging a seek if the page does not immediately
// follow the previously accessed page of the same file.
func (d *Disk) Read(addr PageAddr) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[addr.File]
	if !ok || addr.Page < 0 || addr.Page >= len(pages) {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchPage, addr)
	}
	d.stats.Reads++
	if d.touch(addr) {
		d.stats.Seeks++
	} else {
		d.stats.Sequential++
	}
	return pages[addr.Page], nil
}

// Write stores a payload into an existing page, charging like a read.
func (d *Disk) Write(addr PageAddr, payload any) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[addr.File]
	if !ok || addr.Page < 0 || addr.Page >= len(pages) {
		return fmt.Errorf("%w: %v", ErrNoSuchPage, addr)
	}
	d.stats.Writes++
	if d.touch(addr) {
		d.stats.WriteSeeks++
	} else {
		d.stats.WriteSequential++
	}
	pages[addr.Page].Payload = payload
	if d.mirror != nil {
		if err := d.mirror.Put(addr, payload); err != nil {
			return err
		}
	}
	return nil
}

// Peek returns a page payload without charging any I/O. It models inspecting
// a page already known to the caller (e.g. during data generation or in
// tests) and must not be used on a join's data path.
func (d *Disk) Peek(addr PageAddr) (*Page, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[addr.File]
	if !ok || addr.Page < 0 || addr.Page >= len(pages) {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchPage, addr)
	}
	return pages[addr.Page], nil
}

// store overwrites an existing page's payload without charging any I/O; the
// caller (a Session) carries the charge.
func (d *Disk) store(addr PageAddr, payload any) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages, ok := d.files[addr.File]
	if !ok || addr.Page < 0 || addr.Page >= len(pages) {
		return fmt.Errorf("%w: %v", ErrNoSuchPage, addr)
	}
	pages[addr.Page].Payload = payload
	if d.mirror != nil {
		if err := d.mirror.Put(addr, payload); err != nil {
			return err
		}
	}
	return nil
}

// addStats folds a Session's per-access charge into the global counters.
func (d *Disk) addStats(delta Stats) {
	d.mu.Lock()
	d.stats.add(delta)
	d.mu.Unlock()
}

// add accumulates o into s field by field.
func (s *Stats) add(o Stats) {
	s.Reads += o.Reads
	s.Seeks += o.Seeks
	s.Sequential += o.Sequential
	s.GapPages += o.GapPages
	s.Writes += o.Writes
	s.WriteSeeks += o.WriteSeeks
	s.WriteSequential += o.WriteSequential
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters and the head positions. Datasets survive.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.heads = make(map[FileID]int)
}

// Cost returns the simulated elapsed I/O time in seconds so far.
func (d *Disk) Cost() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model.Cost(d.stats)
}
