package disk

import (
	"math"
	"testing"
)

func timelineDisk(t *testing.T, pages int) (*Disk, FileID) {
	t.Helper()
	d := New(DefaultModel())
	f := d.CreateFile()
	for i := 0; i < pages; i++ {
		if _, err := d.AppendPage(f, i); err != nil {
			t.Fatal(err)
		}
	}
	return d, f
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestTimelineBucketsAndStageClock(t *testing.T) {
	d, f := timelineDisk(t, 8)
	s := d.NewSession()
	tl := NewTimeline()
	s.SetTimeline(tl)

	// Stage 1: two demand reads (seek + sequential), then two overlapped
	// reads, closed with a CPU phase shorter than the overlapped I/O.
	m := d.Model()
	if _, err := s.Read(PageAddr{File: f, Page: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(PageAddr{File: f, Page: 1}); err != nil {
		t.Fatal(err)
	}
	demand := m.SeekTime + 2*m.TransferTime
	tl.BeginOverlap()
	if _, err := s.Read(PageAddr{File: f, Page: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(PageAddr{File: f, Page: 3}); err != nil {
		t.Fatal(err)
	}
	tl.EndOverlap()
	overlap := 2 * m.TransferTime
	cpu := overlap / 2
	tl.StageEnd(cpu)

	ts := tl.Stats()
	if !approx(ts.DemandIOSeconds, demand) || !approx(ts.OverlapIOSeconds, overlap) {
		t.Fatalf("buckets = %+v, want demand %v overlap %v", ts, demand, overlap)
	}
	if ts.OverlapReads != 2 {
		t.Fatalf("overlap reads = %d", ts.OverlapReads)
	}
	// CPU shorter than overlapped I/O: the I/O's excess extends the wall.
	if want := demand + overlap; !approx(ts.WallSeconds, want) {
		t.Fatalf("wall = %v, want %v", ts.WallSeconds, want)
	}
	if want := demand + overlap + cpu; !approx(ts.SerialSeconds, want) {
		t.Fatalf("serial = %v, want %v", ts.SerialSeconds, want)
	}

	// Stage 2: overlapped I/O fully hidden behind a longer CPU phase.
	tl.BeginOverlap()
	if _, err := s.Read(PageAddr{File: f, Page: 4}); err != nil {
		t.Fatal(err)
	}
	tl.EndOverlap()
	cpu2 := 10 * m.TransferTime
	tl.StageEnd(cpu2)
	ts2 := tl.Stats()
	if want := demand + overlap + cpu2; !approx(ts2.WallSeconds, want) {
		t.Fatalf("wall after stage 2 = %v, want %v", ts2.WallSeconds, want)
	}
	if ts2.Stages != 2 {
		t.Fatalf("stages = %d", ts2.Stages)
	}
	if !approx(ts2.SerialSeconds, ts2.DemandIOSeconds+ts2.OverlapIOSeconds+ts2.CPUSeconds) {
		t.Fatalf("serial identity violated: %+v", ts2)
	}
}

// TestTimelineDoesNotPerturbCounters: the counters are the determinism
// contract; attaching a timeline must not change them, and with nothing
// overlapped wall == serial.
func TestTimelineDoesNotPerturbCounters(t *testing.T) {
	run := func(attach bool) (Stats, float64) {
		d, f := timelineDisk(t, 16)
		s := d.NewSession()
		tl := NewTimeline()
		if attach {
			s.SetTimeline(tl)
		}
		for _, p := range []int{0, 1, 5, 2, 9} {
			if _, err := s.Read(PageAddr{File: f, Page: p}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Write(PageAddr{File: f, Page: 3}, "x"); err != nil {
			t.Fatal(err)
		}
		tl.StageEnd(0)
		return s.Stats(), s.Cost()
	}
	withTL, costTL := run(true)
	without, cost := run(false)
	if withTL != without {
		t.Fatalf("counters diverge: with=%+v without=%+v", withTL, without)
	}
	if !approx(costTL, cost) {
		t.Fatalf("cost diverges: %v vs %v", costTL, cost)
	}
	// Re-derive: all-demand timeline reproduces the session cost as both
	// clocks.
	d, f := timelineDisk(t, 16)
	s := d.NewSession()
	tl := NewTimeline()
	s.SetTimeline(tl)
	for _, p := range []int{0, 1, 5, 2, 9} {
		if _, err := s.Read(PageAddr{File: f, Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	tl.StageEnd(0)
	ts := tl.Stats()
	if !approx(ts.WallSeconds, ts.SerialSeconds) {
		t.Fatalf("no overlap but wall %v != serial %v", ts.WallSeconds, ts.SerialSeconds)
	}
	if !approx(ts.WallSeconds, s.Cost()) {
		t.Fatalf("all-demand wall %v != session cost %v", ts.WallSeconds, s.Cost())
	}
}

func TestTimelineChargesPendingStageInBuckets(t *testing.T) {
	d, f := timelineDisk(t, 4)
	s := d.NewSession()
	tl := NewTimeline()
	s.SetTimeline(tl)
	if _, err := s.Read(PageAddr{File: f, Page: 0}); err != nil {
		t.Fatal(err)
	}
	ts := tl.Stats()
	if ts.DemandIOSeconds == 0 {
		t.Fatal("pending charge missing from bucket")
	}
	if ts.WallSeconds != 0 || ts.Stages != 0 {
		t.Fatalf("open stage already clocked: %+v", ts)
	}
}
