package disk

import (
	"reflect"
	"sync"
	"testing"
)

func TestSessionColdHeads(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 4)

	// Warm the global head on the file.
	if _, err := d.Read(PageAddr{File: f, Page: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(PageAddr{File: f, Page: 1}); err != nil {
		t.Fatal(err)
	}

	// A fresh session starts cold: its read of page 2 is a seek even
	// though the global head sits at page 1 (a direct read would stream).
	s := d.NewSession()
	if _, err := s.Read(PageAddr{File: f, Page: 2}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 1 || st.Seeks != 1 || st.Sequential != 0 {
		t.Fatalf("session stats after first read = %+v, want 1 read, 1 seek", st)
	}
}

func TestSessionStatsMatchSoloDisk(t *testing.T) {
	// The same access sequence must cost the same through a session as
	// through a fresh disk: a session's account is a pure function of its
	// own accesses.
	access := []int{0, 1, 2, 9, 10, 3, 0}

	solo := newTestDisk()
	fs := solo.CreateFile()
	mustAppend(t, solo, fs, 12)
	for _, p := range access {
		if _, err := solo.Read(PageAddr{File: fs, Page: p}); err != nil {
			t.Fatal(err)
		}
	}

	shared := newTestDisk()
	fd := shared.CreateFile()
	mustAppend(t, shared, fd, 12)
	// Pollute the global heads with unrelated traffic first.
	for _, p := range []int{5, 11, 7} {
		if _, err := shared.Read(PageAddr{File: fd, Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	sess := shared.NewSession()
	for _, p := range access {
		if _, err := sess.Read(PageAddr{File: fd, Page: p}); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := sess.Stats(), solo.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("session stats %+v, solo disk stats %+v", got, want)
	}
	if got, want := sess.Cost(), solo.Model().Cost(solo.Stats()); got != want {
		t.Fatalf("session cost %g, solo cost %g", got, want)
	}
}

func TestSessionChargesGlobalCounters(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 4)

	before := d.Stats()
	s := d.NewSession()
	if _, err := s.Read(PageAddr{File: f, Page: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(PageAddr{File: f, Page: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(PageAddr{File: f, Page: 2}, "x"); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Reads-before.Reads != 2 {
		t.Fatalf("global reads delta = %d, want 2", after.Reads-before.Reads)
	}
	if after.Writes-before.Writes != 1 {
		t.Fatalf("global writes delta = %d, want 1", after.Writes-before.Writes)
	}
}

func TestSessionReadsDoNotMoveGlobalHeads(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 8)

	// Global head at page 0.
	if _, err := d.Read(PageAddr{File: f, Page: 0}); err != nil {
		t.Fatal(err)
	}
	// Session jumps to page 7; the global head must stay at 0.
	s := d.NewSession()
	if _, err := s.Read(PageAddr{File: f, Page: 7}); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if _, err := d.Read(PageAddr{File: f, Page: 1}); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Sequential-before.Sequential != 1 {
		t.Fatalf("direct read after session jump classified as %+v delta, want sequential",
			Stats{Reads: after.Reads - before.Reads, Seeks: after.Seeks - before.Seeks})
	}
}

func TestSessionWriteToMissingPage(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	s := d.NewSession()
	if err := s.Write(PageAddr{File: f, Page: 3}, "x"); err == nil {
		t.Fatal("write to missing page succeeded")
	}
}

func TestConcurrentSessionsIndependentStats(t *testing.T) {
	d := newTestDisk()
	f := d.CreateFile()
	mustAppend(t, d, f, 32)

	// Run several sessions over one disk concurrently; each must report
	// exactly the solo cost of its own access pattern.
	solo := newTestDisk()
	sf := solo.CreateFile()
	mustAppend(t, solo, sf, 32)
	for p := 0; p < 32; p++ {
		if _, err := solo.Read(PageAddr{File: sf, Page: p}); err != nil {
			t.Fatal(err)
		}
	}
	want := solo.Stats()

	const sessions = 8
	var wg sync.WaitGroup
	got := make([]Stats, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.NewSession()
			for p := 0; p < 32; p++ {
				if _, err := s.Read(PageAddr{File: f, Page: p}); err != nil {
					t.Error(err)
					return
				}
			}
			got[i] = s.Stats()
		}()
	}
	wg.Wait()
	for i, st := range got {
		if !reflect.DeepEqual(st, want) {
			t.Fatalf("session %d stats %+v, want %+v", i, st, want)
		}
	}
}

// Session writes must categorize sequential writes exactly like the Disk
// (WriteSequential parity), and the seek observer must see every random
// access with its direction.
func TestSessionWriteSequentialAndSeekObserver(t *testing.T) {
	d := New(DefaultModel())
	f := d.CreateFile()
	for i := 0; i < 4; i++ {
		if _, err := d.AppendPage(f, i); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	s := d.NewSession()
	type seek struct {
		addr  PageAddr
		write bool
	}
	var seen []seek
	s.SetOnSeek(func(a PageAddr, w bool) { seen = append(seen, seek{a, w}) })
	for i := 0; i < 3; i++ {
		if err := s.Write(PageAddr{File: f, Page: i}, "w"); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if _, err := s.Read(PageAddr{File: f, Page: 0}); err != nil { // backward: seek
		t.Fatalf("read: %v", err)
	}
	st := s.Stats()
	if st.Writes != 3 || st.WriteSeeks != 1 || st.WriteSequential != 2 {
		t.Fatalf("writes=%d seeks=%d sequential=%d, want 3/1/2", st.Writes, st.WriteSeeks, st.WriteSequential)
	}
	want := []seek{{PageAddr{File: f, Page: 0}, true}, {PageAddr{File: f, Page: 0}, false}}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("observed seeks %v, want %v", seen, want)
	}
	// Global counters absorbed the same categorization.
	g := d.Stats()
	if g.WriteSequential != 2 {
		t.Fatalf("global WriteSequential = %d, want 2", g.WriteSequential)
	}
}
