package buffer

import (
	"testing"

	"pmjoin/internal/disk"
)

func addr(f disk.FileID, page int) disk.PageAddr {
	return disk.PageAddr{File: f, Page: page}
}

func TestPrefetchStagesAndClaims(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 4, LRU)
	ok, err := p.Prefetch(addr(f, 0))
	if err != nil || !ok {
		t.Fatalf("prefetch = %v, %v", ok, err)
	}
	if p.Staged() != 1 || !p.Contains(addr(f, 0)) {
		t.Fatalf("staged = %d, resident = %v", p.Staged(), p.Resident())
	}
	// The prefetch pre-charged the miss; the claim counts nothing.
	if s := p.Stats(); s.Misses != 1 || s.Hits != 0 || s.Prefetched != 1 {
		t.Fatalf("after prefetch: %+v", s)
	}
	if _, err := p.GetPinned(addr(f, 0)); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("claim charged counters: %+v", s)
	}
	if p.Staged() != 0 {
		t.Fatalf("claim left frame staged")
	}
	// A second access is an ordinary hit again.
	if _, err := p.Get(addr(f, 0)); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("post-claim access: %+v", s)
	}
}

func TestPrefetchResidentPagePreChargesHit(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 4, LRU)
	if _, err := p.Get(addr(f, 1)); err != nil {
		t.Fatal(err)
	}
	ok, err := p.Prefetch(addr(f, 1))
	if err != nil || !ok {
		t.Fatalf("prefetch = %v, %v", ok, err)
	}
	if s := p.Stats(); s.Hits != 1 || s.Misses != 1 || s.Prefetched != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if d.Stats().Reads != 1 {
		t.Fatalf("resident prefetch issued a read")
	}
	// Idempotent: staging a staged page counts nothing.
	if ok, err := p.Prefetch(addr(f, 1)); err != nil || !ok {
		t.Fatalf("re-prefetch = %v, %v", ok, err)
	}
	if s := p.Stats(); s.Hits != 1 || s.Prefetched != 1 {
		t.Fatalf("re-prefetch charged: %+v", s)
	}
}

// TestStagedFramesNotEvictable: a staged frame is protected from policy
// eviction, explicit Evict, and further prefetch displacement until released
// or claimed.
func TestStagedFramesNotEvictable(t *testing.T) {
	d, f := newDiskWithFile(t, 8)
	p, _ := NewPool(d, 2, LRU)
	p.Prefetch(addr(f, 0))
	p.Prefetch(addr(f, 1))
	if p.Evict(addr(f, 0)) {
		t.Fatal("Evict displaced a staged frame")
	}
	// Demand miss with every frame staged: no victim, ErrBufferFull, and the
	// staged frames stay resident.
	if _, err := p.Get(addr(f, 2)); err != ErrBufferFull {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	if !p.Contains(addr(f, 0)) || !p.Contains(addr(f, 1)) {
		t.Fatalf("resident = %v", p.Resident())
	}
	// After release the frames are ordinary evictable pages again.
	if n := p.ReleaseStaged(); n != 2 {
		t.Fatalf("released = %d", n)
	}
	if _, err := p.Get(addr(f, 2)); err != nil {
		t.Fatal(err)
	}
	if p.Contains(addr(f, 0)) {
		t.Fatal("LRU front staged frame not evicted after release")
	}
}

// TestPrefetchNeverDisplacesPinned: with every frame pinned or staged,
// Prefetch degrades gracefully — (false, nil), no read charged, pinned and
// staged frames untouched.
func TestPrefetchNeverDisplacesPinned(t *testing.T) {
	d, f := newDiskWithFile(t, 8)
	p, _ := NewPool(d, 2, LRU)
	if _, err := p.GetPinned(addr(f, 0)); err != nil {
		t.Fatal(err)
	}
	if ok, err := p.Prefetch(addr(f, 1)); err != nil || !ok {
		t.Fatalf("prefetch with free frame = %v, %v", ok, err)
	}
	reads := d.Stats().Reads
	stats := p.Stats()
	ok, err := p.Prefetch(addr(f, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("prefetch displaced a pinned or staged frame")
	}
	if d.Stats().Reads != reads {
		t.Fatal("degraded prefetch still issued a read")
	}
	if p.Stats() != stats {
		t.Fatalf("degraded prefetch charged counters: %+v", p.Stats())
	}
	if !p.Contains(addr(f, 0)) || !p.Contains(addr(f, 1)) {
		t.Fatalf("resident = %v", p.Resident())
	}
}

// TestPrefetchEvictsLRUSurvivorFirst: prefetch victims are the same
// front-first unpinned frames the demand path would evict.
func TestPrefetchEvictsLRUSurvivorFirst(t *testing.T) {
	d, f := newDiskWithFile(t, 8)
	p, _ := NewPool(d, 3, LRU)
	p.Get(addr(f, 0)) // survivor: least recently used
	p.Get(addr(f, 1))
	if _, err := p.GetPinned(addr(f, 2)); err != nil {
		t.Fatal(err)
	}
	if ok, err := p.Prefetch(addr(f, 3)); err != nil || !ok {
		t.Fatalf("prefetch = %v, %v", ok, err)
	}
	if p.Contains(addr(f, 0)) || !p.Contains(addr(f, 1)) || !p.Contains(addr(f, 2)) {
		t.Fatalf("resident = %v, want survivor 0 evicted first", p.Resident())
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestFlushReleasesStagedFrames(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 4, LRU)
	p.Prefetch(addr(f, 0))
	p.Prefetch(addr(f, 1))
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 || p.Staged() != 0 {
		t.Fatalf("after flush: len=%d staged=%d", p.Len(), p.Staged())
	}
	if p.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestUnpinAllKeepsStaged(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 4, LRU)
	p.GetPinned(addr(f, 0))
	p.Prefetch(addr(f, 1))
	p.UnpinAll()
	if p.Staged() != 1 {
		t.Fatalf("UnpinAll dropped staged protection; staged = %d", p.Staged())
	}
}

// TestPrefetchParityWithDemandPath replays the same access sequence through a
// prefetch-staged pool and a demand-only pool and requires identical
// Hits/Misses/Evictions and identical disk read sequences — the unit-level
// statement of the engine's determinism contract.
func TestPrefetchParityWithDemandPath(t *testing.T) {
	run := func(prefetch bool) (Stats, disk.Stats, []disk.PageAddr) {
		d, f := newDiskWithFile(t, 16)
		p, _ := NewPool(d, 4, LRU)
		// Cluster A pins 0..2; cluster B needs 2..5 (2 shared).
		for i := 0; i <= 2; i++ {
			if _, err := p.GetPinned(addr(f, i)); err != nil {
				t.Fatal(err)
			}
		}
		if prefetch {
			for i := 3; i <= 5; i++ {
				if ok, err := p.Prefetch(addr(f, i)); err != nil {
					t.Fatal(err)
				} else if i >= 4 && ok {
					// capacity 4: frames 0-2 pinned + one staged; the rest
					// must degrade.
					t.Fatalf("page %d staged past budget", i)
				}
			}
		}
		p.UnpinAll()
		for i := 2; i <= 5; i++ {
			if _, err := p.GetPinned(addr(f, i)); err != nil {
				t.Fatal(err)
			}
		}
		p.ReleaseStaged()
		return p.Stats(), d.Stats(), p.Resident()
	}
	onB, onD, onR := run(true)
	offB, offD, offR := run(false)
	onB.Prefetched = 0
	if onB != offB {
		t.Fatalf("buffer stats diverge: on=%+v off=%+v", onB, offB)
	}
	if onD != offD {
		t.Fatalf("disk stats diverge: on=%+v off=%+v", onD, offD)
	}
	if len(onR) != len(offR) {
		t.Fatalf("resident sets diverge: on=%v off=%v", onR, offR)
	}
	for i := range onR {
		if onR[i] != offR[i] {
			t.Fatalf("LRU order diverges at %d: on=%v off=%v", i, onR, offR)
		}
	}
}
