package buffer

import (
	"testing"
	"testing/quick"

	"pmjoin/internal/disk"
)

// TestQuickPoolInvariants drives a pool with arbitrary access sequences and
// checks the structural invariants: residency never exceeds capacity, every
// hit is on a resident page, and hits+misses equals the access count.
func TestQuickPoolInvariants(t *testing.T) {
	f := func(accesses []uint8, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		d := disk.New(disk.DefaultModel())
		file := d.CreateFile()
		for i := 0; i < 64; i++ {
			if _, err := d.AppendPage(file, i); err != nil {
				return false
			}
		}
		p, err := NewPool(d, capacity, LRU)
		if err != nil {
			return false
		}
		for _, a := range accesses {
			pg := int(a % 64)
			resident := p.Contains(disk.PageAddr{File: file, Page: pg})
			before := p.Stats()
			if _, err := p.Get(disk.PageAddr{File: file, Page: pg}); err != nil {
				return false
			}
			after := p.Stats()
			if resident && after.Hits != before.Hits+1 {
				return false
			}
			if !resident && after.Misses != before.Misses+1 {
				return false
			}
			if p.Len() > capacity {
				return false
			}
		}
		s := p.Stats()
		return s.Hits+s.Misses == int64(len(accesses))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFIFOSameMissCountAsReference checks FIFO against a ring-buffer
// reference model for arbitrary traces.
func TestQuickFIFOSameMissCountAsReference(t *testing.T) {
	f := func(accesses []uint8) bool {
		const capacity = 4
		d := disk.New(disk.DefaultModel())
		file := d.CreateFile()
		for i := 0; i < 32; i++ {
			d.AppendPage(file, i)
		}
		p, err := NewPool(d, capacity, FIFO)
		if err != nil {
			return false
		}
		var ring []int
		misses := 0
		for _, a := range accesses {
			pg := int(a % 32)
			if _, err := p.Get(disk.PageAddr{File: file, Page: pg}); err != nil {
				return false
			}
			found := false
			for _, v := range ring {
				if v == pg {
					found = true
					break
				}
			}
			if !found {
				misses++
				if len(ring) == capacity {
					ring = ring[1:]
				}
				ring = append(ring, pg)
			}
		}
		return p.Stats().Misses == int64(misses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
