// Package buffer implements a fixed-capacity page buffer with pluggable
// replacement policies (LRU by default, FIFO for ablation).
//
// The paper assumes a finite buffer of B pages with LRU replacement. All join
// executors route page access through a Pool so that buffer hits are free and
// misses are charged to the simulated disk.
package buffer

import (
	"container/list"
	"errors"
	"fmt"

	"pmjoin/internal/disk"
)

// Policy selects the replacement policy of a Pool.
type Policy int

const (
	// LRU evicts the least recently used unpinned page.
	LRU Policy = iota
	// FIFO evicts the oldest resident unpinned page regardless of use.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts buffer activity.
//
// Prefetched counts pages admitted through the Prefetch path, split from the
// Hits/Misses they pre-charge: a prefetch read increments Misses (the miss it
// replaces) and Prefetched; staging a resident page increments Hits (the hit
// the later pin would have counted) and Prefetched. The later claim counts
// nothing, so Hits/Misses/Evictions are identical with prefetch on or off and
// Prefetched alone records how much traffic moved to the prefetch path.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Prefetched int64
	// SharedHits counts misses whose page was resident in an attached
	// SharedPool (see AttachShared): reads another in-flight run had already
	// materialized. Purely observational — the miss is still charged to the
	// run's own session, so Hits/Misses (and the Report) are identical with
	// or without the shared pool. Always 0 when no shared pool is attached.
	SharedHits int64
}

// Add returns the field-wise sum s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:       s.Hits + o.Hits,
		Misses:     s.Misses + o.Misses,
		Evictions:  s.Evictions + o.Evictions,
		Prefetched: s.Prefetched + o.Prefetched,
		SharedHits: s.SharedHits + o.SharedHits,
	}
}

// Sub returns the field-wise difference s - o, for computing deltas between
// two snapshots of one pool's counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:       s.Hits - o.Hits,
		Misses:     s.Misses - o.Misses,
		Evictions:  s.Evictions - o.Evictions,
		Prefetched: s.Prefetched - o.Prefetched,
		SharedHits: s.SharedHits - o.SharedHits,
	}
}

// HitRatio returns hits / (hits+misses), or 0 when no accesses happened.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	page   *disk.Page
	pinned int
	staged bool          // admitted by Prefetch, not yet claimed or released
	elem   *list.Element // position in the eviction order list
	// pending, when non-nil, is the in-flight background fetch whose result
	// this frame is waiting for (async prefetch). Invariant: a pending frame
	// is always staged, so the victim scan can never evict it; page is nil
	// until resolvePending fills it.
	pending *disk.PendingRead
}

// Source is the read path beneath a Pool: the shared disk.Disk itself, or a
// per-run disk.Session whose charges stay out of other runs' accounts.
type Source interface {
	Read(addr disk.PageAddr) (*disk.Page, error)
}

// asyncSource is the optional Source extension (disk.Session) that splits a
// read into a synchronous logical charge and a background physical fetch.
// With a prefetch runner installed, Prefetch admissions go through it so
// staged reads overlap the coordinator's compute.
type asyncSource interface {
	ReadAsync(addr disk.PageAddr, run func(func())) (*disk.PendingRead, error)
}

// refetcher is the optional Source extension that repeats only the physical
// half of an already-charged read — the demand-path fallback after a failed
// background fetch (re-charging would double-count the access).
type refetcher interface {
	Refetch(addr disk.PageAddr) (*disk.Page, error)
}

// Pool is a buffer pool of a fixed number of page frames over one page
// source. It is not safe for concurrent use; join coordinators serialize
// all page traffic, matching the paper's setting (workers only compute over
// pages the coordinator already fetched).
type Pool struct {
	d        Source
	capacity int
	policy   Policy
	frames   map[disk.PageAddr]*frame
	order    *list.List // front = next eviction victim
	stats    Stats
	// onEvict, when non-nil, observes every frame leaving the pool
	// (policy eviction, explicit Evict, Flush). It is a tracing hook (see
	// internal/metrics) and runs on the goroutine driving the pool.
	onEvict func(addr disk.PageAddr)
	// onLoad, when non-nil, observes every page entering the pool off a miss
	// read, before it is returned to the caller. The engine uses it to warm
	// per-page derived state (flat kernel blocks) on the coordinator, once
	// per residency, instead of inside worker join loops.
	onLoad func(pg *disk.Page)
	// shared, when non-nil, is the service-wide concurrent frame cache this
	// run participates in (see AttachShared).
	shared *SharedPool
	// runner, when non-nil, dispatches prefetch reads' physical half to a
	// background reader (SetPrefetchRunner). Requires the source to be an
	// asyncSource; otherwise prefetch reads stay synchronous.
	runner func(func())
}

// SetPrefetchRunner installs the background dispatcher for prefetch reads
// (typically a dedicated reader WorkerPool's submit function). Every
// subsequent Prefetch miss charges its logical I/O synchronously as before —
// identical counters, identical eviction order — but the physical fetch runs
// on the dispatcher, overlapping the coordinator's compute, and is awaited
// when the frame is claimed (or at ReleaseStaged/Flush). A nil run reverts
// to fully synchronous prefetch reads.
func (p *Pool) SetPrefetchRunner(run func(func())) { p.runner = run }

// AttachShared joins the pool to a service-wide SharedPool: every miss
// consults it (counting Stats.SharedHits) and publishes the page it read,
// and every local pin is mirrored as a shared pin so frames in use by this
// run are never evicted from the shared cache. The simulated charges are
// unchanged — the run's source is still read on every local miss, so its
// Report is bit-identical to a run without the shared pool. Call Detach
// when the run ends to release the mirrored pins; nil detaches immediately.
func (p *Pool) AttachShared(sp *SharedPool) {
	if sp == nil {
		p.Detach()
		return
	}
	p.shared = sp
}

// Detach releases every mirrored pin this pool still holds in the shared
// pool and disconnects from it. Safe to call with no shared pool attached,
// and idempotent — Engine.Run defers it so error paths (cancellation
// included) cannot leak shared pins that would pin frames forever.
func (p *Pool) Detach() {
	if p.shared == nil {
		return
	}
	for addr, f := range p.frames {
		if f.pinned > 0 {
			p.shared.Unpin(addr, f.pinned)
		}
	}
	p.shared = nil
}

// SetOnEvict installs the eviction observer; nil removes it. The callback
// must be cheap and must not call back into the pool.
func (p *Pool) SetOnEvict(fn func(addr disk.PageAddr)) { p.onEvict = fn }

// SetOnLoad installs the miss-load observer; nil removes it. The callback
// runs on the goroutine driving the pool and must not call back into it.
func (p *Pool) SetOnLoad(fn func(pg *disk.Page)) { p.onLoad = fn }

// ErrBufferFull is returned when every frame is pinned and a miss occurs.
var ErrBufferFull = errors.New("buffer: all frames pinned")

// NewPool creates a pool of capacity pages over src using the given policy.
// Capacity must be at least 1.
func NewPool(src Source, capacity int, policy Policy) (*Pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d < 1", capacity)
	}
	return &Pool{
		d:        src,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[disk.PageAddr]*frame, capacity),
		order:    list.New(),
	}, nil
}

// Capacity returns the number of page frames.
func (p *Pool) Capacity() int { return p.capacity }

// Len returns the number of resident pages.
func (p *Pool) Len() int { return len(p.frames) }

// Contains reports whether the page is resident without touching recency.
func (p *Pool) Contains(addr disk.PageAddr) bool {
	_, ok := p.frames[addr]
	return ok
}

// Stats returns a snapshot of the pool statistics.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters. Resident pages stay resident.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Get returns the page at addr, reading it from disk on a miss and evicting
// per the policy when the pool is full. The returned page is not pinned.
func (p *Pool) Get(addr disk.PageAddr) (*disk.Page, error) {
	return p.get(addr, false)
}

// GetPinned returns the page at addr and pins it; the caller must Unpin it.
// Pinned pages are never evicted.
func (p *Pool) GetPinned(addr disk.PageAddr) (*disk.Page, error) {
	return p.get(addr, true)
}

func (p *Pool) get(addr disk.PageAddr, pin bool) (*disk.Page, error) {
	if f, ok := p.frames[addr]; ok {
		if f.pending != nil {
			// The claim caught up with an in-flight background fetch: wait
			// for it (demand-falling-back happens inside resolvePending). A
			// resolution failure has already dropped the frame and undone the
			// stage-time admission, so the error surfaces here cleanly.
			if err := p.resolvePending(addr, f); err != nil {
				return nil, err
			}
		}
		if f.staged {
			// Claim: the access this frame exists for. Its hit or miss was
			// already charged when Prefetch staged it, so claiming counts
			// nothing — that is what keeps Hits/Misses identical with
			// prefetch on or off. The recency touch still happens, putting
			// the frame exactly where the pre-charged access would have.
			f.staged = false
		} else {
			p.stats.Hits++
		}
		if p.policy == LRU {
			p.order.MoveToBack(f.elem)
		}
		if pin {
			f.pinned++
			if p.shared != nil {
				p.shared.Pin(addr, f.page)
			}
		}
		return f.page, nil
	}
	p.stats.Misses++
	// Pick the eviction victim before reading — so a fully pinned pool
	// fails with ErrBufferFull without charging any I/O — but remove it
	// only after the read succeeds: evicting first would let a failed read
	// (a bad page address, ErrNoSuchPage) permanently drop a resident page
	// and charge an eviction for I/O that never happened.
	var victim *list.Element
	if len(p.frames) >= p.capacity {
		if victim = p.victim(); victim == nil {
			return nil, ErrBufferFull
		}
	}
	if p.shared != nil {
		// A shared-resident page is a hit in the service-wide cache: another
		// run already materialized it. The session read below still happens —
		// the simulated charge keeps this run's Report a pure function of its
		// own access sequence — so the lookup only records the reuse (and
		// bumps the frame's shared recency).
		if _, ok := p.shared.Lookup(addr); ok {
			p.stats.SharedHits++
		}
	}
	pg, err := p.d.Read(addr)
	if err != nil {
		return nil, err
	}
	if p.onLoad != nil {
		p.onLoad(pg)
	}
	if victim != nil {
		p.removeFrame(victim)
	}
	f := &frame{page: pg}
	f.elem = p.order.PushBack(addr)
	if pin {
		f.pinned++
	}
	p.frames[addr] = f
	if p.shared != nil {
		if pin {
			p.shared.Pin(addr, pg)
		} else {
			p.shared.Publish(addr, pg)
		}
	}
	return pg, nil
}

// Unpin releases one pin on the page. Unpinning a page that is not resident
// or not pinned is a programming error and returns a non-nil error.
func (p *Pool) Unpin(addr disk.PageAddr) error {
	f, ok := p.frames[addr]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident page %v", addr)
	}
	if f.pinned == 0 {
		return fmt.Errorf("buffer: unpin of unpinned page %v", addr)
	}
	f.pinned--
	if p.shared != nil {
		p.shared.Unpin(addr, 1)
	}
	return nil
}

// UnpinAll drops every pin. Used between join phases.
func (p *Pool) UnpinAll() {
	for addr, f := range p.frames {
		if f.pinned > 0 && p.shared != nil {
			p.shared.Unpin(addr, f.pinned)
		}
		f.pinned = 0
	}
}

// Evict removes the page at addr from the pool if resident, unpinned and not
// staged. It reports whether the page was removed.
func (p *Pool) Evict(addr disk.PageAddr) bool {
	f, ok := p.frames[addr]
	if !ok || f.pinned > 0 || f.staged {
		return false
	}
	p.removeFrame(f.elem)
	return true
}

// Flush evicts every unpinned frame, charging evictions. Staged frames are
// released first — Flush is a phase boundary, the point where unclaimed
// prefetches lose their protection — so they are evicted like any other
// unpinned frame. Pinned frames stay resident — dropping them would break the
// pin invariant GetPinned/Unpin enforce — and their presence is reported as
// an error so the caller learns its pin ledger is not empty at a phase
// boundary.
func (p *Pool) Flush() error {
	p.ReleaseStaged()
	pinned := 0
	for e := p.order.Front(); e != nil; {
		next := e.Next()
		if p.frames[e.Value.(disk.PageAddr)].pinned > 0 {
			pinned++
		} else {
			p.removeFrame(e)
		}
		e = next
	}
	if pinned > 0 {
		return fmt.Errorf("buffer: flush with %d pinned frame(s); they remain resident", pinned)
	}
	return nil
}

// Prefetch stages the page at addr: it becomes resident (read from the source
// if needed) and protected from eviction until the next Get/GetPinned claims
// it or ReleaseStaged/Flush drops the protection. The access is pre-charged
// here — a resident page counts the hit the later claim would have counted, a
// read counts the miss — so the claim itself counts nothing (see Stats).
//
// Prefetch never displaces a pinned, staged, or currently-needed frame: when
// no evictable victim exists it returns (false, nil) without reading, the
// graceful-degradation contract — the caller simply stops prefetching and the
// deferred reads happen at demand time. A read error returns (false, err).
// Staging an already-staged page is a no-op counted as nothing.
func (p *Pool) Prefetch(addr disk.PageAddr) (bool, error) {
	if f, ok := p.frames[addr]; ok {
		if f.staged {
			return true, nil
		}
		p.stats.Hits++
		p.stats.Prefetched++
		if p.policy == LRU {
			p.order.MoveToBack(f.elem)
		}
		f.staged = true
		return true, nil
	}
	var victim *list.Element
	if len(p.frames) >= p.capacity {
		if victim = p.victim(); victim == nil {
			return false, nil
		}
	}
	// Same charge order as get: the miss is counted once the read is
	// committed to, so a failed read leaves the same counters either path.
	p.stats.Misses++
	if p.shared != nil {
		if _, ok := p.shared.Lookup(addr); ok {
			p.stats.SharedHits++
		}
	}
	if p.runner != nil {
		if src, ok := p.d.(asyncSource); ok {
			// Async admission: the logical charge happens inside ReadAsync,
			// right here on the coordinator — same counters, same order as the
			// synchronous path — and only the physical fetch is dispatched. A
			// synchronous charge error (unknown page) fails exactly like a
			// failed sync read, with the miss kept. The victim leaves at stage
			// time, as it would after a sync read, so the eviction sequence is
			// identical; onLoad and the shared publish wait for the bytes.
			pr, err := src.ReadAsync(addr, p.runner)
			if err != nil {
				return false, err
			}
			p.stats.Prefetched++
			if victim != nil {
				p.removeFrame(victim)
			}
			f := &frame{staged: true, pending: pr}
			f.elem = p.order.PushBack(addr)
			p.frames[addr] = f
			return true, nil
		}
	}
	pg, err := p.d.Read(addr)
	if err != nil {
		return false, err
	}
	p.stats.Prefetched++
	if p.shared != nil {
		p.shared.Publish(addr, pg)
	}
	if p.onLoad != nil {
		p.onLoad(pg)
	}
	if victim != nil {
		p.removeFrame(victim)
	}
	f := &frame{page: pg, staged: true}
	f.elem = p.order.PushBack(addr)
	p.frames[addr] = f
	return true, nil
}

// resolvePending completes a frame's background fetch: it waits for the
// read, and on failure retries once through the uncharged demand path
// (Refetch — the logical charge already happened at stage time). If the page
// still cannot be produced the frame is removed and the stage-time admission
// undone — no eviction is charged and Prefetched is decremented, so the
// counters end exactly where a failed synchronous prefetch read would have
// left them — and the error is returned.
func (p *Pool) resolvePending(addr disk.PageAddr, f *frame) error {
	pr := f.pending
	f.pending = nil
	pg, err := pr.Wait()
	if err != nil {
		if rf, ok := p.d.(refetcher); ok {
			pg, err = rf.Refetch(addr)
		}
	}
	if err != nil {
		p.order.Remove(f.elem)
		delete(p.frames, addr)
		p.stats.Prefetched--
		return err
	}
	f.page = pg
	if p.onLoad != nil {
		p.onLoad(pg)
	}
	if p.shared != nil {
		p.shared.Publish(addr, pg)
	}
	return nil
}

// ReleaseStaged drops the eviction protection from every staged frame and
// returns how many were released. The frames stay resident; they are simply
// ordinary policy-evictable pages again. Callers invoke it at the cluster
// boundary to give back whatever the next cluster did not claim. In-flight
// background fetches are awaited first; one that fails even the demand
// retry is dropped with its frame and not counted — the read was speculative
// and nothing ever claimed it, so its failure is not a join error.
func (p *Pool) ReleaseStaged() int {
	// Collect from the order list, not the frames map: resolution can drop a
	// failed frame mid-walk, and the list walk keeps the release order
	// deterministic (recency order) besides.
	var staged []disk.PageAddr
	for e := p.order.Front(); e != nil; e = e.Next() {
		addr := e.Value.(disk.PageAddr)
		if p.frames[addr].staged {
			staged = append(staged, addr)
		}
	}
	n := 0
	for _, addr := range staged {
		f, ok := p.frames[addr]
		if !ok {
			continue
		}
		if f.pending != nil {
			if err := p.resolvePending(addr, f); err != nil {
				continue
			}
		}
		f.staged = false
		n++
	}
	return n
}

// Staged returns the number of currently staged frames.
func (p *Pool) Staged() int {
	n := 0
	for _, f := range p.frames {
		if f.staged {
			n++
		}
	}
	return n
}

// victim returns the next evictable frame's list element per the policy, or
// nil when every resident frame is pinned or staged.
func (p *Pool) victim() *list.Element {
	for e := p.order.Front(); e != nil; e = e.Next() {
		if f := p.frames[e.Value.(disk.PageAddr)]; f.pinned == 0 && !f.staged {
			return e
		}
	}
	return nil
}

// removeFrame drops the frame behind e from the pool, charging one eviction
// and notifying the observer.
func (p *Pool) removeFrame(e *list.Element) {
	addr := e.Value.(disk.PageAddr)
	p.order.Remove(e)
	delete(p.frames, addr)
	p.stats.Evictions++
	if p.onEvict != nil {
		p.onEvict(addr)
	}
}

// Resident returns the addresses of all resident pages in eviction order
// (front first). Intended for tests.
func (p *Pool) Resident() []disk.PageAddr {
	out := make([]disk.PageAddr, 0, len(p.frames))
	for e := p.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(disk.PageAddr))
	}
	return out
}
