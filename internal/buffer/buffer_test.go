package buffer

import (
	"errors"
	"math/rand"
	"testing"

	"pmjoin/internal/disk"
)

func newDiskWithFile(t *testing.T, pages int) (*disk.Disk, disk.FileID) {
	t.Helper()
	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	for i := 0; i < pages; i++ {
		if _, err := d.AppendPage(f, i); err != nil {
			t.Fatal(err)
		}
	}
	return d, f
}

func TestNewPoolRejectsZeroCapacity(t *testing.T) {
	d := disk.New(disk.DefaultModel())
	if _, err := NewPool(d, 0, LRU); err == nil {
		t.Fatal("expected error")
	}
}

func TestGetMissThenHit(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, LRU)
	addr := disk.PageAddr{File: f, Page: 0}
	pg, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Payload != 0 {
		t.Fatalf("payload = %v", pg.Payload)
	}
	if _, err := p.Get(addr); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if d.Stats().Reads != 1 {
		t.Fatalf("disk reads = %d, want 1", d.Stats().Reads)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	a2 := disk.PageAddr{File: f, Page: 2}
	p.Get(a0)
	p.Get(a1)
	p.Get(a0) // touch a0: a1 is now LRU
	p.Get(a2) // must evict a1
	if !p.Contains(a0) || p.Contains(a1) || !p.Contains(a2) {
		t.Fatalf("resident = %v", p.Resident())
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, FIFO)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	a2 := disk.PageAddr{File: f, Page: 2}
	p.Get(a0)
	p.Get(a1)
	p.Get(a0) // touching must NOT matter under FIFO
	p.Get(a2) // must evict a0 (oldest)
	if p.Contains(a0) || !p.Contains(a1) || !p.Contains(a2) {
		t.Fatalf("resident = %v", p.Resident())
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	if _, err := p.GetPinned(a0); err != nil {
		t.Fatal(err)
	}
	p.Get(disk.PageAddr{File: f, Page: 1})
	p.Get(disk.PageAddr{File: f, Page: 2}) // must evict page 1, not pinned page 0
	if !p.Contains(a0) {
		t.Fatal("pinned page was evicted")
	}
}

func TestAllPinnedOverflow(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	p.GetPinned(disk.PageAddr{File: f, Page: 0})
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	_, err := p.Get(disk.PageAddr{File: f, Page: 2})
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
}

func TestUnpinAllowsEviction(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(a0)
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	if err := p.Unpin(a0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatalf("get after unpin: %v", err)
	}
	if p.Contains(a0) {
		t.Fatal("unpinned page should have been the victim")
	}
}

func TestDoublePinNeedsDoubleUnpin(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(a0)
	p.GetPinned(a0)
	p.Unpin(a0)
	p.Get(disk.PageAddr{File: f, Page: 1})
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(a0) {
		t.Fatal("page with remaining pin was evicted")
	}
}

func TestUnpinErrors(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	if err := p.Unpin(a0); err == nil {
		t.Fatal("unpin of non-resident page must fail")
	}
	p.Get(a0)
	if err := p.Unpin(a0); err == nil {
		t.Fatal("unpin of unpinned page must fail")
	}
}

func TestUnpinAll(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 3, LRU)
	p.GetPinned(disk.PageAddr{File: f, Page: 0})
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	p.UnpinAll()
	p.Get(disk.PageAddr{File: f, Page: 2})
	if _, err := p.Get(disk.PageAddr{File: f, Page: 3}); err != nil {
		t.Fatalf("eviction after UnpinAll failed: %v", err)
	}
}

func TestEvictSpecificPage(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 3, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.Get(a0)
	if !p.Evict(a0) {
		t.Fatal("evict of resident unpinned page failed")
	}
	if p.Evict(a0) {
		t.Fatal("evict of absent page succeeded")
	}
	p.GetPinned(a0)
	if p.Evict(a0) {
		t.Fatal("evict of pinned page succeeded")
	}
}

func TestFlushEmptiesPool(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 3, LRU)
	for i := 0; i < 3; i++ {
		p.Get(disk.PageAddr{File: f, Page: i})
	}
	p.Flush()
	if p.Len() != 0 {
		t.Fatalf("len = %d after flush", p.Len())
	}
	if p.Stats().Evictions != 3 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %g", s.HitRatio())
	}
}

func TestResetStats(t *testing.T) {
	d, f := newDiskWithFile(t, 2)
	p, _ := NewPool(d, 2, LRU)
	p.Get(disk.PageAddr{File: f, Page: 0})
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats = %+v", s)
	}
	if !p.Contains(disk.PageAddr{File: f, Page: 0}) {
		t.Fatal("reset must not drop resident pages")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy name empty")
	}
}

// TestLRUMatchesReferenceModel drives the pool with a random access pattern
// and cross-checks residency and miss counts against a simple reference LRU.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const pages = 32
	const capacity = 8
	const accesses = 5000
	d, f := newDiskWithFile(t, pages)
	p, _ := NewPool(d, capacity, LRU)
	rng := rand.New(rand.NewSource(7))

	// Reference: slice ordered least- to most-recently used.
	var ref []int
	misses := 0
	for i := 0; i < accesses; i++ {
		pg := rng.Intn(pages)
		if _, err := p.Get(disk.PageAddr{File: f, Page: pg}); err != nil {
			t.Fatal(err)
		}
		found := -1
		for k, v := range ref {
			if v == pg {
				found = k
				break
			}
		}
		if found >= 0 {
			ref = append(ref[:found], ref[found+1:]...)
		} else {
			misses++
			if len(ref) == capacity {
				ref = ref[1:]
			}
		}
		ref = append(ref, pg)

		if int64(misses) != p.Stats().Misses {
			t.Fatalf("access %d: misses %d, reference %d", i, p.Stats().Misses, misses)
		}
	}
	// Final residency must match exactly, in order.
	got := p.Resident()
	if len(got) != len(ref) {
		t.Fatalf("resident %d pages, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Page != ref[i] {
			t.Fatalf("resident[%d] = %v, reference %d", i, got[i], ref[i])
		}
	}
}

// TestPoolNeverExceedsCapacity fuzzes mixed pin/unpin/get traffic.
func TestPoolNeverExceedsCapacity(t *testing.T) {
	const pages = 64
	d, f := newDiskWithFile(t, pages)
	for _, capacity := range []int{1, 3, 8} {
		p, _ := NewPool(d, capacity, LRU)
		rng := rand.New(rand.NewSource(int64(capacity)))
		pinned := map[int]int{}
		for i := 0; i < 2000; i++ {
			pg := rng.Intn(pages)
			switch rng.Intn(4) {
			case 0:
				if len(pinned) < capacity {
					if _, err := p.GetPinned(disk.PageAddr{File: f, Page: pg}); err != nil {
						t.Fatal(err)
					}
					pinned[pg]++
				}
			case 1:
				if pinned[pg] > 0 {
					if err := p.Unpin(disk.PageAddr{File: f, Page: pg}); err != nil {
						t.Fatal(err)
					}
					pinned[pg]--
					if pinned[pg] == 0 {
						delete(pinned, pg)
					}
				}
			default:
				_, err := p.Get(disk.PageAddr{File: f, Page: pg})
				if err != nil && !errors.Is(err, ErrBufferFull) {
					t.Fatal(err)
				}
			}
			if p.Len() > capacity {
				t.Fatalf("pool holds %d pages, capacity %d", p.Len(), capacity)
			}
		}
	}
}
