package buffer

import (
	"errors"
	"math/rand"
	"testing"

	"pmjoin/internal/disk"
)

func newDiskWithFile(t *testing.T, pages int) (*disk.Disk, disk.FileID) {
	t.Helper()
	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	for i := 0; i < pages; i++ {
		if _, err := d.AppendPage(f, i); err != nil {
			t.Fatal(err)
		}
	}
	return d, f
}

func TestNewPoolRejectsZeroCapacity(t *testing.T) {
	d := disk.New(disk.DefaultModel())
	if _, err := NewPool(d, 0, LRU); err == nil {
		t.Fatal("expected error")
	}
}

func TestGetMissThenHit(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, LRU)
	addr := disk.PageAddr{File: f, Page: 0}
	pg, err := p.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Payload != 0 {
		t.Fatalf("payload = %v", pg.Payload)
	}
	if _, err := p.Get(addr); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if d.Stats().Reads != 1 {
		t.Fatalf("disk reads = %d, want 1", d.Stats().Reads)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	a2 := disk.PageAddr{File: f, Page: 2}
	p.Get(a0)
	p.Get(a1)
	p.Get(a0) // touch a0: a1 is now LRU
	p.Get(a2) // must evict a1
	if !p.Contains(a0) || p.Contains(a1) || !p.Contains(a2) {
		t.Fatalf("resident = %v", p.Resident())
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, FIFO)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	a2 := disk.PageAddr{File: f, Page: 2}
	p.Get(a0)
	p.Get(a1)
	p.Get(a0) // touching must NOT matter under FIFO
	p.Get(a2) // must evict a0 (oldest)
	if p.Contains(a0) || !p.Contains(a1) || !p.Contains(a2) {
		t.Fatalf("resident = %v", p.Resident())
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	if _, err := p.GetPinned(a0); err != nil {
		t.Fatal(err)
	}
	p.Get(disk.PageAddr{File: f, Page: 1})
	p.Get(disk.PageAddr{File: f, Page: 2}) // must evict page 1, not pinned page 0
	if !p.Contains(a0) {
		t.Fatal("pinned page was evicted")
	}
}

func TestAllPinnedOverflow(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	p.GetPinned(disk.PageAddr{File: f, Page: 0})
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	_, err := p.Get(disk.PageAddr{File: f, Page: 2})
	if !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
}

func TestUnpinAllowsEviction(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(a0)
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	if err := p.Unpin(a0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatalf("get after unpin: %v", err)
	}
	if p.Contains(a0) {
		t.Fatal("unpinned page should have been the victim")
	}
}

func TestDoublePinNeedsDoubleUnpin(t *testing.T) {
	d, f := newDiskWithFile(t, 5)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(a0)
	p.GetPinned(a0)
	p.Unpin(a0)
	p.Get(disk.PageAddr{File: f, Page: 1})
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(a0) {
		t.Fatal("page with remaining pin was evicted")
	}
}

func TestUnpinErrors(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 2, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	if err := p.Unpin(a0); err == nil {
		t.Fatal("unpin of non-resident page must fail")
	}
	p.Get(a0)
	if err := p.Unpin(a0); err == nil {
		t.Fatal("unpin of unpinned page must fail")
	}
}

func TestUnpinAll(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 3, LRU)
	p.GetPinned(disk.PageAddr{File: f, Page: 0})
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	p.UnpinAll()
	p.Get(disk.PageAddr{File: f, Page: 2})
	if _, err := p.Get(disk.PageAddr{File: f, Page: 3}); err != nil {
		t.Fatalf("eviction after UnpinAll failed: %v", err)
	}
}

func TestEvictSpecificPage(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 3, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.Get(a0)
	if !p.Evict(a0) {
		t.Fatal("evict of resident unpinned page failed")
	}
	if p.Evict(a0) {
		t.Fatal("evict of absent page succeeded")
	}
	p.GetPinned(a0)
	if p.Evict(a0) {
		t.Fatal("evict of pinned page succeeded")
	}
}

func TestFlushEmptiesPool(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 3, LRU)
	for i := 0; i < 3; i++ {
		p.Get(disk.PageAddr{File: f, Page: i})
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush of unpinned pool: %v", err)
	}
	if p.Len() != 0 {
		t.Fatalf("len = %d after flush", p.Len())
	}
	if p.Stats().Evictions != 3 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio = %g", s.HitRatio())
	}
}

func TestResetStats(t *testing.T) {
	d, f := newDiskWithFile(t, 2)
	p, _ := NewPool(d, 2, LRU)
	p.Get(disk.PageAddr{File: f, Page: 0})
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats = %+v", s)
	}
	if !p.Contains(disk.PageAddr{File: f, Page: 0}) {
		t.Fatal("reset must not drop resident pages")
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy name empty")
	}
}

// TestLRUMatchesReferenceModel drives the pool with a random access pattern
// and cross-checks residency and miss counts against a simple reference LRU.
func TestLRUMatchesReferenceModel(t *testing.T) {
	const pages = 32
	const capacity = 8
	const accesses = 5000
	d, f := newDiskWithFile(t, pages)
	p, _ := NewPool(d, capacity, LRU)
	rng := rand.New(rand.NewSource(7))

	// Reference: slice ordered least- to most-recently used.
	var ref []int
	misses := 0
	for i := 0; i < accesses; i++ {
		pg := rng.Intn(pages)
		if _, err := p.Get(disk.PageAddr{File: f, Page: pg}); err != nil {
			t.Fatal(err)
		}
		found := -1
		for k, v := range ref {
			if v == pg {
				found = k
				break
			}
		}
		if found >= 0 {
			ref = append(ref[:found], ref[found+1:]...)
		} else {
			misses++
			if len(ref) == capacity {
				ref = ref[1:]
			}
		}
		ref = append(ref, pg)

		if int64(misses) != p.Stats().Misses {
			t.Fatalf("access %d: misses %d, reference %d", i, p.Stats().Misses, misses)
		}
	}
	// Final residency must match exactly, in order.
	got := p.Resident()
	if len(got) != len(ref) {
		t.Fatalf("resident %d pages, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Page != ref[i] {
			t.Fatalf("resident[%d] = %v, reference %d", i, got[i], ref[i])
		}
	}
}

// TestPoolNeverExceedsCapacity fuzzes mixed pin/unpin/get traffic.
func TestPoolNeverExceedsCapacity(t *testing.T) {
	const pages = 64
	d, f := newDiskWithFile(t, pages)
	for _, capacity := range []int{1, 3, 8} {
		p, _ := NewPool(d, capacity, LRU)
		rng := rand.New(rand.NewSource(int64(capacity)))
		pinned := map[int]int{}
		for i := 0; i < 2000; i++ {
			pg := rng.Intn(pages)
			switch rng.Intn(4) {
			case 0:
				if len(pinned) < capacity {
					if _, err := p.GetPinned(disk.PageAddr{File: f, Page: pg}); err != nil {
						t.Fatal(err)
					}
					pinned[pg]++
				}
			case 1:
				if pinned[pg] > 0 {
					if err := p.Unpin(disk.PageAddr{File: f, Page: pg}); err != nil {
						t.Fatal(err)
					}
					pinned[pg]--
					if pinned[pg] == 0 {
						delete(pinned, pg)
					}
				}
			default:
				_, err := p.Get(disk.PageAddr{File: f, Page: pg})
				if err != nil && !errors.Is(err, ErrBufferFull) {
					t.Fatal(err)
				}
			}
			if p.Len() > capacity {
				t.Fatalf("pool holds %d pages, capacity %d", p.Len(), capacity)
			}
		}
	}
}

// failingSource fails reads of one address and delegates the rest.
type failingSource struct {
	d    Source
	fail disk.PageAddr
}

var errInjected = errors.New("injected read failure")

func (s failingSource) Read(a disk.PageAddr) (*disk.Page, error) {
	if a == s.fail {
		return nil, errInjected
	}
	return s.d.Read(a)
}

// Regression for the read-before-evict bug: a miss whose Source.Read fails
// must leave the pool exactly as it was — no resident page dropped, no
// eviction charged for I/O that never happened.
func TestFailedReadDoesNotEvict(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	bad := disk.PageAddr{File: f, Page: 99} // does not exist on disk
	p, err := NewPool(failingSource{d: d, fail: bad}, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	p.Get(a0)
	p.Get(a1) // pool now full
	if _, err := p.Get(bad); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if !p.Contains(a0) || !p.Contains(a1) {
		t.Fatalf("resident set damaged by failed read: %v", p.Resident())
	}
	if ev := p.Stats().Evictions; ev != 0 {
		t.Fatalf("evictions = %d after failed read, want 0", ev)
	}
	// The pool must still work: a successful miss now evicts normally.
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatalf("recovery get: %v", err)
	}
	if ev := p.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d after recovery get, want 1", ev)
	}
}

// A fully pinned pool must reject a miss with ErrBufferFull before touching
// the disk: no read may be charged for a page that cannot be cached.
func TestFullyPinnedMissChargesNoRead(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 2, LRU)
	p.GetPinned(disk.PageAddr{File: f, Page: 0})
	p.GetPinned(disk.PageAddr{File: f, Page: 1})
	before := d.Stats().Reads
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	if after := d.Stats().Reads; after != before {
		t.Fatalf("reads %d -> %d across ErrBufferFull miss", before, after)
	}
}

// Regression for the Flush pin bug: pinned frames must survive a Flush and
// be reported, instead of being silently discarded.
func TestFlushKeepsPinnedFrames(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 3, LRU)
	pinned := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(pinned)
	p.Get(disk.PageAddr{File: f, Page: 1})
	p.Get(disk.PageAddr{File: f, Page: 2})
	err := p.Flush()
	if err == nil {
		t.Fatal("flush with a pinned frame must return an error")
	}
	if !p.Contains(pinned) {
		t.Fatal("pinned frame discarded by Flush")
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d after flush, want 1 (the pinned frame)", p.Len())
	}
	if ev := p.Stats().Evictions; ev != 2 {
		t.Fatalf("evictions = %d, want 2 (only unpinned frames)", ev)
	}
	// The surviving pin still unpins cleanly — the ledger is intact.
	if err := p.Unpin(pinned); err != nil {
		t.Fatalf("unpin after flush: %v", err)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush after unpin: %v", err)
	}
}

// FIFO must evict in arrival order regardless of hits: a hit must not
// refresh the victim ordering the way LRU's MoveToBack does.
func TestFIFOHitDoesNotRefresh(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 2, FIFO)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	p.Get(a0)
	p.Get(a1)
	p.Get(a0) // hit; under LRU this would move a0 behind a1
	p.Get(disk.PageAddr{File: f, Page: 2})
	if p.Contains(a0) {
		t.Fatal("FIFO evicted the newer page instead of the oldest")
	}
	if !p.Contains(a1) {
		t.Fatal("FIFO dropped the wrong frame")
	}

	// Same access pattern under LRU evicts a1: the policies must diverge.
	q, _ := NewPool(d, 2, LRU)
	q.Get(a0)
	q.Get(a1)
	q.Get(a0)
	q.Get(disk.PageAddr{File: f, Page: 2})
	if !q.Contains(a0) || q.Contains(a1) {
		t.Fatal("LRU did not refresh the hit page")
	}
}

// Eviction must skip pinned frames (oldest first) and only fail with
// ErrBufferFull once every frame is pinned.
func TestEvictionSkipsPinnedFrames(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 3, LRU)
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	a2 := disk.PageAddr{File: f, Page: 2}
	p.GetPinned(a0) // eviction-order front, but pinned
	p.GetPinned(a1)
	p.Get(a2)
	if _, err := p.Get(disk.PageAddr{File: f, Page: 3}); err != nil {
		t.Fatalf("get: %v", err)
	}
	if p.Contains(a2) {
		t.Fatal("eviction took a pinned-adjacent page instead of the unpinned one")
	}
	if !p.Contains(a0) || !p.Contains(a1) {
		t.Fatal("eviction removed a pinned frame")
	}
	// Now all three frames are pinned or freshly read; pin the newcomer too
	// and the next miss must fail.
	p.GetPinned(disk.PageAddr{File: f, Page: 3})
	p.GetPinned(a0) // second pin on a0, exercises pinned>1
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
}

// The eviction observer must see every frame leaving the pool, in
// deterministic eviction order.
func TestOnEvictObserver(t *testing.T) {
	d, f := newDiskWithFile(t, 3)
	p, _ := NewPool(d, 2, LRU)
	var seen []disk.PageAddr
	p.SetOnEvict(func(a disk.PageAddr) { seen = append(seen, a) })
	a0 := disk.PageAddr{File: f, Page: 0}
	a1 := disk.PageAddr{File: f, Page: 1}
	p.Get(a0)
	p.Get(a1)
	p.Get(disk.PageAddr{File: f, Page: 2}) // evicts a0
	p.Evict(a1)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	want := []disk.PageAddr{a0, a1, {File: f, Page: 2}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("observer saw %v, want %v", seen, want)
		}
	}
}

// The wait-free miss path must not regress: a full pool with only the front
// frame pinned still evicts in one pass.
func TestVictimSkipsFrontPin(t *testing.T) {
	d, f := newDiskWithFile(t, 4)
	p, _ := NewPool(d, 2, FIFO)
	a0 := disk.PageAddr{File: f, Page: 0}
	p.GetPinned(a0)
	p.Get(disk.PageAddr{File: f, Page: 1})
	if _, err := p.Get(disk.PageAddr{File: f, Page: 2}); err != nil {
		t.Fatalf("get: %v", err)
	}
	if !p.Contains(a0) {
		t.Fatal("pinned front frame evicted")
	}
}
