package buffer

import (
	"errors"
	"testing"

	"pmjoin/internal/disk"
)

// flakyBackend is a disk.Backend whose Fetch fails a configured number of
// times per address before serving — the fault injector for the async
// prefetch error paths.
type flakyBackend struct {
	payloads map[disk.PageAddr]any
	failures map[disk.PageAddr]int
	fetches  int
}

var errInjectedFetch = errors.New("injected read failure")

func (b *flakyBackend) Fetch(addr disk.PageAddr) (any, float64, error) {
	b.fetches++
	if n := b.failures[addr]; n > 0 {
		b.failures[addr] = n - 1
		return nil, 0, errInjectedFetch
	}
	p, ok := b.payloads[addr]
	if !ok {
		return nil, 0, disk.ErrNotInBackend
	}
	return p, 1e-6, nil
}

func (b *flakyBackend) Put(addr disk.PageAddr, payload any) error {
	b.payloads[addr] = payload
	return nil
}

// asyncFixture builds a disk with one file of n int-payload pages mirrored
// into a flakyBackend, and a pool over a backend session with an inline
// (synchronous, deterministic) prefetch runner installed.
func asyncFixture(t *testing.T, n, capacity int) (*flakyBackend, *disk.Session, *Pool, []disk.PageAddr) {
	t.Helper()
	d := disk.New(disk.DefaultModel())
	fb := &flakyBackend{payloads: make(map[disk.PageAddr]any), failures: make(map[disk.PageAddr]int)}
	d.SetMirror(fb)
	f := d.CreateFile()
	addrs := make([]disk.PageAddr, n)
	for i := range addrs {
		addr, err := d.AppendPage(f, 100+i)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	sess := d.NewSessionOn(fb)
	pool, err := NewPool(sess, capacity, LRU)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetPrefetchRunner(func(fn func()) { fn() })
	return fb, sess, pool, addrs
}

func TestAsyncPrefetchServesBackendPages(t *testing.T) {
	_, sess, pool, addrs := asyncFixture(t, 3, 4)
	ok, err := pool.Prefetch(addrs[0])
	if !ok || err != nil {
		t.Fatalf("Prefetch = %v, %v", ok, err)
	}
	if pool.Staged() != 1 {
		t.Fatalf("Staged() = %d, want 1", pool.Staged())
	}
	pg, err := pool.Get(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Payload.(int); got != 100 {
		t.Errorf("Payload = %d, want 100", got)
	}
	want := Stats{Misses: 1, Prefetched: 1}
	if pool.Stats() != want {
		t.Errorf("Stats = %+v, want %+v", pool.Stats(), want)
	}
	if m := sess.Measured(); m.Reads != 1 {
		t.Errorf("Measured.Reads = %d, want 1", m.Reads)
	}
	if _, err := pool.Get(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Hits; got != 1 {
		t.Errorf("Hits after re-get = %d, want 1", got)
	}
}

// TestAsyncPrefetchFailureFallsBackToDemand pins the satellite contract: a
// failed background read is retried once through the uncharged demand path,
// serving the page with every counter intact.
func TestAsyncPrefetchFailureFallsBackToDemand(t *testing.T) {
	fb, sess, pool, addrs := asyncFixture(t, 2, 4)
	fb.failures[addrs[0]] = 1
	if ok, err := pool.Prefetch(addrs[0]); !ok || err != nil {
		t.Fatalf("Prefetch = %v, %v", ok, err)
	}
	pg, err := pool.Get(addrs[0])
	if err != nil {
		t.Fatalf("Get after failed background read: %v", err)
	}
	if got := pg.Payload.(int); got != 100 {
		t.Errorf("Payload = %d, want 100", got)
	}
	want := Stats{Misses: 1, Prefetched: 1}
	if pool.Stats() != want {
		t.Errorf("Stats = %+v, want %+v (fallback must not corrupt counters)", pool.Stats(), want)
	}
	// Only the successful refetch lands in Measured; the failed fetch does
	// not. And no extra logical charge happened: Refetch is uncharged.
	if m := sess.Measured(); m.Reads != 1 {
		t.Errorf("Measured.Reads = %d, want 1", m.Reads)
	}
	if st := sess.Stats(); st.Reads != 1 {
		t.Errorf("logical Reads = %d, want 1 (demand fallback must not re-charge)", st.Reads)
	}
	if fb.fetches != 2 {
		t.Errorf("backend fetches = %d, want 2 (failed background + demand retry)", fb.fetches)
	}
}

// TestAsyncPrefetchDoubleFailureDropsFrame: when the demand retry fails too,
// the claim surfaces the error, the staged frame is released, and the
// counters end exactly where a failed synchronous prefetch read would have
// left them (miss kept, nothing prefetched, no eviction). The pool stays
// usable for a plain demand read afterwards.
func TestAsyncPrefetchDoubleFailureDropsFrame(t *testing.T) {
	fb, _, pool, addrs := asyncFixture(t, 2, 4)
	fb.failures[addrs[0]] = 2
	if ok, err := pool.Prefetch(addrs[0]); !ok || err != nil {
		t.Fatalf("Prefetch = %v, %v", ok, err)
	}
	if _, err := pool.Get(addrs[0]); !errors.Is(err, errInjectedFetch) {
		t.Fatalf("Get err = %v, want the injected failure", err)
	}
	if pool.Contains(addrs[0]) || pool.Len() != 0 || pool.Staged() != 0 {
		t.Errorf("failed frame still resident: len=%d staged=%d", pool.Len(), pool.Staged())
	}
	want := Stats{Misses: 1}
	if pool.Stats() != want {
		t.Errorf("Stats = %+v, want %+v", pool.Stats(), want)
	}
	// Failures exhausted: a fresh demand read must succeed.
	pg, err := pool.Get(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Payload.(int); got != 100 {
		t.Errorf("Payload = %d, want 100", got)
	}
	if got := pool.Stats().Misses; got != 2 {
		t.Errorf("Misses = %d, want 2", got)
	}
}

// TestAsyncPrefetchReleaseStagedDropsFailed: an unclaimed speculative read
// that fails both attempts is silently dropped at the release boundary.
func TestAsyncPrefetchReleaseStagedDropsFailed(t *testing.T) {
	fb, _, pool, addrs := asyncFixture(t, 2, 4)
	fb.failures[addrs[0]] = 2
	if ok, err := pool.Prefetch(addrs[0]); !ok || err != nil {
		t.Fatalf("Prefetch = %v, %v", ok, err)
	}
	if ok, err := pool.Prefetch(addrs[1]); !ok || err != nil {
		t.Fatalf("Prefetch = %v, %v", ok, err)
	}
	if n := pool.ReleaseStaged(); n != 1 {
		t.Errorf("ReleaseStaged = %d, want 1 (only the healthy frame)", n)
	}
	if pool.Contains(addrs[0]) {
		t.Error("failed speculative frame still resident")
	}
	if !pool.Contains(addrs[1]) {
		t.Error("healthy released frame evicted")
	}
	want := Stats{Misses: 2, Prefetched: 1}
	if pool.Stats() != want {
		t.Errorf("Stats = %+v, want %+v", pool.Stats(), want)
	}
}

// TestAsyncPrefetchMatchesSyncExactly drives an identical access sequence
// through a synchronous pool and an async-runner pool over the same data and
// asserts the observable state — stats, eviction sequence, final residency —
// is bit-identical. This is the buffer-level slice of the backend parity
// contract.
func TestAsyncPrefetchMatchesSyncExactly(t *testing.T) {
	run := func(t *testing.T, async bool) (Stats, []disk.PageAddr, []disk.PageAddr) {
		t.Helper()
		_, _, pool, addrs := asyncFixture(t, 8, 3)
		if !async {
			pool.SetPrefetchRunner(nil)
		}
		var evicted []disk.PageAddr
		pool.SetOnEvict(func(addr disk.PageAddr) { evicted = append(evicted, addr) })
		step := func(op string, i int) {
			switch op {
			case "prefetch":
				if _, err := pool.Prefetch(addrs[i]); err != nil {
					t.Fatalf("prefetch %d: %v", i, err)
				}
			case "get":
				if _, err := pool.Get(addrs[i]); err != nil {
					t.Fatalf("get %d: %v", i, err)
				}
			case "release":
				pool.ReleaseStaged()
			}
		}
		for _, s := range []struct {
			op string
			i  int
		}{
			{"prefetch", 0}, {"prefetch", 1}, {"get", 0}, {"get", 1},
			{"prefetch", 2}, {"prefetch", 3}, {"get", 3}, {"release", 0},
			{"get", 4}, {"get", 5}, {"prefetch", 6}, {"get", 6},
			{"get", 0}, {"release", 0}, {"get", 7},
		} {
			step(s.op, s.i)
		}
		return pool.Stats(), evicted, pool.Resident()
	}
	syncStats, syncEvicted, syncResident := run(t, false)
	asyncStats, asyncEvicted, asyncResident := run(t, true)
	if syncStats != asyncStats {
		t.Errorf("stats diverge: sync %+v, async %+v", syncStats, asyncStats)
	}
	if len(syncEvicted) != len(asyncEvicted) {
		t.Fatalf("eviction counts diverge: sync %v, async %v", syncEvicted, asyncEvicted)
	}
	for i := range syncEvicted {
		if syncEvicted[i] != asyncEvicted[i] {
			t.Errorf("eviction[%d]: sync %v, async %v", i, syncEvicted[i], asyncEvicted[i])
		}
	}
	if len(syncResident) != len(asyncResident) {
		t.Fatalf("residency diverges: sync %v, async %v", syncResident, asyncResident)
	}
	for i := range syncResident {
		if syncResident[i] != asyncResident[i] {
			t.Errorf("resident[%d]: sync %v, async %v", i, syncResident[i], asyncResident[i])
		}
	}
}
