package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"pmjoin/internal/disk"
)

// SharedStats counts activity across every lock shard of a SharedPool.
type SharedStats struct {
	// Hits counts lookups that found the frame resident; Misses the rest.
	Hits   int64
	Misses int64
	// Published counts frames admitted into the pool.
	Published int64
	// Evictions counts frames displaced to make room.
	Evictions int64
	// OverCapacity counts admissions that found every evictable frame pinned
	// and grew past the shard's budget rather than drop a pinned frame (see
	// Publish). Bounded by the admission controller's frame budget.
	OverCapacity int64
	// Resident and Pinned are point-in-time gauges: frames currently held
	// and frames currently pinned by at least one run.
	Resident int64
	Pinned   int64
}

// sharedFrame is one resident page in a SharedPool shard, with the
// cross-run pin count that protects it from eviction.
type sharedFrame struct {
	page *disk.Page
	pins int
	elem *list.Element
}

// sharedShard is one lock shard: a mutex, its slice of the frame budget, and
// an LRU order over its frames.
type sharedShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[disk.PageAddr]*sharedFrame
	order    *list.List // front = next eviction victim
	stats    SharedStats
}

// SharedPool is a concurrent page-frame cache shared across in-flight runs:
// the hot shared state a long-lived join service keeps between requests,
// where a per-run Pool is private and dies with its run. Frames are spread
// over power-of-two lock shards (per-shard mutexed frame maps with per-shard
// LRU), so concurrent runs contend only when they touch the same shard.
//
// Accounting contract: a SharedPool is OBSERVATIONAL with respect to the
// determinism contract. A run's Pool consults it on every miss and publishes
// what it reads, but the run still charges its private disk session exactly
// as a solo run would — per-request Reports stay pure functions of the
// request (see Pool.AttachShared). What the shared pool eliminates is
// duplicated work outside the simulated account: page-payload
// materialization and per-page derived state (flat kernel blocks) are built
// once per shared residency instead of once per request, and under a future
// physical-disk backend the Lookup hit is where the real read would be
// skipped. SharedStats records the cross-request reuse.
//
// Pinned-frame safety: Pin marks a frame in use by some run; pinned frames
// are never evicted. When every evictable frame of a shard is pinned, Publish
// admits past the shard budget (counted as OverCapacity) rather than drop a
// pinned frame — the admission controller bounds total pins, which bounds the
// overflow.
type SharedPool struct {
	shards []sharedShard
	mask   uint64
}

// NewShared creates a shared pool of capacity frames spread over lockShards
// lock shards (rounded up to a power of two; <= 0 selects 16). Capacity must
// cover at least one frame per shard.
func NewShared(capacity, lockShards int) (*SharedPool, error) {
	if lockShards <= 0 {
		lockShards = 16
	}
	n := 1
	for n < lockShards {
		n <<= 1
	}
	if capacity < n {
		return nil, fmt.Errorf("buffer: shared capacity %d < %d lock shards", capacity, n)
	}
	sp := &SharedPool{shards: make([]sharedShard, n), mask: uint64(n - 1)}
	for i := range sp.shards {
		// Spread the budget; earlier shards absorb the remainder.
		per := capacity / n
		if i < capacity%n {
			per++
		}
		sp.shards[i].capacity = per
		sp.shards[i].frames = make(map[disk.PageAddr]*sharedFrame, per)
		sp.shards[i].order = list.New()
	}
	return sp, nil
}

// Capacity returns the total frame budget.
func (sp *SharedPool) Capacity() int {
	total := 0
	for i := range sp.shards {
		total += sp.shards[i].capacity
	}
	return total
}

// shard maps an address to its lock shard (Fibonacci hashing over the
// file/page pair).
func (sp *SharedPool) shard(addr disk.PageAddr) *sharedShard {
	h := uint64(addr.File)*0x9E3779B97F4A7C15 + uint64(addr.Page)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &sp.shards[h&sp.mask]
}

// Lookup returns the resident page for addr, bumping its recency. A hit or
// miss is counted either way.
func (sp *SharedPool) Lookup(addr disk.PageAddr) (*disk.Page, bool) {
	s := sp.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[addr]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.order.MoveToBack(f.elem)
	return f.page, true
}

// Publish admits the page into the pool (a no-op if already resident),
// evicting the shard's least recently used unpinned frame when the shard is
// at capacity. When every frame is pinned the admission proceeds past the
// budget instead of dropping a pinned frame (counted as OverCapacity).
func (sp *SharedPool) Publish(addr disk.PageAddr, pg *disk.Page) {
	s := sp.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishLocked(addr, pg)
}

// publishLocked inserts a frame (or bumps it, if resident) with the shard
// lock held and returns it.
func (s *sharedShard) publishLocked(addr disk.PageAddr, pg *disk.Page) *sharedFrame {
	if f, ok := s.frames[addr]; ok {
		s.order.MoveToBack(f.elem)
		return f
	}
	if len(s.frames) >= s.capacity {
		if !s.evictLocked() {
			s.stats.OverCapacity++
		}
	}
	f := &sharedFrame{page: pg}
	f.elem = s.order.PushBack(addr)
	s.frames[addr] = f
	s.stats.Published++
	return f
}

// evictLocked removes the shard's LRU unpinned frame, reporting whether one
// existed. Caller holds the shard lock.
func (s *sharedShard) evictLocked() bool {
	for e := s.order.Front(); e != nil; e = e.Next() {
		addr := e.Value.(disk.PageAddr)
		if s.frames[addr].pins > 0 {
			continue
		}
		s.order.Remove(e)
		delete(s.frames, addr)
		s.stats.Evictions++
		return true
	}
	return false
}

// Pin marks the frame in use by a run, protecting it from eviction; the page
// is admitted first if not resident (so a pin ledger entry always has a
// frame). Every Pin must be balanced by an Unpin.
func (sp *SharedPool) Pin(addr disk.PageAddr, pg *disk.Page) {
	s := sp.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.publishLocked(addr, pg)
	f.pins++
}

// Unpin releases n pins on the frame. Unpinning a non-resident frame is a
// no-op (the pool never evicts pinned frames, so the entry exists unless the
// caller's ledger is off — Pool.Detach reconciles defensively).
func (sp *SharedPool) Unpin(addr disk.PageAddr, n int) {
	s := sp.shard(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frames[addr]; ok {
		f.pins -= n
		if f.pins < 0 {
			f.pins = 0
		}
	}
}

// Stats returns the aggregated counters plus point-in-time residency gauges.
func (sp *SharedPool) Stats() SharedStats {
	var out SharedStats
	for i := range sp.shards {
		s := &sp.shards[i]
		s.mu.Lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Published += s.stats.Published
		out.Evictions += s.stats.Evictions
		out.OverCapacity += s.stats.OverCapacity
		out.Resident += int64(len(s.frames))
		for _, f := range s.frames {
			if f.pins > 0 {
				out.Pinned++
			}
		}
		s.mu.Unlock()
	}
	return out
}
