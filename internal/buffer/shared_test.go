package buffer

import (
	"sync"
	"testing"

	"pmjoin/internal/disk"
)

func TestNewSharedValidation(t *testing.T) {
	if _, err := NewShared(3, 4); err == nil {
		t.Fatal("capacity below shard count must error")
	}
	sp, err := NewShared(100, 5) // rounds shards up to 8
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Capacity(); got != 100 {
		t.Fatalf("capacity = %d, want 100 (budget must spread without loss)", got)
	}
	if len(sp.shards) != 8 {
		t.Fatalf("shards = %d, want next power of two 8", len(sp.shards))
	}
}

func TestSharedLookupPublish(t *testing.T) {
	sp, _ := NewShared(64, 4)
	addr := disk.PageAddr{File: 1, Page: 7}
	if _, ok := sp.Lookup(addr); ok {
		t.Fatal("lookup before publish hit")
	}
	pg := &disk.Page{Addr: addr}
	sp.Publish(addr, pg)
	got, ok := sp.Lookup(addr)
	if !ok || got != pg {
		t.Fatalf("lookup after publish: %v %v", got, ok)
	}
	st := sp.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Published != 1 || st.Resident != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Republish is a no-op, not a duplicate admission.
	sp.Publish(addr, pg)
	if st := sp.Stats(); st.Published != 1 || st.Resident != 1 {
		t.Fatalf("republished: %+v", st)
	}
}

// TestSharedPinnedNeverEvicted fills one lock shard past its budget with
// pinned frames and asserts none are dropped: admissions go over capacity
// instead, and eviction resumes once pins release.
func TestSharedPinnedNeverEvicted(t *testing.T) {
	sp, _ := NewShared(4, 1) // one shard, 4 frames
	addrs := make([]disk.PageAddr, 6)
	for i := range addrs {
		addrs[i] = disk.PageAddr{File: 1, Page: i}
		sp.Pin(addrs[i], &disk.Page{Addr: addrs[i]})
	}
	st := sp.Stats()
	if st.Resident != 6 || st.Pinned != 6 {
		t.Fatalf("pinned residency: %+v", st)
	}
	if st.OverCapacity != 2 || st.Evictions != 0 {
		t.Fatalf("over-capacity accounting: %+v", st)
	}
	for _, a := range addrs {
		if _, ok := sp.Lookup(a); !ok {
			t.Fatalf("pinned frame %v evicted", a)
		}
	}
	// Release every pin: the next admission evicts normally again.
	for _, a := range addrs {
		sp.Unpin(a, 1)
	}
	extra := disk.PageAddr{File: 1, Page: 99}
	sp.Publish(extra, &disk.Page{Addr: extra})
	st = sp.Stats()
	if st.Evictions != 1 || st.Pinned != 0 {
		t.Fatalf("post-release eviction: %+v", st)
	}
}

func TestSharedLRUWithinShard(t *testing.T) {
	sp, _ := NewShared(2, 1)
	a0 := disk.PageAddr{File: 1, Page: 0}
	a1 := disk.PageAddr{File: 1, Page: 1}
	a2 := disk.PageAddr{File: 1, Page: 2}
	sp.Publish(a0, &disk.Page{Addr: a0})
	sp.Publish(a1, &disk.Page{Addr: a1})
	sp.Lookup(a0) // a1 becomes LRU
	sp.Publish(a2, &disk.Page{Addr: a2})
	if _, ok := sp.Lookup(a1); ok {
		t.Fatal("LRU frame survived")
	}
	if _, ok := sp.Lookup(a0); !ok {
		t.Fatal("recently used frame evicted")
	}
}

func TestSharedUnpinNonResident(t *testing.T) {
	sp, _ := NewShared(16, 2)
	// Must not panic or corrupt state.
	sp.Unpin(disk.PageAddr{File: 9, Page: 9}, 3)
	if st := sp.Stats(); st.Resident != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSharedConcurrent hammers one pool from many goroutines under -race:
// mixed pin/publish/lookup/unpin traffic over a small capacity, then checks
// the ledger drains to zero pins and residency within capacity plus the
// over-capacity overflow.
func TestSharedConcurrent(t *testing.T) {
	sp, _ := NewShared(32, 4)
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				addr := disk.PageAddr{File: disk.FileID(g % 3), Page: i % 64}
				switch i % 4 {
				case 0:
					sp.Pin(addr, &disk.Page{Addr: addr})
					sp.Unpin(addr, 1)
				case 1:
					sp.Publish(addr, &disk.Page{Addr: addr})
				case 2:
					sp.Lookup(addr)
				case 3:
					sp.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := sp.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if st.Resident > 32+st.OverCapacity {
		t.Fatalf("residency exceeds budget: %+v", st)
	}
}

// TestPoolSharedMirroring drives a regular per-run Pool with a shared pool
// attached and checks (a) the run's private Stats and the disk charges are
// identical to a run without the shared pool except for the SharedHits
// counter, and (b) Detach releases every mirrored pin.
func TestPoolSharedMirroring(t *testing.T) {
	run := func(sp *SharedPool) (Stats, disk.Stats) {
		d, f := newDiskWithFile(t, 8)
		p, _ := NewPool(d, 4, LRU)
		if sp != nil {
			p.AttachShared(sp)
		}
		for i := 0; i < 8; i++ {
			if _, err := p.GetPinned(disk.PageAddr{File: f, Page: i % 6}); err != nil {
				t.Fatal(err)
			}
			if i%2 == 1 {
				p.UnpinAll()
			}
		}
		p.UnpinAll()
		if sp != nil {
			p.Detach()
		}
		return p.Stats(), d.Stats()
	}

	solo, soloDisk := run(nil)
	sp, _ := NewShared(64, 4)
	warm, warmDisk := run(sp) // second run on a fresh disk, warm shared pool

	// The private accounting must match bit for bit apart from SharedHits.
	warmCmp := warm
	warmCmp.SharedHits = solo.SharedHits
	if warmCmp != solo {
		t.Fatalf("private stats diverged:\nsolo %+v\nwith shared %+v", solo, warm)
	}
	if soloDisk.Reads != warmDisk.Reads || soloDisk.Seeks != warmDisk.Seeks {
		t.Fatalf("disk charges diverged: solo %+v shared %+v", soloDisk, warmDisk)
	}
	if st := sp.Stats(); st.Pinned != 0 {
		t.Fatalf("detach leaked pins: %+v", st)
	}

	// A third run over the now-warm shared pool must observe cross-run reuse.
	third, _ := run(sp)
	if third.SharedHits == 0 {
		t.Fatal("warm shared pool produced no shared hits")
	}
}
