package joinsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pmjoin"
)

func newTestService(t *testing.T) *Service {
	t.Helper()
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 256})
	srv, err := pmjoin.NewServer(sys, pmjoin.ServeOptions{SharedFrames: 256, PoolShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return New(srv)
}

func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

func TestOpenJoinRoundTrip(t *testing.T) {
	svc := newTestService(t)
	h := svc.Handler()

	for _, open := range []OpenRequest{
		{Name: "a", Kind: pmjoin.KindVector, N: 200, Seed: 1},
		{Name: "b", Kind: pmjoin.KindVector, N: 150, Seed: 2},
	} {
		w := post(t, h, "/open", open)
		if w.Code != http.StatusOK {
			t.Fatalf("open %s: %d %s", open.Name, w.Code, w.Body.String())
		}
		resp := decode[OpenResponse](t, w)
		if resp.Kind != pmjoin.KindVector || resp.Objects != open.N || resp.Pages <= 0 || resp.Epoch <= 0 {
			t.Fatalf("open response = %+v", resp)
		}
	}

	jo := JoinOptions{Method: pmjoin.SC, Epsilon: 0.05, BufferPages: 32,
		CollectPairs: true, MaxPairs: 500}
	w := post(t, h, "/join", JoinRequest{Left: "a", Right: "b", Options: jo})
	if w.Code != http.StatusOK {
		t.Fatalf("join: %d %s", w.Code, w.Body.String())
	}
	got := decode[JoinResponse](t, w)
	if got.Method == "" || got.PageReads <= 0 || got.TotalSeconds <= 0 {
		t.Fatalf("join response = %+v", got)
	}

	// The HTTP path must report exactly what a direct Server call reports.
	direct, err := svc.Server().Join(context.Background(),
		svc.Dataset("a"), svc.Dataset("b"), jo.options())
	if err != nil {
		t.Fatal(err)
	}
	if got.Results != direct.Report.Results || got.PageReads != direct.Report.PageReads ||
		got.Comparisons != direct.Report.Comparisons || got.Truncated != direct.Truncated ||
		len(got.Pairs) != len(direct.Pairs) {
		t.Fatalf("HTTP join diverged from direct call:\nhttp   %+v\ndirect %+v",
			got, direct.Report)
	}
}

func TestOpenSeriesAndString(t *testing.T) {
	svc := newTestService(t)
	h := svc.Handler()

	w := post(t, h, "/open", OpenRequest{Name: "walk", Kind: pmjoin.KindSeries, N: 800, Seed: 3})
	if w.Code != http.StatusOK {
		t.Fatalf("open series: %d %s", w.Code, w.Body.String())
	}
	if resp := decode[OpenResponse](t, w); resp.Kind != pmjoin.KindSeries || resp.Objects <= 0 {
		t.Fatalf("series response = %+v", resp)
	}

	w = post(t, h, "/open", OpenRequest{Name: "dna", Kind: pmjoin.KindString, N: 1200, Seed: 4})
	if w.Code != http.StatusOK {
		t.Fatalf("open string: %d %s", w.Code, w.Body.String())
	}
	if resp := decode[OpenResponse](t, w); resp.Kind != pmjoin.KindString || resp.Objects <= 0 {
		t.Fatalf("string response = %+v", resp)
	}
	if names := svc.DatasetNames(); len(names) != 2 || names[0] != "dna" || names[1] != "walk" {
		t.Fatalf("names = %v", names)
	}
}

func TestErrorStatuses(t *testing.T) {
	svc := newTestService(t)
	h := svc.Handler()

	ok := post(t, h, "/open", OpenRequest{Name: "a", Kind: pmjoin.KindVector, N: 50, Seed: 1})
	if ok.Code != http.StatusOK {
		t.Fatalf("seed open: %d", ok.Code)
	}

	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"duplicate name", func() *httptest.ResponseRecorder {
			return post(t, h, "/open", OpenRequest{Name: "a", Kind: pmjoin.KindVector, N: 50, Seed: 1})
		}, http.StatusConflict},
		{"missing n", func() *httptest.ResponseRecorder {
			return post(t, h, "/open", OpenRequest{Name: "x", Kind: pmjoin.KindVector})
		}, http.StatusBadRequest},
		{"unknown dataset", func() *httptest.ResponseRecorder {
			return post(t, h, "/join", JoinRequest{Left: "a", Right: "nope",
				Options: JoinOptions{Method: pmjoin.SC, Epsilon: 0.1}})
		}, http.StatusNotFound},
		{"invalid options", func() *httptest.ResponseRecorder {
			return post(t, h, "/join", JoinRequest{Left: "a", Right: "a",
				Options: JoinOptions{Method: pmjoin.SC, Epsilon: -1}})
		}, http.StatusBadRequest},
		{"GET on POST route", func() *httptest.ResponseRecorder {
			return get(t, h, "/join")
		}, http.StatusMethodNotAllowed},
		{"malformed body", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/join", strings.NewReader("{"))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			return w
		}, http.StatusBadRequest},
		{"unknown field", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest(http.MethodPost, "/join",
				strings.NewReader(`{"left":"a","right":"a","bogus":1}`))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			return w
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := tc.do()
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body.String())
		}
		if e := decode[map[string]string](t, w); e["error"] == "" {
			t.Errorf("%s: no error message in %q", tc.name, w.Body.String())
		}
	}
}

func TestOverloadMapsTo429(t *testing.T) {
	svc := newTestService(t)
	w := httptest.NewRecorder()
	svc.failJoin(w, fmt.Errorf("admission: %w", pmjoin.ErrOverloaded))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestExplainCachedOverHTTP(t *testing.T) {
	svc := newTestService(t)
	h := svc.Handler()
	post(t, h, "/open", OpenRequest{Name: "a", Kind: pmjoin.KindVector, N: 100, Seed: 1})
	post(t, h, "/open", OpenRequest{Name: "b", Kind: pmjoin.KindVector, N: 100, Seed: 2})

	req := ExplainRequest{Left: "a", Right: "b",
		Options: JoinOptions{Method: pmjoin.SC, Epsilon: 0.1, BufferPages: 16}}
	first := post(t, h, "/explain", req)
	second := post(t, h, "/explain", req)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("explain: %d / %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached explain returned a different plan")
	}
	st := svc.Server().Stats()
	if st.PlanMisses != 1 || st.PlanHits != 1 {
		t.Fatalf("plan cache stats = hits %d misses %d", st.PlanHits, st.PlanMisses)
	}
}

func TestMetricsAndDebugEndpoints(t *testing.T) {
	svc := newTestService(t)
	h := svc.Handler()
	post(t, h, "/open", OpenRequest{Name: "a", Kind: pmjoin.KindVector, N: 120, Seed: 1})
	post(t, h, "/open", OpenRequest{Name: "b", Kind: pmjoin.KindVector, N: 90, Seed: 2})
	if w := post(t, h, "/join", JoinRequest{Left: "a", Right: "b",
		Options: JoinOptions{Method: pmjoin.SC, Epsilon: 0.05, BufferPages: 16}}); w.Code != http.StatusOK {
		t.Fatalf("join: %d %s", w.Code, w.Body.String())
	}

	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"pmjoind_joins_admitted_total 1",
		"pmjoind_joins_completed_total 1",
		"pmjoind_folded_runs_total 1",
		"pmjoind_shared_pool_published_total",
		"pmjoind_folded_phase_wall_seconds{phase=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}

	dw := get(t, h, "/debug/joins")
	if dw.Code != http.StatusOK {
		t.Fatalf("debug/joins: %d", dw.Code)
	}
	dbg := decode[DebugJoins](t, dw)
	if len(dbg.Active) != 0 || len(dbg.Recent) != 1 {
		t.Fatalf("debug joins = %+v", dbg)
	}
	if dbg.Recent[0].State != pmjoin.StateDone {
		t.Fatalf("recent state = %v", dbg.Recent[0].State)
	}

	if hw := get(t, h, "/healthz"); hw.Code != http.StatusOK || !strings.Contains(hw.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", hw.Code, hw.Body.String())
	}
}
