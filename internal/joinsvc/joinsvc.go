// Package joinsvc exposes a pmjoin.Server over HTTP/JSON: the handler layer
// of the pmjoind daemon, kept importable so tests and the load harness can
// drive the exact production endpoints in process (net/http/httptest) without
// a socket.
//
// Endpoints:
//
//	POST /open        create a synthetic dataset (internal/dataset generators)
//	POST /join        run a join; 429 + Retry-After under admission overload
//	POST /explain     plan a join through the server's plan cache
//	GET  /metrics     text exposition of service counters + folded metrics
//	GET  /debug/joins JSON dump of in-flight and recent requests
//	GET  /healthz     liveness
//
// The handlers spawn no goroutines and keep no per-request state beyond the
// Server's own registry; concurrency is whatever net/http provides, bounded
// downstream by the Server's admission controller.
package joinsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"pmjoin"
	"pmjoin/internal/dataset"
	"pmjoin/internal/geom"
	"pmjoin/internal/metrics"
)

// Service routes HTTP requests to a pmjoin.Server and owns the name→dataset
// registry.
type Service struct {
	srv *pmjoin.Server

	mu       sync.Mutex
	datasets map[string]*pmjoin.Dataset
}

// New wraps srv. Datasets added to the underlying System before or after can
// be registered with AddDataset; /open creates synthetic ones.
func New(srv *pmjoin.Server) *Service {
	return &Service{srv: srv, datasets: make(map[string]*pmjoin.Dataset)}
}

// Server returns the wrapped pmjoin.Server.
func (s *Service) Server() *pmjoin.Server { return s.srv }

// AddDataset registers an existing dataset under name. It errors if the name
// is taken or the dataset belongs to a different System.
func (s *Service) AddDataset(name string, d *pmjoin.Dataset) error {
	if d == nil {
		return fmt.Errorf("joinsvc: nil dataset %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[name]; ok {
		return fmt.Errorf("joinsvc: dataset %q already exists", name)
	}
	s.datasets[name] = d
	return nil
}

// Dataset returns the registered dataset, or nil.
func (s *Service) Dataset(name string) *pmjoin.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasets[name]
}

// DatasetNames returns the registered names in sorted order.
func (s *Service) DatasetNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the service's HTTP routes on a fresh mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/open", s.handleOpen)
	mux.HandleFunc("/join", s.handleJoin)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/joins", s.handleDebugJoins)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// OpenRequest asks the service to generate and index a synthetic dataset.
type OpenRequest struct {
	Name string      `json:"name"`
	Kind pmjoin.Kind `json:"kind"` // "vector", "series" or "string"
	// N is the object count: vectors, series samples, or string length.
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
	// Dim selects the vector generator: 2 draws road-network-like points,
	// higher dimensions draw Landsat-like feature vectors. Vector only.
	Dim int `json:"dim,omitempty"`
	// Window and Stride shape the subsequence index (series and string).
	Window int `json:"window,omitempty"`
	Stride int `json:"stride,omitempty"`
	// PageBytes overrides the system page size for this dataset.
	PageBytes int `json:"pageBytes,omitempty"`
}

// OpenResponse describes the created dataset.
type OpenResponse struct {
	Name    string      `json:"name"`
	Kind    pmjoin.Kind `json:"kind"`
	Pages   int         `json:"pages"`
	Objects int         `json:"objects"`
	Epoch   int64       `json:"epoch"`
}

func (s *Service) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Name == "" || req.N <= 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("joinsvc: open needs a name and n > 0"))
		return
	}
	sys := s.srv.System()
	var d *pmjoin.Dataset
	var err error
	switch req.Kind {
	case pmjoin.KindVector:
		dim := req.Dim
		if dim == 0 {
			dim = 2
		}
		var vecs []geom.Vector
		if dim <= 2 {
			vecs = dataset.RoadIntersections(req.N, req.Seed)
		} else {
			vecs = dataset.Landsat(req.N, dim, req.Seed)
		}
		flat := make([][]float64, len(vecs))
		for i, v := range vecs {
			flat[i] = v
		}
		d, err = sys.AddVectors(req.Name, flat, pmjoin.VectorOptions{PageBytes: req.PageBytes})
	case pmjoin.KindSeries:
		window := req.Window
		if window == 0 {
			window = 32
		}
		d, err = sys.AddSeries(req.Name, dataset.RandomWalk(req.N, req.Seed), pmjoin.SeriesOptions{
			Window: window, Stride: req.Stride, PageBytes: req.PageBytes,
		})
	case pmjoin.KindString:
		window := req.Window
		if window == 0 {
			window = 64
		}
		d, err = sys.AddString(req.Name, dataset.DNA(req.N, req.Seed), pmjoin.StringOptions{
			Window: window, Stride: req.Stride, PageBytes: req.PageBytes,
		})
	default:
		err = fmt.Errorf("joinsvc: unknown kind %v", req.Kind)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := s.AddDataset(req.Name, d); err != nil {
		// The dataset is already materialized on the simulated disk; a name
		// collision only loses the handle.
		s.fail(w, http.StatusConflict, err)
		return
	}
	s.reply(w, OpenResponse{
		Name: req.Name, Kind: d.Kind(), Pages: d.Pages(), Objects: d.Objects(), Epoch: d.Epoch(),
	})
}

// JoinOptions is the wire form of pmjoin.Options (the service subset).
type JoinOptions struct {
	Method       pmjoin.Method `json:"method"`
	Epsilon      float64       `json:"epsilon"`
	BufferPages  int           `json:"bufferPages"`
	Parallelism  int           `json:"parallelism,omitempty"`
	Seed         int64         `json:"seed,omitempty"`
	CollectPairs bool          `json:"collectPairs,omitempty"`
	MaxPairs     int           `json:"maxPairs,omitempty"`
	FilterDepth  int           `json:"filterDepth,omitempty"`
	Shards       int           `json:"shards,omitempty"`
	ShardWorkers int           `json:"shardWorkers,omitempty"`
	// PrefetchOff disables the pipelined executor (on by default).
	PrefetchOff bool `json:"prefetchOff,omitempty"`
	// KernelBatchOff disables whole-cluster block kernel dispatch (on by
	// default; results are identical either way).
	KernelBatchOff bool `json:"kernelBatchOff,omitempty"`
	Trace          bool `json:"trace,omitempty"`
}

func (o JoinOptions) options() pmjoin.Options {
	opt := pmjoin.Options{
		Method:       o.Method,
		Epsilon:      o.Epsilon,
		BufferPages:  o.BufferPages,
		Parallelism:  o.Parallelism,
		Seed:         o.Seed,
		CollectPairs: o.CollectPairs,
		MaxPairs:     o.MaxPairs,
		FilterDepth:  o.FilterDepth,
		Trace:        o.Trace,
		Sharding:     pmjoin.ShardingOptions{Shards: o.Shards, Workers: o.ShardWorkers},
	}
	if o.PrefetchOff {
		opt.Pipeline.Prefetch = pmjoin.PrefetchOff
	}
	if o.KernelBatchOff {
		opt.KernelBatch = pmjoin.KernelBatchOff
	}
	return opt
}

// JoinRequest names two registered datasets and the join options.
type JoinRequest struct {
	Left    string      `json:"left"`
	Right   string      `json:"right"`
	Options JoinOptions `json:"options"`
}

// JoinResponse is the deterministic result summary plus execution notes.
type JoinResponse struct {
	Results           int64   `json:"results"`
	TotalSeconds      float64 `json:"totalSeconds"`
	IOSeconds         float64 `json:"ioSeconds"`
	CPUJoinSeconds    float64 `json:"cpuJoinSeconds"`
	PreprocessSeconds float64 `json:"preprocessSeconds"`
	PageReads         int64   `json:"pageReads"`
	Seeks             int64   `json:"seeks"`
	Comparisons       int64   `json:"comparisons"`
	Clusters          int     `json:"clusters"`
	Method            string  `json:"method"`
	MarkedEntries     int     `json:"markedEntries,omitempty"`
	MatrixDensity     float64 `json:"matrixDensity,omitempty"`

	Pairs     [][2]int `json:"pairs,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`

	// Execution profile (outside the determinism contract).
	Workers      int  `json:"workers"`
	Shards       int  `json:"shards,omitempty"`
	ShardWorkers int  `json:"shardWorkers,omitempty"`
	Cancelled    bool `json:"cancelled,omitempty"`
	// SharedHits counts this run's buffer misses that found the page already
	// materialized in the server-wide shared frame cache.
	SharedHits int64 `json:"sharedHits"`
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !s.decode(w, r, &req) {
		return
	}
	a, b, ok := s.pair(w, req.Left, req.Right)
	if !ok {
		return
	}
	// The request context carries client cancellation: a dropped connection
	// cancels the join at its next cluster boundary.
	res, err := s.srv.Join(r.Context(), a, b, req.Options.options())
	if err != nil {
		s.failJoin(w, err)
		return
	}
	resp := JoinResponse{
		Results:           res.Report.Results,
		TotalSeconds:      res.TotalSeconds(),
		IOSeconds:         res.Report.IOSeconds,
		CPUJoinSeconds:    res.Report.CPUJoinSeconds,
		PreprocessSeconds: res.Report.PreprocessSeconds,
		PageReads:         res.Report.PageReads,
		Seeks:             res.Report.Seeks,
		Comparisons:       res.Report.Comparisons,
		Clusters:          res.Report.Clusters,
		Method:            res.Report.Method,
		MarkedEntries:     res.MarkedEntries,
		MatrixDensity:     res.MatrixDensity,
		Pairs:             res.Pairs,
		Truncated:         res.Truncated,
		Workers:           res.Exec.Workers,
		Shards:            res.Exec.Shards,
		ShardWorkers:      res.Exec.ShardWorkers,
		Cancelled:         res.Exec.Cancelled,
	}
	if res.Metrics != nil {
		resp.SharedHits = res.Metrics.Buffer.SharedHits
	}
	s.reply(w, resp)
}

// ExplainRequest mirrors JoinRequest for the plan endpoint.
type ExplainRequest struct {
	Left    string      `json:"left"`
	Right   string      `json:"right"`
	Options JoinOptions `json:"options"`
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if !s.decode(w, r, &req) {
		return
	}
	a, b, ok := s.pair(w, req.Left, req.Right)
	if !ok {
		return
	}
	plan, err := s.srv.ExplainCached(r.Context(), a, b, req.Options.options())
	if err != nil {
		s.failJoin(w, err)
		return
	}
	s.reply(w, plan)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.srv.Stats()
	m := s.srv.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p := func(name string, v any) { fmt.Fprintf(w, "pmjoind_%s %v\n", name, v) }
	p("joins_admitted_total", st.Admitted)
	p("joins_rejected_total", st.Rejected)
	p("joins_deadline_expired_total", st.DeadlineExpired)
	p("joins_completed_total", st.Completed)
	p("joins_failed_total", st.Failed)
	p("admission_frames_in_use", st.InUseFrames)
	p("admission_frames_high_water", st.FramesHighWater)
	p("admission_queued", st.Queued)
	p("admission_queue_high_water", st.QueueHighWater)
	p("plan_cache_hits_total", st.PlanHits)
	p("plan_cache_misses_total", st.PlanMisses)
	p("shared_pool_hits_total", st.Shared.Hits)
	p("shared_pool_misses_total", st.Shared.Misses)
	p("shared_pool_published_total", st.Shared.Published)
	p("shared_pool_evictions_total", st.Shared.Evictions)
	p("shared_pool_over_capacity_total", st.Shared.OverCapacity)
	p("shared_pool_resident", st.Shared.Resident)
	p("shared_pool_pinned", st.Shared.Pinned)
	p("folded_runs_total", m.FoldedRuns)
	p("folded_disk_reads_total", m.Disk.Reads)
	p("folded_disk_seeks_total", m.Disk.Seeks)
	p("folded_buffer_hits_total", m.Buffer.Hits)
	p("folded_buffer_misses_total", m.Buffer.Misses)
	p("folded_buffer_shared_hits_total", m.Buffer.SharedHits)
	p("folded_wall_seconds_total", m.Wall.Seconds())
	for ph, ps := range m.Phases {
		fmt.Fprintf(w, "pmjoind_folded_phase_wall_seconds{phase=%q} %v\n",
			metrics.Phase(ph).String(), ps.Wall.Seconds())
	}
}

// DebugJoins is the /debug/joins payload.
type DebugJoins struct {
	Active []pmjoin.JoinStatus `json:"active"`
	Recent []pmjoin.JoinStatus `json:"recent"`
}

func (s *Service) handleDebugJoins(w http.ResponseWriter, r *http.Request) {
	active, recent := s.srv.Joins()
	if active == nil {
		active = []pmjoin.JoinStatus{}
	}
	if recent == nil {
		recent = []pmjoin.JoinStatus{}
	}
	s.reply(w, DebugJoins{Active: active, Recent: recent})
}

// pair resolves two dataset names, writing a 404 on a miss.
func (s *Service) pair(w http.ResponseWriter, left, right string) (a, b *pmjoin.Dataset, ok bool) {
	a, b = s.Dataset(left), s.Dataset(right)
	if a == nil || b == nil {
		missing := left
		if a != nil {
			missing = right
		}
		s.fail(w, http.StatusNotFound, fmt.Errorf("joinsvc: unknown dataset %q", missing))
		return nil, nil, false
	}
	return a, b, true
}

func (s *Service) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("joinsvc: %s requires POST", r.URL.Path))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("joinsvc: bad request body: %w", err))
		return false
	}
	return true
}

// failJoin maps a join/explain error to its status: admission overload is
// backpressure (429, retryable), everything else from the library is a
// request problem (400).
func (s *Service) failJoin(w http.ResponseWriter, err error) {
	if errors.Is(err, pmjoin.ErrOverloaded) {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, err)
		return
	}
	s.fail(w, http.StatusBadRequest, err)
}

func (s *Service) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Encoding a flat string map cannot fail; the error return is noise.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Service) reply(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(payload); err != nil {
		// Headers are gone; nothing to salvage but the connection error is
		// the client's, not ours.
		return
	}
}
