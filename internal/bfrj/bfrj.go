// Package bfrj implements the Breadth-First R-tree Join of Huang, Jing and
// Rundensteiner (VLDB 1997), the paper's index-based baseline (§9).
//
// The two index hierarchies are materialized as node files (one node per
// page). The join proceeds level by level: the current list of intersecting
// node pairs is globally ordered by page addresses before expansion — the
// paper's "global optimization" that improves locality — and spilled to disk
// when it outgrows its buffer share. Leaf-level pairs are finally joined
// against the data files.
package bfrj

import (
	"sort"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
	"pmjoin/internal/predmat"
)

// nodeFile materializes an index hierarchy on disk, one node per page, in
// BFS order.
type nodeFile struct {
	file  disk.FileID
	pages map[*index.Node]int
}

func materialize(io *disk.Session, root *index.Node) (*nodeFile, error) {
	nf := &nodeFile{file: io.CreateFile(), pages: make(map[*index.Node]int)}
	queue := []*index.Node{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		addr, err := io.AppendPage(nf.file, n)
		if err != nil {
			return nil, err
		}
		nf.pages[n] = addr.Page
		queue = append(queue, n.Children...)
	}
	return nf, nil
}

type pair struct {
	a, b *index.Node
}

// Options configures a BFRJ run.
type Options struct {
	Eps      float64
	Pred     predmat.Predictor
	SelfJoin bool
	// PairsPerPage is the capacity of one spill page of the intermediate
	// pair list (default 256, ~16 bytes per pair in a 4 KB page).
	PairsPerPage int
	// Kernels routes node-pair predictor tests through internal/kernel's
	// exact MBR bound when Pred offers one; the candidate set — and hence
	// the Report — is bit-identical either way.
	Kernels bool
}

// kernelBounder mirrors predmat's optional Predictor refinement.
type kernelBounder interface {
	KernelBound(eps float64) func(a, b geom.MBR) bool
}

// Run executes BFRJ between the datasets indexed by r.Root and s.Root.
func Run(e *join.Engine, r, s *join.Dataset, j join.ObjectJoiner, opts Options) (*join.Report, error) {
	if opts.PairsPerPage == 0 {
		opts.PairsPerPage = 256
	}
	within := func(a, b geom.MBR) bool { return opts.Pred.LowerBound(a, b) <= opts.Eps }
	if opts.Kernels {
		if kb, ok := opts.Pred.(kernelBounder); ok {
			if f := kb.KernelBound(opts.Eps); f != nil {
				within = f
			}
		}
	}
	return e.Run("BFRJ", func(x *join.Exec) error {
		rNodes, err := materialize(x.IO, r.Root)
		if err != nil {
			return err
		}
		sNodes, err := materialize(x.IO, s.Root)
		if err != nil {
			return err
		}

		// Intermediate pair lists may not fit in memory: the executor keeps
		// at most half the buffer's worth of pairs in memory and charges
		// spill write+read for the excess.
		spillFile := x.IO.CreateFile()
		spillCap := (e.BufferSize / 2) * opts.PairsPerPage

		sortPairs := func(ps []pair) {
			// Global ordering: sort the pair list by node page addresses so
			// the expansion reads each node file in ascending order.
			sort.Slice(ps, func(i, k int) bool {
				pi, pk := ps[i], ps[k]
				if rNodes.pages[pi.a] != rNodes.pages[pk.a] {
					return rNodes.pages[pi.a] < rNodes.pages[pk.a]
				}
				return sNodes.pages[pi.b] < sNodes.pages[pk.b]
			})
		}

		// Leaf-level candidates collapse to data page pairs eagerly: several
		// leaf boxes can share one data page (multi-resolution sequence
		// indexes), and materializing box-level pairs first would explode
		// memory at genome scale.
		type pagePair struct{ a, b int }
		leafSeen := make(map[pagePair]struct{})
		var leafPairs []pagePair
		addLeaf := func(a, b *index.Node) {
			pp := pagePair{a: a.Page, b: b.Page}
			if _, dup := leafSeen[pp]; dup {
				return
			}
			leafSeen[pp] = struct{}{}
			leafPairs = append(leafPairs, pp)
		}
		current := []pair{{a: r.Root, b: s.Root}}
		if r.Root.IsLeaf() && s.Root.IsLeaf() {
			addLeaf(r.Root, s.Root)
			current = nil
		}
		for len(current) > 0 {
			// One index level is one unit of work; cancellation is honored
			// at its boundary.
			if err := x.Err(); err != nil {
				return err
			}
			sortPairs(current)
			if len(current) > spillCap {
				if err := chargeSpill(x, spillFile, (len(current)-spillCap+opts.PairsPerPage-1)/opts.PairsPerPage); err != nil {
					return err
				}
			}
			var next []pair
			for _, p := range current {
				// Read the two node pages through the buffer.
				if _, err := x.Pool.Get(disk.PageAddr{File: rNodes.file, Page: rNodes.pages[p.a]}); err != nil {
					return err
				}
				if _, err := x.Pool.Get(disk.PageAddr{File: sNodes.file, Page: sNodes.pages[p.b]}); err != nil {
					return err
				}
				aKids := p.a.Children
				bKids := p.b.Children
				if p.a.IsLeaf() {
					aKids = []*index.Node{p.a}
				}
				if p.b.IsLeaf() {
					bKids = []*index.Node{p.b}
				}
				for _, ac := range aKids {
					for _, bc := range bKids {
						if within(ac.MBR, bc.MBR) {
							if ac.IsLeaf() && bc.IsLeaf() {
								addLeaf(ac, bc)
							} else {
								next = append(next, pair{a: ac, b: bc})
							}
						}
					}
				}
			}
			current = next
		}

		// Join the candidate data page pairs in global page order.
		sort.Slice(leafPairs, func(i, k int) bool {
			if leafPairs[i].a != leafPairs[k].a {
				return leafPairs[i].a < leafPairs[k].a
			}
			return leafPairs[i].b < leafPairs[k].b
		})
		if len(leafPairs) > spillCap {
			if err := chargeSpill(x, spillFile, (len(leafPairs)-spillCap+opts.PairsPerPage-1)/opts.PairsPerPage); err != nil {
				return err
			}
		}
		for _, pp := range leafPairs {
			if err := x.JoinPair(r, s, pp.a, pp.b, j); err != nil {
				return err
			}
		}
		x.Flush()
		return nil
	})
}

// chargeSpill writes and re-reads n pages of the intermediate pair list.
// The spill file is scratch space of the executor itself, never joined
// against, so its traffic is charged directly on the session: routing it
// through the pool would evict join-relevant pages the real algorithm
// keeps resident in its separate spill buffers.
func chargeSpill(x *join.Exec, f disk.FileID, n int) error {
	base := x.IO.NumPages(f)
	for i := 0; i < n; i++ {
		addr, err := x.IO.AppendPage(f, nil)
		if err != nil {
			return err
		}
		//lint:ignore bufferbypass spill scratch traffic is charged directly; see chargeSpill doc
		if err := x.IO.Write(addr, nil); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		//lint:ignore bufferbypass spill scratch traffic is charged directly; see chargeSpill doc
		if _, err := x.IO.Read(disk.PageAddr{File: f, Page: base + i}); err != nil {
			return err
		}
	}
	return nil
}
