package bfrj

import (
	"math/rand"
	"testing"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
	"pmjoin/internal/predmat"
	"pmjoin/internal/rstar"
)

func buildDataset(t *testing.T, d *disk.Disk, rng *rand.Rand, n, leafCap int) (*join.Dataset, []geom.Vector) {
	t.Helper()
	items := make([]rstar.Item, n)
	vecs := make([]geom.Vector, n)
	for i := range items {
		v := geom.Vector{rng.Float64(), rng.Float64()}
		vecs[i] = v
		items[i] = rstar.PointItem(i, v)
	}
	tr, err := rstar.BulkLoadSTR(2, rstar.DefaultConfig(leafCap), items)
	if err != nil {
		t.Fatal(err)
	}
	pages := tr.Pack()
	f := d.CreateFile()
	for _, pg := range pages {
		payload := &join.VectorPage{}
		for _, it := range pg {
			payload.IDs = append(payload.IDs, it.ID)
			payload.Vecs = append(payload.Vecs, it.MBR.Min)
		}
		if _, err := d.AppendPage(f, payload); err != nil {
			t.Fatal(err)
		}
	}
	return &join.Dataset{Name: "ds", File: f, Root: tr.Root(), Pages: len(pages)}, vecs
}

func brute(a, b []geom.Vector, eps float64) int64 {
	var n int64
	for _, va := range a {
		for _, vb := range b {
			if geom.L2.Dist(va, vb) <= eps {
				n++
			}
		}
	}
	return n
}

func TestBFRJMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 400, 8)
	db, vb := buildDataset(t, d, rng, 300, 8)
	const eps = 0.06
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: eps}, Options{
		Eps:  eps,
		Pred: predmat.NormPredictor{Norm: geom.L2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(va, vb, eps); rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.PageReads == 0 || rep.IOSeconds <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestBFRJSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 300, 8)
	const eps = 0.05
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, da, join.VectorJoiner{Norm: geom.L2, Eps: eps, Self: true}, Options{
		Eps:      eps,
		Pred:     predmat.NormPredictor{Norm: geom.L2},
		SelfJoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (brute(va, va, eps) - int64(len(va))) / 2
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
}

func TestBFRJSpillChargesWithTinyBuffer(t *testing.T) {
	mk := func(buffer, pairsPerPage int) *join.Report {
		rng := rand.New(rand.NewSource(3))
		d := disk.New(disk.DefaultModel())
		da, _ := buildDataset(t, d, rng, 500, 4)
		db, _ := buildDataset(t, d, rng, 500, 4)
		e := &join.Engine{Disk: d, BufferSize: buffer}
		rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: 0.08}, Options{
			Eps:          0.08,
			Pred:         predmat.NormPredictor{Norm: geom.L2},
			PairsPerPage: pairsPerPage,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := mk(6, 4) // tiny buffer and page capacity force spills
	large := mk(256, 256)
	if small.Results != large.Results {
		t.Fatalf("spilling changed results: %d vs %d", small.Results, large.Results)
	}
	if small.PageReads <= large.PageReads {
		t.Fatalf("spilling should add I/O: %d <= %d", small.PageReads, large.PageReads)
	}
}

// TestBFRJDedupsMultiResolutionLeaves verifies that several leaf boxes per
// page (multi-resolution sequence indexes) do not double-join page pairs.
func TestBFRJDedupsMultiResolutionLeaves(t *testing.T) {
	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	payload := &join.VectorPage{
		IDs:  []int{0, 1},
		Vecs: []geom.Vector{{0, 0}, {0.1, 0}},
	}
	if _, err := d.AppendPage(f, payload); err != nil {
		t.Fatal(err)
	}
	// Two leaf boxes both pointing at page 0.
	l1 := &index.Node{MBR: geom.NewMBR(geom.Vector{0, 0}), Page: 0}
	l2 := &index.Node{MBR: geom.NewMBR(geom.Vector{0.1, 0}), Page: 0}
	root := &index.Node{MBR: geom.Union(l1.MBR, l2.MBR), Page: -1, Children: []*index.Node{l1, l2}}
	ds := &join.Dataset{Name: "multi", File: f, Root: root, Pages: 1}

	e := &join.Engine{Disk: d, BufferSize: 8}
	rep, err := Run(e, ds, ds, join.VectorJoiner{Norm: geom.L2, Eps: 1, Self: true}, Options{
		Eps:      1,
		Pred:     predmat.NormPredictor{Norm: geom.L2},
		SelfJoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != 1 {
		t.Fatalf("results = %d, want exactly 1 (dedup)", rep.Results)
	}
}

func TestBFRJLeafOnlyRoots(t *testing.T) {
	// Both hierarchies are single leaves: the pair goes straight to the
	// leaf join.
	d := disk.New(disk.DefaultModel())
	mk := func(x float64) *join.Dataset {
		f := d.CreateFile()
		payload := &join.VectorPage{IDs: []int{0}, Vecs: []geom.Vector{{x, 0}}}
		d.AppendPage(f, payload)
		root := &index.Node{MBR: geom.NewMBR(geom.Vector{x, 0}), Page: 0}
		return &join.Dataset{Name: "leaf", File: f, Root: root, Pages: 1}
	}
	da := mk(0)
	db := mk(0.5)
	e := &join.Engine{Disk: d, BufferSize: 8}
	rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: 1}, Options{
		Eps:  1,
		Pred: predmat.NormPredictor{Norm: geom.L2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != 1 {
		t.Fatalf("results = %d", rep.Results)
	}
}
