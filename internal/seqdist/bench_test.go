package seqdist

import (
	"math/rand"
	"testing"
)

func benchSeqs(n int) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(1))
	return randDNA(rng, n), randDNA(rng, n)
}

func BenchmarkEditDistance500(b *testing.B) {
	x, y := benchSeqs(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistance(x, y)
	}
}

func BenchmarkEditDistanceBounded500(b *testing.B) {
	x, y := benchSeqs(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EditDistanceBounded(x, y, 5)
	}
}

func BenchmarkFreqDistance(b *testing.B) {
	u := []int{147, 102, 103, 148}
	v := []int{150, 100, 101, 149}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FreqDistance(u, v)
	}
}

func BenchmarkFreqVector500(b *testing.B) {
	x, _ := benchSeqs(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DNA.FreqVector(x)
	}
}
