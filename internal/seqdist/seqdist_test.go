package seqdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// editRef is a straightforward full-matrix reference implementation.
func editRef(a, b []byte) int {
	m := make([][]int, len(a)+1)
	for i := range m {
		m[i] = make([]int, len(b)+1)
		m[i][0] = i
	}
	for j := 0; j <= len(b); j++ {
		m[0][j] = j
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := m[i-1][j-1] + cost
			if v := m[i-1][j] + 1; v < best {
				best = v
			}
			if v := m[i][j-1] + 1; v < best {
				best = v
			}
			m[i][j] = best
		}
	}
	return m[len(a)][len(b)]
}

func randDNA(rng *rand.Rand, n int) []byte {
	bases := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACGT", 4},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"ACGT", "CGT", 1},
		{"KITTEN", "SITTING", 3},
		{"FLAW", "LAWN", 2},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a := randDNA(rng, rng.Intn(30))
		b := randDNA(rng, rng.Intn(30))
		if got, want := EditDistance(a, b), editRef(a, b); got != want {
			t.Fatalf("EditDistance(%q,%q) = %d, want %d", a, b, got, want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceBoundedAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 400; iter++ {
		a := randDNA(rng, rng.Intn(40))
		b := randDNA(rng, rng.Intn(40))
		exact := EditDistance(a, b)
		for _, bound := range []int{0, 1, 3, 5, 10, 40} {
			got, ok := EditDistanceBounded(a, b, bound)
			if exact <= bound {
				if !ok || got != exact {
					t.Fatalf("bounded(%q,%q,%d) = (%d,%v), exact %d", a, b, bound, got, ok, exact)
				}
			} else if ok {
				t.Fatalf("bounded(%q,%q,%d) accepted, exact %d", a, b, bound, exact)
			}
		}
	}
}

func TestEditDistanceBoundedNegative(t *testing.T) {
	if _, ok := EditDistanceBounded([]byte("A"), []byte("A"), -1); ok {
		t.Fatal("negative bound accepted")
	}
}

func TestEditDistanceBoundedLengthGate(t *testing.T) {
	// Length difference alone exceeds the bound.
	if _, ok := EditDistanceBounded([]byte("AAAAAA"), []byte("A"), 3); ok {
		t.Fatal("length gate failed")
	}
}

func TestEditDistanceBoundedEmpty(t *testing.T) {
	if d, ok := EditDistanceBounded(nil, []byte("AC"), 3); !ok || d != 2 {
		t.Fatalf("(%d,%v)", d, ok)
	}
	if d, ok := EditDistanceBounded([]byte("AC"), nil, 1); ok || d != 2 {
		t.Fatalf("(%d,%v)", d, ok) // rejected pairs report bound+1
	}
}

func TestNewAlphabetErrors(t *testing.T) {
	if _, err := NewAlphabet(""); err == nil {
		t.Fatal("empty alphabet accepted")
	}
	if _, err := NewAlphabet("AA"); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
}

func TestAlphabetIndexAndSize(t *testing.T) {
	if DNA.Size() != 4 {
		t.Fatal("DNA size")
	}
	if DNA.Index('A') != 0 || DNA.Index('T') != 3 {
		t.Fatal("DNA index")
	}
	if DNA.Index('X') != -1 {
		t.Fatal("unknown symbol index")
	}
}

func TestFreqVector(t *testing.T) {
	f := DNA.FreqVector([]byte("AACGTTTX"))
	want := []int{2, 1, 1, 3}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("freq = %v", f)
		}
	}
}

func TestSlideFreqMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randDNA(rng, 200)
	const w = 16
	f := DNA.FreqVector(s[:w])
	for st := 1; st+w <= len(s); st++ {
		DNA.SlideFreq(f, s[st-1], s[st+w-1])
		want := DNA.FreqVector(s[st : st+w])
		for i := range f {
			if f[i] != want[i] {
				t.Fatalf("slide at %d: %v != %v", st, f, want)
			}
		}
	}
}

func TestFreqDistanceKnown(t *testing.T) {
	if d := FreqDistance([]int{3, 1}, []int{1, 2}); d != 2 {
		t.Fatalf("FD = %d, want 2", d)
	}
	if d := FreqDistance([]int{5, 5}, []int{5, 5}); d != 0 {
		t.Fatal("FD of equal vectors")
	}
}

func TestFreqDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FreqDistance([]int{1}, []int{1, 2})
}

// TestFreqDistanceLowerBoundsEditDistance is the Table 1 predictor property:
// FD(freq(a), freq(b)) <= EditDistance(a, b) for all strings.
func TestFreqDistanceLowerBoundsEditDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 500; iter++ {
		a := randDNA(rng, rng.Intn(40))
		b := randDNA(rng, rng.Intn(40))
		fd := FreqDistance(DNA.FreqVector(a), DNA.FreqVector(b))
		ed := EditDistance(a, b)
		if fd > ed {
			t.Fatalf("FD %d > edit %d for %q vs %q", fd, ed, a, b)
		}
	}
}

func TestFreqDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		u := []int{rng.Intn(20), rng.Intn(20), rng.Intn(20), rng.Intn(20)}
		v := []int{rng.Intn(20), rng.Intn(20), rng.Intn(20), rng.Intn(20)}
		if FreqDistance(u, v) != FreqDistance(v, u) {
			t.Fatal("FD not symmetric")
		}
	}
}

// TestFreqDistanceMBRLowerBounds checks that the box bound never exceeds the
// point distance of any vectors inside the boxes.
func TestFreqDistanceMBRLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 500; iter++ {
		dim := 1 + rng.Intn(5)
		u := make([]int, dim)
		v := make([]int, dim)
		uMin := make([]int, dim)
		uMax := make([]int, dim)
		vMin := make([]int, dim)
		vMax := make([]int, dim)
		for d := 0; d < dim; d++ {
			u[d] = rng.Intn(30)
			v[d] = rng.Intn(30)
			uMin[d] = u[d] - rng.Intn(3)
			uMax[d] = u[d] + rng.Intn(3)
			vMin[d] = v[d] - rng.Intn(3)
			vMax[d] = v[d] + rng.Intn(3)
		}
		if got := FreqDistanceMBR(uMin, uMax, vMin, vMax); got > FreqDistance(u, v) {
			t.Fatalf("box FD %d > point FD %d", got, FreqDistance(u, v))
		}
	}
}

func TestFreqDistanceMBRTightForPoints(t *testing.T) {
	// Degenerate boxes must reproduce the exact frequency distance.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		u := []int{rng.Intn(9), rng.Intn(9), rng.Intn(9)}
		v := []int{rng.Intn(9), rng.Intn(9), rng.Intn(9)}
		if FreqDistanceMBR(u, u, v, v) != FreqDistance(u, v) {
			t.Fatal("degenerate box FD mismatch")
		}
	}
}
