// Package seqdist implements the sequence distance measures of Table 1:
// edit distance for string data and its lower-bounding frequency distance
// (the MRS-index predictor, Kahveci & Singh, VLDB 2001).
package seqdist

import "fmt"

// EditDistance returns the Levenshtein distance between a and b using unit
// costs for insertion, deletion, and substitution.
func EditDistance(a, b []byte) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution / match
			if d := prev[j] + 1; d < m {
				m = d // deletion
			}
			if d := cur[j-1] + 1; d < m {
				m = d // insertion
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditDistanceBounded returns the edit distance if it is at most bound, and
// (bound+1, false) otherwise. It evaluates only a diagonal band of width
// 2*bound+1, so refusing distant pairs is O(bound*max(len)).
func EditDistanceBounded(a, b []byte, bound int) (int, bool) {
	if bound < 0 {
		return 0, false
	}
	diff := len(a) - len(b)
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1, false
	}
	if len(a) == 0 {
		return len(b), len(b) <= bound
	}
	if len(b) == 0 {
		return len(a), len(a) <= bound
	}
	const inf = int(^uint(0) >> 2)
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		if j <= bound {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - bound
		if lo < 1 {
			lo = 1
		}
		hi := i + bound
		if hi > len(b) {
			hi = len(b)
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
		}
		ai := a[i-1]
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if prev[j]+1 < m {
				m = prev[j] + 1
			}
			if j > lo || lo == 1 {
				if cur[j-1]+1 < m {
					m = cur[j-1] + 1
				}
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < len(b) {
			cur[hi+1] = inf
		}
		if rowMin > bound {
			return bound + 1, false
		}
		prev, cur = cur, prev
	}
	// Beyond the band the DP cells are untracked, so a final value above the
	// bound is only a lower bound of the true distance: clamp it to the
	// documented refusal value instead of leaking it.
	d := prev[len(b)]
	if d > bound {
		return bound + 1, false
	}
	return d, true
}

// Alphabet maps the symbols of a sequence dataset to dense indices. DNA uses
// the 4-letter alphabet ACGT.
type Alphabet struct {
	index [256]int8
	size  int
}

// NewAlphabet builds an alphabet over the given symbols.
func NewAlphabet(symbols string) (*Alphabet, error) {
	if len(symbols) == 0 || len(symbols) > 127 {
		return nil, fmt.Errorf("seqdist: alphabet size %d out of range", len(symbols))
	}
	a := &Alphabet{size: len(symbols)}
	for i := range a.index {
		a.index[i] = -1
	}
	for i := 0; i < len(symbols); i++ {
		if a.index[symbols[i]] >= 0 {
			return nil, fmt.Errorf("seqdist: duplicate symbol %q", symbols[i])
		}
		a.index[symbols[i]] = int8(i)
	}
	return a, nil
}

// DNA is the 4-symbol nucleotide alphabet.
var DNA = mustAlphabet("ACGT")

func mustAlphabet(s string) *Alphabet {
	a, err := NewAlphabet(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return a.size }

// Index returns the dense index of symbol c, or -1 if c is not in the
// alphabet.
func (a *Alphabet) Index(c byte) int { return int(a.index[c]) }

// FreqVector returns the frequency vector of s: component i counts the
// occurrences of symbol i. Symbols outside the alphabet are ignored.
func (a *Alphabet) FreqVector(s []byte) []int {
	f := make([]int, a.size)
	for _, c := range s {
		if i := a.index[c]; i >= 0 {
			f[i]++
		}
	}
	return f
}

// SlideFreq updates frequency vector f in place for a window slide that
// drops symbol out and gains symbol in.
func (a *Alphabet) SlideFreq(f []int, out, in byte) {
	if i := a.index[out]; i >= 0 {
		f[i]--
	}
	if i := a.index[in]; i >= 0 {
		f[i]++
	}
}

// FreqDistance returns the frequency distance between two frequency vectors:
// FD(u,v) = max(Σ_i max(u_i-v_i,0), Σ_i max(v_i-u_i,0)).
//
// FD lower-bounds the edit distance between the underlying strings (each
// edit operation changes at most one positive and one negative frequency
// difference by one), which makes it the lower-bounding predictor for string
// data in Table 1.
func FreqDistance(u, v []int) int {
	if len(u) != len(v) {
		panic(fmt.Sprintf("seqdist: frequency dimension mismatch %d vs %d", len(u), len(v)))
	}
	var pos, neg int
	for i := range u {
		d := u[i] - v[i]
		if d > 0 {
			pos += d
		} else {
			neg -= d
		}
	}
	if pos > neg {
		return pos
	}
	return neg
}

// FreqDistanceMBR returns a lower bound of FreqDistance(u,v) for any u in the
// integer box [uMin,uMax] and v in [vMin,vMax]: for each component the
// smallest achievable positive and negative difference is used.
func FreqDistanceMBR(uMin, uMax, vMin, vMax []int) int {
	var pos, neg int
	for i := range uMin {
		// smallest possible u_i - v_i is uMin[i]-vMax[i]; largest is uMax[i]-vMin[i].
		if d := uMin[i] - vMax[i]; d > 0 {
			pos += d
		}
		if d := vMin[i] - uMax[i]; d > 0 {
			neg += d
		}
	}
	if pos > neg {
		return pos
	}
	return neg
}
