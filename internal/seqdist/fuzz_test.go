package seqdist

import (
	"bytes"
	"testing"
)

// FuzzEditDistanceBand fuzzes the banded edit distance and the frequency
// distance against the exact DP: the band must agree with the full matrix
// whenever it reports an exact answer, and the frequency distance must
// lower-bound the edit distance (the Table 1 predictor contract the
// MRS-index prediction matrix relies on).
func FuzzEditDistanceBand(f *testing.F) {
	// Seed corpus: equal strings, disjoint alphabets, single edits,
	// length-skewed pairs, and symbols outside the DNA alphabet.
	f.Add([]byte("ACGT"), []byte("ACGT"), 3)
	f.Add([]byte("AAAA"), []byte("TTTT"), 2)
	f.Add([]byte("ACGTACGT"), []byte("ACTTACGT"), 1)
	f.Add([]byte("A"), []byte("ACGTACGTACGT"), 4)
	f.Add([]byte(""), []byte("ACG"), 0)
	f.Add([]byte("ACNNGT"), []byte("ACGT"), 5)

	f.Fuzz(func(t *testing.T, a, b []byte, bound int) {
		if len(a) > 256 || len(b) > 256 {
			t.Skip("cap input size to keep the quadratic DP cheap")
		}
		if bound < 0 {
			bound = -bound
		}
		bound %= 64

		ed := EditDistance(a, b)
		if back := EditDistance(b, a); back != ed {
			t.Fatalf("EditDistance not symmetric: %d vs %d", ed, back)
		}
		if bytes.Equal(a, b) && ed != 0 {
			t.Fatalf("EditDistance(x, x) = %d, want 0", ed)
		}

		got, ok := EditDistanceBounded(a, b, bound)
		if ok {
			if got != ed {
				t.Fatalf("EditDistanceBounded(%q, %q, %d) = %d, exact %d", a, b, bound, got, ed)
			}
			if ed > bound {
				t.Fatalf("EditDistanceBounded accepted distance %d above bound %d", ed, bound)
			}
		} else {
			if ed <= bound {
				t.Fatalf("EditDistanceBounded rejected (%q, %q) but exact distance %d <= bound %d",
					a, b, ed, bound)
			}
			if got != bound+1 {
				t.Fatalf("EditDistanceBounded refusal returned %d, want bound+1 = %d", got, bound+1)
			}
		}

		// Frequency distance lower-bounds edit distance: one edit operation
		// changes one frequency component (over any alphabet projection).
		fd := FreqDistance(DNA.FreqVector(a), DNA.FreqVector(b))
		if fd > ed {
			t.Fatalf("FreqDistance %d exceeds edit distance %d for (%q, %q)", fd, ed, a, b)
		}

		// The MBR form must lower-bound the exact frequency distance for the
		// degenerate box [u,u]×[v,v].
		u, v := DNA.FreqVector(a), DNA.FreqVector(b)
		if mbr := FreqDistanceMBR(u, u, v, v); mbr != fd {
			t.Fatalf("FreqDistanceMBR over point boxes = %d, want exact %d", mbr, fd)
		}
	})
}
