package experiments

import (
	"testing"

	"pmjoin"
)

// tiny returns a config small enough for unit testing while preserving the
// workload structure.
func tiny() *Config { return &Config{Scale: 0.05, Seed: 1} }

func TestSpatialPairBuilds(t *testing.T) {
	sys, da, db, eps, err := SpatialPair(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil || da.Pages() == 0 || db.Pages() == 0 {
		t.Fatal("empty pair")
	}
	if eps <= 0 {
		t.Fatalf("eps = %g", eps)
	}
	if da.Kind() != pmjoin.KindVector {
		t.Fatal("kind")
	}
}

func TestLandsatPairBuilds(t *testing.T) {
	_, da, db, eps, err := LandsatPair(tiny(), 0.125)
	if err != nil {
		t.Fatal(err)
	}
	if da.Objects() != db.Objects() {
		t.Fatalf("unequal parts: %d vs %d", da.Objects(), db.Objects())
	}
	if eps <= 0 {
		t.Fatal("eps")
	}
}

func TestHChrBuilds(t *testing.T) {
	_, ds, err := HChrSelf(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Kind() != pmjoin.KindString || ds.Window() != seqWindow {
		t.Fatal("string dataset")
	}
	_, dh, dm, err := HChrMChrPair(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if dh.Objects() <= dm.Objects() {
		t.Fatal("HChr must be larger than MChr")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	rows, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	// All methods must agree on the result count.
	for _, r := range rows {
		if r.Results != rows[0].Results {
			t.Fatalf("result mismatch: %v", rows)
		}
	}
	// Optimization 1 (prediction): pm-NLJ CPU well below NLJ.
	if byName["pm-NLJ"].CPUJoin >= byName["NLJ"].CPUJoin/2 {
		t.Fatalf("pm-NLJ CPU %g not well below NLJ %g", byName["pm-NLJ"].CPUJoin, byName["NLJ"].CPUJoin)
	}
	// Optimization 3 (scheduling): SC I/O at or below random-SC.
	if byName["SC"].IO > byName["random-SC"].IO*1.05 {
		t.Fatalf("SC IO %g above random-SC %g", byName["SC"].IO, byName["random-SC"].IO)
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	rows, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Results != rows[0].Results {
			t.Fatalf("result mismatch across methods: %+v", rows)
		}
	}
	if rows[0].Results == 0 {
		t.Fatal("no homologies found")
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	points, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// SC total cost must not increase with buffer size.
	for i := 1; i < len(points); i++ {
		if points[i].Totals["SC"] > points[i-1].Totals["SC"]*1.2 {
			t.Fatalf("SC cost rose with buffer: %v", points)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	blocks, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for _, blk := range blocks {
		for i := range blk.Buffers {
			// CC is the approximate lower bound: allow small violations
			// from its randomized seeding, not systematic ones.
			if blk.CCIO[i] > blk.SCIO[i]*1.25 {
				t.Fatalf("%s at B=%d: CC %g far above SC %g",
					blk.Pair, blk.Buffers[i], blk.CCIO[i], blk.SCIO[i])
			}
		}
		// Both costs must broadly decrease with buffer size.
		first, last := blk.SCIO[0], blk.SCIO[len(blk.SCIO)-1]
		if last > first {
			t.Fatalf("%s: SC IO grew with buffer: %v", blk.Pair, blk.SCIO)
		}
	}
}

func TestFig13aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	points, err := Fig13a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		sc := p.Totals["SC"]
		for m, v := range p.Totals {
			// At toy scale fixed overheads allow small inversions; only a
			// clear win over SC is a failure.
			if m != "SC" && v < sc*0.7 {
				t.Fatalf("B=%d: %s (%g) beat SC (%g)", p.X, m, v, sc)
			}
		}
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	points, err := Fig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// SC lowest at every size; every method's cost grows with size overall.
	for _, p := range points {
		sc := p.Totals["SC"]
		for m, v := range p.Totals {
			if m != "SC" && v < sc*0.7 {
				t.Fatalf("size %d: %s (%g) beat SC (%g)", p.X, m, v, sc)
			}
		}
	}
	if points[len(points)-1].Totals["NLJ"] <= points[0].Totals["NLJ"] {
		t.Fatal("NLJ cost did not grow with dataset size")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	cfg := tiny()
	if rows, err := AblationFilterDepth(cfg); err != nil || len(rows) != 3 {
		t.Fatalf("filter: %v %v", rows, err)
	}
	if rows, err := AblationClusterShape(cfg); err != nil || len(rows) != 3 {
		t.Fatalf("shape: %v %v", rows, err)
	}
	if rows, err := AblationSchedule(cfg); err != nil || len(rows) != 2 {
		t.Fatalf("schedule: %v %v", rows, err)
	}
	if rows, err := AblationHistogram(cfg); err != nil || len(rows) != 3 {
		t.Fatalf("histogram: %v %v", rows, err)
	}
	if rows, err := AblationReplacement(cfg); err != nil || len(rows) != 2 {
		t.Fatalf("replacement: %v %v", rows, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := &Config{}
	c.defaults()
	if c.Scale != 0.25 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.n(1000) != 250 || c.buf(8) != 8 {
		t.Fatal("scaling")
	}
	if c.n(10) != 64 {
		t.Fatal("minimum cardinality")
	}
}

func TestNewAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment integration test")
	}
	cfg := tiny()
	if rows, err := AblationReadahead(cfg); err != nil || len(rows) != 3 {
		t.Fatalf("readahead: %v %v", rows, err)
	}
	rows, err := AblationSeekRatio(cfg)
	if err != nil || len(rows) != 3 {
		t.Fatalf("seek ratio: %v %v", rows, err)
	}
	// Cheaper seeks must shrink the NLJ/SC speedup (stored in Total).
	if rows[0].Total > rows[len(rows)-1].Total {
		t.Logf("note: speedup %g at 2x vs %g at 50x (expected to grow with seek cost)", rows[0].Total, rows[len(rows)-1].Total)
	}
}
