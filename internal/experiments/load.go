package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"pmjoin"
	"pmjoin/internal/join"
	"pmjoin/internal/joinsvc"
)

// LoadSpec declares the client mix for the pmjoind load experiment: N
// concurrent clients each walk a deterministic open/query/cancel/explain
// schedule against the real HTTP handler stack (joinsvc over a pmjoin.Server
// with the shared frame cache and admission control enabled).
type LoadSpec struct {
	// Clients is the concurrent client count (default 8).
	Clients int
	// QueriesPerClient is the number of join requests each client issues
	// (default 10).
	QueriesPerClient int
	// CancelEvery cancels every n-th join mid-flight (default 5; 0 never).
	CancelEvery int
	// ExplainEvery inserts a plan-cache request before every n-th join
	// (default 4; 0 never).
	ExplainEvery int
	// ShardEvery runs every n-th join sharded (default 3; 0 never).
	ShardEvery int
	// Serve overrides the server tuning; zero fields take the ServeOptions
	// defaults.
	Serve pmjoin.ServeOptions
}

func (s *LoadSpec) defaults() {
	if s.Clients == 0 {
		s.Clients = 8
	}
	if s.QueriesPerClient == 0 {
		s.QueriesPerClient = 10
	}
	if s.CancelEvery == 0 {
		s.CancelEvery = 5
	}
	if s.ExplainEvery == 0 {
		s.ExplainEvery = 4
	}
	if s.ShardEvery == 0 {
		s.ShardEvery = 3
	}
}

// LoadPoint is the outcome of one load run. Completed + Cancelled +
// Rejected + Failed = Requests; the harness itself fails (returns an error)
// when Failed or Mismatched is nonzero, so a green run certifies zero
// lost/deadlocked requests and bit-identical reports under concurrency.
type LoadPoint struct {
	Clients  int
	Requests int
	// Completed joins returned 200 and matched their solo baseline.
	Completed int
	// Mismatched joins returned 200 but diverged from the solo baseline.
	Mismatched int
	// Cancelled joins were aborted by their client's context.
	Cancelled int
	// Rejected joins hit admission control (HTTP 429).
	Rejected int
	// Failed is everything else — must be zero.
	Failed int
	// Explains that returned 200.
	Explains int
	// P50/P90/P99 are completed-join latency percentiles.
	P50, P90, P99 time.Duration
	// Wall is the whole concurrent phase.
	Wall time.Duration
	// Stats is the server's own ledger after the run.
	Stats pmjoin.ServeStats
}

// loadQuery is one deterministic join spec; the harness derives the set from
// (client, sequence) so a solo baseline exists for every request issued
// under load.
type loadQuery struct {
	left, right string
	opt         joinsvc.JoinOptions
}

// baselineKey collapses a query to its map identity.
func (q loadQuery) key() string {
	return fmt.Sprintf("%s|%s|%g|%d|%d|%v", q.left, q.right, q.opt.Epsilon,
		q.opt.BufferPages, q.opt.Shards, q.opt.Method)
}

// baseline captures the deterministic fields of a solo run.
type baseline struct {
	Results     int64
	PageReads   int64
	Seeks       int64
	Comparisons int64
	Clusters    int
	Truncated   bool
	Pairs       int
}

func toBaseline(r joinsvc.JoinResponse) baseline {
	return baseline{
		Results: r.Results, PageReads: r.PageReads, Seeks: r.Seeks,
		Comparisons: r.Comparisons, Clusters: r.Clusters,
		Truncated: r.Truncated, Pairs: len(r.Pairs),
	}
}

// LoadBench drives the pmjoind handler stack with spec's concurrent mix and
// verifies the service invariants: no request is lost or deadlocked, every
// admission rejection is accounted, and every completed join's report is
// bit-identical to a solo run of the same request. It returns an error —
// failing the benchrunner run — when either invariant breaks.
func LoadBench(cfg *Config, spec LoadSpec) (*LoadPoint, error) {
	cfg.defaults()
	spec.defaults()

	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 512})
	srv, err := pmjoin.NewServer(sys, spec.Serve)
	if err != nil {
		return nil, err
	}
	svc := joinsvc.New(srv)
	h := svc.Handler()

	do := func(ctx context.Context, path string, body any) (*httptest.ResponseRecorder, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
		if ctx != nil {
			req = req.WithContext(ctx)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w, nil
	}

	// Phase 1: open the shared base datasets plus one private dataset per
	// client — the "open" leg of the mix, run up front so every query the
	// concurrent phase can issue has a solo baseline.
	opens := []joinsvc.OpenRequest{
		{Name: "base-a", Kind: pmjoin.KindVector, N: cfg.n(4000), Seed: cfg.Seed},
		{Name: "base-b", Kind: pmjoin.KindVector, N: cfg.n(3000), Seed: cfg.Seed + 1},
	}
	for c := 0; c < spec.Clients; c++ {
		opens = append(opens, joinsvc.OpenRequest{
			Name: fmt.Sprintf("client-%d", c), Kind: pmjoin.KindVector,
			N: cfg.n(1500), Seed: cfg.Seed + 100 + int64(c),
		})
	}
	for _, o := range opens {
		w, err := do(nil, "/open", o)
		if err != nil {
			return nil, err
		}
		if w.Code != http.StatusOK {
			return nil, fmt.Errorf("experiments: open %s: %d %s", o.Name, w.Code, w.Body.String())
		}
	}

	// The deterministic query schedule: client c's i-th join.
	queryFor := func(c, i int) loadQuery {
		q := loadQuery{
			left:  fmt.Sprintf("client-%d", c),
			right: "base-b",
			opt: joinsvc.JoinOptions{
				Method:      pmjoin.SC,
				Epsilon:     0.02 + 0.01*float64(i%3),
				BufferPages: cfg.buf(64),
			},
		}
		if i%2 == 1 {
			q.left = "base-a"
		}
		if spec.ShardEvery > 0 && i%spec.ShardEvery == spec.ShardEvery-1 {
			q.opt.Shards = 3
			q.opt.ShardWorkers = 2
		}
		return q
	}

	// Phase 2: solo baselines, one sequential run per distinct query.
	baselines := make(map[string]baseline)
	for c := 0; c < spec.Clients; c++ {
		for i := 0; i < spec.QueriesPerClient; i++ {
			q := queryFor(c, i)
			if _, ok := baselines[q.key()]; ok {
				continue
			}
			w, err := do(nil, "/join", joinsvc.JoinRequest{Left: q.left, Right: q.right, Options: q.opt})
			if err != nil {
				return nil, err
			}
			if w.Code != http.StatusOK {
				return nil, fmt.Errorf("experiments: baseline %s: %d %s", q.key(), w.Code, w.Body.String())
			}
			var resp joinsvc.JoinResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				return nil, err
			}
			baselines[q.key()] = toBaseline(resp)
		}
	}

	// Phase 3: the concurrent mix. Each client is one task on a WorkerPool
	// sized to the client count, so all clients genuinely overlap.
	type clientTally struct {
		completed, mismatched, cancelled, rejected, failed, explains int
		latencies                                                    []time.Duration
		err                                                          error
	}
	tallies := make([]clientTally, spec.Clients)
	pool := join.NewWorkerPool(spec.Clients)
	start := time.Now()
	for c := 0; c < spec.Clients; c++ {
		c := c
		pool.Run(func() {
			t := &tallies[c]
			for i := 0; i < spec.QueriesPerClient; i++ {
				q := queryFor(c, i)
				if spec.ExplainEvery > 0 && i%spec.ExplainEvery == spec.ExplainEvery-1 {
					w, err := do(nil, "/explain", joinsvc.ExplainRequest{Left: q.left, Right: q.right, Options: q.opt})
					if err != nil {
						t.err = err
						return
					}
					if w.Code == http.StatusOK {
						t.explains++
					} else if w.Code != http.StatusTooManyRequests {
						t.failed++
					}
				}

				ctx := context.Background()
				cancelled := false
				var timer *time.Timer
				var cancel context.CancelFunc
				if spec.CancelEvery > 0 && i%spec.CancelEvery == spec.CancelEvery-1 {
					cancelled = true
					ctx, cancel = context.WithCancel(ctx)
					// Fire from the runtime timer (no bare goroutine);
					// 200µs lands mid-join for these dataset sizes, but
					// any landing is correct — the assertion is only
					// that the request terminates cleanly either way.
					timer = time.AfterFunc(200*time.Microsecond, cancel)
				}

				began := time.Now()
				w, err := do(ctx, "/join", joinsvc.JoinRequest{Left: q.left, Right: q.right, Options: q.opt})
				if timer != nil {
					timer.Stop()
					cancel()
				}
				if err != nil {
					t.err = err
					return
				}
				took := time.Since(began)

				switch {
				case w.Code == http.StatusOK:
					var resp joinsvc.JoinResponse
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						t.err = err
						return
					}
					if toBaseline(resp) != baselines[q.key()] {
						t.mismatched++
					} else {
						t.completed++
						t.latencies = append(t.latencies, took)
					}
				case w.Code == http.StatusTooManyRequests:
					t.rejected++
				case cancelled:
					// A cancel that landed: any error status is a clean
					// termination, not a failure.
					t.cancelled++
				default:
					t.failed++
				}
			}
		})
	}
	pool.Close()
	wall := time.Since(start)

	point := &LoadPoint{Clients: spec.Clients, Requests: spec.Clients * spec.QueriesPerClient, Wall: wall}
	var all []time.Duration
	for c := range tallies {
		t := &tallies[c]
		if t.err != nil {
			return nil, fmt.Errorf("experiments: load client %d: %w", c, t.err)
		}
		point.Completed += t.completed
		point.Mismatched += t.mismatched
		point.Cancelled += t.cancelled
		point.Rejected += t.rejected
		point.Failed += t.failed
		point.Explains += t.explains
		all = append(all, t.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	point.P50 = percentile(all, 0.50)
	point.P90 = percentile(all, 0.90)
	point.P99 = percentile(all, 0.99)
	point.Stats = srv.Stats()

	cfg.printf("\npmjoind load: %d clients x %d joins (cancel 1/%d, explain 1/%d, shard 1/%d)\n",
		spec.Clients, spec.QueriesPerClient, spec.CancelEvery, spec.ExplainEvery, spec.ShardEvery)
	cfg.printf("%10s %10s %10s %10s %10s %10s\n",
		"completed", "cancelled", "rejected", "failed", "mismatch", "explains")
	cfg.printf("%10d %10d %10d %10d %10d %10d\n",
		point.Completed, point.Cancelled, point.Rejected, point.Failed,
		point.Mismatched, point.Explains)
	cfg.printf("latency p50 %v  p90 %v  p99 %v  (wall %v)\n",
		point.P50.Round(time.Microsecond), point.P90.Round(time.Microsecond),
		point.P99.Round(time.Microsecond), wall.Round(time.Millisecond))
	st := point.Stats
	cfg.printf("server: admitted %d rejected %d queueHW %d framesHW %d planHits %d/%d sharedHits %d folded %d\n",
		st.Admitted, st.Rejected, st.QueueHighWater, st.FramesHighWater,
		st.PlanHits, st.PlanHits+st.PlanMisses, st.Shared.Hits, st.FoldedRuns)

	if point.Failed > 0 {
		return point, fmt.Errorf("experiments: load run lost %d requests", point.Failed)
	}
	if point.Mismatched > 0 {
		return point, fmt.Errorf("experiments: %d concurrent reports diverged from solo baselines", point.Mismatched)
	}
	// Cross-check the harness tally against the server's own ledger: every
	// 429 a client saw must appear as a queue-full rejection or a queue
	// deadline expiry on the server, and vice versa.
	if got, want := st.Rejected+st.DeadlineExpired, int64(point.Rejected); got != want {
		return point, fmt.Errorf("experiments: server rejected %d but clients saw %d", got, want)
	}
	return point, nil
}

// percentile reads q from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
