package experiments

import (
	"fmt"
	"reflect"
	"time"

	"pmjoin"
)

// PipelinePoint is one row of the pipelined-execution experiment: one
// workload x method, run with prefetch off (the serial baseline) and on.
type PipelinePoint struct {
	Workload string
	Method   string
	// Clusters is the schedule length; fewer than two means no boundary to
	// pipeline across and the row is expected to show no effect.
	Clusters int
	// PrefetchedPages is the on-mode run's staged page reads (the reads the
	// timeline charges as overlap-capable).
	PrefetchedPages int64

	// Host wall clock of the join phase, off vs on, and their ratio. These
	// depend on the machine and the scheduler; the modeled fields below are
	// the deterministic counterpart.
	JoinWallOff, JoinWallOn time.Duration
	WallSpeedup             float64

	// Modeled pipeline clock (simulated seconds, deterministic for a fixed
	// workload and options). ModeledSerialSeconds is the unpipelined stage
	// time - demand I/O + overlapped I/O + CPU, identical in both modes
	// because the access sequence is identical. ModeledWallSeconds is the
	// on-mode per-stage max(overlapped I/O, CPU) clock; their difference is
	// the modeled time the pipeline hides.
	ModeledSerialSeconds float64
	ModeledWallSeconds   float64
	ModeledSavedSeconds  float64
	// OverlapIOSeconds is the modeled I/O charged as overlap-capable;
	// OverlapRatio is its share of the run's total I/O seconds.
	OverlapIOSeconds float64
	OverlapRatio     float64
}

// pipelineReps is the repetitions per mode; the host wall columns keep the
// fastest rep, the standard defense against scheduler noise.
const pipelineReps = 3

// PipelineBench measures the double-buffered cluster pipeline against the
// prefetch-off baseline on the paper's clustered workloads, and verifies the
// determinism contract along the way: every on-mode Report must be
// byte-identical to its off-mode baseline's. Host wall clocks vary by
// machine (the experiment runs only when named, like -exp parallel and
// kernels); the modeled columns are deterministic. The benchrunner
// serializes the records as BENCH_pipeline.json.
func PipelineBench(cfg *Config) ([]PipelinePoint, error) {
	cfg.defaults()

	type load struct {
		name   string
		method pmjoin.Method
		buf    int
		build  func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error)
	}
	loads := []load{
		{"spatial", pmjoin.SC, cfg.buf(160), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return SpatialPair(cfg)
		}},
		{"spatial", pmjoin.CC, cfg.buf(160), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return SpatialPair(cfg)
		}},
		{"landsat", pmjoin.SC, cfg.buf(400), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return LandsatPair(cfg, 0.5)
		}},
	}

	cfg.printf("\nPipelined execution: prefetch on vs off (join wall = host clock, modeled = sim-s)\n")
	cfg.printf("%-10s %-8s %9s %9s %12s %12s %8s %10s %10s %8s %10s\n",
		"workload", "method", "clusters", "staged", "wall off", "wall on", "speedup",
		"mod serial", "mod wall", "hidden", "report")

	var points []PipelinePoint
	for _, l := range loads {
		sys, da, db, eps, err := l.build()
		if err != nil {
			return nil, err
		}
		opt := pmjoin.Options{
			Method:      l.method,
			Epsilon:     eps,
			BufferPages: l.buf,
			Parallelism: 0, // GOMAXPROCS workers: the CPU phase the pipeline hides behind
		}

		run := func(mode pmjoin.PrefetchMode) (*pmjoin.Result, time.Duration, error) {
			o := opt
			o.Pipeline.Prefetch = mode
			var best *pmjoin.Result
			var bestWall time.Duration
			for rep := 0; rep < pipelineReps; rep++ {
				res, err := sys.Join(da, db, o)
				if err != nil {
					return nil, 0, err
				}
				if best == nil || res.Exec.JoinWall < bestWall {
					best, bestWall = res, res.Exec.JoinWall
				}
			}
			return best, bestWall, nil
		}

		off, wallOff, err := run(pmjoin.PrefetchOff)
		if err != nil {
			return nil, err
		}
		on, wallOn, err := run(pmjoin.PrefetchOn)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(on.Report, off.Report) {
			return nil, fmt.Errorf("experiments: %s/%s prefetch-on produced a different report than off:\n  off: %+v\n  on:  %+v",
				l.name, l.method, off.Report, on.Report)
		}

		p := PipelinePoint{
			Workload:             l.name,
			Method:               l.method.String(),
			Clusters:             off.Report.Clusters,
			PrefetchedPages:      on.Exec.PrefetchedPages,
			JoinWallOff:          wallOff,
			JoinWallOn:           wallOn,
			WallSpeedup:          float64(wallOff) / float64(wallOn),
			ModeledSerialSeconds: on.Exec.ModeledSerialSeconds,
			ModeledWallSeconds:   on.Exec.ModeledWallSeconds,
			ModeledSavedSeconds:  on.Exec.ModeledSerialSeconds - on.Exec.ModeledWallSeconds,
			OverlapIOSeconds:     on.Exec.OverlapIOSeconds,
		}
		if off.Report.IOSeconds > 0 {
			p.OverlapRatio = p.OverlapIOSeconds / off.Report.IOSeconds
		}
		points = append(points, p)
		cfg.printf("%-10s %-8s %9d %9d %12v %12v %7.2fx %10.3f %10.3f %8.3f %10s\n",
			p.Workload, p.Method, p.Clusters, p.PrefetchedPages,
			wallOff.Round(time.Microsecond), wallOn.Round(time.Microsecond), p.WallSpeedup,
			p.ModeledSerialSeconds, p.ModeledWallSeconds, p.ModeledSavedSeconds, "identical")
	}
	cfg.printf("\n")
	return points, nil
}
