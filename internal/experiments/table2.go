package experiments

import (
	"fmt"

	"pmjoin"
)

// Table2Block is one dataset pair's row of Table 2: the I/O cost of SC and
// CC at each buffer size (CC is the paper's approximate I/O lower bound).
type Table2Block struct {
	Pair    string
	Buffers []int
	SCIO    []float64
	CCIO    []float64
}

// Table2 reproduces Table 2: I/O costs of SC and CC for the four dataset
// pairs over the paper's buffer sweeps.
func Table2(cfg *Config) ([]Table2Block, error) {
	cfg.defaults()
	var blocks []Table2Block

	run := func(pair string, sys *pmjoin.System, a, b *pmjoin.Dataset, eps float64, buffers []int) error {
		blk := Table2Block{Pair: pair, Buffers: buffers}
		for _, buf := range buffers {
			sc, err := sys.Join(a, b, pmjoin.Options{Method: pmjoin.SC, Epsilon: eps, BufferPages: buf})
			if err != nil {
				return fmt.Errorf("%s SC at B=%d: %w", pair, buf, err)
			}
			cc, err := sys.Join(a, b, pmjoin.Options{Method: pmjoin.CC, Epsilon: eps, BufferPages: buf})
			if err != nil {
				return fmt.Errorf("%s CC at B=%d: %w", pair, buf, err)
			}
			blk.SCIO = append(blk.SCIO, sc.Report.IOSeconds)
			blk.CCIO = append(blk.CCIO, cc.Report.IOSeconds)
		}
		blocks = append(blocks, blk)
		return nil
	}

	{
		sys, da, db, eps, err := SpatialPair(cfg)
		if err != nil {
			return nil, err
		}
		if err := run("LBeach/MCounty", sys, da, db, eps, cfg.bufs(50, 100, 200, 400, 800)); err != nil {
			return nil, err
		}
	}
	{
		sys, da, db, eps, err := LandsatPair(cfg, 0.125)
		if err != nil {
			return nil, err
		}
		if err := run("Landsat1/Landsat2", sys, da, db, eps, cfg.bufs(125, 250, 500, 1000, 2000)); err != nil {
			return nil, err
		}
	}
	{
		sys, ds, err := HChrSelf(cfg)
		if err != nil {
			return nil, err
		}
		if err := run("HChr18/HChr18", sys, ds, ds, seqMaxEdit, cfg.bufs(100, 200, 400, 800, 1600)); err != nil {
			return nil, err
		}
	}
	{
		sys, dh, dm, err := HChrMChrPair(cfg)
		if err != nil {
			return nil, err
		}
		if err := run("HChr18/MChr18", sys, dh, dm, seqMaxEdit, cfg.bufs(50, 100, 200, 400, 800)); err != nil {
			return nil, err
		}
	}

	cfg.printf("\nTable 2: I/O cost (s) of SC, with CC in parentheses\n")
	for _, blk := range blocks {
		cfg.printf("%-20s", blk.Pair)
		for _, b := range blk.Buffers {
			cfg.printf(" %14d", b)
		}
		cfg.printf("\n%-20s", "")
		for i := range blk.Buffers {
			cfg.printf(" %6.2f (%5.2f)", blk.SCIO[i], blk.CCIO[i])
		}
		cfg.printf("\n")
	}
	return blocks, nil
}
