//go:build race

package experiments

// raceDetectorEnabled reports whether the test binary was built with -race.
// Heavy replication diagnostics skip themselves under the detector: race
// instrumentation slows the EGO/BFRJ inner loops by roughly an order of
// magnitude, and the same code paths are already exercised race-enabled by
// the smaller experiment tests.
const raceDetectorEnabled = true
