package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pmjoin/internal/geom"
	"pmjoin/internal/kernel"
	"pmjoin/internal/predmat"
)

// KernelsRecord is one row of the kernel-vs-reference wall-clock comparison.
// Unlike the paper figures this experiment measures host time, so it runs
// only when named (-exp kernels) and its numbers vary across machines; the
// Checksum fields are deterministic and assert both sides computed the same
// answer.
type KernelsRecord struct {
	// Name identifies the micro-workload, e.g. "pagepair/L2/dim16" or
	// "matrix/mark-construct".
	Name string
	// Dim is the vector dimension (0 for the matrix workload).
	Dim int
	// Ops is the number of unit operations per timed repetition: ε-tests for
	// the page-pair workloads, Mark calls for the matrix workload.
	Ops int64
	// RefNs and KernelNs are nanoseconds per unit operation for the
	// reference implementation and the kernel path.
	RefNs    float64
	KernelNs float64
	// Speedup is RefNs / KernelNs.
	Speedup float64
	// Checksum is the matched-pair count (page-pair) or final marked-cell
	// count (matrix); both sides must agree on it or the run errors out.
	Checksum int64
}

// kernelPageN is the points-per-page of the page-pair micro-workload,
// matching a realistically full data page.
const kernelPageN = 256

// KernelsBench measures the internal/kernel hot paths against the reference
// implementations they replaced: the batched page-pair ε-test per norm and
// dimension, and Mark-heavy prediction-matrix construction against the
// per-Mark sorted-insertion scheme the matrix used before its CSR rewrite.
// The benchrunner serializes the records as BENCH_kernels.json.
func KernelsBench(cfg *Config) ([]KernelsRecord, error) {
	cfg.defaults()
	var records []KernelsRecord

	norms := []struct {
		label string
		norm  geom.Norm
	}{
		{"L2", geom.L2},
		{"L1", geom.Norm{P: 1}},
		{"Linf", geom.LInf},
		{"L3", geom.Norm{P: 3}},
	}
	cfg.printf("Kernel micro-benchmarks (page %d points, ~1%% selectivity)\n", kernelPageN)
	cfg.printf("%-24s %12s %12s %9s %10s\n", "workload", "ref ns/op", "kernel ns/op", "speedup", "matches")
	for _, n := range norms {
		for _, dim := range []int{2, 16, 64, 256} {
			rec, err := benchPagePair(cfg, n.label, n.norm, dim)
			if err != nil {
				return nil, err
			}
			records = append(records, rec)
			cfg.printf("%-24s %12.2f %12.2f %8.1fx %10d\n",
				rec.Name, rec.RefNs, rec.KernelNs, rec.Speedup, rec.Checksum)
		}
	}

	cfg.printf("Cluster-batch dispatch (%d pages x %d rows per side)\n", blockPages, blockPageRows)
	for _, dim := range []int{4, 16, 64} {
		for _, density := range []float64{0.4, 1.0} {
			rec, err := benchBlockPairs(cfg, dim, density)
			if err != nil {
				return nil, err
			}
			records = append(records, rec)
			cfg.printf("%-24s %12.2f %12.2f %8.1fx %10d\n",
				rec.Name, rec.RefNs, rec.KernelNs, rec.Speedup, rec.Checksum)
		}
	}

	rec, err := benchMatrixConstruct(cfg)
	if err != nil {
		return nil, err
	}
	records = append(records, rec)
	cfg.printf("%-24s %12.2f %12.2f %8.1fx %10d\n",
		rec.Name, rec.RefNs, rec.KernelNs, rec.Speedup, rec.Checksum)
	cfg.printf("\n")
	return records, nil
}

// benchPagePair times one probe page against one data page: the reference is
// the geom.Norm.Dist threshold comparison every pre-kernel call site used,
// the kernel side is Threshold + PagePairWithin over the flat block, exactly
// as VectorJoiner runs it (threshold and flat page built once per page,
// scratch reused).
func benchPagePair(cfg *Config, label string, n geom.Norm, dim int) (KernelsRecord, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(dim) + int64(n.P)*1000))
	probes := randomPage(rng, dim)
	data := randomPage(rng, dim)

	// Calibrate ε to ~1% selectivity so the early abandon sees the mostly
	// non-matching traffic a real join page pair produces.
	dists := make([]float64, 0, len(probes)*len(data))
	for _, a := range probes {
		for _, b := range data {
			dists = append(dists, n.Dist(a, b))
		}
	}
	sort.Float64s(dists)
	eps := dists[len(dists)/100]

	var refMatches int64
	ref := func() {
		var m int64
		for _, a := range probes {
			for _, b := range data {
				if n.Dist(a, b) <= eps {
					m++
				}
			}
		}
		refMatches = m
	}

	th := kernel.NewThreshold(n, eps)
	flat := kernel.NewFlatPage(dim, len(data))
	for _, b := range data {
		flat.AppendRow(b)
	}
	scratch := make([]int, 0, len(data))
	var kernMatches int64
	kern := func() {
		var m int64
		for _, a := range probes {
			scratch = kernel.PagePairWithin(&th, a, flat, scratch[:0])
			m += int64(len(scratch))
		}
		kernMatches = m
	}

	ops := int64(len(probes)) * int64(len(data))
	refNs := measureNs(ref, 60*time.Millisecond) / float64(ops)
	kernNs := measureNs(kern, 60*time.Millisecond) / float64(ops)
	if refMatches != kernMatches {
		return KernelsRecord{}, fmt.Errorf("kernels %s/dim%d: reference found %d matches, kernel %d",
			label, dim, refMatches, kernMatches)
	}
	return KernelsRecord{
		Name:     fmt.Sprintf("pagepair/%s/dim%d", label, dim),
		Dim:      dim,
		Ops:      ops,
		RefNs:    refNs,
		KernelNs: kernNs,
		Speedup:  refNs / kernNs,
		Checksum: refMatches,
	}, nil
}

// Cluster-batch workload shape: a cluster-heavy join touches many small
// pages per side, so the batch path's win is streaming probe rows across
// page boundaries instead of re-entering PagePairWithin per marked cell.
const (
	blockPages    = 8
	blockPageRows = 64
)

// benchBlockPairs times one cluster's marked cells evaluated the per-pair
// way — a PagePairWithin call per (probe row, S page) within each cell, the
// loop the clustered executor ran before batch dispatch — against a single
// BlockPairsWithin over the concatenated blocks. density is the fraction of
// the blockPages x blockPages cell grid that is marked; cells are drawn in
// column-major order to match SC cluster entries. Beyond the matched-pair
// checksum, the full hit streams (cell, i, j in emission order) are compared
// element-wise, the same report-equality bar the executor's determinism
// contract sets.
func benchBlockPairs(cfg *Config, dim int, density float64) (KernelsRecord, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(dim)*31 + int64(density*1000)))

	vecsR := make([][]geom.Vector, blockPages)
	vecsS := make([][]geom.Vector, blockPages)
	flatR := make([]*kernel.FlatPage, blockPages)
	flatS := make([]*kernel.FlatPage, blockPages)
	var br, bs kernel.ClusterBlock
	for p := 0; p < blockPages; p++ {
		vecsR[p] = randomRows(rng, blockPageRows, dim)
		vecsS[p] = randomRows(rng, blockPageRows, dim)
		flatR[p] = flattenRows(dim, vecsR[p])
		flatS[p] = flattenRows(dim, vecsS[p])
		br.AddPage(flatR[p])
		bs.AddPage(flatS[p])
	}

	var cells []kernel.Cell
	for s := 0; s < blockPages; s++ {
		for r := 0; r < blockPages; r++ {
			if rng.Float64() < density {
				cells = append(cells, kernel.Cell{R: r, S: s})
			}
		}
	}

	// Calibrate ε to ~1% selectivity over the first marked cell, as a join
	// page pair would see.
	dists := make([]float64, 0, blockPageRows*blockPageRows)
	for _, a := range vecsR[cells[0].R] {
		for _, b := range vecsS[cells[0].S] {
			dists = append(dists, geom.L2.Dist(a, b))
		}
	}
	sort.Float64s(dists)
	th := kernel.NewThresholdSq(dists[len(dists)/100])

	scratch := make([]int, 0, blockPageRows)
	var refMatches int64
	ref := func() {
		var m int64
		for _, c := range cells {
			fs := flatS[c.S]
			for _, a := range vecsR[c.R] {
				scratch = kernel.PagePairWithin(&th, a, fs, scratch[:0])
				m += int64(len(scratch))
			}
		}
		refMatches = m
	}

	hits := make([]kernel.BlockHit, 0, 4096)
	var kernMatches int64
	kern := func() {
		hits = kernel.BlockPairsWithin(&th, &br, &bs, cells, hits[:0])
		kernMatches = int64(len(hits))
	}

	var ops int64
	for range cells {
		ops += int64(blockPageRows) * int64(blockPageRows)
	}
	refTotal, kernTotal := measurePairNs(ref, kern, 200*time.Millisecond)
	refNs := refTotal / float64(ops)
	kernNs := kernTotal / float64(ops)
	if refMatches != kernMatches {
		return KernelsRecord{}, fmt.Errorf("kernels blockpair/dim%d/d%d: reference found %d matches, block kernel %d",
			dim, int(density*100), refMatches, kernMatches)
	}

	// Report equality: the block hit stream must reproduce the per-pair
	// stream pair for pair, in order.
	pos := 0
	for ci, c := range cells {
		fs := flatS[c.S]
		for i, a := range vecsR[c.R] {
			scratch = kernel.PagePairWithin(&th, a, fs, scratch[:0])
			for _, j := range scratch {
				if pos >= len(hits) {
					return KernelsRecord{}, fmt.Errorf("kernels blockpair/dim%d: block stream ended at hit %d, per-pair stream continues", dim, pos)
				}
				h := hits[pos]
				if int(h.Cell) != ci || int(h.I) != i || int(h.J) != j {
					return KernelsRecord{}, fmt.Errorf("kernels blockpair/dim%d: hit %d is (cell %d, i %d, j %d) batched vs (cell %d, i %d, j %d) per-pair",
						dim, pos, h.Cell, h.I, h.J, ci, i, j)
				}
				pos++
			}
		}
	}
	if pos != len(hits) {
		return KernelsRecord{}, fmt.Errorf("kernels blockpair/dim%d: block stream has %d hits, per-pair stream %d", dim, len(hits), pos)
	}

	return KernelsRecord{
		Name:     fmt.Sprintf("blockpair/L2/dim%d/d%d", dim, int(density*100)),
		Dim:      dim,
		Ops:      ops,
		RefNs:    refNs,
		KernelNs: kernNs,
		Speedup:  refNs / kernNs,
		Checksum: refMatches,
	}, nil
}

// randomRows draws n uniform points in [0,1)^dim.
func randomRows(rng *rand.Rand, n, dim int) []geom.Vector {
	rows := make([]geom.Vector, n)
	for i := range rows {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		rows[i] = v
	}
	return rows
}

// flattenRows builds the row-major FlatPage a retained vector page carries.
func flattenRows(dim int, rows []geom.Vector) *kernel.FlatPage {
	f := kernel.NewFlatPage(dim, len(rows))
	for _, r := range rows {
		f.AppendRow(r)
	}
	return f
}

// randomPage draws kernelPageN uniform points in [0,1)^dim.
func randomPage(rng *rand.Rand, dim int) []geom.Vector {
	page := make([]geom.Vector, kernelPageN)
	for i := range page {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		page[i] = v
	}
	return page
}

// Mark-heavy construction workload: a 1024×1024 page matrix marked to ~35%
// density in shuffled order — the arrival order the parallel Build produces
// when clusters finish out of sequence.
const (
	matrixSide  = 1024
	matrixMarks = 367000
)

// benchMatrixConstruct times matrix construction — all Marks plus the final
// index build — for the CSR matrix against the per-Mark sorted-insertion
// representation predmat used before the rewrite (naiveMatrix below, a
// faithful copy of the old implementation).
func benchMatrixConstruct(cfg *Config) (KernelsRecord, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 9000))
	marks := make([]predmat.Entry, matrixMarks)
	for i := range marks {
		marks[i] = predmat.Entry{R: rng.Intn(matrixSide), C: rng.Intn(matrixSide)}
	}

	var refMarked int64
	ref := func() {
		nm := newNaiveMatrix(matrixSide, matrixSide)
		for _, e := range marks {
			nm.Mark(e.R, e.C)
		}
		refMarked = int64(nm.marked)
	}

	var csrMarked int64
	csr := func() {
		m := predmat.NewMatrix(matrixSide, matrixSide)
		for _, e := range marks {
			m.Mark(e.R, e.C)
		}
		csrMarked = int64(m.Finalize().Marked())
	}

	refNs := measureNs(ref, 300*time.Millisecond) / float64(matrixMarks)
	csrNs := measureNs(csr, 300*time.Millisecond) / float64(matrixMarks)
	if refMarked != csrMarked {
		return KernelsRecord{}, fmt.Errorf("kernels matrix: naive marked %d cells, CSR %d", refMarked, csrMarked)
	}
	return KernelsRecord{
		Name:     "matrix/mark-construct",
		Ops:      matrixMarks,
		RefNs:    refNs,
		KernelNs: csrNs,
		Speedup:  refNs / csrNs,
		Checksum: refMarked,
	}, nil
}

// naiveMatrix reproduces the pre-CSR predmat.Matrix construction: every Mark
// binary-searches and memmove-inserts into per-row and per-column sorted
// slices, quadratic in the marks per row/column.
type naiveMatrix struct {
	rows, cols int
	byRow      map[int][]int
	byCol      map[int][]int
	marked     int
}

func newNaiveMatrix(rows, cols int) *naiveMatrix {
	return &naiveMatrix{rows: rows, cols: cols, byRow: make(map[int][]int), byCol: make(map[int][]int)}
}

func (m *naiveMatrix) Mark(r, c int) {
	cols := m.byRow[r]
	pos := sort.SearchInts(cols, c)
	if pos < len(cols) && cols[pos] == c {
		return
	}
	cols = append(cols, 0)
	copy(cols[pos+1:], cols[pos:])
	cols[pos] = c
	m.byRow[r] = cols

	rows := m.byCol[c]
	rpos := sort.SearchInts(rows, r)
	rows = append(rows, 0)
	copy(rows[rpos+1:], rows[rpos:])
	rows[rpos] = r
	m.byCol[c] = rows
	m.marked++
}

// measurePairNs times two implementations of the same work in alternating
// repetitions so host-load drift lands on both sides equally, returning the
// average nanoseconds of one call of each. Back-to-back measureNs runs can
// skew a close comparison by several percent when the machine's load shifts
// between the two windows; interleaving cancels that.
func measurePairNs(a, b func(), minTotal time.Duration) (aNs, bNs float64) {
	a() // warm-up
	b()
	var aTotal, bTotal time.Duration
	reps := 0
	for aTotal+bTotal < 2*minTotal || reps < 2 {
		start := time.Now()
		a()
		aTotal += time.Since(start)
		start = time.Now()
		b()
		bTotal += time.Since(start)
		reps++
	}
	return float64(aTotal.Nanoseconds()) / float64(reps), float64(bTotal.Nanoseconds()) / float64(reps)
}

// measureNs reports the average wall-clock nanoseconds of one f() call,
// repeating after a warm-up call until minTotal has elapsed (at least two
// timed repetitions).
func measureNs(f func(), minTotal time.Duration) float64 {
	f() // warm-up
	var elapsed time.Duration
	reps := 0
	for elapsed < minTotal || reps < 2 {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		reps++
	}
	return float64(elapsed.Nanoseconds()) / float64(reps)
}
