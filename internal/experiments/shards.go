package experiments

import (
	"fmt"
	"reflect"
	"time"

	"pmjoin"
)

// ShardsPoint is one row of the sharded-execution experiment: one workload x
// method x shard count, compared against the 1-shard baseline.
type ShardsPoint struct {
	Workload string
	Method   string
	Shards   int
	// Workers is the coordinator's parallel shard workers for the wall
	// columns (min(Shards, GOMAXPROCS); determinism is worker-independent).
	Workers  int
	Clusters int

	// Cut cost from the shard planner: pages of buffer reuse the cut severs
	// and their modeled seconds (plus the extra per-shard seeks).
	PredictedReads    int64
	CutLostPages      int64
	CutPenaltySeconds float64

	// Modeled shard clock (simulated seconds, deterministic). Shards run
	// concurrently, so the sharded wall is the slowest shard's modeled
	// pipeline clock; the baseline is the 1-shard run's. ModeledSpeedup is
	// their ratio — what sharding buys after paying the cut penalty.
	ModeledWallBase float64
	ModeledWall     float64
	ModeledSpeedup  float64

	// Host wall clock of the join phase, 1-shard baseline vs sharded, best
	// of the reps. Machine-dependent; the modeled columns are the signal.
	JoinWallBase, JoinWall time.Duration
	WallSpeedup            float64
}

// shardsReps is the repetitions per configuration; wall columns keep the
// fastest rep, the standard defense against scheduler noise.
const shardsReps = 3

// ShardsBench measures sharded cluster execution against the 1-shard
// baseline on the paper's clustered workloads, asserting the determinism
// contract along the way: the 1-shard Report must be byte-identical to the
// unsharded executor's, every sharded Report must be identical across worker
// counts {1, GOMAXPROCS}, and the modeled speedup of every multi-shard row
// must exceed 1 (the cut penalty must not swallow the parallelism). Host
// wall clocks vary by machine (the experiment runs only when named, like
// -exp pipeline); the benchrunner serializes the records as
// BENCH_shards.json.
func ShardsBench(cfg *Config) ([]ShardsPoint, error) {
	cfg.defaults()

	type load struct {
		name   string
		method pmjoin.Method
		buf    int
		build  func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error)
	}
	loads := []load{
		{"spatial", pmjoin.SC, cfg.buf(160), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return SpatialPair(cfg)
		}},
		{"spatial", pmjoin.CC, cfg.buf(160), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return SpatialPair(cfg)
		}},
		{"landsat", pmjoin.SC, cfg.buf(400), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return LandsatPair(cfg, 0.5)
		}},
	}
	shardCounts := []int{2, 4}

	cfg.printf("\nSharded execution: N shards vs the 1-shard baseline (wall = host clock, modeled = sim-s)\n")
	cfg.printf("%-10s %-8s %7s %8s %9s %9s %12s %12s %8s %10s %10s %8s %10s\n",
		"workload", "method", "shards", "workers", "clusters", "cut pages",
		"wall base", "wall", "speedup", "mod base", "mod wall", "mod spd", "report")

	var points []ShardsPoint
	for _, l := range loads {
		sys, da, db, eps, err := l.build()
		if err != nil {
			return nil, err
		}
		opt := pmjoin.Options{
			Method:      l.method,
			Epsilon:     eps,
			BufferPages: l.buf,
			Parallelism: 0, // GOMAXPROCS comparison workers, shared across shards
		}

		run := func(shards, workers int) (*pmjoin.Result, time.Duration, error) {
			o := opt
			o.Sharding = pmjoin.ShardingOptions{Shards: shards, Workers: workers}
			var best *pmjoin.Result
			var bestWall time.Duration
			for rep := 0; rep < shardsReps; rep++ {
				res, err := sys.Join(da, db, o)
				if err != nil {
					return nil, 0, err
				}
				if best == nil || res.Exec.JoinWall < bestWall {
					best, bestWall = res, res.Exec.JoinWall
				}
			}
			return best, bestWall, nil
		}

		unsharded, _, err := run(0, 0)
		if err != nil {
			return nil, err
		}
		base, wallBase, err := run(1, 0)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(base.Report, unsharded.Report) {
			return nil, fmt.Errorf("experiments: %s/%s 1-shard report differs from unsharded:\n  unsharded: %+v\n  1-shard:   %+v",
				l.name, l.method, unsharded.Report, base.Report)
		}

		for _, k := range shardCounts {
			serial, _, err := run(k, 1)
			if err != nil {
				return nil, err
			}
			res, wall, err := run(k, 0)
			if err != nil {
				return nil, err
			}
			if !reflect.DeepEqual(res.Report, serial.Report) {
				return nil, fmt.Errorf("experiments: %s/%s shards=%d report differs between 1 and %d workers:\n  1: %+v\n  %d: %+v",
					l.name, l.method, k, res.Exec.ShardWorkers, serial.Report, res.Exec.ShardWorkers, res.Report)
			}

			po := opt
			po.Sharding = pmjoin.ShardingOptions{Shards: k}
			plan, err := sys.Explain(da, db, po)
			if err != nil {
				return nil, err
			}
			var predicted int64
			for _, sh := range plan.Shards {
				predicted += sh.PredictedReads
			}

			p := ShardsPoint{
				Workload:          l.name,
				Method:            l.method.String(),
				Shards:            res.Exec.Shards,
				Workers:           res.Exec.ShardWorkers,
				Clusters:          res.Report.Clusters,
				PredictedReads:    predicted,
				CutLostPages:      plan.CutLostPages,
				CutPenaltySeconds: plan.CutPenaltySeconds,
				ModeledWallBase:   base.Exec.ModeledWallSeconds,
				ModeledWall:       res.Exec.ModeledWallSeconds,
				JoinWallBase:      wallBase,
				JoinWall:          wall,
				WallSpeedup:       float64(wallBase) / float64(wall),
			}
			if p.ModeledWall > 0 {
				p.ModeledSpeedup = p.ModeledWallBase / p.ModeledWall
			}
			if p.ModeledSpeedup <= 1 {
				return nil, fmt.Errorf("experiments: %s/%s shards=%d modeled speedup %.3f <= 1 (cut penalty %.3fs swallowed the parallelism)",
					l.name, l.method, k, p.ModeledSpeedup, p.CutPenaltySeconds)
			}
			points = append(points, p)
			cfg.printf("%-10s %-8s %7d %8d %9d %9d %12v %12v %7.2fx %10.3f %10.3f %7.2fx %10s\n",
				p.Workload, p.Method, p.Shards, p.Workers, p.Clusters, p.CutLostPages,
				wallBase.Round(time.Microsecond), wall.Round(time.Microsecond), p.WallSpeedup,
				p.ModeledWallBase, p.ModeledWall, p.ModeledSpeedup, "identical")
		}
	}
	cfg.printf("\n")
	return points, nil
}
