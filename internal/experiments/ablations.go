package experiments

import (
	"fmt"

	"pmjoin"
	"pmjoin/internal/dataset"
)

// AblationRow is one variant's outcome in an ablation study.
type AblationRow struct {
	Variant string
	IO      float64
	Total   float64
	Matrix  float64 // modeled matrix-construction seconds
	Marked  int
}

// AblationFilterDepth measures the effect of the Figure 2 filter depth (k)
// on prediction-matrix construction: the matrix itself must be identical
// (the filter only prunes work), so the interesting output is the sweep
// effort, reflected in MatrixSeconds.
func AblationFilterDepth(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, depth := range []int{-1, 1, 5} {
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: pmjoin.PMNLJ, Epsilon: eps, BufferPages: cfg.buf(25), FilterDepth: depth,
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("k=%d", depth)
		if depth < 0 {
			label = "no-filter"
		}
		rows = append(rows, AblationRow{
			Variant: label,
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds() + res.MatrixSeconds,
			Matrix:  res.MatrixSeconds,
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: prediction-matrix filter depth (total includes matrix construction)", rows)
	return rows, nil
}

// AblationClusterShape compares the paper's square clusters (r = c = B/2)
// with skewed rectangles, validating observation 1 of Theorem 2.
func AblationClusterShape(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: pmjoin.SC, Epsilon: eps, BufferPages: cfg.buf(25), ClusterRowFraction: frac,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("rows=%.0f%%", frac*100),
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds(),
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: SC cluster shape (buffer fraction devoted to rows)", rows)
	return rows, nil
}

// AblationSchedule compares the greedy sharing-graph cluster order against
// random and creation order (Optimization 3 of §9.1).
func AblationSchedule(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, m := range []pmjoin.Method{pmjoin.SC, pmjoin.RandomSC} {
		res, err := sys.Join(da, db, pmjoin.Options{Method: m, Epsilon: eps, BufferPages: cfg.buf(25)})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: m.String(),
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds(),
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: cluster scheduling (greedy sharing graph vs random)", rows)
	return rows, nil
}

// AblationHistogram sweeps CC's density-histogram resolution.
func AblationHistogram(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, bins := range []int{10, 100, 400} {
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: pmjoin.CC, Epsilon: eps, BufferPages: cfg.buf(25), HistogramBins: bins,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("bins=%d", bins),
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds(),
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: CC histogram resolution", rows)
	return rows, nil
}

// AblationReplacement compares LRU and FIFO replacement under pm-NLJ, whose
// access pattern is the one most sensitive to the policy.
func AblationReplacement(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, pol := range []pmjoin.ReplacementPolicy{pmjoin.LRU, pmjoin.FIFO} {
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: pmjoin.PMNLJ, Epsilon: eps, BufferPages: cfg.buf(25), Policy: pol,
		})
		if err != nil {
			return nil, err
		}
		label := "LRU"
		if pol == pmjoin.FIFO {
			label = "FIFO"
		}
		rows = append(rows, AblationRow{
			Variant: label,
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds(),
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: buffer replacement policy under pm-NLJ", rows)
	return rows, nil
}

func printAblation(cfg *Config, title string, rows []AblationRow) {
	cfg.printf("\n%s\n", title)
	cfg.printf("%-12s %12s %12s %12s %10s\n", "variant", "io", "total", "matrix", "marked")
	for _, r := range rows {
		cfg.printf("%-12s %12.2f %12.2f %12.4f %10d\n", r.Variant, r.IO, r.Total, r.Matrix, r.Marked)
	}
}

// AblationReadahead sweeps the disk model's readahead window, showing how
// sensitive each method's I/O is to short-stride streaming. The join results
// are identical in all variants; only costs move.
func AblationReadahead(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	var rows []AblationRow
	for _, ra := range []int{-1, 4, 16} {
		sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 1024, ReadaheadPages: ra})
		la := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.LBeachSize), cfg.Seed))
		mc := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.MCountySize), cfg.Seed+1))
		da, err := sys.AddVectors("LBeach", la, pmjoin.VectorOptions{PageBytes: 1024})
		if err != nil {
			return nil, err
		}
		db, err := sys.AddVectors("MCounty", mc, pmjoin.VectorOptions{PageBytes: 1024})
		if err != nil {
			return nil, err
		}
		eps, err := sys.CalibrateEpsilon(da, db, spatialDensity)
		if err != nil {
			return nil, err
		}
		res, err := sys.Join(da, db, pmjoin.Options{Method: pmjoin.SC, Epsilon: eps, BufferPages: cfg.buf(25)})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("ra=%d", ra)
		if ra < 0 {
			label = "ra=off"
		}
		rows = append(rows, AblationRow{
			Variant: label,
			IO:      res.Report.IOSeconds,
			Total:   res.TotalSeconds(),
			Marked:  res.MarkedEntries,
		})
	}
	printAblation(cfg, "Ablation: disk readahead window (SC join)", rows)
	return rows, nil
}

// AblationSeekRatio sweeps the seek/transfer cost ratio, showing where the
// clustered join's advantage over NLJ comes from: the cheaper seeks are, the
// smaller the gap.
func AblationSeekRatio(cfg *Config) ([]AblationRow, error) {
	cfg.defaults()
	var rows []AblationRow
	for _, ratio := range []float64{2, 10, 50} {
		sys := pmjoin.NewSystem(pmjoin.DiskModel{
			PageBytes:       1024,
			SeekSeconds:     ratio * 1e-3,
			TransferSeconds: 1e-3,
		})
		la := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.LBeachSize), cfg.Seed))
		mc := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.MCountySize), cfg.Seed+1))
		da, err := sys.AddVectors("LBeach", la, pmjoin.VectorOptions{PageBytes: 1024})
		if err != nil {
			return nil, err
		}
		db, err := sys.AddVectors("MCounty", mc, pmjoin.VectorOptions{PageBytes: 1024})
		if err != nil {
			return nil, err
		}
		eps, err := sys.CalibrateEpsilon(da, db, spatialDensity)
		if err != nil {
			return nil, err
		}
		sc, err := sys.Join(da, db, pmjoin.Options{Method: pmjoin.SC, Epsilon: eps, BufferPages: cfg.buf(25)})
		if err != nil {
			return nil, err
		}
		nlj, err := sys.Join(da, db, pmjoin.Options{Method: pmjoin.NLJ, Epsilon: eps, BufferPages: cfg.buf(25)})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("seek=%gx", ratio),
			IO:      sc.Report.IOSeconds,
			Total:   nlj.TotalSeconds() / sc.TotalSeconds(), // NLJ/SC speedup
			Marked:  sc.MarkedEntries,
		})
	}
	cfg.printf("\nAblation: seek/transfer ratio (io = SC I/O; total column = NLJ/SC speedup)\n")
	cfg.printf("%-12s %12s %12s %10s\n", "variant", "sc-io", "speedup", "marked")
	for _, r := range rows {
		cfg.printf("%-12s %12.2f %12.2f %10d\n", r.Variant, r.IO, r.Total, r.Marked)
	}
	return rows, nil
}
