package experiments

import (
	"fmt"
	"reflect"
	"time"

	"pmjoin"
)

// ParallelPoint is one row of the parallel-speedup experiment.
type ParallelPoint struct {
	Workers  int
	JoinWall time.Duration
	// Speedup is serial JoinWall / this JoinWall.
	Speedup float64
}

// ParallelSpeedup measures the wall-clock effect of Options.Parallelism on
// the CPU-bound comparison phase of one join, and verifies the determinism
// contract along the way: every Report of the parallel runs must be
// byte-identical to the serial baseline's. This is a wall-clock experiment —
// its timings depend on the host — so it lives in benchrunner, not the test
// suite; the determinism comparison alone is what must always hold.
func ParallelSpeedup(cfg *Config, method pmjoin.Method, workers []int) ([]ParallelPoint, error) {
	cfg.defaults()
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	sys, da, db, eps, err := LandsatPair(cfg, 0.5)
	if err != nil {
		return nil, err
	}
	opt := pmjoin.Options{
		Method:      method,
		Epsilon:     eps,
		BufferPages: cfg.buf(400),
	}

	run := func(parallelism int) (*pmjoin.Result, time.Duration, error) {
		o := opt
		o.Parallelism = parallelism
		res, err := sys.Join(da, db, o)
		if err != nil {
			return nil, 0, err
		}
		return res, res.Exec.JoinWall, nil
	}

	cfg.printf("\nParallel speedup: %s join of %s x %s (eps=%g, buffer=%d)\n",
		method, da.Name(), db.Name(), eps, opt.BufferPages)
	cfg.printf("%8s %14s %8s %10s\n", "workers", "join wall", "speedup", "report")

	base, baseWall, err := run(1)
	if err != nil {
		return nil, err
	}
	points := []ParallelPoint{{Workers: 1, JoinWall: baseWall, Speedup: 1}}
	cfg.printf("%8d %14v %8.2f %10s\n", 1, baseWall.Round(time.Microsecond), 1.0, "baseline")

	for _, w := range workers {
		if w <= 1 {
			continue
		}
		res, wall, err := run(w)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(res.Report, base.Report) {
			return nil, fmt.Errorf("experiments: parallelism %d produced a different report than serial:\n  serial:   %+v\n  parallel: %+v",
				w, base.Report, res.Report)
		}
		sp := float64(baseWall) / float64(wall)
		points = append(points, ParallelPoint{Workers: w, JoinWall: wall, Speedup: sp})
		cfg.printf("%8d %14v %8.2f %10s\n", w, wall.Round(time.Microsecond), sp, "identical")
	}
	return points, nil
}
