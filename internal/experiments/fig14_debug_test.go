package experiments

import (
	"testing"

	"pmjoin"
)

// TestFig14EGOMonotonicityDiagnostic prints EGO's cost components across the
// Figure 14 sizes (run with -v; diagnostic aid for the harness).
func TestFig14EGOMonotonicityDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	if raceDetectorEnabled {
		t.Skip("diagnostic only; too slow under the race detector")
	}
	cfg := &Config{Scale: 0.25, Seed: 7}
	fixedEps := 0.0
	for _, f := range []float64{0.125, 0.25, 0.375, 0.5} {
		sys, da, db, eps, err := LandsatPair(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if fixedEps == 0 {
			fixedEps = eps
		}
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: pmjoin.EGO, Epsilon: fixedEps, BufferPages: cfg.buf(2000),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d pages=%d io=%.2f cpu=%.2f reads=%d seeks=%d comps=%d results=%d",
			da.Objects(), da.Pages(), res.Report.IOSeconds, res.Report.CPUJoinSeconds,
			res.Report.PageReads, res.Report.Seeks, res.Report.Comparisons, res.Count())
	}
}
