// Package experiments regenerates every table and figure of the paper's
// evaluation (§9). Each experiment builds its workload on a fresh simulated
// disk, runs the competing join methods, and returns the same rows/series
// the paper reports. The benchrunner command and the repository's
// bench_test.go both drive this package.
//
// Scaling: Config.Scale scales dataset cardinalities AND buffer sizes
// together, so page/buffer ratios — which determine every crossover in the
// paper — are preserved. Scale 1.0 uses the paper's exact cardinalities.
package experiments

import (
	"fmt"
	"io"
	"math"

	"pmjoin"
	"pmjoin/internal/dataset"
)

// Config controls all experiments.
type Config struct {
	// Scale multiplies dataset sizes and buffer sizes (default 0.25; 1.0
	// reproduces the paper's cardinalities).
	Scale float64
	// Seed drives all synthetic data generation.
	Seed int64
	// Out receives the printed tables (nil silences printing).
	Out io.Writer
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// n scales a paper cardinality.
func (c *Config) n(paper int) int {
	v := int(math.Round(float64(paper) * c.Scale))
	if v < 64 {
		v = 64
	}
	return v
}

// buf scales a paper buffer size (minimum 8 pages).
func (c *Config) buf(paper int) int {
	v := int(math.Round(float64(paper) * c.Scale))
	if v < 8 {
		v = 8
	}
	return v
}

// Target page-level selectivities (matrix densities). The paper quotes ~10%
// for the spatial join and ~2% for the genome self join; we calibrate the
// spatial epsilon to 1.5% — the regime in which every ordering the paper
// reports (pm-NLJ below NLJ in both CPU and I/O, SC below pm-NLJ) holds
// simultaneously under the simulator's explicit seek model (see
// EXPERIMENTS.md for the discussion).
const (
	spatialDensity = 0.015
	landsatDensity = 0.005
)

// Sequence-join parameters (Table 1 workloads): subsequence length 500 with
// edit threshold eps*len = 0.01*500 = 5, sampled every 64 positions (the
// stride substitutes for the paper's full sliding set; see DESIGN.md).
const (
	seqWindow  = 500
	seqStride  = 32
	seqMaxEdit = 5
)

// SpatialPair builds the LBeach/MCounty substitute pair on 1 KB pages and
// returns the calibrated epsilon.
func SpatialPair(cfg *Config) (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
	cfg.defaults()
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 1024})
	la := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.LBeachSize), cfg.Seed))
	mc := dataset.ToFloats(dataset.RoadIntersections(cfg.n(dataset.MCountySize), cfg.Seed+1))
	da, err := sys.AddVectors("LBeach", la, pmjoin.VectorOptions{PageBytes: 1024})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	db, err := sys.AddVectors("MCounty", mc, pmjoin.VectorOptions{PageBytes: 1024})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	eps, err := sys.CalibrateEpsilon(da, db, spatialDensity)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return sys, da, db, eps, nil
}

// LandsatPair builds two disjoint Landsat-substitute datasets, each holding
// the given fraction of the full 275,465-vector collection, on 4 KB pages.
func LandsatPair(cfg *Config, fraction float64) (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
	cfg.defaults()
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 4096})
	total := cfg.n(dataset.LandsatSize)
	all := dataset.Landsat(total, dataset.LandsatDim, cfg.Seed+2)
	per := int(float64(total) * fraction)
	if 2*per > total {
		per = total / 2
	}
	parts := dataset.SplitEqual(all, 2, cfg.Seed+3)
	da, err := sys.AddVectors("Landsat-A", dataset.ToFloats(parts[0][:per]), pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	db, err := sys.AddVectors("Landsat-B", dataset.ToFloats(parts[1][:per]), pmjoin.VectorOptions{})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	eps, err := sys.CalibrateEpsilon(da, db, landsatDensity)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return sys, da, db, eps, nil
}

// HChrSelf builds the HChr18 substitute for self subsequence joins.
func HChrSelf(cfg *Config) (*pmjoin.System, *pmjoin.Dataset, error) {
	cfg.defaults()
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 4096})
	n := cfg.n(dataset.HChr18Size)
	seq := dataset.DNA(n, cfg.Seed+4)
	// Plant strided self-homologies so the sampled windows can align
	// (documented substitution: real chromosomes carry segmental
	// duplications the self join finds).
	dataset.PlantHomologiesAligned(seq, seq, n/20000+4, 4*seqWindow, 0.004, seqStride, cfg.Seed+5)
	ds, err := sys.AddString("HChr18", seq, pmjoin.StringOptions{Window: seqWindow, Stride: seqStride})
	if err != nil {
		return nil, nil, err
	}
	return sys, ds, nil
}

// HChrMChrPair builds the HChr18/MChr18 substitute pair.
func HChrMChrPair(cfg *Config) (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, error) {
	cfg.defaults()
	sys := pmjoin.NewSystem(pmjoin.DiskModel{PageBytes: 4096})
	hn := cfg.n(dataset.HChr18Size)
	mn := cfg.n(dataset.MChr18Size)
	h := dataset.DNA(hn, cfg.Seed+6)
	m := dataset.DNA(mn, cfg.Seed+7)
	dataset.PlantHomologiesAligned(m, h, hn/20000+4, 4*seqWindow, 0.004, seqStride, cfg.Seed+8)
	dh, err := sys.AddString("HChr18", h, pmjoin.StringOptions{Window: seqWindow, Stride: seqStride})
	if err != nil {
		return nil, nil, nil, err
	}
	dm, err := sys.AddString("MChr18", m, pmjoin.StringOptions{Window: seqWindow, Stride: seqStride})
	if err != nil {
		return nil, nil, nil, err
	}
	return sys, dh, dm, nil
}

// CostRow is one method's cost breakdown (Figures 10 and 11).
type CostRow struct {
	Method     string
	Preprocess float64
	CPUJoin    float64
	IO         float64
	Results    int64
}

// Total returns the summed cost of the row.
func (r CostRow) Total() float64 { return r.Preprocess + r.CPUJoin + r.IO }

// SweepPoint is one (x, total-cost-per-method) sample of a sweep figure.
type SweepPoint struct {
	X      int // buffer pages or dataset size
	Totals map[string]float64
}

func printCostRows(cfg *Config, title string, rows []CostRow) {
	cfg.printf("\n%s\n", title)
	cfg.printf("%-12s %12s %12s %12s %12s %12s\n", "method", "preprocess", "cpu-join", "io", "total", "results")
	for _, r := range rows {
		cfg.printf("%-12s %12.2f %12.2f %12.2f %12.2f %12d\n",
			r.Method, r.Preprocess, r.CPUJoin, r.IO, r.Total(), r.Results)
	}
}

func printSweep(cfg *Config, title, xLabel string, methods []string, points []SweepPoint) {
	cfg.printf("\n%s\n", title)
	cfg.printf("%-10s", xLabel)
	for _, m := range methods {
		cfg.printf(" %12s", m)
	}
	cfg.printf("\n")
	for _, p := range points {
		cfg.printf("%-10d", p.X)
		for _, m := range methods {
			if v, ok := p.Totals[m]; ok {
				cfg.printf(" %12.2f", v)
			} else {
				cfg.printf(" %12s", "-")
			}
		}
		cfg.printf("\n")
	}
}
