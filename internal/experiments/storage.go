package experiments

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"pmjoin"
)

// StoragePoint is one row of the storage-backend experiment: one workload x
// method, run on the simulator and on the file-backed store — the latter both
// cache-cold (DropStoreCaches before every rep) and cache-warm, each with
// prefetch off (demand reads only) and on (background reader pool).
type StoragePoint struct {
	Workload string
	Method   string
	// Clusters is the schedule length; Pages the two sides' page counts.
	Clusters       int
	PagesA, PagesB int

	// Join wall (host clock, best of storageReps) per mode. Sim runs with
	// prefetch on — the seed configuration every other PR benchmarks.
	SimWall     time.Duration
	ColdWallOff time.Duration
	ColdWallOn  time.Duration
	WarmWallOff time.Duration
	WarmWallOn  time.Duration
	// Speedups are off/on ratios: how much wall time the background readers
	// recover by overlapping physical reads with the join's compute.
	ColdSpeedup float64
	WarmSpeedup float64

	// Physical read account of the cold prefetch-on run's best rep. The read
	// COUNT is a deterministic function of the schedule (every buffer miss is
	// one backend fetch), so it is identical across all four file modes — the
	// run asserts that; the seconds are host wall time.
	MeasuredReads       int64
	ColdMeasuredSeconds float64
	WarmMeasuredSeconds float64
}

// storageReps is the repetitions per mode; the wall columns keep the fastest
// rep, the standard defense against scheduler noise. Cold modes drop the
// store's OS caches before every rep.
const storageReps = 3

// StorageBench measures the file-backed storage path against the simulator
// and itself: sim vs file, cold vs warm, prefetch off vs on — asserting along
// the way that every mode's Report is byte-identical (the storage half of the
// determinism contract) and that the physical read count never moves. Host
// wall clocks vary by machine (the experiment runs only when named, like -exp
// pipeline); the benchrunner serializes the records as BENCH_storage.json.
func StorageBench(cfg *Config) ([]StoragePoint, error) {
	cfg.defaults()

	type load struct {
		name   string
		method pmjoin.Method
		buf    int
		build  func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error)
	}
	loads := []load{
		{"spatial", pmjoin.SC, cfg.buf(160), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return SpatialPair(cfg)
		}},
		{"landsat", pmjoin.SC, cfg.buf(400), func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error) {
			return LandsatPair(cfg, 0.5)
		}},
	}

	cfg.printf("\nStorage backends: sim vs file store, cold/warm x prefetch off/on (wall = host clock)\n")
	cfg.printf("%-10s %-6s %8s %10s %12s %12s %8s %12s %12s %8s %9s %10s\n",
		"workload", "method", "clusters", "sim wall", "cold off", "cold on", "speedup",
		"warm off", "warm on", "speedup", "phys rds", "report")

	var points []StoragePoint
	for _, l := range loads {
		p, err := storageLoad(cfg, l.name, l.method, l.buf, l.build)
		if err != nil {
			return nil, err
		}
		points = append(points, *p)
		cfg.printf("%-10s %-6s %8d %10v %12v %12v %7.2fx %12v %12v %7.2fx %9d %10s\n",
			p.Workload, p.Method, p.Clusters, p.SimWall.Round(time.Microsecond),
			p.ColdWallOff.Round(time.Microsecond), p.ColdWallOn.Round(time.Microsecond), p.ColdSpeedup,
			p.WarmWallOff.Round(time.Microsecond), p.WarmWallOn.Round(time.Microsecond), p.WarmSpeedup,
			p.MeasuredReads, "identical")
	}
	cfg.printf("\n")
	return points, nil
}

// storageLoad runs the full mode matrix for one workload. A function so the
// store directory's cleanup and the store's Close are deferred per load.
func storageLoad(cfg *Config, name string, method pmjoin.Method, buf int,
	build func() (*pmjoin.System, *pmjoin.Dataset, *pmjoin.Dataset, float64, error),
) (*StoragePoint, error) {
	sys, da, db, eps, err := build()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pmjoin-bench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := sys.UseFileStore(dir); err != nil {
		return nil, err
	}
	defer sys.CloseStore()

	opt := pmjoin.Options{
		Method:      method,
		Epsilon:     eps,
		BufferPages: buf,
		Parallelism: 0, // GOMAXPROCS workers: the compute the readers hide behind
	}

	run := func(storage pmjoin.StorageMode, prefetch pmjoin.PrefetchMode, cold bool) (*pmjoin.Result, time.Duration, error) {
		o := opt
		o.Storage = storage
		o.Pipeline.Prefetch = prefetch
		var best *pmjoin.Result
		var bestWall time.Duration
		for rep := 0; rep < storageReps; rep++ {
			if cold {
				if err := sys.DropStoreCaches(); err != nil {
					return nil, 0, err
				}
			}
			res, err := sys.Join(da, db, o)
			if err != nil {
				return nil, 0, err
			}
			if best == nil || res.Exec.JoinWall < bestWall {
				best, bestWall = res, res.Exec.JoinWall
			}
		}
		return best, bestWall, nil
	}

	sim, simWall, err := run(pmjoin.StorageSim, pmjoin.PrefetchOn, false)
	if err != nil {
		return nil, err
	}
	type mode struct {
		label    string
		prefetch pmjoin.PrefetchMode
		cold     bool
	}
	modes := []mode{
		{"cold/off", pmjoin.PrefetchOff, true},
		{"cold/on", pmjoin.PrefetchOn, true},
		{"warm/off", pmjoin.PrefetchOff, false},
		{"warm/on", pmjoin.PrefetchOn, false},
	}
	results := make([]*pmjoin.Result, len(modes))
	walls := make([]time.Duration, len(modes))
	for i, m := range modes {
		res, wall, err := run(pmjoin.StorageFile, m.prefetch, m.cold)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(res.Report, sim.Report) {
			return nil, fmt.Errorf("experiments: %s/%s file %s produced a different report than sim:\n  sim:  %+v\n  file: %+v",
				name, method, m.label, sim.Report, res.Report)
		}
		if res.Exec.MeasuredReads != results0Reads(results, res) {
			return nil, fmt.Errorf("experiments: %s/%s file %s measured %d physical reads, earlier mode measured %d — the read count must be schedule-determined",
				name, method, m.label, res.Exec.MeasuredReads, results0Reads(results, res))
		}
		results[i], walls[i] = res, wall
	}

	p := &StoragePoint{
		Workload:            name,
		Method:              method.String(),
		Clusters:            sim.Report.Clusters,
		PagesA:              da.Pages(),
		PagesB:              db.Pages(),
		SimWall:             simWall,
		ColdWallOff:         walls[0],
		ColdWallOn:          walls[1],
		WarmWallOff:         walls[2],
		WarmWallOn:          walls[3],
		ColdSpeedup:         float64(walls[0]) / float64(walls[1]),
		WarmSpeedup:         float64(walls[2]) / float64(walls[3]),
		MeasuredReads:       results[1].Exec.MeasuredReads,
		ColdMeasuredSeconds: results[1].Exec.MeasuredIOWall,
		WarmMeasuredSeconds: results[3].Exec.MeasuredIOWall,
	}
	return p, nil
}

// results0Reads returns the first already-recorded mode's measured read count
// (the invariant every later mode is checked against), or cur's own count when
// none is recorded yet.
func results0Reads(results []*pmjoin.Result, cur *pmjoin.Result) int64 {
	for _, r := range results {
		if r != nil {
			return r.Exec.MeasuredReads
		}
	}
	return cur.Exec.MeasuredReads
}
