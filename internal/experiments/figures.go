package experiments

import (
	"fmt"

	"pmjoin"
)

// runBreakdown executes the methods and collects cost rows.
func runBreakdown(sys *pmjoin.System, a, b *pmjoin.Dataset, eps float64, buffer int, methods []pmjoin.Method) ([]CostRow, error) {
	rows := make([]CostRow, 0, len(methods))
	for _, m := range methods {
		res, err := sys.Join(a, b, pmjoin.Options{Method: m, Epsilon: eps, BufferPages: buffer})
		if err != nil {
			return nil, fmt.Errorf("%v: %w", m, err)
		}
		rows = append(rows, CostRow{
			Method:     m.String(),
			Preprocess: res.Report.PreprocessSeconds,
			CPUJoin:    res.Report.CPUJoinSeconds,
			IO:         res.Report.IOSeconds,
			Results:    res.Count(),
		})
	}
	return rows, nil
}

// Fig10 reproduces Figure 10: the preprocess / CPU-join / I/O breakdown of
// NLJ, pm-NLJ, random-SC and SC joining LBeach and MCounty (1 KB pages,
// buffer 25).
func Fig10(cfg *Config) ([]CostRow, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	rows, err := runBreakdown(sys, da, db, eps, cfg.buf(25),
		[]pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC})
	if err != nil {
		return nil, err
	}
	printCostRows(cfg, fmt.Sprintf("Fig 10: LBeach x MCounty cost breakdown (eps=%.4g, B=%d)", eps, cfg.buf(25)), rows)
	return rows, nil
}

// Fig11 reproduces Figure 11: the same breakdown for the HChr18 self
// subsequence join (4 KB pages, buffer 100, eps/len = 0.01).
func Fig11(cfg *Config) ([]CostRow, error) {
	cfg.defaults()
	sys, ds, err := HChrSelf(cfg)
	if err != nil {
		return nil, err
	}
	rows, err := runBreakdown(sys, ds, ds, seqMaxEdit, cfg.buf(100),
		[]pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC})
	if err != nil {
		return nil, err
	}
	printCostRows(cfg, fmt.Sprintf("Fig 11: HChr18 self join cost breakdown (maxEdit=%d, B=%d)", seqMaxEdit, cfg.buf(100)), rows)
	return rows, nil
}

// sweepBuffers runs the methods over the scaled buffer sizes and returns
// total costs per point.
func sweepBuffers(sys *pmjoin.System, a, b *pmjoin.Dataset, eps float64, buffers []int, methods []pmjoin.Method, skip func(m pmjoin.Method, buffer int) bool) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, buf := range buffers {
		p := SweepPoint{X: buf, Totals: map[string]float64{}}
		for _, m := range methods {
			if skip != nil && skip(m, buf) {
				continue
			}
			res, err := sys.Join(a, b, pmjoin.Options{Method: m, Epsilon: eps, BufferPages: buf})
			if err != nil {
				return nil, fmt.Errorf("%v at B=%d: %w", m, buf, err)
			}
			p.Totals[m.String()] = res.TotalSeconds()
		}
		points = append(points, p)
	}
	return points, nil
}

func (c *Config) bufs(paper ...int) []int {
	out := make([]int, len(paper))
	for i, b := range paper {
		out[i] = c.buf(b)
	}
	return out
}

// Fig12 reproduces Figure 12: total cost of the HChr18 self join vs buffer
// size for NLJ, pm-NLJ, random-SC and SC (log-log in the paper; we emit the
// raw series). The paper's knee appears where one dataset's pages fit into
// the buffer.
func Fig12(cfg *Config) ([]SweepPoint, error) {
	cfg.defaults()
	sys, ds, err := HChrSelf(cfg)
	if err != nil {
		return nil, err
	}
	buffers := cfg.bufs(100, 200, 400, 800, 1600)
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC}
	points, err := sweepBuffers(sys, ds, ds, seqMaxEdit, buffers, methods, nil)
	if err != nil {
		return nil, err
	}
	printSweep(cfg, fmt.Sprintf("Fig 12: HChr18 self join total cost vs buffer (pages=%d)", ds.Pages()),
		"buffer", methodNames(methods), points)
	return points, nil
}

// Fig13a reproduces Figure 13(a): LBeach x MCounty total cost vs buffer for
// NLJ, BFRJ, EGO and SC. Mirroring the paper, BFRJ is skipped below 200
// (scaled) pages, where its intermediate structures do not fit.
func Fig13a(cfg *Config) ([]SweepPoint, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	buffers := cfg.bufs(25, 50, 100, 200, 400, 800)
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.BFRJ, pmjoin.EGO, pmjoin.SC}
	minBFRJ := cfg.buf(200)
	points, err := sweepBuffers(sys, da, db, eps, buffers, methods,
		func(m pmjoin.Method, buf int) bool { return m == pmjoin.BFRJ && buf < minBFRJ })
	if err != nil {
		return nil, err
	}
	printSweep(cfg, fmt.Sprintf("Fig 13a: LBeach x MCounty total cost vs buffer (eps=%.4g)", eps),
		"buffer", methodNames(methods), points)
	return points, nil
}

// Fig13b reproduces Figure 13(b): Landsat1 x Landsat2 total cost vs buffer.
func Fig13b(cfg *Config) ([]SweepPoint, error) {
	cfg.defaults()
	sys, da, db, eps, err := LandsatPair(cfg, 0.125)
	if err != nil {
		return nil, err
	}
	buffers := cfg.bufs(125, 250, 500, 1000, 2000)
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.BFRJ, pmjoin.EGO, pmjoin.SC}
	points, err := sweepBuffers(sys, da, db, eps, buffers, methods, nil)
	if err != nil {
		return nil, err
	}
	printSweep(cfg, fmt.Sprintf("Fig 13b: Landsat1 x Landsat2 total cost vs buffer (eps=%.4g)", eps),
		"buffer", methodNames(methods), points)
	return points, nil
}

// Fig13c reproduces Figure 13(c): HChr18 self join total cost vs buffer for
// NLJ, BFRJ, EGO and SC.
func Fig13c(cfg *Config) ([]SweepPoint, error) {
	cfg.defaults()
	sys, ds, err := HChrSelf(cfg)
	if err != nil {
		return nil, err
	}
	buffers := cfg.bufs(100, 200, 400, 800, 1600)
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.BFRJ, pmjoin.EGO, pmjoin.SC}
	points, err := sweepBuffers(sys, ds, ds, seqMaxEdit, buffers, methods, nil)
	if err != nil {
		return nil, err
	}
	printSweep(cfg, "Fig 13c: HChr18 self join total cost vs buffer",
		"buffer", methodNames(methods), points)
	return points, nil
}

// Fig14 reproduces Figure 14: total cost of joining two disjoint Landsat
// subsets vs dataset size (12.5%, 25%, 37.5% and 50% of the collection) at a
// buffer of 2000 (scaled) pages.
func Fig14(cfg *Config) ([]SweepPoint, error) {
	cfg.defaults()
	fractions := []float64{0.125, 0.25, 0.375, 0.5}
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.BFRJ, pmjoin.EGO, pmjoin.SC}
	buffer := cfg.buf(2000)
	// One fixed query across sizes, as in the paper: epsilon calibrated on
	// the smallest pair and reused.
	fixedEps := 0.0
	var points []SweepPoint
	for _, f := range fractions {
		sys, da, db, eps, err := LandsatPair(cfg, f)
		if err != nil {
			return nil, err
		}
		if fixedEps == 0 {
			fixedEps = eps
		}
		eps = fixedEps
		p := SweepPoint{X: da.Objects(), Totals: map[string]float64{}}
		for _, m := range methods {
			res, err := sys.Join(da, db, pmjoin.Options{Method: m, Epsilon: eps, BufferPages: buffer})
			if err != nil {
				return nil, fmt.Errorf("%v at %.3g: %w", m, f, err)
			}
			p.Totals[m.String()] = res.TotalSeconds()
		}
		points = append(points, p)
	}
	printSweep(cfg, fmt.Sprintf("Fig 14: Landsat scalability, total cost vs per-dataset size (B=%d)", buffer),
		"tuples", methodNames(methods), points)
	return points, nil
}

func methodNames(ms []pmjoin.Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}
