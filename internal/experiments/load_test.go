package experiments

import "testing"

// TestLoadBenchSmoke runs the pmjoind load mix at a small scale. LoadBench
// itself asserts the service invariants — zero lost requests, every
// concurrent report bit-identical to its solo baseline, rejections balanced
// against the server ledger — and returns an error when any is violated, so
// a green run here is the CI-side proof of the serving-mode contract.
func TestLoadBenchSmoke(t *testing.T) {
	cfg := &Config{Scale: 0.05, Seed: 7}
	point, err := LoadBench(cfg, LoadSpec{Clients: 4, QueriesPerClient: 6})
	if err != nil {
		t.Fatal(err)
	}
	if point.Completed == 0 {
		t.Fatal("load run completed no joins")
	}
	if got := point.Completed + point.Cancelled + point.Rejected + point.Failed; got != point.Requests {
		t.Fatalf("request accounting: %d of %d accounted", got, point.Requests)
	}
	if point.Stats.FoldedRuns == 0 {
		t.Fatal("no metrics folded into the service ledger")
	}
	if point.P50 <= 0 || point.P99 < point.P50 {
		t.Fatalf("latency percentiles: p50=%v p99=%v", point.P50, point.P99)
	}
}
