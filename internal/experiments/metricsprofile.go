package experiments

import (
	"fmt"

	"pmjoin"
	"pmjoin/internal/metrics"
)

// MetricsRecord labels one method's phase-scoped metrics snapshot from the
// profile workload. Everything except the snapshot's wall-clock fields is
// deterministic for a fixed Config.
type MetricsRecord struct {
	Method  string
	Epsilon float64
	Buffer  int
	// TotalSeconds is the simulated join cost (deterministic).
	TotalSeconds float64
	Results      int64
	// Metrics is the run's snapshot, trace included.
	Metrics *metrics.Metrics
}

// MetricsProfile runs the Figure 10 workload (LBeach x MCounty, buffer 25)
// with metrics and tracing enabled for each prediction-matrix method and
// returns the labeled snapshots — the benchrunner serializes them as a JSON
// sidecar. The printed summary sticks to the deterministic counters; wall
// clocks live only in the returned records.
func MetricsProfile(cfg *Config) ([]MetricsRecord, error) {
	cfg.defaults()
	sys, da, db, eps, err := SpatialPair(cfg)
	if err != nil {
		return nil, err
	}
	buffer := cfg.buf(25)
	methods := []pmjoin.Method{pmjoin.NLJ, pmjoin.PMNLJ, pmjoin.RandomSC, pmjoin.SC}

	cfg.printf("Metrics profile: LBeach x MCounty (eps=%.4g, B=%d)\n", eps, buffer)
	cfg.printf("%-10s %8s %8s %8s %8s %10s\n", "method", "reads", "seeks", "hits", "misses", "events")
	records := make([]MetricsRecord, 0, len(methods))
	for _, m := range methods {
		res, err := sys.Join(da, db, pmjoin.Options{
			Method: m, Epsilon: eps, BufferPages: buffer, Trace: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%v: %w", m, err)
		}
		mm := res.Metrics
		records = append(records, MetricsRecord{
			Method:       m.String(),
			Epsilon:      eps,
			Buffer:       buffer,
			TotalSeconds: res.TotalSeconds(),
			Results:      res.Count(),
			Metrics:      mm,
		})
		cfg.printf("%-10s %8d %8d %8d %8d %10d\n", m,
			mm.Disk.Reads, mm.Disk.Seeks+mm.Disk.WriteSeeks,
			mm.Buffer.Hits, mm.Buffer.Misses,
			int64(len(mm.Events))+mm.EventsDropped)
	}
	cfg.printf("\n")
	return records, nil
}
