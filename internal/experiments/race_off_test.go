//go:build !race

package experiments

// raceDetectorEnabled reports whether the test binary was built with -race.
const raceDetectorEnabled = false
