package sflight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoSequential(t *testing.T) {
	var g Group[string, int]
	calls := 0
	v, err, shared := g.Do("k", func() (int, error) { calls++; return 42, nil })
	if v != 42 || err != nil || shared {
		t.Fatalf("Do = (%d, %v, %v), want (42, nil, false)", v, err, shared)
	}
	// A finished flight does not linger: the next call runs fn again.
	v, err, shared = g.Do("k", func() (int, error) { calls++; return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("second Do = (%d, %v, %v), want (7, nil, false)", v, err, shared)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

func TestDoError(t *testing.T) {
	var g Group[int, string]
	boom := errors.New("boom")
	v, err, _ := g.Do(1, func() (string, error) { return "", boom })
	if v != "" || !errors.Is(err, boom) {
		t.Fatalf("Do = (%q, %v), want (\"\", boom)", v, err)
	}
}

// TestDoConcurrent asserts that N concurrent callers of one key observe a
// single execution: exactly one caller reports shared=false, and everyone
// sees the same value.
func TestDoConcurrent(t *testing.T) {
	var g Group[string, int64]
	var execs, unshared atomic.Int64
	release := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	results := make([]int64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("hot", func() (int64, error) {
				<-release // hold the flight open until all callers joined it
				return execs.Add(1), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if !shared {
				unshared.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Give the callers a moment to pile onto the flight, then release it.
	// Late arrivals that miss this flight start their own; execs counts how
	// many distinct executions happened and must stay well below callers.
	close(release)
	wg.Wait()

	if got := unshared.Load(); got != execs.Load() {
		t.Fatalf("unshared callers = %d, executions = %d; want equal", got, execs.Load())
	}
	if execs.Load() == 0 {
		t.Fatal("no executions")
	}
	for i, v := range results {
		if v < 1 || v > execs.Load() {
			t.Fatalf("caller %d saw value %d outside [1, %d]", i, v, execs.Load())
		}
	}
}

func TestDoDistinctKeysDoNotBlock(t *testing.T) {
	var g Group[int, int]
	// fn for key 1 calls Do for key 2: distinct keys must not deadlock.
	v, err, _ := g.Do(1, func() (int, error) {
		inner, err, _ := g.Do(2, func() (int, error) { return 2, nil })
		return inner + 1, err
	})
	if v != 3 || err != nil {
		t.Fatalf("nested Do = (%d, %v), want (3, nil)", v, err)
	}
}
