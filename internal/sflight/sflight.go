// Package sflight implements single-flight call deduplication: concurrent
// callers asking for the same key share one execution of the population
// function instead of each running it redundantly.
//
// The join service uses it for the two caches that sit in front of expensive
// deterministic work — the prediction-matrix cache and the Explain-plan
// cache. Because the protected computations are deterministic (a matrix or
// plan is a pure function of its key), which caller's execution wins is
// unobservable; single-flight only removes the redundant work the old
// first-writer-wins scheme paid under concurrent cold starts.
package sflight

import "sync"

// call is one in-flight execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group deduplicates concurrent calls by key. The zero value is ready to
// use. A Group is safe for concurrent use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do executes fn under key: if another call with the same key is already in
// flight, Do waits for it and returns its results instead of invoking fn.
// The boolean reports whether the result was shared from another caller's
// execution. Results are not cached beyond the flight — callers layer their
// own cache in front (check cache, miss, Do, store).
//
// fn runs without the group's lock held, so it may call Do with a different
// key; calling Do with the same key from inside fn deadlocks.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &call[V]{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
