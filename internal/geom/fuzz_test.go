package geom

import (
	"math"
	"testing"
)

// FuzzMBRIntersect fuzzes the MBR algebra against the lower-bound contract
// the prediction matrix depends on (Theorem 1): for every norm, MinDist
// between two MBRs never exceeds the distance between any pair of contained
// points, and MinDist is zero exactly when the closed rectangles intersect.
func FuzzMBRIntersect(f *testing.F) {
	// Seed corpus: overlapping, disjoint-on-x, touching-edge, containing,
	// and degenerate (point) rectangles.
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5, 2.0, 2.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 3.0, 0.0, 4.0, 1.0)
	f.Add(0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0)
	f.Add(-5.0, -5.0, 5.0, 5.0, -1.0, -1.0, 1.0, 1.0)
	f.Add(0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75)
	f.Add(-1e9, -1e-9, 1e-9, 1e9, 0.0, 0.0, 0.0, 0.0)

	norms := []Norm{L1, L2, LInf, {P: 3}}

	f.Fuzz(func(t *testing.T, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) {
		for _, v := range []float64{ax1, ay1, ax2, ay2, bx1, by1, bx2, by2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				t.Skip("degenerate coordinate")
			}
		}
		a := NewMBR(Vector{ax1, ay1})
		a.ExtendPoint(Vector{ax2, ay2})
		b := NewMBR(Vector{bx1, by1})
		b.ExtendPoint(Vector{bx2, by2})

		overlap := a.Intersects(b)
		inter := Intersect(a, b)
		if inter.IsEmpty() == overlap {
			t.Fatalf("Intersect(%v, %v).IsEmpty() = %v, but Intersects = %v",
				a, b, inter.IsEmpty(), overlap)
		}
		u := Union(a, b)
		if !u.ContainsMBR(a) || !u.ContainsMBR(b) {
			t.Fatalf("Union(%v, %v) = %v does not contain both inputs", a, b, u)
		}

		// Sample points guaranteed to lie inside each rectangle.
		corners := func(m MBR) []Vector {
			return []Vector{
				{m.Min[0], m.Min[1]},
				{m.Min[0], m.Max[1]},
				{m.Max[0], m.Min[1]},
				{m.Max[0], m.Max[1]},
				m.Center(),
			}
		}
		for _, n := range norms {
			md := n.MinDist(a, b)
			if overlap && md != 0 {
				t.Fatalf("%v.MinDist of intersecting %v, %v = %g, want 0", n, a, b, md)
			}
			if !overlap && md <= 0 {
				t.Fatalf("%v.MinDist of disjoint %v, %v = %g, want > 0", n, a, b, md)
			}
			for _, pa := range corners(a) {
				for _, pb := range corners(b) {
					d := n.Dist(pa, pb)
					// MinDist must lower-bound the point distance; allow one
					// part in 1e12 for the Pow-based norms' rounding.
					if md > d*(1+1e-12)+1e-300 {
						t.Fatalf("%v.MinDist(%v, %v) = %g exceeds point distance %g (%v..%v)",
							n, a, b, md, d, pa, pb)
					}
					if mp := n.MinDistPoint(pa, b); mp > d*(1+1e-12)+1e-300 {
						t.Fatalf("%v.MinDistPoint(%v, %v) = %g exceeds point distance %g",
							n, pa, b, mp, d)
					}
				}
			}
		}
	})
}
