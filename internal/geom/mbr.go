package geom

import (
	"fmt"
	"math"
)

// MBR is a minimum bounding rectangle in d dimensions. An MBR with no
// dimensions or with Min[i] > Max[i] in any dimension is empty.
type MBR struct {
	Min, Max Vector
}

// NewMBR returns an MBR covering exactly the point p.
func NewMBR(p Vector) MBR {
	return MBR{Min: p.Clone(), Max: p.Clone()}
}

// EmptyMBR returns the canonical empty MBR of dimensionality d: every
// dimension is inverted so that any ExtendPoint fixes it.
func EmptyMBR(d int) MBR {
	m := MBR{Min: make(Vector, d), Max: make(Vector, d)}
	for i := 0; i < d; i++ {
		m.Min[i] = math.Inf(1)
		m.Max[i] = math.Inf(-1)
	}
	return m
}

// Dim returns the dimensionality.
func (m MBR) Dim() int { return len(m.Min) }

// IsEmpty reports whether the MBR contains no points.
func (m MBR) IsEmpty() bool {
	if len(m.Min) == 0 {
		return true
	}
	for i := range m.Min {
		if m.Min[i] > m.Max[i] {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (m MBR) Clone() MBR { return MBR{Min: m.Min.Clone(), Max: m.Max.Clone()} }

func (m MBR) String() string { return fmt.Sprintf("MBR[%v..%v]", m.Min, m.Max) }

// ExtendPoint grows the MBR in place to cover p.
func (m *MBR) ExtendPoint(p Vector) {
	for i := range p {
		if p[i] < m.Min[i] {
			m.Min[i] = p[i]
		}
		if p[i] > m.Max[i] {
			m.Max[i] = p[i]
		}
	}
}

// ExtendMBR grows the MBR in place to cover o.
func (m *MBR) ExtendMBR(o MBR) {
	if o.IsEmpty() {
		return
	}
	for i := range o.Min {
		if o.Min[i] < m.Min[i] {
			m.Min[i] = o.Min[i]
		}
		if o.Max[i] > m.Max[i] {
			m.Max[i] = o.Max[i]
		}
	}
}

// Union returns the smallest MBR covering both a and b.
func Union(a, b MBR) MBR {
	if a.IsEmpty() {
		return b.Clone()
	}
	if b.IsEmpty() {
		return a.Clone()
	}
	out := a.Clone()
	out.ExtendMBR(b)
	return out
}

// Intersect returns the intersection of a and b (possibly empty).
func Intersect(a, b MBR) MBR {
	if a.IsEmpty() || b.IsEmpty() {
		return EmptyMBR(a.Dim())
	}
	out := MBR{Min: make(Vector, a.Dim()), Max: make(Vector, a.Dim())}
	for i := range a.Min {
		out.Min[i] = math.Max(a.Min[i], b.Min[i])
		out.Max[i] = math.Min(a.Max[i], b.Max[i])
	}
	return out
}

// Intersects reports whether a and b overlap (closed rectangles).
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i := range m.Min {
		if m.Max[i] < o.Min[i] || o.Max[i] < m.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside the closed rectangle.
func (m MBR) Contains(p Vector) bool {
	if m.IsEmpty() {
		return false
	}
	for i := range p {
		if p[i] < m.Min[i] || p[i] > m.Max[i] {
			return false
		}
	}
	return true
}

// ContainsMBR reports whether o lies entirely inside m.
func (m MBR) ContainsMBR(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	for i := range m.Min {
		if o.Min[i] < m.Min[i] || o.Max[i] > m.Max[i] {
			return false
		}
	}
	return true
}

// Extended returns a copy of the MBR grown by r in every direction (the
// paper's prediction-matrix construction extends MBRs by ε/2 in all
// directions so that extended-MBR intersection implies MinDist < ε under L∞;
// for other norms it remains a conservative — i.e. complete — predictor).
func (m MBR) Extended(r float64) MBR {
	out := m.Clone()
	for i := range out.Min {
		out.Min[i] -= r
		out.Max[i] += r
	}
	return out
}

// Area returns the d-dimensional volume of the MBR (0 if empty).
func (m MBR) Area() float64 {
	if m.IsEmpty() {
		return 0
	}
	a := 1.0
	for i := range m.Min {
		a *= m.Max[i] - m.Min[i]
	}
	return a
}

// Margin returns the sum of edge lengths (the R*-tree "margin" criterion).
func (m MBR) Margin() float64 {
	if m.IsEmpty() {
		return 0
	}
	var s float64
	for i := range m.Min {
		s += m.Max[i] - m.Min[i]
	}
	return s
}

// Center returns the center point of the MBR.
func (m MBR) Center() Vector {
	c := make(Vector, m.Dim())
	for i := range m.Min {
		c[i] = (m.Min[i] + m.Max[i]) / 2
	}
	return c
}

// MinDist returns the minimum Lp distance between any point of a and any
// point of b. It is 0 when the rectangles overlap. MinDist lower-bounds the
// distance between any pair of points contained in a and b, which is the
// lower-bounding predictor property the prediction matrix relies on
// (Theorem 1).
func (n Norm) MinDist(a, b MBR) float64 {
	if a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	gap := make(Vector, a.Dim())
	for i := range a.Min {
		switch {
		case b.Min[i] > a.Max[i]:
			gap[i] = b.Min[i] - a.Max[i]
		case a.Min[i] > b.Max[i]:
			gap[i] = a.Min[i] - b.Max[i]
		default:
			gap[i] = 0
		}
	}
	zero := make(Vector, a.Dim())
	return n.Dist(gap, zero)
}

// MinDistPoint returns the minimum Lp distance from point p to MBR m.
func (n Norm) MinDistPoint(p Vector, m MBR) float64 {
	if m.IsEmpty() {
		return math.Inf(1)
	}
	gap := make(Vector, len(p))
	for i := range p {
		switch {
		case p[i] < m.Min[i]:
			gap[i] = m.Min[i] - p[i]
		case p[i] > m.Max[i]:
			gap[i] = p[i] - m.Max[i]
		default:
			gap[i] = 0
		}
	}
	zero := make(Vector, len(p))
	return n.Dist(gap, zero)
}
