// Package geom provides vectors, minimum bounding rectangles (MBRs), and the
// vector-norm distance measures used by the join framework.
//
// The paper works with arbitrary metrics; for point, spatial, and time-series
// data it uses vector norms (L1, L2, ..., L∞) whose MBR-to-MBR MinDist is a
// lower bound of the point-to-point distance (Table 1).
package geom

import (
	"fmt"
	"math"
)

// Vector is a point in d-dimensional space.
type Vector []float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Norm identifies an Lp vector norm. Use P = 0 for L∞ (the maximum norm).
type Norm struct {
	P int // 1, 2, 3, ... ; 0 means L∞
}

// Common norms.
var (
	L1   = Norm{P: 1}
	L2   = Norm{P: 2}
	LInf = Norm{P: 0}
)

func (n Norm) String() string {
	if n.P == 0 {
		return "Linf"
	}
	return fmt.Sprintf("L%d", n.P)
}

// Dist returns the Lp distance between a and b. The vectors must have equal
// dimensionality; Dist panics otherwise (programming error, not data error).
func (n Norm) Dist(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(a), len(b)))
	}
	switch n.P {
	case 0:
		var m float64
		for i := range a {
			d := math.Abs(a[i] - b[i])
			if d > m {
				m = d
			}
		}
		return m
	case 1:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case 2:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	default:
		var s float64
		p := float64(n.P)
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), p)
		}
		return math.Pow(s, 1/p)
	}
}

// DistSq returns the squared L2 distance (cheap pruning helper).
func DistSq(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
