// Package geom provides vectors, minimum bounding rectangles (MBRs), and the
// vector-norm distance measures used by the join framework.
//
// The paper works with arbitrary metrics; for point, spatial, and time-series
// data it uses vector norms (L1, L2, ..., L∞) whose MBR-to-MBR MinDist is a
// lower bound of the point-to-point distance (Table 1).
package geom

import (
	"fmt"
	"math"
)

// Vector is a point in d-dimensional space.
type Vector []float64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Norm identifies an Lp vector norm. Use P = 0 for L∞ (the maximum norm).
type Norm struct {
	P int // 1, 2, 3, ... ; 0 means L∞
}

// Common norms.
var (
	L1   = Norm{P: 1}
	L2   = Norm{P: 2}
	LInf = Norm{P: 0}
)

func (n Norm) String() string {
	if n.P == 0 {
		return "Linf"
	}
	return fmt.Sprintf("L%d", n.P)
}

// Dist returns the Lp distance between a and b. The vectors must have equal
// dimensionality; Dist panics otherwise (programming error, not data error).
func (n Norm) Dist(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(a), len(b)))
	}
	switch n.P {
	case 0:
		var m float64
		for i := range a {
			d := math.Abs(a[i] - b[i])
			if d > m {
				m = d
			}
		}
		return m
	case 1:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	case 2:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	default:
		var s float64
		for i := range a {
			s += PowInt(math.Abs(a[i]-b[i]), n.P)
		}
		// The final root has no integer shortcut; math.Pow stays as the
		// general fallback.
		return math.Pow(s, 1/float64(n.P))
	}
}

// PowInt returns x**p for integer p >= 1 by LSB-first binary exponentiation —
// the same square-and-multiply order math.Pow uses for integer exponents, so
// in the normal floating-point range the result is bit-identical to
// math.Pow(x, float64(p)) while skipping Pow's exp/log machinery. Near the
// overflow/underflow boundaries the intermediate squares may saturate where
// Pow's exponent-tracking would not; the Lp distances computed here never
// operate in that range.
func PowInt(x float64, p int) float64 {
	r := 1.0
	for ; p > 0; p >>= 1 {
		if p&1 == 1 {
			r *= x
		}
		if p > 1 {
			x *= x
		}
	}
	return r
}

// DistSq returns the squared L2 distance (cheap pruning helper).
func DistSq(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
