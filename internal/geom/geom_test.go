package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func TestNormNames(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LInf.String() != "Linf" {
		t.Fatal("norm names")
	}
	if (Norm{P: 3}).String() != "L3" {
		t.Fatal("L3 name")
	}
}

func TestDistKnownValues(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got := L2.Dist(a, b); got != 5 {
		t.Fatalf("L2 = %g", got)
	}
	if got := L1.Dist(a, b); got != 7 {
		t.Fatalf("L1 = %g", got)
	}
	if got := LInf.Dist(a, b); got != 4 {
		t.Fatalf("Linf = %g", got)
	}
	if got := (Norm{P: 3}).Dist(a, b); math.Abs(got-math.Pow(27+64, 1.0/3)) > 1e-12 {
		t.Fatalf("L3 = %g", got)
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2.Dist(Vector{1}, Vector{1, 2})
}

func TestDistProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	norms := []Norm{L1, L2, LInf, {P: 3}}
	for iter := 0; iter < 300; iter++ {
		dim := 1 + rng.Intn(8)
		a, b, c := randVec(rng, dim), randVec(rng, dim), randVec(rng, dim)
		for _, n := range norms {
			dab, dba := n.Dist(a, b), n.Dist(b, a)
			if math.Abs(dab-dba) > 1e-9 {
				t.Fatalf("%v not symmetric: %g vs %g", n, dab, dba)
			}
			if n.Dist(a, a) != 0 {
				t.Fatalf("%v: d(a,a) != 0", n)
			}
			if dab < 0 {
				t.Fatalf("%v negative distance", n)
			}
			// Triangle inequality.
			if n.Dist(a, c) > dab+n.Dist(b, c)+1e-9 {
				t.Fatalf("%v violates triangle inequality", n)
			}
		}
		// Norm ordering: Linf <= L2 <= L1.
		if LInf.Dist(a, b) > L2.Dist(a, b)+1e-9 || L2.Dist(a, b) > L1.Dist(a, b)+1e-9 {
			t.Fatal("norm ordering violated")
		}
	}
}

func TestDistSqMatchesL2(t *testing.T) {
	clamp := func(v float64) float64 { return math.Mod(v, 1e6) } // avoid overflow to +Inf
	f := func(ax, ay, bx, by float64) bool {
		a := Vector{clamp(ax), clamp(ay)}
		b := Vector{clamp(bx), clamp(by)}
		d := L2.Dist(a, b)
		return math.Abs(DistSq(a, b)-d*d) < 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMBRBasics(t *testing.T) {
	m := NewMBR(Vector{1, 2})
	if m.IsEmpty() || m.Dim() != 2 {
		t.Fatal("point MBR")
	}
	if m.Area() != 0 {
		t.Fatal("point MBR area")
	}
	m.ExtendPoint(Vector{3, 0})
	if m.Min[0] != 1 || m.Min[1] != 0 || m.Max[0] != 3 || m.Max[1] != 2 {
		t.Fatalf("extend: %v", m)
	}
	if m.Area() != 4 {
		t.Fatalf("area = %g", m.Area())
	}
	if m.Margin() != 4 {
		t.Fatalf("margin = %g", m.Margin())
	}
	c := m.Center()
	if c[0] != 2 || c[1] != 1 {
		t.Fatalf("center = %v", c)
	}
}

func TestEmptyMBR(t *testing.T) {
	e := EmptyMBR(3)
	if !e.IsEmpty() {
		t.Fatal("EmptyMBR not empty")
	}
	if e.Area() != 0 || e.Margin() != 0 {
		t.Fatal("empty metrics")
	}
	if e.Contains(Vector{0, 0, 0}) {
		t.Fatal("empty contains point")
	}
	e.ExtendPoint(Vector{1, 2, 3})
	if e.IsEmpty() {
		t.Fatal("extend of empty failed")
	}
	if !e.Contains(Vector{1, 2, 3}) {
		t.Fatal("contains after extend")
	}
}

func TestMBRString(t *testing.T) {
	if NewMBR(Vector{1}).String() == "" {
		t.Fatal("empty string")
	}
}

func TestIntersectsAndIntersect(t *testing.T) {
	a := MBR{Min: Vector{0, 0}, Max: Vector{2, 2}}
	b := MBR{Min: Vector{1, 1}, Max: Vector{3, 3}}
	c := MBR{Min: Vector{5, 5}, Max: Vector{6, 6}}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Fatal("intersects")
	}
	// Touching boxes intersect (closed rectangles).
	d := MBR{Min: Vector{2, 0}, Max: Vector{4, 2}}
	if !a.Intersects(d) {
		t.Fatal("touching boxes must intersect")
	}
	x := Intersect(a, b)
	if x.Min[0] != 1 || x.Max[0] != 2 {
		t.Fatalf("intersect = %v", x)
	}
	if !Intersect(a, c).IsEmpty() {
		t.Fatal("disjoint intersection not empty")
	}
}

func TestUnionAndContainsMBR(t *testing.T) {
	a := MBR{Min: Vector{0, 0}, Max: Vector{1, 1}}
	b := MBR{Min: Vector{2, 2}, Max: Vector{3, 3}}
	u := Union(a, b)
	if !u.ContainsMBR(a) || !u.ContainsMBR(b) {
		t.Fatal("union does not contain inputs")
	}
	if Union(EmptyMBR(2), a).IsEmpty() {
		t.Fatal("union with empty")
	}
	if !Union(a, EmptyMBR(2)).ContainsMBR(a) {
		t.Fatal("union with empty rhs")
	}
	if a.ContainsMBR(u) {
		t.Fatal("a should not contain union")
	}
}

func TestExtended(t *testing.T) {
	a := MBR{Min: Vector{0, 0}, Max: Vector{1, 1}}
	e := a.Extended(0.5)
	if e.Min[0] != -0.5 || e.Max[1] != 1.5 {
		t.Fatalf("extended = %v", e)
	}
	// Original must be unchanged.
	if a.Min[0] != 0 {
		t.Fatal("Extended mutated receiver")
	}
}

// TestMinDistLowerBounds is the core predictor property (Theorem 1 relies on
// it): for any two MBRs and any points inside them, MinDist(a,b) <= dist(p,q).
func TestMinDistLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	norms := []Norm{L1, L2, LInf, {P: 4}}
	for iter := 0; iter < 500; iter++ {
		dim := 1 + rng.Intn(6)
		p, q := randVec(rng, dim), randVec(rng, dim)
		a, b := NewMBR(p), NewMBR(q)
		// Grow the boxes with extra random points.
		for k := 0; k < rng.Intn(4); k++ {
			a.ExtendPoint(randVec(rng, dim))
			b.ExtendPoint(randVec(rng, dim))
		}
		for _, n := range norms {
			if md := n.MinDist(a, b); md > n.Dist(p, q)+1e-9 {
				t.Fatalf("%v MinDist %g > dist %g", n, md, n.Dist(p, q))
			}
		}
	}
}

func TestMinDistOverlappingIsZero(t *testing.T) {
	a := MBR{Min: Vector{0, 0}, Max: Vector{2, 2}}
	b := MBR{Min: Vector{1, 1}, Max: Vector{3, 3}}
	if L2.MinDist(a, b) != 0 {
		t.Fatal("overlapping MinDist != 0")
	}
}

func TestMinDistKnown(t *testing.T) {
	a := MBR{Min: Vector{0, 0}, Max: Vector{1, 1}}
	b := MBR{Min: Vector{4, 5}, Max: Vector{6, 7}}
	if got := L2.MinDist(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MinDist = %g, want 5", got)
	}
	if got := L1.MinDist(a, b); got != 7 {
		t.Fatalf("L1 MinDist = %g", got)
	}
	if !math.IsInf(L2.MinDist(EmptyMBR(2), b), 1) {
		t.Fatal("MinDist with empty should be +Inf")
	}
}

func TestMinDistPoint(t *testing.T) {
	m := MBR{Min: Vector{0, 0}, Max: Vector{2, 2}}
	if got := L2.MinDistPoint(Vector{1, 1}, m); got != 0 {
		t.Fatalf("inside point = %g", got)
	}
	if got := L2.MinDistPoint(Vector{5, 2}, m); got != 3 {
		t.Fatalf("outside point = %g", got)
	}
	if !math.IsInf(L2.MinDistPoint(Vector{0, 0}, EmptyMBR(2)), 1) {
		t.Fatal("empty MBR should give +Inf")
	}
	// Lower-bound property against contained points.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		q := randVec(rng, 3)
		box := NewMBR(randVec(rng, 3))
		box.ExtendPoint(randVec(rng, 3))
		inside := make(Vector, 3)
		for d := 0; d < 3; d++ {
			inside[d] = box.Min[d] + rng.Float64()*(box.Max[d]-box.Min[d])
		}
		if L2.MinDistPoint(q, box) > L2.Dist(q, inside)+1e-9 {
			t.Fatal("MinDistPoint not a lower bound")
		}
	}
}

func TestIntersectCommutesAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		a := NewMBR(randVec(rng, 2))
		a.ExtendPoint(randVec(rng, 2))
		b := NewMBR(randVec(rng, 2))
		b.ExtendPoint(randVec(rng, 2))
		x := Intersect(a, b)
		y := Intersect(b, a)
		if x.IsEmpty() != y.IsEmpty() {
			t.Fatal("intersect not commutative in emptiness")
		}
		if !x.IsEmpty() {
			if !a.ContainsMBR(x) || !b.ContainsMBR(x) {
				t.Fatal("intersection escapes inputs")
			}
		}
		if a.Intersects(b) != !x.IsEmpty() {
			t.Fatal("Intersects disagrees with Intersect emptiness")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewMBR(Vector{1, 2})
	c := a.Clone()
	c.Min[0] = 99
	if a.Min[0] == 99 {
		t.Fatal("clone aliases")
	}
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 5
	if v[0] == 5 {
		t.Fatal("vector clone aliases")
	}
}
