package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestPowIntMatchesMathPow pins PowInt to math.Pow's integer-exponent result
// bit for bit across the normal range, for the exponents the Lp distances
// use. The Dist fast path for p >= 3 relies on this equivalence: swapping
// math.Pow for PowInt must not move a single result.
func TestPowIntMatchesMathPow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{1, 2, 3, 4, 5, 7, 10} {
		for trial := 0; trial < 5000; trial++ {
			// Magnitudes spanning tiny to large but away from the extreme
			// over/underflow boundaries PowInt documents as out of scope.
			x := math.Ldexp(rng.Float64(), rng.Intn(160)-80)
			got := PowInt(x, p)
			want := math.Pow(x, float64(p))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("PowInt(%.17g, %d) = %.17g (%#x), math.Pow = %.17g (%#x)",
					x, p, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// TestPowIntEdgeValues pins the special inputs.
func TestPowIntEdgeValues(t *testing.T) {
	cases := []struct {
		x    float64
		p    int
		want float64
	}{
		{0, 3, 0},
		{1, 10, 1},
		{2, 3, 8},
		{2, 4, 16},
		{10, 3, 1000},
		{math.Inf(1), 3, math.Inf(1)},
	}
	for _, c := range cases {
		if got := PowInt(c.x, c.p); got != c.want {
			t.Errorf("PowInt(%g, %d) = %g, want %g", c.x, c.p, got, c.want)
		}
	}
	if !math.IsNaN(PowInt(math.NaN(), 3)) {
		t.Error("PowInt(NaN, 3) is not NaN")
	}
}

// TestDistP34MatchesPowReference pins the p=3 and p=4 Dist fast path against
// the pre-PowInt formulation (explicit math.Pow per coordinate).
func TestDistP34MatchesPowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range []int{3, 4} {
		n := Norm{P: p}
		for trial := 0; trial < 2000; trial++ {
			dim := 1 + rng.Intn(8)
			a := make(Vector, dim)
			b := make(Vector, dim)
			for i := range a {
				a[i] = (rng.Float64()*2 - 1) * 100
				b[i] = (rng.Float64()*2 - 1) * 100
			}
			var s float64
			for i := range a {
				s += math.Pow(math.Abs(a[i]-b[i]), float64(p))
			}
			want := math.Pow(s, 1/float64(p))
			if got := n.Dist(a, b); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("L%d.Dist(%v, %v) = %.17g, math.Pow reference = %.17g", p, a, b, got, want)
			}
		}
	}
}
