package index

import (
	"testing"

	"pmjoin/internal/geom"
)

func leaf(page int, lo, hi float64) *Node {
	return &Node{
		MBR:  geom.MBR{Min: geom.Vector{lo}, Max: geom.Vector{hi}},
		Page: page,
	}
}

func parent(children ...*Node) *Node {
	m := children[0].MBR.Clone()
	for _, c := range children[1:] {
		m.ExtendMBR(c.MBR)
	}
	return &Node{MBR: m, Page: -1, Children: children}
}

func TestLeafBasics(t *testing.T) {
	l := leaf(3, 0, 1)
	if !l.IsLeaf() || l.Height() != 1 || l.CountNodes() != 1 {
		t.Fatal("leaf basics")
	}
	if got := l.Leaves(nil); len(got) != 1 || got[0] != l {
		t.Fatal("leaf Leaves")
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchy(t *testing.T) {
	root := parent(parent(leaf(0, 0, 1), leaf(1, 1, 2)), parent(leaf(2, 2, 3)))
	if root.IsLeaf() {
		t.Fatal("root is leaf")
	}
	if root.Height() != 3 {
		t.Fatalf("height = %d", root.Height())
	}
	if root.CountNodes() != 6 {
		t.Fatalf("count = %d", root.CountNodes())
	}
	leaves := root.Leaves(nil)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	for i, l := range leaves {
		if l.Page != i {
			t.Fatalf("leaf order: leaf %d has page %d", i, l.Page)
		}
	}
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsEscapingChild(t *testing.T) {
	bad := &Node{
		MBR:      geom.MBR{Min: geom.Vector{0}, Max: geom.Vector{1}},
		Page:     -1,
		Children: []*Node{leaf(0, 5, 6)},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("escaping child not detected")
	}
}

func TestValidateDetectsBadLeafPage(t *testing.T) {
	if err := leaf(-2, 0, 1).Validate(); err == nil {
		t.Fatal("negative leaf page not detected")
	}
}

func TestValidateDetectsInternalWithPage(t *testing.T) {
	n := parent(leaf(0, 0, 1))
	n.Page = 7
	if err := n.Validate(); err == nil {
		t.Fatal("internal node with page not detected")
	}
}

func TestValidateNil(t *testing.T) {
	var n *Node
	if err := n.Validate(); err == nil {
		t.Fatal("nil node not detected")
	}
}

func TestCountNodesNil(t *testing.T) {
	var n *Node
	if n.CountNodes() != 0 {
		t.Fatal("nil count")
	}
	if n.Leaves(nil) != nil {
		t.Fatal("nil leaves")
	}
}
