// Package index defines the hierarchical MBR-tree view shared by every index
// structure in this repository (R*-tree, MR-index, MRS-index).
//
// The prediction-matrix construction (paper §5) only needs the hierarchy of
// MBRs with leaf MBRs pinned to single disk pages (Table 1: "the capacity of
// each MBR is set to one page size"). Each concrete index exports its node
// hierarchy as a *Node tree, decoupling matrix construction from index
// internals.
package index

import (
	"fmt"

	"pmjoin/internal/geom"
)

// Node is one node of an MBR hierarchy. A node with no children is a leaf
// and covers exactly one data page (Page is its index in the dataset's page
// file). Internal nodes have Page == -1.
type Node struct {
	MBR      geom.MBR
	Page     int // data page index for leaves; -1 for internal nodes
	Children []*Node
}

// IsLeaf reports whether n covers a single data page.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Height returns the height of the tree rooted at n (a leaf has height 1).
func (n *Node) Height() int {
	h := 0
	for cur := n; cur != nil; {
		h++
		if len(cur.Children) == 0 {
			break
		}
		cur = cur.Children[0]
	}
	return h
}

// Leaves appends all leaves under n to dst in left-to-right order and
// returns the extended slice.
func (n *Node) Leaves(dst []*Node) []*Node {
	if n == nil {
		return dst
	}
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// CountNodes returns the number of nodes in the tree rooted at n.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Validate checks the structural invariants of the hierarchy: every internal
// node's MBR contains its children's MBRs, and every leaf names a
// non-negative page. It returns the first violation found.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("index: nil node")
	}
	if n.IsLeaf() {
		if n.Page < 0 {
			return fmt.Errorf("index: leaf with page %d", n.Page)
		}
		return nil
	}
	if n.Page != -1 {
		return fmt.Errorf("index: internal node with page %d", n.Page)
	}
	for _, c := range n.Children {
		if !n.MBR.ContainsMBR(c.MBR) && !c.MBR.IsEmpty() {
			return fmt.Errorf("index: child MBR %v escapes parent %v", c.MBR, n.MBR)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Tree is implemented by every index structure that can expose its MBR
// hierarchy for prediction-matrix construction.
type Tree interface {
	// Root returns the root of the MBR hierarchy. Leaf nodes map 1:1 to
	// data pages of the indexed dataset.
	Root() *Node
	// NumPages returns the number of data pages of the indexed dataset.
	NumPages() int
}
