// Package sched orders clusters to maximize buffer reuse (§8): it builds the
// sharing graph of Definition 1 (vertices = clusters, edge weights = number
// of shared pages) and constructs a high-weight Hamiltonian path with the
// paper's greedy heuristic (take edges in descending weight unless they
// close a cycle or raise a vertex degree to three), since the exact problem
// is the NP-complete TSP (Lemmas 3 and 4).
package sched

import (
	"math/rand"
	"sort"
	"sync"
)

// PageSet is the set of pages a cluster needs, as opaque comparable keys
// (the join layer uses disk.PageAddr).
type PageSet map[any]struct{}

// Edge is one weighted sharing-graph edge between cluster indices A < B.
type Edge struct {
	A, B   int
	Weight int
}

// SharingGraph computes all positive-weight edges between the page sets.
//
// Page keys are interned once into dense integer ids and each set becomes a
// sorted id slice, so every pairwise weight is a linear merge over two sorted
// slices instead of per-element map probes: the hash work is paid once per
// page occurrence (O(total set size)) rather than once per (pair, element).
// See BenchmarkSharingGraph in this package for the before/after numbers.
func SharingGraph(pages []PageSet) []Edge {
	sets := internSets(pages)
	var edges []Edge
	for i := range sets {
		edges = append(edges, rowEdges(sets, i)...)
	}
	return edges
}

// SharingGraphParallel is SharingGraph with the per-row edge computations
// fanned out through submit (a worker pool's Run). Rows are independent and
// their results are concatenated in row order, so the returned slice is
// identical to SharingGraph's — element for element — regardless of worker
// count or completion order. A nil submit falls back to the serial path.
// Interning runs serially up front; only the pairwise merges fan out.
func SharingGraphParallel(pages []PageSet, submit func(task func())) []Edge {
	if submit == nil {
		return SharingGraph(pages)
	}
	sets := internSets(pages)
	rows := make([][]Edge, len(sets))
	var wg sync.WaitGroup
	for i := range sets {
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			rows[i] = rowEdges(sets, i)
		})
	}
	wg.Wait()
	var edges []Edge
	for _, r := range rows {
		edges = append(edges, r...)
	}
	return edges
}

// internSets assigns each distinct page key a dense id and returns each set
// as a sorted id slice. Id assignment order follows map iteration and is not
// deterministic, but ids are only ever compared for equality, so the
// intersection weights — and therefore the returned edges — are.
func internSets(pages []PageSet) [][]int32 {
	ids := make(map[any]int32)
	sets := make([][]int32, len(pages))
	for i, ps := range pages {
		s := make([]int32, 0, len(ps))
		for p := range ps {
			id, ok := ids[p]
			if !ok {
				id = int32(len(ids))
				ids[p] = id
			}
			s = append(s, id)
		}
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		sets[i] = s
	}
	return sets
}

// rowEdges computes the positive-weight edges (i, j) for all j > i.
func rowEdges(sets [][]int32, i int) []Edge {
	var edges []Edge
	for j := i + 1; j < len(sets); j++ {
		if w := intersectCount(sets[i], sets[j]); w > 0 {
			edges = append(edges, Edge{A: i, B: j, Weight: w})
		}
	}
	return edges
}

// intersectCount merges two sorted id slices and counts common elements.
func intersectCount(a, b []int32) int {
	w, ai, bi := 0, 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] < b[bi]:
			ai++
		case a[ai] > b[bi]:
			bi++
		default:
			w++
			ai++
			bi++
		}
	}
	return w
}

// PathSavings returns the total page reads saved by visiting clusters in the
// given order: the sum of shared pages between consecutive clusters
// (Lemma 4).
func PathSavings(pages []PageSet, order []int) int {
	total := 0
	for _, s := range StepSavings(pages, order) {
		total += s
	}
	return total
}

// StepSavings returns, for each position in the order, the pages the cluster
// at that position shares with its immediate predecessor (position 0 shares
// nothing). These are the per-step reuse guarantees behind PathSavings —
// the buffer may reuse more (pages surviving from older clusters), never
// less, so each step is a per-cluster predicted read count's reuse term.
func StepSavings(pages []PageSet, order []int) []int {
	steps := make([]int, len(order))
	for i := 1; i < len(order); i++ {
		a, b := pages[order[i-1]], pages[order[i]]
		if len(b) < len(a) {
			a, b = b, a
		}
		for p := range a {
			if _, ok := b[p]; ok {
				steps[i]++
			}
		}
	}
	return steps
}

// PrefetchPlan returns, for each position in the order, the pages the cluster
// at that position needs that its immediate predecessor does not — the
// complement of the Lemma 4 sharing term measured by StepSavings, and exactly
// the reads an overlapped executor can issue while the predecessor's CPU
// phase is still running (the predecessor pins its own pages, so none of the
// returned pages can displace a pinned frame).
//
// Step 0 is nil: the first cluster has no predecessor to overlap with, so all
// of its pages are demand-fetched. For every later position i,
// len(plan[i]) == len(pages[order[i]]) - StepSavings(pages, order)[i].
// Pages within a step are in unspecified order; callers sort by their
// concrete key type before issuing I/O.
func PrefetchPlan(pages []PageSet, order []int) [][]any {
	plan := make([][]any, len(order))
	for i := 1; i < len(order); i++ {
		prev, cur := pages[order[i-1]], pages[order[i]]
		step := make([]any, 0, len(cur))
		//lint:ignore maporder step order is documented as unspecified; PageSet keys are `any` and unsortable here — callers sort by their concrete key type before issuing I/O
		for p := range cur {
			if _, ok := prev[p]; !ok {
				step = append(step, p)
			}
		}
		plan[i] = step
	}
	return plan
}

// GreedyOrder returns a processing order over all n clusters maximizing
// (greedily) the summed weight of consecutive-cluster edges. Every cluster
// appears exactly once (Lemma 3). Isolated clusters are appended at the end
// of the stitched path.
func GreedyOrder(n int, edges []Edge) []int {
	if n == 0 {
		return nil
	}
	sorted := append([]Edge(nil), edges...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})

	degree := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	adj := make([][]int, n)
	for _, e := range sorted {
		if degree[e.A] >= 2 || degree[e.B] >= 2 {
			continue
		}
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			continue // would close a cycle
		}
		parent[ra] = rb
		degree[e.A]++
		degree[e.B]++
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}

	// Walk each path from an endpoint (degree ≤ 1); stitch paths and
	// isolated vertices in ascending endpoint order for determinism.
	visited := make([]bool, n)
	var order []int
	for v := 0; v < n; v++ {
		if visited[v] || degree[v] > 1 {
			continue
		}
		cur, prev := v, -1
		for cur != -1 {
			visited[cur] = true
			order = append(order, cur)
			next := -1
			for _, nb := range adj[cur] {
				if nb != prev && !visited[nb] {
					next = nb
					break
				}
			}
			prev, cur = cur, next
		}
	}
	// Degenerate case: a perfect cycle remainder cannot occur (edges that
	// close cycles are rejected), but guard anyway.
	for v := 0; v < n; v++ {
		if !visited[v] {
			visited[v] = true
			order = append(order, v)
		}
	}
	return order
}

// RandomOrder returns a uniformly random permutation of n clusters (the
// random-SC comparator of §9.1).
func RandomOrder(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	return order
}

// IdentityOrder returns 0..n-1 (row-major cluster creation order), used by
// the scheduling ablation.
func IdentityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
