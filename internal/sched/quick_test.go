package sched

import (
	"testing"
	"testing/quick"
)

// TestQuickGreedyOrderProperties: for arbitrary cluster page sets, the
// greedy order is a permutation (Lemma 3) and never saves fewer page reads
// than the identity order minus slack — concretely, savings are bounded by
// the total shareable weight.
func TestQuickGreedyOrderProperties(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		sets := make([]PageSet, len(raw))
		for i, r := range raw {
			sets[i] = PageSet{}
			for _, p := range r {
				sets[i][int(p%16)] = struct{}{}
			}
		}
		edges := SharingGraph(sets)
		order := GreedyOrder(len(sets), edges)
		if len(order) != len(sets) {
			return false
		}
		seen := make([]bool, len(sets))
		for _, v := range order {
			if v < 0 || v >= len(sets) || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Savings can never exceed the sum of all edge weights.
		total := 0
		for _, e := range edges {
			total += e.Weight
		}
		s := PathSavings(sets, order)
		return s >= 0 && s <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSharingGraphSymmetricWeights: edge weights equal the true
// intersection sizes regardless of set ordering.
func TestQuickSharingGraphSymmetricWeights(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := PageSet{}
		for _, p := range a {
			sa[int(p%32)] = struct{}{}
		}
		sb := PageSet{}
		for _, p := range b {
			sb[int(p%32)] = struct{}{}
		}
		shared := 0
		for p := range sa {
			if _, ok := sb[p]; ok {
				shared++
			}
		}
		e1 := SharingGraph([]PageSet{sa, sb})
		e2 := SharingGraph([]PageSet{sb, sa})
		w1, w2 := 0, 0
		if len(e1) == 1 {
			w1 = e1[0].Weight
		}
		if len(e2) == 1 {
			w2 = e2[0].Weight
		}
		return w1 == shared && w2 == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
