package sched

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sharingGraphMapRef is the pre-optimization SharingGraph: pairwise weights
// via per-element map probes (hash work per (pair, element)). Kept as the
// reference implementation for equivalence tests and the "before" side of
// BenchmarkSharingGraph.
func sharingGraphMapRef(pages []PageSet) []Edge {
	var edges []Edge
	for i := range pages {
		for j := i + 1; j < len(pages); j++ {
			a, b := pages[i], pages[j]
			if len(b) < len(a) {
				a, b = b, a
			}
			w := 0
			for p := range a {
				if _, ok := b[p]; ok {
					w++
				}
			}
			if w > 0 {
				edges = append(edges, Edge{A: i, B: j, Weight: w})
			}
		}
	}
	return edges
}

// benchSets builds n overlapping page sets of ~setSize pages drawn from a
// universe sized to give neighbouring clusters substantial sharing, the shape
// the clustered executor produces.
func benchSets(n, setSize int, seed int64) []PageSet {
	rng := rand.New(rand.NewSource(seed))
	sets := make([]PageSet, n)
	universe := n * setSize / 4
	if universe < setSize {
		universe = setSize
	}
	for i := range sets {
		s := make(PageSet, setSize)
		base := (i * setSize / 3) % universe
		for k := 0; k < setSize; k++ {
			s[(base+rng.Intn(setSize*2))%universe] = struct{}{}
		}
		sets[i] = s
	}
	return sets
}

func TestSharingGraphMatchesMapReference(t *testing.T) {
	for _, tc := range []struct {
		n, setSize int
		seed       int64
	}{
		{0, 0, 1}, {1, 5, 2}, {8, 6, 3}, {40, 12, 4}, {60, 3, 5},
	} {
		sets := benchSets(tc.n, tc.setSize, tc.seed)
		want := sharingGraphMapRef(sets)
		got := SharingGraph(sets)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d setSize=%d: interned graph differs from map reference\n got %v\nwant %v",
				tc.n, tc.setSize, got, want)
		}
		// The parallel path must match element for element too; an inline
		// submit exercises the row fan-out without a pool.
		par := SharingGraphParallel(sets, func(task func()) { task() })
		if !reflect.DeepEqual(par, want) {
			t.Fatalf("n=%d setSize=%d: parallel graph differs from reference", tc.n, tc.setSize)
		}
	}
}

func TestPrefetchPlanComplementsStepSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(12)
		sets := benchSets(n, 2+rng.Intn(8), int64(100+iter))
		order := GreedyOrder(n, SharingGraph(sets))
		plan := PrefetchPlan(sets, order)
		steps := StepSavings(sets, order)
		if len(plan) != len(order) {
			t.Fatalf("plan length %d != order length %d", len(plan), len(order))
		}
		if len(plan) > 0 && plan[0] != nil {
			t.Fatalf("step 0 = %v, want nil (no predecessor to overlap with)", plan[0])
		}
		for i := 1; i < len(order); i++ {
			cur := sets[order[i]]
			if got, want := len(plan[i]), len(cur)-steps[i]; got != want {
				t.Fatalf("iter %d step %d: len(plan)=%d, want %d (=|cluster|-StepSavings)",
					iter, i, got, want)
			}
			prev := sets[order[i-1]]
			seen := make(map[any]bool, len(plan[i]))
			for _, p := range plan[i] {
				if _, ok := cur[p]; !ok {
					t.Fatalf("iter %d step %d: planned page %v not in cluster", iter, i, p)
				}
				if _, ok := prev[p]; ok {
					t.Fatalf("iter %d step %d: planned page %v is pinned by predecessor", iter, i, p)
				}
				if seen[p] {
					t.Fatalf("iter %d step %d: duplicate page %v", iter, i, p)
				}
				seen[p] = true
			}
		}
	}
}

func TestPrefetchPlanDisjointClusters(t *testing.T) {
	sets := []PageSet{pageSet(1, 2), pageSet(3, 4, 5)}
	plan := PrefetchPlan(sets, []int{0, 1})
	if plan[0] != nil || len(plan[1]) != 3 {
		t.Fatalf("plan = %v", plan)
	}
	got := make([]int, 0, 3)
	for _, p := range plan[1] {
		got = append(got, p.(int))
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("step 1 pages = %v", got)
	}
}

func benchmarkGraph(b *testing.B, f func([]PageSet) []Edge) {
	for _, size := range []struct{ n, pages int }{
		{64, 32}, {256, 32}, {256, 128},
	} {
		sets := benchSets(size.n, size.pages, 42)
		b.Run(fmt.Sprintf("n=%d_pages=%d", size.n, size.pages), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f(sets)
			}
		})
	}
}

// BenchmarkSharingGraph is the "after" side (interned sorted-slice merge);
// BenchmarkSharingGraphMapProbe is the "before" side (per-element map probes).
func BenchmarkSharingGraph(b *testing.B)         { benchmarkGraph(b, SharingGraph) }
func BenchmarkSharingGraphMapProbe(b *testing.B) { benchmarkGraph(b, sharingGraphMapRef) }
