package sched

import (
	"math/rand"
	"testing"
)

func pageSet(pages ...int) PageSet {
	s := make(PageSet, len(pages))
	for _, p := range pages {
		s[p] = struct{}{}
	}
	return s
}

func TestSharingGraphWeights(t *testing.T) {
	sets := []PageSet{
		pageSet(1, 2, 3),
		pageSet(2, 3, 4),
		pageSet(9),
	}
	edges := SharingGraph(sets)
	if len(edges) != 1 {
		t.Fatalf("edges = %v", edges)
	}
	e := edges[0]
	if e.A != 0 || e.B != 1 || e.Weight != 2 {
		t.Fatalf("edge = %+v", e)
	}
}

func TestPathSavingsMatchesExample(t *testing.T) {
	// Example 2 of the paper, abstracted: different orders give different
	// savings equal to summed consecutive overlaps (Lemma 4).
	sets := []PageSet{
		pageSet(1, 2, 3),    // c1
		pageSet(3, 4),       // c2
		pageSet(4, 5),       // c3
		pageSet(5, 6, 1),    // c4
		pageSet(10, 11, 12), // c5: isolated
	}
	if got := PathSavings(sets, []int{0, 1, 2, 3, 4}); got != 3 {
		t.Fatalf("savings = %d, want 3", got)
	}
	if got := PathSavings(sets, []int{4, 0, 1, 2, 3}); got != 3 {
		t.Fatalf("savings = %d", got)
	}
	if got := PathSavings(sets, []int{0, 2, 4, 1, 3}); got != 0 {
		t.Fatalf("disconnected order savings = %d", got)
	}
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// TestGreedyOrderIsPermutation is Lemma 3: every cluster appears exactly
// once, over many random sharing structures.
func TestGreedyOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(40)
		sets := make([]PageSet, n)
		for i := range sets {
			sets[i] = make(PageSet)
			for k := 0; k < 1+rng.Intn(6); k++ {
				sets[i][rng.Intn(30)] = struct{}{}
			}
		}
		order := GreedyOrder(n, SharingGraph(sets))
		if !isPermutation(order, n) {
			t.Fatalf("iter %d: order %v is not a permutation of %d", iter, order, n)
		}
	}
}

func TestGreedyOrderEmptyAndSingle(t *testing.T) {
	if got := GreedyOrder(0, nil); got != nil {
		t.Fatalf("empty = %v", got)
	}
	if got := GreedyOrder(1, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single = %v", got)
	}
}

// TestGreedyBeatsRandomOnAverage: the greedy schedule must save at least as
// many page reads as random orders on structured inputs.
func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var greedyTotal, randomTotal int
	for iter := 0; iter < 20; iter++ {
		n := 12
		sets := make([]PageSet, n)
		for i := range sets {
			sets[i] = pageSet(i, i+1, i+2, rng.Intn(30)) // chain structure
		}
		edges := SharingGraph(sets)
		greedyTotal += PathSavings(sets, GreedyOrder(n, edges))
		randomTotal += PathSavings(sets, RandomOrder(n, int64(iter)))
	}
	if greedyTotal <= randomTotal {
		t.Fatalf("greedy savings %d <= random %d", greedyTotal, randomTotal)
	}
}

func TestGreedyPicksHeaviestEdgeFirst(t *testing.T) {
	// Three clusters: 0-1 share 5 pages, 1-2 share 1; the path must place 0
	// and 1 adjacent.
	sets := []PageSet{
		pageSet(1, 2, 3, 4, 5, 10),
		pageSet(1, 2, 3, 4, 5, 20),
		pageSet(20, 30),
	}
	order := GreedyOrder(3, SharingGraph(sets))
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	d := pos[0] - pos[1]
	if d != 1 && d != -1 {
		t.Fatalf("heaviest pair not adjacent in %v", order)
	}
	if got := PathSavings(sets, order); got != 6 {
		t.Fatalf("savings = %d, want 6", got)
	}
}

func TestGreedyAvoidsDegreeThree(t *testing.T) {
	// A star: center 0 shares with 1, 2, 3. A path can use at most two of
	// the star edges.
	sets := []PageSet{
		pageSet(1, 2, 3),
		pageSet(1, 10),
		pageSet(2, 20),
		pageSet(3, 30),
	}
	order := GreedyOrder(4, SharingGraph(sets))
	if !isPermutation(order, 4) {
		t.Fatalf("order = %v", order)
	}
	if got := PathSavings(sets, order); got != 2 {
		t.Fatalf("savings = %d, want 2 (two star edges)", got)
	}
}

func TestRandomOrderDeterministicInSeed(t *testing.T) {
	a := RandomOrder(10, 5)
	b := RandomOrder(10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random order not deterministic in seed")
		}
	}
	if !isPermutation(a, 10) {
		t.Fatal("random order not a permutation")
	}
}

func TestIdentityOrder(t *testing.T) {
	got := IdentityOrder(4)
	for i, v := range got {
		if v != i {
			t.Fatalf("identity = %v", got)
		}
	}
}
