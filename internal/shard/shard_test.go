package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"pmjoin/internal/join"
	"pmjoin/internal/sched"
)

// chainSets builds n page sets where consecutive clusters share `overlap`
// pages: cluster i owns pages [i*stride, i*stride+size). With stride <
// size the greedy schedule is the identity chain and every step shares
// size-stride pages.
func chainSets(n, size, stride int) []sched.PageSet {
	sets := make([]sched.PageSet, n)
	for i := range sets {
		ps := make(sched.PageSet, size)
		for p := 0; p < size; p++ {
			ps[i*stride+p] = struct{}{}
		}
		sets[i] = ps
	}
	return sets
}

func uniformEntries(n, e int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = e
	}
	return out
}

var testCost = CostModel{SeekSeconds: 0.008, TransferSeconds: 0.001, EntrySeconds: 1e-7}

func TestCutRejects(t *testing.T) {
	if _, err := Cut(chainSets(3, 4, 2), uniformEntries(2, 1), 2, testCost); err == nil {
		t.Fatal("mismatched entries length accepted")
	}
	if _, err := Cut(chainSets(3, 4, 2), uniformEntries(3, 1), 0, testCost); err == nil {
		t.Fatal("zero shards accepted")
	}
}

func TestCutPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 16} {
		n := 10
		plan, err := Cut(chainSets(n, 6, 4), uniformEntries(n, 50), shards, testCost)
		if err != nil {
			t.Fatal(err)
		}
		want := shards
		if want > n {
			want = n
		}
		if len(plan.Shards) != want {
			t.Fatalf("shards=%d: got %d shards, want %d", shards, len(plan.Shards), want)
		}
		// Every cluster appears in exactly one shard, and no shard is empty.
		var all []int
		for i, sh := range plan.Shards {
			if len(sh.Clusters) == 0 {
				t.Fatalf("shards=%d: shard %d is empty", shards, i)
			}
			all = append(all, sh.Clusters...)
		}
		sort.Ints(all)
		for i, ci := range all {
			if ci != i {
				t.Fatalf("shards=%d: clusters not a partition: %v", shards, all)
			}
		}
		// The cut can only lose sharing relative to the uncut schedule here
		// (chain graph: any contiguous cut severs exactly its boundary edges).
		if plan.ShardedReads < plan.UnshardedReads {
			t.Fatalf("shards=%d: sharded reads %d < unsharded %d", shards, plan.ShardedReads, plan.UnshardedReads)
		}
		if plan.CutLostPages != plan.ShardedReads-plan.UnshardedReads {
			t.Fatalf("CutLostPages %d != %d - %d", plan.CutLostPages, plan.ShardedReads, plan.UnshardedReads)
		}
	}
}

func TestCutSingleShardMatchesGlobal(t *testing.T) {
	n := 8
	pages := chainSets(n, 5, 3)
	plan, err := Cut(pages, uniformEntries(n, 10), 1, testCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 1 {
		t.Fatalf("got %d shards", len(plan.Shards))
	}
	if plan.ShardedReads != plan.UnshardedReads || plan.CutLostPages != 0 {
		t.Fatalf("1-shard plan pays a cut: sharded=%d unsharded=%d lost=%d",
			plan.ShardedReads, plan.UnshardedReads, plan.CutLostPages)
	}
	if plan.CutPenaltySeconds != 0 {
		t.Fatalf("1-shard penalty %g != 0", plan.CutPenaltySeconds)
	}
}

func TestCutPrefersWeakEdges(t *testing.T) {
	// Two tight blocks of 3 clusters (heavy intra-block sharing) joined by a
	// weak bridge. A 2-way cut balanced on cost alone could fall anywhere
	// near the middle; the planner must pick the weak boundary between the
	// blocks, losing only the bridge's single shared page.
	block := func(base int) []sched.PageSet {
		var sets []sched.PageSet
		for i := 0; i < 3; i++ {
			ps := make(sched.PageSet)
			for p := 0; p < 8; p++ {
				ps[base+p] = struct{}{} // the block's shared core
			}
			ps[base+100+i] = struct{}{} // a private page each
			sets = append(sets, ps)
		}
		return sets
	}
	pages := append(block(0), block(50)...)
	// One shared bridge page between the blocks.
	pages[2][50] = struct{}{}
	plan, err := Cut(pages, uniformEntries(6, 10), 2, testCost)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range plan.Shards {
		lo, hi := 0, 0
		for _, ci := range sh.Clusters {
			if ci < 3 {
				lo++
			} else {
				hi++
			}
		}
		if lo != 0 && hi != 0 {
			t.Fatalf("cut crossed the weak boundary: shards %+v", plan.Shards)
		}
	}
	if plan.CutLostPages > 1 {
		t.Fatalf("cut lost %d pages, want <= 1 (the bridge)", plan.CutLostPages)
	}
}

func TestCutDeterministic(t *testing.T) {
	n := 12
	pages := chainSets(n, 7, 4)
	entries := uniformEntries(n, 25)
	a, err := Cut(pages, entries, 4, testCost)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cut(pages, entries, 4, testCost)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("plans differ:\n%+v\n%+v", a, b)
	}
}

func TestCutEmpty(t *testing.T) {
	plan, err := Cut(nil, nil, 3, testCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 1 || len(plan.Shards[0].Clusters) != 0 {
		t.Fatalf("empty input plan: %+v", plan)
	}
	if got := plan.Tasks(); len(got) != 1 {
		t.Fatalf("tasks: %+v", got)
	}
}

// indexRunner records which goroutine-visible order tasks complete in and
// returns a marker result per shard; used to pin the coordinator's
// index-ordered results independent of completion order.
type indexRunner struct{}

func (indexRunner) RunShard(ctx context.Context, t Task) (*Result, error) {
	return &Result{Shard: t.Shard, Pairs: [][2]int{{t.Shard, len(t.Clusters)}}}, nil
}

type failingRunner struct{ fail int }

func (f failingRunner) RunShard(ctx context.Context, t Task) (*Result, error) {
	if t.Shard >= f.fail {
		return nil, fmt.Errorf("boom %d", t.Shard)
	}
	return &Result{Shard: t.Shard}, nil
}

func TestCoordinatorOrder(t *testing.T) {
	tasks := make([]Task, 9)
	for i := range tasks {
		tasks[i] = Task{Shard: i, Clusters: make([]int, i+1)}
	}
	for _, workers := range []int{0, 1, 3, 100} {
		c := &Coordinator{Runner: indexRunner{}, Workers: workers}
		results, err := c.Run(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Shard != i || r.Pairs[0] != [2]int{i, i + 1} {
				t.Fatalf("workers=%d: slot %d holds %+v", workers, i, r)
			}
		}
	}
}

func TestCoordinatorFirstError(t *testing.T) {
	tasks := make([]Task, 6)
	for i := range tasks {
		tasks[i] = Task{Shard: i}
	}
	for _, workers := range []int{1, 4} {
		c := &Coordinator{Runner: failingRunner{fail: 3}, Workers: workers}
		_, err := c.Run(context.Background(), tasks)
		if err == nil || err.Error() != "shard 3: boom 3" {
			t.Fatalf("workers=%d: err = %v, want first failure by index", workers, err)
		}
	}
}

func TestMergePairsCapsAndFlags(t *testing.T) {
	results := []*Result{
		{Pairs: [][2]int{{1, 1}, {1, 2}}},
		nil,
		{Pairs: [][2]int{{2, 1}}},
	}
	pairs, trunc := MergePairs(results, 10)
	if trunc || !reflect.DeepEqual(pairs, [][2]int{{1, 1}, {1, 2}, {2, 1}}) {
		t.Fatalf("pairs %v trunc %v", pairs, trunc)
	}
	pairs, trunc = MergePairs(results, 2)
	if !trunc || len(pairs) != 2 {
		t.Fatalf("capped merge: pairs %v trunc %v", pairs, trunc)
	}
	results[0].Truncated = true
	_, trunc = MergePairs(results, 10)
	if !trunc {
		t.Fatal("local truncation not propagated")
	}
}

// gateRunner blocks every RunShard until released, reporting which shards
// started; used to pin the coordinator's mid-run cancellation behavior.
type gateRunner struct {
	started chan int
	release chan struct{}
	runs    int64
}

func (g *gateRunner) RunShard(ctx context.Context, t Task) (*Result, error) {
	atomic.AddInt64(&g.runs, 1)
	g.started <- t.Shard
	<-g.release
	return &Result{Shard: t.Shard}, nil
}

// TestCoordinatorCancelMidRun is the regression test for the claim-loop
// cancellation check: cancelling while early shards are in flight must stop
// every not-yet-started shard (workers drain the remaining tasks into error
// slots instead of executing them) and Run must return the cancellation as
// the first error in shard-index order.
func TestCoordinatorCancelMidRun(t *testing.T) {
	const nTasks, workers = 8, 2
	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = Task{Shard: i}
	}
	g := &gateRunner{started: make(chan int, nTasks), release: make(chan struct{})}
	c := &Coordinator{Runner: g, Workers: workers}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		results []*Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := c.Run(ctx, tasks)
		done <- outcome{r, err}
	}()
	// Wait until both workers hold a task, cancel, then release them.
	<-g.started
	<-g.started
	cancel()
	close(g.release)
	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	// The two in-flight shards ran; nothing else may have started.
	if n := atomic.LoadInt64(&g.runs); n != workers {
		t.Fatalf("RunShard executed %d times, want %d (cancel must stop unstarted shards)", n, workers)
	}
	// First error by index: shards 0 and 1 were claimed first (tasks are
	// claimed in order), so the first cancelled slot is shard 2 and Run's
	// error names it.
	if got := out.err.Error(); got != "shard 2: context canceled" {
		t.Fatalf("err = %q, want the first cancelled slot by index", got)
	}
	if out.results[0] == nil || out.results[1] == nil {
		t.Fatalf("in-flight shards lost: %+v", out.results[:2])
	}
	for i := workers; i < nTasks; i++ {
		if out.results[i] != nil {
			t.Fatalf("shard %d has a result after cancel", i)
		}
	}
}

// TestCoordinatorCancelPromptDrain pins that a cancelled coordinator does not
// execute the tail of a long task list: with one worker and a cancel after
// the first task, Run returns after exactly one execution no matter how many
// tasks remain.
func TestCoordinatorCancelPromptDrain(t *testing.T) {
	const nTasks = 100
	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = Task{Shard: i}
	}
	g := &gateRunner{started: make(chan int, nTasks), release: make(chan struct{})}
	c := &Coordinator{Runner: g, Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, tasks)
		errCh <- err
	}()
	<-g.started
	cancel()
	close(g.release)
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&g.runs); n != 1 {
		t.Fatalf("RunShard executed %d times after cancel, want 1", n)
	}
}

// TestMergeReportsRequiresShardZero pins MergeReports' explicit base: the
// preprocess cost is charged to shard 0 only, so a merge whose shard 0 is
// missing has no well-defined base and must return nil rather than silently
// seeding from a later shard (which would drop the one-time preprocess
// charge).
func TestMergeReportsRequiresShardZero(t *testing.T) {
	mk := func(pre, io float64) *Result {
		return &Result{Report: &join.Report{PreprocessSeconds: pre, IOSeconds: io}}
	}
	full := []*Result{mk(5, 1), mk(0.5, 2), mk(0.5, 3)}
	rep := MergeReports(full)
	if rep == nil {
		t.Fatal("full merge returned nil")
	}
	if rep.PreprocessSeconds != 6 || rep.IOSeconds != 6 {
		t.Fatalf("merge sums wrong: %+v", rep)
	}
	// Source reports must not be mutated by the merge.
	if full[0].Report.IOSeconds != 1 {
		t.Fatalf("merge mutated shard 0's report: %+v", full[0].Report)
	}
	for _, results := range [][]*Result{
		nil,
		{},
		{nil, mk(0.5, 2)},                  // shard 0 slot empty
		{{Shard: 0}, mk(0.5, 2)},           // shard 0 present but no report
		{mk(5, 1), nil, mk(0.5, 3)},        // later slot empty
		{mk(5, 1), {Shard: 1}, mk(0.5, 3)}, // later report missing
	} {
		if got := MergeReports(results); got != nil {
			t.Fatalf("MergeReports(%v) = %+v, want nil", results, got)
		}
	}
}
