package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pmjoin/internal/disk"
	"pmjoin/internal/join"
)

// Coordinator fans a plan's tasks out to Workers concurrent RunShard calls
// and returns the results in shard-index order. Results are written to fixed
// slots and merged by index after every worker has joined, so the output —
// and anything merged from it — is bit-identical for any worker count; the
// same submission-order discipline join.WorkerPool uses for comparison tasks.
type Coordinator struct {
	Runner Runner
	// Workers bounds concurrent shard executions; <= 0 means one worker per
	// task. The bound exists because each in-flight shard holds a private
	// buffer pool of BufferSize frames.
	Workers int
}

// Run executes every task and returns the results indexed by shard. On error
// the first failure in shard-index order is returned (deterministic even when
// several shards fail); completed results are still returned.
func (c *Coordinator) Run(ctx context.Context, tasks []Task) ([]*Result, error) {
	results := make([]*Result, len(tasks))
	errs := make([]error, len(tasks))
	workers := c.Workers
	if workers <= 0 || workers > len(tasks) {
		workers = len(tasks)
	}
	// The shard spawn site is deliberately not join.WorkerPool: a shard task
	// blocks in Flush waiting for its comparison tasks, so running shards on
	// the pool that runs their comparisons could fill every slot with blocked
	// shards and deadlock. These goroutines carry the pool's guarantees
	// anyway — bounded by workers, joined by wg.Wait before Run returns, and
	// order-insensitive because each writes only its own indexed slot.
	// (Audited spawn site: exempted from the rawgo rule by name.)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(tasks) {
					return
				}
				// Check cancellation between tasks: once ctx is done, a
				// worker must not start the next shard — without this check
				// every remaining shard still ran to completion after a
				// cancel. The error lands in the task's own slot, so the
				// first-error-by-index scan below stays deterministic, and
				// the claim loop keeps draining so every unstarted task is
				// marked promptly rather than executed.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = c.Runner.RunShard(ctx, tasks[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return results, nil
}

// MergeReports folds per-shard reports into one, in shard-index order.
// Additive costs and counters sum; MarkedEntries and Method describe the
// whole join identically in every shard, so they are taken from shard 0.
// The clustering preprocess cost was charged to shard 0 only (see
// LocalRunner.PreprocessSeconds), so the summed PreprocessSeconds counts
// clustering once plus each shard's own schedule-construction cost.
//
// The base is explicitly shard 0, never "the first non-nil result": seeding
// from a later shard would silently drop shard 0's one-time preprocess
// charge (PreprocessSeconds would undercount) while still looking like a
// complete report. A merge without shard 0 has no well-defined base, so
// MergeReports returns nil — callers only merge after Coordinator.Run
// succeeded, at which point every slot is filled.
func MergeReports(results []*Result) *join.Report {
	if len(results) == 0 || results[0] == nil || results[0].Report == nil {
		return nil
	}
	cp := *results[0].Report
	out := &cp
	for _, r := range results[1:] {
		if r == nil || r.Report == nil {
			return nil
		}
		out.IOSeconds += r.Report.IOSeconds
		out.CPUJoinSeconds += r.Report.CPUJoinSeconds
		out.PreprocessSeconds += r.Report.PreprocessSeconds
		out.PageReads += r.Report.PageReads
		out.Seeks += r.Report.Seeks
		out.Hits += r.Report.Hits
		out.Misses += r.Report.Misses
		out.Comparisons += r.Report.Comparisons
		out.Results += r.Report.Results
		out.Clusters += r.Report.Clusters
	}
	return out
}

// MergeTimelines folds per-shard modeled clocks: shards run concurrently, so
// the merged wall clock is the slowest shard, while serial and component
// times sum (the work that would run back to back on one machine).
func MergeTimelines(results []*Result) disk.TimelineStats {
	var out disk.TimelineStats
	for _, r := range results {
		if r == nil {
			continue
		}
		ts := r.Timeline
		if ts.WallSeconds > out.WallSeconds {
			out.WallSeconds = ts.WallSeconds
		}
		out.SerialSeconds += ts.SerialSeconds
		out.DemandIOSeconds += ts.DemandIOSeconds
		out.OverlapIOSeconds += ts.OverlapIOSeconds
		out.CPUSeconds += ts.CPUSeconds
		out.OverlapReads += ts.OverlapReads
		out.Stages += ts.Stages
	}
	return out
}

// MergePairs concatenates per-shard pair slices in shard-index order, capped
// at maxPairs. The second result reports truncation: either the concatenation
// overflowed the cap or some shard already truncated locally.
func MergePairs(results []*Result, maxPairs int) ([][2]int, bool) {
	var pairs [][2]int
	truncated := false
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Truncated {
			truncated = true
		}
		for _, p := range r.Pairs {
			if len(pairs) >= maxPairs {
				truncated = true
				return pairs, truncated
			}
			pairs = append(pairs, p)
		}
	}
	return pairs, truncated
}
