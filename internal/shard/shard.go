// Package shard cuts a clustered join into independent shards and executes
// them on parallel workers, merging the per-shard results deterministically.
//
// The cluster schedule is already a partition of independent work units with
// an explicit sharing graph (Lemma 4): the only coupling between clusters is
// the buffer reuse the schedule arranges. That makes sharding a graph-cut
// problem — cut the greedy Hamiltonian path at its weakest sharing edges,
// balanced over modeled per-cluster cost, and each segment becomes a shard
// that runs the existing clustered executor unchanged over its own cold disk
// session and private buffer pool. What the cut severs is exactly the lost
// buffer reuse across the cut edges, which the planner reports as the cut
// penalty (in pages and modeled seconds) so callers can weigh shards against
// I/O before running anything.
//
// The shard boundary is the small Runner interface (plan in, shard result
// out): the in-process LocalRunner is the only implementation today, and a
// network transport is a drop-in replacement later.
package shard

import (
	"fmt"
	"math"
	"sort"

	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/sched"
)

// CostModel carries the per-cluster cost terms the planner balances shards
// over: one seek plus a transfer per page (the linear disk model) plus a
// modeled CPU charge per marked matrix entry.
type CostModel struct {
	SeekSeconds     float64
	TransferSeconds float64
	// EntrySeconds is the modeled comparison cost per marked entry; it keeps
	// CPU-heavy clusters from piling onto one shard when page counts alone
	// would look balanced.
	EntrySeconds float64
}

// cluster is the modeled cost of fetching and joining one cluster solo.
func (cm CostModel) cluster(pages, entries int) float64 {
	return cm.SeekSeconds + float64(pages)*cm.TransferSeconds + float64(entries)*cm.EntrySeconds
}

// Shard is one planned segment of the global greedy schedule.
type Shard struct {
	// Clusters holds the creation indices of the clusters this shard owns,
	// in ascending creation order. The cut is made along the global greedy
	// schedule, but the shard's executor re-derives its own order over this
	// subset, so the slice is a membership list, not an execution order —
	// and ascending order means a 1-shard plan hands the executor the same
	// input slice an unsharded run would see.
	Clusters []int
	// Pages is the summed pinned-set size over the shard's clusters
	// (post self-join dedup), before any buffer reuse.
	Pages int64
	// Entries is the summed marked-entry count.
	Entries int64
	// CostSeconds is the shard's modeled solo cost under the CostModel —
	// the quantity the planner balanced.
	CostSeconds float64
	// PredictedReads is the Lemma 4 page-read prediction for the shard's own
	// greedy schedule over its subset: Pages minus the subset schedule's
	// sharing savings. This is what the shard's executor will predict for
	// itself, since it rebuilds the same subset graph.
	PredictedReads int64
}

// Plan is the planner's output: the shards plus the cut's modeled I/O cost.
type Plan struct {
	Shards []Shard
	// UnshardedReads is the Lemma 4 read prediction of the uncut global
	// schedule; ShardedReads is the sum of the shards' predictions.
	UnshardedReads int64
	ShardedReads   int64
	// CutLostPages = ShardedReads - UnshardedReads: the buffer reuse the cut
	// severed. Usually non-negative; slightly negative is possible when a
	// subset greedy path beats the global path's restriction (both are
	// heuristics).
	CutLostPages int64
	// CutPenaltySeconds is the modeled I/O price of the cut: a transfer per
	// lost page plus one cold first seek per extra shard.
	CutPenaltySeconds float64
}

// Tasks returns one Task per shard, in shard-index order.
func (p *Plan) Tasks() []Task {
	ts := make([]Task, len(p.Shards))
	for i, s := range p.Shards {
		ts[i] = Task{Shard: i, Clusters: s.Clusters}
	}
	return ts
}

// Cut plans a sharded execution: it builds the sharing graph and the global
// greedy schedule, then cuts the schedule into min(shards, len(pages))
// contiguous segments, choosing each cut position among the cost-balanced
// candidates by minimum severed sharing (the StepSavings at the boundary).
// pages[i] and entries[i] describe cluster i's pinned page set and marked
// entry count; both the plan and every derived prediction are deterministic
// functions of the inputs.
func Cut(pages []sched.PageSet, entries []int, shards int, cm CostModel) (*Plan, error) {
	if len(entries) != len(pages) {
		return nil, fmt.Errorf("shard: %d page sets but %d entry counts", len(pages), len(entries))
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	n := len(pages)
	k := shards
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1 // n == 0: one empty shard keeps the coordinator path uniform
	}

	edges := sched.SharingGraph(pages)
	order := sched.GreedyOrder(n, edges)
	steps := sched.StepSavings(pages, order)

	// Prefix sums of modeled cost over schedule positions: cum[p] is the cost
	// of the first p scheduled clusters, so a cut at position p splits
	// [0,p) | [p,n).
	cum := make([]float64, n+1)
	for i, ci := range order {
		cum[i+1] = cum[i] + cm.cluster(len(pages[ci]), entries[ci])
	}
	total := cum[n]

	// Pick k-1 cut positions left to right. For each boundary b the ideal
	// split is at cost total*b/k; among valid positions within half a shard's
	// cost of the ideal, take the one severing the least sharing (ties: the
	// most balanced, then the leftmost). If the window is empty, fall back to
	// the most balanced valid position.
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, 0)
	prev := 0
	for b := 1; b < k; b++ {
		lo, hi := prev+1, n-(k-b) // leave >= 1 cluster for every later shard
		ideal := total * float64(b) / float64(k)
		window := total / float64(2*k)
		best, bestIn := lo, inWindow(cum[lo], ideal, window)
		for p := lo + 1; p <= hi; p++ {
			in := inWindow(cum[p], ideal, window)
			if cutBetter(in, steps[p], cum[p], bestIn, steps[best], cum[best], ideal) {
				best, bestIn = p, in
			}
		}
		cuts = append(cuts, best)
		prev = best
	}
	cuts = append(cuts, n)

	totalPages := 0
	for _, ps := range pages {
		totalPages += len(ps)
	}
	plan := &Plan{
		UnshardedReads: int64(totalPages - sched.PathSavings(pages, order)),
		Shards:         make([]Shard, k),
	}
	for si := 0; si < k; si++ {
		// The cut decides membership only; the executor re-derives its own
		// processing order per shard. Handing members back in ascending
		// creation order makes a 1-shard plan's cluster slice identical to the
		// unsharded executor's input, so shards=1 reproduces it bit for bit.
		members := append([]int(nil), order[cuts[si]:cuts[si+1]]...)
		sort.Ints(members)
		sh := Shard{
			Clusters:    members,
			CostSeconds: cum[cuts[si+1]] - cum[cuts[si]],
		}
		for _, ci := range members {
			sh.Pages += int64(len(pages[ci]))
			sh.Entries += int64(entries[ci])
		}
		sh.PredictedReads = predictedReads(pages, members)
		plan.Shards[si] = sh
		plan.ShardedReads += sh.PredictedReads
	}
	plan.CutLostPages = plan.ShardedReads - plan.UnshardedReads
	plan.CutPenaltySeconds = float64(plan.CutLostPages)*cm.TransferSeconds +
		float64(k-1)*cm.SeekSeconds
	return plan, nil
}

// inWindow reports whether a cut at cumulative cost c lands within the
// balance window around the ideal split point.
func inWindow(c, ideal, window float64) bool {
	return math.Abs(c-ideal) <= window
}

// cutBetter ranks candidate cut positions: in-window beats out-of-window;
// within the window, less severed sharing wins, then balance; outside it,
// only balance matters. Candidates are scanned left to right, so on exact
// ties the earlier (leftmost) position is kept.
func cutBetter(in bool, step int, c float64, bestIn bool, bestStep int, bestC, ideal float64) bool {
	if in != bestIn {
		return in
	}
	if in && step != bestStep {
		return step < bestStep
	}
	return math.Abs(c-ideal) < math.Abs(bestC-ideal)
}

// PageSets builds the planner's per-cluster pinned page sets, keyed
// disk.PageAddr exactly like the executor's: for a self join both sides read
// the same file, so a cluster's row page and equal column page are one frame,
// not two. Using the executor's keys keeps the planner's sharing graph — and
// so the cut and every prediction derived from it — identical to the one each
// shard's run builds.
func PageSets(clusters []*cluster.Cluster, rFile, sFile disk.FileID) []sched.PageSet {
	sets := make([]sched.PageSet, len(clusters))
	for i, c := range clusters {
		ps := make(sched.PageSet, c.Pages())
		for _, row := range c.Rows() {
			ps[disk.PageAddr{File: rFile, Page: row}] = struct{}{}
		}
		for _, col := range c.Cols() {
			ps[disk.PageAddr{File: sFile, Page: col}] = struct{}{}
		}
		sets[i] = ps
	}
	return sets
}

// Entries returns the per-cluster marked-entry counts, parallel to clusters.
func Entries(clusters []*cluster.Cluster) []int {
	entries := make([]int, len(clusters))
	for i, c := range clusters {
		entries[i] = len(c.Entries)
	}
	return entries
}

// predictedReads is the Lemma 4 prediction for a shard's own greedy schedule
// over its member clusters: summed pinned pages minus the subset path's
// sharing savings. The subset page sets are listed in members order, matching
// how the shard's executor will see them.
func predictedReads(pages []sched.PageSet, members []int) int64 {
	sub := make([]sched.PageSet, len(members))
	total := 0
	for i, ci := range members {
		sub[i] = pages[ci]
		total += len(pages[ci])
	}
	order := sched.GreedyOrder(len(sub), sched.SharingGraph(sub))
	return int64(total - sched.PathSavings(sub, order))
}
