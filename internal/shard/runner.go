package shard

import (
	"context"

	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/join"
	"pmjoin/internal/metrics"
	"pmjoin/internal/predmat"
)

// Task names one shard's work: which clusters (by creation index) it owns.
// Everything else a shard needs — datasets, matrix, options — is carried by
// the Runner, so a Task is small enough to put on the wire.
type Task struct {
	Shard    int
	Clusters []int
}

// Result is one shard's outcome. Report, Pairs and Truncated are
// deterministic functions of the Task (each shard runs over a cold disk
// session and a private buffer pool, so its numbers are what a solo run over
// its clusters would produce); Metrics and Timeline are observational.
type Result struct {
	Shard  int
	Report *join.Report
	// Pairs holds the shard's collected result pairs (nil unless the runner
	// collects pairs), in the shard executor's deterministic emission order.
	Pairs [][2]int
	// Truncated reports the shard hit its local pair cap.
	Truncated bool
	// Metrics is the shard's own phase-scoped snapshot (nil unless enabled).
	Metrics *metrics.Metrics
	// Timeline is the shard's modeled overlapped-pipeline clock.
	Timeline disk.TimelineStats
	// Measured is the shard's physical backend read account (zero under the
	// simulator); observational, like Timeline.
	Measured disk.Measured
}

// Runner executes one shard of a plan. RunShard must be safe for concurrent
// calls with distinct tasks: the coordinator fans tasks out to parallel
// workers. The in-process implementation is LocalRunner; a network transport
// implementing the same interface is a drop-in replacement (marshal the Task,
// run remotely, unmarshal the Result).
type Runner interface {
	RunShard(ctx context.Context, t Task) (*Result, error)
}

// LocalRunner runs shards in process: each RunShard builds a fresh
// join.Engine over the shared simulated disk, so the shard gets its own cold
// disk session and private buffer pool (via Engine.Run) and reuses the
// pipelined clustered executor unchanged over its cluster subset.
type LocalRunner struct {
	// Execution environment, shared across shards.
	Disk       *disk.Disk
	BufferSize int
	Policy     buffer.Policy
	// Workers is the shared comparison pool (nil = inline). Shards must not
	// submit blocking shard-level work here — they only feed it page-pair
	// comparison tasks, exactly as the unsharded executor does — so sharing
	// one pool across concurrent shards cannot deadlock.
	Workers *join.WorkerPool
	Kernels bool
	// KernelBatch enables whole-cluster block dispatch in every shard's
	// engine (see join.Engine.KernelBatch); bit-identical either way.
	KernelBatch bool
	// Shared, when non-nil, is the service-wide concurrent frame cache every
	// shard's engine participates in (see join.Engine.Shared); per-shard
	// Reports stay solo-run pure either way.
	Shared *buffer.SharedPool
	// Pipeline knobs, inherited by every shard's engine.
	Prefetch      bool
	PrefetchDepth int
	// Backend, when non-nil, is the physical page source every shard's
	// engine reads through (see join.Engine.Backend); per-shard Reports are
	// bit-identical either way, only Result.Measured differs.
	Backend disk.Backend
	// Readers is the shared background reader pool for prefetch fetches
	// (nil = synchronous). Reader tasks are plain backend fetches that never
	// submit further work, so sharing one pool across shards cannot deadlock.
	Readers *join.WorkerPool

	// The join being sharded.
	R, S     *join.Dataset
	Matrix   *predmat.Matrix
	Clusters []*cluster.Cluster
	Joiner   join.ObjectJoiner
	Order    join.ClusterOrder
	Seed     int64
	// PreprocessSeconds is the modeled clustering cost; it is charged to
	// shard 0 only, so the merged report counts it once (each shard's own
	// schedule-construction cost accrues per shard, as it is really paid).
	PreprocessSeconds float64

	// Pair collection. Each shard collects up to MaxPairs locally; the
	// coordinator's merge re-caps globally.
	CollectPairs bool
	MaxPairs     int

	// Metrics enables a per-shard collector whose snapshot lands on
	// Result.Metrics (outside the determinism contract, like everywhere else).
	Metrics       bool
	MetricsConfig metrics.Config
}

// RunShard executes one shard. The engine's Run scope gives the shard its
// cold session and private pool; the timeline and optional collector are
// per-shard, so nothing observational is shared across concurrent shards.
func (r *LocalRunner) RunShard(ctx context.Context, t Task) (*Result, error) {
	var mc *metrics.Collector // nil when disabled: every hook no-ops
	if r.Metrics {
		mc = metrics.New(r.MetricsConfig)
	}
	tl := disk.NewTimeline()
	out := &Result{Shard: t.Shard}
	eng := &join.Engine{
		Disk:          r.Disk,
		BufferSize:    r.BufferSize,
		Policy:        r.Policy,
		Workers:       r.Workers,
		Ctx:           ctx,
		Metrics:       mc,
		Kernels:       r.Kernels,
		KernelBatch:   r.KernelBatch,
		Shared:        r.Shared,
		Prefetch:      r.Prefetch,
		PrefetchDepth: r.PrefetchDepth,
		Backend:       r.Backend,
		Readers:       r.Readers,
		Timeline:      tl,
	}
	if r.CollectPairs {
		eng.OnPair = func(i, j int) {
			if len(out.Pairs) < r.MaxPairs {
				out.Pairs = append(out.Pairs, [2]int{i, j})
			} else {
				out.Truncated = true
			}
		}
	}
	sub := make([]*cluster.Cluster, len(t.Clusters))
	for i, ci := range t.Clusters {
		sub[i] = r.Clusters[ci]
	}
	pre := 0.0
	if t.Shard == 0 {
		pre = r.PreprocessSeconds
	}
	rep, err := eng.Clustered(r.R, r.S, r.Matrix, sub, r.Joiner, join.ClusteredOptions{
		Order:             r.Order,
		Seed:              r.Seed,
		PreprocessSeconds: pre,
	})
	out.Timeline = tl.Stats()
	out.Measured = eng.MeasuredIO()
	mc.RecordTimeline(out.Timeline)
	out.Metrics = mc.Finish()
	if err != nil {
		return nil, err
	}
	out.Report = rep
	return out, nil
}
