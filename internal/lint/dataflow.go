package lint

// A generic worklist dataflow solver over the CFG. Rules instantiate it
// with a small fact type (a lock state, a pin counter) and a monotone
// transfer function; the solver iterates to fixpoint. Facts of blocks that
// are never reached stay at their zero value with Seen=false — rules must
// consult Seen before reading a fact, since an unreachable exit
// predecessor says nothing about real executions.

// flowProblem describes one dataflow problem.
type flowProblem[F any] struct {
	cfg *CFG
	// backward solves against the edges: facts flow from Succs to Preds and
	// boundary seeds the Exit block instead of Entry.
	backward bool
	// boundary is the fact at the boundary block's input (Entry for a
	// forward problem, Exit for a backward one).
	boundary F
	// merge combines the facts of two incoming paths.
	merge func(a, b F) F
	// equal reports whether two facts are equal (fixpoint detection).
	equal func(a, b F) bool
	// transfer computes the block's output fact from its input fact. It
	// must be pure: the solver may call it several times per block.
	transfer func(b *Block, in F) F
}

// flowResult holds the fixpoint. In and Out are indexed by Block.Index;
// for a backward problem In is the fact at block end and Out the fact at
// block start (facts still flow In -> transfer -> Out).
type flowResult[F any] struct {
	In, Out []F
	Seen    []bool
}

// solveFlow runs the worklist to fixpoint. Iteration order is by block
// index, which the builder assigns in source order — deterministic, and
// close enough to reverse postorder that the small per-function graphs
// this linter sees converge in a handful of passes.
func solveFlow[F any](p flowProblem[F]) flowResult[F] {
	n := len(p.cfg.Blocks)
	res := flowResult[F]{In: make([]F, n), Out: make([]F, n), Seen: make([]bool, n)}

	start := p.cfg.Entry
	preds := func(b *Block) []*Block { return b.Preds }
	if p.backward {
		start = p.cfg.Exit
		preds = func(b *Block) []*Block { return b.Succs }
	}
	succs := func(b *Block) []*Block {
		if p.backward {
			return b.Preds
		}
		return b.Succs
	}

	inQueue := make([]bool, n)
	queue := []*Block{start}
	inQueue[start.Index] = true

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b.Index] = false

		in := p.boundary
		if b != start {
			first := true
			for _, pr := range preds(b) {
				if !res.Seen[pr.Index] {
					continue
				}
				if first {
					in = res.Out[pr.Index]
					first = false
				} else {
					in = p.merge(in, res.Out[pr.Index])
				}
			}
			if first {
				// No processed predecessor yet; revisit when one lands.
				continue
			}
		}

		out := p.transfer(b, in)
		if res.Seen[b.Index] && p.equal(out, res.Out[b.Index]) && p.equal(in, res.In[b.Index]) {
			continue
		}
		res.In[b.Index] = in
		res.Out[b.Index] = out
		res.Seen[b.Index] = true
		for _, s := range succs(b) {
			if !inQueue[s.Index] {
				queue = append(queue, s)
				inQueue[s.Index] = true
			}
		}
	}
	return res
}
