package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqAnalyzer flags == and != between two computed floating-point
// values in the distance-bearing packages (geom, seqdist, cluster). The
// correctness of the prediction matrix rests on lower-bound inequalities
// (MinDist ≤ true distance, Theorem 1); exact equality between computed
// distances is almost always a latent bug that breaks ties differently
// across architectures and compiler versions, silently changing cluster
// shapes and therefore the reported I/O counts.
//
// Comparisons where either side is a compile-time constant are exempt:
// `x == 0` as an is-unset sentinel check is idiomatic and exact.
func floatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "==/!= between computed floats in geom/seqdist/cluster",
		Run:  runFloatEq,
	}
}

// floatEqPackages are the packages where float equality is policed: the ones
// computing and comparing distance and cost values.
var floatEqPackages = map[string]bool{
	"pmjoin/internal/geom":    true,
	"pmjoin/internal/seqdist": true,
	"pmjoin/internal/cluster": true,
}

func runFloatEq(p *Package) []Diagnostic {
	if !floatEqPackages[p.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !p.isComputedFloat(bin.X) || !p.isComputedFloat(bin.Y) {
				return true
			}
			diags = append(diags, p.diag(bin, "floateq",
				"floating-point %s between computed values; compare with an epsilon or restructure around an inequality", bin.Op))
			return true
		})
	}
	return diags
}

// isComputedFloat reports whether e has floating-point type and is not a
// compile-time constant.
func (p *Package) isComputedFloat(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
