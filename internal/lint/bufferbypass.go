package lint

import (
	"go/ast"
)

// bufferBypassAnalyzer flags direct page I/O on disk.Disk from outside
// internal/buffer. Every page the join phase touches must be charged through
// a buffer.Pool: the pool is what turns residency into free hits, and the
// paper's reported I/O counts (reads, seeks, hit ratios behind Figures
// 10-16) assume all page traffic is pool-mediated. A direct disk.Disk
// Read/Write/Peek from an executor bypasses hit/miss accounting and head
// tracking, so costs stop matching what a real buffered system would pay.
//
// Deliberate bypasses exist — staging writes of partition files, external
// sort cost charging, zero-cost metadata Peeks — because the pool has no
// write path; each must carry a `//lint:ignore bufferbypass <reason>`
// explaining why the access is charged (or free) by design.
//
// disk.Session is policed identically: a session is a per-run accounting
// scope over the same disk, and unpooled session I/O skips hit/miss
// accounting just as unpooled disk I/O does.
//
// buffer.Source closes the remaining hole: the interface beneath the pool
// has the same Read method, and a call through a Source-typed value resolves
// to the interface method rather than to disk.Disk or disk.Session, escaping
// the concrete-receiver checks. Engine code holding the pool's source (for
// example to issue its own readahead instead of Pool.Prefetch, which would
// skip staged-frame accounting and eviction protection) is exactly the
// bypass this rule exists to catch, so interface-mediated reads are flagged
// outside internal/buffer and internal/disk too.
func bufferBypassAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "bufferbypass",
		Doc:  "direct disk.Disk page I/O outside internal/buffer bypasses pool accounting",
		Run:  runBufferBypass,
	}
}

var diskPageMethods = []string{"Read", "Write", "Peek"}

func runBufferBypass(p *Package) []Diagnostic {
	if p.Path == bufferPkgPath || p.Path == diskPkgPath {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeOf(call)
			for _, m := range diskPageMethods {
				if isMethodOf(fn, diskPkgPath, "Disk", m) || isMethodOf(fn, diskPkgPath, "Session", m) {
					recv := "Disk"
					if isMethodOf(fn, diskPkgPath, "Session", m) {
						recv = "Session"
					}
					diags = append(diags, p.diag(call, "bufferbypass",
						"disk.%s.%s outside internal/buffer bypasses buffer-pool I/O accounting; route page access through buffer.Pool", recv, m))
					break
				}
			}
			if isMethodOf(fn, bufferPkgPath, "Source", "Read") {
				diags = append(diags, p.diag(call, "bufferbypass",
					"buffer.Source.Read outside internal/buffer bypasses buffer-pool I/O accounting; route page access through buffer.Pool (Get for demand, Prefetch for readahead)"))
			}
			return true
		})
	}
	return diags
}
