package lint

import (
	"go/ast"
	"go/types"
)

// ctxdroppedAnalyzer flags functions that take a context.Context and then
// drop it: calling a callee with a fresh context.Background()/context.TODO()
// where the parameter should flow through, or calling the context-less
// variant of a callee when a "...Context" sibling exists in the same scope.
// A dropped context detaches the callee from cancellation — the engine's
// Ctx is checked between clusters precisely so a cancelled run stops
// issuing simulated I/O, and a Background() slipped into that chain turns
// cancellation into a silent no-op that only shows up as a run that will
// not die. Creating a root context in a function *without* a Context
// parameter (main, tests, goroutine entry points) is fine and not flagged.
func ctxdroppedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxdropped",
		Doc:  "function with a ctx parameter passes context.Background()/TODO() (or calls a non-Context variant) instead of forwarding ctx",
		Run:  runCtxdropped,
	}
}

func runCtxdropped(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxName := p.contextParam(fd.Type)
			if ctxName == "" {
				continue
			}
			// Nested function literals see ctx lexically, so the whole body
			// is walked — a literal that re-roots the context inside a
			// ctx-taking function is the same bug.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					inner, ok := ast.Unparen(arg).(*ast.CallExpr)
					if !ok {
						continue
					}
					fn := p.calleeOf(inner)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
						continue
					}
					if fn.Name() == "Background" || fn.Name() == "TODO" {
						diags = append(diags, p.diag(arg, "ctxdropped",
							"%s has %s but passes context.%s() here — the callee detaches from cancellation; forward %s",
							fd.Name.Name, ctxName, fn.Name(), ctxName))
					}
				}
				if sib := p.contextSibling(call); sib != "" {
					diags = append(diags, p.diag(call, "ctxdropped",
						"%s has %s but calls the context-less %s — use %s so cancellation propagates",
						fd.Name.Name, ctxName, calleeDisplay(call), sib))
				}
				return true
			})
		}
	}
	return diags
}

// contextParam returns the name of the first context.Context parameter of
// the function type, or "" if it has none (or it is unnamed/blank — an
// unusable parameter cannot be forwarded).
func (p *Package) contextParam(ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// contextSibling reports the name of a "<callee>Context" variant when the
// called function takes no context but such a sibling exists — a function
// in the same package scope, or a method on the same receiver type — and
// that sibling's signature does accept a context.Context. Returns "" when
// the call already takes a context or no sibling exists.
func (p *Package) contextSibling(call *ast.CallExpr) string {
	fn := p.calleeOf(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return ""
	}
	sibName := fn.Name() + "Context"
	if sig.Recv() != nil {
		recvType := sig.Recv().Type()
		if ptr, ok := recvType.(*types.Pointer); ok {
			recvType = ptr.Elem()
		}
		named, ok := recvType.(*types.Named)
		if !ok {
			return ""
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == sibName && signatureTakesContext(m.Type().(*types.Signature)) {
				return named.Obj().Name() + "." + sibName
			}
		}
		return ""
	}
	sib, ok := fn.Pkg().Scope().Lookup(sibName).(*types.Func)
	if !ok {
		return ""
	}
	if sibSig, ok := sib.Type().(*types.Signature); ok && signatureTakesContext(sibSig) {
		return sibName
	}
	return ""
}

func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeDisplay renders the call target for a message (`Run`, `pool.Run`).
func calleeDisplay(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return base.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the callee"
}
