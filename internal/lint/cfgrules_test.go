package lint

import "testing"

// The determinism-contract rules run on the CFG + dataflow engine; these
// tables are their positive/negative fixtures. Each fixture is type-checked
// against the stub packages, so path-based matching (predmat.Mark,
// WorkerPool.Run, metrics events) behaves exactly as on the real tree.

func TestLockbalance(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "early return skips unlock",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex, early bool) {
	mu.Lock()
	if early {
		return
	}
	mu.Unlock()
}
`,
			lines: []int{8},
		},
		{
			name: "unlock on only one branch is mixed at exit",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex, c bool) {
	mu.Lock()
	if c {
		mu.Unlock()
	}
}
`,
			lines: []int{6},
		},
		{
			name: "double lock deadlocks even when balanced overall",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex) {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
`,
			lines: []int{7},
		},
		{
			name: "unlock of unheld mutex",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}
`,
			lines: []int{8},
		},
		{
			name: "explicit unlock plus deferred unlock double-releases",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	mu.Unlock()
}
`,
			lines: []int{6},
		},
		{
			// continue jumps back to the loop header with the lock still
			// held: the second iteration's Lock would self-deadlock, and the
			// loop can also exit with the lock held.
			name: "continue skips the unlock",
			src: `package fixture

import "sync"

func bad(mu *sync.Mutex, xs []int) {
	for _, x := range xs {
		mu.Lock()
		if x < 0 {
			continue
		}
		mu.Unlock()
	}
}
`,
			lines: []int{7, 7},
		},
		{
			name: "RLock without RUnlock on the early return",
			src: `package fixture

import "sync"

func bad(mu *sync.RWMutex, c bool) int {
	mu.RLock()
	if c {
		return 1
	}
	mu.RUnlock()
	return 0
}
`,
			lines: []int{8},
		},
		{
			// The inner mu shadows the outer one; its Unlock must not pay
			// the outer Lock's debt. The keys are object identities, not
			// names.
			name: "shadowed mutex does not balance the outer lock",
			src: `package fixture

import "sync"

func bad(c bool) {
	var mu sync.Mutex
	mu.Lock()
	{
		var mu sync.Mutex
		mu.Unlock()
	}
}
`,
			lines: []int{7},
		},
		{
			name: "deferred unlock is clean",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex, early bool) int {
	mu.Lock()
	defer mu.Unlock()
	if early {
		return 1
	}
	return 0
}
`,
		},
		{
			// The stock idiom (WorkerPool.QueueHighWater): lock and defer
			// both scoped to one branch. The deferred credit travels only on
			// the registering path, so the merge with the lock-free path is
			// clean.
			name: "branch-scoped lock plus defer is clean",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex, c bool) {
	if c {
		mu.Lock()
		defer mu.Unlock()
	}
}
`,
		},
		{
			// The WorkerPool.Run shape: unlock before panicking. Panic exits
			// are exempt; the non-panicking path is balanced.
			name: "unlock-then-panic guard is clean",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex, n int) {
	mu.Lock()
	if n < 0 {
		mu.Unlock()
		panic("negative")
	}
	mu.Unlock()
}
`,
		},
		{
			name: "unlock on every branch is clean",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex, c bool) int {
	mu.Lock()
	if c {
		mu.Unlock()
		return 1
	}
	mu.Unlock()
	return 0
}
`,
		},
		{
			name: "write and read modes are independent",
			src: `package fixture

import "sync"

func ok(mu *sync.RWMutex) {
	mu.Lock()
	mu.Unlock()
	mu.RLock()
	mu.RUnlock()
}
`,
		},
		{
			// TryLock's result is conditional, so the pair is not tracked;
			// the body has no tracked acquire and is skipped entirely.
			name: "TryLock is not tracked",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex) {
	if mu.TryLock() {
		mu.Unlock()
	}
}
`,
		},
		{
			// Unlock-only bodies are helpers releasing a caller-held lock.
			name: "release-only helper is skipped",
			src: `package fixture

import "sync"

func ok(mu *sync.Mutex) {
	mu.Unlock()
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "lockbalance", fixturePath, tc.src), "lockbalance", tc.lines)
		})
	}
}

func TestMaporder(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "append without a later sort",
			src: `package fixture

func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			lines: []int{5},
		},
		{
			name: "sorted-keys idiom is clean",
			src: `package fixture

import "sort"

func ok(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
		},
		{
			name: "sort.Slice also normalizes",
			src: `package fixture

import "sort"

func ok(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
`,
		},
		{
			name: "slices.Sort also normalizes",
			src: `package fixture

import "slices"

func ok(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
`,
		},
		{
			name: "float accumulation is order-dependent",
			src: `package fixture

func bad(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
			lines: []int{5},
		},
		{
			name: "integer counters are exact and commutative",
			src: `package fixture

func ok(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
		},
		{
			name: "map-to-map copy is order-insensitive",
			src: `package fixture

func ok(src, dst map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}
`,
		},
		{
			name: "channel send leaks iteration order",
			src: `package fixture

func bad(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k
	}
}
`,
			lines: []int{4},
		},
		{
			name: "printing leaks iteration order",
			src: `package fixture

import "fmt"

func bad(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`,
			lines: []int{6},
		},
		{
			name: "prediction-matrix marks depend on insertion order",
			src: `package fixture

import "pmjoin/internal/predmat"

func bad(pm *predmat.Matrix, pairs map[int]int) {
	for i, j := range pairs {
		pm.Mark(i, j)
	}
}
`,
			lines: []int{6},
		},
		{
			name: "worker-pool submission order must not come from a map",
			src: `package fixture

import "pmjoin/internal/join"

func bad(pool *join.WorkerPool, work map[int]func() any) {
	for _, w := range work {
		pool.Run([]func() any{w})
	}
}
`,
			lines: []int{6},
		},
		{
			name: "trace events must not be emitted in map order",
			src: `package fixture

import "pmjoin/internal/metrics"

func bad(c *metrics.Collector, names map[string]bool) {
	for n := range names {
		c.Event(n)
	}
}
`,
			lines: []int{6},
		},
		{
			name: "range over a slice is always ordered",
			src: `package fixture

func ok(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "maporder", fixturePath, tc.src), "maporder", tc.lines)
		})
	}
}

func TestAtomicmix(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "package-level var read plainly and updated atomically",
			src: `package fixture

import "sync/atomic"

var hits int64

func incr() { atomic.AddInt64(&hits, 1) }

func read() int64 { return hits }
`,
			lines: []int{9},
		},
		{
			name: "struct field mixed across methods",
			src: `package fixture

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) incr() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n }
`,
			lines: []int{9},
		},
		{
			name: "all accesses atomic is clean",
			src: `package fixture

import "sync/atomic"

var hits int64

func incr() { atomic.AddInt64(&hits, 1) }

func read() int64 { return atomic.LoadInt64(&hits) }
`,
		},
		{
			name: "typed atomic wrapper is clean",
			src: `package fixture

import "sync/atomic"

var hits atomic.Int64

func incr() { hits.Add(1) }

func read() int64 { return hits.Load() }
`,
		},
		{
			name: "plain write races like a plain read",
			src: `package fixture

import "sync/atomic"

var hits int64

func reset() { hits = 0 }

func read() int64 { return atomic.LoadInt64(&hits) }
`,
			lines: []int{7},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "atomicmix", fixturePath, tc.src), "atomicmix", tc.lines)
		})
	}
}

func TestCtxdropped(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "Background passed where ctx should flow",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func bad(ctx context.Context) error {
	return fetch(context.Background())
}
`,
			lines: []int{8},
		},
		{
			name: "TODO passed where ctx should flow",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func bad(ctx context.Context) error {
	return fetch(context.TODO())
}
`,
			lines: []int{8},
		},
		{
			name: "forwarding ctx is clean",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func ok(ctx context.Context) error {
	return fetch(ctx)
}
`,
		},
		{
			name: "root creation without a ctx parameter is clean",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func ok() error {
	return fetch(context.Background())
}
`,
		},
		{
			name: "context-less call when a Context sibling exists",
			src: `package fixture

import "context"

func fetch() error { return nil }

func fetchContext(ctx context.Context) error { return nil }

func bad(ctx context.Context) error {
	return fetch()
}
`,
			lines: []int{10},
		},
		{
			name: "context-less method call when a Context sibling exists",
			src: `package fixture

import "context"

type client struct{}

func (c client) get() error { return nil }

func (c client) getContext(ctx context.Context) error { return nil }

func bad(ctx context.Context, c client) error {
	return c.get()
}
`,
			lines: []int{12},
		},
		{
			name: "derived context is clean",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func ok(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return fetch(sub)
}
`,
		},
		{
			name: "re-rooting inside a nested literal is still a drop",
			src: `package fixture

import "context"

func fetch(ctx context.Context) error { return nil }

func bad(ctx context.Context) func() error {
	return func() error {
		return fetch(context.Background())
	}
}
`,
			lines: []int{9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "ctxdropped", fixturePath, tc.src), "ctxdropped", tc.lines)
		})
	}
}

func TestLintunused(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"

	t.Run("stale directive is reported", func(t *testing.T) {
		src := `package fixture

func clean() int {
	//lint:ignore floateq was needed before the epsilon refactor
	return 1
}
`
		diags := Run([]*Package{checkFixture(t, fixturePath, src)}, Analyzers())
		expectDiags(t, diags, "lintunused", []int{4})
	})

	t.Run("useful directive is not reported", func(t *testing.T) {
		// floateq polices the geom package, so the fixture lives there.
		src := `package geom

func eq(a, b float64) bool {
	//lint:ignore floateq fixture exercises the suppression path
	return a+1 == b+1
}
`
		diags := Run([]*Package{checkFixture(t, geomPkgPath, src)}, Analyzers())
		expectDiags(t, diags, "lintunused", nil)
	})

	t.Run("stale all directive needs the full suite", func(t *testing.T) {
		src := `package fixture

func clean() int {
	//lint:ignore all historical
	return 1
}
`
		pkg := checkFixture(t, fixturePath, src)
		diags := Run([]*Package{pkg}, Analyzers())
		expectDiags(t, diags, "lintunused", []int{4})

		// Under a partial run the same directive is not checkable: the
		// finding it suppresses might belong to an analyzer that did not run.
		var partial []*Analyzer
		for _, a := range Analyzers() {
			if a.Name == "floateq" || a.Name == "lintunused" {
				partial = append(partial, a)
			}
		}
		expectDiags(t, Run([]*Package{pkg}, partial), "lintunused", nil)
	})

	t.Run("directive naming a rule outside the run is not checkable", func(t *testing.T) {
		src := `package fixture

func clean() int {
	//lint:ignore pinleak helper pins for the caller
	return 1
}
`
		pkg := checkFixture(t, fixturePath, src)
		var partial []*Analyzer
		for _, a := range Analyzers() {
			if a.Name == "floateq" || a.Name == "lintunused" {
				partial = append(partial, a)
			}
		}
		expectDiags(t, Run([]*Package{pkg}, partial), "lintunused", nil)
		// With the full suite, pinleak ran, found nothing, and the directive
		// is provably stale.
		expectDiags(t, Run([]*Package{pkg}, Analyzers()), "lintunused", []int{4})
	})
}
