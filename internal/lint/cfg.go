package lint

// The intraprocedural control-flow graph underlying the dataflow rules
// (lockbalance, pinleak). BuildCFG decomposes one function body into basic
// blocks connected by execution-order edges, covering the full Go statement
// repertoire: if/else, for (all three clauses), range, switch with
// fallthrough, type switch, select, labeled break/continue, goto, and the
// three ways out of a function — return, panic, and falling off the end.
// All exits share the single synthetic Exit block; blocks record whether
// they reach it via a return or a panic so rules can treat abnormal exits
// differently (a panic abandons the run, so holding a lock or a pin across
// one is not an accounting leak).
//
// Defer is deliberately not lowered into edges: deferred calls run at every
// exit in LIFO order, which no block sequence expresses. Instead each
// DeferStmt stays a regular node in its block (so a rule sees it on exactly
// the paths that register it) and is also listed in CFG.Defers; rules model
// the at-exit effect themselves (see lockbalance's deferred-release state).

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // all blocks, including unreachable ones, in creation order
	Entry  *Block   // synthetic, empty, no predecessors
	Exit   *Block   // synthetic, empty; every return/panic/fall-off edges here
	Defers []*ast.DeferStmt
}

// Block is a straight-line run of AST nodes with no internal control
// transfer. Nodes holds leaf statements and the control expressions the
// block evaluates (an if condition, a switch tag, a range operand) in
// execution order; composite statements are decomposed, so walking a node
// never re-enters a nested body.
type Block struct {
	Index int
	Kind  string // diagnostic label: "entry", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Return is the return statement that terminates this block, if any.
	Return *ast.ReturnStmt
	// Panic is the panic call that terminates this block, if any.
	Panic *ast.CallExpr
}

// Reachable returns the blocks reachable from Entry, as a set keyed by
// block index.
func (c *CFG) Reachable() map[int]bool {
	seen := make(map[int]bool, len(c.Blocks))
	stack := []*Block{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Unreachable returns the non-empty blocks not reachable from Entry: dead
// statements (code after return/panic/goto) and loop-done blocks of
// infinite loops. Empty synthetic blocks (joins, headers) are skipped —
// they carry no statements, so their reachability is of no analytic
// interest.
func (c *CFG) Unreachable() []*Block {
	reach := c.Reachable()
	var out []*Block
	for _, b := range c.Blocks {
		if !reach[b.Index] && len(b.Nodes) > 0 {
			out = append(out, b)
		}
	}
	return out
}

// BuildCFG constructs the control-flow graph of a function body. The
// builder is purely syntactic — it needs no type information — so it works
// on parse-only trees (the fuzz target exercises it that way). A call to an
// identifier literally named "panic" is treated as the builtin; shadowing
// panic with a local function is not a shape this module (or sane code)
// uses.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.newBlock("body")
	edge(b.cfg.Entry, b.cur)
	b.stmtList(body.List)
	// Falling off the end of the body is a normal exit.
	edge(b.cur, b.cfg.Exit)
	return b.cfg
}

// branchTarget is one enclosing breakable/continuable construct.
type branchTarget struct {
	label      string // label of the enclosing LabeledStmt, "" if none
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block
	targets []branchTarget
	// labels maps a label name to the block starting its labeled statement;
	// created on demand so forward gotos resolve.
	labels map[string]*Block
	// pendingLabel carries a just-seen label into the loop/switch/select it
	// names, so `break L` / `continue L` find their targets.
	pendingLabel string
	// fallthroughTo is the body block of the next case clause while a
	// switch clause body is being built.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock closes cur with an edge into next and continues there.
func (b *cfgBuilder) startBlock(next *Block) {
	edge(b.cur, next)
	b.cur = next
}

// deadBlock replaces cur with a fresh, unreachable block: the statements
// after an unconditional transfer still get recorded (and reported by
// Unreachable), but carry no edges in.
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock("dead")
}

// labelBlock returns (creating on demand) the block that starts the
// statement labeled name.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A label applies only to the statement it directly prefixes.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.startBlock(b.labelBlock(s.Label.Name))
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			edge(b.cur, join)
		} else {
			edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		done := b.newBlock("for.done")
		b.startBlock(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			edge(head, done)
		}
		// continue targets the post statement when there is one, else the head.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			edge(post, head)
			contTo = post
		}
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: contTo})
		body := b.newBlock("for.body")
		edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, contTo)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		done := b.newBlock("range.done")
		head.Nodes = append(head.Nodes, s.X)
		b.startBlock(head)
		edge(head, done)
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done, continueTo: head})
		body := b.newBlock("range.body")
		edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(blk *Block, cc *ast.CaseClause) []ast.Stmt {
			blk.Nodes = append(blk.Nodes, exprNodes(cc.List)...)
			return cc.Body
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s.Body.List, label, func(blk *Block, cc *ast.CaseClause) []ast.Stmt {
			return cc.Body
		})

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		sel := b.cur
		b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			edge(sel, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			edge(b.cur, done)
		}
		b.targets = b.targets[:len(b.targets)-1]
		// select{} blocks forever: done is unreachable, which is exactly
		// what the graph says (sel has no clause edges).
		b.cur = done

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				edge(b.cur, t)
			}
			b.deadBlock()
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				edge(b.cur, t)
			}
			b.deadBlock()
		case token.GOTO:
			edge(b.cur, b.labelBlock(s.Label.Name))
			b.deadBlock()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				edge(b.cur, b.fallthroughTo)
			}
			b.deadBlock()
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.Return = s
		edge(b.cur, b.cfg.Exit)
		b.deadBlock()

	case *ast.ExprStmt:
		if call := panicCall(s.X); call != nil {
			b.cur.Nodes = append(b.cur.Nodes, s)
			b.cur.Panic = call
			edge(b.cur, b.cfg.Exit)
			b.deadBlock()
			return
		}
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Leaf statements: assignments, declarations, sends, inc/dec, go.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses builds the shared clause structure of switch and type
// switch: every clause block is a successor of the dispatching block, a
// missing default adds a direct edge to done, and fallthrough (expression
// switch only) chains into the next clause's block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, fill func(*Block, *ast.CaseClause) []ast.Stmt) {
	dispatch := b.cur
	done := b.newBlock("switch.done")
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.newBlock("switch.case")
		edge(dispatch, blocks[i])
		if cl.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(dispatch, done)
	}
	b.targets = append(b.targets, branchTarget{label: label, breakTo: done})
	savedFall := b.fallthroughTo
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		body := fill(blocks[i], cc)
		b.cur = blocks[i]
		b.stmtList(body)
		edge(b.cur, done)
	}
	b.fallthroughTo = savedFall
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// findTarget resolves a break (wantContinue=false) or continue
// (wantContinue=true) to its destination block. A nil result means the
// statement is ill-formed (continue outside a loop, unknown label); the
// builder tolerates it so parse-only trees from the fuzzer cannot wedge it.
func (b *cfgBuilder) findTarget(label *ast.Ident, wantContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != nil && t.label != label.Name {
			continue
		}
		if wantContinue {
			if t.continueTo != nil {
				return t.continueTo
			}
			if label != nil {
				return nil // labeled switch/select: continue invalid
			}
			continue // unlabeled continue skips switch/select frames
		}
		return t.breakTo
	}
	return nil
}

// panicCall matches a direct call of the builtin panic.
func panicCall(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil
	}
	return call
}

// exprNodes converts a []ast.Expr to []ast.Node.
func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}

// walkBlockNodes visits every AST node of the block's statements in
// execution order, calling fn on each. It does not descend into nested
// function literals (their bodies are separate CFGs) nor into deferred
// calls (the DeferStmt itself is visited; its at-exit effect is rule
// business).
func walkBlockNodes(blk *Block, fn func(n ast.Node)) {
	for _, root := range blk.Nodes {
		skipChildren := false
		if _, isDefer := root.(*ast.DeferStmt); isDefer {
			fn(root)
			skipChildren = true
		}
		if skipChildren {
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				fn(d)
				return false
			}
			fn(n)
			return true
		})
	}
}
