package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of one function and returns the
// *ast.BlockStmt plus the fileset for position reporting.
func parseBody(t *testing.T, body string) (*ast.BlockStmt, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body, fset
}

// cfgInvariants asserts the structural contract every CFG must satisfy:
// exactly one entry with no predecessors, edges symmetric between Succs
// and Preds, and every statement of the body either inside a reachable
// block or inside one the builder reports via Unreachable.
func cfgInvariants(t *testing.T, cfg *CFG, body *ast.BlockStmt, fset *token.FileSet) {
	t.Helper()
	if len(cfg.Entry.Preds) != 0 {
		t.Errorf("entry has %d predecessors, want 0", len(cfg.Entry.Preds))
	}
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("edge %d->%d missing from Preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("edge %d->%d missing from Succs", p.Index, b.Index)
			}
		}
	}

	// Every node position of the body must be covered by some block's
	// node span (reachable or reported-unreachable) — no statement may be
	// silently dropped.
	covered := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			markCovered(n, covered)
		}
	}
	reach := cfg.Reachable()
	var unreachOK []*Block
	unreachOK = cfg.Unreachable()
	_ = unreachOK
	for _, s := range body.List {
		checkCovered(t, s, covered, fset)
	}
	// Unreachable blocks must really be unreachable.
	for _, b := range cfg.Unreachable() {
		if reach[b.Index] {
			t.Errorf("block %d reported unreachable but reachable", b.Index)
		}
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// markCovered records the positions of n and all its children.
func markCovered(n ast.Node, covered map[token.Pos]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil {
			covered[m.Pos()] = true
		}
		return true
	})
}

// checkCovered walks the statement tree and asserts every leaf statement's
// position is covered. Composite statements are decomposed by the builder
// (their conditions and bodies are covered separately), so only the
// per-statement leaves are demanded.
func checkCovered(t *testing.T, s ast.Stmt, covered map[token.Pos]bool, fset *token.FileSet) {
	t.Helper()
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, x := range s.List {
			checkCovered(t, x, covered, fset)
		}
	case *ast.LabeledStmt:
		checkCovered(t, s.Stmt, covered, fset)
	case *ast.IfStmt:
		if !covered[s.Cond.Pos()] {
			t.Errorf("%s: if condition not in any block", fset.Position(s.Cond.Pos()))
		}
		checkCovered(t, s.Body, covered, fset)
		if s.Else != nil {
			checkCovered(t, s.Else, covered, fset)
		}
	case *ast.ForStmt:
		checkCovered(t, s.Body, covered, fset)
	case *ast.RangeStmt:
		if !covered[s.X.Pos()] {
			t.Errorf("%s: range operand not in any block", fset.Position(s.X.Pos()))
		}
		checkCovered(t, s.Body, covered, fset)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			for _, x := range cl.(*ast.CaseClause).Body {
				checkCovered(t, x, covered, fset)
			}
		}
	case *ast.TypeSwitchStmt:
		if !covered[s.Assign.Pos()] {
			t.Errorf("%s: type-switch assign not in any block", fset.Position(s.Assign.Pos()))
		}
		for _, cl := range s.Body.List {
			for _, x := range cl.(*ast.CaseClause).Body {
				checkCovered(t, x, covered, fset)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm != nil && !covered[cc.Comm.Pos()] {
				t.Errorf("%s: select comm not in any block", fset.Position(cc.Comm.Pos()))
			}
			for _, x := range cc.Body {
				checkCovered(t, x, covered, fset)
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
		// control transfers and empties carry no analyzable payload
	default:
		if !covered[s.Pos()] {
			t.Errorf("%s: statement %T not in any block", fset.Position(s.Pos()), s)
		}
	}
}

// reachableLine reports whether the statement starting at the given body
// line (1 = first line inside the braces) lies in a reachable block.
func reachableLine(cfg *CFG, fset *token.FileSet, line int) bool {
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			// body text starts at file line 4 (package, blank, func header)
			if fset.Position(n.Pos()).Line == line+3 {
				return reach[b.Index]
			}
		}
	}
	return false
}

func TestCFGBuild(t *testing.T) {
	cases := []struct {
		name string
		body string
		// line (1-based within the body) -> expected reachability
		reach map[int]bool
		// expected number of return-terminated and panic-terminated blocks
		returns, panics int
	}{
		{
			name: "straight line",
			body: `x := 1
y := x + 1
_ = y`,
			reach: map[int]bool{1: true, 2: true, 3: true},
		},
		{
			name: "if else join",
			body: `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`,
			reach: map[int]bool{3: true, 5: true, 7: true},
		},
		{
			name: "code after return is unreachable",
			body: `x := 1
return
_ = x`,
			reach:   map[int]bool{1: true, 3: false},
			returns: 1,
		},
		{
			name: "panic-only exit",
			body: `x := 1
panic("boom")
_ = x`,
			reach:  map[int]bool{1: true, 2: true, 3: false},
			panics: 1,
		},
		{
			name: "infinite loop makes tail unreachable",
			body: `for {
	x := 1
	_ = x
}
y := 2
_ = y`,
			reach: map[int]bool{2: true, 5: false},
		},
		{
			name: "loop break reaches tail",
			body: `for {
	break
}
y := 2
_ = y`,
			reach: map[int]bool{4: true},
		},
		{
			name: "goto forward",
			body: `x := 1
goto done
x = 2
done:
_ = x`,
			reach: map[int]bool{1: true, 3: false, 5: true},
		},
		{
			name: "goto backward loops",
			body: `x := 0
again:
x++
if x < 3 {
	goto again
}
_ = x`,
			reach: map[int]bool{3: true, 7: true},
		},
		{
			name: "labeled break exits outer loop",
			body: `outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 2 {
			break outer
		}
		_ = j
	}
}
x := 1
_ = x`,
			reach: map[int]bool{7: true, 10: true},
		},
		{
			name: "labeled continue targets outer loop post",
			body: `outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		_ = j
	}
}
x := 1
_ = x`,
			reach: map[int]bool{7: true, 10: true},
		},
		{
			name: "switch with fallthrough and default",
			body: `x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
_ = x`,
			reach: map[int]bool{4: true, 7: true, 9: true, 11: true},
		},
		{
			name: "switch without default falls through to tail",
			body: `x := 1
switch x {
case 1:
	return
}
_ = x`,
			reach:   map[int]bool{6: true},
			returns: 1,
		},
		{
			name: "type switch clauses",
			body: `var v any = 1
switch y := v.(type) {
case int:
	_ = y
case string:
	_ = y
default:
	_ = y
}
z := 1
_ = z`,
			reach: map[int]bool{4: true, 6: true, 8: true, 10: true},
		},
		{
			name: "select clauses all reachable, empty select blocks",
			body: `ch := make(chan int)
select {
case v := <-ch:
	_ = v
case ch <- 1:
	_ = ch
default:
	_ = ch
}
x := 1
_ = x`,
			reach: map[int]bool{4: true, 6: true, 8: true, 10: true},
		},
		{
			name: "empty select blocks forever",
			body: `select {}
x := 1
_ = x`,
			reach: map[int]bool{2: false},
		},
		{
			name: "defer in loop stays a body node",
			body: `for i := 0; i < 3; i++ {
	defer println(i)
}
x := 1
_ = x`,
			reach: map[int]bool{2: true, 4: true},
		},
		{
			name: "continue skips rest of loop body",
			body: `for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	_ = i
}
x := 1
_ = x`,
			reach: map[int]bool{5: true, 7: true},
		},
		{
			name: "return in all branches makes tail unreachable",
			body: `x := 1
if x > 0 {
	return
} else {
	return
}
_ = x`,
			reach:   map[int]bool{7: false},
			returns: 2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, fset := parseBody(t, tc.body)
			cfg := BuildCFG(body)
			cfgInvariants(t, cfg, body, fset)
			for line, want := range tc.reach {
				if got := reachableLine(cfg, fset, line); got != want {
					t.Errorf("body line %d: reachable=%v, want %v", line, got, want)
				}
			}
			returns, panics := 0, 0
			for _, b := range cfg.Blocks {
				if b.Return != nil {
					returns++
				}
				if b.Panic != nil {
					panics++
				}
			}
			if returns != tc.returns {
				t.Errorf("got %d return blocks, want %d", returns, tc.returns)
			}
			if panics != tc.panics {
				t.Errorf("got %d panic blocks, want %d", panics, tc.panics)
			}
		})
	}
}

// TestCFGDefersCollected asserts defer statements land both in their block
// (path-sensitivity) and in the CFG-wide defer list (at-exit modeling),
// including defer inside a loop.
func TestCFGDefersCollected(t *testing.T) {
	body, _ := parseBody(t, `defer println(0)
for i := 0; i < 2; i++ {
	defer println(i)
}`)
	cfg := BuildCFG(body)
	if len(cfg.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(cfg.Defers))
	}
	reach := cfg.Reachable()
	for _, d := range cfg.Defers {
		found := false
		for _, b := range cfg.Blocks {
			for _, n := range b.Nodes {
				if n == ast.Node(d) {
					found = true
					if !reach[b.Index] {
						t.Errorf("defer block %d unreachable", b.Index)
					}
				}
			}
		}
		if !found {
			t.Errorf("defer not present in any block")
		}
	}
}

// TestSolveFlowForward exercises the solver on a diamond with a loop: a
// "taint" fact set in one branch must be MAYBE at the join and inside the
// loop, and a kill in the loop body must drive the fixpoint.
func TestSolveFlowForward(t *testing.T) {
	body, fset := parseBody(t, `x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
for i := 0; i < 3; i++ {
	x = 4
}
_ = x`)
	cfg := BuildCFG(body)

	// Fact: the constant last assigned to x on every path (-1 = conflict).
	assignVal := func(n ast.Node) (int, bool) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return 0, false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name != "x" {
			return 0, false
		}
		if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
			v := 0
			fmt.Sscanf(lit.Value, "%d", &v)
			return v, true
		}
		return 0, false
	}
	res := solveFlow(flowProblem[int]{
		cfg:      cfg,
		boundary: 0,
		merge: func(a, b int) int {
			if a == b {
				return a
			}
			return -1
		},
		equal: func(a, b int) bool { return a == b },
		transfer: func(b *Block, in int) int {
			out := in
			walkBlockNodes(b, func(n ast.Node) {
				if v, ok := assignVal(n); ok {
					out = v
				}
			})
			return out
		},
	})
	if !res.Seen[cfg.Exit.Index] {
		t.Fatalf("exit not reached by solver")
	}
	// The loop may run zero times, so at exit x is either the join's -1
	// (2 vs 3) or the loop's 4 — i.e. conflict.
	if got := res.In[cfg.Exit.Index]; got != -1 {
		t.Errorf("fact at exit = %d, want -1 (conflict)", got)
	}
	// Inside the loop body the fact must include the pre-loop conflict on
	// first entry; after the assignment it is 4.
	for _, b := range cfg.Blocks {
		if b.Kind == "for.body" && res.Seen[b.Index] {
			if res.Out[b.Index] != 4 {
				t.Errorf("loop body out-fact = %d, want 4", res.Out[b.Index])
			}
		}
	}
	_ = fset
}

// TestSolveFlowBackward runs a liveness-style backward problem: a variable
// read at the end must be live at entry, and writes kill liveness.
func TestSolveFlowBackward(t *testing.T) {
	body, _ := parseBody(t, `x := 1
if x > 0 {
	x = 2
}
_ = x`)
	cfg := BuildCFG(body)

	// Fact: is x live (will be read before written)?
	res := solveFlow(flowProblem[bool]{
		cfg:      cfg,
		backward: true,
		boundary: false,
		merge:    func(a, b bool) bool { return a || b },
		equal:    func(a, b bool) bool { return a == b },
		transfer: func(b *Block, in bool) bool {
			out := in
			// Walk nodes in reverse execution order for a backward problem.
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				n := b.Nodes[i]
				switch s := n.(type) {
				case *ast.AssignStmt:
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
						out = false // write kills
					}
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						if rid, ok := s.Rhs[0].(*ast.Ident); ok && rid.Name == "x" {
							out = true // read revives
						}
					}
				case ast.Expr:
					if strings.Contains(exprString(s), "x") {
						out = true
					}
				}
			}
			return out
		},
	})
	if !res.Seen[cfg.Entry.Index] {
		t.Fatalf("entry not reached by backward solver")
	}
	// x is written (x := 1) before any read, so it is dead at entry.
	if res.Out[cfg.Entry.Index] {
		t.Errorf("x live at entry; want dead (x := 1 kills before any read)")
	}
	// At the end of the then-branch (after x = 2) x is live: the final
	// `_ = x` reads it. In a backward problem In[b] is the fact at block end.
	for _, b := range cfg.Blocks {
		if b.Kind == "if.then" {
			if !res.Seen[b.Index] {
				t.Fatalf("then-block not solved")
			}
			if !res.In[b.Index] {
				t.Errorf("x dead at end of then-branch; want live (read by the final use)")
			}
			// And dead at the branch start: x = 2 kills the pending read.
			if res.Out[b.Index] {
				t.Errorf("x live at start of then-branch; want dead (x = 2 kills)")
			}
		}
	}
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BinaryExpr:
		return exprString(e.X) + exprString(e.Y)
	}
	return ""
}

// FuzzCFGBuild feeds arbitrary source through the parser and asserts the
// builder's invariants hold for every function that parses: one entry with
// no predecessors, symmetric edges, and every statement reachable from the
// entry or reported by Unreachable.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"package p\nfunc f() { x := 1; _ = x }",
		"package p\nfunc f() { for { break } }",
		"package p\nfunc f() {\nL:\n\tfor i := 0; i < 3; i++ {\n\t\tfor {\n\t\t\tcontinue L\n\t\t}\n\t}\n}",
		"package p\nfunc f() { goto X; X: return }",
		"package p\nfunc f(ch chan int) { select { case <-ch: case ch <- 1: default: } }",
		"package p\nfunc f(v any) { switch v.(type) { case int: case string: } }",
		"package p\nfunc f() { switch 1 { case 1: fallthrough; case 2: } }",
		"package p\nfunc f() { for i := 0; i < 2; i++ { defer println(i) } }",
		"package p\nfunc f() { panic(1) }",
		"package p\nfunc f() { if true { return }; select {} }",
		"package p\nfunc f() { x := 0\nagain:\n\tx++\n\tif x < 3 { goto again } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			t.Skip()
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			cfg := BuildCFG(body)
			if len(cfg.Entry.Preds) != 0 {
				t.Fatalf("entry has predecessors")
			}
			reach := cfg.Reachable()
			if !reach[cfg.Entry.Index] {
				t.Fatalf("entry unreachable from itself")
			}
			// Edge symmetry.
			for _, b := range cfg.Blocks {
				for _, s := range b.Succs {
					if !containsBlock(s.Preds, b) {
						t.Fatalf("edge %d->%d missing from Preds", b.Index, s.Index)
					}
				}
			}
			// Every block is reachable or reported (Unreachable covers all
			// non-empty unreachable blocks by construction; re-verify).
			reported := map[int]bool{}
			for _, b := range cfg.Unreachable() {
				reported[b.Index] = true
			}
			for _, b := range cfg.Blocks {
				if len(b.Nodes) > 0 && !reach[b.Index] && !reported[b.Index] {
					t.Fatalf("block %d with %d nodes neither reachable nor reported", b.Index, len(b.Nodes))
				}
			}
			// The solver must terminate on every graph the builder emits.
			solveFlow(flowProblem[int]{
				cfg:      cfg,
				boundary: 0,
				merge: func(a, b int) int {
					if a > b {
						return a
					}
					return b
				},
				equal:    func(a, b int) bool { return a == b },
				transfer: func(b *Block, in int) int { return in },
			})
			return true
		})
	})
}
