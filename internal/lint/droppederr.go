package lint

import (
	"go/ast"
	"go/types"
)

// droppedErrAnalyzer flags discarded error results from the disk and buffer
// APIs. Those errors are not incidental: ErrNoSuchPage means an executor
// computed a bad page address, ErrBufferFull means a schedule pinned more
// pages than the buffer holds, and an Unpin error means the pin ledger is
// already corrupt. Swallowing any of them lets a run continue and report
// I/O numbers that no longer mean anything, which is worse than crashing.
//
// A result is "dropped" when the call is an expression statement, when the
// error position of a multi-assign is the blank identifier, or when the
// call is deferred / spawned with go (the error is unobservable there).
func droppedErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "ignored error result from a disk/buffer API call",
		Run:  runDroppedErr,
	}
}

func runDroppedErr(p *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(call *ast.CallExpr, how string) {
		fn := p.calleeOf(call)
		diags = append(diags, p.diag(call, "droppederr",
			"error result of %s.%s %s; these errors mean the run's I/O accounting is already wrong — handle or return them", fn.Pkg().Name(), fn.Name(), how))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && p.guardedCallReturnsError(call) {
					report(call, "is discarded")
				}
			case *ast.DeferStmt:
				if p.guardedCallReturnsError(n.Call) {
					report(n.Call, "is unobservable in defer")
				}
			case *ast.GoStmt:
				if p.guardedCallReturnsError(n.Call) {
					report(n.Call, "is unobservable in go statement")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !p.guardedCallReturnsError(call) {
					return true
				}
				idx := p.errResultIndex(call)
				if idx < 0 || idx >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					report(call, "is assigned to _")
				}
			}
			return true
		})
	}
	return diags
}

// guardedCallReturnsError reports whether call statically targets a function
// or method of the disk or buffer package whose results include an error.
func (p *Package) guardedCallReturnsError(call *ast.CallExpr) bool {
	fn := p.calleeOf(call)
	if !fromPackage(fn, diskPkgPath) && !fromPackage(fn, bufferPkgPath) {
		return false
	}
	return p.errResultIndex(call) >= 0
}

// errResultIndex returns the index of the (last) error result of the call's
// callee, or -1 when it has none.
func (p *Package) errResultIndex(call *ast.CallExpr) int {
	fn := p.calleeOf(call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	if res.Len() == 0 {
		return -1
	}
	last := res.At(res.Len() - 1).Type()
	if named, ok := last.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return res.Len() - 1
	}
	return -1
}
