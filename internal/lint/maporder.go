package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderAnalyzer flags `range` over a map whose loop body has an
// order-sensitive effect without a sorted-keys normalization. Go randomizes
// map iteration order per run, so any effect that depends on visit order —
// appending to a slice that is not subsequently sorted, marking the
// prediction matrix, submitting to the worker pool, emitting trace events,
// accumulating floating-point sums, sending on a channel, printing — makes
// the result differ run to run. That is exactly the class of bug the
// determinism contract (bit-identical Report/Pairs/Plan at any Parallelism)
// cannot tolerate: one unsorted map walk in a merge path turns into a
// silently wrong published figure.
//
// Effects that are genuinely order-insensitive stay clean: integer
// counters (addition is commutative and exact), map/set writes, and the
// canonical normalization idiom
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)   // or sort.Ints/Strings/..., slices.Sort*
//
// where the appended-to slice is sorted later in the same enclosing block.
func maporderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "range over a map with an order-sensitive effect (append/Mark/submit/trace/float-accumulate) and no sorted-keys normalization",
		Run:  runMaporder,
	}
}

func runMaporder(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, nb := range funcBodies(f) {
			diags = append(diags, p.maporderBody(nb)...)
		}
	}
	return diags
}

func (p *Package) maporderBody(nb namedBody) []Diagnostic {
	var diags []Diagnostic
	walkSkipFuncLits(nb.body, func(n ast.Node, stack []ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !p.isMapType(rng.X) {
			return
		}
		if effect := p.orderSensitiveEffect(rng, stack); effect != "" {
			diags = append(diags, p.diag(rng, "maporder",
				"%s ranges over a map and %s in the loop body — iteration order varies per run; iterate sorted keys or restructure the effect",
				nb.name, effect))
		}
	})
	return diags
}

// isMapType reports whether the expression has map type (named or not).
func (p *Package) isMapType(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderSensitiveEffect scans the loop body for the first order-sensitive
// effect and describes it; "" means the body is order-insensitive. stack is
// the ancestor chain of the range statement (innermost last), used to find
// the trailing sort of the normalization idiom.
func (p *Package) orderSensitiveEffect(rng *ast.RangeStmt, stack []ast.Node) string {
	effect := ""
	set := func(e string) {
		if effect == "" {
			effect = e
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && p.isBuiltinAppend(call) && i < len(n.Lhs) {
					if !p.appendNormalizedLater(n.Lhs[i], rng, stack) {
						set("appends to a slice that is never sorted afterward")
					}
				}
			}
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN ||
				n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				if len(n.Lhs) == 1 && p.isFloatExpr(n.Lhs[0]) {
					set("accumulates a floating-point sum (rounding is order-dependent)")
				}
			}
		case *ast.SendStmt:
			set("sends on a channel (delivery order leaks iteration order)")
		case *ast.CallExpr:
			fn := p.calleeOf(n)
			switch {
			case isMethodOf(fn, predmatPkgPath, "Matrix", "Mark"):
				set("marks the prediction matrix (CSR insertion order)")
			case isMethodOf(fn, joinPkgPath, "WorkerPool", "Run"):
				set("submits worker-pool tasks (submission-order merge)")
			case fromPackage(fn, metricsPkgPath):
				set("emits metrics/trace events (event order)")
			case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(fn.Name() == "Print" || fn.Name() == "Println" || fn.Name() == "Printf" ||
					fn.Name() == "Fprint" || fn.Name() == "Fprintln" || fn.Name() == "Fprintf"):
				set("prints (output order leaks iteration order)")
			}
		}
		return true
	})
	return effect
}

// isBuiltinAppend matches a call of the append builtin.
func (p *Package) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isFloatExpr reports whether the expression's type is a floating-point
// scalar.
func (p *Package) isFloatExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// appendNormalizedLater recognizes the sorted-keys idiom: the slice
// appended to inside the map loop is passed to a sort call in a statement
// after the loop, within the block that directly contains the loop.
func (p *Package) appendNormalizedLater(target ast.Expr, rng *ast.RangeStmt, stack []ast.Node) bool {
	obj := p.exprObject(target)
	if obj == nil {
		return false
	}
	// Find the statement list containing the range loop.
	var list []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			list = blk.List
			break
		}
		if cc, ok := stack[i].(*ast.CaseClause); ok {
			list = cc.Body
			break
		}
	}
	after := false
	for _, s := range list {
		if !after {
			if containsNode(s, rng) {
				after = true
			}
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isSortCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if p.exprObject(arg) == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall matches the stdlib sorters: sort.* and slices.Sort*.
func (p *Package) isSortCall(call *ast.CallExpr) bool {
	fn := p.calleeOf(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort"
	}
	return false
}

// exprObject resolves an identifier (possibly parenthesized) to its object;
// nil for anything more complex.
func (p *Package) exprObject(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// containsNode reports whether root's subtree contains target.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
