package lint

import (
	"go/ast"
	"go/token"
)

// geomPkgPath is the package declaring the Norm distance methods slowdist
// polices.
const geomPkgPath = "pmjoin/internal/geom"

// slowdistPackages are the CPU hot-path packages where a full distance
// computation feeding a threshold comparison must go through internal/kernel
// instead: the kernel decides the same predicate bit-identically with early
// abandon and without the final root (L2) or Pow (Lp) per pair.
var slowdistPackages = map[string]bool{
	"pmjoin/internal/bfrj":    true,
	"pmjoin/internal/ego":     true,
	"pmjoin/internal/pbsm":    true,
	"pmjoin/internal/predmat": true,
}

// slowdistMethods are the geom.Norm methods whose result, when only compared
// against a threshold, should be a kernel test instead.
var slowdistMethods = map[string]bool{
	"Dist":         true,
	"MinDist":      true,
	"MinDistPoint": true,
}

// slowdistAnalyzer flags geom.Norm distance calls whose result is immediately
// threshold-compared (<=, <, >=, >) in the hot-path join packages. Computing
// the full distance just to compare it throws away the early-abandon and
// root-elision wins of internal/kernel — Threshold for point pairs, Bound for
// MBR lower bounds — which decide the identical predicate. Distance values
// that are stored, returned or otherwise used as numbers are fine and not
// flagged. A site that genuinely needs the reference comparison (the
// kernels-off differential path) carries //lint:ignore slowdist <reason>.
func slowdistAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "slowdist",
		Doc:  "threshold-compared geom.Norm distance in a hot-path package; use internal/kernel's Threshold/Bound instead",
		Run:  runSlowdist,
	}
}

func runSlowdist(p *Package) []Diagnostic {
	if !slowdistPackages[p.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.LEQ, token.LSS, token.GEQ, token.GTR:
			default:
				return true
			}
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				call, ok := ast.Unparen(side).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := p.calleeOf(call)
				if fn == nil || !fromPackage(fn, geomPkgPath) || !slowdistMethods[fn.Name()] {
					continue
				}
				if !isMethodOf(fn, geomPkgPath, "Norm", fn.Name()) {
					continue
				}
				diags = append(diags, p.diag(bin, "slowdist",
					"threshold comparison of Norm.%s computes the full distance per pair; use internal/kernel (Threshold.Within / Bound.Within) to decide the same predicate with early abandon", fn.Name()))
			}
			return true
		})
	}
	return diags
}
