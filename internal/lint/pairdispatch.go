package lint

import (
	"go/ast"
)

// kernelPkgPath is the package declaring the batched distance kernels
// pairdispatch polices.
const kernelPkgPath = "pmjoin/internal/kernel"

// pairdispatchAnalyzer restricts per-pair kernel dispatch inside
// internal/join to ObjectJoiner.JoinPages methods. Everywhere else in the
// package — the executors in particular — the whole-cluster batch entry
// (Exec.JoinCluster feeding kernel.BlockPairsWithin) is the only sanctioned
// dispatch site: a hand-rolled PagePairWithin loop over a cluster's cells
// forfeits the one-block SIMD streaming and, worse, invites a second
// counter-folding order that would silently fork the determinism contract.
// JoinPages methods are exempt because they ARE the per-pair fallback the
// batch path must stay bit-identical to.
func pairdispatchAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "pairdispatch",
		Doc:  "per-pair kernel call in internal/join outside a JoinPages method; dispatch clusters through the batch entry instead",
		Run:  runPairdispatch,
	}
}

func runPairdispatch(p *Package) []Diagnostic {
	if p.Path != joinPkgPath {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Function literals inside a JoinPages body (emit callbacks and
			// the like) inherit its sanction; the method is the per-pair seam,
			// however it arranges its internals.
			sanctioned := fn.Name.Name == "JoinPages"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isPkgFunc(p.calleeOf(call), kernelPkgPath, "PagePairWithin") {
					return true
				}
				if !sanctioned {
					diags = append(diags, p.diag(call, "pairdispatch",
						"kernel.PagePairWithin outside a JoinPages method; cluster-level code must dispatch through the batch entry (Exec.JoinCluster / kernel.BlockPairsWithin) so counters fold in the contract order"))
				}
				return true
			})
		}
	}
	return diags
}
