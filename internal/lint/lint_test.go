package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

// Stub declarations of the guarded packages. Fixtures are type-checked
// against these under the real import paths, so the analyzers' path-based
// matching works exactly as it does on the real tree.
const stubDisk = `package disk

type FileID int

type PageAddr struct {
	File FileID
	Page int
}

type Page struct {
	Addr    PageAddr
	Payload any
}

type Disk struct{}

func (d *Disk) Read(a PageAddr) (*Page, error)            { return nil, nil }
func (d *Disk) Write(a PageAddr, payload any) error       { return nil }
func (d *Disk) Peek(a PageAddr) (*Page, error)            { return nil, nil }
func (d *Disk) AppendPage(f FileID, p any) (PageAddr, error) { return PageAddr{}, nil }
func (d *Disk) NumPages(f FileID) int                     { return 0 }
func (d *Disk) NewSession() *Session                      { return nil }

type Session struct{}

func (s *Session) Read(a PageAddr) (*Page, error)      { return nil, nil }
func (s *Session) Write(a PageAddr, payload any) error { return nil }
func (s *Session) Peek(a PageAddr) (*Page, error)      { return nil, nil }
func (s *Session) NumPages(f FileID) int               { return 0 }
`

const stubBuffer = `package buffer

import "pmjoin/internal/disk"

type Source interface {
	Read(addr disk.PageAddr) (*disk.Page, error)
}

type Pool struct{}

func (p *Pool) Get(a disk.PageAddr) (*disk.Page, error)       { return nil, nil }
func (p *Pool) GetPinned(a disk.PageAddr) (*disk.Page, error) { return nil, nil }
func (p *Pool) Unpin(a disk.PageAddr) error                   { return nil }
func (p *Pool) UnpinAll()                                     {}
func (p *Pool) Flush() error                                  { return nil }
func (p *Pool) Prefetch(a disk.PageAddr) (bool, error)        { return false, nil }
`

const stubGeom = `package geom

type Vector []float64

type MBR struct {
	Min, Max Vector
}

type Norm struct{ P int }

func (n Norm) Dist(a, b Vector) float64            { return 0 }
func (n Norm) MinDist(a, b MBR) float64            { return 0 }
func (n Norm) MinDistPoint(p Vector, m MBR) float64 { return 0 }
`

const stubPredmat = `package predmat

type Matrix struct{}

func (m *Matrix) Mark(i, j int) {}
`

const stubJoin = `package join

type WorkerPool struct{}

func (p *WorkerPool) Run(tasks []func() any) []any { return nil }
`

const stubMetrics = `package metrics

type Collector struct{}

func (c *Collector) Event(name string) {}
`

const stubKernel = `package kernel

type Threshold struct{ p int }

func (t *Threshold) Within(a, b []float64) bool { return false }

type FlatPage struct {
	Dim, N int
	Data   []float64
}

func PagePairWithin(t *Threshold, probe []float64, page *FlatPage, hits []int) []int { return nil }

type Cell struct{ R, S int }

type ClusterBlock struct{}

type BlockHit struct{ Cell, I, J int32 }

func BlockPairsWithin(t *Threshold, br, bs *ClusterBlock, cells []Cell, hits []BlockHit) []BlockHit {
	return nil
}
`

// checkFixture type-checks the stub packages plus one fixture source under
// the given import path and returns the fixture as a *Package ready for
// analysis.
func checkFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	return checkFixtureFile(t, path, "fixture.go", src)
}

// checkFixtureFile is checkFixture with an explicit fixture filename, for
// rules whose matching depends on the file (rawgo exempts workerpool.go).
func checkFixtureFile(t *testing.T, path, filename, src string) *Package {
	t.Helper()
	// Fixtures share the process-wide fset and stdlib importer (see load.go):
	// the stdlib closure is type-checked once for the whole test run instead
	// of once per fixture, which is what used to dominate this suite's time.
	fset := stdlibFset
	checked := map[string]*types.Package{}
	imp := importerFunc(func(p string) (*types.Package, error) {
		if pkg, ok := checked[p]; ok {
			return pkg, nil
		}
		return importStdlib(p)
	})
	check := func(path, filename, src string) *Package {
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", filename, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-check %s: %v", path, err)
		}
		checked[path] = tpkg
		return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	}
	check(diskPkgPath, "disk.go", stubDisk)
	check(bufferPkgPath, "buffer.go", stubBuffer)
	check(geomPkgPath, "geom.go", stubGeom)
	check(predmatPkgPath, "predmat.go", stubPredmat)
	check(joinPkgPath, "join.go", stubJoin)
	check(metricsPkgPath, "metrics.go", stubMetrics)
	check(kernelPkgPath, "kernel.go", stubKernel)
	return check(path, filename, src)
}

// runOne runs a single analyzer (with suppression applied) over a fixture.
func runOne(t *testing.T, name, path, src string) []Diagnostic {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return Run([]*Package{checkFixture(t, path, src)}, []*Analyzer{a})
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// expectDiags asserts the diagnostics hit exactly the given lines (in order)
// under the given rule.
func expectDiags(t *testing.T, diags []Diagnostic, rule string, lines []int) {
	t.Helper()
	if len(diags) != len(lines) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(lines), formatDiags(diags))
	}
	for i, d := range diags {
		if d.Rule != rule {
			t.Errorf("diag %d: rule %q, want %q", i, d.Rule, rule)
		}
		if d.Pos.Line != lines[i] {
			t.Errorf("diag %d: line %d, want %d (%s)", i, d.Pos.Line, lines[i], d.Message)
		}
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestPinleak(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int // expected diagnostic lines; empty = clean
	}{
		{
			name: "leak on fall-through return",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func leak(p *buffer.Pool, a disk.PageAddr) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	return nil
}
`,
			lines: []int{12},
		},
		{
			name: "leak with no return at all",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func leak(p *buffer.Pool, a disk.PageAddr) {
	p.GetPinned(a)
}
`,
			lines: []int{9},
		},
		{
			name: "unpin on the success path is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	return p.Unpin(a)
}
`,
		},
		{
			name: "deferred UnpinAll is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	defer p.UnpinAll()
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	return nil
}
`,
		},
		{
			name: "deferred closure unpin is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	defer func() { p.UnpinAll() }()
	_, err := p.GetPinned(a)
	return err
}
`,
		},
		{
			name: "pin loop with UnpinAll per block is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, f disk.FileID, n int) error {
	for lo := 0; lo < n; lo += 4 {
		for i := lo; i < lo+4 && i < n; i++ {
			if _, err := p.GetPinned(disk.PageAddr{File: f, Page: i}); err != nil {
				return err
			}
		}
		p.UnpinAll()
	}
	return nil
}
`,
		},
		{
			name: "leaking function literal is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func run(body func() error) error { return body() }

func caller(p *buffer.Pool, a disk.PageAddr) error {
	return run(func() error {
		if _, err := p.GetPinned(a); err != nil {
			return err
		}
		return nil
	})
}
`,
			lines: []int{15},
		},
		{
			// Flush no longer discards pinned frames (it skips and reports
			// them), so it must not be mistaken for a pin release: a
			// function that pins and then flushes still owes an Unpin.
			name: "Flush does not satisfy the pin obligation",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, a disk.PageAddr) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	return p.Flush()
}
`,
			lines: []int{12},
		},
		{
			name: "success-path return before unpin is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func mixed(p *buffer.Pool, a disk.PageAddr, early bool) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	if early {
		return nil
	}
	return p.Unpin(a)
}
`,
			lines: []int{13},
		},
		// The remaining cases are differential against the pre-CFG analysis,
		// which scanned the body in source order with a boolean pinned flag
		// and a function-wide "has deferred unpin" shortcut. Each comment
		// records what that scan concluded; the CFG dataflow gets them right.
		{
			// Old scan: clean — it cleared its pinned flag at the Unpin in
			// the branch, never noticing the flag only cleared on one path.
			name: "unpin on only one branch is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, a disk.PageAddr, done bool) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	if done {
		p.Unpin(a)
	}
	return nil
}
`,
			lines: []int{15},
		},
		{
			// Old scan: clean — in source order the single Unpin follows the
			// GetPinned, but the loop pins once per iteration and only one
			// pin is ever released.
			name: "pin inside a loop with a single unpin is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, f disk.FileID, n int) error {
	for i := 0; i < n; i++ {
		if _, err := p.GetPinned(disk.PageAddr{File: f, Page: i}); err != nil {
			return err
		}
	}
	p.Unpin(disk.PageAddr{File: f, Page: 0})
	return nil
}
`,
			lines: []int{15},
		},
		{
			// Old scan: clean — any deferred unpin anywhere exonerated the
			// whole function, even one registered on a single branch.
			name: "defer registered on only one branch is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, a disk.PageAddr, tidy bool) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	if tidy {
		defer p.UnpinAll()
	}
	return nil
}
`,
			lines: []int{15},
		},
		{
			// The defer credit is per-path: a pin and its deferred release
			// scoped to the same branch owe nothing on the other path.
			name: "branch-scoped pin with branch-scoped defer is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr, warm bool) error {
	if warm {
		if _, err := p.GetPinned(a); err != nil {
			return err
		}
		defer p.UnpinAll()
	}
	return nil
}
`,
		},
		{
			name: "deferred counted Unpin matches one pin",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	defer p.Unpin(a)
	return nil
}
`,
		},
		{
			// Paths that exit by panicking abandon the run and are exempt;
			// the non-panicking path still owes its release and has one.
			name: "panic exit with outstanding pin is exempt",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr, n int) {
	p.GetPinned(a)
	if n < 0 {
		panic("bad page count")
	}
	p.UnpinAll()
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "pinleak", fixturePath, tc.src), "pinleak", tc.lines)
		})
	}
}

func TestBufferBypass(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "direct disk read, write, peek are flagged",
			src: `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) error {
	if _, err := d.Read(a); err != nil {
		return err
	}
	if _, err := d.Peek(a); err != nil {
		return err
	}
	return d.Write(a, nil)
}
`,
			lines: []int{6, 9, 12},
		},
		{
			name: "pool-mediated access is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	_, err := p.Get(a)
	return err
}
`,
		},
		{
			name: "uncharged metadata methods are clean",
			src: `package fixture

import "pmjoin/internal/disk"

func ok(d *disk.Disk, f disk.FileID) int {
	return d.NumPages(f)
}
`,
		},
		{
			name: "session page I/O is flagged like disk page I/O",
			src: `package fixture

import "pmjoin/internal/disk"

func bad(s *disk.Session, a disk.PageAddr) error {
	if _, err := s.Read(a); err != nil {
		return err
	}
	if _, err := s.Peek(a); err != nil {
		return err
	}
	return s.Write(a, nil)
}
`,
			lines: []int{6, 9, 12},
		},
		{
			name: "session metadata methods are clean",
			src: `package fixture

import "pmjoin/internal/disk"

func ok(s *disk.Session, f disk.FileID) int {
	return s.NumPages(f)
}
`,
		},
		{
			// A call through the pool's Source interface resolves to the
			// interface method, not disk.Disk or disk.Session; the rule must
			// still see it, or engines could hold the pool's source and issue
			// their own readahead around Pool.Prefetch.
			name: "read through buffer.Source is flagged",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(src buffer.Source, a disk.PageAddr) error {
	_, err := src.Read(a)
	return err
}
`,
			lines: []int{9},
		},
		{
			name: "prefetch through the pool is clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	_, err := p.Prefetch(a)
	return err
}
`,
		},
		{
			// A fixture-local Read is not pool-source traffic: only the
			// guarded interface (and the concrete disk types) carry the
			// simulator's I/O charges.
			name: "read on an unrelated local type is clean",
			src: `package fixture

import "pmjoin/internal/disk"

type fake struct{}

func (fake) Read(a disk.PageAddr) (*disk.Page, error) { return nil, nil }

func ok(f fake, a disk.PageAddr) error {
	_, err := f.Read(a)
	return err
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "bufferbypass", fixturePath, tc.src), "bufferbypass", tc.lines)
		})
	}
}

func TestRawGo(t *testing.T) {
	const goSrc = `package fixture

func spawn(task func()) {
	go task()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`
	t.Run("bare go statements are flagged", func(t *testing.T) {
		expectDiags(t, runOne(t, "rawgo", "pmjoin/internal/fixture", goSrc), "rawgo", []int{4, 6})
	})
	t.Run("workerpool.go in internal/join is exempt", func(t *testing.T) {
		src := strings.Replace(goSrc, "package fixture", "package join", 1)
		pkg := checkFixtureFile(t, joinPkgPath, "workerpool.go", src)
		for _, a := range Analyzers() {
			if a.Name == "rawgo" {
				expectDiags(t, Run([]*Package{pkg}, []*Analyzer{a}), "rawgo", nil)
			}
		}
	})
	t.Run("other files in internal/join are not exempt", func(t *testing.T) {
		src := strings.Replace(goSrc, "package fixture", "package join", 1)
		pkg := checkFixtureFile(t, joinPkgPath, "exec.go", src)
		for _, a := range Analyzers() {
			if a.Name == "rawgo" {
				expectDiags(t, Run([]*Package{pkg}, []*Analyzer{a}), "rawgo", []int{4, 6})
			}
		}
	})
	t.Run("coordinator.go in internal/shard is exempt", func(t *testing.T) {
		src := strings.Replace(goSrc, "package fixture", "package shard", 1)
		pkg := checkFixtureFile(t, shardPkgPath, "coordinator.go", src)
		for _, a := range Analyzers() {
			if a.Name == "rawgo" {
				expectDiags(t, Run([]*Package{pkg}, []*Analyzer{a}), "rawgo", nil)
			}
		}
	})
	t.Run("other files in internal/shard are not exempt", func(t *testing.T) {
		src := strings.Replace(goSrc, "package fixture", "package shard", 1)
		pkg := checkFixtureFile(t, shardPkgPath, "runner.go", src)
		for _, a := range Analyzers() {
			if a.Name == "rawgo" {
				expectDiags(t, Run([]*Package{pkg}, []*Analyzer{a}), "rawgo", []int{4, 6})
			}
		}
	})
	t.Run("suppressed spawn is clean", func(t *testing.T) {
		src := `package fixture

func spawn(done chan struct{}) {
	//lint:ignore rawgo test helper joins via the channel
	go func() { close(done) }()
}
`
		expectDiags(t, runOne(t, "rawgo", "pmjoin/internal/fixture", src), "rawgo", nil)
	})
}

func TestUnseededRand(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "global rand functions are flagged",
			src: `package fixture

import "math/rand"

func bad(n int) int {
	rand.Shuffle(n, func(i, j int) {})
	return rand.Intn(n)
}
`,
			lines: []int{6, 7},
		},
		{
			name: "rand.New with indirect source is flagged",
			src: `package fixture

import "math/rand"

func bad(src rand.Source) *rand.Rand {
	return rand.New(src)
}
`,
			lines: []int{6},
		},
		{
			name: "seeded source is clean",
			src: `package fixture

import "math/rand"

func ok(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "unseededrand", fixturePath, tc.src), "unseededrand", tc.lines)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name  string
		path  string
		src   string
		lines []int
	}{
		{
			name: "computed float equality in a distance package is flagged",
			path: "pmjoin/internal/geom",
			src: `package geom

func bad(a, b, c float64) bool {
	return a+b == c || a != c
}
`,
			lines: []int{4, 4},
		},
		{
			name: "constant sentinel comparison is clean",
			path: "pmjoin/internal/cluster",
			src: `package cluster

func ok(x float64) bool {
	return x == 0
}
`,
		},
		{
			name: "inequalities are clean",
			path: "pmjoin/internal/seqdist",
			src: `package seqdist

func ok(a, b float64) bool {
	return a <= b
}
`,
		},
		{
			name: "packages outside the distance set are not policed",
			path: "pmjoin/internal/fixture",
			src: `package fixture

func elsewhere(a, b float64) bool {
	return a == b
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "floateq", tc.path, tc.src), "floateq", tc.lines)
		})
	}
}

func TestDroppedErr(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	cases := []struct {
		name  string
		src   string
		lines []int
	}{
		{
			name: "expression statement discards the error",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, a disk.PageAddr) {
	p.Unpin(a)
}
`,
			lines: []int{9},
		},
		{
			name: "blank identifier in the error slot",
			src: `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) any {
	pg, _ := d.Read(a)
	return pg
}
`,
			lines: []int{6},
		},
		{
			name: "deferred unpin hides the error",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func bad(p *buffer.Pool, a disk.PageAddr) {
	defer p.Unpin(a)
}
`,
			lines: []int{9},
		},
		{
			name: "handled errors are clean",
			src: `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func ok(p *buffer.Pool, a disk.PageAddr) error {
	if err := p.Unpin(a); err != nil {
		return err
	}
	_, err := p.Get(a)
	return err
}
`,
		},
		{
			name: "void disk/buffer calls are clean",
			src: `package fixture

import "pmjoin/internal/buffer"

func ok(p *buffer.Pool) {
	p.UnpinAll()
}
`,
		},
		{
			name: "discarded Flush error is flagged",
			src: `package fixture

import "pmjoin/internal/buffer"

func bad(p *buffer.Pool) {
	p.Flush()
}
`,
			lines: []int{6},
		},
		{
			name: "non-guarded packages are not policed",
			src: `package fixture

import "strconv"

func ok(s string) {
	strconv.Atoi(s)
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runOne(t, "droppederr", fixturePath, tc.src), "droppederr", tc.lines)
		})
	}
}

func TestSuppression(t *testing.T) {
	const fixturePath = "pmjoin/internal/fixture"
	t.Run("line-above directive silences the finding", func(t *testing.T) {
		src := `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) error {
	//lint:ignore bufferbypass cost-model scan charged directly
	_, err := d.Read(a)
	return err
}
`
		expectDiags(t, runOne(t, "bufferbypass", fixturePath, src), "bufferbypass", nil)
	})
	t.Run("same-line directive silences the finding", func(t *testing.T) {
		src := `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) error {
	_, err := d.Read(a) //lint:ignore bufferbypass cost-model scan charged directly
	return err
}
`
		expectDiags(t, runOne(t, "bufferbypass", fixturePath, src), "bufferbypass", nil)
	})
	t.Run("doc-comment directive covers the whole function", func(t *testing.T) {
		src := `package fixture

import (
	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

// pin pins on behalf of the caller.
//
//lint:ignore pinleak pins are owned by the caller
func pin(p *buffer.Pool, a disk.PageAddr) error {
	if _, err := p.GetPinned(a); err != nil {
		return err
	}
	return nil
}
`
		expectDiags(t, runOne(t, "pinleak", fixturePath, src), "pinleak", nil)
	})
	t.Run("directive for another rule does not silence", func(t *testing.T) {
		src := `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) error {
	//lint:ignore floateq wrong rule
	_, err := d.Read(a)
	return err
}
`
		expectDiags(t, runOne(t, "bufferbypass", fixturePath, src), "bufferbypass", []int{7})
	})
	t.Run("missing reason is itself reported", func(t *testing.T) {
		src := `package fixture

import "pmjoin/internal/disk"

func bad(d *disk.Disk, a disk.PageAddr) error {
	//lint:ignore bufferbypass
	_, err := d.Read(a)
	return err
}
`
		diags := runOne(t, "bufferbypass", fixturePath, src)
		if len(diags) != 2 {
			t.Fatalf("got %d diagnostics, want 2 (lintdirective + unsuppressed finding):\n%s",
				len(diags), formatDiags(diags))
		}
		if diags[0].Rule != "lintdirective" {
			t.Errorf("first diag rule %q, want lintdirective", diags[0].Rule)
		}
		if diags[1].Rule != "bufferbypass" {
			t.Errorf("second diag rule %q, want bufferbypass", diags[1].Rule)
		}
	})
}

// TestModuleIsClean is the lint gate as a test: the whole module must load,
// type-check, and produce zero diagnostics. This is the same check CI runs
// via `go run ./cmd/pmlint ./...`.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing parts of the module", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestWalltime(t *testing.T) {
	const timeSrc = `package fixture

import "time"

var now = time.Now
`
	t.Run("time import in a hot-path internal package is flagged", func(t *testing.T) {
		expectDiags(t, runOne(t, "walltime", "pmjoin/internal/fixture", timeSrc), "walltime", []int{3})
	})
	t.Run("internal/join is a hot-path package", func(t *testing.T) {
		src := strings.Replace(timeSrc, "package fixture", "package join", 1)
		expectDiags(t, runOne(t, "walltime", joinPkgPath, src), "walltime", []int{3})
	})
	t.Run("internal/metrics is exempt", func(t *testing.T) {
		src := strings.Replace(timeSrc, "package fixture", "package metrics", 1)
		expectDiags(t, runOne(t, "walltime", metricsPkgPath, src), "walltime", nil)
	})
	t.Run("internal/experiments is exempt", func(t *testing.T) {
		src := strings.Replace(timeSrc, "package fixture", "package experiments", 1)
		expectDiags(t, runOne(t, "walltime", experimentsPkgPath, src), "walltime", nil)
	})
	t.Run("internal/store is exempt", func(t *testing.T) {
		src := strings.Replace(timeSrc, "package fixture", "package store", 1)
		expectDiags(t, runOne(t, "walltime", storePkgPath, src), "walltime", nil)
	})
	t.Run("packages outside internal are exempt", func(t *testing.T) {
		src := strings.Replace(timeSrc, "package fixture", "package pmjoin", 1)
		expectDiags(t, runOne(t, "walltime", "pmjoin", src), "walltime", nil)
	})
	t.Run("suppressed import is clean", func(t *testing.T) {
		src := `package fixture

//lint:ignore walltime timeout plumbing, not cost accounting
import "time"

var after = time.After
`
		expectDiags(t, runOne(t, "walltime", "pmjoin/internal/fixture", src), "walltime", nil)
	})
}

func TestSlowdist(t *testing.T) {
	const egoPath = "pmjoin/internal/ego"
	t.Run("threshold-compared Dist is flagged", func(t *testing.T) {
		src := `package ego

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.Vector, eps float64) bool {
	return n.Dist(a, b) <= eps
}
`
		expectDiags(t, runOne(t, "slowdist", egoPath, src), "slowdist", []int{6})
	})
	t.Run("every comparison direction and MinDist variant is flagged", func(t *testing.T) {
		src := `package predmat

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.MBR, p geom.Vector, eps float64) {
	_ = n.MinDist(a, b) <= eps
	_ = n.MinDist(a, b) < eps
	_ = eps >= n.MinDistPoint(p, a)
	_ = n.MinDistPoint(p, b) > eps
}
`
		expectDiags(t, runOne(t, "slowdist", "pmjoin/internal/predmat", src), "slowdist", []int{6, 7, 8, 9})
	})
	t.Run("distance used as a value is clean", func(t *testing.T) {
		src := `package pbsm

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.Vector) float64 {
	d := n.Dist(a, b)
	return d * 2
}
`
		expectDiags(t, runOne(t, "slowdist", "pmjoin/internal/pbsm", src), "slowdist", nil)
	})
	t.Run("comparing a stored distance variable is clean", func(t *testing.T) {
		// The rule targets the immediate compute-then-compare shape; a stored
		// distance may have other uses.
		src := `package bfrj

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.Vector, eps float64) bool {
	d := n.Dist(a, b)
	return d <= eps
}
`
		expectDiags(t, runOne(t, "slowdist", "pmjoin/internal/bfrj", src), "slowdist", nil)
	})
	t.Run("packages outside the hot-path set are exempt", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.Vector, eps float64) bool {
	return n.Dist(a, b) <= eps
}
`
		expectDiags(t, runOne(t, "slowdist", joinPkgPath, src), "slowdist", nil)
	})
	t.Run("suppressed site is clean", func(t *testing.T) {
		src := `package ego

import "pmjoin/internal/geom"

func f(n geom.Norm, a, b geom.Vector, eps float64) bool {
	//lint:ignore slowdist kernels-off reference path for differential testing
	return n.Dist(a, b) <= eps
}
`
		expectDiags(t, runOne(t, "slowdist", egoPath, src), "slowdist", nil)
	})
}

func TestPairdispatch(t *testing.T) {
	t.Run("JoinPages method is sanctioned", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/kernel"

type fixtureJoiner struct{}

func (j fixtureJoiner) JoinPages(a, b any, emit func(int, int)) (int64, float64) {
	var th kernel.Threshold
	page := &kernel.FlatPage{}
	_ = kernel.PagePairWithin(&th, nil, page, nil)
	return 0, 0
}
`
		expectDiags(t, runOne(t, "pairdispatch", joinPkgPath, src), "pairdispatch", nil)
	})
	t.Run("function literal inside JoinPages inherits the sanction", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/kernel"

type litJoiner struct{}

func (j litJoiner) JoinPages(a, b any, emit func(int, int)) (int64, float64) {
	var th kernel.Threshold
	page := &kernel.FlatPage{}
	f := func() { _ = kernel.PagePairWithin(&th, nil, page, nil) }
	f()
	return 0, 0
}
`
		expectDiags(t, runOne(t, "pairdispatch", joinPkgPath, src), "pairdispatch", nil)
	})
	t.Run("per-pair call in executor code is flagged", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/kernel"

func clusterLoop(th *kernel.Threshold, pages []*kernel.FlatPage) {
	for _, pg := range pages {
		_ = kernel.PagePairWithin(th, nil, pg, nil)
	}
}
`
		expectDiags(t, runOne(t, "pairdispatch", joinPkgPath, src), "pairdispatch", []int{7})
	})
	t.Run("batch entry is clean anywhere", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/kernel"

func clusterBatch(th *kernel.Threshold, br, bs *kernel.ClusterBlock, cells []kernel.Cell) []kernel.BlockHit {
	return kernel.BlockPairsWithin(th, br, bs, cells, nil)
}
`
		expectDiags(t, runOne(t, "pairdispatch", joinPkgPath, src), "pairdispatch", nil)
	})
	t.Run("packages outside internal/join are exempt", func(t *testing.T) {
		src := `package ego

import "pmjoin/internal/kernel"

func probe(th *kernel.Threshold, pg *kernel.FlatPage) []int {
	return kernel.PagePairWithin(th, nil, pg, nil)
}
`
		expectDiags(t, runOne(t, "pairdispatch", "pmjoin/internal/ego", src), "pairdispatch", nil)
	})
	t.Run("suppressed site is clean", func(t *testing.T) {
		src := `package join

import "pmjoin/internal/kernel"

func refLoop(th *kernel.Threshold, pg *kernel.FlatPage) []int {
	//lint:ignore pairdispatch reference path for a differential test harness
	return kernel.PagePairWithin(th, nil, pg, nil)
}
`
		expectDiags(t, runOne(t, "pairdispatch", joinPkgPath, src), "pairdispatch", nil)
	})
}
