package lint

import "strings"

// Package paths referenced by individual rules.
const (
	metricsPkgPath     = "pmjoin/internal/metrics"
	experimentsPkgPath = "pmjoin/internal/experiments"
	storePkgPath       = "pmjoin/internal/store"
)

// walltimeAllowed lists the internal packages sanctioned to read the wall
// clock: metrics (the phase-scoped collector), experiments (the host-speedup
// harness), and store (the file-backed page store, whose whole point is
// *measured* physical read latencies — they flow only into disk.Measured /
// ExecStats.MeasuredIOWall, never into a Report). Everything else under
// internal/ is hot-path and stays modeled-time only.
var walltimeAllowed = map[string]bool{
	metricsPkgPath:     true,
	experimentsPkgPath: true,
	storePkgPath:       true,
}

// walltimeAnalyzer flags `import "time"` in the hot-path internal packages.
// Every cost the simulator reports is modeled, not measured: disk seconds
// come from the linear-disk model and CPU seconds from calibrated per-
// operation constants, which is what makes a Report a deterministic function
// of the schedule. A time.Now() in disk, buffer, predmat, cluster, sched or
// join is either dead weight on the hot path or — worse — the first step of
// time-based accounting that would make Reports host-dependent. All wall-
// clock measurement flows through the sanctioned seams instead — the
// walltimeAllowed set: internal/metrics (the phase-scoped collector),
// internal/experiments (the host-speedup harness), internal/store (measured
// physical read latencies) — and the ExecStats fields at the API layer
// (outside internal/). Anything else needs a //lint:ignore walltime <reason>.
func walltimeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "import of time in a hot-path internal package; wall-clock measurement belongs to internal/metrics, internal/experiments, or ExecStats",
		Run:  runWalltime,
	}
}

func runWalltime(p *Package) []Diagnostic {
	if !strings.HasPrefix(p.Path, "pmjoin/internal/") {
		return nil
	}
	if walltimeAllowed[p.Path] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "time" {
				continue
			}
			diags = append(diags, p.diag(imp, "walltime",
				"hot-path package imports time; route wall-clock measurement through internal/metrics (or ExecStats at the API layer) so simulated costs stay deterministic"))
		}
	}
	return diags
}
