package lint

import (
	"go/ast"
	"path/filepath"
)

// rawGoAnalyzer flags bare `go` statements anywhere outside the worker pool.
// The join layer's determinism contract (identical Report / pairs / Plan at
// any Parallelism) holds because every concurrent computation is funneled
// through join.WorkerPool: the pool bounds fan-out, Close joins every worker
// before a run returns, and Exec merges task results in submission order. A
// raw goroutine spawned elsewhere has none of those guarantees — it can
// outlive the run it belongs to, race on the simulated disk's accounting, or
// reorder result emission. The only sanctioned spawn site is the pool itself
// (workerpool.go in pmjoin/internal/join); anything else must either use the
// pool or carry a `//lint:ignore rawgo <reason>`.
func rawGoAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawgo",
		Doc:  "bare go statement outside the join worker pool escapes the pool's bounding and join guarantees",
		Run:  runRawGo,
	}
}

func runRawGo(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.Path == joinPkgPath && filepath.Base(p.Fset.Position(f.Pos()).Filename) == "workerpool.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				diags = append(diags, p.diag(g, "rawgo",
					"bare go statement; route concurrency through join.WorkerPool so workers are bounded, joined, and deterministic"))
			}
			return true
		})
	}
	return diags
}
