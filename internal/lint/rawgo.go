package lint

import (
	"go/ast"
	"path/filepath"
)

// rawGoAnalyzer flags bare `go` statements anywhere outside the worker pool.
// The join layer's determinism contract (identical Report / pairs / Plan at
// any Parallelism) holds because every concurrent computation is funneled
// through join.WorkerPool: the pool bounds fan-out, Close joins every worker
// before a run returns, and Exec merges task results in submission order. A
// raw goroutine spawned elsewhere has none of those guarantees — it can
// outlive the run it belongs to, race on the simulated disk's accounting, or
// reorder result emission. There are exactly two sanctioned spawn sites: the
// pool itself (workerpool.go in pmjoin/internal/join) and the shard
// coordinator (coordinator.go in pmjoin/internal/shard), whose shard workers
// cannot run on the comparison pool — a shard task blocks in Flush waiting
// for its comparison tasks, so sharing the pool could fill every slot with
// blocked shards and deadlock — and which carries the pool's guarantees by
// hand (bounded fan-out, joined before return, index-slotted results).
// Anything else must either use the pool or carry a
// `//lint:ignore rawgo <reason>`.
func rawGoAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawgo",
		Doc:  "bare go statement outside the join worker pool escapes the pool's bounding and join guarantees",
		Run:  runRawGo,
	}
}

func runRawGo(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if p.Path == joinPkgPath && base == "workerpool.go" {
			continue
		}
		if p.Path == shardPkgPath && base == "coordinator.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				diags = append(diags, p.diag(g, "rawgo",
					"bare go statement; route concurrency through join.WorkerPool so workers are bounded, joined, and deterministic"))
			}
			return true
		})
	}
	return diags
}
