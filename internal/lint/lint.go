package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Paths of the packages whose invariants the analyzers guard. The analyzers
// match call targets by these import paths, so the suite keeps working if
// files move around within the packages.
const (
	bufferPkgPath  = "pmjoin/internal/buffer"
	diskPkgPath    = "pmjoin/internal/disk"
	joinPkgPath    = "pmjoin/internal/join"
	predmatPkgPath = "pmjoin/internal/predmat"
	shardPkgPath   = "pmjoin/internal/shard"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one pmlint rule.
type Analyzer struct {
	Name string // rule id, used in output and //lint:ignore directives
	Doc  string // one-line description
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full pmlint suite in reporting order. The CFG-based
// determinism-contract rules (maporder, lockbalance, atomicmix, ctxdropped,
// and the rebuilt pinleak) run alongside the original source-shape rules.
// lintunused is a pseudo-analyzer: it has no Run of its own — Run() special-
// cases it and reports //lint:ignore directives that suppressed nothing.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		pinleakAnalyzer(),
		bufferBypassAnalyzer(),
		unseededRandAnalyzer(),
		floatEqAnalyzer(),
		droppedErrAnalyzer(),
		rawGoAnalyzer(),
		walltimeAnalyzer(),
		slowdistAnalyzer(),
		pairdispatchAnalyzer(),
		maporderAnalyzer(),
		lockbalanceAnalyzer(),
		atomicmixAnalyzer(),
		ctxdroppedAnalyzer(),
		lintunusedAnalyzer(),
	}
}

// lintunusedAnalyzer flags //lint:ignore directives that suppress nothing.
// Stale suppressions are worse than missing ones: they advertise a fixed
// bug as still present and silently swallow the next real finding on that
// line. A directive is reported only when every rule it names actually ran
// (an "all" directive needs the full suite), so partial runs never produce
// false "unused" reports.
func lintunusedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lintunused",
		Doc:  "//lint:ignore directive that suppresses no finding of any rule it names",
		// Run is nil: lint.Run special-cases this analyzer, since directive
		// usage is only known after every other analyzer has reported.
	}
}

// IgnorePrefix introduces a suppression comment:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the flagged line or on the line directly above it. The reason is
// mandatory; a directive without one is itself reported under the rule id
// "lintdirective".
const IgnorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment. A directive in a function
// or method's doc comment scopes to the whole declaration (endLine > 0);
// otherwise it covers only its own line and the next.
type directive struct {
	pos     token.Position
	endLine int // last line covered by a decl-scoped directive, 0 if line-scoped
	rules   []string
	reason  string
}

// directives extracts the suppression directives of a package, and emits a
// diagnostic for every malformed one.
func directives(p *Package) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, f := range p.Files {
		// Doc comments of function declarations scope their directives to
		// the whole function: rules like pinleak report at a return or pin
		// site deep inside the body.
		declEnd := make(map[*ast.CommentGroup]int)
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Doc != nil {
				declEnd[fn.Doc] = p.Fset.Position(fn.End()).Line
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    "lintdirective",
						Message: "malformed //lint:ignore: want \"//lint:ignore <rule> <reason>\" with a non-empty reason",
					})
					continue
				}
				dirs = append(dirs, directive{
					pos:     pos,
					endLine: declEnd[cg],
					rules:   strings.Split(fields[0], ","),
					reason:  strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, diags
}

// suppressorIndex returns the index of the first directive that silences d —
// a directive on d's own line, on the line above, or in the doc comment of
// the enclosing declaration, naming d's rule or "all" — or -1 if none does.
func suppressorIndex(d Diagnostic, dirs []directive) int {
	for i, dir := range dirs {
		if !dir.covers(d.Pos) {
			continue
		}
		for _, r := range dir.rules {
			if r == d.Rule || r == "all" {
				return i
			}
		}
	}
	return -1
}

// covers reports whether the directive's scope includes the position: its
// own line, the line below, or — for decl-scoped directives — anywhere in
// the declaration.
func (dir directive) covers(pos token.Position) bool {
	if dir.pos.Filename != pos.Filename {
		return false
	}
	inLineScope := dir.pos.Line == pos.Line || dir.pos.Line == pos.Line-1
	inDeclScope := dir.endLine > 0 && pos.Line > dir.pos.Line && pos.Line <= dir.endLine
	return inLineScope || inDeclScope
}

// suppressed reports whether d is silenced by any directive.
func suppressed(d Diagnostic, dirs []directive) bool {
	return suppressorIndex(d, dirs) >= 0
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
// When the analyzer set includes lintunused, directives that silenced no
// finding are themselves reported — but only if every rule a directive
// names was part of this run ("all" requires the full suite), so running a
// single rule never mislabels other rules' suppressions as stale.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ranRules := map[string]bool{}
	checkUnused := false
	for _, a := range analyzers {
		if a.Name == "lintunused" {
			checkUnused = true
			continue
		}
		ranRules[a.Name] = true
	}
	fullSuite := true
	for _, a := range Analyzers() {
		if a.Run != nil && !ranRules[a.Name] {
			fullSuite = false
		}
	}

	var out []Diagnostic
	for _, p := range pkgs {
		dirs, malformed := directives(p)
		out = append(out, malformed...)
		used := make([]bool, len(dirs))
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, d := range a.Run(p) {
				if i := suppressorIndex(d, dirs); i >= 0 {
					used[i] = true
				} else {
					out = append(out, d)
				}
			}
		}
		if checkUnused {
			for i, dir := range dirs {
				if used[i] || !unusedCheckable(dir, ranRules, fullSuite) {
					continue
				}
				// A lintunused finding lands on the directive's own line, so
				// the directive itself (or its "all") must not silence it:
				// only a distinct directive explicitly naming lintunused can.
				silenced := false
				for j, other := range dirs {
					if j == i || !other.covers(dir.pos) {
						continue
					}
					for _, r := range other.rules {
						if r == "lintunused" {
							used[j] = true
							silenced = true
						}
					}
				}
				if !silenced {
					out = append(out, Diagnostic{
						Pos:  dir.pos,
						Rule: "lintunused",
						Message: fmt.Sprintf("//lint:ignore %s suppresses nothing — the finding it silenced is gone; delete the directive",
							strings.Join(dir.rules, ",")),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// unusedCheckable reports whether an unused directive can be confidently
// reported given the rules that ran: every named rule must have run, and
// "all" needs the full suite.
func unusedCheckable(dir directive, ranRules map[string]bool, fullSuite bool) bool {
	for _, r := range dir.rules {
		if r == "all" {
			if !fullSuite {
				return false
			}
			continue
		}
		// lintdirective findings (malformed directives) bypass suppression,
		// so a directive naming it can never be "used"; still checkable.
		if r == "lintdirective" || r == "lintunused" {
			continue
		}
		if !ranRules[r] {
			return false
		}
	}
	return true
}

// calleeOf resolves the static callee of a call expression, or nil when the
// callee is dynamic (a function value, a conversion, a builtin).
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isMethodOf reports whether fn is the method recv.name (pointer or value
// receiver) of the named type recv declared in package pkgPath.
func isMethodOf(fn *types.Func, pkgPath, recv, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fromPackage reports whether fn (function or method) is declared in pkgPath.
func fromPackage(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// diag builds a Diagnostic at the position of node.
func (p *Package) diag(node ast.Node, rule, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(node.Pos()),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// funcBodies yields every function body of the file — declarations and
// literals — with a printable name. Each body is visited independently;
// analyzers that track state per function skip nested literals themselves.
func funcBodies(f *ast.File) []namedBody {
	var out []namedBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, namedBody{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, namedBody{name: "function literal", body: fn.Body})
		}
		return true
	})
	return out
}

type namedBody struct {
	name string
	body *ast.BlockStmt
}

// walkSkipFuncLits walks body in source order, invoking fn with the node and
// the stack of its ancestors (innermost last), without descending into
// nested function literals.
func walkSkipFuncLits(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit && len(stack) > 0 {
			return false
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
