package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicmixAnalyzer flags variables and fields that are accessed both
// through sync/atomic and through plain loads/stores anywhere in the
// package. Mixing the two silently forfeits every guarantee atomics buy:
// the plain access races with the atomic one, and on weakly-ordered
// hardware a torn or stale read can feed a stat into the report — a
// nondeterminism source that no amount of WorkerPool submission-order
// discipline can mask. The typed wrappers (atomic.Int64 et al.) make the
// mix impossible; this rule covers the untyped escape hatch
// (atomic.AddInt64(&x, 1) in one file, x++ in another).
//
// Addresses passed to atomic functions are collected per package, then
// every plain read or write of those same objects/fields is reported. The
// address-of argument at the atomic call site itself is not a plain access.
func atomicmixAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "variable accessed both via sync/atomic and plainly — the plain access races and forfeits atomicity",
		Run:  runAtomicmix,
	}
}

// atomicTarget identifies what an atomic call operates on: a package-level
// or local variable (obj) or a struct field (field, matched on the field's
// types.Object so every instance of the struct type counts).
type atomicTarget struct {
	obj types.Object
}

func runAtomicmix(p *Package) []Diagnostic {
	// Pass 1: collect objects whose address is taken at a sync/atomic call,
	// and remember those argument expressions so pass 2 can skip them.
	targets := map[types.Object]token.Pos{} // object -> first atomic use
	atomicArgs := map[ast.Expr]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeOf(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				obj := p.accessTarget(un.X)
				if obj == nil {
					continue
				}
				atomicArgs[un.X] = true
				if _, seen := targets[obj]; !seen {
					targets[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}

	// Pass 2: find plain accesses of the same objects. One diagnostic per
	// object, at its first plain access in file order.
	type finding struct {
		node ast.Node
		obj  types.Object
	}
	var findings []finding
	reported := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || atomicArgs[e] {
				return true
			}
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr:
			default:
				return true
			}
			obj := p.accessTarget(e)
			if obj == nil {
				return true
			}
			if _, isTarget := targets[obj]; !isTarget || reported[obj] {
				// Selector chains resolve their base idents too; returning
				// true lets Inspect descend so prefix accesses still match.
				return true
			}
			reported[obj] = true
			findings = append(findings, finding{e, obj})
			return false
		})
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].node.Pos() < findings[j].node.Pos() })
	var diags []Diagnostic
	for _, fd := range findings {
		diags = append(diags, p.diag(fd.node, "atomicmix",
			"%s is accessed via sync/atomic (first at %s) and plainly here — the plain access races; use the atomic API (or an atomic.Int64-style typed wrapper) everywhere",
			fd.obj.Name(), p.Fset.Position(targets[fd.obj])))
	}
	return diags
}

// accessTarget resolves an expression that denotes a variable or field to
// the object that identifies it for mixing purposes: an *ast.Ident to its
// variable object, a *ast.SelectorExpr to the field object (shared by all
// instances of the struct type). Anything else — index expressions, calls,
// dereferences of computed pointers — is not tracked.
func (p *Package) accessTarget(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		// Uses only: a defining ident is a declaration, not an access.
		if v, ok := p.Info.Uses[e].(*types.Var); ok && !v.IsField() {
			return v
		}
	case *ast.SelectorExpr:
		sel, ok := p.Info.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}
