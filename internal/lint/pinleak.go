package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pinleakAnalyzer flags functions that pin pages via buffer.Pool.GetPinned
// but can exit without a matching Unpin/UnpinAll. Pinned pages are exempt
// from eviction, so a leaked pin shrinks the effective buffer for the rest
// of the run and silently distorts every I/O count the paper's figures are
// built from (a pinned-out frame turns would-be hits into misses).
//
// The check is a source-order approximation of the pin state, precise for
// the shapes this codebase uses:
//
//   - A deferred Unpin/UnpinAll anywhere in the function satisfies all paths.
//   - Otherwise the body is scanned in source order, tracking whether a
//     GetPinned has happened without a later Unpin/UnpinAll. A return while
//     pins are outstanding is flagged, except returns inside an
//     `if err != nil` error branch: on those paths the whole join run is
//     abandoned and the pool is discarded with it, which this repository
//     treats as the error-path contract.
//   - Falling off the end of the function (or its final return) with
//     outstanding pins is flagged at the pinning call.
//
// Helpers that pin on behalf of a caller (the caller unpins) are the
// intended use of a `//lint:ignore pinleak <reason>` suppression.
func pinleakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "pinleak",
		Doc:  "GetPinned without a matching Unpin/UnpinAll on all non-error return paths",
		Run:  runPinleak,
	}
}

func runPinleak(p *Package) []Diagnostic {
	if p.Path == bufferPkgPath {
		return nil // the pool's own implementation manages pin counts freely
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, nb := range funcBodies(f) {
			diags = append(diags, p.pinleakBody(nb)...)
		}
	}
	return diags
}

func (p *Package) pinleakBody(nb namedBody) []Diagnostic {
	// Pass 1: does the function pin at all, and does it defer an unpin?
	hasPin := false
	deferredUnpin := false
	walkSkipFuncLits(nb.body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.isPoolMethod(n, "GetPinned") {
				hasPin = true
			}
		case *ast.DeferStmt:
			if p.deferUnpins(n) {
				deferredUnpin = true
			}
		}
	})
	if !hasPin || deferredUnpin {
		return nil
	}

	// Pass 2: source-order pin-state scan.
	var diags []Diagnostic
	pinned := false
	var pinnedAt token.Pos
	walkSkipFuncLits(nb.body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case p.isPoolMethod(n, "GetPinned"):
				if !pinned {
					pinnedAt = n.Pos()
				}
				pinned = true
			case p.isPoolMethod(n, "Unpin"), p.isPoolMethod(n, "UnpinAll"):
				pinned = false
			}
		case *ast.ReturnStmt:
			// `return pool.Unpin(a)` releases the pin as part of the return.
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok &&
						(p.isPoolMethod(call, "Unpin") || p.isPoolMethod(call, "UnpinAll")) {
						pinned = false
					}
					return true
				})
			}
			if pinned && !p.inErrorBranch(stack) && len(diags) == 0 {
				diags = append(diags, p.diag(n, "pinleak",
					"%s returns while page(s) pinned since this function's GetPinned; add Unpin/UnpinAll (or defer one)", nb.name))
			}
		}
	})
	if pinned && len(diags) == 0 {
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(pinnedAt),
			Rule: "pinleak",
			Message: nb.name + " pins page(s) here but no Unpin/UnpinAll follows before the function exits; " +
				"leaked pins freeze buffer frames and corrupt I/O accounting",
		})
	}
	return diags
}

// isPoolMethod reports whether call invokes buffer.Pool.<name>.
func (p *Package) isPoolMethod(call *ast.CallExpr, name string) bool {
	return isMethodOf(p.calleeOf(call), bufferPkgPath, "Pool", name)
}

// deferUnpins reports whether the deferred call unpins, directly or via a
// deferred function literal containing an unpin call.
func (p *Package) deferUnpins(d *ast.DeferStmt) bool {
	if p.isPoolMethod(d.Call, "Unpin") || p.isPoolMethod(d.Call, "UnpinAll") {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if p.isPoolMethod(call, "Unpin") || p.isPoolMethod(call, "UnpinAll") {
				found = true
			}
		}
		return !found
	})
	return found
}

// inErrorBranch reports whether the node stack passes through the body of an
// `if <err> != nil` statement (including `if ..., err := f(); err != nil`).
func (p *Package) inErrorBranch(stack []ast.Node) bool {
	for i, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !p.isErrNilCheck(ifStmt.Cond) {
			continue
		}
		// Only the taken (error) branch is exempt, not the init/cond.
		if i+1 < len(stack) && stack[i+1] == ifStmt.Body {
			return true
		}
	}
	return false
}

// isErrNilCheck matches `x != nil` where x has the error interface type.
func (p *Package) isErrNilCheck(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var x ast.Expr
	switch {
	case isNil(bin.Y):
		x = bin.X
	case isNil(bin.X):
		x = bin.Y
	default:
		return false
	}
	tv, ok := p.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(tv.Type, errType)
}
