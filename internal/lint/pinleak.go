package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pinleakAnalyzer flags functions that pin pages via buffer.Pool.GetPinned
// but can exit without a matching Unpin/UnpinAll. Pinned pages are exempt
// from eviction, so a leaked pin shrinks the effective buffer for the rest
// of the run and silently distorts every I/O count the paper's figures are
// built from (a pinned-out frame turns would-be hits into misses).
//
// The analysis is path-sensitive: a forward dataflow over the function's
// control-flow graph (BuildCFG) tracks the outstanding pin count per path.
// This catches shapes the original source-order scan could not:
//
//   - an Unpin reachable on only one branch exonerated every later return
//     (the scan cleared its flag the moment it saw the call in source order);
//   - a GetPinned inside a loop with a single Unpin after it looked balanced
//     in source order but leaks one pin per extra iteration;
//   - a defer registered on one branch satisfied all paths (the scan used a
//     function-wide "has deferred unpin" shortcut).
//
// Deferred releases are per-path credits: `defer p.Unpin(a)` offsets one
// pin on the paths that execute the defer, `defer p.UnpinAll()` (or a
// deferred closure that unpins) offsets any number — but only on those
// paths. Paths that exit by panicking are exempt (the run is abandoned), as
// are returns inside an `if err != nil` branch: on those paths the whole
// join run is discarded and the pool with it, which this repository treats
// as the error-path contract.
//
// Helpers that pin on behalf of a caller (the caller unpins) are the
// intended use of a `//lint:ignore pinleak <reason>` suppression.
func pinleakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "pinleak",
		Doc:  "GetPinned without a matching Unpin/UnpinAll on all non-error, non-panic paths (CFG dataflow, defer-aware)",
		Run:  runPinleak,
	}
}

func runPinleak(p *Package) []Diagnostic {
	if p.Path == bufferPkgPath {
		return nil // the pool's own implementation manages pin counts freely
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, nb := range funcBodies(f) {
			diags = append(diags, p.pinleakBody(nb)...)
		}
	}
	return diags
}

// pinFact is the per-path pin state. count is the outstanding pins net of
// counted deferred Unpins (saturating at 2, -1 = paths disagree);
// deferredAll is 1 once a deferred UnpinAll (or deferred unpinning closure)
// is registered on the path, after which the path owes nothing — the
// transfer collapses its count to zero so it merges cleanly with paths
// that never pinned. firstPin anchors diagnostics at exits with no return
// statement.
type pinFact struct {
	count       int8
	deferred    int8
	deferredAll int8
	firstPin    token.Pos
}

func mergePinFact(a, b pinFact) pinFact {
	pos := a.firstPin
	if pos == token.NoPos || (b.firstPin != token.NoPos && b.firstPin < pos) {
		pos = b.firstPin
	}
	return pinFact{
		count:       mergeCount(a.count, b.count),
		deferred:    mergeCount(a.deferred, b.deferred),
		deferredAll: mergeCount(a.deferredAll, b.deferredAll),
		firstPin:    pos,
	}
}

func (p *Package) pinleakBody(nb namedBody) []Diagnostic {
	// Cheap pre-pass: only bodies that pin are analyzed. Unpin-only bodies
	// are helpers releasing a caller-held pin.
	hasPin := false
	exemptReturns := map[*ast.ReturnStmt]bool{}
	walkSkipFuncLits(nb.body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.isPoolMethod(n, "GetPinned") {
				hasPin = true
			}
		case *ast.ReturnStmt:
			if p.inErrorBranch(stack) {
				exemptReturns[n] = true
			}
		}
	})
	if !hasPin {
		return nil
	}

	cfg := BuildCFG(nb.body)
	transfer := func(b *Block, in pinFact) pinFact {
		out := in
		walkBlockNodes(b, func(n ast.Node) {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				switch {
				case p.isPoolMethod(d.Call, "Unpin"):
					out.deferred = satIncr(out.deferred)
				case p.deferUnpins(d):
					out.deferredAll = 1
				}
				return
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			switch {
			case p.isPoolMethod(call, "GetPinned"):
				if out.firstPin == token.NoPos {
					out.firstPin = call.Pos()
				}
				out.count = satIncr(out.count)
			case p.isPoolMethod(call, "Unpin"):
				if out.count > 0 {
					out.count--
				}
			case p.isPoolMethod(call, "UnpinAll"):
				out.count = 0 // releases everything, even a mixed count
			}
		})
		// Canonicalize so satisfied paths merge with never-pinned ones:
		// a registered UnpinAll absorbs any count, and counted deferred
		// Unpins net against pins taken on the same path.
		if out.deferredAll == 1 {
			out.count, out.deferred = 0, 0
		}
		for out.count > 0 && out.deferred > 0 {
			out.count--
			out.deferred--
		}
		return out
	}

	res := solveFlow(flowProblem[pinFact]{
		cfg:      cfg,
		boundary: pinFact{},
		merge:    mergePinFact,
		equal:    func(a, b pinFact) bool { return a == b },
		transfer: transfer,
	})

	// One diagnostic per kind per body: a single missing Unpin should not
	// flood every return site.
	var diags []Diagnostic
	reported := map[string]bool{}
	report := func(kind string, node ast.Node, format string, args ...any) {
		if reported[kind] {
			return
		}
		reported[kind] = true
		diags = append(diags, p.diag(node, "pinleak", format, args...))
	}
	for _, b := range cfg.Exit.Preds {
		if !res.Seen[b.Index] || b.Panic != nil {
			continue
		}
		if b.Return != nil && exemptReturns[b.Return] {
			continue
		}
		f := res.Out[b.Index]
		if f.count == 0 {
			continue // nothing outstanding (deferred surplus is harmless: UnpinAll is idempotent, Unpin at zero is the pool's problem to reject)
		}
		mixed := f.count == -1 || f.deferred == -1 || f.deferredAll == -1
		switch {
		case mixed:
			at := pinAnchor(nb, f)
			if b.Return != nil {
				at = b.Return
			}
			report("mixed", at,
				"%s may exit with page(s) still pinned — pinned on some paths into this exit, released on others; release on every path or defer UnpinAll",
				nb.name)
		case b.Return != nil:
			report("leak", b.Return,
				"%s returns while page(s) pinned since this function's GetPinned; add Unpin/UnpinAll (or defer one)", nb.name)
		default:
			report("leak", pinAnchor(nb, f),
				"%s pins page(s) here but no Unpin/UnpinAll follows before the function exits; leaked pins freeze buffer frames and corrupt I/O accounting",
				nb.name)
		}
	}
	return diags
}

// pinAnchor anchors an exit diagnostic when the exiting block has no return
// statement: the first pin site if known, else the body.
func pinAnchor(nb namedBody, f pinFact) ast.Node {
	if f.firstPin != token.NoPos {
		return posNode{f.firstPin}
	}
	return nb.body
}

// isPoolMethod reports whether call invokes buffer.Pool.<name>.
func (p *Package) isPoolMethod(call *ast.CallExpr, name string) bool {
	return isMethodOf(p.calleeOf(call), bufferPkgPath, "Pool", name)
}

// deferUnpins reports whether the deferred call releases all pins: a direct
// UnpinAll, or a deferred function literal containing any unpin call.
func (p *Package) deferUnpins(d *ast.DeferStmt) bool {
	if p.isPoolMethod(d.Call, "UnpinAll") {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if p.isPoolMethod(call, "Unpin") || p.isPoolMethod(call, "UnpinAll") {
				found = true
			}
		}
		return !found
	})
	return found
}

// inErrorBranch reports whether the node stack passes through the body of an
// `if <err> != nil` statement (including `if ..., err := f(); err != nil`).
func (p *Package) inErrorBranch(stack []ast.Node) bool {
	for i, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !p.isErrNilCheck(ifStmt.Cond) {
			continue
		}
		// Only the taken (error) branch is exempt, not the init/cond.
		if i+1 < len(stack) && stack[i+1] == ifStmt.Body {
			return true
		}
	}
	return false
}

// isErrNilCheck matches `x != nil` where x has the error interface type.
func (p *Package) isErrNilCheck(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var x ast.Expr
	switch {
	case isNil(bin.Y):
		x = bin.X
	case isNil(bin.X):
		x = bin.Y
	default:
		return false
	}
	tv, ok := p.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(tv.Type, errType)
}
