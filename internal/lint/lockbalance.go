package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockbalanceAnalyzer flags sync.Mutex / sync.RWMutex acquisitions without
// the matching release on every control-flow path. The merge discipline the
// determinism contract rests on (WorkerPool results folded in submission
// order, predmat.Mark under markMu, the pool's frame table under its own
// lock) is only as good as its lock hygiene: one early return or continue
// that skips an Unlock deadlocks the next submitter, and a Lock that is
// sometimes double-acquired deadlocks immediately. The Go runtime only
// reports the *second* fault (a hang, a "fatal error: all goroutines are
// asleep"), far from the line that caused it; this rule reports the line.
//
// The analysis runs on the control-flow graph (BuildCFG) with a forward
// dataflow per lock object and mode: write mode pairs Lock/Unlock on both
// mutex kinds, read mode pairs RLock/RUnlock. A lock object is the
// canonicalized receiver path (`mu`, `p.mu`, `s.pool.mu`); receivers that
// are not ident/selector chains (map elements, call results) are not
// tracked. Deferred releases are modeled as a per-path obligation credit:
// `mu.Lock(); defer mu.Unlock()` satisfies every exit that path reaches.
// Paths that leave the function by panicking are exempt — a panic abandons
// the run, and the idiomatic guard (`mu.Lock(); if bad { mu.Unlock();
// panic(...) }`) is still checked on its non-panicking paths. TryLock /
// TryRLock results are conditional and are not tracked.
func lockbalanceAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockbalance",
		Doc:  "Mutex/RWMutex Lock or RLock without the matching release on every path (CFG dataflow, defer-aware)",
		Run:  runLockbalance,
	}
}

// lockFact is the per-path state of one (lock, mode) pair.
//
// held and deferred are saturating counters capped at 2; -1 means the
// paths merging at this point disagree (mixed). firstAcquire anchors the
// diagnostic when the imbalance is only detectable at an exit.
type lockFact struct {
	held         int8
	deferred     int8
	firstAcquire token.Pos
}

func mergeCount(a, b int8) int8 {
	if a == b {
		return a
	}
	return -1
}

func mergeLockFact(a, b lockFact) lockFact {
	pos := a.firstAcquire
	if pos == token.NoPos || (b.firstAcquire != token.NoPos && b.firstAcquire < pos) {
		pos = b.firstAcquire
	}
	return lockFact{
		held:         mergeCount(a.held, b.held),
		deferred:     mergeCount(a.deferred, b.deferred),
		firstAcquire: pos,
	}
}

// canonLockFact nets deferred releases against held acquires. A path that
// locked and deferred the unlock owes nothing at any later exit, so it must
// merge cleanly with paths that never locked: without netting,
// `if c { mu.Lock(); defer mu.Unlock() }; return` would merge (1,1) with
// (0,0) into mixed — a false positive on the repo's stock idiom
// (WorkerPool.QueueHighWater). The cost is that a re-Lock after a
// lock+defer pair reports as a leak at exit rather than as a doublelock at
// the acquire — still reported, just one notch less precisely.
func canonLockFact(f lockFact) lockFact {
	for f.held > 0 && f.deferred > 0 {
		f.held--
		f.deferred--
	}
	return f
}

func satIncr(c int8) int8 {
	if c < 0 {
		return -1
	}
	if c >= 2 {
		return 2
	}
	return c + 1
}

// lockMode distinguishes the write pair (Lock/Unlock) from the read pair
// (RLock/RUnlock).
type lockMode uint8

const (
	writeLock lockMode = iota
	readLock
)

func (m lockMode) acquire() string {
	if m == readLock {
		return "RLock"
	}
	return "Lock"
}

func (m lockMode) release() string {
	if m == readLock {
		return "RUnlock"
	}
	return "Unlock"
}

// lockOp is one classified Lock/Unlock call site.
type lockOp struct {
	key     string // identity-rooted canonical receiver path
	display string // human-readable receiver path for messages
	mode    lockMode
	acquire bool
	call    *ast.CallExpr
}

func runLockbalance(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, nb := range funcBodies(f) {
			diags = append(diags, p.lockbalanceBody(nb)...)
		}
	}
	return diags
}

func (p *Package) lockbalanceBody(nb namedBody) []Diagnostic {
	// Classify every lock call in the body (nested literals excluded; each
	// literal is analyzed as its own function). Only keys with at least one
	// acquire are analyzed: release-only bodies are helpers operating on a
	// caller-held lock.
	type keyMode struct {
		key  string
		mode lockMode
	}
	ops := map[ast.Node]lockOp{}
	acquires := map[keyMode]bool{}
	display := map[keyMode]string{}
	order := []keyMode{}
	walkSkipFuncLits(nb.body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		op, ok := p.classifyLockOp(call)
		if !ok {
			return
		}
		ops[call] = op
		km := keyMode{op.key, op.mode}
		display[km] = op.display
		if op.acquire && !acquires[km] {
			acquires[km] = true
			order = append(order, km)
		}
	})
	if len(order) == 0 {
		return nil
	}

	cfg := BuildCFG(nb.body)
	var diags []Diagnostic
	for _, km := range order {
		diags = append(diags, p.solveLock(nb, cfg, ops, km.key, display[km], km.mode)...)
	}
	return diags
}

// solveLock runs the forward dataflow for one (key, mode) pair and turns
// imbalances into diagnostics. At most one diagnostic per kind is emitted
// per pair, so a single leaked Unlock does not flood every return site.
func (p *Package) solveLock(nb namedBody, cfg *CFG, ops map[ast.Node]lockOp, key, display string, mode lockMode) []Diagnostic {
	var diags []Diagnostic
	seen := map[string]bool{}
	report := func(kind string, node ast.Node, format string, args ...any) {
		if seen[kind] {
			return
		}
		seen[kind] = true
		diags = append(diags, p.diag(node, "lockbalance", format, args...))
	}

	transfer := func(b *Block, in lockFact) lockFact {
		out := in
		walkBlockNodes(b, func(n ast.Node) {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				if op, ok := ops[ast.Node(d.Call)]; ok && op.key == key && op.mode == mode && !op.acquire {
					out.deferred = satIncr(out.deferred)
				}
				return
			}
			op, ok := ops[n]
			if !ok || op.key != key || op.mode != mode {
				return
			}
			if op.acquire {
				if out.firstAcquire == token.NoPos {
					out.firstAcquire = n.Pos()
				}
				out.held = satIncr(out.held)
			} else if out.held > 0 {
				out.held--
			}
			// Release while not held (0) or mixed (-1) leaves the count
			// unchanged; the reporting pass diagnoses it.
		})
		return canonLockFact(out)
	}

	res := solveFlow(flowProblem[lockFact]{
		cfg:      cfg,
		boundary: lockFact{},
		merge:    mergeLockFact,
		equal:    func(a, b lockFact) bool { return a == b },
		transfer: transfer,
	})

	// Second pass over solved facts for position-accurate diagnostics:
	// re-run each reachable block's transfer from its solved in-fact and
	// report faults at the node that trips them.
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if !reach[b.Index] || !res.Seen[b.Index] {
			continue
		}
		fact := res.In[b.Index]
		walkBlockNodes(b, func(n ast.Node) {
			if d, isDefer := n.(*ast.DeferStmt); isDefer {
				if op, ok := ops[ast.Node(d.Call)]; ok && op.key == key && op.mode == mode && !op.acquire {
					fact.deferred = satIncr(fact.deferred)
				}
				return
			}
			op, ok := ops[n]
			if !ok || op.key != key || op.mode != mode {
				return
			}
			if op.acquire {
				if mode == writeLock {
					if fact.held > 0 {
						report("doublelock", n,
							"%s: %s.%s while already held on this path — deadlock",
							nb.name, display, mode.acquire())
					} else if fact.held < 0 {
						report("maybelock", n,
							"%s: %s.%s while possibly held (a path into this point leaks the lock)",
							nb.name, display, mode.acquire())
					}
				}
				if fact.firstAcquire == token.NoPos {
					fact.firstAcquire = n.Pos()
				}
				fact.held = satIncr(fact.held)
			} else {
				if fact.held == 0 && fact.deferred > 0 {
					report("deferdouble", n,
						"%s: explicit %s.%s after a deferred %s — double release at exit",
						nb.name, display, mode.release(), mode.release())
				} else if fact.held == 0 && fact.deferred == 0 {
					report("overrelease", n,
						"%s: %s.%s while not held on this path — runtime \"unlock of unlocked mutex\"",
						nb.name, display, mode.release())
				}
				if fact.held > 0 {
					fact.held--
				}
			}
		})
	}

	// Exit check: any non-panicking path into Exit with net obligations.
	for _, b := range cfg.Exit.Preds {
		if !res.Seen[b.Index] || b.Panic != nil {
			continue
		}
		f := res.Out[b.Index]
		at := fallbackNode(nb, f)
		if b.Return != nil {
			at = b.Return
		}
		switch {
		case f.held < 0 || f.deferred < 0:
			report("mixed", at,
				"%s: %s may still be %sed here (held on some paths into this exit, released on others)",
				nb.name, display, mode.acquire())
		case f.held > f.deferred:
			report("leak", at,
				"%s: exits with %s.%s not released on this path; add %s (or defer it)",
				nb.name, display, mode.acquire(), mode.release())
		case f.deferred > f.held:
			// Transfer nets deferred releases against acquires, so a
			// surplus here means the defers will release more than is held
			// when they run at this exit.
			report("deferdouble", at,
				"%s: deferred %s.%s exceeds held acquires at this exit — double release when the defers run",
				nb.name, display, mode.release())
		}
	}
	return diags
}

// fallbackNode anchors an exit diagnostic when the exiting block has no
// return statement (the function falls off its end): prefer the first
// acquire position, else the body itself.
func fallbackNode(nb namedBody, f lockFact) ast.Node {
	if f.firstAcquire != token.NoPos {
		return posNode{f.firstAcquire}
	}
	return nb.body
}

// posNode adapts a bare position to the ast.Node interface for diag().
type posNode struct{ pos token.Pos }

func (p posNode) Pos() token.Pos { return p.pos }
func (p posNode) End() token.Pos { return p.pos }

// classifyLockOp matches a call to (*sync.Mutex).Lock/Unlock or
// (*sync.RWMutex).Lock/Unlock/RLock/RUnlock with a canonicalizable
// receiver.
func (p *Package) classifyLockOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok {
		return lockOp{}, false
	}
	kind := named.Obj().Name()
	if kind != "Mutex" && kind != "RWMutex" {
		return lockOp{}, false
	}
	var mode lockMode
	var acquire bool
	switch fn.Name() {
	case "Lock":
		mode, acquire = writeLock, true
	case "Unlock":
		mode, acquire = writeLock, false
	case "RLock":
		mode, acquire = readLock, true
	case "RUnlock":
		mode, acquire = readLock, false
	default:
		return lockOp{}, false // TryLock/TryRLock/RLocker: untracked
	}
	key, disp, ok := p.canonPath(sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, display: disp, mode: mode, acquire: acquire, call: call}, true
}

// canonPath renders an ident/selector chain (`mu`, `p.mu`, `s.pool.mu`) as
// a key plus a human-readable display path. The key's root is the object
// identity of the base identifier — not its name — so a shadowed variable
// cannot alias two different locks onto one key.
func (p *Package) canonPath(e ast.Expr) (key, display string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		if obj == nil {
			return "", "", false
		}
		return fmt.Sprintf("%s@%p", e.Name, obj), e.Name, true
	case *ast.SelectorExpr:
		baseKey, baseDisplay, ok := p.canonPath(e.X)
		if !ok {
			return "", "", false
		}
		return baseKey + "." + e.Sel.Name, baseDisplay + "." + e.Sel.Name, true
	}
	return "", "", false
}
