// Package lint implements pmlint, the project-specific static-analysis
// suite. It enforces invariants the compiler cannot see but the paper's
// measurements depend on: pin/unpin pairing in the buffer pool, no I/O
// accounting bypass around internal/buffer, explicit random seeding,
// epsilon-free float equality on distance values, and no dropped errors
// from the disk/buffer APIs.
//
// The suite is stdlib-only: packages are loaded with go/parser and
// type-checked with go/types, using the compiler's source importer for
// standard-library dependencies, so pmlint runs anywhere the go toolchain
// is installed with no external modules.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The source importer type-checks standard-library dependencies from
// source — several seconds of work for the transitive closure this module
// touches — and caches the results, but only inside one importer instance.
// A single process-wide instance makes that price a per-process cost
// instead of a per-LoadModule (and, in the test suite, per-fixture) cost.
// Module files are parsed into the same shared FileSet so every position
// in scope resolves against one fset; token.FileSet is safe for concurrent
// use, and stdlibMu serializes the importer itself, which is not.
var (
	stdlibMu       sync.Mutex
	stdlibFset     = token.NewFileSet()
	stdlibImporter = importer.ForCompiler(stdlibFset, "source", nil)
)

// importStdlib resolves a standard-library import through the shared
// importer. Safe for concurrent use.
func importStdlib(path string) (*types.Package, error) {
	stdlibMu.Lock()
	defer stdlibMu.Unlock()
	return stdlibImporter.Import(path)
}

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "pmjoin/internal/join"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package of the module
// rooted at root. Test files are excluded by design: the analyzers enforce
// invariants on production code, and tests intentionally violate several of
// them (pinning without unpinning to test eviction, for example).
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := stdlibFset
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rp := &rawPkg{path: importPath, dir: dir, files: files, imports: map[string]bool{}}
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					rp.imports[p] = true
				}
			}
		}
		raw[importPath] = rp
	}

	order, err := topoSort(raw)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return importStdlib(path)
	})

	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(path, fset, rp.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
		}
		checked[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   rp.dir,
			Fset:  fset,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, skipping hidden directories, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// parseDir parses the non-test .go files of one directory, in name order for
// deterministic output. Files excluded by build constraints (//go:build tags
// or GOOS/GOARCH filename suffixes) for the host platform are skipped, so
// per-architecture pairs like sums_amd64.go / sums_noasm.go do not
// double-declare symbols in one type-check.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			match, err := build.Default.MatchFile(dir, n)
			if err != nil {
				return nil, err
			}
			if match {
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool // module-internal imports
}

// topoSort orders the package paths so that every package appears after all
// of its module-internal dependencies.
func topoSort(raw map[string]*rawPkg) ([]string, error) {
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(raw))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		deps := make([]string, 0, len(raw[p].imports))
		for d := range raw[p].imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := raw[d]; !ok {
				return fmt.Errorf("lint: %s imports %s, which is not in the module", p, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
