package lint

import (
	"go/ast"
)

// unseededRandAnalyzer flags randomness whose seed is not explicit. Every
// figure and table of the reproduction must be bit-for-bit repeatable, so
// all randomness in non-test code must flow from rand.New(rand.NewSource(
// seed)) with a seed that is a parameter or constant. The process-global
// rand functions (rand.Intn, rand.Perm, rand.Shuffle, ...) are auto-seeded
// per process since Go 1.20 and therefore non-reproducible; rand.New over
// anything but a direct rand.NewSource call hides the seed's provenance.
func unseededRandAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unseededrand",
		Doc:  "global math/rand use, or rand.New without a direct rand.NewSource(seed)",
		Run:  runUnseededRand,
	}
}

// randConstructors are the math/rand (and v2) package functions that do not
// themselves draw randomness.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand: the seeding happened upstream
	"NewPCG":     true, // math/rand/v2 explicit-seed sources
	"NewChaCha8": true,
}

func runUnseededRand(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeOf(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if !isPkgFunc(fn, path, fn.Name()) {
				return true // methods on *rand.Rand: the Rand was seeded at construction
			}
			switch {
			case !randConstructors[fn.Name()]:
				diags = append(diags, p.diag(call, "unseededrand",
					"%s.%s uses the process-global generator; build a seeded source with rand.New(rand.NewSource(seed)) so runs reproduce", path, fn.Name()))
			case fn.Name() == "New" && !p.argIsExplicitSource(call):
				diags = append(diags, p.diag(call, "unseededrand",
					"rand.New without a direct rand.NewSource(seed) argument hides the seed; construct the source inline so the seed is auditable"))
			}
			return true
		})
	}
	return diags
}

// argIsExplicitSource reports whether the first argument of a rand.New call
// is itself a direct call to an explicit-seed source constructor.
func (p *Package) argIsExplicitSource(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.calleeOf(inner)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	switch fn.Name() {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
