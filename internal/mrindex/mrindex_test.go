package mrindex

import (
	"math"
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = v
	}
	return out
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestConfigValidation(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(1)), 100)
	cases := []Config{
		{Window: 0, Stride: 1, PageSamples: 64},
		{Window: 8, Stride: 0, PageSamples: 64},
		{Window: 8, Stride: 1, PageSamples: 4}, // page smaller than window
		{Window: 8, Stride: 1, PageSamples: 64, Features: 20},
		{Window: 8, Stride: 1, PageSamples: 64, Fanout: 1},
		{Window: 8, Stride: 1, PageSamples: 64, BoxWindows: -1},
	}
	for i, cfg := range cases {
		if _, err := Build(s, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := Build(s[:4], Config{Window: 8, Stride: 1, PageSamples: 64}); err == nil {
		t.Error("series shorter than window accepted")
	}
}

func TestWindowEnumeration(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(2)), 100)
	ix, err := Build(s, Config{Window: 10, Stride: 3, PageSamples: 40})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for st := 0; st+10 <= 100; st += 3 {
		want++
	}
	if ix.NumWindows() != want {
		t.Fatalf("windows = %d, want %d", ix.NumWindows(), want)
	}
}

func TestPageWindowsCoverAllWindowsInOrder(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(3)), 500)
	cfg := Config{Window: 16, Stride: 4, PageSamples: 64}
	ix, err := Build(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for p := 0; p < ix.NumPages(); p++ {
		ids, starts, windows := ix.PageWindows(p)
		if len(ids) == 0 {
			t.Fatalf("page %d empty", p)
		}
		if len(ids) > cfg.WindowsPerPage() {
			t.Fatalf("page %d has %d windows, capacity %d", p, len(ids), cfg.WindowsPerPage())
		}
		for k, id := range ids {
			if id != next {
				t.Fatalf("page %d: id %d, want %d", p, id, next)
			}
			if starts[k] != id*cfg.Stride {
				t.Fatalf("start %d != id*stride", starts[k])
			}
			if len(windows[k]) != cfg.Window {
				t.Fatalf("window length %d", len(windows[k]))
			}
			// Window content must alias the series at its start.
			if windows[k][0] != s[starts[k]] {
				t.Fatal("window content mismatch")
			}
			next++
		}
	}
	if next != ix.NumWindows() {
		t.Fatalf("pages cover %d of %d windows", next, ix.NumWindows())
	}
}

func TestHierarchyValidAndCoversFeatures(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(4)), 2000)
	ix, err := Build(s, Config{Window: 32, Stride: 8, PageSamples: 128, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := ix.Root()
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every window's feature must be inside the MBR of some leaf of its page.
	leaves := root.Leaves(nil)
	byPage := map[int][]geom.MBR{}
	for _, l := range leaves {
		byPage[l.Page] = append(byPage[l.Page], l.MBR)
	}
	for p := 0; p < ix.NumPages(); p++ {
		ids, _, _ := ix.PageWindows(p)
		for _, id := range ids {
			feat := ix.Feature(id)
			covered := false
			for _, m := range byPage[p] {
				if m.Contains(feat) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("window %d feature not covered by page %d leaves", id, p)
			}
		}
	}
}

func TestBoxWindowsProducesFinerLeaves(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(5)), 1000)
	coarse, _ := Build(s, Config{Window: 16, Stride: 4, PageSamples: 128, BoxWindows: 1000})
	fine, _ := Build(s, Config{Window: 16, Stride: 4, PageSamples: 128, BoxWindows: 1})
	nc := len(coarse.Root().Leaves(nil))
	nf := len(fine.Root().Leaves(nil))
	if nf <= nc {
		t.Fatalf("fine leaves %d <= coarse leaves %d", nf, nc)
	}
	if nf != fine.NumWindows() {
		t.Fatalf("BoxWindows=1: %d leaves for %d windows", nf, fine.NumWindows())
	}
	if coarse.NumPages() != fine.NumPages() {
		t.Fatal("box granularity must not change page count")
	}
}

// TestPAALowerBound is the MR-index predictor property: for any two windows,
// scale * L2(PAA(a), PAA(b)) <= L2(a, b).
func TestPAALowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSeries(rng, 3000)
	ix, err := Build(s, Config{Window: 64, Stride: 16, PageSamples: 256, Features: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := ix.NumWindows()
	for iter := 0; iter < 500; iter++ {
		i, k := rng.Intn(n), rng.Intn(n)
		a := s[i*16 : i*16+64]
		b := s[k*16 : k*16+64]
		lb := ix.LowerBound(ix.Feature(i), ix.Feature(k))
		if lb > l2(a, b)+1e-9 {
			t.Fatalf("PAA bound %g > true distance %g", lb, l2(a, b))
		}
	}
}

func TestPAAKnownValues(t *testing.T) {
	w := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	f := PAA(w, 4)
	want := geom.Vector{1, 2, 3, 4}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("PAA = %v", f)
		}
	}
	// More features than samples degenerates gracefully.
	g := PAA([]float64{5, 6}, 4)
	if g[0] != 5 || g[1] != 6 {
		t.Fatalf("degenerate PAA = %v", g)
	}
}

func TestScaleIsSqrtSegment(t *testing.T) {
	s := randSeries(rand.New(rand.NewSource(7)), 200)
	ix, _ := Build(s, Config{Window: 32, Stride: 8, PageSamples: 64, Features: 8})
	if got, want := ix.Scale(), math.Sqrt(4); got != want {
		t.Fatalf("scale = %g, want %g", got, want)
	}
}

func TestWindowsPerPage(t *testing.T) {
	cfg := Config{Window: 10, Stride: 5, PageSamples: 50}
	// span = (n-1)*5 + 10 <= 50 -> n = 9 windows? (9-1)*5+10 = 50 ok.
	if got := cfg.WindowsPerPage(); got != 9 {
		t.Fatalf("windows per page = %d", got)
	}
}
