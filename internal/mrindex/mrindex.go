// Package mrindex implements the MR-index of Kahveci & Singh (ICDE 2001) in
// the form the paper's join needs: a hierarchy of MBRs over the sliding
// windows of a time series, where each leaf MBR covers the windows stored in
// one disk page and the contents of each leaf are contiguous on disk
// (Table 1, §5.1).
//
// Windows are reduced to PAA (piecewise aggregate approximation) features;
// the L2 distance between features, scaled by sqrt(segment length), lower
// bounds the L2 distance between the raw windows, giving the lower-bounding
// distance predictor required by the prediction matrix.
package mrindex

import (
	"fmt"
	"math"

	"pmjoin/internal/geom"
	"pmjoin/internal/index"
)

// Config controls the layout of an MR-index.
type Config struct {
	// Window is the subsequence length w of the subsequence join.
	Window int
	// Stride is the distance between consecutive window starts.
	Stride int
	// Features is the PAA feature dimensionality (default 8).
	Features int
	// PageSamples is the number of raw samples one disk page holds
	// (page bytes / 8 for float64 samples).
	PageSamples int
	// Fanout is the number of children per internal node (default 16).
	Fanout int
	// BoxWindows is the number of consecutive windows covered by one leaf
	// MBR (default 1). Like the MRS-index, the MR-index is multi-resolution:
	// several leaf boxes may share one data page, keeping feature boxes
	// tight when windows are sampled with a large stride.
	BoxWindows int
}

func (c *Config) defaults() error {
	if c.Window < 1 {
		return fmt.Errorf("mrindex: window %d < 1", c.Window)
	}
	if c.Stride < 1 {
		return fmt.Errorf("mrindex: stride %d < 1", c.Stride)
	}
	if c.Features == 0 {
		c.Features = 8
	}
	if c.Features < 1 || c.Features > c.Window {
		return fmt.Errorf("mrindex: features %d outside [1,%d]", c.Features, c.Window)
	}
	if c.PageSamples < c.Window {
		return fmt.Errorf("mrindex: page of %d samples cannot hold a window of %d", c.PageSamples, c.Window)
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.Fanout < 2 {
		return fmt.Errorf("mrindex: fanout %d < 2", c.Fanout)
	}
	if c.BoxWindows == 0 {
		c.BoxWindows = 1
	}
	if c.BoxWindows < 1 {
		return fmt.Errorf("mrindex: box windows %d < 1", c.BoxWindows)
	}
	return nil
}

// WindowsPerPage returns how many windows fit in one page: the page stores
// the raw samples spanning its windows, (count-1)*stride + window samples.
func (c Config) WindowsPerPage() int {
	n := (c.PageSamples-c.Window)/c.Stride + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Index is the built MR-index over one series.
type Index struct {
	cfg      Config
	series   []float64
	starts   []int // window start offsets, ascending
	root     *index.Node
	pages    int
	segLen   int     // PAA segment length
	scale    float64 // sqrt(segLen): feature distance × scale ≤ raw L2
	features []geom.Vector
}

// Build constructs the MR-index over the series.
func Build(series []float64, cfg Config) (*Index, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(series) < cfg.Window {
		return nil, fmt.Errorf("mrindex: series of %d samples shorter than window %d", len(series), cfg.Window)
	}
	ix := &Index{cfg: cfg, series: series}
	ix.segLen = cfg.Window / cfg.Features
	if ix.segLen < 1 {
		ix.segLen = 1
	}
	ix.scale = math.Sqrt(float64(ix.segLen))
	for st := 0; st+cfg.Window <= len(series); st += cfg.Stride {
		ix.starts = append(ix.starts, st)
	}
	ix.features = make([]geom.Vector, len(ix.starts))
	for i, st := range ix.starts {
		ix.features[i] = PAA(series[st:st+cfg.Window], cfg.Features)
	}

	perPage := cfg.WindowsPerPage()
	ix.pages = (len(ix.starts) + perPage - 1) / perPage
	var leaves []*index.Node
	for pageLo := 0; pageLo < len(ix.starts); pageLo += perPage {
		pageHi := pageLo + perPage
		if pageHi > len(ix.starts) {
			pageHi = len(ix.starts)
		}
		page := pageLo / perPage
		for lo := pageLo; lo < pageHi; lo += cfg.BoxWindows {
			hi := lo + cfg.BoxWindows
			if hi > pageHi {
				hi = pageHi
			}
			mbr := geom.EmptyMBR(cfg.Features)
			for i := lo; i < hi; i++ {
				mbr.ExtendPoint(ix.features[i])
			}
			leaves = append(leaves, &index.Node{MBR: mbr, Page: page})
		}
	}
	ix.root = buildHierarchy(leaves, cfg.Fanout)
	return ix, nil
}

// buildHierarchy groups consecutive nodes under parents until one root
// remains. Grouping consecutive pages keeps sibling leaves disk-contiguous.
func buildHierarchy(nodes []*index.Node, fanout int) *index.Node {
	for len(nodes) > 1 {
		var parents []*index.Node
		for lo := 0; lo < len(nodes); lo += fanout {
			hi := lo + fanout
			if hi > len(nodes) {
				hi = len(nodes)
			}
			mbr := nodes[lo].MBR.Clone()
			for i := lo + 1; i < hi; i++ {
				mbr.ExtendMBR(nodes[i].MBR)
			}
			parents = append(parents, &index.Node{
				MBR:      mbr,
				Page:     -1,
				Children: append([]*index.Node(nil), nodes[lo:hi]...),
			})
		}
		nodes = parents
	}
	if len(nodes) == 0 {
		return &index.Node{Page: -1}
	}
	return nodes[0]
}

// Root implements index.Tree.
func (ix *Index) Root() *index.Node { return ix.root }

// NumPages implements index.Tree.
func (ix *Index) NumPages() int { return ix.pages }

// Scale returns the factor by which feature-space distances must be
// multiplied to lower-bound raw L2 distances.
func (ix *Index) Scale() float64 { return ix.scale }

// NumWindows returns the number of indexed windows.
func (ix *Index) NumWindows() int { return len(ix.starts) }

// PageWindows returns, for page p, the window ids [lo,hi), their start
// offsets, and the raw windows. Raw windows alias the underlying series.
func (ix *Index) PageWindows(p int) (ids []int, starts []int, windows [][]float64) {
	perPage := ix.cfg.WindowsPerPage()
	lo := p * perPage
	hi := lo + perPage
	if hi > len(ix.starts) {
		hi = len(ix.starts)
	}
	for i := lo; i < hi; i++ {
		ids = append(ids, i)
		starts = append(starts, ix.starts[i])
		windows = append(windows, ix.series[ix.starts[i]:ix.starts[i]+ix.cfg.Window])
	}
	return ids, starts, windows
}

// Feature returns the PAA feature of window i (for tests).
func (ix *Index) Feature(i int) geom.Vector { return ix.features[i] }

// Config returns the layout parameters.
func (ix *Index) Config() Config { return ix.cfg }

// PAA computes the f-segment piecewise aggregate approximation of window:
// the mean of each of the first f segments of length len(window)/f.
func PAA(window []float64, f int) geom.Vector {
	seg := len(window) / f
	if seg < 1 {
		seg = 1
	}
	out := make(geom.Vector, f)
	for i := 0; i < f; i++ {
		lo := i * seg
		hi := lo + seg
		if hi > len(window) {
			hi = len(window)
		}
		if lo >= hi {
			break
		}
		var s float64
		for k := lo; k < hi; k++ {
			s += window[k]
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// LowerBound returns the PAA lower bound of the L2 distance between two
// windows given their features: sqrt(seg) * L2(featA, featB).
func (ix *Index) LowerBound(featA, featB geom.Vector) float64 {
	return ix.scale * geom.L2.Dist(featA, featB)
}
