package join

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pmjoin/internal/geom"
	"pmjoin/internal/kernel"
	"pmjoin/internal/seqdist"
)

// ObjectJoiner joins the objects of two page payloads.
//
// JoinPages compares the objects of payload a (a page of the first dataset)
// against those of payload b (second dataset), calling emit for every result
// pair. It returns the number of object-pair comparisons performed and the
// modeled CPU seconds they cost.
type ObjectJoiner interface {
	JoinPages(a, b any, emit func(idA, idB int)) (comparisons int64, cpuSeconds float64)
}

// BatchJoiner is an ObjectJoiner whose per-pair kernel path can be hoisted
// to whole-cluster block evaluation (Exec.JoinCluster). The contract mirrors
// the Kernels flag: batch evaluation of a cluster's marked page pairs yields
// results, comparison counts and modeled CPU cost bit-identical to a
// JoinPages loop over the same pairs in the same order.
type BatchJoiner interface {
	ObjectJoiner
	// BatchKernel reports whether this joiner configuration is batchable
	// and, if so, the threshold the block kernel evaluates. Joiners whose
	// per-pair path carries id-dependent logic (self joins) or no float
	// kernel at all return false.
	BatchKernel() (kernel.Threshold, bool)
	// BatchPage extracts a page payload's flat block and object IDs.
	BatchPage(payload any) (*kernel.FlatPage, []int)
}

// Base modeled CPU costs. Calibrated against the paper's platform (a 400 MHz
// Pentium II): a 2-d Euclidean comparison near 20 ns reproduces Figure 10's
// 44.69 s CPU-join for the ~2.1e9 comparisons of the LBeach×MCounty NLJ.
const (
	compareBaseCost   = 10e-9 // fixed per-pair overhead, seconds
	comparePerDimCost = 5e-9  // per-dimension cost, seconds
	editPerCellCost   = 2e-9  // per banded-DP-cell cost, seconds
)

// VectorPage is the payload of a point/spatial data page: parallel slices of
// object IDs and their vectors.
type VectorPage struct {
	IDs  []int
	Vecs []geom.Vector

	flat atomic.Pointer[kernel.FlatPage]
}

// Flat returns the page's points as one contiguous row-major block for the
// batched kernels, building it on first use. Safe for concurrent callers: a
// lost CAS race just discards a duplicate build.
func (p *VectorPage) Flat() *kernel.FlatPage {
	if f := p.flat.Load(); f != nil {
		return f
	}
	dim := 0
	if len(p.Vecs) > 0 {
		dim = len(p.Vecs[0])
	}
	f := kernel.NewFlatPage(dim, len(p.Vecs))
	for _, v := range p.Vecs {
		f.AppendRow(v)
	}
	p.flat.CompareAndSwap(nil, f)
	return p.flat.Load()
}

// PrepareFlat eagerly builds the flat block of a vector or series page
// payload (and is a no-op for anything else). The engine hooks it into the
// buffer pool's load path so the one-time flattening cost is paid on the
// coordinator at page-read time, not inside worker join loops.
func PrepareFlat(payload any) {
	switch p := payload.(type) {
	case *VectorPage:
		p.Flat()
	case *SeriesPage:
		p.Flat()
	}
}

// hitsPool recycles the scratch index buffers the batched kernel paths
// append hits into, keeping the hot path allocation-free across page pairs.
var hitsPool = sync.Pool{New: func() any { s := make([]int, 0, 256); return &s }}

// VectorJoiner joins vector pages under an Lp norm with threshold Eps.
type VectorJoiner struct {
	Norm geom.Norm
	Eps  float64
	// Self skips pairs with idA >= idB (self joins count each pair once).
	Self bool
	// Kernels routes comparisons through internal/kernel's threshold-aware
	// batch path. Results, comparison counts and modeled CPU cost are
	// bit-identical either way; off keeps the reference loops for
	// differential testing.
	Kernels bool
}

// JoinPages implements ObjectJoiner.
func (j VectorJoiner) JoinPages(a, b any, emit func(int, int)) (int64, float64) {
	pa, ok := a.(*VectorPage)
	if !ok {
		panic(fmt.Sprintf("join: VectorJoiner got %T", a))
	}
	pb := b.(*VectorPage)
	var comps int64
	dim := 0
	if len(pa.Vecs) > 0 {
		dim = len(pa.Vecs[0])
	}
	if j.Kernels {
		// The historical L2 loop compares against fl(eps²); the other norms
		// compare Dist against eps. Each gets the matching exact threshold.
		var th kernel.Threshold
		if j.Norm == geom.L2 {
			th = kernel.NewThresholdSq(j.Eps)
		} else {
			th = kernel.NewThreshold(j.Norm, j.Eps)
		}
		if j.Self {
			// The id-based skip depends on both pages' IDs, so self joins
			// stay per-point; Within is op-for-op the reference loop.
			for i, va := range pa.Vecs {
				idI := pa.IDs[i]
				for k, vb := range pb.Vecs {
					if idI >= pb.IDs[k] {
						continue
					}
					comps++
					if th.Within(va, vb) {
						emit(idI, pb.IDs[k])
					}
				}
			}
		} else {
			comps = int64(len(pa.Vecs)) * int64(len(pb.Vecs))
			fb := pb.Flat()
			hits := hitsPool.Get().(*[]int)
			for i, va := range pa.Vecs {
				*hits = kernel.PagePairWithin(&th, va, fb, (*hits)[:0])
				idI := pa.IDs[i]
				for _, k := range *hits {
					emit(idI, pb.IDs[k])
				}
			}
			hitsPool.Put(hits)
		}
		perPair := compareBaseCost + comparePerDimCost*float64(dim)
		return comps, float64(comps) * perPair
	}
	if j.Norm == geom.L2 {
		// Early-exit squared L2 (wall-clock only; the modeled cost below
		// charges the full comparison either way).
		epsSq := j.Eps * j.Eps
		for i, va := range pa.Vecs {
			idI := pa.IDs[i]
			for k, vb := range pb.Vecs {
				if j.Self && idI >= pb.IDs[k] {
					continue
				}
				comps++
				var s float64
				for d := range va {
					x := va[d] - vb[d]
					s += x * x
					if s > epsSq {
						break
					}
				}
				if s <= epsSq {
					emit(idI, pb.IDs[k])
				}
			}
		}
	} else {
		for i, va := range pa.Vecs {
			for k, vb := range pb.Vecs {
				if j.Self && pa.IDs[i] >= pb.IDs[k] {
					continue
				}
				comps++
				if j.Norm.Dist(va, vb) <= j.Eps {
					emit(pa.IDs[i], pb.IDs[k])
				}
			}
		}
	}
	perPair := compareBaseCost + comparePerDimCost*float64(dim)
	return comps, float64(comps) * perPair
}

// BatchKernel implements BatchJoiner: non-self kernel joins are batchable,
// with the same threshold selection as the JoinPages kernels path. Self
// joins keep the per-point loop (the id-based skip needs both pages' IDs).
func (j VectorJoiner) BatchKernel() (kernel.Threshold, bool) {
	if !j.Kernels || j.Self {
		return kernel.Threshold{}, false
	}
	if j.Norm == geom.L2 {
		return kernel.NewThresholdSq(j.Eps), true
	}
	return kernel.NewThreshold(j.Norm, j.Eps), true
}

// BatchPage implements BatchJoiner.
func (j VectorJoiner) BatchPage(payload any) (*kernel.FlatPage, []int) {
	p, ok := payload.(*VectorPage)
	if !ok {
		panic(fmt.Sprintf("join: VectorJoiner got %T", payload))
	}
	return p.Flat(), p.IDs
}

// SeriesPage is the payload of a time-series data page: a run of consecutive
// subsequence windows of one or more series.
type SeriesPage struct {
	IDs     []int       // global window ids (position order)
	Starts  []int       // absolute start offsets within the flattened data
	Windows [][]float64 // raw windows, each of the join's window length

	flat atomic.Pointer[kernel.FlatPage]
}

// Flat returns the page's windows as one contiguous row-major block for the
// batched kernels, building it on first use (see VectorPage.Flat).
func (p *SeriesPage) Flat() *kernel.FlatPage {
	if f := p.flat.Load(); f != nil {
		return f
	}
	w := 0
	if len(p.Windows) > 0 {
		w = len(p.Windows[0])
	}
	f := kernel.NewFlatPage(w, len(p.Windows))
	for _, win := range p.Windows {
		f.AppendRow(win)
	}
	p.flat.CompareAndSwap(nil, f)
	return p.flat.Load()
}

// SeriesJoiner joins time-series windows under L2 with threshold Eps.
type SeriesJoiner struct {
	Eps float64
	// Self skips pairs with idA >= idB.
	Self bool
	// ExcludeOverlap skips self-join pairs whose window starts are closer
	// than this (trivially similar overlapping windows); 0 disables.
	ExcludeOverlap int
	// Kernels routes comparisons through the batched threshold kernel (see
	// VectorJoiner.Kernels). Bit-identical results either way.
	Kernels bool
}

// JoinPages implements ObjectJoiner.
func (j SeriesJoiner) JoinPages(a, b any, emit func(int, int)) (int64, float64) {
	pa, ok := a.(*SeriesPage)
	if !ok {
		panic(fmt.Sprintf("join: SeriesJoiner got %T", a))
	}
	pb := b.(*SeriesPage)
	var comps int64
	w := 0
	if len(pa.Windows) > 0 {
		w = len(pa.Windows[0])
	}
	if j.Kernels {
		th := kernel.NewThresholdSq(j.Eps)
		if j.Self {
			for i, wa := range pa.Windows {
				idI := pa.IDs[i]
				startI := pa.Starts[i]
				for k, wb := range pb.Windows {
					if idI >= pb.IDs[k] {
						continue
					}
					if j.ExcludeOverlap > 0 {
						d := startI - pb.Starts[k]
						if d < 0 {
							d = -d
						}
						if d < j.ExcludeOverlap {
							continue
						}
					}
					comps++
					if th.Within(wa, wb) {
						emit(idI, pb.IDs[k])
					}
				}
			}
		} else {
			comps = int64(len(pa.Windows)) * int64(len(pb.Windows))
			fb := pb.Flat()
			hits := hitsPool.Get().(*[]int)
			for i, wa := range pa.Windows {
				*hits = kernel.PagePairWithin(&th, wa, fb, (*hits)[:0])
				idI := pa.IDs[i]
				for _, k := range *hits {
					emit(idI, pb.IDs[k])
				}
			}
			hitsPool.Put(hits)
		}
		perPair := compareBaseCost + comparePerDimCost*float64(w)
		return comps, float64(comps) * perPair
	}
	epsSq := j.Eps * j.Eps
	for i, wa := range pa.Windows {
		for k, wb := range pb.Windows {
			if j.Self {
				if pa.IDs[i] >= pb.IDs[k] {
					continue
				}
				if j.ExcludeOverlap > 0 {
					d := pa.Starts[i] - pb.Starts[k]
					if d < 0 {
						d = -d
					}
					if d < j.ExcludeOverlap {
						continue
					}
				}
			}
			comps++
			// Early-exit squared L2: affects wall time only, not the
			// modeled cost.
			var s float64
			for x := range wa {
				d := wa[x] - wb[x]
				s += d * d
				if s > epsSq {
					break
				}
			}
			if s <= epsSq {
				emit(pa.IDs[i], pb.IDs[k])
			}
		}
	}
	perPair := compareBaseCost + comparePerDimCost*float64(w)
	return comps, float64(comps) * perPair
}

// BatchKernel implements BatchJoiner: non-self kernel joins are batchable
// under the squared-L2 threshold. Self joins (id and overlap skips) keep the
// per-point loop.
func (j SeriesJoiner) BatchKernel() (kernel.Threshold, bool) {
	if !j.Kernels || j.Self {
		return kernel.Threshold{}, false
	}
	return kernel.NewThresholdSq(j.Eps), true
}

// BatchPage implements BatchJoiner.
func (j SeriesJoiner) BatchPage(payload any) (*kernel.FlatPage, []int) {
	p, ok := payload.(*SeriesPage)
	if !ok {
		panic(fmt.Sprintf("join: SeriesJoiner got %T", payload))
	}
	return p.Flat(), p.IDs
}

// StringPage is the payload of a string data page: a run of consecutive
// subsequence windows with their precomputed frequency vectors.
type StringPage struct {
	IDs     []int
	Starts  []int
	Windows [][]byte
	Freqs   [][]int
}

// StringJoiner joins string windows under edit distance with threshold
// MaxEdit, using the frequency distance as a cheap first filter and the
// banded edit-distance DP only on surviving pairs (the multi-step filtering
// of [9] applied to sequence data).
type StringJoiner struct {
	MaxEdit int
	Self    bool
	// ExcludeOverlap skips self-join pairs whose starts are closer than
	// this; 0 disables.
	ExcludeOverlap int
}

// JoinPages implements ObjectJoiner.
func (j StringJoiner) JoinPages(a, b any, emit func(int, int)) (int64, float64) {
	pa, ok := a.(*StringPage)
	if !ok {
		panic(fmt.Sprintf("join: StringJoiner got %T", a))
	}
	pb := b.(*StringPage)
	var comps, verifs int64
	w := 0
	if len(pa.Windows) > 0 {
		w = len(pa.Windows[0])
	}
	alpha := 0
	if len(pa.Freqs) > 0 {
		alpha = len(pa.Freqs[0])
	}
	fast4 := alpha == 4
	for i := range pa.Windows {
		fi := pa.Freqs[i]
		idI := pa.IDs[i]
		startI := pa.Starts[i]
		for k := range pb.Windows {
			if j.Self {
				if idI >= pb.IDs[k] {
					continue
				}
				if j.ExcludeOverlap > 0 {
					d := startI - pb.Starts[k]
					if d < 0 {
						d = -d
					}
					if d < j.ExcludeOverlap {
						continue
					}
				}
			}
			comps++
			fk := pb.Freqs[k]
			if fast4 {
				// Inlined 4-symbol frequency distance (the NLJ hot loop).
				var pos, neg int
				if d := fi[0] - fk[0]; d > 0 {
					pos += d
				} else {
					neg -= d
				}
				if d := fi[1] - fk[1]; d > 0 {
					pos += d
				} else {
					neg -= d
				}
				if d := fi[2] - fk[2]; d > 0 {
					pos += d
				} else {
					neg -= d
				}
				if d := fi[3] - fk[3]; d > 0 {
					pos += d
				} else {
					neg -= d
				}
				if pos > j.MaxEdit || neg > j.MaxEdit {
					continue
				}
			} else if seqdist.FreqDistance(fi, fk) > j.MaxEdit {
				continue
			}
			verifs++
			if _, ok := seqdist.EditDistanceBounded(pa.Windows[i], pb.Windows[k], j.MaxEdit); ok {
				emit(idI, pb.IDs[k])
			}
		}
	}
	perPair := compareBaseCost + comparePerDimCost*float64(alpha)
	bandCells := float64(2*j.MaxEdit+1) * float64(w)
	cpu := float64(comps)*perPair + float64(verifs)*bandCells*editPerCellCost
	return comps, cpu
}
