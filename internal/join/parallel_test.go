package join

import (
	"reflect"
	"testing"

	"pmjoin/internal/cluster"
	"pmjoin/internal/geom"
)

// runEngine executes one method with the given worker pool (nil = serial)
// and returns the report plus the emitted pair sequence.
func runEngine(t *testing.T, method string, workers int, seed int64) (*Report, [][2]int) {
	t.Helper()
	d, da, db, _, eps := testSetup(t, seed, 400, 300)
	var pairs [][2]int
	e := &Engine{Disk: d, BufferSize: 16, OnPair: func(a, b int) { pairs = append(pairs, [2]int{a, b}) }}
	if workers > 1 {
		e.Workers = NewWorkerPool(workers)
		defer e.Workers.Close()
	}
	j := VectorJoiner{Norm: geom.L2, Eps: eps}
	var rep *Report
	var err error
	switch method {
	case "NLJ":
		rep, err = e.NLJ(da, db, j)
	case "PMNLJ":
		rep, err = e.PMNLJ(da, db, buildMatrix(t, da, db, eps), j)
	case "SC":
		m := buildMatrix(t, da, db, eps)
		clusters, cerr := cluster.Square(m, e.BufferSize)
		if cerr != nil {
			t.Fatal(cerr)
		}
		rep, err = e.Clustered(da, db, m, clusters, j, ClusteredOptions{})
	default:
		t.Fatalf("unknown method %q", method)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rep, pairs
}

// TestParallelReportsIdentical is the engine-level determinism contract:
// for every executor that consults Workers, the report and the emitted pair
// sequence must be byte-for-byte identical at any worker count.
func TestParallelReportsIdentical(t *testing.T) {
	for _, method := range []string{"NLJ", "PMNLJ", "SC"} {
		t.Run(method, func(t *testing.T) {
			baseRep, basePairs := runEngine(t, method, 1, 7)
			for _, workers := range []int{2, 4, 7} {
				rep, pairs := runEngine(t, method, workers, 7)
				if !reflect.DeepEqual(rep, baseRep) {
					t.Errorf("workers=%d report differs:\n serial:   %+v\n parallel: %+v", workers, baseRep, rep)
				}
				if !reflect.DeepEqual(pairs, basePairs) {
					t.Errorf("workers=%d pair sequence differs (len %d vs %d)", workers, len(pairs), len(basePairs))
				}
			}
		})
	}
}
