package join

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkerPoolRunsAllTasks(t *testing.T) {
	p := NewWorkerPool(4)
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		p.Run(func() { n.Add(1) })
	}
	p.Close()
	if n.Load() != 1000 {
		t.Fatalf("ran %d tasks, want 1000", n.Load())
	}
}

func TestWorkerPoolClampsWorkers(t *testing.T) {
	p := NewWorkerPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
}

func TestWorkerPoolRecursiveSubmit(t *testing.T) {
	// A task submitting sub-tasks must not deadlock, even with one worker:
	// the queue is unbounded and Run never blocks.
	p := NewWorkerPool(1)
	var n atomic.Int64
	done := make(chan struct{})
	p.Run(func() {
		for i := 0; i < 10; i++ {
			p.Run(func() {
				if n.Add(1) == 10 {
					close(done)
				}
			})
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("recursive submission deadlocked")
	}
	p.Close()
}

func TestWorkerPoolCloseJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		p := NewWorkerPool(8)
		for k := 0; k < 100; k++ {
			p.Run(func() {})
		}
		p.Close()
	}
	// Allow exited goroutines to be reaped before counting.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines after Close: %d, started with %d", g, before)
	}
}

func TestWorkerPoolRunAfterClosePanics(t *testing.T) {
	p := NewWorkerPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run(func() {})
}
