package join

import "sync"

// WorkerPool is the bounded execution pool behind every goroutine the join
// layer spawns. Executors hand it CPU-side tasks (page-pair comparisons,
// plane-sweep recursions); N workers drain them. The queue is unbounded, so
// a running task may submit further tasks without deadlocking — the
// prediction-matrix build relies on this for its recursive sub-sweeps.
//
// The pool exists so that parallelism is always bounded by Options.
// Parallelism and always joined on shutdown: Close returns only after every
// submitted task has finished and every worker has exited, which is what
// lets JoinContext guarantee it leaks no goroutines. The pmlint rawgo rule
// enforces that no other production code uses a bare go statement.
type WorkerPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	closed  bool
	workers int
	done    sync.WaitGroup
	// highWater is the deepest the queue has ever been — a backlog gauge
	// for the metrics layer, maintained under mu so it costs one compare
	// per submit.
	highWater int
}

// NewWorkerPool starts a pool of n workers (n < 1 is clamped to 1).
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go p.work() // the one sanctioned spawn site (see rawgo in LINTING.md)
	}
	return p
}

// Workers returns the number of workers.
func (p *WorkerPool) Workers() int { return p.workers }

// Run enqueues a task for execution. It never blocks, so tasks may submit
// sub-tasks from inside the pool. Run panics if the pool is closed: the
// owning join has already merged its results, and silently dropping (or
// racing in) late work would corrupt the determinism contract.
func (p *WorkerPool) Run(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("join: WorkerPool.Run after Close")
	}
	p.queue = append(p.queue, task)
	if n := len(p.queue); n > p.highWater {
		p.highWater = n
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// QueueHighWater returns the deepest queue depth observed so far. A high
// value relative to the batch size means the coordinator outpaces the
// workers (the pool is the bottleneck); near-zero means the opposite.
func (p *WorkerPool) QueueHighWater() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.highWater
}

// Close drains the queue and stops the workers, returning only after every
// submitted task has finished and every worker goroutine has exited.
func (p *WorkerPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.done.Wait()
}

func (p *WorkerPool) work() {
	defer p.done.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		task()
	}
}
