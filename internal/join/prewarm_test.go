package join

import (
	"testing"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
)

// TestPrefetchPrewarmsFlat pins the prefetch admission path's kernel
// prewarming: a page staged by Pool.Prefetch must run the pool's onLoad hook
// (PrepareFlat under Engine.Kernels), so batched kernels — per page pair or
// whole cluster — find the flat block prebuilt on the coordinator instead of
// building it lazily inside worker tasks. Regression test for the audit of
// the staged-admission path: Prefetch and Get must prewarm identically.
func TestPrefetchPrewarmsFlat(t *testing.T) {
	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	payloads := make([]*VectorPage, 3)
	for p := range payloads {
		payloads[p] = &VectorPage{
			IDs:  []int{2 * p, 2*p + 1},
			Vecs: []geom.Vector{{float64(p), 0}, {0, float64(p)}},
		}
		if _, err := d.AppendPage(f, payloads[p]); err != nil {
			t.Fatal(err)
		}
	}
	io := d.NewSession()
	pool, err := buffer.NewPool(io, 4, buffer.LRU)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetOnLoad(func(pg *disk.Page) { PrepareFlat(pg.Payload) })
	for p, payload := range payloads {
		ok, err := pool.Prefetch(disk.PageAddr{File: f, Page: p})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("prefetch of page %d not admitted", p)
		}
		// The flat block must exist before any Get claims the staged frame:
		// staged claims skip the load path, so a missing prewarm here would
		// push the build into whichever worker touches the page first.
		if payload.flat.Load() == nil {
			t.Fatalf("page %d: Prefetch admission did not prewarm the flat block", p)
		}
	}
	// The claim must not rebuild: the pointer Get's caller observes is the
	// one the prefetch built.
	before := payloads[0].flat.Load()
	pg, err := pool.Get(disk.PageAddr{File: f, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Payload.(*VectorPage).flat.Load(); got != before {
		t.Fatal("claiming a staged frame rebuilt the flat block")
	}
}
