package join

import (
	"testing"

	"pmjoin/internal/geom"
)

func vecPage(ids []int, vecs ...geom.Vector) *VectorPage {
	return &VectorPage{IDs: ids, Vecs: vecs}
}

func collectPairs() (func(int, int), *[][2]int) {
	var out [][2]int
	return func(a, b int) { out = append(out, [2]int{a, b}) }, &out
}

func TestVectorJoinerBasic(t *testing.T) {
	a := vecPage([]int{0, 1}, geom.Vector{0, 0}, geom.Vector{10, 10})
	b := vecPage([]int{100, 101}, geom.Vector{0.5, 0}, geom.Vector{10, 10.2})
	j := VectorJoiner{Norm: geom.L2, Eps: 1}
	emit, pairs := collectPairs()
	comps, cpu := j.JoinPages(a, b, emit)
	if comps != 4 {
		t.Fatalf("comps = %d", comps)
	}
	if cpu <= 0 {
		t.Fatal("cpu not charged")
	}
	if len(*pairs) != 2 {
		t.Fatalf("pairs = %v", *pairs)
	}
}

func TestVectorJoinerSelfSkips(t *testing.T) {
	p := vecPage([]int{5, 6}, geom.Vector{0, 0}, geom.Vector{0, 0.1})
	j := VectorJoiner{Norm: geom.L2, Eps: 1, Self: true}
	emit, pairs := collectPairs()
	comps, _ := j.JoinPages(p, p, emit)
	if comps != 1 { // only (5,6); (5,5), (6,6), (6,5) skipped
		t.Fatalf("comps = %d", comps)
	}
	if len(*pairs) != 1 || (*pairs)[0] != [2]int{5, 6} {
		t.Fatalf("pairs = %v", *pairs)
	}
}

func TestVectorJoinerWrongPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VectorJoiner{Norm: geom.L2, Eps: 1}.JoinPages("bogus", "bogus", func(int, int) {})
}

func TestSeriesJoinerBasic(t *testing.T) {
	a := &SeriesPage{
		IDs:     []int{0, 1},
		Starts:  []int{0, 8},
		Windows: [][]float64{{1, 2, 3}, {9, 9, 9}},
	}
	b := &SeriesPage{
		IDs:     []int{10},
		Starts:  []int{80},
		Windows: [][]float64{{1, 2, 3.4}},
	}
	j := SeriesJoiner{Eps: 0.5}
	emit, pairs := collectPairs()
	comps, cpu := j.JoinPages(a, b, emit)
	if comps != 2 || cpu <= 0 {
		t.Fatalf("comps = %d cpu = %g", comps, cpu)
	}
	if len(*pairs) != 1 || (*pairs)[0] != [2]int{0, 10} {
		t.Fatalf("pairs = %v", *pairs)
	}
}

func TestSeriesJoinerSelfOverlapExclusion(t *testing.T) {
	// Two overlapping windows of the same series: identical content but
	// starts 4 apart; with ExcludeOverlap 8 they must be skipped.
	p := &SeriesPage{
		IDs:     []int{0, 1},
		Starts:  []int{0, 4},
		Windows: [][]float64{{1, 1, 1}, {1, 1, 1}},
	}
	j := SeriesJoiner{Eps: 1, Self: true, ExcludeOverlap: 8}
	emit, pairs := collectPairs()
	j.JoinPages(p, p, emit)
	if len(*pairs) != 0 {
		t.Fatalf("overlapping windows joined: %v", *pairs)
	}
	j.ExcludeOverlap = 2
	emit2, pairs2 := collectPairs()
	j.JoinPages(p, p, emit2)
	if len(*pairs2) != 1 {
		t.Fatalf("non-overlapping pair missing: %v", *pairs2)
	}
}

func TestSeriesJoinerWrongPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SeriesJoiner{Eps: 1}.JoinPages(42, 43, func(int, int) {})
}

func TestStringJoinerFreqFilterThenEdit(t *testing.T) {
	mk := func(id int, s string) ([]byte, []int) {
		w := []byte(s)
		f := make([]int, 4)
		for _, c := range w {
			switch c {
			case 'A':
				f[0]++
			case 'C':
				f[1]++
			case 'G':
				f[2]++
			case 'T':
				f[3]++
			}
		}
		return w, f
	}
	wa, fa := mk(0, "ACGTACGT")
	wb, fb := mk(1, "ACGTACGA") // edit distance 1
	wc, fc := mk(2, "TTTTTTTT") // far away
	a := &StringPage{IDs: []int{0}, Starts: []int{0}, Windows: [][]byte{wa}, Freqs: [][]int{fa}}
	b := &StringPage{IDs: []int{10, 11}, Starts: []int{100, 200}, Windows: [][]byte{wb, wc}, Freqs: [][]int{fb, fc}}
	j := StringJoiner{MaxEdit: 2}
	emit, pairs := collectPairs()
	comps, cpu := j.JoinPages(a, b, emit)
	if comps != 2 || cpu <= 0 {
		t.Fatalf("comps = %d", comps)
	}
	if len(*pairs) != 1 || (*pairs)[0] != [2]int{0, 10} {
		t.Fatalf("pairs = %v", *pairs)
	}
}

func TestStringJoinerSelfExclusion(t *testing.T) {
	w := []byte("ACGTACGT")
	f := []int{2, 2, 2, 2}
	p := &StringPage{
		IDs:     []int{0, 1},
		Starts:  []int{0, 4},
		Windows: [][]byte{w, w},
		Freqs:   [][]int{f, f},
	}
	j := StringJoiner{MaxEdit: 2, Self: true, ExcludeOverlap: 8}
	emit, pairs := collectPairs()
	j.JoinPages(p, p, emit)
	if len(*pairs) != 0 {
		t.Fatalf("overlap not excluded: %v", *pairs)
	}
}

func TestStringJoinerWrongPayloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StringJoiner{MaxEdit: 1}.JoinPages(1.5, 2.5, func(int, int) {})
}
