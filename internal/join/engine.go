package join

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/kernel"
	"pmjoin/internal/metrics"
	"pmjoin/internal/predmat"
	"pmjoin/internal/sched"
)

// Engine executes joins over one simulated disk with a fixed buffer budget.
// Each run gets its own disk session and buffer pool (see Run), so engines
// over one shared disk may run concurrently.
type Engine struct {
	Disk       *disk.Disk
	BufferSize int           // B, in pages
	Policy     buffer.Policy // LRU by default
	// OnPair, when non-nil, receives every result pair. It is always called
	// on the coordinating goroutine, in deterministic order.
	OnPair func(idA, idB int)
	// Workers, when non-nil, receives the CPU-side page-pair comparisons of
	// NLJ / pm-NLJ / clustered runs; nil executes everything inline. Either
	// way the report is bit-for-bit identical (see Exec).
	Workers *WorkerPool
	// Ctx carries cancellation, checked between clusters / blocks; nil
	// means never cancelled.
	Ctx context.Context
	// Metrics, when non-nil, collects the run's phase-scoped metrics and
	// trace (see internal/metrics). A nil collector costs nothing: every
	// hook is a nil-receiver no-op. Metrics never influence the Report —
	// they are outside the determinism contract.
	Metrics *metrics.Collector
	// Kernels warms each page's flat kernel block as the buffer pool loads
	// it, so kernel-enabled joiners find it prebuilt on the coordinator
	// instead of building it lazily inside worker tasks. Purely a CPU-side
	// wall-clock concern: the Report is bit-identical either way.
	Kernels bool
	// KernelBatch routes each batchable cluster's marked page pairs through
	// one whole-cluster block evaluation (Exec.JoinCluster) instead of a
	// JoinPair per entry. Only BatchJoiner configurations that report a
	// batch kernel participate (non-self vector/series kernel joins);
	// everything else silently keeps the per-pair path. The Report — every
	// counter bit, pair order included — is identical either way at any
	// parallelism (see TestBatchKernelsDeterminism).
	KernelBatch bool
	// Prefetch enables the double-buffered cluster pipeline: while workers
	// compare cluster k's page pairs, the coordinator stages cluster k+1's
	// prefetch-plan pages (Pool.Prefetch), promoting them to pinned at the
	// boundary. Only the LRU policy preserves the determinism contract's
	// victim order under staging, so the pipeline silently stays off under
	// FIFO. The Report is bit-identical either way (see TestPrefetchDeterminism).
	Prefetch bool
	// PrefetchDepth bounds the pages staged ahead of each cluster boundary;
	// <= 0 stages the successor's whole prefetch plan, budget permitting.
	PrefetchDepth int
	// Timeline, when non-nil, is attached to the run's disk session and fed
	// one stage per cluster (demand vs overlapped I/O, modeled CPU), yielding
	// the modeled pipeline wall clock reported through ExecStats/Metrics.
	Timeline *disk.Timeline
	// Shared, when non-nil, is an externally owned concurrent frame cache
	// (the join service's hot state) the run's private pool participates in:
	// misses consult and publish to it, pins are mirrored into its pinned-
	// frame ledger. The Report is bit-identical with or without it — the
	// run's session is charged the same either way (see buffer.SharedPool).
	Shared *buffer.SharedPool
	// Backend, when non-nil, is the physical page source behind the disk
	// (internal/store.Store): page payloads are read from real files with
	// measured latencies instead of served from memory. The Report is
	// bit-identical either way — only MeasuredIO differs (see disk.Backend;
	// pinned by TestBackendParity).
	Backend disk.Backend
	// Readers, when non-nil (and Backend is set), dispatches the physical
	// half of prefetch reads to background reader goroutines, overlapping
	// staged I/O with the coordinator's compute. The logical charges stay on
	// the coordinator in schedule order, so the Report is unchanged. The
	// caller owns the pool and must Close it (joining all reads) before
	// trusting MeasuredIO's final account.
	Readers *WorkerPool

	// measured accumulates the physical read activity of this engine's runs
	// (zero without a Backend).
	measured disk.Measured
}

// MeasuredIO returns the accumulated physical (wall-clock) backend read
// account across this engine's completed runs. Zero without a Backend.
func (e *Engine) MeasuredIO() disk.Measured { return e.measured }

func (e *Engine) validate(r, s *Dataset) error {
	if e.Disk == nil {
		return fmt.Errorf("join: engine has no disk")
	}
	if e.BufferSize < 3 {
		return fmt.Errorf("join: buffer size %d < 3", e.BufferSize)
	}
	if err := r.Validate(e.Disk); err != nil {
		return err
	}
	if err := s.Validate(e.Disk); err != nil {
		return err
	}
	return nil
}

// Run wraps an executor body with a fresh execution scope: a cold disk
// session (the run's I/O account is a pure function of its own access
// sequence), a buffer pool over it, and the report the body fills in. After
// the body returns, the session's charges are converted to simulated
// seconds and folded into the report.
func (e *Engine) Run(method string, body func(x *Exec) error) (*Report, error) {
	io := e.Disk.NewSessionOn(e.Backend)
	pool, err := buffer.NewPool(io, e.BufferSize, e.Policy)
	if err != nil {
		return nil, err
	}
	rep := &Report{Method: method}
	if e.Timeline != nil {
		io.SetTimeline(e.Timeline)
	}
	if e.Backend != nil && e.Readers != nil {
		pool.SetPrefetchRunner(e.Readers.Run)
	}
	if e.Kernels {
		pool.SetOnLoad(func(pg *disk.Page) { PrepareFlat(pg.Payload) })
	}
	if e.Shared != nil {
		pool.AttachShared(e.Shared)
		// Detach on every exit path (cancellation included) so this run's
		// mirrored pins cannot outlive it and pin shared frames forever.
		defer pool.Detach()
	}
	x := &Exec{IO: io, Pool: pool, Rep: rep, eng: e}
	// Even on an error path (cancellation included), wait for in-flight
	// tasks so no worker is left computing over the run's state.
	defer x.wg.Wait()
	e.Metrics.Attach(io, pool)
	e.Metrics.PhaseStart(metrics.PhaseJoin)
	err = body(x)
	e.Metrics.PhaseEnd()
	if err != nil {
		return nil, err
	}
	// Resolve any background prefetch reads still in flight (frames staged
	// but never claimed) before snapshotting: releasing changes no logical
	// counter, and afterwards the session's Measured account covers every
	// fetch this run dispatched.
	pool.ReleaseStaged()
	e.measured = e.measured.Add(io.Measured())
	st := io.Stats()
	rep.IOSeconds += e.Disk.Model().Cost(st)
	rep.PageReads = st.Reads
	rep.Seeks = st.Seeks + st.WriteSeeks
	bs := pool.Stats()
	rep.Hits = bs.Hits
	rep.Misses = bs.Misses
	return rep, nil
}

// NLJ runs block nested loop join: blocks of B-1 pages of the outer dataset
// (the one with fewer pages) are pinned while the inner dataset is scanned
// sequentially, one frame at a time.
func (e *Engine) NLJ(r, s *Dataset, j ObjectJoiner) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	return e.Run("NLJ", func(x *Exec) error {
		outerIsR := r.Pages <= s.Pages
		outer, inner := r, s
		if !outerIsR {
			outer, inner = s, r
		}
		block := e.BufferSize - 1
		for lo := 0; lo < outer.Pages; lo += block {
			if err := x.Err(); err != nil {
				return err
			}
			hi := lo + block
			if hi > outer.Pages {
				hi = outer.Pages
			}
			// New block: drop everything, then pin the block. All pins were
			// released at the end of the previous block, so a flush error
			// here means the pin ledger is corrupt — abort the run.
			if err := x.Pool.Flush(); err != nil {
				return err
			}
			for p := lo; p < hi; p++ {
				if _, err := x.Pool.GetPinned(disk.PageAddr{File: outer.File, Page: p}); err != nil {
					return err
				}
			}
			for q := 0; q < inner.Pages; q++ {
				ip, err := x.Pool.Get(disk.PageAddr{File: inner.File, Page: q})
				if err != nil {
					return err
				}
				for p := lo; p < hi; p++ {
					op, err := x.Pool.Get(disk.PageAddr{File: outer.File, Page: p})
					if err != nil {
						return err
					}
					if outerIsR {
						x.JoinPayloads(j, op.Payload, ip.Payload)
					} else {
						x.JoinPayloads(j, ip.Payload, op.Payload)
					}
				}
			}
			x.Flush()
			x.Pool.UnpinAll()
		}
		return nil
	})
}

// PMNLJ runs prediction-matrix NLJ (Figure 4): if the marked pages of one
// side fit into B-1 frames they are pinned and the other side's marked pages
// stream through once; otherwise marked rows are scanned in ascending order
// and each row's marked columns are fetched through the LRU buffer.
func (e *Engine) PMNLJ(r, s *Dataset, m *predmat.Matrix, j ObjectJoiner) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	if m.Rows() != r.Pages || m.Cols() != s.Pages {
		return nil, fmt.Errorf("join: matrix is %dx%d, datasets have %dx%d pages",
			m.Rows(), m.Cols(), r.Pages, s.Pages)
	}
	return e.Run("pm-NLJ", func(x *Exec) error {
		x.Rep.MarkedEntries = m.Marked()
		markedRows := m.MarkedRows()
		markedCols := m.MarkedCols()

		switch {
		case len(markedCols) <= e.BufferSize-1:
			// All marked pages of the second dataset fit: read them once,
			// then stream the marked rows through the remaining frame.
			for _, c := range markedCols {
				if _, err := x.Pool.GetPinned(disk.PageAddr{File: s.File, Page: c}); err != nil {
					return err
				}
			}
			for _, row := range markedRows {
				if err := x.Err(); err != nil {
					return err
				}
				for _, c := range m.RowCols(row) {
					if err := x.JoinPair(r, s, row, c, j); err != nil {
						return err
					}
				}
				x.Flush()
			}
			x.Pool.UnpinAll()
		case len(markedRows) <= e.BufferSize-1:
			for _, row := range markedRows {
				if _, err := x.Pool.GetPinned(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
			}
			for _, c := range markedCols {
				if err := x.Err(); err != nil {
					return err
				}
				for _, row := range m.ColRows(c) {
					if err := x.JoinPair(r, s, row, c, j); err != nil {
						return err
					}
				}
				x.Flush()
			}
			x.Pool.UnpinAll()
		default:
			// Figure 4, else branch: one marked page of the first dataset
			// at a time; its marked partner pages stream through the rest
			// of the buffer (ascending order; LRU gives whatever reuse
			// consecutive rows allow). This is the access pattern behind
			// Lemma 1's m + min(r,c) bound.
			for _, row := range markedRows {
				if err := x.Err(); err != nil {
					return err
				}
				if _, err := x.Pool.GetPinned(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
				for _, c := range m.RowCols(row) {
					if err := x.JoinPair(r, s, row, c, j); err != nil {
						return err
					}
				}
				x.Flush()
				if err := x.Pool.Unpin(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// ClusterOrder selects how the clustered executor sequences clusters.
type ClusterOrder int

const (
	// OrderGreedySharing is the paper's sharing-graph greedy schedule (§8).
	OrderGreedySharing ClusterOrder = iota
	// OrderRandom processes clusters in random order (random-SC, §9.1).
	OrderRandom
	// OrderCreation processes clusters in creation order (ablation).
	OrderCreation
)

// ClusteredOptions configures the clustered join executor.
type ClusteredOptions struct {
	Order ClusterOrder
	Seed  int64 // for OrderRandom
	// PreprocessSeconds is added to the report (the caller models the
	// clustering cost; see ModelSCPreprocess / ModelCCPreprocess).
	PreprocessSeconds float64
}

// Clustered runs the clustered join: clusters are scheduled, then each
// cluster's marked row and column pages are fetched (missing pages in
// ascending page order per file — optimal disk scheduling [40]) and pinned,
// and the cluster's marked page pairs are joined entirely in memory
// (Lemma 2).
func (e *Engine) Clustered(r, s *Dataset, m *predmat.Matrix, clusters []*cluster.Cluster, j ObjectJoiner, opts ClusteredOptions) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	for i, c := range clusters {
		if c.Pages() > e.BufferSize {
			return nil, fmt.Errorf("join: cluster %d needs %d pages > buffer %d", i, c.Pages(), e.BufferSize)
		}
	}
	method := "SC"
	switch opts.Order {
	case OrderRandom:
		method = "random-SC"
	case OrderCreation:
		method = "creation-SC"
	}

	return e.Run(method, func(x *Exec) error {
		x.Rep.MarkedEntries = m.Marked()
		x.Rep.Clusters = len(clusters)
		x.Rep.PreprocessSeconds = opts.PreprocessSeconds

		pageSets := make([]sched.PageSet, len(clusters))
		for i, c := range clusters {
			ps := make(sched.PageSet, c.Pages())
			for _, row := range c.Rows() {
				ps[disk.PageAddr{File: r.File, Page: row}] = struct{}{}
			}
			for _, col := range c.Cols() {
				ps[disk.PageAddr{File: s.File, Page: col}] = struct{}{}
			}
			pageSets[i] = ps
		}

		var order []int
		switch opts.Order {
		case OrderGreedySharing:
			// Schedule construction is clustering-phase work even though
			// it runs inside the executor scope; the nested phase window
			// attributes it (exclusively) to PhaseCluster.
			e.Metrics.PhaseStart(metrics.PhaseCluster)
			var submit func(func())
			if e.Workers != nil {
				submit = e.Workers.Run
			}
			edges := sched.SharingGraphParallel(pageSets, submit)
			order = sched.GreedyOrder(len(clusters), edges)
			e.Metrics.PhaseEnd()
			x.Rep.PreprocessSeconds += ModelSchedulePreprocess(len(edges))
		case OrderRandom:
			order = sched.RandomOrder(len(clusters), opts.Seed)
		case OrderCreation:
			order = sched.IdentityOrder(len(clusters))
		}

		// Resolve batched dispatch once per run: the joiner must opt in with
		// a batch kernel, and the engine flag must be on. Everything else
		// (self joins, string joins, kernels off) falls back per pair.
		var bj BatchJoiner
		var bth kernel.Threshold
		if e.KernelBatch {
			if cand, ok := j.(BatchJoiner); ok {
				if th, batchable := cand.BatchKernel(); batchable {
					bj, bth = cand, th
				}
			}
		}

		// The prefetch pipeline needs the per-step plan (the pages each
		// cluster needs that its predecessor does not pin). Only LRU
		// preserves the off-mode victim order under staged frames — staged
		// protection mirrors the pin loop's incremental pinning and prefetch
		// victims are the same front-first survivors — so FIFO runs stay
		// unpipelined regardless of the option.
		prefetching := e.Prefetch && e.Policy == buffer.LRU && len(order) > 1
		var plan [][]any
		if prefetching {
			plan = sched.PrefetchPlan(pageSets, order)
		}

		var cpuMark float64
		for oi, ci := range order {
			// A cluster is one unit of work: cancellation is checked at its
			// boundary, and its comparison tasks are flushed before the next
			// cluster's pages are fetched.
			if err := x.Err(); err != nil {
				return err
			}
			c := clusters[ci]
			e.Metrics.ClusterStart(ci)
			// Fetch missing pages in ascending (file, page) order; pin all.
			// Staged frames from the predecessor's prefetch are claimed here:
			// the claim counts nothing (their hit or miss was pre-charged at
			// stage time), keeping the counters identical with prefetch off.
			addrs := sortedAddrs(pageSets[ci])
			for _, a := range addrs {
				if _, err := x.Pool.GetPinned(a); err != nil {
					return err
				}
			}
			e.Metrics.ClusterPinned(len(addrs))
			if bj != nil {
				if err := x.JoinCluster(r, s, c, bj, bth); err != nil {
					return err
				}
			} else {
				for _, en := range c.Entries {
					if err := x.JoinPair(r, s, en.R, en.C, j); err != nil {
						return err
					}
				}
			}
			// Double buffering: the comparison tasks are queued (workers are
			// chewing on them now), so the coordinator overlaps the
			// successor's new-page reads with this cluster's CPU phase. The
			// reads occupy exactly the session-head sequence the successor's
			// pin loop would have issued, so Seeks/Sequential/GapPages are
			// untouched; only the timeline buckets them as overlapped.
			if prefetching && oi+1 < len(order) {
				x.Kick() // ship the sub-batch remainder so workers chew while we stage
				if err := e.prefetchStep(x, plan[oi+1], order[oi+1]); err != nil {
					return err
				}
			}
			x.Flush()
			if e.Timeline != nil {
				e.Timeline.StageEnd(x.Rep.CPUJoinSeconds - cpuMark)
				cpuMark = x.Rep.CPUJoinSeconds
			}
			x.Pool.UnpinAll()
			e.Metrics.ClusterEnd()
		}
		return nil
	})
}

// sortedAddrs returns the page set's addresses in ascending (file, page)
// order — the optimal disk scheduling order [40] shared by the pin loop and
// the prefetch loop, which is what keeps the two modes' read sequences
// identical.
func sortedAddrs(ps sched.PageSet) []disk.PageAddr {
	addrs := make([]disk.PageAddr, 0, len(ps))
	for a := range ps {
		addrs = append(addrs, a.(disk.PageAddr))
	}
	sort.Slice(addrs, func(i, k int) bool {
		if addrs[i].File != addrs[k].File {
			return addrs[i].File < addrs[k].File
		}
		return addrs[i].Page < addrs[k].Page
	})
	return addrs
}

// prefetchStep stages the next cluster's prefetch-plan pages (ascending
// order, bounded by PrefetchDepth) while the current cluster's comparisons
// run. A degraded admission (no evictable frame) ends the step: every
// remaining plan page is then non-resident — any resident one would itself
// have been an eviction candidate — so the deferred reads fall through to the
// successor's pin loop, where the victim order matches the unpipelined run.
func (e *Engine) prefetchStep(x *Exec, step []any, target int) error {
	if len(step) == 0 {
		return nil
	}
	addrs := make([]disk.PageAddr, len(step))
	for i, p := range step {
		addrs[i] = p.(disk.PageAddr)
	}
	sort.Slice(addrs, func(i, k int) bool {
		if addrs[i].File != addrs[k].File {
			return addrs[i].File < addrs[k].File
		}
		return addrs[i].Page < addrs[k].Page
	})
	if e.PrefetchDepth > 0 && len(addrs) > e.PrefetchDepth {
		addrs = addrs[:e.PrefetchDepth]
	}
	if e.Timeline != nil {
		e.Timeline.BeginOverlap()
		defer e.Timeline.EndOverlap()
	}
	readMark := x.IO.Stats().Reads
	staged := int64(0)
	for _, a := range addrs {
		ok, err := x.Pool.Prefetch(a)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		staged++
	}
	e.Metrics.ClusterPrefetched(target, staged, x.IO.Stats().Reads-readMark)
	return nil
}

// ModelSCPreprocess returns the modeled seconds of SC clustering over m
// marked entries (two linear passes, §7.1).
func ModelSCPreprocess(markedEntries int) float64 {
	return float64(markedEntries) * SCEntryCost
}

// ModelCCPreprocess returns the modeled seconds of CC clustering (O(m^1.5)
// threshold-algorithm expansions, §7.2).
func ModelCCPreprocess(markedEntries int) float64 {
	m := float64(markedEntries)
	return math.Pow(m, 1.5) * CCEntryCost
}

// ModelSchedulePreprocess returns the modeled seconds of the greedy sharing
// graph schedule over the given number of edges (O(|E| log |E|), §8).
func ModelSchedulePreprocess(edges int) float64 {
	if edges < 2 {
		return float64(edges) * SchedEdgeCost
	}
	e := float64(edges)
	return e * math.Log2(e) * SchedEdgeCost
}
