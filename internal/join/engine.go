package join

import (
	"fmt"
	"math"
	"sort"

	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/predmat"
	"pmjoin/internal/sched"
)

// Engine executes joins over one simulated disk with a fixed buffer budget.
type Engine struct {
	Disk       *disk.Disk
	BufferSize int           // B, in pages
	Policy     buffer.Policy // LRU by default
	// OnPair, when non-nil, receives every result pair.
	OnPair func(idA, idB int)
}

func (e *Engine) validate(r, s *Dataset) error {
	if e.Disk == nil {
		return fmt.Errorf("join: engine has no disk")
	}
	if e.BufferSize < 3 {
		return fmt.Errorf("join: buffer size %d < 3", e.BufferSize)
	}
	if err := r.Validate(e.Disk); err != nil {
		return err
	}
	if err := s.Validate(e.Disk); err != nil {
		return err
	}
	return nil
}

// run wraps an executor body with per-run stat capture.
func (e *Engine) run(method string, body func(pool *buffer.Pool, rep *Report) error) (*Report, error) {
	pool, err := buffer.NewPool(e.Disk, e.BufferSize, e.Policy)
	if err != nil {
		return nil, err
	}
	before := e.Disk.Stats()
	rep := &Report{Method: method}
	if err := body(pool, rep); err != nil {
		return nil, err
	}
	after := e.Disk.Stats()
	model := e.Disk.Model()
	delta := disk.Stats{
		Reads:      after.Reads - before.Reads,
		Seeks:      after.Seeks - before.Seeks,
		Sequential: after.Sequential - before.Sequential,
		GapPages:   after.GapPages - before.GapPages,
		Writes:     after.Writes - before.Writes,
		WriteSeeks: after.WriteSeeks - before.WriteSeeks,
	}
	rep.IOSeconds += model.Cost(delta)
	rep.PageReads = delta.Reads
	rep.Seeks = delta.Seeks + delta.WriteSeeks
	bs := pool.Stats()
	rep.Hits = bs.Hits
	rep.Misses = bs.Misses
	return rep, nil
}

func (e *Engine) emit(rep *Report) func(int, int) {
	return func(a, b int) {
		rep.Results++
		if e.OnPair != nil {
			e.OnPair(a, b)
		}
	}
}

// joinPair joins one page pair through the pool, charging CPU to rep.
// Payloads are fetched via the buffer so residency is rewarded.
func (e *Engine) joinPair(pool *buffer.Pool, r, s *Dataset, pr, ps int, j ObjectJoiner, rep *Report, emit func(int, int)) error {
	pa, err := pool.Get(disk.PageAddr{File: r.File, Page: pr})
	if err != nil {
		return err
	}
	pb, err := pool.Get(disk.PageAddr{File: s.File, Page: ps})
	if err != nil {
		return err
	}
	comps, cpu := j.JoinPages(pa.Payload, pb.Payload, emit)
	rep.Comparisons += comps
	rep.CPUJoinSeconds += cpu
	return nil
}

// NLJ runs block nested loop join: blocks of B-1 pages of the outer dataset
// (the one with fewer pages) are pinned while the inner dataset is scanned
// sequentially, one frame at a time.
func (e *Engine) NLJ(r, s *Dataset, j ObjectJoiner) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	return e.run("NLJ", func(pool *buffer.Pool, rep *Report) error {
		emit := e.emit(rep)
		outerIsR := r.Pages <= s.Pages
		outer, inner := r, s
		if !outerIsR {
			outer, inner = s, r
		}
		block := e.BufferSize - 1
		for lo := 0; lo < outer.Pages; lo += block {
			hi := lo + block
			if hi > outer.Pages {
				hi = outer.Pages
			}
			pool.Flush() // new block: drop everything, then pin the block
			for p := lo; p < hi; p++ {
				if _, err := pool.GetPinned(disk.PageAddr{File: outer.File, Page: p}); err != nil {
					return err
				}
			}
			for q := 0; q < inner.Pages; q++ {
				ip, err := pool.Get(disk.PageAddr{File: inner.File, Page: q})
				if err != nil {
					return err
				}
				for p := lo; p < hi; p++ {
					op, err := pool.Get(disk.PageAddr{File: outer.File, Page: p})
					if err != nil {
						return err
					}
					var comps int64
					var cpu float64
					if outerIsR {
						comps, cpu = j.JoinPages(op.Payload, ip.Payload, emit)
					} else {
						comps, cpu = j.JoinPages(ip.Payload, op.Payload, emit)
					}
					rep.Comparisons += comps
					rep.CPUJoinSeconds += cpu
				}
			}
			pool.UnpinAll()
		}
		return nil
	})
}

// PMNLJ runs prediction-matrix NLJ (Figure 4): if the marked pages of one
// side fit into B-1 frames they are pinned and the other side's marked pages
// stream through once; otherwise marked rows are scanned in ascending order
// and each row's marked columns are fetched through the LRU buffer.
func (e *Engine) PMNLJ(r, s *Dataset, m *predmat.Matrix, j ObjectJoiner) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	if m.Rows() != r.Pages || m.Cols() != s.Pages {
		return nil, fmt.Errorf("join: matrix is %dx%d, datasets have %dx%d pages",
			m.Rows(), m.Cols(), r.Pages, s.Pages)
	}
	return e.run("pm-NLJ", func(pool *buffer.Pool, rep *Report) error {
		rep.MarkedEntries = m.Marked()
		emit := e.emit(rep)
		markedRows := m.MarkedRows()
		markedCols := m.MarkedCols()

		switch {
		case len(markedCols) <= e.BufferSize-1:
			// All marked pages of the second dataset fit: read them once,
			// then stream the marked rows through the remaining frame.
			for _, c := range markedCols {
				if _, err := pool.GetPinned(disk.PageAddr{File: s.File, Page: c}); err != nil {
					return err
				}
			}
			for _, row := range markedRows {
				for _, c := range m.RowCols(row) {
					if err := e.joinPair(pool, r, s, row, c, j, rep, emit); err != nil {
						return err
					}
				}
			}
			pool.UnpinAll()
		case len(markedRows) <= e.BufferSize-1:
			for _, row := range markedRows {
				if _, err := pool.GetPinned(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
			}
			for _, c := range markedCols {
				for _, row := range m.ColRows(c) {
					if err := e.joinPair(pool, r, s, row, c, j, rep, emit); err != nil {
						return err
					}
				}
			}
			pool.UnpinAll()
		default:
			// Figure 4, else branch: one marked page of the first dataset
			// at a time; its marked partner pages stream through the rest
			// of the buffer (ascending order; LRU gives whatever reuse
			// consecutive rows allow). This is the access pattern behind
			// Lemma 1's m + min(r,c) bound.
			for _, row := range markedRows {
				if _, err := pool.GetPinned(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
				for _, c := range m.RowCols(row) {
					if err := e.joinPair(pool, r, s, row, c, j, rep, emit); err != nil {
						return err
					}
				}
				if err := pool.Unpin(disk.PageAddr{File: r.File, Page: row}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// ClusterOrder selects how the clustered executor sequences clusters.
type ClusterOrder int

const (
	// OrderGreedySharing is the paper's sharing-graph greedy schedule (§8).
	OrderGreedySharing ClusterOrder = iota
	// OrderRandom processes clusters in random order (random-SC, §9.1).
	OrderRandom
	// OrderCreation processes clusters in creation order (ablation).
	OrderCreation
)

// ClusteredOptions configures the clustered join executor.
type ClusteredOptions struct {
	Order ClusterOrder
	Seed  int64 // for OrderRandom
	// PreprocessSeconds is added to the report (the caller models the
	// clustering cost; see ModelSCPreprocess / ModelCCPreprocess).
	PreprocessSeconds float64
}

// Clustered runs the clustered join: clusters are scheduled, then each
// cluster's marked row and column pages are fetched (missing pages in
// ascending page order per file — optimal disk scheduling [40]) and pinned,
// and the cluster's marked page pairs are joined entirely in memory
// (Lemma 2).
func (e *Engine) Clustered(r, s *Dataset, m *predmat.Matrix, clusters []*cluster.Cluster, j ObjectJoiner, opts ClusteredOptions) (*Report, error) {
	if err := e.validate(r, s); err != nil {
		return nil, err
	}
	for i, c := range clusters {
		if c.Pages() > e.BufferSize {
			return nil, fmt.Errorf("join: cluster %d needs %d pages > buffer %d", i, c.Pages(), e.BufferSize)
		}
	}
	method := "SC"
	switch opts.Order {
	case OrderRandom:
		method = "random-SC"
	case OrderCreation:
		method = "creation-SC"
	}

	return e.run(method, func(pool *buffer.Pool, rep *Report) error {
		rep.MarkedEntries = m.Marked()
		rep.Clusters = len(clusters)
		rep.PreprocessSeconds = opts.PreprocessSeconds
		emit := e.emit(rep)

		pageSets := make([]sched.PageSet, len(clusters))
		for i, c := range clusters {
			ps := make(sched.PageSet, c.Pages())
			for _, row := range c.Rows() {
				ps[disk.PageAddr{File: r.File, Page: row}] = struct{}{}
			}
			for _, col := range c.Cols() {
				ps[disk.PageAddr{File: s.File, Page: col}] = struct{}{}
			}
			pageSets[i] = ps
		}

		var order []int
		switch opts.Order {
		case OrderGreedySharing:
			edges := sched.SharingGraph(pageSets)
			order = sched.GreedyOrder(len(clusters), edges)
			rep.PreprocessSeconds += ModelSchedulePreprocess(len(edges))
		case OrderRandom:
			order = sched.RandomOrder(len(clusters), opts.Seed)
		case OrderCreation:
			order = sched.IdentityOrder(len(clusters))
		}

		for _, ci := range order {
			c := clusters[ci]
			// Fetch missing pages in ascending (file, page) order; pin all.
			addrs := make([]disk.PageAddr, 0, c.Pages())
			for a := range pageSets[ci] {
				addrs = append(addrs, a.(disk.PageAddr))
			}
			sort.Slice(addrs, func(i, k int) bool {
				if addrs[i].File != addrs[k].File {
					return addrs[i].File < addrs[k].File
				}
				return addrs[i].Page < addrs[k].Page
			})
			for _, a := range addrs {
				if _, err := pool.GetPinned(a); err != nil {
					return err
				}
			}
			for _, en := range c.Entries {
				if err := e.joinPair(pool, r, s, en.R, en.C, j, rep, emit); err != nil {
					return err
				}
			}
			pool.UnpinAll()
		}
		return nil
	})
}

// ModelSCPreprocess returns the modeled seconds of SC clustering over m
// marked entries (two linear passes, §7.1).
func ModelSCPreprocess(markedEntries int) float64 {
	return float64(markedEntries) * SCEntryCost
}

// ModelCCPreprocess returns the modeled seconds of CC clustering (O(m^1.5)
// threshold-algorithm expansions, §7.2).
func ModelCCPreprocess(markedEntries int) float64 {
	m := float64(markedEntries)
	return math.Pow(m, 1.5) * CCEntryCost
}

// ModelSchedulePreprocess returns the modeled seconds of the greedy sharing
// graph schedule over the given number of edges (O(|E| log |E|), §8).
func ModelSchedulePreprocess(edges int) float64 {
	if edges < 2 {
		return float64(edges) * SchedEdgeCost
	}
	e := float64(edges)
	return e * math.Log2(e) * SchedEdgeCost
}
