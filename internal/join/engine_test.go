package join

import (
	"math/rand"
	"testing"

	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/predmat"
	"pmjoin/internal/rstar"
)

// buildVectorDataset materializes n random 2-d points as a packed R*-tree
// dataset on d and returns it with the per-page vectors.
func buildVectorDataset(t *testing.T, d *disk.Disk, rng *rand.Rand, name string, n, leafCap int) (*Dataset, [][]geom.Vector) {
	t.Helper()
	items := make([]rstar.Item, n)
	for i := range items {
		items[i] = rstar.PointItem(i, geom.Vector{rng.Float64(), rng.Float64()})
	}
	tr, err := rstar.BulkLoadSTR(2, rstar.DefaultConfig(leafCap), items)
	if err != nil {
		t.Fatal(err)
	}
	pages := tr.Pack()
	f := d.CreateFile()
	raw := make([][]geom.Vector, len(pages))
	for p, pg := range pages {
		payload := &VectorPage{}
		for _, it := range pg {
			payload.IDs = append(payload.IDs, it.ID)
			payload.Vecs = append(payload.Vecs, it.MBR.Min)
			raw[p] = append(raw[p], it.MBR.Min)
		}
		if _, err := d.AppendPage(f, payload); err != nil {
			t.Fatal(err)
		}
	}
	return &Dataset{Name: name, File: f, Root: tr.Root(), Pages: len(pages)}, raw
}

func bruteCount(pa, pb [][]geom.Vector, eps float64) int64 {
	var count int64
	for _, pageA := range pa {
		for _, va := range pageA {
			for _, pageB := range pb {
				for _, vb := range pageB {
					if geom.L2.Dist(va, vb) <= eps {
						count++
					}
				}
			}
		}
	}
	return count
}

func testSetup(t *testing.T, seed int64, nA, nB int) (*disk.Disk, *Dataset, *Dataset, int64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := disk.New(disk.DefaultModel())
	const eps = 0.05
	da, rawA := buildVectorDataset(t, d, rng, "A", nA, 8)
	db, rawB := buildVectorDataset(t, d, rng, "B", nB, 8)
	want := bruteCount(rawA, rawB, eps)
	if want == 0 {
		t.Fatal("workload has no results")
	}
	return d, da, db, want, eps
}

func buildMatrix(t *testing.T, da, db *Dataset, eps float64) *predmat.Matrix {
	t.Helper()
	m, err := predmat.Build(da.Root, db.Root, da.Pages, db.Pages, eps,
		predmat.NormPredictor{Norm: geom.L2}, predmat.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNLJMatchesBruteForce(t *testing.T) {
	d, da, db, want, eps := testSetup(t, 1, 300, 200)
	e := &Engine{Disk: d, BufferSize: 8}
	rep, err := e.NLJ(da, db, VectorJoiner{Norm: geom.L2, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.PageReads == 0 || rep.IOSeconds <= 0 || rep.CPUJoinSeconds <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	if rep.Comparisons != int64(300*200) {
		t.Fatalf("NLJ comparisons = %d, want all pairs", rep.Comparisons)
	}
}

func TestPMNLJMatchesNLJ(t *testing.T) {
	d, da, db, want, eps := testSetup(t, 2, 300, 200)
	e := &Engine{Disk: d, BufferSize: 8}
	m := buildMatrix(t, da, db, eps)
	rep, err := e.PMNLJ(da, db, m, VectorJoiner{Norm: geom.L2, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.MarkedEntries != m.Marked() {
		t.Fatal("marked entries not reported")
	}
	// Prediction must reduce comparisons.
	if rep.Comparisons >= int64(300*200) {
		t.Fatalf("pm-NLJ compared %d pairs, no reduction", rep.Comparisons)
	}
}

func TestPMNLJWithFullMatrixEqualsNLJ(t *testing.T) {
	d, da, db, want, eps := testSetup(t, 3, 200, 150)
	e := &Engine{Disk: d, BufferSize: 8}
	full := predmat.Full(da.Pages, db.Pages)
	rep, err := e.PMNLJ(da, db, full, VectorJoiner{Norm: geom.L2, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.Comparisons != int64(200*150) {
		t.Fatalf("comparisons = %d", rep.Comparisons)
	}
}

func TestPMNLJMatrixShapeMismatch(t *testing.T) {
	d, da, db, _, eps := testSetup(t, 4, 100, 100)
	e := &Engine{Disk: d, BufferSize: 8}
	bad := predmat.NewMatrix(da.Pages+1, db.Pages)
	if _, err := e.PMNLJ(da, db, bad, VectorJoiner{Norm: geom.L2, Eps: eps}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestClusteredMatchesNLJAllOrders(t *testing.T) {
	d, da, db, want, eps := testSetup(t, 5, 300, 200)
	m := buildMatrix(t, da, db, eps)
	clusters, err := cluster.Square(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []ClusterOrder{OrderGreedySharing, OrderRandom, OrderCreation} {
		e := &Engine{Disk: d, BufferSize: 12}
		rep, err := e.Clustered(da, db, m, clusters, VectorJoiner{Norm: geom.L2, Eps: eps},
			ClusteredOptions{Order: order, Seed: 9})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if rep.Results != want {
			t.Fatalf("order %v: results = %d, want %d", order, rep.Results, want)
		}
		if rep.Clusters != len(clusters) {
			t.Fatalf("clusters = %d", rep.Clusters)
		}
	}
}

func TestClusteredRejectsOversizedCluster(t *testing.T) {
	d, da, db, _, eps := testSetup(t, 6, 200, 150)
	m := buildMatrix(t, da, db, eps)
	clusters, err := cluster.Square(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Disk: d, BufferSize: 8} // smaller than the clusters were built for
	_, err = e.Clustered(da, db, m, clusters, VectorJoiner{Norm: geom.L2, Eps: eps}, ClusteredOptions{})
	if err == nil {
		t.Fatal("oversized cluster accepted")
	}
}

func TestEngineValidation(t *testing.T) {
	d, da, db, _, eps := testSetup(t, 7, 100, 100)
	j := VectorJoiner{Norm: geom.L2, Eps: eps}
	if _, err := (&Engine{Disk: nil, BufferSize: 8}).NLJ(da, db, j); err == nil {
		t.Fatal("nil disk accepted")
	}
	if _, err := (&Engine{Disk: d, BufferSize: 2}).NLJ(da, db, j); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	bad := &Dataset{Name: "bad", File: da.File, Root: da.Root, Pages: da.Pages + 5}
	if _, err := (&Engine{Disk: d, BufferSize: 8}).NLJ(bad, db, j); err == nil {
		t.Fatal("page count mismatch accepted")
	}
	noRoot := &Dataset{Name: "x", File: da.File, Pages: da.Pages}
	if _, err := (&Engine{Disk: d, BufferSize: 8}).NLJ(noRoot, db, j); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestOnPairCallback(t *testing.T) {
	d, da, db, want, eps := testSetup(t, 8, 150, 150)
	var got int64
	e := &Engine{Disk: d, BufferSize: 8, OnPair: func(a, b int) { got++ }}
	rep, err := e.NLJ(da, db, VectorJoiner{Norm: geom.L2, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || rep.Results != want {
		t.Fatalf("callback count %d, results %d, want %d", got, rep.Results, want)
	}
}

func TestSelfJoinConsistentAcrossExecutors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := disk.New(disk.DefaultModel())
	da, raw := buildVectorDataset(t, d, rng, "A", 250, 8)
	const eps = 0.04
	var want int64
	for _, pa := range raw {
		for _, va := range pa {
			for _, pb := range raw {
				for _, vb := range pb {
					if geom.L2.Dist(va, vb) <= eps {
						want++
					}
				}
			}
		}
	}
	// Self joiner counts each unordered pair once; brute force counted
	// ordered pairs including identity.
	want = (want - 250) / 2
	j := VectorJoiner{Norm: geom.L2, Eps: eps, Self: true}
	e := &Engine{Disk: d, BufferSize: 10}

	nlj, err := e.NLJ(da, da, j)
	if err != nil {
		t.Fatal(err)
	}
	if nlj.Results != want {
		t.Fatalf("NLJ self = %d, want %d", nlj.Results, want)
	}
	m := buildMatrix(t, da, da, eps)
	pm, err := e.PMNLJ(da, da, m, j)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Results != want {
		t.Fatalf("pm-NLJ self = %d, want %d", pm.Results, want)
	}
	clusters, err := cluster.Square(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := e.Clustered(da, da, m, clusters, j, ClusteredOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Results != want {
		t.Fatalf("SC self = %d, want %d", sc.Results, want)
	}
}

func TestReportTotalAndString(t *testing.T) {
	r := &Report{Method: "x", IOSeconds: 1, CPUJoinSeconds: 2, PreprocessSeconds: 0.5}
	if r.Total() != 3.5 {
		t.Fatalf("total = %g", r.Total())
	}
	if r.String() == "" {
		t.Fatal("empty string")
	}
}

func TestPreprocessModels(t *testing.T) {
	if ModelSCPreprocess(1000) <= 0 || ModelCCPreprocess(1000) <= ModelSCPreprocess(1000) {
		t.Fatal("CC preprocessing must exceed SC's")
	}
	if ModelSchedulePreprocess(0) != 0 {
		t.Fatal("zero edges must cost zero")
	}
	if ModelSchedulePreprocess(1000) <= ModelSchedulePreprocess(10) {
		t.Fatal("schedule cost must grow")
	}
}

// TestClusteredIOBeatsPMNLJOnBandedWorkload checks the core I/O claim
// (Theorem 2): with a small buffer, the clustered executor reads fewer
// pages than pm-NLJ's row-at-a-time pattern.
func TestClusteredIOBeatsPMNLJOnBandedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := disk.New(disk.DefaultModel())
	// Clustered points give a banded, dense matrix at a large epsilon.
	da, _ := buildVectorDataset(t, d, rng, "A", 900, 6)
	db, _ := buildVectorDataset(t, d, rng, "B", 900, 6)
	const eps = 0.12
	m := buildMatrix(t, da, db, eps)
	if m.Density() < 0.02 {
		t.Skipf("matrix density %g too low for the thrash regime", m.Density())
	}
	j := VectorJoiner{Norm: geom.L2, Eps: eps}
	const b = 10
	e := &Engine{Disk: d, BufferSize: b}
	pm, err := e.PMNLJ(da, db, m, j)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := cluster.Square(m, b)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := e.Clustered(da, db, m, clusters, j, ClusteredOptions{Order: OrderGreedySharing})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Results != pm.Results {
		t.Fatalf("result mismatch: %d vs %d", sc.Results, pm.Results)
	}
	if sc.PageReads >= pm.PageReads {
		t.Fatalf("SC reads %d >= pm-NLJ reads %d", sc.PageReads, pm.PageReads)
	}
}

// TestLemma2NoIntraClusterMisses: once a cluster's pages are read, joining
// its marked pairs causes no further disk I/O (Lemma 2); total misses are
// bounded by the summed cluster page counts.
func TestLemma2NoIntraClusterMisses(t *testing.T) {
	d, da, db, _, eps := testSetup(t, 11, 400, 300)
	m := buildMatrix(t, da, db, eps)
	clusters, err := cluster.Square(m, 14)
	if err != nil {
		t.Fatal(err)
	}
	var totalPages int64
	for _, c := range clusters {
		totalPages += int64(c.Pages())
	}
	e := &Engine{Disk: d, BufferSize: 14}
	rep, err := e.Clustered(da, db, m, clusters, VectorJoiner{Norm: geom.L2, Eps: eps},
		ClusteredOptions{Order: OrderGreedySharing})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses > totalPages {
		t.Fatalf("misses %d exceed cluster page total %d: intra-cluster I/O", rep.Misses, totalPages)
	}
	if rep.PageReads != rep.Misses {
		t.Fatalf("page reads %d != misses %d", rep.PageReads, rep.Misses)
	}
}
