// Package join executes similarity joins over the simulated disk and buffer:
// block nested loop join (NLJ), prediction-matrix NLJ (pm-NLJ, §6), and the
// clustered joins (SC / random-SC / CC, §7-8). Every executor is charged
// through the same disk, buffer, and CPU cost models so their relative costs
// reproduce the paper's measurements.
package join

import (
	"fmt"

	"pmjoin/internal/disk"
	"pmjoin/internal/index"
)

// Dataset is a joinable dataset: a page file on the simulated disk plus the
// MBR hierarchy whose leaves map 1:1 to the file's pages.
type Dataset struct {
	Name  string
	File  disk.FileID
	Root  *index.Node
	Pages int
}

// Validate checks that the hierarchy matches the page file.
func (d *Dataset) Validate(dk *disk.Disk) error {
	if d.Root == nil {
		return fmt.Errorf("join: dataset %q has no index", d.Name)
	}
	if err := d.Root.Validate(); err != nil {
		return fmt.Errorf("join: dataset %q: %w", d.Name, err)
	}
	if got := dk.NumPages(d.File); got != d.Pages {
		return fmt.Errorf("join: dataset %q declares %d pages, file has %d", d.Name, d.Pages, got)
	}
	// Several leaves may share a page (multi-resolution sequence indexes),
	// but every page must be covered and every leaf in range.
	leaves := d.Root.Leaves(nil)
	if len(leaves) < d.Pages {
		return fmt.Errorf("join: dataset %q has %d leaves for %d pages", d.Name, len(leaves), d.Pages)
	}
	seen := make(map[int]bool, d.Pages)
	for _, l := range leaves {
		if l.Page < 0 || l.Page >= d.Pages {
			return fmt.Errorf("join: dataset %q leaf page %d out of range", d.Name, l.Page)
		}
		seen[l.Page] = true
	}
	if len(seen) != d.Pages {
		return fmt.Errorf("join: dataset %q leaves cover %d of %d pages", d.Name, len(seen), d.Pages)
	}
	return nil
}

// Report is the cost breakdown of one join execution. All seconds are
// simulated/modeled, not wall-clock: I/O from the linear disk model, CPU
// from counted object comparisons, preprocessing from the clustering model.
type Report struct {
	Method string

	IOSeconds         float64 // simulated disk time
	CPUJoinSeconds    float64 // modeled comparison time
	PreprocessSeconds float64 // modeled clustering + scheduling time

	PageReads int64 // pages fetched from disk
	Seeks     int64 // fetches that were random
	Hits      int64 // buffer hits
	Misses    int64 // buffer misses

	Comparisons   int64 // object-pair comparisons performed
	Results       int64 // result pairs found
	MarkedEntries int   // prediction-matrix marks (0 for NLJ)
	Clusters      int   // clusters processed (0 for NLJ / pm-NLJ)
}

// Total returns the total simulated cost in seconds.
func (r *Report) Total() float64 {
	return r.IOSeconds + r.CPUJoinSeconds + r.PreprocessSeconds
}

func (r *Report) String() string {
	return fmt.Sprintf("%s: total=%.3fs (io=%.3fs cpu=%.3fs pre=%.3fs) reads=%d seeks=%d results=%d",
		r.Method, r.Total(), r.IOSeconds, r.CPUJoinSeconds, r.PreprocessSeconds,
		r.PageReads, r.Seeks, r.Results)
}

// Modeled CPU constants for preprocessing (§9.1 reports clustering as a
// small separate preprocessing cost). These are per-unit costs of the
// clustering and scheduling algorithms' dominant operations.
const (
	// SCEntryCost models the two passes of SC over the marked entries
	// (O(m), §7.1).
	SCEntryCost = 100e-9
	// CCEntryCost models CC's O(m^1.5) threshold-algorithm expansion
	// (§7.2); charged per unit of m^1.5.
	CCEntryCost = 200e-9
	// SchedEdgeCost models the O(|E| log |E|) greedy path construction
	// (§8); charged per edge log-factor unit.
	SchedEdgeCost = 100e-9
	// MatrixEntryCost models prediction-matrix construction work per sweep
	// event (§5.2). Reported separately; Figure 10 counts only clustering
	// as "Preprocess".
	MatrixEntryCost = 50e-9
)
