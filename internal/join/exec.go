package join

import (
	"sync"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

// Exec is the execution scope of one join run: the run's private I/O
// session, the buffer pool over it, and the report being built. Engine.Run
// constructs one and passes it to the executor body; external executors
// (ego, bfrj, pbsm) receive it the same way.
//
// The determinism contract, which the parallel path must uphold:
//
//   - All I/O goes through Pool/IO on the coordinating goroutine, in
//     exactly the order the serial executor would issue it. Workers never
//     touch the disk; they only compute over payloads the coordinator has
//     already fetched (payloads stay valid after eviction — the simulated
//     disk keeps pages resident).
//   - Comparison work is enqueued as tasks in schedule order via
//     JoinPayloads. Workers fill in each task's counters and pair buffer.
//   - Flush waits for the in-flight tasks and folds their results into Rep
//     in submission order, so float64 accumulation order, result counts,
//     and pair emission order are identical to the serial run.
type Exec struct {
	// IO is the run's disk session: its charges are independent of any
	// concurrent run and also folded into the global disk counters.
	IO *disk.Session
	// Pool is the run's buffer pool, reading through IO.
	Pool *buffer.Pool
	// Rep is the report under construction.
	Rep *Report

	eng   *Engine
	tasks []*pairTask
	// sent is the index into tasks of the first task not yet submitted to
	// the pool: tasks are shipped in batches (see execBatchTasks) because
	// one page pair is microseconds of work — far too fine to pay a pool
	// round trip for.
	sent int
	// free recycles pairTask allocations across Flush boundaries.
	free []*pairTask
	wg   sync.WaitGroup
}

// execBatchTasks is the number of page-pair tasks shipped to a worker per
// submission. One pair is ~1-10us of comparison work; batching amortizes
// the queue round trip and WaitGroup traffic without costing parallelism
// (clusters hold hundreds of pairs).
const execBatchTasks = 64

// pairTask is one page-pair comparison unit. The coordinator allocates it
// with the input payloads; a worker (or the coordinator itself, when
// serial) fills in the outputs; Flush merges them in submission order.
type pairTask struct {
	a, b    any
	joiner  ObjectJoiner
	capture bool

	comps   int64
	cpu     float64
	results int64
	pairs   [][2]int
}

func (t *pairTask) run() {
	emit := func(i, j int) {
		t.results++
		if t.capture {
			t.pairs = append(t.pairs, [2]int{i, j})
		}
	}
	t.comps, t.cpu = t.joiner.JoinPages(t.a, t.b, emit)
}

// Err returns the engine context's error, if any. Executors call it at
// cluster/block boundaries so cancellation is honored between units of
// work without perturbing the I/O accounting of completed units.
func (x *Exec) Err() error {
	if x.eng.Ctx == nil {
		return nil
	}
	return x.eng.Ctx.Err()
}

// Emit records one result pair inline (serial executors that interleave
// emission with their own bookkeeping use this instead of task dispatch).
func (x *Exec) Emit(a, b int) {
	x.Rep.Results++
	if x.eng.OnPair != nil {
		x.eng.OnPair(a, b)
	}
}

// JoinPayloads schedules the comparison of two already-fetched page
// payloads (a from the first dataset, b from the second). With a worker
// pool the task runs concurrently (batched; see execBatchTasks); without
// one it runs immediately. Either way its counters merge into Rep only at
// the next Flush, in submission order.
func (x *Exec) JoinPayloads(j ObjectJoiner, a, b any) {
	var t *pairTask
	if n := len(x.free); n > 0 {
		t = x.free[n-1]
		x.free = x.free[:n-1]
		*t = pairTask{pairs: t.pairs[:0]}
	} else {
		t = &pairTask{}
	}
	t.a, t.b, t.joiner, t.capture = a, b, j, x.eng.OnPair != nil
	x.tasks = append(x.tasks, t)
	if x.eng.Workers == nil {
		t.run()
		return
	}
	if len(x.tasks)-x.sent >= execBatchTasks {
		x.submit()
	}
}

// submit ships the pending task range to the pool as one batch. The batch
// captures a snapshot slice of *pairTask — stable under later appends to
// x.tasks, since only the backing array is ever reallocated.
func (x *Exec) submit() {
	batch := x.tasks[x.sent:len(x.tasks):len(x.tasks)]
	if len(batch) == 0 {
		return
	}
	x.sent = len(x.tasks)
	x.wg.Add(1)
	x.eng.Workers.Run(func() {
		defer x.wg.Done()
		for _, t := range batch {
			t.run()
		}
	})
}

// JoinPair fetches the page pair (pr of r, ps of s) through the pool — in
// that order, charging hits/misses exactly as the serial executor would —
// and schedules its comparison.
func (x *Exec) JoinPair(r, s *Dataset, pr, ps int, j ObjectJoiner) error {
	pa, err := x.Pool.Get(disk.PageAddr{File: r.File, Page: pr})
	if err != nil {
		return err
	}
	pb, err := x.Pool.Get(disk.PageAddr{File: s.File, Page: ps})
	if err != nil {
		return err
	}
	x.JoinPayloads(j, pa.Payload, pb.Payload)
	return nil
}

// Kick ships any pending comparison tasks to the workers without waiting.
// The engine calls it before coordinator-side work it wants overlapped with
// the comparisons (the prefetch step): tasks below the batching threshold
// would otherwise sit unsubmitted until Flush, serializing the two phases
// the pipeline exists to overlap. A no-op without workers, and harmless for
// determinism — Flush merges in submission order regardless of when the
// batch shipped.
func (x *Exec) Kick() {
	if x.eng.Workers != nil {
		x.submit()
	}
}

// Flush waits for every scheduled task and merges their outputs into Rep in
// submission order. Executors call it at the same boundaries where the
// buffer's pinned set turns over (cluster end, outer block end), bounding
// the number of outstanding tasks.
func (x *Exec) Flush() {
	if x.eng.Workers != nil {
		x.submit()
	}
	x.wg.Wait()
	for _, t := range x.tasks {
		x.Rep.Comparisons += t.comps
		x.Rep.CPUJoinSeconds += t.cpu
		x.Rep.Results += t.results
		if x.eng.OnPair != nil {
			for _, p := range t.pairs {
				x.eng.OnPair(p[0], p[1])
			}
		}
		t.a, t.b, t.joiner = nil, nil, nil // drop payload refs while pooled
	}
	x.free = append(x.free, x.tasks...)
	x.tasks = x.tasks[:0]
	x.sent = 0
}
