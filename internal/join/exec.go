package join

import (
	"sort"
	"sync"

	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/kernel"
)

// Exec is the execution scope of one join run: the run's private I/O
// session, the buffer pool over it, and the report being built. Engine.Run
// constructs one and passes it to the executor body; external executors
// (ego, bfrj, pbsm) receive it the same way.
//
// The determinism contract, which the parallel path must uphold:
//
//   - All I/O goes through Pool/IO on the coordinating goroutine, in
//     exactly the order the serial executor would issue it. Workers never
//     touch the disk; they only compute over payloads the coordinator has
//     already fetched (payloads stay valid after eviction — the simulated
//     disk keeps pages resident).
//   - Comparison work is enqueued as tasks in schedule order via
//     JoinPayloads (per page pair) or JoinCluster (per cell range of a
//     batched cluster). Workers fill in each task's outputs.
//   - Flush waits for the in-flight tasks and merges their results into Rep
//     in submission order — and, for block tasks, per cell within the task —
//     so float64 accumulation order, result counts, and pair emission order
//     are identical to the serial per-pair run.
type Exec struct {
	// IO is the run's disk session: its charges are independent of any
	// concurrent run and also folded into the global disk counters.
	IO *disk.Session
	// Pool is the run's buffer pool, reading through IO.
	Pool *buffer.Pool
	// Rep is the report under construction.
	Rep *Report

	eng   *Engine
	tasks []execTask
	// sent is the index into tasks of the first task not yet submitted to
	// the pool: pair tasks are shipped in batches (see execBatchTasks)
	// because one page pair is microseconds of work — far too fine to pay a
	// pool round trip for. Block tasks ship immediately.
	sent int
	// free and freeBlocks recycle task allocations across Flush boundaries.
	free       []*pairTask
	freeBlocks []*blockTask
	wg         sync.WaitGroup

	// Batched-cluster scratch, reused across clusters within the run. The
	// blocks and slices are referenced by in-flight block tasks, which Flush
	// retires before the next cluster rebuilds them.
	blockR, blockS       kernel.ClusterBlock
	idsR, idsS           [][]int
	payloadsR, payloadsS []any
	cells                []kernel.Cell
}

// execTask is one unit of comparison work: a worker (or the coordinator,
// when serial) calls run; Flush calls merge on the coordinator in submission
// order.
type execTask interface {
	run()
	merge(x *Exec)
}

// execBatchTasks is the number of page-pair tasks shipped to a worker per
// submission. One pair is ~1-10us of comparison work; batching amortizes
// the queue round trip and WaitGroup traffic without costing parallelism
// (clusters hold hundreds of pairs).
const execBatchTasks = 64

// blockTaskCells is the cell-range granularity of batched cluster dispatch:
// large clusters split into contiguous runs of this many marked cells, so
// the worker pool stays balanced without paying a task per page pair.
const blockTaskCells = 64

// pairTask is one page-pair comparison unit. The coordinator allocates it
// with the input payloads; a worker (or the coordinator itself, when
// serial) fills in the outputs; Flush merges them in submission order.
type pairTask struct {
	a, b    any
	joiner  ObjectJoiner
	capture bool

	comps   int64
	cpu     float64
	results int64
	pairs   [][2]int
}

func (t *pairTask) run() {
	emit := func(i, j int) {
		t.results++
		if t.capture {
			t.pairs = append(t.pairs, [2]int{i, j})
		}
	}
	t.comps, t.cpu = t.joiner.JoinPages(t.a, t.b, emit)
}

func (t *pairTask) merge(x *Exec) {
	x.Rep.Comparisons += t.comps
	x.Rep.CPUJoinSeconds += t.cpu
	x.Rep.Results += t.results
	if x.eng.OnPair != nil {
		for _, p := range t.pairs {
			x.eng.OnPair(p[0], p[1])
		}
	}
	t.a, t.b, t.joiner = nil, nil, nil // drop payload refs while pooled
	x.free = append(x.free, t)
}

// blockTask evaluates one contiguous range of a batched cluster's marked
// cells against the cluster's two flat blocks. Workers only read the shared
// blocks and id slices; each task owns its hit and pair buffers.
type blockTask struct {
	th      kernel.Threshold
	br, bs  *kernel.ClusterBlock
	cells   []kernel.Cell
	idsR    [][]int // per R-block page, the payload's object IDs
	idsS    [][]int
	capture bool

	results int64
	hits    []kernel.BlockHit
	pairs   [][2]int
}

func (t *blockTask) run() {
	t.hits = kernel.BlockPairsWithin(&t.th, t.br, t.bs, t.cells, t.hits[:0])
	t.results = int64(len(t.hits))
	if t.capture {
		for _, h := range t.hits {
			c := t.cells[h.Cell]
			t.pairs = append(t.pairs, [2]int{t.idsR[c.R][h.I], t.idsS[c.S][h.J]})
		}
	}
}

func (t *blockTask) merge(x *Exec) {
	// Fold counters per cell in submission order: the same expressions a
	// pairTask per cell would produce (VectorJoiner/SeriesJoiner kernels
	// path: comps = nR*nS, cpu = comps*perPair), added to the report in the
	// same sequence, so the float accumulation is bit-identical to the
	// per-pair path. Empty pages contribute exactly +0.0 either way.
	perPair := compareBaseCost + comparePerDimCost*float64(t.br.Dim())
	for _, c := range t.cells {
		comps := int64(t.br.PageRows(c.R)) * int64(t.bs.PageRows(c.S))
		x.Rep.Comparisons += comps
		x.Rep.CPUJoinSeconds += float64(comps) * perPair
	}
	x.Rep.Results += t.results
	if x.eng.OnPair != nil {
		for _, p := range t.pairs {
			x.eng.OnPair(p[0], p[1])
		}
	}
	t.br, t.bs, t.cells, t.idsR, t.idsS = nil, nil, nil, nil, nil
	t.results = 0
	t.pairs = t.pairs[:0]
	x.freeBlocks = append(x.freeBlocks, t)
}

// Err returns the engine context's error, if any. Executors call it at
// cluster/block boundaries so cancellation is honored between units of
// work without perturbing the I/O accounting of completed units.
func (x *Exec) Err() error {
	if x.eng.Ctx == nil {
		return nil
	}
	return x.eng.Ctx.Err()
}

// Emit records one result pair inline (serial executors that interleave
// emission with their own bookkeeping use this instead of task dispatch).
func (x *Exec) Emit(a, b int) {
	x.Rep.Results++
	if x.eng.OnPair != nil {
		x.eng.OnPair(a, b)
	}
}

// JoinPayloads schedules the comparison of two already-fetched page
// payloads (a from the first dataset, b from the second). With a worker
// pool the task runs concurrently (batched; see execBatchTasks); without
// one it runs immediately. Either way its counters merge into Rep only at
// the next Flush, in submission order.
func (x *Exec) JoinPayloads(j ObjectJoiner, a, b any) {
	var t *pairTask
	if n := len(x.free); n > 0 {
		t = x.free[n-1]
		x.free = x.free[:n-1]
		*t = pairTask{pairs: t.pairs[:0]}
	} else {
		t = &pairTask{}
	}
	t.a, t.b, t.joiner, t.capture = a, b, j, x.eng.OnPair != nil
	x.tasks = append(x.tasks, t)
	if x.eng.Workers == nil {
		t.run()
		return
	}
	if len(x.tasks)-x.sent >= execBatchTasks {
		x.submit()
	}
}

// submit ships the pending task range to the pool as one batch. The batch
// captures a snapshot slice of execTask — stable under later appends to
// x.tasks, since only the backing array is ever reallocated.
func (x *Exec) submit() {
	batch := x.tasks[x.sent:len(x.tasks):len(x.tasks)]
	if len(batch) == 0 {
		return
	}
	x.sent = len(x.tasks)
	x.wg.Add(1)
	x.eng.Workers.Run(func() {
		defer x.wg.Done()
		for _, t := range batch {
			t.run()
		}
	})
}

// JoinPair fetches the page pair (pr of r, ps of s) through the pool — in
// that order, charging hits/misses exactly as the serial executor would —
// and schedules its comparison.
func (x *Exec) JoinPair(r, s *Dataset, pr, ps int, j ObjectJoiner) error {
	pa, err := x.Pool.Get(disk.PageAddr{File: r.File, Page: pr})
	if err != nil {
		return err
	}
	pb, err := x.Pool.Get(disk.PageAddr{File: s.File, Page: ps})
	if err != nil {
		return err
	}
	x.JoinPayloads(j, pa.Payload, pb.Payload)
	return nil
}

// JoinCluster evaluates every marked entry of one pinned cluster as batched
// block tasks — the clustered executor's only sanctioned batch dispatch
// site. The per-entry fetch sequence of a JoinPair loop is replayed exactly
// (R then S per entry, charging pool hits/misses and touching LRU recency
// identically), then one flat block per side is built from the distinct
// pinned pages and the cluster's cells ship as contiguous ranges of
// blockTaskCells. Flush's per-cell fold keeps Report, pair order, and every
// counter bit-identical to the per-pair path at any parallelism.
func (x *Exec) JoinCluster(r, s *Dataset, c *cluster.Cluster, j BatchJoiner, th kernel.Threshold) error {
	rows, cols := c.Rows(), c.Cols()
	if cap(x.payloadsR) < len(rows) {
		x.payloadsR = make([]any, len(rows))
	}
	if cap(x.payloadsS) < len(cols) {
		x.payloadsS = make([]any, len(cols))
	}
	// Every row/col of a cluster appears in at least one entry (they are
	// derived from the entry set), so each payload slot below is written.
	x.payloadsR = x.payloadsR[:len(rows)]
	x.payloadsS = x.payloadsS[:len(cols)]
	x.cells = x.cells[:0]
	for _, en := range c.Entries {
		pa, err := x.Pool.Get(disk.PageAddr{File: r.File, Page: en.R})
		if err != nil {
			return err
		}
		pb, err := x.Pool.Get(disk.PageAddr{File: s.File, Page: en.C})
		if err != nil {
			return err
		}
		ri := sort.SearchInts(rows, en.R)
		ci := sort.SearchInts(cols, en.C)
		x.payloadsR[ri] = pa.Payload
		x.payloadsS[ci] = pb.Payload
		x.cells = append(x.cells, kernel.Cell{R: ri, S: ci})
	}
	// Concatenate each side's flat pages into one block, timed through the
	// metrics hook (a nil collector just runs the closure; internal/join
	// itself takes no wall clocks).
	x.eng.Metrics.ClusterBatchBuild(func() (int, int) {
		x.blockR.Reset()
		x.idsR = x.idsR[:0]
		for _, p := range x.payloadsR {
			f, ids := j.BatchPage(p)
			x.blockR.AddPage(f)
			x.idsR = append(x.idsR, ids)
		}
		x.blockS.Reset()
		x.idsS = x.idsS[:0]
		for _, p := range x.payloadsS {
			f, ids := j.BatchPage(p)
			x.blockS.AddPage(f)
			x.idsS = append(x.idsS, ids)
		}
		return len(x.cells), x.blockR.Rows() + x.blockS.Rows()
	})
	for lo := 0; lo < len(x.cells); lo += blockTaskCells {
		hi := lo + blockTaskCells
		if hi > len(x.cells) {
			hi = len(x.cells)
		}
		var t *blockTask
		if n := len(x.freeBlocks); n > 0 {
			t = x.freeBlocks[n-1]
			x.freeBlocks = x.freeBlocks[:n-1]
		} else {
			t = &blockTask{}
		}
		t.th, t.br, t.bs = th, &x.blockR, &x.blockS
		t.cells = x.cells[lo:hi:hi]
		t.idsR, t.idsS = x.idsR, x.idsS
		t.capture = x.eng.OnPair != nil
		x.tasks = append(x.tasks, t)
		if x.eng.Workers == nil {
			t.run()
		} else {
			// A block task is a coarse unit (up to blockTaskCells page
			// pairs): ship it — and any pending pair tasks — immediately.
			x.submit()
		}
	}
	return nil
}

// Kick ships any pending comparison tasks to the workers without waiting.
// The engine calls it before coordinator-side work it wants overlapped with
// the comparisons (the prefetch step): tasks below the batching threshold
// would otherwise sit unsubmitted until Flush, serializing the two phases
// the pipeline exists to overlap. A no-op without workers, and harmless for
// determinism — Flush merges in submission order regardless of when the
// batch shipped.
func (x *Exec) Kick() {
	if x.eng.Workers != nil {
		x.submit()
	}
}

// Flush waits for every scheduled task and merges their outputs into Rep in
// submission order. Executors call it at the same boundaries where the
// buffer's pinned set turns over (cluster end, outer block end), bounding
// the number of outstanding tasks.
func (x *Exec) Flush() {
	if x.eng.Workers != nil {
		x.submit()
	}
	x.wg.Wait()
	for _, t := range x.tasks {
		t.merge(x)
	}
	x.tasks = x.tasks[:0]
	x.sent = 0
}
