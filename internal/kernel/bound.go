package kernel

import (
	"math"

	"pmjoin/internal/geom"
)

// Bound is a precompiled MBR lower-bound ε-test: Within(a, b) reports
// scale * n.MinDist(a, b) <= eps bit-identically to that reference
// computation — for prediction-matrix construction and index joins, where
// the reference allocates a gap vector and computes a full distance per
// node pair. Bound walks the dimensions once with per-dimension early
// abandon and no allocation.
//
// A Bound is immutable after construction and safe for concurrent use.
type Bound struct {
	t Threshold
	// scale multiplies MinDist in the reference (predictors restoring a
	// dimensionality-reduced bound); the statistic limits in t fold it in.
	scale float64
	// emptyWithin is the precomputed outcome for empty MBRs, whose MinDist
	// is +Inf: fl(scale*Inf) <= eps.
	emptyWithin bool
}

// NewBound returns the test equivalent to scale*n.MinDist(a, b) <= eps, or
// nil when no exactness guarantee can be given (scale zero, negative or NaN
// — callers fall back to the reference path). A scale of 1 reproduces plain
// MinDist.
func NewBound(n geom.Norm, scale, eps float64) *Bound {
	if math.IsNaN(scale) || scale <= 0 {
		return nil
	}
	b := &Bound{scale: scale, emptyWithin: scale*math.Inf(1) <= eps}
	b.t.p = n.P
	if math.IsNaN(eps) || eps < 0 {
		// The scaled distance is non-negative or NaN; the comparison is
		// always false.
		b.t.never = true
		return b
	}
	switch n.P {
	case 0, 1:
		// Statistic is the gap distance itself: largest t with
		// fl(scale*t) <= eps. Multiplication by a positive constant is
		// monotone under correct rounding, so the bit-search boundary is
		// exact.
		b.t.lim = maxFloatWithin(func(v float64) bool { return scale*v <= eps })
	case 2:
		// Largest t with fl(scale*fl(sqrt(t))) <= eps; the composition of
		// two monotone correctly rounded maps is monotone.
		b.t.lim = maxFloatWithin(func(v float64) bool { return scale*math.Sqrt(v) <= eps })
	default:
		b.t.setPowBand(n.P, scale, eps)
	}
	return b
}

// Within reports whether the scaled MBR lower-bound distance between a and b
// passes the threshold. It reproduces geom.Norm.MinDist exactly: the same
// emptiness test, the same gap arithmetic per dimension, the same
// accumulation order.
func (b *Bound) Within(a, c geom.MBR) bool {
	if a.IsEmpty() || c.IsEmpty() {
		return b.emptyWithin
	}
	if b.t.never {
		return false
	}
	t := &b.t
	switch t.p {
	case 0:
		lim := t.lim
		for i := range a.Min {
			if g := gapDim(a, c, i); g > lim {
				return false
			}
		}
		return true
	case 1:
		var s float64
		lim := t.lim
		for i := range a.Min {
			s += gapDim(a, c, i)
			if s > lim {
				return false
			}
		}
		return s <= lim
	case 2:
		var s float64
		lim := t.lim
		for i := range a.Min {
			g := gapDim(a, c, i)
			s += g * g
			if s > lim {
				return false
			}
		}
		return s <= lim
	default:
		var s float64
		for i := range a.Min {
			s += geom.PowInt(gapDim(a, c, i), t.p)
			if s > t.hi {
				return false
			}
		}
		if s <= t.lo {
			return true
		}
		return t.scale*math.Pow(s, t.invP) <= t.eps
	}
}

// WithinPoint is Within for a point against an MBR, mirroring
// geom.Norm.MinDistPoint.
func (b *Bound) WithinPoint(p []float64, m geom.MBR) bool {
	if m.IsEmpty() {
		return b.emptyWithin
	}
	if b.t.never {
		return false
	}
	t := &b.t
	switch t.p {
	case 0:
		lim := t.lim
		for i, pv := range p {
			if g := gapPointDim(pv, m, i); g > lim {
				return false
			}
		}
		return true
	case 1:
		var s float64
		lim := t.lim
		for i, pv := range p {
			s += gapPointDim(pv, m, i)
			if s > lim {
				return false
			}
		}
		return s <= lim
	case 2:
		var s float64
		lim := t.lim
		for i, pv := range p {
			g := gapPointDim(pv, m, i)
			s += g * g
			if s > lim {
				return false
			}
		}
		return s <= lim
	default:
		var s float64
		for i, pv := range p {
			s += geom.PowInt(gapPointDim(pv, m, i), t.p)
			if s > t.hi {
				return false
			}
		}
		if s <= t.lo {
			return true
		}
		return t.scale*math.Pow(s, t.invP) <= t.eps
	}
}

// gapDim is the per-dimension separation of two MBRs — the same three-way
// branch MinDist uses, yielding 0 when the extents overlap. The result is
// never negative (NaN extents take the overlap branch, as in the reference).
func gapDim(a, c geom.MBR, i int) float64 {
	switch {
	case c.Min[i] > a.Max[i]:
		return c.Min[i] - a.Max[i]
	case a.Min[i] > c.Max[i]:
		return a.Min[i] - c.Max[i]
	default:
		return 0
	}
}

// gapPointDim is the per-dimension separation of a point and an MBR,
// mirroring MinDistPoint.
func gapPointDim(p float64, m geom.MBR, i int) float64 {
	switch {
	case p < m.Min[i]:
		return m.Min[i] - p
	case p > m.Max[i]:
		return p - m.Max[i]
	default:
		return 0
	}
}
