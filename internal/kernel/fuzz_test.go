package kernel

import (
	"math"
	"testing"

	"pmjoin/internal/geom"
)

// FuzzKernelVsReference is the package's exactness contract as a fuzz target:
// for arbitrary vectors and thresholds, under L1, L2, L3 and L∞,
// kernel.WithinDist must agree with the reference n.Dist(a, b) <= eps —
// boundary equality included — and the batched FlatPage kernel must agree
// with the per-point test.
func FuzzKernelVsReference(f *testing.F) {
	// Seeds: interior, boundary-exact (3-4-5 triangle under L2), just-off
	// boundary, zero threshold, huge and tiny magnitudes.
	f.Add(0.0, 0.0, 3.0, 4.0, 5.0)
	f.Add(0.0, 0.0, 3.0, 4.0, 4.999999999999999)
	f.Add(0.0, 0.0, 3.0, 4.0, 5.000000000000001)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0)
	f.Add(-1e150, 2.0, 1e150, -2.0, 1e150)
	f.Add(1e-300, 0.0, -1e-300, 0.0, 1e-300)
	f.Add(0.1, 0.2, 0.3, 0.4, 0.28284271247461906)

	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}}

	// hiDim spreads the four fuzz coordinates across a 19-dimensional pair —
	// two full 8-blocks plus a tail — so the blocked batch loops and their
	// banded fallback run against the same exactness contract as dim 2.
	const hiDim = 19
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, eps float64) {
		vecs := [][2]geom.Vector{{{ax, ay}, {bx, by}}}
		ha := make(geom.Vector, hiDim)
		hb := make(geom.Vector, hiDim)
		for i := range ha {
			switch i % 4 {
			case 0:
				ha[i], hb[i] = ax, bx
			case 1:
				ha[i], hb[i] = ay, by
			case 2:
				ha[i], hb[i] = ax/8, by/8
			default:
				ha[i], hb[i] = 0, (bx-ay)/16
			}
		}
		vecs = append(vecs, [2]geom.Vector{ha, hb})
		for _, pair := range vecs {
			a, b := pair[0], pair[1]
			fuzzCheckPair(t, norms, a, b, eps)
		}
	})
}

// fuzzCheckPair asserts the exactness contract for one vector pair: Within
// against the reference comparison (raw, boundary-exact and one-ulp-off
// thresholds), and the batch kernel against the per-point test.
func fuzzCheckPair(t *testing.T, norms []geom.Norm, a, b geom.Vector, eps float64) {
	for _, n := range norms {
		// Fuzz both the raw threshold and one landing exactly on the
		// computed distance, so boundary equality is always exercised.
		cands := []float64{eps}
		if d := n.Dist(a, b); !math.IsNaN(d) {
			cands = append(cands, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
		}
		for _, e := range cands {
			want := n.Dist(a, b) <= e
			th := NewThreshold(n, e)
			if got := th.Within(a, b); got != want {
				t.Fatalf("%v eps %.17g a %v b %v: Within = %v, reference = %v",
					n, e, a, b, got, want)
			}
			// Batch kernel over a page holding b (twice, plus a decoy),
			// through both the vector and the scalar blocked paths.
			decoy := b.Clone()
			decoy[0] += 1e10
			page := NewFlatPage(len(b), 3)
			page.AppendRow(b)
			page.AppendRow(decoy)
			page.AppendRow(b)
			saved := useSIMD
			for _, mode := range []bool{hasSIMD, false} {
				useSIMD = mode
				hits := PagePairWithin(&th, a, page, nil)
				for k := 0; k < page.N; k++ {
					inHits := false
					for _, h := range hits {
						if h == k {
							inHits = true
						}
					}
					if pw := th.Within(a, page.Row(k)); pw != inHits {
						t.Fatalf("%v eps %.17g simd %v: batch row %d = %v, per-point = %v",
							n, e, mode, k, inHits, pw)
					}
				}
			}
			useSIMD = saved
		}
	}
}

// FuzzBoundVsMinDist fuzzes the MBR bound against the reference scaled
// MinDist comparison, including empty rectangles and boundary thresholds.
func FuzzBoundVsMinDist(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 3.0, 1.0, 1.0)
	f.Add(0.0, 1.0, 1.0, 2.0, 0.5, 0.0)
	f.Add(-5.0, -1.0, 1.0, 5.0, 2.0, 3.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 0.0)

	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}}

	f.Fuzz(func(t *testing.T, aLo, aHi, cLo, cHi, scale, eps float64) {
		a := geom.NewMBR(geom.Vector{aLo, aLo})
		a.ExtendPoint(geom.Vector{aHi, aHi})
		c := geom.NewMBR(geom.Vector{cLo, cLo})
		c.ExtendPoint(geom.Vector{cHi, cHi})
		for _, n := range norms {
			b := NewBound(n, scale, eps)
			refOK := !math.IsNaN(scale) && scale > 0
			if (b != nil) != refOK {
				t.Fatalf("%v scale %g: bound nil-ness %v, want usable %v", n, scale, b == nil, refOK)
			}
			if b == nil {
				continue
			}
			cands := []float64{eps}
			if d := scale * n.MinDist(a, c); !math.IsNaN(d) && !math.IsInf(d, 0) {
				cands = append(cands, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
			}
			for _, e := range cands {
				be := NewBound(n, scale, e)
				if got, want := be.Within(a, c), scale*n.MinDist(a, c) <= e; got != want {
					t.Fatalf("%v scale %.17g eps %.17g a %v c %v: Within = %v, reference = %v",
						n, scale, e, a, c, got, want)
				}
			}
		}
	})
}
