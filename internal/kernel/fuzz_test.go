package kernel

import (
	"math"
	"testing"

	"pmjoin/internal/geom"
)

// FuzzKernelVsReference is the package's exactness contract as a fuzz target:
// for arbitrary vectors and thresholds, under L1, L2, L3 and L∞,
// kernel.WithinDist must agree with the reference n.Dist(a, b) <= eps —
// boundary equality included — and the batched FlatPage kernel must agree
// with the per-point test.
func FuzzKernelVsReference(f *testing.F) {
	// Seeds: interior, boundary-exact (3-4-5 triangle under L2), just-off
	// boundary, zero threshold, huge and tiny magnitudes.
	f.Add(0.0, 0.0, 3.0, 4.0, 5.0)
	f.Add(0.0, 0.0, 3.0, 4.0, 4.999999999999999)
	f.Add(0.0, 0.0, 3.0, 4.0, 5.000000000000001)
	f.Add(1.0, 1.0, 1.0, 1.0, 0.0)
	f.Add(-1e150, 2.0, 1e150, -2.0, 1e150)
	f.Add(1e-300, 0.0, -1e-300, 0.0, 1e-300)
	f.Add(0.1, 0.2, 0.3, 0.4, 0.28284271247461906)

	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}}

	// hiDim spreads the four fuzz coordinates across a 19-dimensional pair —
	// two full 8-blocks plus a tail — so the blocked batch loops and their
	// banded fallback run against the same exactness contract as dim 2.
	const hiDim = 19
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, eps float64) {
		vecs := [][2]geom.Vector{{{ax, ay}, {bx, by}}}
		ha := make(geom.Vector, hiDim)
		hb := make(geom.Vector, hiDim)
		for i := range ha {
			switch i % 4 {
			case 0:
				ha[i], hb[i] = ax, bx
			case 1:
				ha[i], hb[i] = ay, by
			case 2:
				ha[i], hb[i] = ax/8, by/8
			default:
				ha[i], hb[i] = 0, (bx-ay)/16
			}
		}
		vecs = append(vecs, [2]geom.Vector{ha, hb})
		for _, pair := range vecs {
			a, b := pair[0], pair[1]
			fuzzCheckPair(t, norms, a, b, eps)
		}
	})
}

// fuzzCheckPair asserts the exactness contract for one vector pair: Within
// against the reference comparison (raw, boundary-exact and one-ulp-off
// thresholds), and the batch kernel against the per-point test.
func fuzzCheckPair(t *testing.T, norms []geom.Norm, a, b geom.Vector, eps float64) {
	for _, n := range norms {
		// Fuzz both the raw threshold and one landing exactly on the
		// computed distance, so boundary equality is always exercised.
		cands := []float64{eps}
		if d := n.Dist(a, b); !math.IsNaN(d) {
			cands = append(cands, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
		}
		for _, e := range cands {
			want := n.Dist(a, b) <= e
			th := NewThreshold(n, e)
			if got := th.Within(a, b); got != want {
				t.Fatalf("%v eps %.17g a %v b %v: Within = %v, reference = %v",
					n, e, a, b, got, want)
			}
			// Batch kernel over a page holding b (twice, plus a decoy),
			// through both the vector and the scalar blocked paths.
			decoy := b.Clone()
			decoy[0] += 1e10
			page := NewFlatPage(len(b), 3)
			page.AppendRow(b)
			page.AppendRow(decoy)
			page.AppendRow(b)
			saved := useSIMD
			for _, mode := range []bool{hasSIMD, false} {
				useSIMD = mode
				hits := PagePairWithin(&th, a, page, nil)
				for k := 0; k < page.N; k++ {
					inHits := false
					for _, h := range hits {
						if h == k {
							inHits = true
						}
					}
					if pw := th.Within(a, page.Row(k)); pw != inHits {
						t.Fatalf("%v eps %.17g simd %v: batch row %d = %v, per-point = %v",
							n, e, mode, k, inHits, pw)
					}
				}
			}
			useSIMD = saved
		}
	}
}

// FuzzBlockVsPagePair fuzzes the cluster-batched kernel against per-pair
// PagePairWithin loops: random pages (NaN/Inf coordinates arrive through the
// fuzzed floats), L1/L2/L∞/L3 thresholds including exact-boundary and
// one-ulp-off candidates, and marked-cell lists with runs, repeats, and empty
// pages. BlockPairsWithin must emit the identical hit sequence and the
// formula comparison count must equal the loop's, with the vector path on
// and off.
func FuzzBlockVsPagePair(f *testing.F) {
	f.Add(0.0, 0.0, 3.0, 4.0, 5.0, uint8(1), uint8(0))
	f.Add(0.5, -0.5, 0.25, -0.25, 0.75, uint8(2), uint8(3))
	f.Add(1e150, -1e150, 1e-300, 0.0, 1e150, uint8(3), uint8(7))
	f.Add(0.1, 0.2, 0.3, 0.4, -1.0, uint8(0), uint8(5))
	f.Add(math.Inf(1), 0.0, math.NaN(), 1.0, 2.0, uint8(2), uint8(1))

	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}}
	dims := []int{2, 8, 16, 19}

	f.Fuzz(func(t *testing.T, v0, v1, v2, v3, eps float64, dimSel, shape uint8) {
		dim := dims[int(dimSel)%len(dims)]
		vals := [4]float64{v0, v1, v2, v3}
		mkPage := func(n, salt int) *FlatPage {
			p := NewFlatPage(dim, n)
			row := make([]float64, dim)
			for i := 0; i < n; i++ {
				for d := range row {
					row[d] = vals[(i+d+salt)%4] / float64(1+(d+salt)%3)
				}
				p.AppendRow(row)
			}
			return p
		}
		pagesR := []*FlatPage{
			mkPage(3, 0),
			mkPage(int(shape)%5, 1), // possibly empty
			mkPage(5, 2),
		}
		pagesS := []*FlatPage{
			mkPage(4, 3),
			mkPage(int(shape>>2)%4, 4), // possibly empty
			mkPage(6, 5),
		}
		br := &ClusterBlock{}
		br.Reset()
		bs := &ClusterBlock{}
		bs.Reset()
		for _, p := range pagesR {
			br.AddPage(p)
		}
		for _, p := range pagesS {
			bs.AddPage(p)
		}
		// Column-major runs plus scattered repeats; shape varies the list.
		cells := []Cell{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 2}, {2, 2}}
		if shape&1 != 0 {
			cells = append(cells, Cell{0, 0}, Cell{2, 1})
		}
		saved := useSIMD
		defer func() { useSIMD = saved }()
		for _, n := range norms {
			cands := []float64{eps}
			if pagesR[0].N > 0 && pagesS[0].N > 0 {
				if d := n.Dist(pagesR[0].Row(0), pagesS[0].Row(0)); !math.IsNaN(d) {
					cands = append(cands, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
				}
			}
			for _, e := range cands {
				th := NewThreshold(n, e)
				useSIMD = false
				want, wantComps := refBlockHits(&th, pagesR, pagesS, cells)
				var comps int64
				for _, c := range cells {
					comps += int64(br.PageRows(c.R)) * int64(bs.PageRows(c.S))
				}
				if comps != wantComps {
					t.Fatalf("%v eps %.17g: block comps %d, loop comps %d", n, e, comps, wantComps)
				}
				for _, mode := range []bool{false, hasSIMD} {
					useSIMD = mode
					got := BlockPairsWithin(&th, br, bs, cells, nil)
					if len(got) != len(want) {
						t.Fatalf("%v eps %.17g simd %v: %d hits, want %d", n, e, mode, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%v eps %.17g simd %v: hit %d = %v, want %v", n, e, mode, i, got[i], want[i])
						}
					}
				}
			}
		}
	})
}

// FuzzBoundVsMinDist fuzzes the MBR bound against the reference scaled
// MinDist comparison, including empty rectangles and boundary thresholds.
func FuzzBoundVsMinDist(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 3.0, 1.0, 1.0)
	f.Add(0.0, 1.0, 1.0, 2.0, 0.5, 0.0)
	f.Add(-5.0, -1.0, 1.0, 5.0, 2.0, 3.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 0.0)

	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}}

	f.Fuzz(func(t *testing.T, aLo, aHi, cLo, cHi, scale, eps float64) {
		a := geom.NewMBR(geom.Vector{aLo, aLo})
		a.ExtendPoint(geom.Vector{aHi, aHi})
		c := geom.NewMBR(geom.Vector{cLo, cLo})
		c.ExtendPoint(geom.Vector{cHi, cHi})
		for _, n := range norms {
			b := NewBound(n, scale, eps)
			refOK := !math.IsNaN(scale) && scale > 0
			if (b != nil) != refOK {
				t.Fatalf("%v scale %g: bound nil-ness %v, want usable %v", n, scale, b == nil, refOK)
			}
			if b == nil {
				continue
			}
			cands := []float64{eps}
			if d := scale * n.MinDist(a, c); !math.IsNaN(d) && !math.IsInf(d, 0) {
				cands = append(cands, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
			}
			for _, e := range cands {
				be := NewBound(n, scale, e)
				if got, want := be.Within(a, c), scale*n.MinDist(a, c) <= e; got != want {
					t.Fatalf("%v scale %.17g eps %.17g a %v c %v: Within = %v, reference = %v",
						n, scale, e, a, c, got, want)
				}
			}
		}
	})
}
