// AVX2+FMA row-sum kernels behind the batched page-pair ε-tests. Each
// routine computes, for every row k of a flat row-major block, the re-summed
// distance statistic against one probe vector:
//
//	l2SumsAsm: sums[k] = Σ_j (probe[j] - data[k*dim+j])²
//	l1SumsAsm: sums[k] = Σ_j |probe[j] - data[k*dim+j]|
//
// The 4-probe variants (l2Sums4Asm / l1Sums4Asm) behind the cluster-batched
// block kernel evaluate four contiguous probe rows per pass, sharing each
// data-chunk load across four accumulator sets and amortizing the horizontal
// reduction (one 4-way transpose reduce per data row instead of four scalar
// reduces); they require dim to be a multiple of 4 and store the four sums
// of data row k interleaved at sums[4k .. 4k+3].
//
// The vector lanes re-associate the addition (and the FMA skips the
// intermediate rounding of the multiply), so these sums are NOT bit-equal to
// the sequential reference; the Go caller compares them against banded
// limits and re-runs the exact sequential test on the sliver the band cannot
// decide (see pagePairSumBlocked). Guarded by hasAVX2FMA.

//go:build amd64

#include "textflag.h"

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+24(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA, $32

// func l2SumsAsm(probe []float64, data []float64, sums []float64, dim int)
TEXT ·l2SumsAsm(SB), NOSPLIT, $0-80
	MOVQ probe_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	MOVQ dim+72(FP), R9
	TESTQ R8, R8
	JZ   l2done

l2row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   R9, CX
	MOVQ   SI, R11

l2loop8:
	CMPQ CX, $8
	JLT  l2loop4
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VFMADD231PD Y2, Y2, Y0
	VMOVUPD 32(R11), Y4
	VMOVUPD 32(DI), Y5
	VSUBPD  Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y1
	ADDQ $64, R11
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  l2loop8

l2loop4:
	CMPQ CX, $4
	JLT  l2reduce
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VFMADD231PD Y2, Y2, Y0
	ADDQ $32, R11
	ADDQ $32, DI
	SUBQ $4, CX

l2reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

l2tail:
	TESTQ CX, CX
	JZ    l2store
	VMOVSD (R11), X2
	VSUBSD (DI), X2, X2
	VFMADD231SD X2, X2, X0
	ADDQ $8, R11
	ADDQ $8, DI
	DECQ CX
	JMP  l2tail

l2store:
	VMOVSD X0, (R10)
	ADDQ   $8, R10
	DECQ   R8
	JNZ    l2row

l2done:
	VZEROUPPER
	RET

// func l1SumsAsm(probe []float64, data []float64, sums []float64, dim int)
TEXT ·l1SumsAsm(SB), NOSPLIT, $0-80
	MOVQ probe_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	MOVQ dim+72(FP), R9
	VMOVUPD absmask<>(SB), Y6
	TESTQ R8, R8
	JZ   l1done

l1row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   R9, CX
	MOVQ   SI, R11

l1loop8:
	CMPQ CX, $8
	JLT  l1loop4
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VANDPD  Y6, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(R11), Y4
	VMOVUPD 32(DI), Y5
	VSUBPD  Y5, Y4, Y4
	VANDPD  Y6, Y4, Y4
	VADDPD  Y4, Y1, Y1
	ADDQ $64, R11
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  l1loop8

l1loop4:
	CMPQ CX, $4
	JLT  l1reduce
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VANDPD  Y6, Y2, Y2
	VADDPD  Y2, Y0, Y0
	ADDQ $32, R11
	ADDQ $32, DI
	SUBQ $4, CX

l1reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

l1tail:
	TESTQ CX, CX
	JZ    l1store
	VMOVSD (R11), X2
	VSUBSD (DI), X2, X2
	VANDPD X6, X2, X2
	VADDSD X2, X0, X0
	ADDQ $8, R11
	ADDQ $8, DI
	DECQ CX
	JMP  l1tail

l1store:
	VMOVSD X0, (R10)
	ADDQ   $8, R10
	DECQ   R8
	JNZ    l1row

l1done:
	VZEROUPPER
	RET

// func l2Sums4Asm(probes []float64, data []float64, sums []float64, dim int)
//
// probes holds four contiguous rows (len 4*dim); sums holds 4 interleaved
// sums per data row (len 4*rows). dim must be a multiple of 4. Accumulators:
// Y0-Y3 even chunks, Y4-Y7 odd chunks (one pair per probe); Y8/Y9 the shared
// data chunks; Y10/Y11 rotating difference temps.
TEXT ·l2Sums4Asm(SB), NOSPLIT, $0-80
	MOVQ probes_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	SHRQ $2, R8              // rows = len(sums)/4
	MOVQ dim+72(FP), R9
	TESTQ R8, R8
	JZ   l2x4done
	MOVQ R9, AX
	SHLQ $3, AX              // row stride in bytes
	LEAQ (SI)(AX*1), R12     // probe row 1
	LEAQ (R12)(AX*1), R13    // probe row 2
	LEAQ (R13)(AX*1), R14    // probe row 3

l2x4row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ   R9, CX
	XORQ   BX, BX            // byte offset into the probe rows

l2x4loop8:
	CMPQ CX, $8
	JLT  l2x4loop4
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VMOVUPD (SI)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VFMADD231PD Y10, Y10, Y0
	VMOVUPD (R12)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VFMADD231PD Y11, Y11, Y1
	VMOVUPD (R13)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VFMADD231PD Y10, Y10, Y2
	VMOVUPD (R14)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VFMADD231PD Y11, Y11, Y3
	VMOVUPD 32(SI)(BX*1), Y10
	VSUBPD  Y9, Y10, Y10
	VFMADD231PD Y10, Y10, Y4
	VMOVUPD 32(R12)(BX*1), Y11
	VSUBPD  Y9, Y11, Y11
	VFMADD231PD Y11, Y11, Y5
	VMOVUPD 32(R13)(BX*1), Y10
	VSUBPD  Y9, Y10, Y10
	VFMADD231PD Y10, Y10, Y6
	VMOVUPD 32(R14)(BX*1), Y11
	VSUBPD  Y9, Y11, Y11
	VFMADD231PD Y11, Y11, Y7
	ADDQ $64, DI
	ADDQ $64, BX
	SUBQ $8, CX
	JMP  l2x4loop8

l2x4loop4:
	CMPQ CX, $4
	JLT  l2x4reduce
	VMOVUPD (DI), Y8
	VMOVUPD (SI)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VFMADD231PD Y10, Y10, Y0
	VMOVUPD (R12)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VFMADD231PD Y11, Y11, Y1
	VMOVUPD (R13)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VFMADD231PD Y10, Y10, Y2
	VMOVUPD (R14)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VFMADD231PD Y11, Y11, Y3
	ADDQ $32, DI
	ADDQ $32, BX
	SUBQ $4, CX

l2x4reduce:
	// Fold odd-chunk accumulators into the even ones, then transpose-reduce
	// the four lane sums into one vector [s0 s1 s2 s3].
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3
	VHADDPD Y1, Y0, Y8       // [a0+a1, b0+b1, a2+a3, b2+b3]
	VHADDPD Y3, Y2, Y9       // [c0+c1, d0+d1, c2+c3, d2+d3]
	VPERM2F128 $0x20, Y9, Y8, Y10
	VPERM2F128 $0x31, Y9, Y8, Y11
	VADDPD Y11, Y10, Y10
	VMOVUPD Y10, (R10)
	ADDQ $32, R10
	DECQ R8
	JNZ  l2x4row

l2x4done:
	VZEROUPPER
	RET

// func l1Sums4Asm(probes []float64, data []float64, sums []float64, dim int)
//
// The L1 statistic of l2Sums4Asm: same layout and dim%4 requirement, with
// the absolute value masked via absmask in Y12.
TEXT ·l1Sums4Asm(SB), NOSPLIT, $0-80
	MOVQ probes_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	SHRQ $2, R8
	MOVQ dim+72(FP), R9
	VMOVUPD absmask<>(SB), Y12
	TESTQ R8, R8
	JZ   l1x4done
	MOVQ R9, AX
	SHLQ $3, AX
	LEAQ (SI)(AX*1), R12
	LEAQ (R12)(AX*1), R13
	LEAQ (R13)(AX*1), R14

l1x4row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ   R9, CX
	XORQ   BX, BX

l1x4loop8:
	CMPQ CX, $8
	JLT  l1x4loop4
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9
	VMOVUPD (SI)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y0, Y0
	VMOVUPD (R12)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y1, Y1
	VMOVUPD (R13)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y2, Y2
	VMOVUPD (R14)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y3, Y3
	VMOVUPD 32(SI)(BX*1), Y10
	VSUBPD  Y9, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y4, Y4
	VMOVUPD 32(R12)(BX*1), Y11
	VSUBPD  Y9, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y5, Y5
	VMOVUPD 32(R13)(BX*1), Y10
	VSUBPD  Y9, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y6, Y6
	VMOVUPD 32(R14)(BX*1), Y11
	VSUBPD  Y9, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y7, Y7
	ADDQ $64, DI
	ADDQ $64, BX
	SUBQ $8, CX
	JMP  l1x4loop8

l1x4loop4:
	CMPQ CX, $4
	JLT  l1x4reduce
	VMOVUPD (DI), Y8
	VMOVUPD (SI)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y0, Y0
	VMOVUPD (R12)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y1, Y1
	VMOVUPD (R13)(BX*1), Y10
	VSUBPD  Y8, Y10, Y10
	VANDPD  Y12, Y10, Y10
	VADDPD  Y10, Y2, Y2
	VMOVUPD (R14)(BX*1), Y11
	VSUBPD  Y8, Y11, Y11
	VANDPD  Y12, Y11, Y11
	VADDPD  Y11, Y3, Y3
	ADDQ $32, DI
	ADDQ $32, BX
	SUBQ $4, CX

l1x4reduce:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3
	VHADDPD Y1, Y0, Y8
	VHADDPD Y3, Y2, Y9
	VPERM2F128 $0x20, Y9, Y8, Y10
	VPERM2F128 $0x31, Y9, Y8, Y11
	VADDPD Y11, Y10, Y10
	VMOVUPD Y10, (R10)
	ADDQ $32, R10
	DECQ R8
	JNZ  l1x4row

l1x4done:
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
