// AVX2+FMA row-sum kernels behind the batched page-pair ε-tests. Each
// routine computes, for every row k of a flat row-major block, the re-summed
// distance statistic against one probe vector:
//
//	l2SumsAsm: sums[k] = Σ_j (probe[j] - data[k*dim+j])²
//	l1SumsAsm: sums[k] = Σ_j |probe[j] - data[k*dim+j]|
//
// The vector lanes re-associate the addition (and the FMA skips the
// intermediate rounding of the multiply), so these sums are NOT bit-equal to
// the sequential reference; the Go caller compares them against banded
// limits and re-runs the exact sequential test on the sliver the band cannot
// decide (see pagePairSumBlocked). Guarded by hasAVX2FMA.

//go:build amd64

#include "textflag.h"

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA absmask<>+24(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA, $32

// func l2SumsAsm(probe []float64, data []float64, sums []float64, dim int)
TEXT ·l2SumsAsm(SB), NOSPLIT, $0-80
	MOVQ probe_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	MOVQ dim+72(FP), R9
	TESTQ R8, R8
	JZ   l2done

l2row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   R9, CX
	MOVQ   SI, R11

l2loop8:
	CMPQ CX, $8
	JLT  l2loop4
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VFMADD231PD Y2, Y2, Y0
	VMOVUPD 32(R11), Y4
	VMOVUPD 32(DI), Y5
	VSUBPD  Y5, Y4, Y4
	VFMADD231PD Y4, Y4, Y1
	ADDQ $64, R11
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  l2loop8

l2loop4:
	CMPQ CX, $4
	JLT  l2reduce
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VFMADD231PD Y2, Y2, Y0
	ADDQ $32, R11
	ADDQ $32, DI
	SUBQ $4, CX

l2reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

l2tail:
	TESTQ CX, CX
	JZ    l2store
	VMOVSD (R11), X2
	VSUBSD (DI), X2, X2
	VFMADD231SD X2, X2, X0
	ADDQ $8, R11
	ADDQ $8, DI
	DECQ CX
	JMP  l2tail

l2store:
	VMOVSD X0, (R10)
	ADDQ   $8, R10
	DECQ   R8
	JNZ    l2row

l2done:
	VZEROUPPER
	RET

// func l1SumsAsm(probe []float64, data []float64, sums []float64, dim int)
TEXT ·l1SumsAsm(SB), NOSPLIT, $0-80
	MOVQ probe_base+0(FP), SI
	MOVQ data_base+24(FP), DI
	MOVQ sums_base+48(FP), R10
	MOVQ sums_len+56(FP), R8
	MOVQ dim+72(FP), R9
	VMOVUPD absmask<>(SB), Y6
	TESTQ R8, R8
	JZ   l1done

l1row:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   R9, CX
	MOVQ   SI, R11

l1loop8:
	CMPQ CX, $8
	JLT  l1loop4
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VANDPD  Y6, Y2, Y2
	VADDPD  Y2, Y0, Y0
	VMOVUPD 32(R11), Y4
	VMOVUPD 32(DI), Y5
	VSUBPD  Y5, Y4, Y4
	VANDPD  Y6, Y4, Y4
	VADDPD  Y4, Y1, Y1
	ADDQ $64, R11
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  l1loop8

l1loop4:
	CMPQ CX, $4
	JLT  l1reduce
	VMOVUPD (R11), Y2
	VMOVUPD (DI), Y3
	VSUBPD  Y3, Y2, Y2
	VANDPD  Y6, Y2, Y2
	VADDPD  Y2, Y0, Y0
	ADDQ $32, R11
	ADDQ $32, DI
	SUBQ $4, CX

l1reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VPERMILPD    $1, X0, X1
	VADDSD       X1, X0, X0

l1tail:
	TESTQ CX, CX
	JZ    l1store
	VMOVSD (R11), X2
	VSUBSD (DI), X2, X2
	VANDPD X6, X2, X2
	VADDSD X2, X0, X0
	ADDQ $8, R11
	ADDQ $8, DI
	DECQ CX
	JMP  l1tail

l1store:
	VMOVSD X0, (R10)
	ADDQ   $8, R10
	DECQ   R8
	JNZ    l1row

l1done:
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
