package kernel

import (
	"math"
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
)

// buildBlock flattens pages into a ClusterBlock and returns both.
func buildBlock(pages []*FlatPage) *ClusterBlock {
	b := &ClusterBlock{}
	b.Reset()
	for _, p := range pages {
		b.AddPage(p)
	}
	return b
}

// refBlockHits is the per-pair reference for BlockPairsWithin: a loop of
// PagePairWithin calls over the original pages, in cell order, probe rows
// ascending. It also returns the comparison count of the loop.
func refBlockHits(t *Threshold, pagesR, pagesS []*FlatPage, cells []Cell) ([]BlockHit, int64) {
	var hits []BlockHit
	var comps int64
	var scratch []int
	for ci, c := range cells {
		pr, ps := pagesR[c.R], pagesS[c.S]
		comps += int64(pr.N) * int64(ps.N)
		for i := 0; i < pr.N; i++ {
			scratch = PagePairWithin(t, pr.Row(i), ps, scratch[:0])
			for _, j := range scratch {
				hits = append(hits, BlockHit{Cell: int32(ci), I: int32(i), J: int32(j)})
			}
		}
	}
	return hits, comps
}

func randFlatPage(rng *rand.Rand, dim, n int, spread float64) *FlatPage {
	p := NewFlatPage(dim, n)
	row := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := range row {
			row[d] = rng.NormFloat64() * spread
		}
		p.AppendRow(row)
	}
	return p
}

// TestBlockPairsWithinMatchesPagePair is the batch kernel's exactness
// contract: for random clusters, BlockPairsWithin must emit exactly the hit
// sequence (order included) of a per-pair PagePairWithin loop, under every
// norm, with the vector path on and off, and the formula comparison count
// must match the loop's.
func TestBlockPairsWithinMatchesPagePair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	norms := []geom.Norm{geom.L1, geom.L2, geom.LInf, {P: 3}, {P: 4}}
	saved := useSIMD
	defer func() { useSIMD = saved }()
	for _, dim := range []int{2, 8, 12, 16, 19} {
		for trial := 0; trial < 4; trial++ {
			pagesR := make([]*FlatPage, 4)
			pagesS := make([]*FlatPage, 4)
			for i := range pagesR {
				n := rng.Intn(9)
				if trial == 1 && i == 2 {
					n = 0 // empty page in the middle of a run
				}
				pagesR[i] = randFlatPage(rng, dim, n, 1)
			}
			for i := range pagesS {
				pagesS[i] = randFlatPage(rng, dim, rng.Intn(9), 1)
			}
			br, bs := buildBlock(pagesR), buildBlock(pagesS)
			// Column-major cells (the SC layout: runs of adjacent R pages per
			// S page), plus a few scattered repeats.
			var cells []Cell
			for s := 0; s < 4; s++ {
				for r := 0; r < 4; r++ {
					if rng.Intn(3) > 0 {
						cells = append(cells, Cell{R: r, S: s})
					}
				}
			}
			cells = append(cells, Cell{R: 3, S: 0}, Cell{R: 0, S: 2}, Cell{R: 1, S: 2})
			for _, n := range norms {
				for _, eps := range []float64{0.5 * math.Sqrt(float64(dim)), 0, math.Inf(1), -1} {
					th := NewThreshold(n, eps)
					useSIMD = false
					want, wantComps := refBlockHits(&th, pagesR, pagesS, cells)
					var gotComps int64
					for _, c := range cells {
						gotComps += int64(br.PageRows(c.R)) * int64(bs.PageRows(c.S))
					}
					if gotComps != wantComps {
						t.Fatalf("dim %d %v: block comps %d, loop comps %d", dim, n, gotComps, wantComps)
					}
					for _, mode := range []bool{false, hasSIMD} {
						useSIMD = mode
						got := BlockPairsWithin(&th, br, bs, cells, nil)
						if len(got) != len(want) {
							t.Fatalf("dim %d %v eps %g simd %v: %d hits, want %d",
								dim, n, eps, mode, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("dim %d %v eps %g simd %v: hit %d = %v, want %v",
									dim, n, eps, mode, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestClusterBlockLayout checks offsets, reuse, and empty-page handling.
func TestClusterBlockLayout(t *testing.T) {
	b := &ClusterBlock{}
	b.Reset()
	if b.Pages() != 0 || b.Rows() != 0 || b.Dim() != 0 {
		t.Fatalf("fresh block: pages %d rows %d dim %d", b.Pages(), b.Rows(), b.Dim())
	}
	empty := NewFlatPage(0, 0)
	p0 := NewFlatPage(3, 2)
	p0.AppendRow([]float64{1, 2, 3})
	p0.AppendRow([]float64{4, 5, 6})
	p1 := NewFlatPage(3, 1)
	p1.AppendRow([]float64{7, 8, 9})
	if got := b.AddPage(empty); got != 0 {
		t.Fatalf("first page index %d", got)
	}
	if got := b.AddPage(p0); got != 1 {
		t.Fatalf("second page index %d", got)
	}
	b.AddPage(empty)
	b.AddPage(p1)
	if b.Pages() != 4 || b.Rows() != 3 || b.Dim() != 3 {
		t.Fatalf("block: pages %d rows %d dim %d", b.Pages(), b.Rows(), b.Dim())
	}
	for i, want := range []int{0, 2, 0, 1} {
		if got := b.PageRows(i); got != want {
			t.Fatalf("page %d rows %d, want %d", i, got, want)
		}
	}
	if row := b.Row(2); row[0] != 7 || row[2] != 9 {
		t.Fatalf("row 2 = %v", row)
	}
	b.Reset()
	if b.Pages() != 0 || b.Dim() != 0 {
		t.Fatalf("after reset: pages %d dim %d", b.Pages(), b.Dim())
	}
}

// TestSums4AsmMatchesSingle compares the 4-probe row-sum kernels against four
// single-probe calls within the re-association tolerance the banded
// classification budgets for.
func TestSums4AsmMatchesSingle(t *testing.T) {
	if !hasSIMD {
		t.Skip("no AVX2+FMA")
	}
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{4, 8, 12, 16, 28, 64} {
		for _, rows := range []int{1, 2, 3, 7, 33} {
			probes := make([]float64, 4*dim)
			for i := range probes {
				probes[i] = rng.NormFloat64()
			}
			data := make([]float64, rows*dim)
			for i := range data {
				data[i] = rng.NormFloat64()
			}
			got := make([]float64, 4*rows)
			want := make([]float64, rows)
			for _, l1 := range []bool{false, true} {
				if l1 {
					l1Sums4Asm(probes, data, got, dim)
				} else {
					l2Sums4Asm(probes, data, got, dim)
				}
				for q := 0; q < 4; q++ {
					probe := probes[q*dim : (q+1)*dim]
					if l1 {
						l1SumsAsm(probe, data, want, dim)
					} else {
						l2SumsAsm(probe, data, want, dim)
					}
					for k := 0; k < rows; k++ {
						g, w := got[4*k+q], want[k]
						tol := reassocBand(dim) * math.Max(math.Abs(w), 1e-300)
						if math.Abs(g-w) > tol {
							t.Fatalf("dim %d rows %d l1 %v probe %d row %d: 4-probe %g, single %g",
								dim, rows, l1, q, k, g, w)
						}
					}
				}
			}
		}
	}
}

// clusterBench builds a cluster-heavy workload: R and S sides of several
// small pages each, cells covering the full column-major grid.
func clusterBench(dim, pages, rowsPerPage int) (br, bs *ClusterBlock, pagesR, pagesS []*FlatPage, cells []Cell) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < pages; i++ {
		pagesR = append(pagesR, randFlatPage(rng, dim, rowsPerPage, 1))
		pagesS = append(pagesS, randFlatPage(rng, dim, rowsPerPage, 1))
	}
	br, bs = buildBlock(pagesR), buildBlock(pagesS)
	for s := 0; s < pages; s++ {
		for r := 0; r < pages; r++ {
			cells = append(cells, Cell{R: r, S: s})
		}
	}
	return
}

func benchmarkBlockVsLoop(b *testing.B, dim int, batch bool) {
	br, bs, pagesR, pagesS, cells := clusterBench(dim, 8, 64)
	th := NewThreshold(geom.L2, 0.3*math.Sqrt(float64(dim)))
	var hits []BlockHit
	var scratch []int
	b.SetBytes(int64(len(cells)) * 64 * 64 * int64(dim) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			hits = BlockPairsWithin(&th, br, bs, cells, hits[:0])
		} else {
			hits = hits[:0]
			for ci, c := range cells {
				pr, ps := pagesR[c.R], pagesS[c.S]
				for k := 0; k < pr.N; k++ {
					scratch = PagePairWithin(&th, pr.Row(k), ps, scratch[:0])
					for _, j := range scratch {
						hits = append(hits, BlockHit{Cell: int32(ci), I: int32(k), J: int32(j)})
					}
				}
			}
		}
	}
	_ = hits
}

func BenchmarkBlockPairsDim16(b *testing.B)   { benchmarkBlockVsLoop(b, 16, true) }
func BenchmarkPagePairLoopDim16(b *testing.B) { benchmarkBlockVsLoop(b, 16, false) }
func BenchmarkBlockPairsDim64(b *testing.B)   { benchmarkBlockVsLoop(b, 64, true) }
func BenchmarkPagePairLoopDim64(b *testing.B) { benchmarkBlockVsLoop(b, 64, false) }
