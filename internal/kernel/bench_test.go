package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
)

// benchDims spans the paper's range: low-dimensional spatial data through
// high-dimensional feature vectors and series windows.
var benchDims = []int{2, 16, 64, 256}

// benchPage builds a page of n random points plus a probe and an epsilon
// yielding ~10% selectivity-ish behavior (points in [0,1)^dim, eps tuned so
// early abandon has work to do without everything failing on coordinate 0).
func benchPage(dim, n int) (probe geom.Vector, vecs []geom.Vector, flat *FlatPage, eps float64) {
	rng := rand.New(rand.NewSource(int64(dim)*1000 + int64(n)))
	vecs = make([]geom.Vector, n)
	flat = NewFlatPage(dim, n)
	for i := range vecs {
		v := make(geom.Vector, dim)
		for d := range v {
			v[d] = rng.Float64()
		}
		vecs[i] = v
		flat.AppendRow(v)
	}
	probe = make(geom.Vector, dim)
	for d := range probe {
		probe[d] = rng.Float64()
	}
	// Roughly a third of the expected random-pair distance: most candidates
	// abandon partway through the row.
	eps = 0.33 * geom.L2.Dist(probe, vecs[0])
	if eps == 0 {
		eps = 0.1
	}
	return probe, vecs, flat, eps
}

// BenchmarkWithin compares one probe against a 256-point page per iteration:
// reference Dist loop vs the batched kernel, per norm and dimension.
func BenchmarkWithin(b *testing.B) {
	const pagePoints = 256
	for _, n := range []geom.Norm{geom.LInf, geom.L1, geom.L2, {P: 3}} {
		for _, dim := range benchDims {
			probe, vecs, flat, eps := benchPage(dim, pagePoints)
			b.Run(fmt.Sprintf("ref/%v/dim%d", n, dim), func(b *testing.B) {
				b.SetBytes(int64(pagePoints * dim * 8))
				sink := 0
				for i := 0; i < b.N; i++ {
					for _, v := range vecs {
						if n.Dist(probe, v) <= eps {
							sink++
						}
					}
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("kernel/%v/dim%d", n, dim), func(b *testing.B) {
				b.SetBytes(int64(pagePoints * dim * 8))
				th := NewThreshold(n, eps)
				var hits []int
				for i := 0; i < b.N; i++ {
					hits = PagePairWithin(&th, probe, flat, hits[:0])
				}
				_ = hits
			})
		}
	}
}

// BenchmarkWithinSq compares the historic epsSq inner loop (the seed's L2
// joiner hot path, already early-exiting) against the batched kernel.
func BenchmarkWithinSq(b *testing.B) {
	const pagePoints = 256
	for _, dim := range benchDims {
		probe, vecs, flat, eps := benchPage(dim, pagePoints)
		epsSq := eps * eps
		b.Run(fmt.Sprintf("ref/dim%d", dim), func(b *testing.B) {
			b.SetBytes(int64(pagePoints * dim * 8))
			sink := 0
			for i := 0; i < b.N; i++ {
				for _, v := range vecs {
					var s float64
					for d := range probe {
						x := probe[d] - v[d]
						s += x * x
						if s > epsSq {
							break
						}
					}
					if s <= epsSq {
						sink++
					}
				}
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("kernel/dim%d", dim), func(b *testing.B) {
			b.SetBytes(int64(pagePoints * dim * 8))
			th := NewThresholdSq(eps)
			var hits []int
			for i := 0; i < b.N; i++ {
				hits = PagePairWithin(&th, probe, flat, hits[:0])
			}
			_ = hits
		})
	}
}

// BenchmarkBound compares the MBR lower-bound test against the reference
// MinDist computation.
func BenchmarkBound(b *testing.B) {
	for _, n := range []geom.Norm{geom.L1, geom.L2} {
		for _, dim := range benchDims {
			rng := rand.New(rand.NewSource(int64(dim)))
			mk := func() geom.MBR {
				lo := make(geom.Vector, dim)
				hi := make(geom.Vector, dim)
				for d := range lo {
					lo[d] = rng.Float64()
					hi[d] = lo[d] + 0.1*rng.Float64()
				}
				m := geom.NewMBR(lo)
				m.ExtendPoint(hi)
				return m
			}
			x, y := mk(), mk()
			eps := 0.2
			b.Run(fmt.Sprintf("ref/%v/dim%d", n, dim), func(b *testing.B) {
				sink := false
				for i := 0; i < b.N; i++ {
					sink = n.MinDist(x, y) <= eps
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("kernel/%v/dim%d", n, dim), func(b *testing.B) {
				bd := NewBound(n, 1, eps)
				sink := false
				for i := 0; i < b.N; i++ {
					sink = bd.Within(x, y)
				}
				_ = sink
			})
		}
	}
}
