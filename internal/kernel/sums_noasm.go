//go:build !amd64

package kernel

// Non-amd64 builds have no vector row-sum kernels; the blocked scalar loops
// carry the batch path alone.
const hasSIMD = false

var useSIMD = false

func l2SumsAsm(probe []float64, data []float64, sums []float64, dim int) {
	panic("kernel: l2SumsAsm without SIMD support")
}

func l1SumsAsm(probe []float64, data []float64, sums []float64, dim int) {
	panic("kernel: l1SumsAsm without SIMD support")
}

func l2Sums4Asm(probes []float64, data []float64, sums []float64, dim int) {
	panic("kernel: l2Sums4Asm without SIMD support")
}

func l1Sums4Asm(probes []float64, data []float64, sums []float64, dim int) {
	panic("kernel: l1Sums4Asm without SIMD support")
}
