package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pmjoin/internal/geom"
)

// norms under test: the package's exactness contract covers L∞, L1, L2 and
// the PowInt/band path (L3 here; higher p exercises the same code).
var testNorms = []geom.Norm{geom.LInf, geom.L1, geom.L2, {P: 3}, {P: 4}}

func randVec(rng *rand.Rand, dim int, span float64) geom.Vector {
	v := make(geom.Vector, dim)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * span
	}
	return v
}

// TestWithinDistMatchesReference drives random pairs through every norm with
// thresholds chosen to land on both sides of — and exactly on — the decision
// boundary.
func TestWithinDistMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testNorms {
		for _, dim := range []int{1, 2, 3, 8, 33} {
			for trial := 0; trial < 300; trial++ {
				a := randVec(rng, dim, 10)
				b := randVec(rng, dim, 10)
				d := n.Dist(a, b)
				// Thresholds around the boundary: the exact distance, its
				// float neighbors, scaled variants, and degenerate values.
				eps := []float64{
					d,
					math.Nextafter(d, 0),
					math.Nextafter(d, math.Inf(1)),
					d * 0.5, d * 2,
					0, math.Inf(1),
				}
				for _, e := range eps {
					want := n.Dist(a, b) <= e
					if got := WithinDist(a, b, n, e); got != want {
						t.Fatalf("%v dim %d eps %.17g: WithinDist = %v, Dist %.17g <= eps = %v",
							n, dim, e, got, d, want)
					}
				}
			}
		}
	}
}

// TestWithinDistSpecialValues pins the non-finite corner cases.
func TestWithinDistSpecialValues(t *testing.T) {
	a := geom.Vector{0, 0}
	b := geom.Vector{3, 4}
	nan := math.NaN()
	for _, n := range testNorms {
		if WithinDist(a, b, n, nan) {
			t.Errorf("%v: within NaN eps", n)
		}
		if WithinDist(a, b, n, -1) {
			t.Errorf("%v: within negative eps", n)
		}
		if !WithinDist(a, b, n, math.Inf(1)) {
			t.Errorf("%v: not within +Inf eps", n)
		}
		// NaN coordinates: Dist is NaN, so <= eps is false for finite eps.
		c := geom.Vector{nan, 0}
		if WithinDist(a, c, n, 100) != (n.Dist(a, c) <= 100) {
			t.Errorf("%v: NaN coordinate disagrees with reference", n)
		}
		if WithinDist(a, c, n, math.Inf(1)) != (n.Dist(a, c) <= math.Inf(1)) {
			t.Errorf("%v: NaN coordinate vs +Inf eps disagrees with reference", n)
		}
	}
}

func TestWithinDistPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	WithinDist(geom.Vector{1}, geom.Vector{1, 2}, geom.L2, 1)
}

// TestThresholdSqMatchesEpsSqLoop pins NewThresholdSq against the historic
// joiner comparison sum(d²) <= fl(eps*eps), which differs from Dist <= eps by
// up to an ulp at the boundary — exactly the semantics the series and L2
// vector joiners rely on.
func TestThresholdSqMatchesEpsSqLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		dim := 1 + rng.Intn(16)
		a := randVec(rng, dim, 5)
		b := randVec(rng, dim, 5)
		eps := rng.Float64() * 10
		if trial%7 == 0 {
			// Land exactly on the boundary.
			eps = geom.L2.Dist(a, b)
		}
		epsSq := eps * eps
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		want := s <= epsSq
		th := NewThresholdSq(eps)
		if got := th.Within(a, b); got != want {
			t.Fatalf("dim %d eps %.17g: Within = %v, epsSq loop = %v (s = %.17g)",
				dim, eps, got, want, s)
		}
	}
}

// TestMaxFloatWithin checks the bit-space search on predicates with known
// boundaries.
func TestMaxFloatWithin(t *testing.T) {
	if got := maxFloatWithin(func(v float64) bool { return v <= 1.5 }); got != 1.5 {
		t.Errorf("boundary at 1.5: got %g", got)
	}
	if got := maxFloatWithin(func(v float64) bool { return true }); !math.IsInf(got, 1) {
		t.Errorf("always-true predicate: got %g, want +Inf", got)
	}
	if got := maxFloatWithin(func(v float64) bool { return v == 0 }); got != 0 {
		t.Errorf("only-zero predicate: got %g", got)
	}
	// The L2 limit: sqrt(lim) <= eps but sqrt(next(lim)) > eps.
	for _, eps := range []float64{0.1, 1, 3.75, 1e-30, 1e30} {
		lim := maxFloatWithin(func(v float64) bool { return math.Sqrt(v) <= eps })
		if math.Sqrt(lim) > eps {
			t.Errorf("eps %g: sqrt(lim) = %g > eps", eps, math.Sqrt(lim))
		}
		if up := math.Nextafter(lim, math.Inf(1)); math.Sqrt(up) <= eps {
			t.Errorf("eps %g: lim %g not maximal", eps, lim)
		}
	}
}

// TestBoundMatchesMinDist drives random MBR pairs (and point-MBR pairs)
// through Bound and the reference scale*MinDist comparison, with thresholds
// on and around the boundary.
func TestBoundMatchesMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testNorms {
		for _, scale := range []float64{1, 0.25, 3.5, 1e-3} {
			for trial := 0; trial < 300; trial++ {
				dim := 1 + rng.Intn(4)
				mk := func() geom.MBR {
					m := geom.NewMBR(randVec(rng, dim, 10))
					m.ExtendPoint(randVec(rng, dim, 10))
					return m
				}
				a, c := mk(), mk()
				ref := scale * n.MinDist(a, c)
				p := randVec(rng, dim, 10)
				refP := scale * n.MinDistPoint(p, c)
				for _, e := range []float64{ref, math.Nextafter(ref, 0),
					math.Nextafter(ref, math.Inf(1)), refP, ref * 0.5, 0, math.Inf(1)} {
					b := NewBound(n, scale, e)
					if b == nil {
						t.Fatalf("%v scale %g: nil bound", n, scale)
					}
					if got, want := b.Within(a, c), scale*n.MinDist(a, c) <= e; got != want {
						t.Fatalf("%v scale %g eps %.17g: Within = %v, reference %.17g <= eps = %v",
							n, scale, e, got, ref, want)
					}
					if got, want := b.WithinPoint(p, c), scale*n.MinDistPoint(p, c) <= e; got != want {
						t.Fatalf("%v scale %g eps %.17g: WithinPoint = %v, reference %.17g = %v",
							n, scale, e, got, refP, want)
					}
				}
			}
		}
	}
}

// TestBoundEmptyAndDegenerate pins the empty-MBR and bad-scale cases.
func TestBoundEmptyAndDegenerate(t *testing.T) {
	var empty geom.MBR
	full := geom.NewMBR(geom.Vector{0, 0})
	for _, n := range testNorms {
		b := NewBound(n, 1, 5)
		if got, want := b.Within(empty, full), n.MinDist(empty, full) <= 5; got != want {
			t.Errorf("%v: empty MBR Within = %v, reference = %v", n, got, want)
		}
		if b := NewBound(n, 1, math.Inf(1)); !b.Within(empty, full) {
			t.Errorf("%v: empty MBR not within +Inf eps", n)
		}
		if NewBound(n, 0, 1) != nil {
			t.Errorf("%v: non-nil bound for zero scale", n)
		}
		if NewBound(n, -1, 1) != nil {
			t.Errorf("%v: non-nil bound for negative scale", n)
		}
		if NewBound(n, math.NaN(), 1) != nil {
			t.Errorf("%v: non-nil bound for NaN scale", n)
		}
		if b := NewBound(n, 1, math.NaN()); b.Within(full, full) {
			t.Errorf("%v: within NaN eps", n)
		}
	}
}

// TestFlatPage checks construction and row access.
func TestFlatPage(t *testing.T) {
	f := NewFlatPage(3, 2)
	f.AppendRow([]float64{1, 2, 3})
	f.AppendRow([]float64{4, 5, 6})
	if f.N != 2 || f.Dim != 3 {
		t.Fatalf("N = %d, Dim = %d", f.N, f.Dim)
	}
	if r := f.Row(1); r[0] != 4 || r[2] != 6 || len(r) != 3 {
		t.Fatalf("Row(1) = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong-width row")
		}
	}()
	f.AppendRow([]float64{1})
}

// TestPagePairWithinMatchesPerPoint checks the batch kernel emits exactly the
// indices the per-point test accepts, in ascending order, for every norm.
// On amd64 it runs once with the AVX2 row-sum kernels and once with the
// scalar blocked loops, so the two implementations are held to the same
// bit-exact contract on the same inputs.
func TestPagePairWithinMatchesPerPoint(t *testing.T) {
	modes := []bool{false}
	if hasSIMD {
		modes = []bool{true, false}
	}
	saved := useSIMD
	defer func() { useSIMD = saved }()
	for _, mode := range modes {
		useSIMD = mode
		t.Run(fmt.Sprintf("simd=%v", mode), testPagePairWithinMatchesPerPoint)
	}
}

func testPagePairWithinMatchesPerPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Dims straddle blockDim so the blocked loops (full blocks, tails, and
	// the sub-block sizes that fall back to the sequential scans) all run.
	dims := []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 19, 33, 64}
	for _, n := range testNorms {
		for trial := 0; trial < 100; trial++ {
			dim := dims[rng.Intn(len(dims))]
			np := rng.Intn(20)
			page := NewFlatPage(dim, np)
			for i := 0; i < np; i++ {
				page.AppendRow(randVec(rng, dim, 3))
			}
			probe := randVec(rng, dim, 3)
			// Besides a random threshold, test thresholds landing exactly on
			// (and one ulp off) a row's distance, which the blocked loops must
			// resolve through the exact sequential fallback.
			epss := []float64{rng.Float64() * 4}
			if np > 0 {
				if d := n.Dist(probe, page.Row(rng.Intn(np))); !math.IsNaN(d) {
					epss = append(epss, d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
				}
			}
			for _, eps := range epss {
				th := NewThreshold(n, eps)
				got := PagePairWithin(&th, probe, page, nil)
				var want []int
				for k := 0; k < np; k++ {
					if th.Within(probe, page.Row(k)) {
						want = append(want, k)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%v dim %d eps %.17g: batch %v vs per-point %v", n, dim, eps, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v dim %d eps %.17g: batch %v vs per-point %v", n, dim, eps, got, want)
					}
				}
			}
		}
	}
}
