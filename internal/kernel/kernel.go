// Package kernel provides the allocation-free, threshold-aware CPU kernels
// behind every ε-test of the join framework: point-pair tests with running-sum
// early abandon, a batched page-pair kernel over flat contiguous page blocks,
// and MBR lower-bound tests for prediction-matrix construction.
//
// Every kernel is an exact drop-in for a reference comparison: Threshold
// decides norm.Dist(a,b) <= eps (or the historical squared-L2 form) without
// computing the distance, and Bound decides scale*norm.MinDist(a,b) <= eps
// without allocating gap vectors. Exactness is what lets the engine keep its
// determinism contract with kernels on or off — Report, Pairs and Plan stay
// bit-identical — and it is enforced by FuzzKernelVsReference.
//
// The trick for L2 is comparing the running sum of squares against a
// precomputed limit instead of taking a square root per pair. The limit is
// not fl(eps²): that would misclassify sums within an ulp of the boundary.
// Instead it is the largest float64 t with fl(sqrt(t)) <= eps, found by
// binary search over the bit representation (non-negative floats sort by
// their bits, and correctly rounded sqrt is monotone, so the predicate is
// monotone and the boundary exact). L1 and L∞ compare partial sums or single
// coordinates directly against eps. For p >= 3 the sum of PowInt powers is
// compared against a conservative band around eps^p; only sums inside the
// band — a ~1e-9 relative sliver — fall back to the reference math.Pow root.
package kernel

import (
	"fmt"
	"math"

	"pmjoin/internal/geom"
)

// Threshold is a precompiled point-pair ε-test under an Lp norm. The zero
// value is not meaningful; build one with NewThreshold or NewThresholdSq once
// per page pair (or per join) and reuse it across pairs.
type Threshold struct {
	p   int     // norm exponent; 0 = L∞
	lim float64 // accept limit on the accumulated statistic (p <= 2)

	// p >= 3 only: fast-accept / fast-reject band on the power sum, and the
	// exact fallback parameters reproducing the reference computation.
	// scale is 1 for point tests; Bound reuses the band with its predictor
	// scale folded in.
	lo, hi float64
	invP   float64
	eps    float64
	scale  float64

	// never short-circuits to false (negative or NaN eps under Dist
	// semantics: no distance satisfies the comparison).
	never bool
}

// NewThreshold returns the test equivalent to n.Dist(a, b) <= eps for ALL
// float64 inputs, boundary and non-finite cases included.
func NewThreshold(n geom.Norm, eps float64) Threshold {
	t := Threshold{p: n.P}
	if math.IsNaN(eps) || eps < 0 {
		// Dist is non-negative (or NaN); either way the comparison is false.
		t.never = true
		return t
	}
	switch n.P {
	case 0, 1:
		// The statistic (max coordinate gap, running L1 sum) is the distance
		// itself; compare it against eps directly.
		t.lim = eps
	case 2:
		// Largest t with fl(sqrt(t)) <= eps: s <= lim <=> fl(sqrt(s)) <= eps.
		t.lim = maxFloatWithin(func(v float64) bool { return math.Sqrt(v) <= eps })
	default:
		t.setPowBand(n.P, 1, eps)
	}
	return t
}

// NewThresholdSq returns the L2 test equivalent to the classic squared
// comparison sum((a[i]-b[i])²) <= fl(eps*eps) — the historical joiner hot
// path, which differs from Dist() <= eps by at most an ulp at the boundary.
// It matches that reference for all inputs, including negative or NaN eps.
func NewThresholdSq(eps float64) Threshold {
	// NaN eps propagates: s <= NaN is always false, same as the reference.
	return Threshold{p: 2, lim: eps * eps}
}

// setPowBand precomputes the p>=3 band around (eps/scale)^p. Sums at or
// below lo are certainly within, sums above hi certainly not; anything in
// between reruns the reference formula fl(scale*fl(Pow(s, 1/p))) <= eps.
func (t *Threshold) setPowBand(p int, scale, eps float64) {
	t.p = p
	t.invP = 1 / float64(p)
	t.eps = eps
	t.scale = scale
	if math.IsInf(eps, 1) {
		// Every non-NaN sum is within; NaN sums fall through to the exact
		// fallback, which rejects them.
		t.lo, t.hi = math.Inf(1), math.Inf(1)
		return
	}
	b0 := geom.PowInt(eps/scale, p)
	switch {
	case math.IsInf(b0, 1):
		// eps^p overflows: any finite sum is within by a 2^10/p exponent
		// margin; only infinite sums reach the fallback.
		t.lo, t.hi = math.MaxFloat64/1024, math.Inf(1)
	case b0 < 1e-290:
		// Near or below the subnormal range the relative error of b0 is
		// unbounded; skip the band entirely (thresholds this small never
		// occur in practice, so losing the fast path costs nothing).
		t.lo, t.hi = 0, math.Inf(1)
	default:
		// Band wide enough to absorb the PowInt construction error
		// (~p·2⁻⁵³ relative), the eps/scale division and the fallback's own
		// Pow/multiply rounding, with orders of magnitude to spare.
		band := 1e-9 + float64(p)*3e-13
		t.lo = b0 * (1 - band)
		t.hi = b0 * (1 + band)
	}
}

// Within reports whether the distance between a and b passes the threshold.
// The slices must have equal length (the batched kernels guarantee it);
// unequal lengths index out of range just like the reference loops.
func (t *Threshold) Within(a, b []float64) bool {
	if t.never {
		return false
	}
	switch t.p {
	case 0:
		lim := t.lim
		for i, av := range a {
			d := av - b[i]
			if d < 0 {
				d = -d
			}
			// NaN coordinates fail the >, matching Dist's max (NaN > m is
			// false there too).
			if d > lim {
				return false
			}
		}
		return true
	case 1:
		var s float64
		lim := t.lim
		for i, av := range a {
			d := av - b[i]
			if d < 0 {
				d = -d
			}
			s += d
			if s > lim {
				return false
			}
		}
		return s <= lim
	case 2:
		var s float64
		lim := t.lim
		for i, av := range a {
			d := av - b[i]
			s += d * d
			if s > lim {
				return false
			}
		}
		// The final <= (not a bare true) rejects NaN sums, which never
		// trigger the > abandon.
		return s <= lim
	default:
		var s float64
		for i, av := range a {
			d := av - b[i]
			if d < 0 {
				d = -d
			}
			s += geom.PowInt(d, t.p)
			if s > t.hi {
				return false
			}
		}
		if s <= t.lo {
			return true
		}
		return t.scale*math.Pow(s, t.invP) <= t.eps
	}
}

// WithinDist reports n.Dist(a, b) <= eps without computing the distance:
// no sqrt for L2, no Pow for integer p, and early abandon as soon as the
// partial statistic exceeds the threshold. It matches the reference
// comparison bit-for-bit for every input, boundary cases included. Like
// Dist, it panics on a dimension mismatch.
//
// For repeated tests under one threshold, build the Threshold once instead.
func WithinDist(a, b []float64, n geom.Norm, eps float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("kernel: dimension mismatch %d vs %d", len(a), len(b)))
	}
	t := NewThreshold(n, eps)
	return t.Within(a, b)
}

// maxFloatWithin returns the largest non-negative float64 t (possibly +Inf)
// for which ok(t) holds, given that ok is monotone (true up to some boundary,
// false beyond) and ok(0) is true. Non-negative floats including +Inf order
// identically to their bit patterns, so this is a ~64-step binary search in
// bit space — robust even where rounding plateaus make ulp-walking
// intractable (subnormal results of sqrt or scale multiplication).
func maxFloatWithin(ok func(float64) bool) float64 {
	if ok(math.Inf(1)) {
		return math.Inf(1)
	}
	lo, hi := uint64(0), math.Float64bits(math.Inf(1)) // ok(lo) && !ok(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if ok(math.Float64frombits(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Float64frombits(lo)
}
