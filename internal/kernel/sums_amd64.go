//go:build amd64

package kernel

// l2SumsAsm fills sums[k] with the 4-lane re-associated sum of squared
// coordinate gaps between probe and row k of data (row-major, stride dim),
// for k in [0, len(sums)). Requires hasAVX2FMA; see sums_amd64.s for the
// exactness caveat (callers must band-classify the result).
//
//go:noescape
func l2SumsAsm(probe []float64, data []float64, sums []float64, dim int)

// l1SumsAsm is l2SumsAsm for the L1 statistic (sum of absolute gaps).
//
//go:noescape
func l1SumsAsm(probe []float64, data []float64, sums []float64, dim int)

// l2Sums4Asm is l2SumsAsm for four contiguous probe rows at once (probes has
// len 4*dim): each data-chunk load is shared across four accumulator sets and
// the horizontal reduction is a single 4-way transpose. The four sums of data
// row k land interleaved at sums[4k .. 4k+3] (sums has len 4*rows). dim must
// be a multiple of 4; the block kernel falls back to the single-probe routine
// otherwise.
//
//go:noescape
func l2Sums4Asm(probes []float64, data []float64, sums []float64, dim int)

// l1Sums4Asm is l2Sums4Asm for the L1 statistic.
//
//go:noescape
func l1Sums4Asm(probes []float64, data []float64, sums []float64, dim int)

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// hasSIMD reports whether the vector row-sum kernels are usable: AVX2 and
// FMA present, and the OS saves the YMM state (OSXSAVE + XCR0 bits 1-2).
var hasSIMD = detectAVX2FMA()

// useSIMD gates the vector path at each call; tests flip it to run the
// scalar and vector kernels differentially on the same hardware.
var useSIMD = hasSIMD

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if c1&osxsave == 0 || c1&avx == 0 || c1&fma == 0 {
		return false
	}
	if eax, _ := xgetbv0(); eax&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}
