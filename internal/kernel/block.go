package kernel

import (
	"fmt"
	"sync"
)

// ClusterBlock concatenates one cluster side's FlatPages into a single
// row-major block with per-page row offsets. The clustered executor builds
// one per side per cluster (from the pinned page set, reusing the block's
// own storage across clusters) and evaluates every marked page pair of the
// cluster against it in one BlockPairsWithin call, so the vector kernels
// stream across page boundaries instead of restarting per pair.
//
// Empty pages occupy a page slot with zero rows; every non-empty page must
// share one dimensionality, fixed by the first non-empty AddPage.
type ClusterBlock struct {
	dim  int       // -1 until the first non-empty page fixes it
	offs []int     // per page, starting row; len = Pages()+1
	data []float64 // concatenated rows, row-major with stride dim
}

// Reset clears the block for reuse, keeping its storage.
func (b *ClusterBlock) Reset() {
	b.dim = -1
	b.offs = append(b.offs[:0], 0)
	b.data = b.data[:0]
}

// AddPage appends one page's rows to the block and returns its page index.
// It panics if a non-empty page disagrees with the block's dimensionality.
func (b *ClusterBlock) AddPage(f *FlatPage) int {
	if len(b.offs) == 0 {
		b.Reset()
	}
	if f.N > 0 {
		if b.dim < 0 {
			b.dim = f.Dim
		} else if f.Dim != b.dim {
			panic(fmt.Sprintf("kernel: page of dim %d in cluster block of dim %d", f.Dim, b.dim))
		}
		b.data = append(b.data, f.Data[:f.N*f.Dim]...)
	}
	b.offs = append(b.offs, b.offs[len(b.offs)-1]+f.N)
	return len(b.offs) - 2
}

// Pages returns the number of pages added since the last Reset.
func (b *ClusterBlock) Pages() int { return len(b.offs) - 1 }

// Rows returns the total row count of the block.
func (b *ClusterBlock) Rows() int { return b.offs[len(b.offs)-1] }

// PageRows returns the row count of page p.
func (b *ClusterBlock) PageRows(p int) int { return b.offs[p+1] - b.offs[p] }

// Dim returns the block's row dimensionality (0 while every page is empty).
func (b *ClusterBlock) Dim() int {
	if b.dim < 0 {
		return 0
	}
	return b.dim
}

// Row returns global row r as a slice into the block.
func (b *ClusterBlock) Row(r int) []float64 {
	off := r * b.dim
	return b.data[off : off+b.dim : off+b.dim]
}

// pageView returns page p of the block as a FlatPage aliasing the block's
// storage, for the reference per-pair kernel.
func (b *ClusterBlock) pageView(p int) FlatPage {
	lo, hi := b.offs[p], b.offs[p+1]
	if lo == hi {
		return FlatPage{Dim: b.Dim()}
	}
	return FlatPage{Dim: b.dim, N: hi - lo, Data: b.data[lo*b.dim : hi*b.dim : hi*b.dim]}
}

// Cell is one marked (pageR, pageS) entry of a cluster, as page indices into
// the two ClusterBlocks.
type Cell struct {
	R, S int
}

// BlockHit is one result of a batched cluster evaluation: row I of cell
// Cell's R page is within threshold of row J of its S page. Cell indexes the
// cells slice passed to BlockPairsWithin, so hits map back to submission
// order.
type BlockHit struct {
	Cell, I, J int32
}

// cellHitsPool recycles the per-probe index scratch of the reference block
// path.
var cellHitsPool = sync.Pool{New: func() any { s := make([]int, 0, 256); return &s }}

// BlockPairsWithin evaluates every marked cell of a cluster in one call,
// appending a BlockHit for each (probe row i of cell.R, data row j of
// cell.S) pair within the threshold and returning the extended slice.
//
// Hits are emitted grouped by cell in cells order, and within one cell by
// (I ascending, J ascending) — exactly the order a per-pair loop over
// PagePairWithin produces, which is what keeps the executor's Report and
// pair stream bit-identical batch on vs. off. The hit decisions themselves
// are identical to PagePairWithin's for every input: the vector path
// re-associates sums differently (four probes per pass, streamed across
// page boundaries), but any sum inside the reassocBand sliver is re-decided
// by the same exact t.Within reference, so no decision can differ.
func BlockPairsWithin(t *Threshold, br, bs *ClusterBlock, cells []Cell, hits []BlockHit) []BlockHit {
	if t.never || len(cells) == 0 || br.Rows() == 0 || bs.Rows() == 0 {
		return hits
	}
	dim := br.dim
	if bs.dim != dim {
		panic(fmt.Sprintf("kernel: cluster blocks of dim %d vs %d", br.dim, bs.dim))
	}
	if useSIMD && dim >= blockDim && (t.p == 1 || t.p == 2) {
		return blockPairsSumSIMD(t, br, bs, cells, hits)
	}
	// Reference path: the per-pair kernel over page views of the block. Every
	// norm, dimensionality, and non-SIMD build routes here, so batch mode is
	// per-pair-identical by construction outside the vector span path.
	ip := cellHitsPool.Get().(*[]int)
	for ci, c := range cells {
		view := bs.pageView(c.S)
		nR := br.PageRows(c.R)
		if nR == 0 || view.N == 0 {
			continue
		}
		rOff := br.offs[c.R]
		for i := 0; i < nR; i++ {
			*ip = PagePairWithin(t, br.Row(rOff+i), &view, (*ip)[:0])
			for _, j := range *ip {
				hits = append(hits, BlockHit{Cell: int32(ci), I: int32(i), J: int32(j)})
			}
		}
	}
	cellHitsPool.Put(ip)
	return hits
}

// blockPairsSumSIMD is the vector span path of BlockPairsWithin: consecutive
// cells sharing one S page whose R pages are adjacent in the block (the
// dominant layout — SC emits a cluster's entries column-major) form one run
// whose probe rows are contiguous across page boundaries, and the row-sum
// kernels stream four probes per pass over the S page (l2Sums4Asm /
// l1Sums4Asm share each data load across four accumulator sets). Probe rows
// ascend through the run, so hits fall out cell-major with no reordering.
// Classification is the same banded scheme as pagePairSumSIMD: certain-
// within and certain-outside decide immediately, the band sliver re-runs
// the exact sequential test.
func blockPairsSumSIMD(t *Threshold, br, bs *ClusterBlock, cells []Cell, hits []BlockHit) []BlockHit {
	dim := br.dim
	band := reassocBand(dim)
	loB := t.lim * (1 - band)
	hiB := t.lim * (1 + band)
	l1 := t.p == 1
	quad := dim%4 == 0 // the 4-probe kernels handle dim in whole vector lanes
	sp := sumsPool.Get().(*[]float64)
	sums := *sp
	for start := 0; start < len(cells); {
		end := start + 1
		cs := cells[start].S
		for end < len(cells) && cells[end].S == cs && cells[end].R == cells[end-1].R+1 {
			end++
		}
		nS := bs.PageRows(cs)
		pLo := br.offs[cells[start].R]
		pHi := br.offs[cells[end-1].R+1]
		if nS == 0 || pLo == pHi {
			start = end
			continue
		}
		sLo := bs.offs[cs]
		data := bs.data[sLo*dim : (sLo+nS)*dim : (sLo+nS)*dim]
		ci := start // classification cell cursor, monotone over the run
		for p := pLo; p < pHi; {
			g := 1
			if quad && p+4 <= pHi {
				g = 4
				if cap(sums) < 4*nS {
					sums = make([]float64, 4*nS)
				}
				sums = sums[:4*nS]
				probes := br.data[p*dim : (p+4)*dim : (p+4)*dim]
				if l1 {
					l1Sums4Asm(probes, data, sums, dim)
				} else {
					l2Sums4Asm(probes, data, sums, dim)
				}
			} else {
				if cap(sums) < nS {
					sums = make([]float64, nS)
				}
				sums = sums[:nS]
				probe := br.data[p*dim : (p+1)*dim : (p+1)*dim]
				if l1 {
					l1SumsAsm(probe, data, sums, dim)
				} else {
					l2SumsAsm(probe, data, sums, dim)
				}
			}
			for q := 0; q < g; q++ {
				row := p + q
				for row >= br.offs[cells[ci].R+1] {
					ci++ // empty or exhausted R page: advance to the probe's cell
				}
				cell := int32(ci)
				iLoc := int32(row - br.offs[cells[ci].R])
				probe := br.data[row*dim : (row+1)*dim : (row+1)*dim]
				if g == 4 {
					for k := 0; k < nS; k++ {
						s := sums[4*k+q]
						if s <= loB {
							hits = append(hits, BlockHit{cell, iLoc, int32(k)})
						} else if !(s > hiB) && t.Within(probe, bs.Row(sLo+k)) {
							hits = append(hits, BlockHit{cell, iLoc, int32(k)})
						}
					}
				} else {
					for k, s := range sums {
						if s <= loB {
							hits = append(hits, BlockHit{cell, iLoc, int32(k)})
						} else if !(s > hiB) && t.Within(probe, bs.Row(sLo+k)) {
							hits = append(hits, BlockHit{cell, iLoc, int32(k)})
						}
					}
				}
			}
			p += g
		}
		start = end
	}
	*sp = sums
	sumsPool.Put(sp)
	return hits
}
